# Developer entry points. `just` users: see justfile (same targets).

.PHONY: build test clippy doc matrix ci bench-smoke bench-paper

build:
	cargo build --release

test:
	cargo test --workspace -q

clippy:
	cargo clippy --workspace --all-targets -q -- -D warnings

# Warning-free API docs (rustdoc lints are errors).
doc:
	RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

# The engine equivalence matrix ({parallel} x {trace} x {fast path} x
# {reduce-via} vs the frozen seed), the window-successor differential
# suite, and the fabric conformance proptests (conservation, per-link
# FIFO, ring==line degeneracy, input-order invariance, reduce
# determinism), release-mode — the all-or-nothing gating paths the debug
# run also covers, minus the debug_assert slowdown on the larger shapes.
matrix:
	cargo test --release -p stepstone-bench --test engine_matrix -q
	cargo test --release -p stepstone-addr --test window_successor -q
	cargo test --release -p stepstone-fabric -q

# The merge gate for perf-relevant changes: build, test, lint, docs,
# equivalence matrix, and validate BENCH_sim.json on the committed shape.
ci: build test clippy doc matrix bench-smoke
	@echo "ci: all gates green"

# Build release and run the simulator hot-path bench at the *paper scale*
# (the shape the committed BENCH_sim.json records; ~11 s) in a scratch
# directory, so the committed evidence file is never clobbered. Fails if
# the result is missing, malformed, not cycle-exact, or if
# speedup_streaming_vs_seed regresses below the committed value (30%
# tolerance: the wall-clock ratio varies run to run on shared/noisy
# hosts, and the run-granular engine's ~25 ns/block denominator makes
# the ratio noisier than at seed; observed spread ~10.6-13.7x). Run-granularity counters are deterministic, so they are gated
# exact-match against the committed file; the streaming-serial
# ns_per_block gets a wall-clock regression ceiling (35% over committed,
# floored at the 30 ns/block paper target, for host noise), and the
# parallel-vs-serial speedup is only gated when more than one CPU is
# available (on a 1-CPU host the sharded engine ties serial, modulo
# noise). Backend tiers (PR 7): the exact tier's sim_cycles must stay
# bit-identical to the committed value, the analytic tier's (deterministic)
# cycles must exact-match and its wall-clock speedup over exact must meet
# the committed floor, and the DRAM preset smoke must reproduce every
# preset's committed cycle count. Serving (PR 8): the 1000-request load
# sweep's percentiles, knee index, and session-cache counters are
# deterministic and gated exact-match; the serial and parallel sweeps must
# agree; the warm-session vs cold-start wall-clock differential must meet
# its committed floor. Fabric (PR 9): the fabric section's host-DMA
# reference, ring/line reduce cycle counts, fabric transit cycles, and
# per-link stats (bytes, busy cycles, peak demand, active-span GB/s) are
# all deterministic and gated exact-match against the committed file; the
# run itself asserts the fabric arms leave the DRAM command stream
# bit-identical to host-DMA.
bench-smoke:
	cargo build --release -p stepstone-bench --bin bench_sim
	rm -rf target/bench-smoke && mkdir -p target/bench-smoke
	cd target/bench-smoke && ../../target/release/bench_sim
	@test -s target/bench-smoke/BENCH_sim.json || { echo "bench-smoke: BENCH_sim.json missing"; exit 1; }
	@python3 -c "import json,sys; d=json.load(open('target/bench-smoke/BENCH_sim.json')); \
c=json.load(open('BENCH_sim.json')); \
assert d['bench']=='sim_hot_path', 'bad bench id'; \
assert d['cycle_exact'] is True, 'modes disagree'; \
assert c['cycle_exact'] is True, 'committed BENCH_sim.json not cycle-exact'; \
assert all(d['config'][x]==c['config'][x] for x in ('m','k','n','level','pims')), \
'smoke shape differs from committed shape'; \
assert len(d['runs'])==3 and all(r['blocks']>0 and r['wall_ns']>0 for r in d['runs']), 'bad runs'; \
assert {r['mode'] for r in d['runs']} == {'streaming','streaming-serial','seed-replay'}, 'bad modes'; \
ra=d['region_addrs']; \
assert ra['materialized']>0 and ra['resident']>0 and ra['drop']>=1.0, 'region plans regressed'; \
floor=0.70*c['speedup_streaming_vs_seed']; \
assert d['speedup_streaming_vs_seed']>=floor, \
'speedup_streaming_vs_seed %.2fx regressed below committed floor %.2fx' \
% (d['speedup_streaming_vs_seed'], floor); \
sp=d['subpaper']; csp=c['subpaper']; \
assert sp['cycle_exact'] is True, 'sub-paper modes disagree'; \
share=sp['agen_ns_per_span']/sp['seed_ns_per_block']; \
cshare=csp['agen_ns_per_span']/csp['seed_ns_per_block']; \
assert share<=1.75*cshare, \
'agen_ns_per_span regressed >75%%: %.1f ns/span (%.3f of seed ns/block) vs committed %.1f (%.3f)' \
% (sp['agen_ns_per_span'], share, csp['agen_ns_per_span'], cshare); \
ac=d['agen_counters']; cac=c['agen_counters']; \
assert ac['boundary_successors']<=1.10*cac['boundary_successors']+16, \
'paper-scale live boundary successors regressed: %d vs committed %d (window successor broken?)' \
% (ac['boundary_successors'], cac['boundary_successors']); \
assert ac['window_jumps']>0 and ac['skeleton_hits']>0, 'window successor inactive at paper scale'; \
wsp=sp['boundary_successors']; cwsp=csp['boundary_successors']; \
assert wsp<=1.10*cwsp+16, \
'sub-paper warm boundary successors regressed: %d vs committed %d' % (wsp, cwsp); \
rc=d['run_counters']; crc=c['run_counters']; \
assert rc==crc, \
'run-granularity counters changed (deterministic; update BENCH_sim.json if intended): %r vs committed %r' \
% (rc, crc); \
assert rc['runs']>0 and rc['run_blocks']>rc['runs'], 'no hinted runs admitted at paper scale'; \
assert sp['run_counters']==csp['run_counters'], \
'sub-paper run counters changed: %r vs committed %r' % (sp['run_counters'], csp['run_counters']); \
ss=[r for r in d['runs'] if r['mode']=='streaming-serial'][0]; \
css=[r for r in c['runs'] if r['mode']=='streaming-serial'][0]; \
ceil=max(30.0, 1.35*css['ns_per_block']); \
assert ss['ns_per_block']<=ceil, \
'streaming-serial %.1f ns/block regressed above %.1f (committed %.1f)' \
% (ss['ns_per_block'], ceil, css['ns_per_block']); \
bk=d['backends']; cbk=c['backends']; \
assert bk['exact']['sim_cycles']==cbk['exact']['sim_cycles'], \
'exact-tier sim cycles changed: %d vs committed %d (default path must stay bit-identical)' \
% (bk['exact']['sim_cycles'], cbk['exact']['sim_cycles']); \
assert bk['analytic']['sim_cycles']==cbk['analytic']['sim_cycles'], \
'analytic-tier sim cycles changed (deterministic; update BENCH_sim.json if intended): %d vs %d' \
% (bk['analytic']['sim_cycles'], cbk['analytic']['sim_cycles']); \
assert bk['analytic']['speedup_vs_exact']>=bk['speedup_floor'], \
'analytic tier only %.0fx faster than exact, floor is %.0fx' \
% (bk['analytic']['speedup_vs_exact'], bk['speedup_floor']); \
assert [p['name'] for p in bk['presets']]==[p['name'] for p in cbk['presets']], 'preset list changed'; \
assert all(p['sim_cycles']==q['sim_cycles'] and p['clock_hz']==q['clock_hz'] \
for p,q in zip(bk['presets'],cbk['presets'])), \
'preset smoke changed (deterministic; update BENCH_sim.json if intended)'; \
sv=d['serving']; csv=c['serving']; \
assert sv['serial_equals_parallel'] is True, 'parallel serving sweep diverged from serial'; \
det=lambda s: [(p['mean_gap_cycles'],p['p50'],p['p95'],p['p99'],p['served'],p['rejected'],p['batches'],p['pim_batches']) for p in s['sweep']]; \
assert det(sv)==det(csv), \
'serving sweep percentiles changed (deterministic; update BENCH_sim.json if intended): %r vs committed %r' \
% (det(sv), det(csv)); \
assert sv['knee_index']==csv['knee_index'], \
'saturation knee moved: index %d vs committed %d' % (sv['knee_index'], csv['knee_index']); \
assert sv['sweep'][0]['rejected']==0 and sv['sweep'][-1]['rejected']>0, \
'sweep no longer spans unloaded to saturated'; \
fb=d['fabric']; cfb=c['fabric']; \
assert fb['nodes']>=4, 'fabric spans %d nodes, need >= 4' % fb['nodes']; \
assert fb['nodes']==cfb['nodes'], 'fabric node count changed'; \
assert fb['dram_identical'] is True, 'fabric run perturbed the DRAM command stream'; \
assert fb['host_dma']==cfb['host_dma'], \
'fabric host-DMA reference changed: %r vs committed %r' % (fb['host_dma'], cfb['host_dma']); \
ft={t['topology']: t for t in fb['topologies']}; cft={t['topology']: t for t in cfb['topologies']}; \
assert set(ft)==set(cft)=={'ring','line'}, 'fabric topology set changed: %r' % sorted(ft); \
assert all(ft[k][f]==cft[k][f] for k in ft for f in \
('total_cycles','reduce_cycles','fabric_cycles','bytes_injected')), \
'fabric cycle counts changed (deterministic; update BENCH_sim.json if intended): %r vs %r' \
% ({k: ft[k]['reduce_cycles'] for k in ft}, {k: cft[k]['reduce_cycles'] for k in cft}); \
assert all(ft[k]['links']==cft[k]['links'] and ft[k]['peak_link_gbps']==cft[k]['peak_link_gbps'] \
for k in ft), 'fabric per-link stats changed (deterministic; update BENCH_sim.json if intended)'; \
assert all(t['reduce_cycles']>=fb['host_dma']['reduce_cycles'] for t in fb['topologies']), \
'fabric reduce undercut its own local drain'; \
assert all(any(l['messages']>0 and l['peak_demand_bytes']>0 for l in t['links']) \
for t in fb['topologies']), 'fabric moved no traffic'; \
wc=sv['warm_vs_cold']; cwc=csv['warm_vs_cold']; \
assert wc['cycle_exact'] is True, 'warm and cold costers disagree on cycles'; \
assert wc['speedup']>=wc['speedup_floor'], \
'warm session only %.2fx faster than per-batch cold starts, floor %.1fx' \
% (wc['speedup'], wc['speedup_floor']); \
assert (wc['session_contexts'],wc['session_hits'],wc['session_misses'])== \
(cwc['session_contexts'],cwc['session_hits'],cwc['session_misses']), \
'session-cache build/reuse counts changed (deterministic; update BENCH_sim.json if intended)'; \
pgd=d['paging']; cpg=c['paging']; \
assert pgd['identity']['bit_identical'] is True, 'identity paging not bit-identical'; \
assert pgd['identity']['sim_cycles']==pgd['baseline_sim_cycles']==bk['exact']['sim_cycles'], \
'identity paging diverged from the streaming baseline: %r' % pgd['identity']; \
assert pgd['identity']['sim_cycles']==cpg['identity']['sim_cycles'], \
'identity-paged cycles changed: %d vs committed %d' \
% (pgd['identity']['sim_cycles'], cpg['identity']['sim_cycles']); \
assert [a['page_bytes'] for a in pgd['arms']]==[4096,65536,2097152,1073741824], \
'paging arm set changed: %r' % [a['page_bytes'] for a in pgd['arms']]; \
assert [a['sim_cycles'] for a in pgd['arms']]==[a['sim_cycles'] for a in cpg['arms']], \
'paged cycle counts changed (deterministic; update BENCH_sim.json if intended): %r vs committed %r' \
% ([a['sim_cycles'] for a in pgd['arms']], [a['sim_cycles'] for a in cpg['arms']]); \
assert all(a['run_counters']==b['run_counters'] for a,b in zip(pgd['arms'],cpg['arms'])), \
'paged run-granularity counters changed (deterministic; update BENCH_sim.json if intended)'; \
assert all(a['sampled']==b['sampled'] for a,b in zip(pgd['arms'],cpg['arms'])), \
'paged sampled locality changed (deterministic; update BENCH_sim.json if intended)'; \
pspl=[a['sampled']['page_splits'] for a in pgd['arms']]; \
assert pspl==sorted(pspl, reverse=True), 'page splits must shrink with page size: %r' % pspl; \
ploc=[a['sampled']['locality_vs_native'] for a in pgd['arms']]; \
assert all(x<=y+1e-9 for x,y in zip(ploc,ploc[1:])), \
'locality must grow with page size: %r' % ploc; \
assert ploc[-1]>0.999, '1 GiB pages must preserve native run locality: %r' % ploc; \
par_ok='skipped (1 cpu)' if d['config']['threads']<2 else '%.2fx' % d['speedup_parallel_vs_serial']; \
assert d['config']['threads']<2 or d['speedup_parallel_vs_serial']>=0.9, \
'parallel engine slower than serial: %.2fx' % d['speedup_parallel_vs_serial']; \
print('bench-smoke: ok (seed %.2fx >= floor %.2fx, parallel %s, region drop %.0fx, agen %.1f ns/span at %.3f of seed <= %.3f, %d live boundaries / %d jumps, %d runs mean %.1f blocks, %.1f ns/block <= %.1f, analytic %.0fx >= %.0fx, %d presets, serving knee@%d warm %.1fx >= %.1fx, fabric %d nodes ring +%d cycles peak %.1f GB/s, paging identity==baseline, 4KB locality %.2f -> 1GB %.2f)' \
% (d['speedup_streaming_vs_seed'], floor, par_ok, ra['drop'], sp['agen_ns_per_span'], share, 1.75*cshare, ac['boundary_successors'], ac['window_jumps'], rc['runs'], rc['mean_run_len'], ss['ns_per_block'], ceil, bk['analytic']['speedup_vs_exact'], bk['speedup_floor'], len(bk['presets']), sv['knee_index'], wc['speedup'], wc['speedup_floor'], fb['nodes'], ft['ring']['fabric_cycles'], ft['ring']['peak_link_gbps'], ploc[0], ploc[-1]))"

# The paper-scale evidence run (4096x4096 N=256 at StepStone-BG).
bench-paper:
	cargo build --release -p stepstone-bench --bin bench_sim
	./target/release/bench_sim
