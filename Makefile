# Developer entry points. `just` users: see justfile (same targets).

.PHONY: build test clippy ci bench-smoke bench-paper

build:
	cargo build --release

test:
	cargo test --workspace -q

clippy:
	cargo clippy --workspace --all-targets -q -- -D warnings

# The merge gate for perf-relevant changes: build, test, lint, and
# validate BENCH_sim.json on the quick shape.
ci: build test clippy bench-smoke
	@echo "ci: all gates green"

# Build release, run the simulator hot-path bench on a small config, and
# fail if BENCH_sim.json is missing or malformed.
bench-smoke:
	cargo build --release -p stepstone-bench --bin bench_sim
	rm -f BENCH_sim.json
	./target/release/bench_sim --quick
	@test -s BENCH_sim.json || { echo "bench-smoke: BENCH_sim.json missing"; exit 1; }
	@python3 -c "import json,sys; d=json.load(open('BENCH_sim.json')); \
assert d['bench']=='sim_hot_path', 'bad bench id'; \
assert d['cycle_exact'] is True, 'modes disagree'; \
assert len(d['runs'])==3 and all(r['blocks']>0 and r['wall_ns']>0 for r in d['runs']), 'bad runs'; \
assert {r['mode'] for r in d['runs']} == {'streaming','streaming-serial','seed-replay'}, 'bad modes'; \
ra=d['region_addrs']; \
assert ra['materialized']>0 and ra['resident']>0 and ra['drop']>=1.0, 'region plans regressed'; \
assert d['speedup_streaming_vs_seed']>0 and d['speedup_parallel_vs_serial']>0, 'bad speedups'; \
print('bench-smoke: BENCH_sim.json ok (seed %.2fx, parallel %.2fx, region drop %.0fx)' \
% (d['speedup_streaming_vs_seed'], d['speedup_parallel_vs_serial'], ra['drop']))"

# The paper-scale evidence run (4096x4096 N=256 at StepStone-BG).
bench-paper:
	cargo build --release -p stepstone-bench --bin bench_sim
	./target/release/bench_sim
