# Developer entry points. `just` users: see justfile (same targets).

.PHONY: build test bench-smoke bench-paper

build:
	cargo build --release

test:
	cargo test --workspace -q

# Build release, run the simulator hot-path bench on a small config, and
# fail if BENCH_sim.json is missing or malformed.
bench-smoke:
	cargo build --release -p stepstone-bench --bin bench_sim
	rm -f BENCH_sim.json
	./target/release/bench_sim --quick
	@test -s BENCH_sim.json || { echo "bench-smoke: BENCH_sim.json missing"; exit 1; }
	@python3 -c "import json,sys; d=json.load(open('BENCH_sim.json')); \
assert d['bench']=='sim_hot_path', 'bad bench id'; \
assert d['cycle_exact'] is True, 'modes disagree'; \
assert len(d['runs'])==2 and all(r['blocks']>0 and r['wall_ns']>0 for r in d['runs']), 'bad runs'; \
print('bench-smoke: BENCH_sim.json ok (speedup %.2fx)'%d['speedup_streaming_vs_seed'])"

# The paper-scale evidence run (4096x4096 N=256 at StepStone-BG).
bench-paper:
	cargo build --release -p stepstone-bench --bin bench_sim
	./target/release/bench_sim
