//! Cross-crate functional validation: the full StepStone flow — XOR
//! address mapping, block grouping, AGEN walks, localized-region layout,
//! partial-C reduction — must compute bit-for-bit-meaningful GEMM results
//! through the simulated memory system (the paper's §IV validation flow).

use stepstone::addr::{MappingId, PimLevel};
use stepstone::core::validate::validate_gemm;
use stepstone::core::{GemmContext, GemmSpec, SimOptions, SystemConfig};
use stepstone::pim::PimLevelConfig;

fn check(sys: &SystemConfig, spec: GemmSpec, opts: SimOptions) {
    let ctx = GemmContext::build(sys, &spec, &opts);
    assert!(
        validate_gemm(sys, &spec, &opts, &ctx),
        "functional mismatch: {spec} {:?}",
        opts.level_cfg.level
    );
}

#[test]
fn every_mapping_and_level_computes_correct_results() {
    for id in MappingId::ALL {
        let sys = SystemConfig::default().with_mapping(id);
        for level in PimLevel::ALL {
            check(&sys, GemmSpec::new(32, 512, 4), SimOptions::stepstone(level));
        }
    }
}

#[test]
fn partitioned_execution_is_correct() {
    let sys = SystemConfig::default();
    for (scratch, level) in [(4u64 << 10, PimLevel::BankGroup), (8 << 10, PimLevel::Device)] {
        let opts = SimOptions::stepstone(level)
            .with_level_cfg(PimLevelConfig::nominal(level).with_scratchpad(scratch));
        check(&sys, GemmSpec::new(128, 512, 8), opts);
    }
}

#[test]
fn subset_execution_is_correct() {
    let sys = SystemConfig::default();
    for drop in [1u32, 2] {
        check(
            &sys,
            GemmSpec::new(64, 512, 4),
            SimOptions::stepstone(PimLevel::BankGroup).with_subset(drop),
        );
    }
}

#[test]
fn wide_and_tall_aspect_ratios_are_correct() {
    let sys = SystemConfig::default();
    // Short/fat and tall/thin (the Fig. 11 aspect extremes, scaled down).
    check(&sys, GemmSpec::new(16, 2048, 4), SimOptions::stepstone(PimLevel::BankGroup));
    check(&sys, GemmSpec::new(512, 64, 4), SimOptions::stepstone(PimLevel::BankGroup));
}

#[test]
fn simulation_with_inline_validation_passes() {
    // The timing simulation itself can run with validation enabled.
    let sys = SystemConfig::default().with_validation();
    let r = stepstone::core::simulate_gemm(&sys, &GemmSpec::new(64, 256, 2), PimLevel::Device);
    assert!(r.total > 0);
}

#[test]
fn batch_sizes_from_one_to_thirtytwo_are_correct() {
    let sys = SystemConfig::default();
    for n in [1usize, 2, 8, 32] {
        check(&sys, GemmSpec::new(32, 256, n), SimOptions::stepstone(PimLevel::BankGroup));
    }
}
