//! The paper's headline quantitative claims, asserted as qualitative
//! invariants of this reproduction (exact factors depend on calibration;
//! EXPERIMENTS.md records the measured numbers side by side).

use stepstone::addr::PimLevel;
use stepstone::core::{
    simulate_gemm, simulate_gemm_opt, simulate_ncho, simulate_pei, AgenMode, CpuModel, GemmSpec,
    Phase, SimOptions, SystemConfig,
};
use stepstone::workloads::SyntheticTraffic;

fn sys() -> SystemConfig {
    SystemConfig::default()
}

#[test]
fn claim_minimum_latency_12x_vs_cpu() {
    // §I: "StepStone offers 12× lower minimum GEMM latency".
    let spec = GemmSpec::new(1024, 4096, 1);
    let bg = simulate_gemm(&sys(), &spec, PimLevel::BankGroup).total;
    let cpu = CpuModel::default().cycles(&spec);
    let ratio = cpu as f64 / bg as f64;
    assert!((8.0..20.0).contains(&ratio), "min-latency speedup {ratio}");
}

#[test]
fn claim_throughput_under_latency_constraint() {
    // §I: "77× higher throughput under the strictest latency constraints
    // (batch-1 on the CPU) … drops to 2.8× at the batch-32 constraint".
    let cpu = CpuModel::default();
    let cpu1 = cpu.cycles(&GemmSpec::new(1024, 4096, 1));
    let cpu32 = cpu.cycles(&GemmSpec::new(1024, 4096, 32));
    let dv32 = simulate_gemm(&sys(), &GemmSpec::new(1024, 4096, 32), PimLevel::Device).total;
    assert!(dv32 <= cpu1, "batch-32 PIM must fit in the CPU's batch-1 latency");
    let strict = 32.0 * cpu1 as f64 / dv32 as f64;
    assert!((30.0..120.0).contains(&strict), "strict-constraint throughput {strict}x");
    let relaxed = cpu32 as f64 / dv32 as f64;
    assert!((1.5..6.0).contains(&relaxed), "relaxed-constraint benefit {relaxed}x");
}

#[test]
fn claim_stepstone_flow_beats_vector_chopim() {
    // §I: the grouping-aware flow improves 35–55% over the GEMV-style
    // Chopim execution (nCHO) — widened bounds here because nCHO also pays
    // per-GEMV copies.
    let spec = GemmSpec::new(1024, 4096, 4);
    let stp = simulate_gemm(&sys(), &spec, PimLevel::BankGroup).total;
    let ncho = simulate_ncho(&sys(), &spec, PimLevel::BankGroup, None).total;
    assert!(ncho as f64 > 1.3 * stp as f64, "ncho={ncho} stp={stp}");
}

#[test]
fn claim_accelerated_localization_helps() {
    // §I: accelerating localization/reduction at the controller buys up to
    // an additional 40%.
    use stepstone::pim::LocalizationMode;
    let spec = GemmSpec::new(1024, 4096, 16);
    let dma = simulate_gemm(&sys(), &spec, PimLevel::BankGroup).total;
    let host = simulate_gemm(
        &sys().with_localization(LocalizationMode::HostMediated { gap_cycles: 4 }),
        &spec,
        PimLevel::BankGroup,
    )
    .total;
    let gain = host as f64 / dma as f64 - 1.0;
    assert!((0.05..0.8).contains(&gain), "localization acceleration gain {gain}");
}

#[test]
fn claim_agen_enables_long_running_kernels_under_colocation() {
    // §I: the AGEN's long-running kernels improve PIM performance by up to
    // 5.5× when the CPU runs memory-intensive tasks concurrently.
    let spec = GemmSpec::new(4096, 1024, 8);
    let kernel = |opts: &SimOptions, traffic: bool| {
        let mut t = SyntheticTraffic::spec_mix(7, u64::MAX / 2);
        let r = simulate_gemm_opt(
            &sys(),
            &spec,
            opts,
            if traffic { Some(&mut t) } else { None },
        );
        r.total - r.phase(Phase::Localization) - r.phase(Phase::Reduction)
    };
    let stp = kernel(&SimOptions::stepstone(PimLevel::BankGroup), true);
    let echo = kernel(&SimOptions::echo(PimLevel::BankGroup), true);
    let speedup = echo as f64 / stp as f64;
    assert!(speedup > 1.2, "colocation speedup {speedup}");
    // Without contention the two flows are close (the AGEN effect is about
    // the command channel, not raw bandwidth).
    let stp_q = kernel(&SimOptions::stepstone(PimLevel::BankGroup), false);
    let echo_q = kernel(&SimOptions::echo(PimLevel::BankGroup), false);
    assert!((echo_q as f64) < 1.6 * stp_q as f64);
}

#[test]
fn claim_agen_beats_naive_address_generation() {
    // §V-C: up to ~4× (8× at BG) over naive scanning.
    let spec = GemmSpec::new(1024, 4096, 4);
    let fast = simulate_gemm(&sys(), &spec, PimLevel::BankGroup).total;
    let naive =
        simulate_gemm(&SystemConfig { agen: AgenMode::Naive, ..sys() }, &spec, PimLevel::BankGroup)
            .total;
    let ratio = naive as f64 / fast as f64;
    assert!((2.0..12.0).contains(&ratio), "agen speedup {ratio}");
}

#[test]
fn claim_pim_level_tradeoff() {
    // §V-A/§III-E: BG wins the batch-1 minimum latency by ≈2.8× over DV;
    // CH is the slowest level.
    let spec = GemmSpec::new(1024, 4096, 1);
    let bg = simulate_gemm(&sys(), &spec, PimLevel::BankGroup).total;
    let dv = simulate_gemm(&sys(), &spec, PimLevel::Device).total;
    let ch = simulate_gemm(&sys(), &spec, PimLevel::Channel).total;
    assert!(bg < dv && dv < ch);
    let r = dv as f64 / bg as f64;
    assert!((2.0..4.0).contains(&r), "BG vs DV at batch-1: {r}");
}

#[test]
fn claim_subset_tradeoff_saves_on_small_matrices() {
    // §III-E/Fig. 10: running half the BG PIMs can win ~25% when
    // localization dominates.
    let spec = GemmSpec::new(512, 2048, 32);
    let full = simulate_gemm(&sys(), &spec, PimLevel::BankGroup).total;
    let half = simulate_gemm_opt(
        &sys(),
        &spec,
        &SimOptions::stepstone(PimLevel::BankGroup).with_subset(1),
        None,
    )
    .total;
    let gain = full as f64 / half as f64 - 1.0;
    assert!(gain > 0.05, "subset gain {gain}");
    // And it costs performance on large matrices (it is a tradeoff).
    let spec_big = GemmSpec::new(4096, 4096, 4);
    let full_big = simulate_gemm(&sys(), &spec_big, PimLevel::BankGroup).total;
    let half_big = simulate_gemm_opt(
        &sys(),
        &spec_big,
        &SimOptions::stepstone(PimLevel::BankGroup).with_subset(1),
        None,
    )
    .total;
    assert!(half_big > full_big);
}

#[test]
fn claim_pei_command_bandwidth_bottleneck() {
    // §V-B: PEI cannot utilize BG-level parallelism.
    let spec = GemmSpec::new(1024, 4096, 4);
    let pei_bg = simulate_pei(&sys(), &spec, PimLevel::BankGroup, None).total;
    let stp_bg = simulate_gemm(&sys(), &spec, PimLevel::BankGroup).total;
    assert!(pei_bg as f64 > 2.0 * stp_bg as f64, "pei {pei_bg} vs stp {stp_bg}");
}
