//! Integration coverage for the serving strategies (§III-E/§V-B) and the
//! address-mapping reverse-engineering assumed by §III-D.

use stepstone::addr::reveng::{recover, recover_from_mapping};
use stepstone::addr::{mapping_by_id, MappingId, PimLevel};
use stepstone::core::{
    cpu_crossover_batch, simulate_gemm, simulate_gemm_fused, simulate_gemm_opt,
    simulate_split_batch, CpuModel, GemmSpec, SimOptions, SystemConfig, PIM_CHUNK_BATCH,
};

#[test]
fn split_batch_keeps_pim_ahead_of_cpu_for_hundreds_of_samples() {
    // §V-B: batch splitting extends the PIM win far past the chunk size.
    let sys = SystemConfig::default();
    let cpu = CpuModel::default();
    let n = 4 * PIM_CHUNK_BATCH;
    let pim = simulate_split_batch(&sys, 1024, 4096, n, PimLevel::Device).total;
    let host = cpu.cycles(&GemmSpec::new(1024, 4096, n));
    assert!(pim < host, "pim={pim} cpu={host} at N={n}");
    let crossover = cpu_crossover_batch(&sys, 1024, 4096, PimLevel::Device)
        .expect("the CPU eventually overtakes within the search cap");
    assert!(crossover > n, "crossover {crossover}");
}

#[test]
fn fused_execution_helps_every_non_pow2_table1_shape() {
    // Table I's non-power-of-two weights (GPT2 and DLRM shapes).
    let sys = SystemConfig::default();
    for (m, k) in [(1600usize, 1600usize), (2560, 512)] {
        let spec = GemmSpec::new(m, k, 4);
        let opts = SimOptions::stepstone(PimLevel::BankGroup);
        let serial = simulate_gemm_opt(&sys, &spec, &opts, None).total;
        let fused = simulate_gemm_fused(&sys, &spec, &opts, None).total;
        assert!(fused <= serial, "{m}x{k}: fused={fused} serial={serial}");
    }
}

#[test]
fn reverse_engineering_supports_pim_bringup() {
    // The full loop the paper assumes: recover the mapping from a decode
    // oracle, then run StepStone's grouping on the recovered masks.
    let truth = mapping_by_id(MappingId::SandyBridge);
    let rec = recover(*truth.geometry(), |pa| truth.decode(pa), 512).expect("linear");
    for blk in (0..(1u64 << 14)).step_by(31) {
        assert_eq!(rec.decode(blk * 64), truth.decode(blk * 64));
    }
    // And the masks round-trip through the high-level helper.
    let rec2 = recover_from_mapping(&truth);
    assert_eq!(rec.ch_masks, rec2.ch_masks);
}

#[test]
fn level_choice_is_consistent_between_estimator_and_sim_for_models() {
    // The §III-E heuristic must agree with detailed simulation on which
    // level wins for the Table II model shapes at their batch sizes.
    let sys = SystemConfig::default();
    for (m, k, n) in [(1024usize, 4096usize, 32usize), (2048, 8192, 4)] {
        let spec = GemmSpec::new(m, k, n);
        let bg = simulate_gemm(&sys, &spec, PimLevel::BankGroup).total;
        let dv = simulate_gemm(&sys, &spec, PimLevel::Device).total;
        let est_bg = stepstone::core::estimate_pim_cycles(&sys, &spec, PimLevel::BankGroup, 0);
        let est_dv = stepstone::core::estimate_pim_cycles(&sys, &spec, PimLevel::Device, 0);
        // Agreement required only when the margin is decisive (>25%).
        let sim_margin = (bg as f64 - dv as f64).abs() / bg.min(dv) as f64;
        if sim_margin > 0.25 {
            assert_eq!(est_bg < est_dv, bg < dv, "{m}x{k} N={n}");
        }
    }
}
