//! Smoke tests for the figure-regeneration harness: every table and figure
//! of the paper's evaluation must build a non-empty result at quick scale.

use stepstone_bench::figures;
use stepstone_bench::Scale;

fn assert_populated(f: &stepstone_bench::FigureResult, min_rows: usize) {
    assert!(!f.tables.is_empty(), "{} has no tables", f.id);
    let rows: usize = f.tables.iter().map(|(_, t)| t.rows.len()).sum();
    assert!(rows >= min_rows, "{}: only {rows} rows", f.id);
    // Rendering must not panic and must mention the id.
    assert!(f.render().contains(&f.id));
}

#[test]
fn table1_and_table2() {
    assert_populated(&figures::table1::run(Scale::Quick), 10);
    assert_populated(&figures::table2::run(Scale::Quick), 20);
}

#[test]
fn fig1_and_fig7_rooflines() {
    let f1 = figures::fig1::run(Scale::Quick);
    assert_populated(&f1, 3);
    let f7 = figures::fig7::run(Scale::Quick);
    assert_populated(&f7, 2);
}

#[test]
fn fig6_latency_breakdown() {
    let f = figures::fig6::run(Scale::Quick);
    assert_populated(&f, 6);
    // Every simulated row's phase columns must sum close to its total.
    let t = &f.tables[0].1;
    for row in t.rows.iter().filter(|r| !r[0].starts_with("CPU")) {
        let parts: u64 = row[1..7].iter().map(|c| c.parse::<u64>().unwrap()).sum();
        let total: u64 = row[7].parse().unwrap();
        assert!(parts <= total + total / 5, "{row:?}");
        assert!(parts * 3 >= total, "breakdown too small: {row:?}");
    }
}

#[test]
fn fig8_end_to_end() {
    let f = figures::fig8::run(Scale::Quick);
    assert_populated(&f, 7);
}

#[test]
fn fig9_fig10_fig11_fig12() {
    assert_populated(&figures::fig9::run(Scale::Quick), 3);
    assert_populated(&figures::fig10::run(Scale::Quick), 4);
    assert_populated(&figures::fig11::run(Scale::Quick), 15);
    assert_populated(&figures::fig12::run(Scale::Quick), 3);
}

#[test]
fn fig13_colocation_and_fig14_energy() {
    let f13 = figures::fig13::run(Scale::Quick);
    assert_populated(&f13, 4);
    // Speedups must all be >= ~1 (eCHO never beats StepStone here).
    for row in &f13.tables[0].1.rows {
        let s: f64 = row[4].trim_end_matches('x').parse().unwrap();
        assert!(s > 0.9, "{row:?}");
    }
    assert_populated(&figures::fig14::run(Scale::Quick), 4);
}

#[test]
fn ablations() {
    let f = figures::ablations::run(Scale::Quick);
    assert!(f.tables.len() >= 4);
}

#[test]
fn crossover_serving() {
    let f = figures::crossover::run(Scale::Quick);
    assert_populated(&f, 3);
    // Each row either reports a concrete crossover batch (a positive
    // multiple of the 32-sample chunk) or the explicit "none" marker —
    // never a bare search-cap value masquerading as a crossover.
    for row in &f.tables[0].1.rows {
        let cell = &row[2];
        if let Ok(n) = cell.parse::<usize>() {
            assert!(n > 0 && n % 32 == 0 && n <= 1 << 14, "{row:?}");
        } else {
            assert!(cell.contains("none"), "{row:?}");
        }
    }
}
