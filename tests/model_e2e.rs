//! End-to-end model execution invariants across the seven Fig. 8 schemes.

use stepstone::core::SystemConfig;
use stepstone::models::{bert, dlrm, Bucket, ModelExecutor, Scheme};

#[test]
fn all_schemes_complete_on_dlrm() {
    let mut ex = ModelExecutor::new(SystemConfig::default());
    let model = dlrm(4);
    let mut totals = Vec::new();
    for scheme in Scheme::ALL {
        let r = ex.run(&model, scheme);
        assert!(r.total_cycles > 0, "{scheme:?}");
        assert_eq!(r.model, "DLRM");
        totals.push((scheme, r.total_cycles));
    }
    // The ordering the paper's Fig. 8 shows for the PIM approaches.
    let get = |s: Scheme| totals.iter().find(|(x, _)| *x == s).unwrap().1;
    assert!(get(Scheme::Stp) <= get(Scheme::Echo));
    assert!(get(Scheme::Echo) <= get(Scheme::Ncho));
    assert!(get(Scheme::Stp) < get(Scheme::Pei));
    assert!(get(Scheme::Stp) < get(Scheme::ICpu));
    assert!(get(Scheme::ICpu) < get(Scheme::Cpu));
}

#[test]
fn stp_star_uses_only_device_level() {
    let mut ex = ModelExecutor::new(SystemConfig::default());
    let r = ex.run(&dlrm(4), Scheme::StpStar);
    assert_eq!(r.bucket(Bucket::PimBg), 0, "STP* is the low-power DV-only mode");
}

#[test]
fn bert_stp_speedup_is_large() {
    // Paper §V-B: "StepStone PIM achieves 12× higher performance than the
    // CPU for BERT"; accept a broad band around it.
    let mut ex = ModelExecutor::new(SystemConfig::default());
    let model = bert(4);
    let cpu = ex.run(&model, Scheme::Cpu).total_cycles;
    let stp = ex.run(&model, Scheme::Stp).total_cycles;
    let speedup = cpu as f64 / stp as f64;
    assert!((4.0..25.0).contains(&speedup), "BERT CPU/STP = {speedup}");
}

#[test]
fn cpu_other_is_identical_across_schemes() {
    // Non-GEMM operators always run on the CPU, so their contribution must
    // not depend on the scheme.
    let mut ex = ModelExecutor::new(SystemConfig::default());
    let model = dlrm(4);
    let other: Vec<u64> =
        Scheme::ALL.iter().map(|&s| ex.run(&model, s).bucket(Bucket::CpuOther)).collect();
    assert!(other.windows(2).all(|w| w[0] == w[1]), "{other:?}");
}
