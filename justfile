# Developer entry points (mirrors the Makefile; this container ships
# `make` but not `just` — keep both in sync).

build:
    cargo build --release

test:
    cargo test --workspace -q

clippy:
    cargo clippy --workspace --all-targets -q -- -D warnings

# Warning-free API docs (rustdoc lints are errors).
doc:
    make doc

# Engine equivalence matrix + window-successor differential suite.
matrix:
    make matrix

# Build + test + clippy + doc + matrix + bench-smoke (the merge gate).
ci:
    make ci

# Build release, run the hot-path bench on a small config, validate
# BENCH_sim.json.
bench-smoke:
    make bench-smoke

# The paper-scale evidence run.
bench-paper:
    make bench-paper
