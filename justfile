# Developer entry points (mirrors the Makefile; this container ships
# `make` but not `just` — keep both in sync).

build:
    cargo build --release

test:
    cargo test --workspace -q

# Build release, run the hot-path bench on a small config, validate
# BENCH_sim.json.
bench-smoke:
    make bench-smoke

# The paper-scale evidence run.
bench-paper:
    make bench-paper
