//! Profiling harness: generation-only cost of the kernel step streams
//! (AGEN walks, span programs, region cursors) plus isolated phase/timing
//! micro-costs — the companion to `phase_time` (whole phases) and
//! `sim_loop` (steady-state repeated simulations).
//!
//! Usage: `cargo run --release --example agen_prof [M K N]`.

use std::time::Instant;
use stepstone_addr::PimLevel;
use stepstone_core::flow::{GemmContext, KernelStream};
use stepstone_core::{GemmSpec, SimOptions, SystemConfig};

fn main() {
    let args: Vec<usize> = std::env::args().skip(1).filter_map(|a| a.parse().ok()).collect();
    let (m, k, n) = if args.len() == 3 { (args[0], args[1], args[2]) } else { (512, 512, 32) };
    let sys = SystemConfig::default();
    let spec = GemmSpec::new(m, k, n);
    let opts = SimOptions::stepstone(PimLevel::BankGroup);
    let t0 = Instant::now();
    let ctx = GemmContext::build(&sys, &spec, &opts);
    println!("ctx build: {:.1} ms", t0.elapsed().as_secs_f64() * 1e3);

    // Full kernel stream generation (all steps, all PIMs).
    let t0 = Instant::now();
    let mut steps = 0u64;
    for pix in 0..ctx.active_pims.len() {
        steps += KernelStream::new(&ctx, &sys, &opts, pix).count() as u64;
    }
    let el = t0.elapsed();
    println!(
        "kernel stream gen: {:.1} ms  {:.1} ns/step ({steps} steps)",
        el.as_secs_f64() * 1e3,
        el.as_nanos() as f64 / steps as f64
    );

    // AGEN walks alone (the production span-program path, per block).
    let t0 = Instant::now();
    let mut walks = 0u64;
    let mut blocks = 0u64;
    for &pim in ctx.active_pims.iter() {
        for grp in 0..ctx.ga.n_groups() {
            if !ctx.ga.is_admissible(pim, grp) {
                continue;
            }
            for rpart in 0..ctx.plan.rparts {
                for cpart in 0..ctx.plan.cparts {
                    let mut w = ctx.walk_stream(sys.agen, pim, grp, rpart, cpart);
                    while w.next().is_some() {
                        blocks += 1;
                    }
                    walks += 1;
                }
            }
        }
    }
    let el = t0.elapsed();
    println!(
        "agen walks (per-block): {:.1} ms  {:.1} ns/block ({blocks} blocks, {walks} walks)",
        el.as_secs_f64() * 1e3,
        el.as_nanos() as f64 / blocks as f64
    );

    // Span-level count.
    use stepstone_addr::groups::partition_constraints;
    use stepstone_addr::StepStoneAgen;
    let t0 = Instant::now();
    let mut spans = 0u64;
    let mut walks = 0u64;
    for &pim in ctx.active_pims.iter() {
        for grp in 0..ctx.ga.n_groups() {
            if !ctx.ga.is_admissible(pim, grp) {
                continue;
            }
            for rpart in 0..ctx.plan.rparts {
                for cpart in 0..ctx.plan.cparts {
                    let mut cs = ctx.ga.constraints_for(pim, grp);
                    cs.extend(partition_constraints(
                        ctx.layout.mrow_mask(),
                        ctx.plan.rparts,
                        rpart,
                    ));
                    cs.extend(partition_constraints(
                        ctx.layout.mcol_mask(),
                        ctx.plan.cparts,
                        cpart,
                    ));
                    spans += StepStoneAgen::new(cs, ctx.layout.base, ctx.layout.end())
                        .spans()
                        .count() as u64;
                    walks += 1;
                }
            }
        }
    }
    let el = t0.elapsed();
    println!(
        "agen spans: {:.1} ms  {:.1} ns/span ({spans} spans, {walks} walks)",
        el.as_secs_f64() * 1e3,
        el.as_nanos() as f64 / spans as f64
    );

    // Region cursor cost: full iteration of every B and C region plan.
    let t0 = Instant::now();
    let mut region_blocks = 0u64;
    let mut acc = 0u64;
    for r in ctx.b_regions.iter().chain(ctx.c_regions.iter()) {
        for pa in r.iter() {
            acc ^= pa;
            region_blocks += 1;
        }
    }
    let el = t0.elapsed();
    println!(
        "region iter: {:.1} ms  {:.1} ns/block ({region_blocks} blocks, acc {acc:x})",
        el.as_secs_f64() * 1e3,
        el.as_nanos() as f64 / region_blocks as f64
    );

    // Step-mix decomposition of the kernel stream: count steps per phase.
    use stepstone_core::Phase;
    let t0 = Instant::now();
    let mut by_cat = [0u64; 8];
    let mut launches = 0u64;
    for pix in 0..ctx.active_pims.len() {
        for s in KernelStream::new(&ctx, &sys, &opts, pix) {
            match s {
                stepstone_core::engine::Step::Access { cat, .. } => by_cat[cat.index()] += 1,
                stepstone_core::engine::Step::Launch => launches += 1,
            }
        }
    }
    let el = t0.elapsed();
    println!(
        "stream mix ({:.1} ms): gemm {} fillB {} fillC {} drainC {} launch {launches}",
        el.as_secs_f64() * 1e3,
        by_cat[Phase::Gemm.index()],
        by_cat[Phase::FillB.index()],
        by_cat[Phase::FillC.index()],
        by_cat[Phase::DrainC.index()],
    );

    // Raw timing-model cost: interleaved region writes (the localization
    // pattern) through probe+access, no engine.
    use stepstone_dram::{CasKind, Port, TimingState};
    let mut ts = TimingState::new(sys.dram);
    let iters: Vec<_> = (0..ctx.active_pims.len())
        .filter(|&pix| ctx.pim_channel(ctx.active_pims[pix]) == 0)
        .map(|pix| ctx.b_regions[pix].iter())
        .collect();
    let mut streams: Vec<_> = iters;
    let t0 = Instant::now();
    let mut n = 0u64;
    let mut t = 0u64;
    'outer: loop {
        let mut any = false;
        for s in streams.iter_mut() {
            if let Some(pa) = s.next() {
                any = true;
                let c = ctx.mapping.decode(pa);
                let p = ts.probe(c, CasKind::Write, Port::Channel, t);
                let bt = ts.access(c, CasKind::Write, Port::Channel, t);
                t = bt.cas_at;
                n += 2;
                let _ = p;
            }
        }
        if !any {
            break 'outer;
        }
    }
    let el = t0.elapsed();
    println!(
        "raw probe+access (loc pattern): {:.1} ms  {:.1} ns/op ({n} ops)",
        el.as_secs_f64() * 1e3,
        el.as_nanos() as f64 / n as f64
    );

    // The real localization phase, serial engine, timed alone.
    use stepstone_core::engine::run_phase;
    use stepstone_core::flow::transfer_cursors;
    use stepstone_dram::CommandBus;
    for round in 0..2 {
        let mut ts = TimingState::new(sys.dram);
        let mut bus = CommandBus::new(sys.dram.geom.channels as usize);
        let mut loc = transfer_cursors(
            &ctx,
            &ctx.b_regions,
            true,
            Phase::Localization,
            0,
            sys.localization.inter_block_gap(),
        );
        let t0 = Instant::now();
        run_phase(&mut ts, &mut bus, &ctx.mapping, &mut loc, None);
        let el = t0.elapsed();
        let blocks = ts.stats.accesses();
        println!(
            "loc run_phase[{round}]: {:.1} ms  {:.1} ns/blk ({blocks} blocks)",
            el.as_secs_f64() * 1e3,
            el.as_nanos() as f64 / blocks as f64
        );
    }
}
