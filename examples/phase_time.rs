//! Per-phase wall-clock breakdown of one streaming GEMM simulation —
//! the profiling companion to `bench_sim` (which times end-to-end runs).
//! Each phase also reports its run-granularity statistics: hinted runs
//! admitted as single scheduling objects, their mean length, and the
//! per-block fallback split by cause (refresh / row / trace / traffic /
//! other).
//!
//! Usage: `cargo run --release --example phase_time [M K N] \
//!         [--backend=exact|analytic] [--preset=ddr4|ddr5|lpddr5|hbm2]`
//! (defaults to 2048 2048 64 at StepStone-BG on the exact DDR4 tier).

use std::time::Instant;
use stepstone_addr::PimLevel;
use stepstone_core::engine::{
    reset_run_counters, run_counters, run_phase_auto, RunCounters, UnitCursor, FB_LABELS,
};
use stepstone_core::flow::{transfer_cursors, GemmContext, KernelStream};
use stepstone_core::{GemmSpec, Phase, SimOptions, SystemConfig};
use stepstone_dram::{
    AnalyticState, BackendKind, CommandBus, DramConfig, MemoryBackend, TimingState,
};

fn main() {
    let mut dims: Vec<usize> = Vec::new();
    let mut backend = BackendKind::Exact;
    let mut dram = DramConfig::default();
    let mut preset = "ddr4".to_string();
    for arg in std::env::args().skip(1) {
        if let Some(name) = arg.strip_prefix("--backend=") {
            backend = BackendKind::by_name(name)
                .unwrap_or_else(|| panic!("unknown backend '{name}' (exact|analytic)"));
        } else if let Some(name) = arg.strip_prefix("--preset=") {
            dram = DramConfig::by_name(name)
                .unwrap_or_else(|| panic!("unknown preset '{name}' (ddr4|ddr5|lpddr5|hbm2)"));
            preset = name.to_string();
        } else if let Ok(v) = arg.parse() {
            dims.push(v);
        }
    }
    let (m, k, n) =
        if dims.len() == 3 { (dims[0], dims[1], dims[2]) } else { (2048, 2048, 64) };
    let sys = SystemConfig { parallel: false, ..SystemConfig::default() }
        .with_backend(backend)
        .with_dram(dram);
    println!("backend {} on {preset} ({} MHz)", backend.name(), dram.clock_hz / 1_000_000);
    match sys.backend {
        BackendKind::Exact => profile(&mut TimingState::new(sys.dram), &sys, m, k, n),
        BackendKind::Analytic => profile(&mut AnalyticState::new(sys.dram), &sys, m, k, n),
    }
}

fn profile<B: MemoryBackend>(ts: &mut B, sys: &SystemConfig, m: usize, k: usize, n: usize) {
    let spec = GemmSpec::new(m, k, n);
    let opts = SimOptions::stepstone(PimLevel::BankGroup);
    let ctx = GemmContext::build(sys, &spec, &opts);
    let mut bus = CommandBus::new(sys.dram.geom.channels as usize);
    let loc_mode = sys.localization;

    let phase_stats = |label: &str, t0: Instant, blocks: u64, rc: RunCounters| {
        println!(
            "{label}: {:>9.1} ms  {:>6.1} ns/blk ({blocks} blocks)",
            t0.elapsed().as_secs_f64() * 1e3,
            t0.elapsed().as_nanos() as f64 / blocks.max(1) as f64,
        );
        let splits: Vec<String> = FB_LABELS
            .iter()
            .enumerate()
            .filter(|&(i, _)| rc.fallback[i] > 0)
            .map(|(i, l)| format!("{l} {}", rc.fallback[i]))
            .collect();
        println!(
            "        {} runs admitted, mean {:.1} blocks; per-block splits: {}",
            rc.runs,
            rc.mean_run_len(),
            if splits.is_empty() { "none".into() } else { splits.join(", ") },
        );
    };

    let t0 = Instant::now();
    reset_run_counters();
    let mut loc = transfer_cursors(
        &ctx,
        &ctx.b_regions,
        true,
        Phase::Localization,
        0,
        loc_mode.inter_block_gap(),
    );
    let loc_end = run_phase_auto(ts, &mut bus, &ctx.mapping, &mut loc, None, sys.parallel);
    let loc_blocks = ts.stats().accesses();
    phase_stats("loc   ", t0, loc_blocks, run_counters());

    let t0 = Instant::now();
    reset_run_counters();
    let mut units: Vec<UnitCursor> = (0..ctx.active_pims.len())
        .map(|pix| {
            let mut u = UnitCursor::from_source(
                "pim",
                ctx.pim_channel(ctx.active_pims[pix]),
                opts.level_cfg.port(),
                KernelStream::new(&ctx, sys, &opts, pix),
                loc_end,
                opts.level_cfg.compute_cycles_per_block(ctx.n),
                opts.level_cfg.simd_ops_per_block(ctx.n),
                opts.level_cfg.pipeline_depth as usize,
                sys.launch.slots_for(opts.granularity),
                sys.launch.launch_latency,
                sys.dram.timing.t_bl,
                None,
            );
            u.exclusive = true;
            u
        })
        .collect();
    run_phase_auto(ts, &mut bus, &ctx.mapping, &mut units, None, sys.parallel);
    let kern_blocks = ts.stats().accesses() - loc_blocks;
    phase_stats("kernel", t0, kern_blocks, run_counters());

    let kernel_end = units.iter().map(|u| u.end_time).max().unwrap_or(loc_end);
    let t0 = Instant::now();
    reset_run_counters();
    let mut red = transfer_cursors(
        &ctx,
        &ctx.c_regions,
        false,
        Phase::Reduction,
        kernel_end,
        loc_mode.inter_block_gap(),
    );
    run_phase_auto(ts, &mut bus, &ctx.mapping, &mut red, None, sys.parallel);
    let red_blocks = ts.stats().accesses() - loc_blocks - kern_blocks;
    phase_stats("red   ", t0, red_blocks, run_counters());
}
