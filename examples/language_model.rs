//! Token-by-token language-model generation (the paper's XLM scenario):
//! as the sequence grows, the effective batch N = bsz × seq grows, and the
//! level-selection heuristic migrates GEMMs between bank-group-level and
//! device-level PIMs (§V-B).
//!
//! ```sh
//! cargo run --release --example language_model
//! ```

use stepstone::core::{choose_backend, simulate_gemm, Backend, CpuModel, GemmSpec, SystemConfig};
use stepstone::prelude::PimLevel;

fn main() {
    let sys = SystemConfig::default();
    let cpu = CpuModel::default();
    let bsz = 4usize;
    println!("XLM-style generation: MLP 2048x8192, batch {bsz}, sequence 1..=8\n");
    println!(
        "{:<5} {:<4} {:>12} {:>12} {:>12}  chosen",
        "seq", "N", "BG cycles", "DV cycles", "CPU cycles"
    );
    let mut total = 0u64;
    for seq in 1..=8usize {
        let n = bsz * seq;
        let spec = GemmSpec::new(2048, 8192, n);
        let bg = simulate_gemm(&sys, &spec, PimLevel::BankGroup).total;
        let dv = simulate_gemm(&sys, &spec, PimLevel::Device).total;
        let c = cpu.cycles(&spec);
        let chosen = choose_backend(&sys, &spec, &cpu);
        total += match chosen {
            Backend::Pim { level: PimLevel::BankGroup, .. } => bg,
            Backend::Pim { level: PimLevel::Device, .. } => dv,
            _ => c,
        };
        println!("{seq:<5} {n:<4} {bg:>12} {dv:>12} {c:>12}  {}", chosen.tag());
    }
    println!(
        "\ntotal MLP cycles across the generation: {total} \
         ({:.0} us at the {:.1} GHz DRAM clock)",
        total as f64 / sys.dram.clock_hz as f64 * 1e6,
        sys.dram.clock_hz as f64 / 1e9,
    );
    println!(
        "paper §V-B: \"XLM utilizes BG-level PIMs when N is small and, later, switches \
         to DV-level PIMs once arithmetic performance saturates and overheads start to \
         dominate.\""
    );
}
