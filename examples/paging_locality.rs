//! How much block-grouping locality survives VA→PA paging?
//!
//! The paper assumes physically contiguous arenas; this sweep fragments
//! them through a page-colored `PageMap` at every page size from 4 KB to
//! 1 GB and reports, per arm: simulated cycles vs the contiguous baseline,
//! the run-granularity counters (page-clipped hints shorten the whole-run
//! promises the engine can admit), and a sampled same-key run-length ratio
//! against the native stream. An identity map is asserted bit-identical,
//! and a PTW-cost arm shows when the page walk stops hiding under the
//! memory-bound stream.
//!
//! Usage: `cargo run --release --example paging_locality [M K N]`.

use stepstone_addr::{paged_run_stats, PageMap, PagingConfig, PimLevel};
use stepstone_core::engine::{reset_run_counters, run_counters};
use stepstone_core::{
    simulate_pow2_gemm_exec, ExecMode, GemmContext, GemmSpec, SimOptions, SystemConfig,
};

fn main() {
    let args: Vec<usize> = std::env::args().skip(1).filter_map(|a| a.parse().ok()).collect();
    let (m, k, n) = if args.len() == 3 { (args[0], args[1], args[2]) } else { (1024, 2048, 16) };
    let sys = SystemConfig { parallel: false, ..SystemConfig::default() };
    let spec = GemmSpec::new(m, k, n);
    let opts = SimOptions::stepstone(PimLevel::BankGroup);
    let mapping = sys.mapping();

    reset_run_counters();
    let base = simulate_pow2_gemm_exec(&sys, &spec, &opts, None, ExecMode::Streaming);
    let base_rc = run_counters();
    println!(
        "{m}x{k} N={n} STP-BG contiguous: {} cycles, {} runs (mean {:.1} blocks)",
        base.total,
        base_rc.runs,
        base_rc.mean_run_len()
    );

    // Identity paging is free at any page size: the stream is never wrapped.
    let isys = sys.clone().with_paging(PagingConfig::identity(4096));
    let ir = simulate_pow2_gemm_exec(&isys, &spec, &opts, None, ExecMode::Streaming);
    assert_eq!(ir.total, base.total, "identity paging must be bit-identical");
    println!("identity 4KB: bit-identical ({} cycles)", ir.total);

    // Sampled locality is measured on the first localized-B region plan.
    let ctx = GemmContext::build(&sys, &spec, &opts);
    let plan = &ctx.b_regions[0];
    let sample = plan.len().min(1 << 16);
    let native = {
        let map = PageMap::for_mapping(PagingConfig::identity(4096), &mapping);
        paged_run_stats(&map, plan, &mapping, sample)
    };

    println!("\nfragmented frame allocation (page-colored, seed 42):");
    println!(
        "{:>10}  {:>12}  {:>8}  {:>14}  {:>10}  {:>11}",
        "page", "cycles", "vs base", "runs (mean)", "locality", "page splits"
    );
    for page_bytes in [4096u64, 64 << 10, 2 << 20, 1 << 30] {
        let cfg = PagingConfig::fragmented(page_bytes, 42);
        let psys = sys.clone().with_paging(cfg);
        reset_run_counters();
        let r = simulate_pow2_gemm_exec(&psys, &spec, &opts, None, ExecMode::Streaming);
        let rc = run_counters();
        let map = PageMap::for_mapping(cfg, &mapping);
        let s = paged_run_stats(&map, plan, &mapping, sample);
        let page = if page_bytes >= 1 << 30 {
            format!("{} GB", page_bytes >> 30)
        } else if page_bytes >= 1 << 20 {
            format!("{} MB", page_bytes >> 20)
        } else {
            format!("{} KB", page_bytes >> 10)
        };
        println!(
            "{:>10}  {:>12}  {:>+7.2}%  {:>6} ({:>5.1})  {:>10.3}  {:>11}",
            page,
            r.total,
            (r.total as f64 / base.total as f64 - 1.0) * 100.0,
            rc.runs,
            rc.mean_run_len(),
            s.mean_run_len() / native.mean_run_len(),
            s.page_splits,
        );
    }

    // The PTW cost model: a short walk hides under the memory-bound
    // stream; a long (uncached) walk surfaces in total latency.
    println!("\nPTW cost at 4 KB pages (extra AGEN cycles per page transition):");
    for ptw in [0u32, 20, 500] {
        let psys =
            sys.clone().with_paging(PagingConfig::fragmented(4096, 42).with_ptw(ptw));
        let r = simulate_pow2_gemm_exec(&psys, &spec, &opts, None, ExecMode::Streaming);
        println!(
            "  ptw {ptw:>3}: {} cycles ({:+.2}% vs contiguous)",
            r.total,
            (r.total as f64 / base.total as f64 - 1.0) * 100.0
        );
    }
}
