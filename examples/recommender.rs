//! A recommendation-inference serving scenario: run DLRM (RM3) end-to-end
//! under every execution scheme of the paper's Fig. 8 and report latency
//! and backend placement per scheme.
//!
//! ```sh
//! cargo run --release --example recommender
//! ```

use stepstone::core::SystemConfig;
use stepstone::models::{dlrm, Bucket, ModelExecutor, Scheme};

fn main() {
    let mut ex = ModelExecutor::new(SystemConfig::default());
    let model = dlrm(4);
    println!(
        "DLRM (RM3): bottom MLP 2560-512-32, top MLP 512-128-1, batch 4 — {} GEMMs\n",
        model.gemm_count()
    );
    println!(
        "{:<6} {:>12} {:>10} {:>10} {:>10} {:>10}  placement",
        "scheme", "cycles", "PIM_DV", "PIM_BG", "CPU_GEMM", "CPU_Other"
    );
    let mut baseline = 0u64;
    for scheme in Scheme::ALL {
        let r = ex.run(&model, scheme);
        if scheme == Scheme::Cpu {
            baseline = r.total_cycles;
        }
        let placement: Vec<String> = Bucket::ALL
            .iter()
            .zip(r.gemm_backend_counts)
            .filter(|(_, c)| *c > 0)
            .map(|(b, c)| format!("{}x{}", c, b.label()))
            .collect();
        println!(
            "{:<6} {:>12} {:>10} {:>10} {:>10} {:>10}  {}",
            scheme.label(),
            r.total_cycles,
            r.bucket(Bucket::PimDv),
            r.bucket(Bucket::PimBg),
            r.bucket(Bucket::CpuGemm),
            r.bucket(Bucket::CpuOther),
            placement.join(", "),
        );
    }
    let stp = ex.run(&model, Scheme::Stp);
    println!(
        "\nStepStone speedup over the CPU: {:.1}x \
         (paper §V-B: DLRM is dominated by one FC layer, which PIM accelerates)",
        baseline as f64 / stp.total_cycles as f64
    );
}
