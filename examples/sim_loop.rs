//! Profiling harness: run the streaming simulation N times in-process so a
//! sampling profiler sees a steady-state hot path.

use std::time::Instant;
use stepstone_addr::PimLevel;
use stepstone_core::{simulate_pow2_gemm_exec, ExecMode, GemmSpec, SimOptions, SystemConfig};

fn main() {
    let args: Vec<usize> = std::env::args().skip(1).filter_map(|a| a.parse().ok()).collect();
    let (m, k, n, reps) = match args.as_slice() {
        [m, k, n, r] => (*m, *k, *n, *r),
        [m, k, n] => (*m, *k, *n, 10),
        _ => (512, 512, 32, 10),
    };
    let sys = SystemConfig::default();
    let spec = GemmSpec::new(m, k, n);
    let opts = SimOptions::stepstone(PimLevel::BankGroup);
    let mut total = 0u64;
    for r in 0..reps {
        let t0 = Instant::now();
        let rep = simulate_pow2_gemm_exec(&sys, &spec, &opts, None, ExecMode::Streaming);
        total ^= rep.total;
        println!("rep {r}: {:.1} ms", t0.elapsed().as_secs_f64() * 1e3);
    }
    println!("done ({total:x})");
}
