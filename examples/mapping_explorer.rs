//! Visualize how an XOR address mapping scatters a row-major weight matrix
//! across PIM units, and how StepStone's block groups restore locality —
//! the Fig. 2 / Fig. 4 mechanic.
//!
//! ```sh
//! cargo run --release --example mapping_explorer [mapping-id 0..4]
//! ```

use stepstone::addr::{mapping_by_id, GroupAnalysis, MappingId, MatrixLayout, PimLevel};

fn main() {
    let id = std::env::args()
        .nth(1)
        .and_then(|s| s.parse::<usize>().ok())
        .map(MappingId::from_index)
        .unwrap_or(MappingId::Skylake);
    let mapping = mapping_by_id(id);
    // The paper's Fig. 4 example: a 16×512 f32 matrix at physical address 0.
    let layout = MatrixLayout::new_f32(0, 16, 512);
    let ga = GroupAnalysis::analyze(&mapping, PimLevel::BankGroup, layout);

    println!("mapping `{}` | 16x512 f32 weight matrix at PA 0", mapping.name());
    println!(
        "bank-group-level PIMs: {} active, {} block groups, sharing {}x, reduction {}x\n",
        ga.active_pim_count(),
        ga.n_groups(),
        ga.sharing(),
        ga.reduction()
    );

    // Block → PIM map (one row of glyphs per matrix row, like Fig. 2b).
    println!("block -> PIM (hex digit) per matrix row; rows annotated with their group:");
    for r in 0..layout.rows {
        let mut line = String::new();
        for kblk in 0..layout.blocks_per_row() {
            let pim = ga.pim_of_block(r, kblk);
            line.push(char::from_digit(pim, 16).expect("pim < 16"));
        }
        println!("row {r:2} (group {}): {line}", ga.group_of_row(r));
    }

    // Local column sets per group for PIM 0 — the "stepping stones".
    let pim = ga.active_pims()[0];
    println!("\nPIM {pim}: local column blocks per group:");
    for g in 0..ga.n_groups() {
        if ga.is_admissible(pim, g) {
            println!("  group {g}: columns {:?}", ga.local_cols(pim, g));
        }
    }
    println!(
        "\nwithin a group every row has the same local columns — B panels are reused down \
         the rows and C accumulators across the columns (paper §III-B)"
    );
}
