//! Offered-load → latency sweep of the continuous serving simulator: seeded
//! open-loop arrivals of a DLRM/BERT/GPT2 mix feed the admission +
//! dynamic-batching queue, batches are priced through the per-class cost
//! table (PIM/CPU crossover included), and each load point reports its
//! latency percentiles up to and past the saturation knee.
//!
//! Usage: `cargo run --release --example serving_sweep [REQUESTS] \
//!         [--backend=exact|analytic] [--preset=ddr4|ddr5|lpddr5|hbm2] \
//!         [--mix=rec|uniform] [--seed=N]`
//!
//! `STEPSTONE_BACKEND` / `STEPSTONE_PRESET` select the memory tier when
//! the flags are absent. Defaults: 1000 requests on the analytic tier;
//! `--backend=exact` prices the same table on the cycle-exact tier (a few
//! times slower — the warm session cache keeps even that tractable).

use std::time::Instant;
use stepstone::core::SystemConfig;
use stepstone::dram::{BackendKind, DramConfig};
use stepstone::serving::{build_cost_table, find_knee, sweep_loads, ServingConfig};
use stepstone::workloads::RequestMix;

fn main() {
    let mut backend = std::env::var("STEPSTONE_BACKEND")
        .ok()
        .map(|v| BackendKind::by_name(&v).unwrap_or_else(|| panic!("unknown backend '{v}'")))
        .unwrap_or(BackendKind::Analytic);
    let mut preset = std::env::var("STEPSTONE_PRESET").unwrap_or_else(|_| "ddr4".to_string());
    let mut mix = RequestMix::recommendation_heavy();
    let mut mix_name = "rec";
    let mut seed = 5u64;
    let mut requests = 1000u64;
    for arg in std::env::args().skip(1) {
        if let Some(name) = arg.strip_prefix("--backend=") {
            backend = BackendKind::by_name(name)
                .unwrap_or_else(|| panic!("unknown backend '{name}' (exact|analytic)"));
        } else if let Some(name) = arg.strip_prefix("--preset=") {
            preset = name.to_string();
        } else if let Some(name) = arg.strip_prefix("--mix=") {
            (mix, mix_name) = match name {
                "rec" => (RequestMix::recommendation_heavy(), "rec"),
                "uniform" => (RequestMix::uniform(), "uniform"),
                other => panic!("unknown mix '{other}' (rec|uniform)"),
            };
        } else if let Some(v) = arg.strip_prefix("--seed=") {
            seed = v.parse().expect("--seed=N");
        } else if let Ok(v) = arg.parse() {
            requests = v;
        }
    }
    let dram = DramConfig::by_name(&preset)
        .unwrap_or_else(|| panic!("unknown preset '{preset}' (ddr4|ddr5|lpddr5|hbm2)"));
    let sys = SystemConfig::default().with_backend(backend).with_dram(dram);
    let cfg = ServingConfig::for_system(&sys);
    let mhz = sys.dram.clock_hz as f64 / 1e6;
    println!(
        "serving sweep: {requests} requests, mix {mix_name} \
         (dlrm {:.2} / bert {:.2} / gpt2 {:.2}), seed {seed}",
        mix.dlrm, mix.bert, mix.gpt2,
    );
    println!(
        "  backend {} on {preset} ({mhz:.0} MHz); queue cap {}, <= {} requests/batch",
        backend.name(),
        cfg.queue_cap,
        cfg.max_batch_requests,
    );

    let t0 = Instant::now();
    let table = build_cost_table(&sys);
    println!(
        "  cost table: {} (kind, class) pass costs in {:.1} s",
        table.len(),
        t0.elapsed().as_secs_f64(),
    );

    // Mean inter-arrival gaps from well under saturation to well past it
    // (a lone GPT2 batch is ~3e8 DDR4 cycles, so the lightest point must
    // sit in that range).
    let gaps: Vec<f64> = (0..6).map(|i| 400_000_000.0 / 4f64.powi(i)).collect();
    let sweep = sweep_loads(&table, &cfg, seed, mix, requests, &gaps, true);
    let knee = find_knee(&sweep, 3.0);

    println!(
        "  {:>14} {:>10} {:>10} {:>10} {:>6} {:>6} {:>6}  ",
        "gap (cycles)", "p50 (ms)", "p95 (ms)", "p99 (ms)", "served", "reject", "util"
    );
    let ms = |cycles: u64| cycles as f64 / sys.dram.clock_hz as f64 * 1e3;
    for (i, (r, gap)) in sweep.iter().zip(&gaps).enumerate() {
        println!(
            "  {gap:>14.0} {:>10.2} {:>10.2} {:>10.2} {:>6} {:>6} {:>6.3} {}",
            ms(r.p50),
            ms(r.p95),
            ms(r.p99),
            r.served,
            r.rejected,
            r.channel_utilization,
            if i == knee { " <- knee" } else { "" },
        );
    }
    println!(
        "  knee at gap {:.0} cycles ({:.1} requests/Gcycle); beyond it p99 \
         exceeds 3x the unloaded baseline or the queue overflows",
        gaps[knee],
        1e9 / gaps[knee],
    );
}
