//! Colocating PIM GEMMs with a memory-intensive CPU workload (the paper's
//! §V-G scenario): long-running StepStone kernels barely notice the command
//! bus contention, while fine-grained eCHO kernels starve.
//!
//! ```sh
//! cargo run --release --example colocation
//! ```

use stepstone::core::{simulate_gemm_opt, GemmSpec, Phase, SimOptions, SystemConfig};
use stepstone::prelude::PimLevel;
use stepstone::workloads::SyntheticTraffic;

fn kernel_cycles(r: &stepstone::core::LatencyReport) -> u64 {
    r.total - r.phase(Phase::Localization) - r.phase(Phase::Reduction)
}

fn main() {
    let sys = SystemConfig::default();
    let spec = GemmSpec::new(4096, 4096, 8);
    println!("GEMM {spec} at BG level, with and without a colocated SPEC-like CPU mix\n");
    println!("{:<28} {:>14} {:>14}", "configuration", "kernel cycles", "slowdown");

    let mut rows = Vec::new();
    for (name, opts) in [
        ("StepStone (coarse kernels)", SimOptions::stepstone(PimLevel::BankGroup)),
        ("eCHO (per-dot-product)", SimOptions::echo(PimLevel::BankGroup)),
    ] {
        let quiet = simulate_gemm_opt(&sys, &spec, &opts, None);
        let mut traffic = SyntheticTraffic::spec_mix(42, u64::MAX / 2);
        let busy = simulate_gemm_opt(&sys, &spec, &opts, Some(&mut traffic));
        println!(
            "{:<28} {:>14} {:>13.2}x",
            format!("{name} quiet"),
            kernel_cycles(&quiet),
            1.0
        );
        println!(
            "{:<28} {:>14} {:>13.2}x",
            format!("{name} + CPU mix"),
            kernel_cycles(&busy),
            kernel_cycles(&busy) as f64 / kernel_cycles(&quiet) as f64
        );
        rows.push(kernel_cycles(&busy));
    }
    println!(
        "\nStepStone over eCHO under contention: {:.2}x \
         (the Fig. 13 effect: one kernel per row partition vs one per output row; \
         launch packets queue behind CPU commands)",
        rows[1] as f64 / rows[0] as f64
    );
}
