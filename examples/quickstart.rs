//! Quickstart: simulate one datacenter-inference GEMM on all three
//! StepStone PIM levels and print the Fig. 6-style phase breakdown.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use stepstone::core::{simulate_gemm, CpuModel, GemmSpec, Phase, SystemConfig};
use stepstone::prelude::PimLevel;

fn main() {
    // The paper's default workload: a 1024×4096 fp32 weight matrix
    // multiplying a batch-4 activation panel (§V: "By default, we use
    // 1024×4096 … we vary the batch size from 1 to 32").
    let system = SystemConfig::default();
    let gemm = GemmSpec::new(1024, 4096, 4);

    println!("GEMM {gemm} under the {} address mapping\n", system.mapping().name());
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "backend", "GEMM", "fill(B)", "localize", "reduce", "total", "time(us)"
    );
    for level in PimLevel::ALL {
        let r = simulate_gemm(&system, &gemm, level);
        println!(
            "{:<14} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10.1}",
            format!("StepStone-{}", level.tag()),
            r.phase(Phase::Gemm),
            r.phase(Phase::FillB),
            r.phase(Phase::Localization),
            r.phase(Phase::Reduction),
            r.total,
            r.seconds() * 1e6,
        );
    }
    let cpu = CpuModel::default();
    let c = cpu.report(&gemm);
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10.1}",
        "CPU (Xeon-eq)", "-", "-", "-", "-", c.total, c.seconds() * 1e6
    );

    let bg = simulate_gemm(&system, &gemm, PimLevel::BankGroup);
    println!(
        "\nStepStone-BG speedup over the CPU: {:.1}x (paper: ~12x at batch 1)",
        c.total as f64 / bg.total as f64
    );
}
