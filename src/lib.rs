//! StepStone PIM — a reproduction of "Accelerating Bandwidth-Bound Deep
//! Learning Inference with Main-Memory Accelerators" (Cho, Jung, Erez,
//! SC'21) as a Rust workspace.
//!
//! This facade crate re-exports the workspace members under stable names so
//! examples, integration tests, and downstream users can depend on a single
//! crate:
//!
//! * [`addr`] — XOR address mappings, block groups, AGEN logic.
//! * [`dram`] — cycle-level DDR4 timing simulator.
//! * [`pim`] — PIM units, controller, DMA localization/reduction engine.
//! * [`core`] — the StepStone GEMM flow, baselines, CPU/GPU models.
//! * [`models`] — end-to-end DLRM / BERT / GPT2 / XLM inference.
//! * [`energy`] — power and energy accounting.
//! * [`workloads`] — GEMM catalog, colocated-CPU traffic generators, and
//!   open-loop request streams.
//! * [`roofline`] — roofline models for Figs. 1 and 7.
//! * [`serving`] — the continuous serving simulator (admission, dynamic
//!   batching, load sweeps, colocated tenants).
//!
//! # Quick start
//!
//! ```
//! use stepstone::prelude::*;
//!
//! // Simulate a batch-4 inference GEMM (1024×4096 weights) on bank-group
//! // level PIMs under the Skylake address mapping.
//! let system = SystemConfig::default();
//! let gemm = GemmSpec::new(1024, 4096, 4);
//! let report = simulate_gemm(&system, &gemm, PimLevel::BankGroup);
//! assert!(report.total_cycles() > 0);
//! ```

pub use stepstone_addr as addr;
pub use stepstone_core as core;
pub use stepstone_dram as dram;
pub use stepstone_energy as energy;
pub use stepstone_models as models;
pub use stepstone_pim as pim;
pub use stepstone_roofline as roofline;
pub use stepstone_serving as serving;
pub use stepstone_workloads as workloads;

/// Commonly used items in one import.
pub mod prelude {
    pub use stepstone_addr::{
        mapping_by_id, GroupAnalysis, MappingId, MatrixLayout, PimLevel, XorMapping,
    };
    pub use stepstone_core::{simulate_gemm, GemmSpec, LatencyReport, Phase, SystemConfig};
    pub use stepstone_dram::{DramConfig, TimingParams};
    pub use stepstone_pim::PimLevelConfig;
}
