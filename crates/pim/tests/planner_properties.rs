//! Property tests for the scratchpad planner and transfer-plan algebra.

use proptest::prelude::*;
use stepstone_addr::{mapping_by_id, GroupAnalysis, MappingId, MatrixLayout, PimLevel};
use stepstone_pim::{BufferPlan, TransferPlan};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn plan_always_fits_and_covers(
        rows_log in 4u32..12,
        cols_log in 4u32..12,
        n in 1usize..64,
        scratch_log in 12u64..20,
        mapping_ix in 0usize..5,
        level_ix in 0usize..3,
    ) {
        let mapping = mapping_by_id(MappingId::from_index(mapping_ix));
        let level = PimLevel::ALL[level_ix];
        let layout = MatrixLayout::new_f32(0, 1 << rows_log, 1 << cols_log);
        let ga = GroupAnalysis::analyze(&mapping, level, layout);
        let scratch = 1u64 << scratch_log;
        // Skip degenerate combinations the planner rejects by contract.
        let min_need = (n as u64 * 4) + (16 * n as u64 * 4);
        prop_assume!(scratch >= min_need);
        let plan = BufferPlan::plan(scratch, n, &ga);
        // Residency respects capacity.
        let c = plan.c_rows_resident as u64 * n as u64 * 4;
        let b = plan.b_cols_resident * 16 * n as u64 * 4;
        prop_assert!(c + b <= scratch, "c={c} b={b} scratch={scratch}");
        // Partitions tile the work.
        prop_assert!(plan.rparts as u64 * plan.c_rows_resident as u64 >= ga.c_rows_per_pim() as u64);
        prop_assert!(plan.cparts as u64 * plan.b_cols_resident >= ga.local_cols_per_group());
        // Row partitions divide the matrix rows.
        prop_assert!(layout.rows.is_multiple_of(plan.rparts as usize) || plan.rparts as usize > layout.rows);
    }

    #[test]
    fn transfer_volumes_scale_linearly_with_batch(
        rows_log in 4u32..10,
        cols_log in 4u32..10,
        mapping_ix in 0usize..5,
    ) {
        let mapping = mapping_by_id(MappingId::from_index(mapping_ix));
        let layout = MatrixLayout::new_f32(0, 1 << rows_log, 1 << cols_log);
        let ga = GroupAnalysis::analyze(&mapping, PimLevel::BankGroup, layout);
        let t1 = TransferPlan::for_gemm(&ga, 1);
        let t4 = TransferPlan::for_gemm(&ga, 4);
        // Block counts scale with N (within rounding).
        prop_assert!(t4.b_blocks_per_pim >= 4 * t1.b_blocks_per_pim.saturating_sub(1));
        prop_assert!(t4.c_blocks_per_pim >= t1.c_blocks_per_pim);
        // Replication algebra is batch-independent.
        prop_assert_eq!(t1.sharing, t4.sharing);
        prop_assert_eq!(t1.reduction, t4.reduction);
        prop_assert_eq!(t1.active_pims, t4.active_pims);
    }
}
