//! Host-side PIM controller: kernel launch packets and their command-bus
//! cost (paper §III-A, §V-G).
//!
//! StepStone's AGEN hardware lets one kernel command cover an entire
//! (row-partition × group × column-partition) sweep — a *long-running*
//! kernel. Chopim-style execution (eCHO) must instead issue one dot-product
//! kernel per matrix row per column partition, and PEI sends a packet per
//! cache block. Every packet crosses the DDR command bus, where it contends
//! with concurrent CPU traffic; this module quantifies packets and slots.

use crate::scratchpad::BufferPlan;
use serde::{Deserialize, Serialize};
use stepstone_addr::GroupAnalysis;

/// Kernel granularity of the three main-memory PIM schemes compared in the
/// paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelGranularity {
    /// One coarse kernel per (PIM, row partition): StepStone.
    CoarseStepStone,
    /// One kernel per dot-product row per column partition: enhanced Chopim
    /// (Algorithm 1's non-StepStone branch).
    PerDotProduct,
    /// One command packet per cache block: PEI.
    PerCacheBlock,
}

/// Command-bus cost model for PIM control traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchModel {
    /// Command-bus slots per kernel-launch packet (descriptor registers).
    pub slots_per_launch: u64,
    /// Command-bus slots per PEI per-block instruction packet.
    pub slots_per_pei_packet: u64,
    /// Pipeline latency from packet arrival to kernel start (cycles).
    pub launch_latency: u64,
}

impl Default for LaunchModel {
    fn default() -> Self {
        // A kernel descriptor is a handful of memory-mapped register writes
        // (base addresses, shapes, constraint masks): 16 command slots. PEI
        // packets carry an opcode, a block pointer, and operand references —
        // a 16-byte instruction needs 4 slots of the DDR4 CA bus.
        Self { slots_per_launch: 16, slots_per_pei_packet: 4, launch_latency: 32 }
    }
}

impl LaunchModel {
    /// Kernel launches needed *per PIM unit* for one GEMM under the given
    /// granularity and buffer plan.
    pub fn launches_per_pim(
        &self,
        granularity: KernelGranularity,
        ga: &GroupAnalysis,
        plan: &BufferPlan,
    ) -> u64 {
        match granularity {
            KernelGranularity::CoarseStepStone => plan.rparts as u64,
            KernelGranularity::PerDotProduct => {
                // Algorithm 1: `for row in cpart: DOT(row)` inside every
                // (rpart, group, cpart) — one launch per C-row visit.
                ga.c_rows_per_pim() as u64 * plan.cparts as u64
            }
            KernelGranularity::PerCacheBlock => ga.blocks_per_pim(),
        }
    }

    /// Command-bus slots per launch for a granularity.
    pub fn slots_for(&self, granularity: KernelGranularity) -> u64 {
        match granularity {
            KernelGranularity::PerCacheBlock => self.slots_per_pei_packet,
            _ => self.slots_per_launch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stepstone_addr::{mapping_by_id, GroupAnalysis, MappingId, MatrixLayout, PimLevel};

    fn setup() -> (GroupAnalysis, BufferPlan) {
        let m = mapping_by_id(MappingId::Skylake);
        let ga = GroupAnalysis::analyze(
            &m,
            PimLevel::BankGroup,
            MatrixLayout::new_f32(0, 1024, 4096),
        );
        let plan = BufferPlan::plan(64 << 10, 4, &ga);
        (ga, plan)
    }

    #[test]
    fn stepstone_needs_orders_of_magnitude_fewer_launches() {
        let (ga, plan) = setup();
        let lm = LaunchModel::default();
        let stp = lm.launches_per_pim(KernelGranularity::CoarseStepStone, &ga, &plan);
        let echo = lm.launches_per_pim(KernelGranularity::PerDotProduct, &ga, &plan);
        let pei = lm.launches_per_pim(KernelGranularity::PerCacheBlock, &ga, &plan);
        assert!(stp <= plan.rparts as u64);
        assert!(echo >= 100 * stp, "echo={echo} stp={stp}");
        assert!(pei > echo, "pei={pei} echo={echo}");
        assert_eq!(pei, ga.blocks_per_pim());
    }

    #[test]
    fn pei_packets_are_smaller_than_kernel_descriptors() {
        let lm = LaunchModel::default();
        assert!(
            lm.slots_for(KernelGranularity::PerCacheBlock)
                < lm.slots_for(KernelGranularity::CoarseStepStone)
        );
    }
}
