//! PIM unit configurations per integration level (paper Table II, §III-A).
//!
//! Table II gives *per-chip* resources: 8-wide SIMD + 8 KiB scratchpad per
//! DRAM device at bank-group level, 32-wide + 32 KiB per buffer chip at
//! device level, 256-wide + 256 KiB per channel. A rank is eight x8 devices
//! operating in lockstep on each 64-byte block, so the simulator models
//! *logical* PIM units that aggregate the lockstepped slices:
//!
//! * **StepStone-BG**: 8 lanes × 8 devices = 64 lanes, 64 KiB scratchpad.
//! * **StepStone-DV**: 32 lanes × 8 data-buffer slices = 256 lanes, 256 KiB
//!   (an LRDIMM-style rank has one data buffer per x8 device).
//! * **StepStone-CH**: 256 lanes, 256 KiB (one per channel, as stated).
//!
//! These logical widths reproduce the paper's stated balance behaviour
//! (§III-E): BG arithmetic stays comparable to its tCCDL-limited bandwidth
//! for N ≤ 16 (16·N/64 ≤ 6 up to N ≈ 24), DV arithmetic never binds before
//! its tCCDS-limited bandwidth for the inference batches the paper sweeps
//! (N ≤ 32), and the BG↔DV crossover lands between N = 16 and N = 32 as in
//! Fig. 6.

use serde::{Deserialize, Serialize};
use stepstone_addr::PimLevel;
use stepstone_dram::Port;

/// Elements (f32) per cache block.
pub const ELEMS_PER_BLOCK: usize = 16;

/// Resources of one logical PIM unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PimLevelConfig {
    pub level: PimLevel,
    /// MAC lanes per logical unit (1 fp32 FMA per lane per cycle).
    pub simd_width: u32,
    /// Scratchpad bytes per logical unit.
    pub scratchpad_bytes: u64,
    /// Execution pipeline depth (hides AGEN and DRAM access latency;
    /// paper §III-A: "sufficiently deep … 20 stages in our case").
    pub pipeline_depth: u32,
}

impl PimLevelConfig {
    /// Nominal configuration for a level (Table II).
    pub fn nominal(level: PimLevel) -> Self {
        match level {
            PimLevel::BankGroup => Self {
                level,
                simd_width: 64,
                scratchpad_bytes: 64 << 10,
                pipeline_depth: 20,
            },
            PimLevel::Device => Self {
                level,
                simd_width: 256,
                scratchpad_bytes: 256 << 10,
                pipeline_depth: 20,
            },
            PimLevel::Channel => Self {
                level,
                simd_width: 256,
                scratchpad_bytes: 256 << 10,
                pipeline_depth: 20,
            },
        }
    }

    /// Relaxed-area configuration (the `*` bars of Fig. 6: "enough ALUs and
    /// large enough scratchpad memory").
    pub fn relaxed(level: PimLevel) -> Self {
        let mut c = Self::nominal(level);
        c.simd_width = 4096;
        c.scratchpad_bytes = 64 << 20;
        c
    }

    /// Override the logical scratchpad capacity (Fig. 12 sweep).
    pub fn with_scratchpad(mut self, bytes: u64) -> Self {
        self.scratchpad_bytes = bytes;
        self
    }

    /// The DRAM datapath this level's units read from.
    pub fn port(&self) -> Port {
        match self.level {
            PimLevel::Channel => Port::Channel,
            PimLevel::Device => Port::RankInternal,
            PimLevel::BankGroup => Port::BgInternal,
        }
    }

    /// SIMD cycles to process one A block against an N-column B panel:
    /// 16·N fp32 MACs on `simd_width` FMA lanes.
    pub fn compute_cycles_per_block(&self, n: usize) -> u64 {
        let macs = (ELEMS_PER_BLOCK * n) as u64;
        macs.div_ceil(self.simd_width as u64)
    }

    /// SIMD (lane-level MAC) operations per block — for the energy model.
    pub fn simd_ops_per_block(&self, n: usize) -> u64 {
        (ELEMS_PER_BLOCK * n) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_widths_follow_table_ii_aggregation() {
        let bg = PimLevelConfig::nominal(PimLevel::BankGroup);
        let dv = PimLevelConfig::nominal(PimLevel::Device);
        let ch = PimLevelConfig::nominal(PimLevel::Channel);
        assert_eq!(bg.simd_width, 64);
        assert_eq!(dv.simd_width, 256);
        assert_eq!(ch.simd_width, 256);
        assert_eq!(bg.scratchpad_bytes, 65536);
        assert_eq!(bg.pipeline_depth, 20);
    }

    #[test]
    fn arithmetic_balance_points_match_paper() {
        // §III-E: "comparable arithmetic execution times for 1 ≤ N ≤ 16 in
        // StepStone-BG and for 1 ≤ N ≤ 32 in StepStone-DV".
        let bg = PimLevelConfig::nominal(PimLevel::BankGroup);
        let dv = PimLevelConfig::nominal(PimLevel::Device);
        // BG supply: one block per tCCDL = 6 cycles.
        assert!(bg.compute_cycles_per_block(16) <= 6);
        assert!(bg.compute_cycles_per_block(32) > 6);
        // DV supply: one block per tCCDS = 4 cycles; arithmetic never binds
        // within the paper's batch sweep.
        assert!(dv.compute_cycles_per_block(32) <= 4);
        assert!(dv.compute_cycles_per_block(128) > 4);
    }

    #[test]
    fn compute_cycles_round_up() {
        let bg = PimLevelConfig::nominal(PimLevel::BankGroup);
        assert_eq!(bg.compute_cycles_per_block(1), 1);
        assert_eq!(bg.compute_cycles_per_block(4), 1);
        assert_eq!(bg.compute_cycles_per_block(5), 2);
    }

    #[test]
    fn ports_match_levels() {
        assert_eq!(PimLevelConfig::nominal(PimLevel::Channel).port(), Port::Channel);
        assert_eq!(PimLevelConfig::nominal(PimLevel::Device).port(), Port::RankInternal);
        assert_eq!(PimLevelConfig::nominal(PimLevel::BankGroup).port(), Port::BgInternal);
    }
}
