//! Localization / reduction planning and per-PIM buffer regions
//! (paper §III-B, Fig. 5).
//!
//! Before a PIM GEMM, the input panel `B` is *localized*: replicated into a
//! per-PIM memory region, reorganized so the unit's group-ordered execution
//! reads it sequentially. After the GEMM, the per-PIM partial `C` results
//! are *reduced*. The paper accelerates both with a DMA engine at the PIM
//! controller ("without consuming CPU core resources"); prior schemes do the
//! copies with CPU loads/stores at lower efficiency — the "up to an
//! additional 40%" lever of §I.
//!
//! Because the per-PIM regions are carved out by the coloring allocator
//! (§III-E), their blocks are exactly the blocks whose PIM-ID matches under
//! the same XOR mapping; we enumerate them with the AGEN walk itself.

use serde::{Deserialize, Serialize};
use stepstone_addr::groups::pim_region_constraints;
use stepstone_addr::{GroupAnalysis, PimLevel, StepStoneAgen, XorMapping, BLOCK_BYTES};


/// Who moves localization/reduction data, and how efficiently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LocalizationMode {
    /// The PIM controller's replication/reduction DMA engine: streams at
    /// full channel utilization and consumes no CPU time.
    AcceleratedDma,
    /// CPU-mediated copies (PEI, Chopim): loads/stores issued by cores with
    /// limited memory-level parallelism. `gap_cycles` of extra spacing are
    /// inserted between block writes (calibrated to ≈50% of peak).
    HostMediated { gap_cycles: u64 },
}

impl LocalizationMode {
    /// Extra cycles between consecutive localization block transfers.
    pub fn inter_block_gap(&self) -> u64 {
        match self {
            LocalizationMode::AcceleratedDma => 0,
            LocalizationMode::HostMediated { gap_cycles } => *gap_cycles,
        }
    }
}

/// Data volumes of the localization and reduction phases for one GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferPlan {
    /// `B` blocks written per active PIM (replication included).
    pub b_blocks_per_pim: u64,
    /// Partial-`C` blocks read per active PIM during reduction.
    pub c_blocks_per_pim: u64,
    /// Input replication factor (paper's "sharing").
    pub sharing: usize,
    /// Output reduction factor.
    pub reduction: usize,
    pub active_pims: usize,
}

impl TransferPlan {
    /// Compute volumes from the group analysis for batch `n`.
    ///
    /// `B` rows needed by a PIM = 16 × its distinct local column blocks;
    /// each holds `n` f32. Partial `C` rows per PIM hold `n` f32 each.
    pub fn for_gemm(ga: &GroupAnalysis, n: usize) -> Self {
        let b_bytes = ga.distinct_cols_per_pim() * 16 * n as u64 * 4;
        let c_bytes = ga.c_rows_per_pim() as u64 * n as u64 * 4;
        Self {
            b_blocks_per_pim: b_bytes.div_ceil(BLOCK_BYTES),
            c_blocks_per_pim: c_bytes.div_ceil(BLOCK_BYTES),
            sharing: ga.sharing(),
            reduction: ga.reduction(),
            active_pims: ga.active_pim_count(),
        }
    }

    /// Total localization blocks across all active PIMs.
    pub fn total_b_blocks(&self) -> u64 {
        self.b_blocks_per_pim * self.active_pims as u64
    }

    /// Total reduction blocks across all active PIMs.
    pub fn total_c_blocks(&self) -> u64 {
        self.c_blocks_per_pim * self.active_pims as u64
    }
}

/// The per-PIM localized-buffer region: the first `count` blocks at or above
/// `base` that are local to `pim` at `level` under `mapping`.
pub fn region_blocks(
    mapping: &XorMapping,
    level: PimLevel,
    pim: u32,
    base: u64,
    count: u64,
) -> Vec<u64> {
    let cs = pim_region_constraints(mapping, level, pim);
    // PIM-ID bits can involve high address bits (row-bit taps), so a PIM's
    // first local block may sit megabytes past `base`; walk unbounded and
    // take what is needed — the AGEN skips in O(ID bits) per step, and the
    // span-program cache replays the periodic walk structure.
    let end = base + (1u64 << 40);
    StepStoneAgen::new(cs, base, end)
        .span_program()
        .steps()
        .take(count as usize)
        .map(|s| s.pa)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stepstone_addr::{mapping_by_id, MappingId, MatrixLayout};

    #[test]
    fn transfer_plan_matches_replication_algebra() {
        let m = mapping_by_id(MappingId::Skylake);
        let ga = GroupAnalysis::analyze(
            &m,
            PimLevel::BankGroup,
            MatrixLayout::new_f32(0, 1024, 4096),
        );
        let n = 4;
        let plan = TransferPlan::for_gemm(&ga, n);
        // Total localized B bytes = sharing × |B|.
        let b_total_bytes = plan.total_b_blocks() * BLOCK_BYTES;
        assert_eq!(b_total_bytes, ga.sharing() as u64 * 4096 * n as u64 * 4);
        // Total partial-C bytes = reduction × |C|.
        let c_total_bytes = plan.total_c_blocks() * BLOCK_BYTES;
        assert_eq!(c_total_bytes, ga.reduction() as u64 * 1024 * n as u64 * 4);
    }

    #[test]
    fn region_blocks_are_local_and_ascending() {
        let m = mapping_by_id(MappingId::Skylake);
        let level = PimLevel::BankGroup;
        for pim in [0u32, 5, 15] {
            let blocks = region_blocks(&m, level, pim, 1 << 30, 128);
            assert_eq!(blocks.len(), 128);
            assert!(blocks.windows(2).all(|w| w[0] < w[1]));
            for &pa in &blocks {
                assert_eq!(level.pim_id_of(&m, pa), pim);
            }
        }
    }

    #[test]
    fn regions_of_different_pims_are_disjoint() {
        let m = mapping_by_id(MappingId::Skylake);
        let a = region_blocks(&m, PimLevel::Device, 0, 0, 256);
        let b = region_blocks(&m, PimLevel::Device, 1, 0, 256);
        let sa: std::collections::HashSet<_> = a.into_iter().collect();
        assert!(b.iter().all(|pa| !sa.contains(pa)));
    }

    #[test]
    fn host_mediated_mode_inserts_gaps() {
        assert_eq!(LocalizationMode::AcceleratedDma.inter_block_gap(), 0);
        assert_eq!(LocalizationMode::HostMediated { gap_cycles: 4 }.inter_block_gap(), 4);
    }
}
