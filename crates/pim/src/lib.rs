//! StepStone PIM hardware component models: per-level unit configurations,
//! scratchpad buffer planning, the host-side PIM controller's kernel-launch
//! cost model, and the localization/reduction DMA engine plans
//! (paper §III-A/B/E).
//!
//! The timed *execution* of these components against the DRAM simulator
//! lives in `stepstone-core`; this crate owns the hardware parameters and
//! the static plans derived from a GEMM's block-group analysis.

pub mod controller;
pub mod dma;
pub mod levels;
pub mod scratchpad;

pub use controller::{KernelGranularity, LaunchModel};
pub use dma::{region_blocks, LocalizationMode, TransferPlan};
pub use levels::{PimLevelConfig, ELEMS_PER_BLOCK};
pub use scratchpad::BufferPlan;
