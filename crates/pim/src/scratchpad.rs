//! Scratchpad capacity planning: splitting the per-unit buffer between the
//! input panel (`B`) and output accumulators (`C`), and deriving the row /
//! column partition counts of Algorithm 1.
//!
//! The paper processes blocks of rows first "because C offers greater reuse
//! as it is both read and written" (§III-C), and §V-F notes the search over
//! buffer splits converges quickly because there are only two buffers. The
//! planner below minimizes row partitions first (each extra row partition
//! re-reads every localized `B` panel), then sizes column partitions to fit
//! the remainder.

use serde::{Deserialize, Serialize};
use stepstone_addr::GroupAnalysis;

/// How a PIM unit's scratchpad is used for one GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferPlan {
    /// Row partitions (outer loop of Algorithm 1).
    pub rparts: u32,
    /// Column partitions within each group.
    pub cparts: u32,
    /// Bytes reserved for the `C` accumulator buffer.
    pub c_buf_bytes: u64,
    /// Bytes reserved for the `B` panel buffer.
    pub b_buf_bytes: u64,
    /// `C` rows resident per row partition (per PIM).
    pub c_rows_resident: usize,
    /// `B` column blocks resident per (group, column partition).
    pub b_cols_resident: u64,
}

impl BufferPlan {
    /// Plan the buffer split for a PIM unit with `scratch_bytes` capacity
    /// executing the analyzed GEMM with batch `n`.
    pub fn plan(scratch_bytes: u64, n: usize, ga: &GroupAnalysis) -> BufferPlan {
        let row_bytes = (n * 4) as u64; // one C row: N f32 accumulators
        let bcol_bytes = (16 * n * 4) as u64; // one B column block: 16 rows × N
        assert!(
            scratch_bytes >= row_bytes + bcol_bytes,
            "scratchpad too small for even one C row and one B block \
             ({scratch_bytes} < {row_bytes} + {bcol_bytes})"
        );
        let c_rows_total = ga.c_rows_per_pim() as u64;
        let local_cols = ga.local_cols_per_group();
        let mut rparts = 1u64;
        loop {
            let c_rows_resident = c_rows_total.div_ceil(rparts);
            let c_need = c_rows_resident * row_bytes;
            if c_need + bcol_bytes <= scratch_bytes {
                let b_cap = scratch_bytes - c_need;
                let mut cparts = 1u64;
                while local_cols.div_ceil(cparts) * bcol_bytes > b_cap {
                    cparts *= 2;
                }
                return BufferPlan {
                    rparts: rparts as u32,
                    cparts: cparts as u32,
                    c_buf_bytes: c_need,
                    b_buf_bytes: b_cap,
                    c_rows_resident: c_rows_resident as usize,
                    b_cols_resident: local_cols.div_ceil(cparts),
                };
            }
            rparts *= 2;
            assert!(
                rparts <= c_rows_total.max(1) * 2,
                "buffer planning failed to converge"
            );
        }
    }

    /// Total bytes the plan actually reserves.
    pub fn used_bytes(&self) -> u64 {
        self.c_buf_bytes + self.b_buf_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stepstone_addr::{mapping_by_id, GroupAnalysis, MappingId, MatrixLayout, PimLevel};

    fn ga(rows: usize, cols: usize, level: PimLevel) -> GroupAnalysis {
        let m = mapping_by_id(MappingId::Skylake);
        GroupAnalysis::analyze(&m, level, MatrixLayout::new_f32(0, rows, cols))
    }

    #[test]
    fn small_gemm_fits_without_partitioning() {
        let ga = ga(128, 512, PimLevel::BankGroup);
        let plan = BufferPlan::plan(64 << 10, 4, &ga);
        assert_eq!(plan.rparts, 1);
        assert_eq!(plan.cparts, 1);
        assert!(plan.used_bytes() <= 64 << 10);
    }

    #[test]
    fn large_batch_forces_partitioning() {
        // 1024×4096 at batch 32 on a 64 KiB BG scratchpad cannot hold all
        // C rows and the full B panel at once.
        let ga = ga(1024, 4096, PimLevel::BankGroup);
        let plan = BufferPlan::plan(64 << 10, 32, &ga);
        assert!(plan.rparts > 1 || plan.cparts > 1);
        // Residency respects the capacity.
        let c = plan.c_rows_resident as u64 * 32 * 4;
        let b = plan.b_cols_resident * 16 * 32 * 4;
        assert!(c + b <= 64 << 10, "c={c} b={b}");
    }

    #[test]
    fn bigger_scratchpad_reduces_partitions() {
        let ga = ga(2048, 8192, PimLevel::BankGroup);
        let small = BufferPlan::plan(16 << 10, 16, &ga);
        let large = BufferPlan::plan(64 << 10, 16, &ga);
        assert!(large.rparts <= small.rparts);
        assert!(
            (large.rparts, large.cparts) != (small.rparts, small.cparts),
            "capacity change must alter the plan for this working set"
        );
    }

    #[test]
    fn relaxed_scratchpad_never_partitions() {
        let ga = ga(4096, 4096, PimLevel::Device);
        let plan = BufferPlan::plan(64 << 20, 32, &ga);
        assert_eq!((plan.rparts, plan.cparts), (1, 1));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_impossible_capacity() {
        let ga = ga(128, 512, PimLevel::BankGroup);
        BufferPlan::plan(256, 32, &ga);
    }
}
