//! Differential suite for the window-level AGEN successor (PR 5).
//!
//! The span program now crosses consumed-window boundaries arithmetically:
//! the gate-row (pure-high) parity subsystem enumerates the next *nonempty*
//! aligned window, and the cached skeleton replays from its first span,
//! with the live successor's iteration charge reconstructed from the
//! address pair alone. Every path must stay step-for-step identical to the
//! live [`StepStoneAgen`] walk — including the `iterations` field, which
//! encodes the corrector cost the timing model charges.
//!
//! Coverage called out by the ISSUE: random gate-row systems, degenerate
//! (empty/unsatisfiable/oversized) systems, aperiodic high-bit systems,
//! sub-window ranges, unaligned arenas, and multi-period ranges.

use proptest::prelude::*;
use stepstone_addr::agen::{AgenRules, AgenSpan, AgenStep, ParityConstraint, StepStoneAgen};

/// Assert window-enumeration ⊕ span-replay equals the live walk
/// span-for-span and step-for-step, cold and warm (the warm pass runs the
/// window successor against skeletons the cold pass recorded).
fn assert_program_exact(cs: &[ParityConstraint], start: u64, end: u64, rules: AgenRules) {
    let live: Vec<AgenSpan> =
        StepStoneAgen::with_rules(cs.to_vec(), start, end, rules).spans().collect();
    let cold: Vec<AgenSpan> = StepStoneAgen::with_rules(cs.to_vec(), start, end, rules)
        .span_program()
        .collect();
    assert_eq!(live, cold, "cold program diverged (start {start:#x} end {end:#x})");
    let mut warm_prog =
        StepStoneAgen::with_rules(cs.to_vec(), start, end, rules).span_program();
    let warm: Vec<AgenSpan> = warm_prog.by_ref().collect();
    assert_eq!(live, warm, "warm program diverged (start {start:#x} end {end:#x})");
    // Per-block view, through the warm cache (window jumps included).
    let live_steps: Vec<AgenStep> =
        StepStoneAgen::with_rules(cs.to_vec(), start, end, rules).collect();
    let prog_steps: Vec<AgenStep> =
        StepStoneAgen::with_rules(cs.to_vec(), start, end, rules).span_program().steps().collect();
    assert_eq!(live_steps, prog_steps, "per-block stream diverged");
}

/// Build a constraint from a set of bit positions.
fn con(bits: &[u32], parity: bool) -> ParityConstraint {
    ParityConstraint { mask: bits.iter().fold(0u64, |m, &b| m | 1 << b), parity }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Random small-bit systems over multi-window ranges: the core
    // differential property.
    #[test]
    fn random_systems_replay_exactly(
        seed in any::<u64>(),
        n_cons in 1usize..5,
        start_blk in 0u64..48,
        range_bits in 13u32..17,
        instant in any::<bool>(),
        carry in any::<bool>(),
    ) {
        let mut s = seed | 1;
        let mut next = || { s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407); s >> 16 };
        let cs: Vec<ParityConstraint> = (0..n_cons)
            .map(|_| {
                let mut mask = 0u64;
                for _ in 0..1 + next() % 3 {
                    mask |= 1 << (6 + next() % 16); // bits 6..22
                }
                ParityConstraint { mask, parity: next() & 1 == 1 }
            })
            .collect();
        let start = start_blk * 64;
        let end = start + (1u64 << range_bits) + (next() % 64) * 64;
        let rules = AgenRules { instant_correction: instant, carry_forwarding: carry };
        assert_program_exact(&cs, start, end, rules);
    }

    // Systems with deliberate pure-high rows — the gate-heavy regime
    // where most windows are empty and the window successor skips them.
    #[test]
    fn gate_heavy_systems_replay_exactly(
        seed in any::<u64>(),
        hi_bits in 1u32..3,
        start_blk in 0u64..16,
    ) {
        let mut s = seed | 1;
        let mut next = || { s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407); s >> 16 };
        let mut cs = vec![
            con(&[7, 9 + (next() % 3) as u32], next() & 1 == 1),
        ];
        for i in 0..hi_bits {
            // Pure-high taps land at/above any plausible pivot.
            cs.push(con(&[15 + 2 * i, 17 + (next() % 4) as u32 + 2 * i], next() & 1 == 1));
        }
        assert_program_exact(&cs, start_blk * 64, 1 << 20, AgenRules::default());
    }

    // Unaligned arenas and truncated ends across a multi-period range.
    #[test]
    fn unaligned_and_truncated_ranges_replay_exactly(
        start_blk in 0u64..96,
        tail_blks in 0u64..40,
        parities in 0u32..8,
    ) {
        let cs = vec![
            con(&[7, 10], parities & 1 == 1),
            con(&[8, 13], parities & 2 != 0),
            con(&[9, 15], parities & 4 != 0),
        ];
        let end = (1 << 17) + tail_blks * 64;
        assert_program_exact(&cs, start_blk * 64, end, AgenRules::default());
    }
}

#[test]
fn degenerate_systems_stay_exact() {
    // Empty system: one unbounded run, replay disabled.
    assert_program_exact(&[], 0, 1 << 16, AgenRules::default());
    // Unsatisfiable: empty walk either way.
    let unsat = vec![con(&[8], true), con(&[8], false)];
    assert_program_exact(&unsat, 0, 1 << 20, AgenRules::default());
    // Oversized system (> 20 constraints): replay disabled, still exact.
    let big: Vec<ParityConstraint> = (0..22).map(|i| con(&[7 + (i % 12) as u32], false)).collect();
    assert_program_exact(&big, 0, 1 << 16, AgenRules::default());
    // A gate row that folds to an unsatisfiable window constraint for every
    // window: mask-cancelling pair with odd combined parity.
    let gated_unsat = vec![con(&[7, 16], true), con(&[7, 16], false)];
    assert_program_exact(&gated_unsat, 0, 1 << 20, AgenRules::default());
}

#[test]
fn aperiodic_high_bit_systems_stay_exact() {
    // A tap far above the range: the walk sees at most a couple of parity
    // flips, and window states barely recur.
    let cs = vec![con(&[7, 40], false), con(&[9, 11], true)];
    assert_program_exact(&cs, 0, 1 << 16, AgenRules::default());
    // Tap just above the range top.
    let cs = vec![con(&[8, 21], true)];
    assert_program_exact(&cs, 0, 1 << 20, AgenRules::default());
}

#[test]
fn sub_window_ranges_fall_back_to_live() {
    // Ranges shorter than one window must keep the live walk (and match).
    let cs = vec![con(&[7, 12], true)];
    for end_blk in [1u64, 2, 3, 7, 15] {
        assert_program_exact(&cs, 0, end_blk * 64, AgenRules::default());
    }
    let p = StepStoneAgen::new(cs, 0, 128).span_program();
    assert!(!p.replay_enabled());
}

#[test]
fn warm_walks_cross_boundaries_arithmetically() {
    // A gate-heavy system over many windows: the warm pass must cross
    // in-range window boundaries via the gate-row successor (no live
    // corrector scan), and the live successor count must collapse to the
    // range edges.
    let cs = vec![con(&[7, 9], true), con(&[16, 18], false), con(&[8, 17], true)];
    let end = 1u64 << 20;
    let cold: Vec<AgenSpan> =
        StepStoneAgen::new(cs.clone(), 0, end).span_program().collect();
    let mut warm = StepStoneAgen::new(cs.clone(), 0, end).span_program();
    assert!(warm.replay_enabled());
    let warm_spans: Vec<AgenSpan> = warm.by_ref().collect();
    assert_eq!(cold, warm_spans);
    assert!(
        warm.window_jumps > 0,
        "warm walk must cross boundaries via the window successor"
    );
    assert!(
        warm.boundary_successors <= 2,
        "live boundary scans must collapse to the range edges (got {})",
        warm.boundary_successors
    );
    assert!(warm.skeleton_hits >= warm.window_jumps);
    assert_eq!(warm.skeleton_misses, 0, "second pass must not re-record");
}

#[test]
fn skeletons_shared_across_parities_stay_exact_with_jumps() {
    // Walks that differ only in constraint parities share one skeleton
    // store; later walks window-jump into skeletons earlier walks
    // recorded, across disjoint residual states.
    let masks: [&[u32]; 3] = [&[7, 13], &[8, 12], &[9, 16]];
    for parity_bits in 0..8u32 {
        let cs: Vec<ParityConstraint> = masks
            .iter()
            .enumerate()
            .map(|(i, bits)| con(bits, parity_bits >> i & 1 == 1))
            .collect();
        assert_program_exact(&cs, 0, 1 << 18, AgenRules::default());
    }
}

#[test]
fn multi_period_ranges_with_rules_variants_stay_exact() {
    let cs = vec![con(&[7, 8, 11], true), con(&[9, 14], false)];
    for rules in [
        AgenRules::default(),
        AgenRules::NONE,
        AgenRules { instant_correction: true, carry_forwarding: false },
        AgenRules { instant_correction: false, carry_forwarding: true },
    ] {
        assert_program_exact(&cs, 0, 1 << 18, rules);
    }
}
