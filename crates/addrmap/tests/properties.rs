//! Property tests for the address-mapping substrate: mapping bijectivity,
//! AGEN sequence equivalence (the paper's own trace-validation methodology,
//! §IV), and block-group partition algebra.

use proptest::prelude::*;
use stepstone_addr::agen::{AgenRules, AgenSpan, AgenStep, NaiveAgen, ParityConstraint, StepStoneAgen};
use stepstone_addr::geometry::{Geometry, BLOCK_SHIFT};
use stepstone_addr::groups::GroupAnalysis;
use stepstone_addr::layout::MatrixLayout;
use stepstone_addr::mapping::{BitSpec, Field, XorMapping};
use stepstone_addr::pimlevel::PimLevel;
use stepstone_addr::presets::{mapping_by_id, mapping_on, MappingId};

/// A strategy producing a random but always-invertible XOR mapping on a
/// small geometry: random owner permutation plus random taps drawn only from
/// *row-owned* bits (the PAE construction, which keeps the map triangular
/// and therefore invertible).
fn random_mapping() -> impl Strategy<Value = XorMapping> {
    let geom = Geometry {
        channels: 2,
        ranks_per_channel: 2,
        bankgroups_per_rank: 4,
        banks_per_bankgroup: 2,
        rows_per_bank: 64,
        blocks_per_row: 16,
    };
    let nbits = geom.block_addr_bits() as usize; // 4+1+2+1+1+6 = 15
    (any::<u64>(), proptest::collection::vec(any::<u32>(), nbits)).prop_map(move |(seed, taps)| {
        // Build the owner list: columns, banks, bank groups, rank, channel,
        // rows — then apply a seed-driven permutation of the non-row bits.
        let mut owners: Vec<(Field, u32)> = Vec::new();
        for i in 0..geom.column_bits() {
            owners.push((Field::Column, i));
        }
        for i in 0..geom.bank_bits() {
            owners.push((Field::Bank, i));
        }
        for i in 0..geom.bankgroup_bits() {
            owners.push((Field::BankGroup, i));
        }
        for i in 0..geom.rank_bits() {
            owners.push((Field::Rank, i));
        }
        for i in 0..geom.channel_bits() {
            owners.push((Field::Channel, i));
        }
        let non_row = owners.len();
        for i in 0..geom.row_bits() {
            owners.push((Field::Row, i));
        }
        // Fisher–Yates over the non-row owners with a simple LCG.
        let mut state = seed | 1;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for i in (1..non_row).rev() {
            let j = (rng() as usize) % (i + 1);
            owners.swap(i, j);
        }
        // Row-owned PA bits (taps must come from here to stay invertible).
        let row_bits: Vec<u32> = owners
            .iter()
            .enumerate()
            .filter(|(_, (f, _))| *f == Field::Row)
            .map(|(i, _)| BLOCK_SHIFT + i as u32)
            .collect();
        let specs: Vec<BitSpec> = owners
            .iter()
            .enumerate()
            .map(|(i, &(f, idx))| {
                let is_id = matches!(f, Field::Channel | Field::Rank | Field::BankGroup);
                if is_id && !row_bits.is_empty() {
                    let t = taps[i] as usize % (row_bits.len() + 1);
                    if t < row_bits.len() {
                        return BitSpec::tapped(f, idx, &[row_bits[t]]);
                    }
                }
                BitSpec::plain(f, idx)
            })
            .collect();
        XorMapping::from_bit_specs("random", geom, &specs)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mapping_roundtrips_everywhere(m in random_mapping(), blocks in proptest::collection::vec(0u64..(1 << 15), 32)) {
        for b in blocks {
            let pa = b << BLOCK_SHIFT;
            let c = m.decode(pa);
            prop_assert_eq!(m.encode(c), pa);
        }
    }

    #[test]
    fn mapping_is_a_bijection_on_a_window(m in random_mapping()) {
        let mut seen = std::collections::HashSet::new();
        for b in 0u64..(1 << 12) {
            let c = m.decode(b << BLOCK_SHIFT);
            prop_assert!(seen.insert((c.channel, c.rank, c.bankgroup, c.bank, c.row, c.col)));
        }
    }

    #[test]
    fn agen_equivalence_random_mapping(
        m in random_mapping(),
        rows_log in 2u32..5,
        cols_log in 4u32..7,
        level_ix in 0usize..3,
    ) {
        let level = PimLevel::ALL[level_ix];
        let layout = MatrixLayout::new_f32(0, 1 << rows_log, 1 << cols_log);
        let ga = GroupAnalysis::analyze(&m, level, layout);
        let pim = ga.active_pims()[0];
        for g in 0..ga.n_groups() {
            if !ga.is_admissible(pim, g) {
                continue;
            }
            let cs = ga.constraints_for(pim, g);
            let naive: Vec<u64> =
                NaiveAgen::new(cs.clone(), layout.base, layout.end()).map(|s| s.pa).collect();
            let fast: Vec<u64> =
                StepStoneAgen::new(cs, layout.base, layout.end()).map(|s| s.pa).collect();
            prop_assert_eq!(naive, fast);
        }
    }

    #[test]
    fn agen_equivalence_random_constraints(
        masks in proptest::collection::vec((1u64..(1 << 14), any::<bool>()), 1..5),
        start_blk in 0u64..64,
    ) {
        // Arbitrary parity constraints (masks restricted to block-address
        // bits). The constraint system may be unsatisfiable in a window;
        // both generators must agree even then.
        let cs: Vec<ParityConstraint> = masks
            .iter()
            .map(|&(m, p)| ParityConstraint { mask: (m << BLOCK_SHIFT) & !63, parity: p })
            .filter(|c| c.mask != 0)
            .collect();
        let start = start_blk << BLOCK_SHIFT;
        let end = start + (1 << 16);
        let naive: Vec<u64> = NaiveAgen::new(cs.clone(), start, end).map(|s| s.pa).collect();
        let fast: Vec<u64> = StepStoneAgen::new(cs, start, end).map(|s| s.pa).collect();
        prop_assert_eq!(naive, fast);
    }

    #[test]
    fn agen_spans_flatten_to_the_naive_sequence(
        masks in proptest::collection::vec((1u64..(1 << 14), any::<bool>()), 1..5),
        start_blk in 0u64..64,
    ) {
        // The batched-span fast path must cover exactly the naive per-block
        // walk: flattened spans give the same addresses, and the first
        // block of each span carries the whole corrector cost while the
        // rest are single-iteration increments.
        let cs: Vec<ParityConstraint> = masks
            .iter()
            .map(|&(m, p)| ParityConstraint { mask: (m << BLOCK_SHIFT) & !63, parity: p })
            .filter(|c| c.mask != 0)
            .collect();
        let start = start_blk << BLOCK_SHIFT;
        let end = start + (1 << 16);
        let naive: Vec<_> = NaiveAgen::new(cs.clone(), start, end).collect();
        let mut flattened = Vec::new();
        for span in StepStoneAgen::new(cs.clone(), start, end).spans() {
            prop_assert!(span.len >= 1);
            for i in 0..span.len {
                flattened.push(span.start_pa + i * 64);
            }
        }
        prop_assert_eq!(
            naive.iter().map(|s| s.pa).collect::<Vec<_>>(),
            flattened
        );
        // Per-step parity with the per-block iterator: same addresses, and
        // only a span's first block carries the corrector cost.
        let per_block: Vec<_> = StepStoneAgen::new(cs.clone(), start, end).collect();
        prop_assert_eq!(per_block.len(), naive.len());
        let mut it = per_block.iter();
        for span in StepStoneAgen::new(cs, start, end).spans() {
            for i in 0..span.len {
                let step = it.next().expect("same length");
                prop_assert_eq!(step.pa, span.start_pa + i * 64);
                let expect_iters = if i == 0 { span.iterations } else { 1 };
                prop_assert_eq!(step.iterations, expect_iters);
            }
        }
        prop_assert!(it.next().is_none());
    }

    #[test]
    fn span_program_replays_the_live_walk_exactly(
        masks in proptest::collection::vec((1u64..(1 << 14), any::<bool>()), 1..6),
        start_blk in 0u64..512,
        len_log in 12u32..18,
    ) {
        // The cached periodic span program must emit byte-identical spans
        // (addresses, lengths, *and* corrector iteration counts) to the
        // live generator — across random constraint systems, unaligned
        // walk arenas, and ranges holding many pattern periods. Run the
        // same walk twice so the second pass replays from warm skeletons.
        let cs: Vec<ParityConstraint> = masks
            .iter()
            .map(|&(m, p)| ParityConstraint { mask: (m << BLOCK_SHIFT) & !63, parity: p })
            .filter(|c| c.mask != 0)
            .collect();
        let start = start_blk << BLOCK_SHIFT;
        let end = start + (1u64 << len_log);
        let live: Vec<AgenSpan> =
            StepStoneAgen::new(cs.clone(), start, end).spans().collect();
        let cold: Vec<AgenSpan> =
            StepStoneAgen::new(cs.clone(), start, end).span_program().collect();
        prop_assert_eq!(&live, &cold);
        let warm: Vec<AgenSpan> =
            StepStoneAgen::new(cs, start, end).span_program().collect();
        prop_assert_eq!(&live, &warm);
    }

    #[test]
    fn span_program_steps_match_the_per_block_walk(
        masks in proptest::collection::vec((1u64..(1 << 12), any::<bool>()), 1..5),
        start_blk in 0u64..64,
    ) {
        // The flattened per-block view must match the plain iterator,
        // iteration counts included.
        let cs: Vec<ParityConstraint> = masks
            .iter()
            .map(|&(m, p)| ParityConstraint { mask: (m << BLOCK_SHIFT) & !63, parity: p })
            .filter(|c| c.mask != 0)
            .collect();
        let start = start_blk << BLOCK_SHIFT;
        let end = start + (1 << 16);
        let per_block: Vec<AgenStep> =
            StepStoneAgen::new(cs.clone(), start, end).collect();
        let program: Vec<AgenStep> =
            StepStoneAgen::new(cs, start, end).span_program().steps().collect();
        prop_assert_eq!(per_block, program);
    }

    #[test]
    fn agen_rules_do_not_change_the_sequence(
        m in random_mapping(),
        rows_log in 2u32..4,
    ) {
        let layout = MatrixLayout::new_f32(0, 1 << rows_log, 64);
        let ga = GroupAnalysis::analyze(&m, PimLevel::BankGroup, layout);
        let pim = ga.active_pims()[0];
        let g = (0..ga.n_groups()).find(|&g| ga.is_admissible(pim, g));
        if let Some(g) = g {
            let cs = ga.constraints_for(pim, g);
            let full: Vec<u64> =
                StepStoneAgen::with_rules(cs.clone(), 0, layout.end(), AgenRules::default())
                    .map(|s| s.pa)
                    .collect();
            let none: Vec<u64> =
                StepStoneAgen::with_rules(cs, 0, layout.end(), AgenRules::NONE)
                    .map(|s| s.pa)
                    .collect();
            prop_assert_eq!(full, none);
        }
    }

    #[test]
    fn partition_is_exact_and_counts_match(m in random_mapping(), rows_log in 2u32..5) {
        let layout = MatrixLayout::new_f32(0, 1 << rows_log, 256);
        for level in PimLevel::ALL {
            let ga = GroupAnalysis::analyze(&m, level, layout);
            // Every block belongs to exactly one (active PIM, group).
            let mut per_pim = std::collections::HashMap::new();
            for r in 0..layout.rows {
                let g = ga.group_of_row(r);
                for k in 0..layout.blocks_per_row() {
                    let p = ga.pim_of_block(r, k);
                    prop_assert!(ga.is_admissible(p, g));
                    *per_pim.entry(p).or_insert(0u64) += 1;
                }
            }
            prop_assert_eq!(per_pim.len(), ga.active_pim_count());
            for (_, count) in per_pim {
                prop_assert_eq!(count, ga.blocks_per_pim());
            }
            // Replication invariant: summing each PIM's distinct localized
            // columns recovers `sharing` copies of every column block.
            prop_assert_eq!(
                ga.distinct_cols_per_pim() * ga.active_pim_count() as u64,
                ga.sharing() as u64 * layout.blocks_per_row()
            );
            // Reduction invariant: summing each PIM's partial-C rows
            // recovers `reduction` copies of every output row.
            prop_assert_eq!(
                (ga.c_rows_per_pim() * ga.active_pim_count()) as u64,
                (ga.reduction() * layout.rows) as u64
            );
        }
    }
}

#[test]
fn span_program_key_cap_overflow_stays_exact() {
    // Push far more distinct (mask set, pivot) keys through the global
    // span-program cache than its key cap admits; overflowing entries get
    // private skeleton stores and every walk must stay exact either way.
    for i in 0..700u64 {
        let cs = vec![
            ParityConstraint { mask: (1 << 7) | ((i + 2) << 14), parity: i & 1 == 1 },
            ParityConstraint { mask: (1 << 8) | (1 << 11), parity: i & 2 == 2 },
        ];
        let end = 1 << 16;
        let live: Vec<u64> =
            StepStoneAgen::new(cs.clone(), 0, end).spans().map(|s| s.start_pa).collect();
        let prog: Vec<u64> = StepStoneAgen::new(cs, 0, end)
            .span_program()
            .map(|s| s.start_pa)
            .collect();
        assert_eq!(live, prog, "variant {i}");
    }
    // Private (overflow) stores die with their walks and must not be
    // charged to the global span budget.
    assert!(
        stepstone_addr::agen::span_cache_resident_spans() <= 1 << 20,
        "global span accounting exceeded its cap"
    );
}

#[test]
fn preset_mappings_agen_equivalence_exhaustive() {
    // Cross-check every preset at every level on the paper's Fig. 4 matrix.
    let layout = MatrixLayout::new_f32(0, 16, 512);
    for id in MappingId::ALL {
        let m = mapping_by_id(id);
        for level in PimLevel::ALL {
            let ga = GroupAnalysis::analyze(&m, level, layout);
            for &pim in &ga.active_pims() {
                for g in 0..ga.n_groups() {
                    if !ga.is_admissible(pim, g) {
                        continue;
                    }
                    let cs = ga.constraints_for(pim, g);
                    let naive: Vec<u64> =
                        NaiveAgen::new(cs.clone(), 0, layout.end()).map(|s| s.pa).collect();
                    let fast: Vec<u64> =
                        StepStoneAgen::new(cs, 0, layout.end()).map(|s| s.pa).collect();
                    assert_eq!(naive, fast, "{id:?} {level:?} pim {pim} group {g}");
                    assert_eq!(
                        naive.len() as u64,
                        ga.local_cols_per_group() * ga.rows_per_group() as u64
                    );
                }
            }
        }
    }
}

#[test]
fn interleaved_geometries_share_agen_caches_without_aliasing() {
    // Cross-preset cache-aliasing regression: the process-wide corrector,
    // window, and span-program caches are keyed by constraint masks (plus
    // level range / pivot / rules) — *not* by geometry or parity. That is
    // complete because the cached tables are parity-independent by
    // construction and distinct geometries yield distinct mask sequences,
    // but nothing used to pin it. Interleave walks under the ddr5 / lpddr5
    // / hbm2 preset geometries (all routed through `generic_mapping_on`) so
    // entries populated by one geometry are live lookup candidates while
    // another geometry walks, and hold every walk to the naive oracle.
    let geoms = [
        // DDR5-4800 (stepstone-dram `ddr5_4800`): 8 bank groups.
        Geometry {
            channels: 4,
            ranks_per_channel: 1,
            bankgroups_per_rank: 8,
            banks_per_bankgroup: 4,
            rows_per_bank: 32768,
            blocks_per_row: 64,
        },
        // LPDDR5-6400 (`lpddr5_6400`): 2 channels, 16 KiB rows.
        Geometry {
            channels: 2,
            ranks_per_channel: 1,
            bankgroups_per_rank: 4,
            banks_per_bankgroup: 4,
            rows_per_bank: 65536,
            blocks_per_row: 128,
        },
        // HBM2 (`hbm2`): wide channels, 8 KiB rows.
        Geometry {
            channels: 4,
            ranks_per_channel: 1,
            bankgroups_per_rank: 4,
            banks_per_bankgroup: 4,
            rows_per_bank: 65536,
            blocks_per_row: 64,
        },
    ];
    let layout = MatrixLayout::new_f32(0, 16, 512);
    let mut walks: Vec<(usize, PimLevel, usize, Vec<ParityConstraint>)> = Vec::new();
    for (gi, geom) in geoms.iter().enumerate() {
        let m = mapping_on(MappingId::Skylake, *geom);
        assert_eq!(m.geometry(), geom);
        for level in [PimLevel::BankGroup, PimLevel::Channel] {
            let ga = GroupAnalysis::analyze(&m, level, layout);
            let pim = ga.active_pims()[0];
            for g in 0..ga.n_groups().min(4) {
                if ga.is_admissible(pim, g) {
                    walks.push((gi, level, g, ga.constraints_for(pim, g)));
                }
            }
        }
    }
    assert!(walks.len() >= 6, "need walks from every geometry");
    // Pass 0 walks in geometry order (populating the caches); pass 1
    // strides through in a shuffled order so lookups happen with all three
    // geometries' entries resident. A stride coprime to the length covers
    // every walk.
    let stride = (0..walks.len()).find(|s| s % 2 == 1 && s % 3 == 1 && *s > 1).unwrap_or(1);
    for pass in 0..2 {
        for i in 0..walks.len() {
            let ix = if pass == 0 { i } else { (i * stride) % walks.len() };
            let (gi, level, g, cs) = &walks[ix];
            let naive: Vec<u64> =
                NaiveAgen::new(cs.clone(), 0, layout.end()).map(|s| s.pa).collect();
            let fast: Vec<u64> =
                StepStoneAgen::new(cs.clone(), 0, layout.end()).map(|s| s.pa).collect();
            assert_eq!(naive, fast, "geom {gi} {level:?} group {g} pass {pass} (stream)");
            let replayed: Vec<u64> = StepStoneAgen::new(cs.clone(), 0, layout.end())
                .span_program()
                .steps()
                .map(|s| s.pa)
                .collect();
            assert_eq!(naive, replayed, "geom {gi} {level:?} group {g} pass {pass} (replay)");
        }
    }
}
