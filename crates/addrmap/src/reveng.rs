//! Reverse-engineering XOR address mappings from a decode oracle.
//!
//! The paper assumes "the CPU address mapping is available for PIMs either
//! by reverse engineering, by CPU vendors building the PIMs, or by
//! agreement" (§III-D, footnote 3), citing DRAMA (Pessl et al.), which
//! recovers the functions with timing side channels. Given any
//! block-granular decode oracle — a timing probe in the field, or a
//! [`crate::XorMapping`] in tests — the recovery itself is linear algebra:
//! every coordinate bit of a XOR mapping is a parity of PA bits, so probing
//! the zero address plus each single-bit address determines every mask, and
//! a handful of random addresses certifies linearity.

use crate::geometry::{DramCoord, Geometry, BLOCK_SHIFT};
use crate::mapping::XorMapping;

/// A mapping recovered from probes: per-field parity masks over PA bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredMapping {
    pub geom: Geometry,
    pub ch_masks: Vec<u64>,
    pub rank_masks: Vec<u64>,
    pub bg_masks: Vec<u64>,
    pub bank_masks: Vec<u64>,
    pub row_masks: Vec<u64>,
    pub col_masks: Vec<u64>,
}

impl RecoveredMapping {
    /// Decode with the recovered masks (for cross-checking).
    pub fn decode(&self, pa: u64) -> DramCoord {
        let gather = |masks: &[u64]| -> u32 {
            let mut v = 0;
            for (i, &m) in masks.iter().enumerate() {
                v |= (((pa & m).count_ones()) & 1) << i;
            }
            v
        };
        DramCoord {
            channel: gather(&self.ch_masks),
            rank: gather(&self.rank_masks),
            bankgroup: gather(&self.bg_masks),
            bank: gather(&self.bank_masks),
            row: gather(&self.row_masks),
            col: gather(&self.col_masks),
        }
    }
}

/// Errors the recovery can diagnose.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RevengError {
    /// The oracle is not linear over GF(2) — not a XOR-based mapping.
    NotLinear { witness_pa: u64 },
    /// The oracle does not map address 0 to coordinate 0 (an offset exists;
    /// probe relative to a base first).
    NonZeroOrigin,
}

/// Recover a XOR mapping from `oracle` over `bits` block-address bits,
/// verifying linearity with `check_rounds` random probes (xorshift-seeded,
/// deterministic).
pub fn recover<F>(geom: Geometry, oracle: F, check_rounds: usize) -> Result<RecoveredMapping, RevengError>
where
    F: Fn(u64) -> DramCoord,
{
    let origin = oracle(0);
    if origin != (DramCoord { channel: 0, rank: 0, bankgroup: 0, bank: 0, row: 0, col: 0 }) {
        return Err(RevengError::NonZeroOrigin);
    }
    let bits = geom.block_addr_bits();
    let field = |c: &DramCoord| -> [u32; 6] {
        [c.channel, c.rank, c.bankgroup, c.bank, c.row, c.col]
    };
    let widths = [
        geom.channel_bits(),
        geom.rank_bits(),
        geom.bankgroup_bits(),
        geom.bank_bits(),
        geom.row_bits(),
        geom.column_bits(),
    ];
    // Probe each single PA bit: its coordinate is exactly the set of
    // coordinate bits whose mask contains it.
    let mut masks: [Vec<u64>; 6] = widths.map(|w| vec![0u64; w as usize]);
    for b in 0..bits {
        let pa = 1u64 << (BLOCK_SHIFT + b);
        let c = oracle(pa);
        for (f, v) in field(&c).into_iter().enumerate() {
            for i in 0..widths[f] {
                if v >> i & 1 == 1 {
                    masks[f][i as usize] |= pa;
                }
            }
        }
    }
    let rec = RecoveredMapping {
        geom,
        ch_masks: masks[0].clone(),
        rank_masks: masks[1].clone(),
        bg_masks: masks[2].clone(),
        bank_masks: masks[3].clone(),
        row_masks: masks[4].clone(),
        col_masks: masks[5].clone(),
    };
    // Linearity certification: random multi-bit addresses must decode to
    // the XOR of their bits' decodes — i.e. match the recovered masks.
    let mut state = 0x5DEECE66Du64;
    for _ in 0..check_rounds {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let pa = ((state >> 17) & ((1u64 << bits) - 1)) << BLOCK_SHIFT;
        if oracle(pa) != rec.decode(pa) {
            return Err(RevengError::NotLinear { witness_pa: pa });
        }
    }
    Ok(rec)
}

/// Recover directly from a known mapping (test/bring-up convenience).
pub fn recover_from_mapping(m: &XorMapping) -> RecoveredMapping {
    recover(*m.geometry(), |pa| m.decode(pa), 256).expect("XorMapping is linear by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::Field;
    use crate::presets::{mapping_by_id, MappingId};

    #[test]
    fn recovers_every_preset_exactly() {
        for id in MappingId::ALL {
            let m = mapping_by_id(id);
            let rec = recover_from_mapping(&m);
            // Mask-for-mask equality with the ground truth.
            assert_eq!(rec.ch_masks, m.field_masks(Field::Channel), "{id:?} channel");
            assert_eq!(rec.rank_masks, m.field_masks(Field::Rank), "{id:?} rank");
            assert_eq!(rec.bg_masks, m.field_masks(Field::BankGroup), "{id:?} bg");
            assert_eq!(rec.bank_masks, m.field_masks(Field::Bank), "{id:?} bank");
            assert_eq!(rec.row_masks, m.field_masks(Field::Row), "{id:?} row");
            assert_eq!(rec.col_masks, m.field_masks(Field::Column), "{id:?} col");
        }
    }

    #[test]
    fn recovered_decode_agrees_everywhere() {
        let m = mapping_by_id(MappingId::Skylake);
        let rec = recover_from_mapping(&m);
        for blk in (0..(1u64 << 16)).step_by(97) {
            assert_eq!(rec.decode(blk * 64), m.decode(blk * 64));
        }
    }

    #[test]
    fn rejects_nonlinear_oracles() {
        let m = mapping_by_id(MappingId::Skylake);
        let geom = *m.geometry();
        // A row-remapped (non-XOR) oracle: conditionally perturb a quarter
        // of all rows (dense enough for the linearity certification).
        let oracle = |pa: u64| {
            let mut c = m.decode(pa);
            if c.row % 4 == 3 && c.col > 2 {
                c.row ^= 5;
            }
            c
        };
        match recover(geom, oracle, 4096) {
            Err(RevengError::NotLinear { .. }) => {}
            other => panic!("expected NotLinear, got {other:?}"),
        }
    }

    #[test]
    fn rejects_offset_origin() {
        let m = mapping_by_id(MappingId::Skylake);
        let geom = *m.geometry();
        let oracle = |pa: u64| m.decode(pa + 64);
        assert_eq!(recover(geom, oracle, 16), Err(RevengError::NonZeroOrigin));
    }
}
