//! Small dense linear algebra over GF(2) with rows packed into `u64`.
//!
//! Address mappings and block-group analysis reduce to rank computations,
//! linear solves, and matrix inversion over GF(2) in ≤ 64 dimensions, which a
//! bit-packed Gaussian elimination handles exactly and cheaply.

/// A dense GF(2) matrix; `rows[i]` packs row *i* with column *j* at bit *j*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gf2Matrix {
    rows: Vec<u64>,
    ncols: usize,
}

impl Gf2Matrix {
    /// Create a matrix from packed rows over `ncols` columns (`ncols ≤ 64`).
    pub fn from_rows(rows: Vec<u64>, ncols: usize) -> Self {
        assert!(ncols <= 64, "Gf2Matrix supports at most 64 columns");
        Self { rows, ncols }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        Self::from_rows((0..n).map(|i| 1u64 << i).collect(), n)
    }

    pub fn nrows(&self) -> usize {
        self.rows.len()
    }

    pub fn ncols(&self) -> usize {
        self.ncols
    }

    pub fn row(&self, i: usize) -> u64 {
        self.rows[i]
    }

    /// Matrix–vector product `M·x` (vector packed into a `u64`).
    pub fn mul_vec(&self, x: u64) -> u64 {
        let mut y = 0u64;
        for (i, &r) in self.rows.iter().enumerate() {
            y |= (((r & x).count_ones() as u64) & 1) << i;
        }
        y
    }

    /// Rank via Gaussian elimination (does not modify `self`).
    pub fn rank(&self) -> usize {
        rank_of(self.rows.clone())
    }

    /// Invert a square matrix; `None` if singular.
    ///
    /// Bijectivity of an address mapping is exactly invertibility of its
    /// PA-bit → DRAM-coordinate-bit matrix.
    pub fn inverse(&self) -> Option<Gf2Matrix> {
        let n = self.nrows();
        if n != self.ncols {
            return None;
        }
        let mut a = self.rows.clone();
        let mut inv: Vec<u64> = (0..n).map(|i| 1u64 << i).collect();
        for col in 0..n {
            let pivot = (col..n).find(|&r| a[r] >> col & 1 == 1)?;
            a.swap(col, pivot);
            inv.swap(col, pivot);
            for r in 0..n {
                if r != col && a[r] >> col & 1 == 1 {
                    a[r] ^= a[col];
                    inv[r] ^= inv[col];
                }
            }
        }
        Some(Gf2Matrix::from_rows(inv, n))
    }
}

/// Rank of a set of packed GF(2) row vectors.
pub fn rank_of(mut rows: Vec<u64>) -> usize {
    let mut rank = 0;
    for col in 0..64 {
        let Some(pivot) = (rank..rows.len()).find(|&r| rows[r] >> col & 1 == 1) else {
            continue;
        };
        rows.swap(rank, pivot);
        let pr = rows[rank];
        for (r, row) in rows.iter_mut().enumerate() {
            if r != rank && *row >> col & 1 == 1 {
                *row ^= pr;
            }
        }
        rank += 1;
        if rank == rows.len() {
            break;
        }
    }
    rank
}

/// Rank of the span of `vecs` (alias of [`rank_of`] with slice input).
pub fn span_rank(vecs: &[u64]) -> usize {
    rank_of(vecs.to_vec())
}

/// Is `v` in the span of `basis`?
pub fn in_span(basis: &[u64], v: u64) -> bool {
    if v == 0 {
        return true;
    }
    let r0 = span_rank(basis);
    let mut with = basis.to_vec();
    with.push(v);
    rank_of(with) == r0
}

/// An incremental GF(2) solver for systems `A·x = b` where each equation is a
/// packed coefficient row plus a parity bit.
///
/// Used by the reference AGEN to find the minimal-value suffix assignment
/// that restores all ID parities after an increment (paper §III-D).
#[derive(Debug, Clone, Default)]
pub struct Gf2System {
    /// Echelonized equations: `(coefficients, rhs)`.
    eqs: Vec<(u64, bool)>,
    inconsistent: bool,
}

impl Gf2System {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add equation `parity(coeff & x) = rhs`; returns `false` if the system
    /// became inconsistent.
    pub fn add(&mut self, mut coeff: u64, mut rhs: bool) -> bool {
        for &(c, r) in &self.eqs {
            let lead = c & c.wrapping_neg();
            if coeff & lead != 0 {
                coeff ^= c;
                rhs ^= r;
            }
        }
        if coeff == 0 {
            if rhs {
                self.inconsistent = true;
            }
            return !self.inconsistent;
        }
        // Keep echelon form: reduce existing rows by the new pivot.
        let lead = coeff & coeff.wrapping_neg();
        for (c, r) in &mut self.eqs {
            if *c & lead != 0 {
                *c ^= coeff;
                *r ^= rhs;
            }
        }
        self.eqs.push((coeff, rhs));
        self.eqs.sort_unstable_by_key(|&(c, _)| c & c.wrapping_neg());
        true
    }

    pub fn is_consistent(&self) -> bool {
        !self.inconsistent
    }

    /// The minimal-value solution `x` (free variables = 0), if consistent.
    ///
    /// With the system in reduced echelon form, setting every free variable
    /// to zero and each pivot variable to its equation's RHS yields the
    /// numerically smallest satisfying assignment.
    pub fn min_solution(&self) -> Option<u64> {
        if self.inconsistent {
            return None;
        }
        let mut x = 0u64;
        for &(c, r) in &self.eqs {
            if r {
                x |= c & c.wrapping_neg();
            }
        }
        Some(x)
    }
}

/// An incrementally built GF(2) subspace with an echelonized basis, used to
/// answer membership queries and assign dense coordinates to its vectors.
#[derive(Debug, Clone, Default)]
pub struct VecSpace {
    /// Echelon basis, each with a unique lowest set bit, sorted by that bit.
    basis: Vec<u64>,
}

impl VecSpace {
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a space from a spanning set.
    pub fn from_span(vecs: &[u64]) -> Self {
        let mut s = Self::new();
        for &v in vecs {
            s.insert(v);
        }
        s
    }

    /// Add a vector; returns `true` if it enlarged the space.
    pub fn insert(&mut self, mut v: u64) -> bool {
        for &b in &self.basis {
            if v & (b & b.wrapping_neg()) != 0 {
                v ^= b;
            }
        }
        if v == 0 {
            return false;
        }
        let lead = v & v.wrapping_neg();
        for b in &mut self.basis {
            if *b & lead != 0 {
                *b ^= v;
            }
        }
        self.basis.push(v);
        self.basis.sort_unstable_by_key(|&b| b & b.wrapping_neg());
        true
    }

    pub fn dim(&self) -> usize {
        self.basis.len()
    }

    pub fn contains(&self, mut v: u64) -> bool {
        for &b in &self.basis {
            if v & (b & b.wrapping_neg()) != 0 {
                v ^= b;
            }
        }
        v == 0
    }

    /// Dense coordinates of `v` in this space's basis (`None` if `v` is not a
    /// member). Coordinates are stable for a fixed insertion history.
    pub fn coords(&self, mut v: u64) -> Option<u64> {
        let mut c = 0u64;
        for (i, &b) in self.basis.iter().enumerate() {
            if v & (b & b.wrapping_neg()) != 0 {
                v ^= b;
                c |= 1 << i;
            }
        }
        (v == 0).then_some(c)
    }

    /// Enumerate all `2^dim` member vectors (small spaces only).
    pub fn enumerate(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(1 << self.basis.len());
        for m in 0u64..(1 << self.basis.len()) {
            let mut v = 0;
            for (i, &b) in self.basis.iter().enumerate() {
                if m >> i & 1 == 1 {
                    v ^= b;
                }
            }
            out.push(v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_inverse_roundtrip() {
        let id = Gf2Matrix::identity(8);
        assert_eq!(id.inverse().unwrap(), id);
        assert_eq!(id.mul_vec(0b1010_1010), 0b1010_1010);
    }

    #[test]
    fn rank_simple() {
        assert_eq!(span_rank(&[0b001, 0b010, 0b011]), 2);
        assert_eq!(span_rank(&[0b001, 0b010, 0b100]), 3);
        assert_eq!(span_rank(&[0, 0, 0]), 0);
        assert_eq!(span_rank(&[]), 0);
    }

    #[test]
    fn in_span_checks() {
        let basis = [0b0011, 0b0101];
        assert!(in_span(&basis, 0b0110)); // sum of both
        assert!(in_span(&basis, 0));
        assert!(!in_span(&basis, 0b1000));
    }

    #[test]
    fn inverse_of_xor_chain() {
        // y0 = x0, y1 = x0^x1, y2 = x1^x2 — a carry-chain-like map.
        let m = Gf2Matrix::from_rows(vec![0b001, 0b011, 0b110], 3);
        let inv = m.inverse().expect("invertible");
        for x in 0..8u64 {
            assert_eq!(inv.mul_vec(m.mul_vec(x)), x);
        }
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let m = Gf2Matrix::from_rows(vec![0b01, 0b01], 2);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn system_minimal_solution() {
        let mut s = Gf2System::new();
        // x0 ^ x2 = 1; x1 = 0.
        assert!(s.add(0b101, true));
        assert!(s.add(0b010, false));
        let x = s.min_solution().unwrap();
        assert_eq!(x, 0b001); // minimal: set x0, not x2
        assert!(s.is_consistent());
    }

    #[test]
    fn system_detects_inconsistency() {
        let mut s = Gf2System::new();
        assert!(s.add(0b11, true));
        assert!(s.add(0b11, true)); // duplicate is fine
        assert!(!s.add(0b11, false)); // contradiction
        assert!(s.min_solution().is_none());
    }

    #[test]
    fn system_minimal_prefers_low_bits() {
        let mut s = Gf2System::new();
        // x1 ^ x3 = 1 → minimal solution sets x1 (value 2), not x3 (value 8).
        assert!(s.add(0b1010, true));
        assert_eq!(s.min_solution().unwrap(), 0b0010);
    }

    #[test]
    #[should_panic(expected = "at most 64 columns")]
    fn oversized_matrices_are_rejected() {
        Gf2Matrix::from_rows(vec![0; 65], 65);
    }
}
