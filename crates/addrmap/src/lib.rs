//! XOR-based DRAM address mappings, block-group analysis, and the StepStone
//! address-generation (AGEN) logic.
//!
//! This crate is the mathematical heart of the StepStone PIM reproduction
//! (Cho, Jung, Erez, SC'21). It models the CPU's XOR-based physical-address →
//! DRAM-coordinate mappings as invertible linear maps over GF(2), derives the
//! *block groups* that make locality-preserving PIM GEMM execution possible
//! under such mappings (paper §III-B), and implements both the naive and the
//! StepStone increment-correct-and-check address generators (§III-D).
//!
//! # Overview
//!
//! * [`Geometry`] — channel/rank/bank-group/bank/row/column organization.
//! * [`XorMapping`] — an invertible XOR-based address mapping built from
//!   per-bit field owners plus XOR taps, with encode/decode both ways.
//! * [`presets`] — the five address mappings of the paper's Table II.
//! * [`PimLevel`] — channel-, device-, or bank-group-level PIM placement and
//!   the PIM-ID bit extraction for each.
//! * [`GroupAnalysis`] — per-matrix block-group structure: group count, local
//!   columns, replication (sharing) and reduction factors.
//! * [`agen`] — [`agen::NaiveAgen`] and [`agen::StepStoneAgen`], generating
//!   identical address sequences with very different iteration costs, plus
//!   [`agen::SpanProgram`], the cached periodic replay of the A-walk.
//! * [`region`] — [`RegionPlan`], succinct GF(2) rank/select plans for the
//!   per-PIM localized buffer regions (no materialized address lists).
//! * [`paging`] — the VA→PA layer ([`PageMap`]): page-size-parameterized
//!   translation policies plus the page-locality metrics that let the
//!   region algebra compose per page.

pub mod agen;
pub mod geometry;
pub mod gf2;
pub mod groups;
pub mod layout;
pub mod mapping;
pub mod paging;
pub mod pimlevel;
pub mod presets;
pub mod region;
pub mod reveng;

pub use agen::{
    AgenRules, AgenSpan, AgenStep, NaiveAgen, ParityConstraint, SpanProgram, StepStoneAgen,
};
pub use geometry::{DramCoord, Geometry, BLOCK_BYTES, BLOCK_SHIFT};
pub use groups::GroupAnalysis;
pub use layout::MatrixLayout;
pub use mapping::{Field, XorMapping};
pub use paging::{paged_run_stats, PageMap, PagePolicy, PagedRunStats, PagingConfig};
pub use pimlevel::PimLevel;
pub use presets::{mapping_by_id, MappingId};
pub use region::{KeyRuns, RegionIter, RegionPlan};
