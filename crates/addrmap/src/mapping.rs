//! Invertible XOR-based physical-address → DRAM-coordinate mappings.
//!
//! CPUs distribute consecutive cache blocks across channels/ranks/banks with
//! XOR hashes of physical-address bits (DRAMA, paper §II). We represent a
//! mapping by giving every block-address bit an *owner* coordinate field and
//! letting bits additionally *tap into* (XOR with) other fields' coordinate
//! bits. Every coordinate bit is then the parity of a PA-bit mask, the whole
//! mapping is linear over GF(2), and invertibility (checked at construction)
//! makes encode/decode exact in both directions.

use crate::geometry::{DramCoord, Geometry, BLOCK_SHIFT};
use crate::gf2::Gf2Matrix;
use serde::{Deserialize, Serialize};

/// A DRAM coordinate field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Field {
    Column,
    Bank,
    BankGroup,
    Rank,
    Channel,
    Row,
}

/// Declares that a physical-address bit is owned by `field` bit `index`, and
/// that this coordinate bit additionally XORs in the listed `taps`
/// (absolute PA bit positions).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitSpec {
    pub field: Field,
    pub index: u32,
    pub taps: Vec<u32>,
}

impl BitSpec {
    pub fn plain(field: Field, index: u32) -> Self {
        Self { field, index, taps: Vec::new() }
    }

    pub fn tapped(field: Field, index: u32, taps: &[u32]) -> Self {
        Self { field, index, taps: taps.to_vec() }
    }
}

/// An invertible XOR-based address mapping for a given [`Geometry`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct XorMapping {
    name: String,
    geom: Geometry,
    /// PA-bit masks (absolute bit positions, all ≥ [`BLOCK_SHIFT`]) for each
    /// coordinate bit, per field.
    col_masks: Vec<u64>,
    bank_masks: Vec<u64>,
    bg_masks: Vec<u64>,
    rank_masks: Vec<u64>,
    ch_masks: Vec<u64>,
    row_masks: Vec<u64>,
    /// Inverse map: coordinate-bit vector → block-address bits.
    #[serde(skip)]
    inverse: Option<Gf2Matrix>,
    /// Byte-indexed XOR tables for [`XorMapping::decode`]: one 256-entry
    /// table per PA byte, each entry the packed-coordinate contribution of
    /// that byte value. Decode is then 8 lookups + XORs instead of ~30
    /// mask/popcount gathers. Empty when a field exceeds the packed widths
    /// (falls back to the gather path).
    #[serde(skip)]
    decode_lut: Vec<[u64; 256]>,
}

/// Packed-coordinate bit offsets used by the decode LUT
/// (col 8b | bank 4b | bankgroup 4b | rank 3b | channel 3b | row 32b).
const PACK_BANK: u32 = 8;
const PACK_BG: u32 = 12;
const PACK_RANK: u32 = 16;
const PACK_CH: u32 = 19;
const PACK_ROW: u32 = 22;

impl XorMapping {
    /// Build a mapping from one [`BitSpec`] per block-address bit, starting at
    /// PA bit [`BLOCK_SHIFT`]. Panics if the specs do not cover each
    /// coordinate bit exactly once or the resulting map is not invertible.
    pub fn from_bit_specs(name: &str, geom: Geometry, specs: &[BitSpec]) -> Self {
        geom.validate();
        let nbits = geom.block_addr_bits() as usize;
        assert_eq!(
            specs.len(),
            nbits,
            "mapping `{name}` must specify all {nbits} block-address bits"
        );
        let field_len = |f: Field| match f {
            Field::Column => geom.column_bits(),
            Field::Bank => geom.bank_bits(),
            Field::BankGroup => geom.bankgroup_bits(),
            Field::Rank => geom.rank_bits(),
            Field::Channel => geom.channel_bits(),
            Field::Row => geom.row_bits(),
        } as usize;
        let mut masks: std::collections::HashMap<(u8, u32), u64> = std::collections::HashMap::new();
        for (i, spec) in specs.iter().enumerate() {
            let pa_bit = BLOCK_SHIFT + i as u32;
            assert!(
                (spec.index as usize) < field_len(spec.field),
                "mapping `{name}`: {:?} bit {} out of range",
                spec.field,
                spec.index
            );
            let mut mask = 1u64 << pa_bit;
            for &tap in &spec.taps {
                assert!(
                    tap >= BLOCK_SHIFT && (tap as usize) < BLOCK_SHIFT as usize + nbits,
                    "mapping `{name}`: tap bit {tap} outside block-address range"
                );
                mask |= 1u64 << tap;
            }
            let key = (field_code(spec.field), spec.index);
            assert!(
                masks.insert(key, mask).is_none(),
                "mapping `{name}`: {:?} bit {} owned twice",
                spec.field,
                spec.index
            );
        }
        let collect = |f: Field| -> Vec<u64> {
            (0..field_len(f) as u32)
                .map(|i| {
                    *masks.get(&(field_code(f), i)).unwrap_or_else(|| {
                        panic!("mapping `{name}`: {f:?} bit {i} has no owner")
                    })
                })
                .collect()
        };
        let mut m = Self {
            name: name.to_string(),
            geom,
            col_masks: collect(Field::Column),
            bank_masks: collect(Field::Bank),
            bg_masks: collect(Field::BankGroup),
            rank_masks: collect(Field::Rank),
            ch_masks: collect(Field::Channel),
            row_masks: collect(Field::Row),
            inverse: None,
            decode_lut: Vec::new(),
        };
        let fwd = m.forward_matrix();
        let inv = fwd
            .inverse()
            .unwrap_or_else(|| panic!("mapping `{name}` is not invertible"));
        m.inverse = Some(inv);
        m.build_decode_lut();
        m
    }

    /// Precompute the byte-indexed decode tables (see `decode_lut`).
    fn build_decode_lut(&mut self) {
        let fits = self.col_masks.len() <= 8
            && self.bank_masks.len() <= 4
            && self.bg_masks.len() <= 4
            && self.rank_masks.len() <= 3
            && self.ch_masks.len() <= 3
            && self.row_masks.len() <= 32;
        if !fits {
            self.decode_lut = Vec::new();
            return;
        }
        // Packed contribution of each single PA bit.
        let mut bit_contrib = [0u64; 64];
        let mut add = |masks: &[u64], shift: u32| {
            for (i, &m) in masks.iter().enumerate() {
                let mut mm = m;
                while mm != 0 {
                    bit_contrib[mm.trailing_zeros() as usize] ^= 1u64 << (shift + i as u32);
                    mm &= mm - 1;
                }
            }
        };
        add(&self.col_masks, 0);
        add(&self.bank_masks, PACK_BANK);
        add(&self.bg_masks, PACK_BG);
        add(&self.rank_masks, PACK_RANK);
        add(&self.ch_masks, PACK_CH);
        add(&self.row_masks, PACK_ROW);
        let mut lut = vec![[0u64; 256]; 8];
        for (byte, table) in lut.iter_mut().enumerate() {
            for (v, entry) in table.iter_mut().enumerate() {
                let mut acc = 0u64;
                for b in 0..8 {
                    if v >> b & 1 == 1 {
                        acc ^= bit_contrib[byte * 8 + b];
                    }
                }
                *entry = acc;
            }
        }
        self.decode_lut = lut;
    }

    /// The PA-bit → coordinate-bit matrix (rows in canonical field order).
    fn forward_matrix(&self) -> Gf2Matrix {
        let nbits = self.geom.block_addr_bits() as usize;
        let rows: Vec<u64> = self
            .all_masks()
            .map(|m| m >> BLOCK_SHIFT)
            .collect();
        Gf2Matrix::from_rows(rows, nbits)
    }

    /// All coordinate-bit masks in canonical order:
    /// column, bank, bank group, rank, channel, row.
    pub fn all_masks(&self) -> impl Iterator<Item = u64> + '_ {
        self.col_masks
            .iter()
            .chain(&self.bank_masks)
            .chain(&self.bg_masks)
            .chain(&self.rank_masks)
            .chain(&self.ch_masks)
            .chain(&self.row_masks)
            .copied()
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn geometry(&self) -> &Geometry {
        &self.geom
    }

    /// PA bits that feed *only* the column coordinate: owned by a column
    /// bit and tapped by no other field. Flipping such a bit changes the
    /// decoded column and nothing else, so a contiguous address run whose
    /// varying bits all lie in this mask stays on one (channel, rank, bank
    /// group, bank, row) — the guarantee behind [`crate::agen::SpanProgram`]
    /// run hints to the execution engine.
    pub fn column_pure_mask(&self) -> u64 {
        let union = |masks: &[u64]| masks.iter().fold(0u64, |a, &m| a | m);
        union(&self.col_masks)
            & !union(&self.bank_masks)
            & !union(&self.bg_masks)
            & !union(&self.rank_masks)
            & !union(&self.ch_masks)
            & !union(&self.row_masks)
    }

    /// PA-bit masks for a field's coordinate bits (absolute bit positions).
    pub fn field_masks(&self, field: Field) -> &[u64] {
        match field {
            Field::Column => &self.col_masks,
            Field::Bank => &self.bank_masks,
            Field::BankGroup => &self.bg_masks,
            Field::Rank => &self.rank_masks,
            Field::Channel => &self.ch_masks,
            Field::Row => &self.row_masks,
        }
    }

    /// Decode a physical (byte) address into its DRAM coordinate.
    #[inline]
    pub fn decode(&self, pa: u64) -> DramCoord {
        if let Some(lut) = self.decode_lut.first_chunk::<8>() {
            let p = lut[0][(pa & 0xFF) as usize]
                ^ lut[1][(pa >> 8 & 0xFF) as usize]
                ^ lut[2][(pa >> 16 & 0xFF) as usize]
                ^ lut[3][(pa >> 24 & 0xFF) as usize]
                ^ lut[4][(pa >> 32 & 0xFF) as usize]
                ^ lut[5][(pa >> 40 & 0xFF) as usize]
                ^ lut[6][(pa >> 48 & 0xFF) as usize]
                ^ lut[7][(pa >> 56 & 0xFF) as usize];
            return DramCoord {
                channel: (p >> PACK_CH & 0x7) as u32,
                rank: (p >> PACK_RANK & 0x7) as u32,
                bankgroup: (p >> PACK_BG & 0xF) as u32,
                bank: (p >> PACK_BANK & 0xF) as u32,
                row: (p >> PACK_ROW) as u32,
                col: (p & 0xFF) as u32,
            };
        }
        self.decode_gather(pa)
    }

    /// The mask/popcount gather fallback (geometries whose fields exceed
    /// the packed LUT widths).
    fn decode_gather(&self, pa: u64) -> DramCoord {
        let gather = |masks: &[u64]| -> u32 {
            let mut v = 0u32;
            for (i, &m) in masks.iter().enumerate() {
                v |= (((pa & m).count_ones()) & 1) << i;
            }
            v
        };
        DramCoord {
            channel: gather(&self.ch_masks),
            rank: gather(&self.rank_masks),
            bankgroup: gather(&self.bg_masks),
            bank: gather(&self.bank_masks),
            row: gather(&self.row_masks),
            col: gather(&self.col_masks),
        }
    }

    /// Encode a DRAM coordinate back into the physical (byte) address of the
    /// cache block.
    pub fn encode(&self, c: DramCoord) -> u64 {
        let g = &self.geom;
        debug_assert!(c.col < g.blocks_per_row && c.row < g.rows_per_bank);
        let mut y = 0u64;
        let mut off = 0u32;
        let mut push = |v: u32, bits: u32| {
            y |= (v as u64) << off;
            off += bits;
        };
        push(c.col, g.column_bits());
        push(c.bank, g.bank_bits());
        push(c.bankgroup, g.bankgroup_bits());
        push(c.rank, g.rank_bits());
        push(c.channel, g.channel_bits());
        push(c.row, g.row_bits());
        let inv = self.inverse.as_ref().expect("inverse built at construction");
        inv.mul_vec(y) << BLOCK_SHIFT
    }

    /// Rebuild the cached inverse (needed after deserialization).
    pub fn rebuild_inverse(&mut self) {
        self.inverse = Some(self.forward_matrix().inverse().expect("invertible"));
    }
}

fn field_code(f: Field) -> u8 {
    match f {
        Field::Column => 0,
        Field::Bank => 1,
        Field::BankGroup => 2,
        Field::Rank => 3,
        Field::Channel => 4,
        Field::Row => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A linear "no hashing" mapping: low bits column, then bank, bg, rank,
    /// channel, row.
    fn linear_mapping(geom: Geometry) -> XorMapping {
        let mut specs = Vec::new();
        for i in 0..geom.column_bits() {
            specs.push(BitSpec::plain(Field::Column, i));
        }
        for i in 0..geom.bank_bits() {
            specs.push(BitSpec::plain(Field::Bank, i));
        }
        for i in 0..geom.bankgroup_bits() {
            specs.push(BitSpec::plain(Field::BankGroup, i));
        }
        for i in 0..geom.rank_bits() {
            specs.push(BitSpec::plain(Field::Rank, i));
        }
        for i in 0..geom.channel_bits() {
            specs.push(BitSpec::plain(Field::Channel, i));
        }
        for i in 0..geom.row_bits() {
            specs.push(BitSpec::plain(Field::Row, i));
        }
        XorMapping::from_bit_specs("linear", geom, &specs)
    }

    #[test]
    fn linear_roundtrip() {
        let geom = Geometry::default();
        let m = linear_mapping(geom);
        for pa in [0u64, 64, 128, 4096, 1 << 20, (1 << 30) + 8192] {
            let c = m.decode(pa);
            assert_eq!(m.encode(c), pa & !63, "pa={pa:#x}");
        }
    }

    #[test]
    fn linear_decode_fields() {
        let geom = Geometry::default();
        let m = linear_mapping(geom);
        // Block 1 → column 1.
        assert_eq!(m.decode(64).col, 1);
        assert_eq!(m.decode(64).bank, 0);
        // First bank bit sits right above the 7 column bits: 64 << 7.
        let pa = 64u64 << 7;
        assert_eq!(m.decode(pa).bank, 1);
        assert_eq!(m.decode(pa).col, 0);
    }

    #[test]
    fn tapped_mapping_roundtrips() {
        let geom = Geometry::default();
        // Channel bit = b8 ⊕ b9 ⊕ b12: tap two column-owned bits.
        let mut specs = Vec::new();
        specs.push(BitSpec::plain(Field::Column, 0)); // b6
        specs.push(BitSpec::tapped(Field::BankGroup, 0, &[14])); // b7
        specs.push(BitSpec::tapped(Field::Channel, 0, &[9, 12])); // b8
        for (i, idx) in (9..15).zip(1..7) {
            let _ = i;
            specs.push(BitSpec::plain(Field::Column, idx)); // b9..b14
        }
        specs.push(BitSpec::tapped(Field::BankGroup, 1, &[19])); // b15
        specs.push(BitSpec::plain(Field::Bank, 0)); // b16
        specs.push(BitSpec::plain(Field::Bank, 1)); // b17
        specs.push(BitSpec::tapped(Field::Rank, 0, &[20])); // b18
        for i in 0..geom.row_bits() {
            specs.push(BitSpec::plain(Field::Row, i)); // b19..
        }
        let m = XorMapping::from_bit_specs("tapped", geom, &specs);
        for pa in (0..4096u64).map(|i| i * 64).chain([1 << 25, (1 << 22) | 832]) {
            let c = m.decode(pa);
            assert_eq!(m.encode(c), pa & !63, "pa={pa:#x}");
        }
        // The tap works: flipping b9 alone flips the channel.
        let c0 = m.decode(0);
        let c1 = m.decode(1 << 9);
        assert_ne!(c0.channel, c1.channel);
    }

    #[test]
    #[should_panic(expected = "owned twice")]
    fn duplicate_owner_rejected() {
        let geom = Geometry::default();
        let mut specs = vec![BitSpec::plain(Field::Column, 0); geom.block_addr_bits() as usize];
        specs[1] = BitSpec::plain(Field::Column, 0);
        XorMapping::from_bit_specs("dup", geom, &specs);
    }

    #[test]
    fn encode_decode_exhaustive_small_geometry() {
        let geom = Geometry {
            channels: 2,
            ranks_per_channel: 1,
            bankgroups_per_rank: 2,
            banks_per_bankgroup: 2,
            rows_per_bank: 4,
            blocks_per_row: 4,
        };
        let nbits = geom.block_addr_bits();
        let mut specs = vec![
            BitSpec::plain(Field::Column, 0),
            BitSpec::tapped(Field::Channel, 0, &[9, 11]),
            BitSpec::plain(Field::Column, 1),
            BitSpec::tapped(Field::BankGroup, 0, &[12]),
            BitSpec::plain(Field::Bank, 0),
            BitSpec::plain(Field::Row, 0),
            BitSpec::plain(Field::Row, 1),
        ];
        assert_eq!(specs.len(), nbits as usize);
        let m = XorMapping::from_bit_specs("small", geom, &specs);
        let blocks = 1u64 << nbits;
        let mut seen = std::collections::HashSet::new();
        for b in 0..blocks {
            let pa = b << BLOCK_SHIFT;
            let c = m.decode(pa);
            assert_eq!(m.encode(c), pa);
            assert!(seen.insert((c.channel, c.rank, c.bankgroup, c.bank, c.row, c.col)));
        }
        assert_eq!(seen.len(), blocks as usize);
        // And a second mapping differing only in taps maps differently.
        specs[1].taps = vec![9];
        let m2 = XorMapping::from_bit_specs("small2", geom, &specs);
        assert!((0..blocks).any(|b| m.decode(b << BLOCK_SHIFT) != m2.decode(b << BLOCK_SHIFT)));
    }
}
