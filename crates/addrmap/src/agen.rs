//! StepStone address generation (paper §III-D, Fig. 4c).
//!
//! During a PIM kernel, the unit must walk — in ascending address order — the
//! cache blocks that belong to its (PIM, group, partition) under the XOR
//! address mapping. Membership is a conjunction of parity constraints over
//! physical-address bits, so after a plain block increment the address may
//! land on a different PIM and must be *skipped forward*.
//!
//! Two generators produce the identical sequence:
//!
//! * [`NaiveAgen`] — increments block by block, re-checking the IDs each
//!   time. Iterations per step equal the address gap, which grows with the
//!   number of active PIMs and stalls the 4-cycle DRAM burst pipeline.
//! * [`StepStoneAgen`] — increment-correct-and-check: increments only at
//!   ID-affecting bit positions, restoring all mask parities with the
//!   minimal suffix correction. The iteration count is bounded by the number
//!   of ID-affecting bits and is further compressed by the paper's two
//!   rules: *instant correction* of adjacent bits feeding the same ID bit
//!   (rule 1) and *carry forwarding* across contiguous chains of bits
//!   feeding different ID bits (rule 2).
//!
//! Sequence equality between the two generators is enforced by unit and
//! property tests — the same validation the paper performs against
//! pre-generated address traces (§IV).

use crate::geometry::BLOCK_BYTES;
use crate::gf2::Gf2System;
use serde::{Deserialize, Serialize};

/// `parity(pa & mask) == parity` must hold for a block to be emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParityConstraint {
    pub mask: u64,
    pub parity: bool,
}

impl ParityConstraint {
    pub fn satisfied_by(&self, pa: u64) -> bool {
        ((pa & self.mask).count_ones() & 1 == 1) == self.parity
    }
}

/// Do all constraints hold at `pa`?
pub fn satisfies(pa: u64, cs: &[ParityConstraint]) -> bool {
    cs.iter().all(|c| c.satisfied_by(pa))
}

/// One generated address plus the number of AGEN iterations it cost. The
/// pipeline inserts bubbles whenever `iterations` exceeds the DRAM burst
/// window (paper §V-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgenStep {
    pub pa: u64,
    pub iterations: u32,
}

/// Which of the paper's two iteration-compression rules are active; both on
/// is the full StepStone AGEN, both off is a plain bit-serial corrector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AgenRules {
    /// Rule 1: adjacent bits feeding the same ID bit correct in one step.
    pub instant_correction: bool,
    /// Rule 2: a carry across a chain of contiguous bits feeding different
    /// ID bits is forwarded directly to the next-higher bit.
    pub carry_forwarding: bool,
}

impl Default for AgenRules {
    fn default() -> Self {
        Self { instant_correction: true, carry_forwarding: true }
    }
}

impl AgenRules {
    pub const NONE: AgenRules = AgenRules { instant_correction: false, carry_forwarding: false };
}

/// The baseline generator: scan one block at a time (paper §III-D "a simple
/// iterative approach of incrementing the address until the address is again
/// within this same block and PIM ID").
#[derive(Debug, Clone)]
pub struct NaiveAgen {
    cs: Vec<ParityConstraint>,
    next_candidate: u64,
    end: u64,
}

impl NaiveAgen {
    /// Generate all satisfying blocks in `[start, end)`; `start` must be
    /// block-aligned.
    pub fn new(cs: Vec<ParityConstraint>, start: u64, end: u64) -> Self {
        debug_assert_eq!(start % BLOCK_BYTES, 0);
        Self { cs, next_candidate: start, end }
    }
}

impl Iterator for NaiveAgen {
    type Item = AgenStep;

    fn next(&mut self) -> Option<AgenStep> {
        let mut iterations = 0u32;
        let mut pa = self.next_candidate;
        while pa < self.end {
            iterations += 1;
            if satisfies(pa, &self.cs) {
                self.next_candidate = pa + BLOCK_BYTES;
                return Some(AgenStep { pa, iterations });
            }
            pa += BLOCK_BYTES;
        }
        None
    }
}

/// A run of contiguous satisfying blocks: `len` blocks starting at
/// `start_pa`, where only the first block paid a full corrector step
/// (`iterations`); the rest are plain increments (1 iteration each).
///
/// Runs are *guaranteed* — every address in `[start_pa, start_pa + 64·len)`
/// satisfies the constraints because no constrained bit changes inside the
/// run — but not necessarily maximal: two adjacent spans may abut when the
/// increment across the boundary happens to keep all parities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgenSpan {
    pub start_pa: u64,
    /// Number of blocks in the run (≥ 1).
    pub len: u64,
    /// AGEN iterations charged for the first block of the run.
    pub iterations: u32,
}

/// One candidate bit position of the corrector, pre-echelonized so a
/// successor query only evaluates parities (no per-call `Gf2System`).
///
/// For position `p`, the solvable system is `(cs[i].mask & low_mask)·x =
/// rhs[i]` where only `rhs` depends on the candidate base address. Rows
/// store which original constraints were folded together (`sources`), so
/// the query-time RHS of each echelon row is a parity over the per-call
/// constraint RHS bits.
#[derive(Debug, Clone, Default)]
struct PreparedLevel {
    /// Reduced-echelon rows: (non-zero coefficient mask, source-constraint
    /// bitmask).
    rows: Vec<(u64, u32)>,
    /// Source masks of rows that eliminated to zero coefficients: the
    /// system is consistent iff each has even RHS parity.
    zero_rows: Vec<u32>,
}

impl PreparedLevel {
    fn prepare(cs: &[ParityConstraint], p: u32) -> Self {
        let low_mask = (1u64 << p) - 1;
        let mut lvl = PreparedLevel::default();
        for (i, c) in cs.iter().enumerate() {
            let mut coeff = c.mask & low_mask;
            let mut src = 1u32 << i;
            for &(rc, rs) in &lvl.rows {
                if coeff & (rc & rc.wrapping_neg()) != 0 {
                    coeff ^= rc;
                    src ^= rs;
                }
            }
            if coeff == 0 {
                lvl.zero_rows.push(src);
                continue;
            }
            let lead = coeff & coeff.wrapping_neg();
            for (rc, rs) in &mut lvl.rows {
                if *rc & lead != 0 {
                    *rc ^= coeff;
                    *rs ^= src;
                }
            }
            lvl.rows.push((coeff, src));
        }
        lvl
    }

    /// Minimal solution for the given per-constraint RHS bits, or `None`
    /// if inconsistent. Equivalent to `Gf2System::min_solution` on the
    /// same equations.
    #[inline]
    fn min_solution(&self, rhs_bits: u32) -> Option<u64> {
        for &z in &self.zero_rows {
            if (rhs_bits & z).count_ones() & 1 == 1 {
                return None;
            }
        }
        let mut x = 0u64;
        for &(c, s) in &self.rows {
            if (rhs_bits & s).count_ones() & 1 == 1 {
                x |= c & c.wrapping_neg();
            }
        }
        Some(x)
    }
}

/// The StepStone increment-correct-and-check generator.
#[derive(Debug, Clone)]
pub struct StepStoneAgen {
    cs: Vec<ParityConstraint>,
    /// Ascending ID-affecting bit positions (the union of constraint masks).
    sbits: Vec<u32>,
    /// `unit_start[u]` = lowest bit position of compressed iteration unit
    /// `u`, per the active rules.
    unit_starts: Vec<u32>,
    /// Precomputed corrector systems indexed by `p - BLOCK_SHIFT`.
    levels: Vec<PreparedLevel>,
    /// Byte span over which no constrained bit changes (`1 << sbits[0]`).
    run_bytes: u64,
    /// Next block to emit within the current guaranteed run.
    cur: u64,
    /// Exclusive end of the current run.
    span_end: u64,
    /// Iterations owed by the next emitted block (first block of a run).
    pending_iters: u32,
    /// Last emitted address (successor scan base), or `start` before the
    /// first emission.
    last_pa: u64,
    started: bool,
    exhausted: bool,
    end: u64,
    /// Use the seed-era per-call `Gf2System` corrector instead of the
    /// prepared levels (benchmark baseline; identical output).
    uncached_corrector: bool,
}

impl StepStoneAgen {
    pub fn new(cs: Vec<ParityConstraint>, start: u64, end: u64) -> Self {
        Self::with_rules(cs, start, end, AgenRules::default())
    }

    pub fn with_rules(cs: Vec<ParityConstraint>, start: u64, end: u64, rules: AgenRules) -> Self {
        debug_assert_eq!(start % BLOCK_BYTES, 0);
        let mut union = 0u64;
        for c in &cs {
            union |= c.mask;
        }
        let mut sbits = Vec::new();
        let mut u = union;
        while u != 0 {
            sbits.push(u.trailing_zeros());
            u &= u - 1;
        }
        let unit_starts = compress_units(&cs, &sbits, rules);
        // Highest position the successor scan can visit for any x < end
        // (capped at bit 63 — u64 addresses have nothing above it, and an
        // uncapped level would shift-overflow for end ≥ 2^62).
        let hi = 63 - end.max(1).leading_zeros().min(57);
        let p_max = (hi.max(sbits.last().copied().unwrap_or(6)) + 2).min(63);
        let levels = (crate::geometry::BLOCK_SHIFT..=p_max)
            .map(|p| PreparedLevel::prepare(&cs, p))
            .collect();
        let run_bytes = sbits.first().map_or(u64::MAX, |&b| 1 << b);
        Self {
            cs,
            sbits,
            unit_starts,
            levels,
            run_bytes,
            cur: 0,
            span_end: 0,
            pending_iters: 0,
            last_pa: start,
            started: false,
            exhausted: false,
            end,
            uncached_corrector: false,
        }
    }

    /// Switch to the seed-era corrector that rebuilds a [`Gf2System`] per
    /// candidate position. Output is identical; kept as the benchmark
    /// baseline for the prepared-level corrector.
    pub fn use_uncached_corrector(mut self) -> Self {
        self.uncached_corrector = true;
        self
    }

    /// Number of compressed iteration units (hardware loop bound).
    pub fn unit_count(&self) -> usize {
        self.unit_starts.len()
    }

    /// Consume the generator as batched runs of contiguous blocks.
    pub fn spans(self) -> Spans {
        Spans { agen: self }
    }

    /// Hardware iterations charged for a step that won at bit position `p`:
    /// the initial increment-and-check plus one per unit below `p`.
    fn iterations_for(&self, p: u32) -> u32 {
        1 + self.unit_starts.iter().take_while(|&&s| s < p).count() as u32
    }

    /// Smallest satisfying block address strictly greater than `x`, or
    /// `None` if the constraint system is unsatisfiable (e.g. a row
    /// partition that contains no rows of the requested group).
    fn successor(&self, x: u64) -> Option<(u64, u32)> {
        // Fast path: the plain increment stays on this PIM and group. With
        // the baseline Skylake mapping pairs of blocks are contiguous
        // (lowest ID bit is PA bit 7), so this hits half the time.
        let cand = x + BLOCK_BYTES;
        if satisfies(cand, &self.cs) {
            return Some((cand, 1));
        }
        let mut best: Option<(u64, u32)> = None;
        // Candidate prefixes: increment at each bit position `p`, zero the
        // free bits below, and restore the parities with the minimal
        // assignment of ID-affecting bits below `p`. The true successor is
        // produced at `p` = its highest bit differing from `x`, so scanning
        // all positions (with monotone-base pruning) is exact.
        let top = 63 - x.max(1).leading_zeros().min(57);
        let top = (top.max(self.sbits.last().copied().unwrap_or(6)) + 2).min(63);
        for p in crate::geometry::BLOCK_SHIFT..=top {
            let base = ((x >> p) + 1) << p;
            if let Some((b, _)) = best {
                if base >= b {
                    break;
                }
            }
            let fix = if self.uncached_corrector {
                self.solve_uncached(base, p)
            } else {
                // `base` has no bits below `p`, so each constraint's RHS is
                // its parity corrected by the prefix contribution.
                let mut rhs_bits = 0u32;
                for (i, c) in self.cs.iter().enumerate() {
                    let prefix = (base & c.mask).count_ones() & 1;
                    rhs_bits |= (c.parity as u32 ^ prefix) << i;
                }
                self.levels[(p - crate::geometry::BLOCK_SHIFT) as usize].min_solution(rhs_bits)
            };
            let Some(fix) = fix else { continue };
            let cand = base | fix;
            debug_assert!(cand > x);
            debug_assert!(satisfies(cand, &self.cs));
            if best.is_none_or(|(b, _)| cand < b) {
                best = Some((cand, self.iterations_for(p)));
            }
        }
        best
    }

    /// The seed-era corrector: build and solve a fresh GF(2) system.
    fn solve_uncached(&self, base: u64, p: u32) -> Option<u64> {
        let low_mask = (1u64 << p) - 1;
        let mut sys = Gf2System::new();
        for c in &self.cs {
            let coeff = c.mask & low_mask;
            let rhs = c.parity ^ ((base & c.mask & !low_mask).count_ones() & 1 == 1);
            if !sys.add(coeff, rhs) {
                return None;
            }
        }
        Some(sys.min_solution().expect("consistent system has a solution"))
    }

    /// Locate the next guaranteed run after the current one; `false` when
    /// the walk is exhausted.
    fn advance_span(&mut self) -> bool {
        if self.exhausted {
            return false;
        }
        let found = if !self.started {
            self.started = true;
            if self.last_pa >= self.end {
                None
            } else if satisfies(self.last_pa, &self.cs) {
                Some((self.last_pa, 1))
            } else {
                self.successor(self.last_pa)
            }
        } else {
            self.successor(self.last_pa)
        };
        let Some((pa, iterations)) = found else {
            self.exhausted = true;
            return false;
        };
        if pa >= self.end {
            self.exhausted = true;
            return false;
        }
        // All blocks up to the next constrained-bit boundary share every
        // mask parity with `pa`, so the whole run satisfies.
        let boundary = if self.run_bytes == u64::MAX {
            u64::MAX
        } else {
            ((pa >> self.sbits[0]) + 1) << self.sbits[0]
        };
        let end_aligned = self.end.div_ceil(BLOCK_BYTES) * BLOCK_BYTES;
        self.cur = pa;
        self.span_end = boundary.min(end_aligned);
        self.pending_iters = iterations;
        self.last_pa = self.span_end - BLOCK_BYTES;
        true
    }
}

impl Iterator for StepStoneAgen {
    type Item = AgenStep;

    fn next(&mut self) -> Option<AgenStep> {
        if self.cur >= self.span_end && !self.advance_span() {
            return None;
        }
        let pa = self.cur;
        self.cur += BLOCK_BYTES;
        let iterations = if self.pending_iters != 0 {
            std::mem::take(&mut self.pending_iters)
        } else {
            1
        };
        Some(AgenStep { pa, iterations })
    }
}

/// Batched-run view of a [`StepStoneAgen`] (see [`AgenSpan`]).
#[derive(Debug, Clone)]
pub struct Spans {
    agen: StepStoneAgen,
}

impl Iterator for Spans {
    type Item = AgenSpan;

    fn next(&mut self) -> Option<AgenSpan> {
        let a = &mut self.agen;
        if a.cur >= a.span_end && !a.advance_span() {
            return None;
        }
        let span = AgenSpan {
            start_pa: a.cur,
            len: (a.span_end - a.cur) / BLOCK_BYTES,
            iterations: if a.pending_iters != 0 { a.pending_iters } else { 1 },
        };
        a.cur = a.span_end;
        a.pending_iters = 0;
        Some(span)
    }
}

/// Compress ascending ID-affecting bit positions into hardware iteration
/// units per the active rules. Without rules every bit is its own unit;
/// rule 1 merges an adjacent pair feeding the same ID bit; rule 2 merges a
/// contiguous chain of bits feeding pairwise different ID bits; with both
/// rules any contiguous run collapses to one unit.
fn compress_units(cs: &[ParityConstraint], sbits: &[u32], rules: AgenRules) -> Vec<u32> {
    let share_mask = |a: u32, b: u32| {
        cs.iter().any(|c| c.mask >> a & 1 == 1 && c.mask >> b & 1 == 1)
    };
    let mut unit_starts = Vec::new();
    let mut prev: Option<u32> = None;
    for &b in sbits {
        let merged = match prev {
            Some(p) if b == p + 1 => {
                let same = share_mask(p, b);
                (same && rules.instant_correction) || (!same && rules.carry_forwarding)
            }
            _ => false,
        };
        if !merged {
            unit_starts.push(b);
        }
        prev = Some(b);
    }
    unit_starts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groups::GroupAnalysis;
    use crate::layout::MatrixLayout;
    use crate::pimlevel::PimLevel;
    use crate::presets::{mapping_by_id, MappingId};

    fn collect_both(
        cs: &[ParityConstraint],
        start: u64,
        end: u64,
    ) -> (Vec<AgenStep>, Vec<AgenStep>) {
        let naive: Vec<_> = NaiveAgen::new(cs.to_vec(), start, end).collect();
        let fast: Vec<_> = StepStoneAgen::new(cs.to_vec(), start, end).collect();
        (naive, fast)
    }

    #[test]
    fn unconstrained_walks_every_block() {
        let (naive, fast) = collect_both(&[], 0, 1024);
        assert_eq!(naive.len(), 16);
        assert_eq!(fast.len(), 16);
        for (i, (n, f)) in naive.iter().zip(&fast).enumerate() {
            assert_eq!(n.pa, i as u64 * 64);
            assert_eq!(n.pa, f.pa);
            assert_eq!(f.iterations, 1);
        }
    }

    #[test]
    fn single_bit_constraint() {
        let cs = vec![ParityConstraint { mask: 1 << 6, parity: true }];
        let (naive, fast) = collect_both(&cs, 0, 64 * 16);
        let pas: Vec<u64> = naive.iter().map(|s| s.pa).collect();
        assert_eq!(pas, vec![64, 192, 320, 448, 576, 704, 832, 960]);
        assert_eq!(pas, fast.iter().map(|s| s.pa).collect::<Vec<_>>());
    }

    #[test]
    fn xor_constraint_sequences_match() {
        // BG0-style constraint: b7 ⊕ b14 = 0.
        let cs = vec![ParityConstraint { mask: (1 << 7) | (1 << 14), parity: false }];
        let (naive, fast) = collect_both(&cs, 0, 1 << 16);
        assert!(!naive.is_empty());
        assert_eq!(
            naive.iter().map(|s| s.pa).collect::<Vec<_>>(),
            fast.iter().map(|s| s.pa).collect::<Vec<_>>()
        );
        // Exactly half the blocks satisfy a single XOR parity.
        assert_eq!(naive.len(), 1 << 9);
    }

    #[test]
    fn matches_naive_on_real_pim_group_walk() {
        let m = mapping_by_id(MappingId::Skylake);
        let layout = MatrixLayout::new_f32(0, 64, 1024);
        for level in PimLevel::ALL {
            let ga = GroupAnalysis::analyze(&m, level, layout);
            let pim = ga.active_pims()[0];
            for g in 0..ga.n_groups() {
                if !ga.is_admissible(pim, g) {
                    continue;
                }
                let cs = ga.constraints_for(pim, g);
                let (naive, fast) = collect_both(&cs, layout.base, layout.end());
                assert_eq!(
                    naive.iter().map(|s| s.pa).collect::<Vec<_>>(),
                    fast.iter().map(|s| s.pa).collect::<Vec<_>>(),
                    "{level:?} group {g}"
                );
                // The walk covers exactly the (pim, group) blocks.
                let expect = ga.local_cols_per_group() * ga.rows_of_group(g).len() as u64;
                assert_eq!(naive.len() as u64, expect);
            }
        }
    }

    #[test]
    fn stepstone_iterations_bounded_by_units() {
        let m = mapping_by_id(MappingId::Skylake);
        let layout = MatrixLayout::new_f32(0, 256, 4096);
        let ga = GroupAnalysis::analyze(&m, PimLevel::BankGroup, layout);
        let pim = ga.active_pims()[0];
        let g = (0..ga.n_groups()).find(|&g| ga.is_admissible(pim, g)).unwrap();
        let cs = ga.constraints_for(pim, g);
        let agen = StepStoneAgen::new(cs.clone(), layout.base, layout.end());
        let bound = agen.unit_count() as u32 + 1;
        let mut worst_naive = 0;
        for (f, n) in agen.zip(NaiveAgen::new(cs, layout.base, layout.end())) {
            assert!(f.iterations <= bound, "{} > {bound}", f.iterations);
            worst_naive = worst_naive.max(n.iterations);
        }
        // The naive generator needs long scans somewhere in the walk.
        assert!(worst_naive as usize > bound as usize);
    }

    #[test]
    fn rules_reduce_unit_count() {
        let m = mapping_by_id(MappingId::Skylake);
        let layout = MatrixLayout::new_f32(0, 1024, 4096);
        let ga = GroupAnalysis::analyze(&m, PimLevel::BankGroup, layout);
        let pim = ga.active_pims()[0];
        let g = (0..ga.n_groups()).find(|&g| ga.is_admissible(pim, g)).unwrap();
        let cs = ga.constraints_for(pim, g);
        let full = StepStoneAgen::with_rules(cs.clone(), 0, 64, AgenRules::default());
        let none = StepStoneAgen::with_rules(cs.clone(), 0, 64, AgenRules::NONE);
        assert!(full.unit_count() < none.unit_count());
        // Without rules, one unit per ID-affecting bit.
        assert_eq!(none.unit_count(), none.sbits.len());
    }

    #[test]
    fn unsatisfiable_constraints_yield_empty_walks() {
        // Contradictory parities on the same mask: no address matches.
        let cs = vec![
            ParityConstraint { mask: 1 << 8, parity: true },
            ParityConstraint { mask: 1 << 8, parity: false },
        ];
        let fast: Vec<_> = StepStoneAgen::new(cs.clone(), 0, 1 << 20).collect();
        assert!(fast.is_empty());
        let naive: Vec<_> = NaiveAgen::new(cs, 0, 1 << 20).collect();
        assert!(naive.is_empty());
    }

    #[test]
    fn open_ended_walk_near_u64_top_does_not_overflow() {
        // An effectively unbounded walk (end ≥ 2^62) must not shift-
        // overflow while preparing corrector levels; the first addresses
        // still match the naive generator.
        let cs = vec![ParityConstraint { mask: (1 << 7) | (1 << 14), parity: true }];
        let fast: Vec<u64> = StepStoneAgen::new(cs.clone(), 0, u64::MAX >> 1)
            .take(64)
            .map(|s| s.pa)
            .collect();
        let naive: Vec<u64> =
            NaiveAgen::new(cs, 0, u64::MAX >> 1).take(64).map(|s| s.pa).collect();
        assert_eq!(fast, naive);
    }

    #[test]
    fn start_at_valid_address_is_emitted() {
        let cs = vec![ParityConstraint { mask: 1 << 7, parity: false }];
        let fast: Vec<_> = StepStoneAgen::new(cs.clone(), 0, 256).collect();
        assert_eq!(fast[0].pa, 0, "a satisfying start address must be emitted");
        let naive: Vec<_> = NaiveAgen::new(cs, 0, 256).collect();
        assert_eq!(naive[0].pa, 0);
    }

    #[test]
    fn partitioned_walk_skips_other_partitions() {
        use crate::groups::partition_constraints;
        let m = mapping_by_id(MappingId::Skylake);
        let layout = MatrixLayout::new_f32(0, 64, 1024);
        let ga = GroupAnalysis::analyze(&m, PimLevel::Device, layout);
        let pim = ga.active_pims()[0];
        let g = (0..ga.n_groups()).find(|&g| ga.is_admissible(pim, g)).unwrap();
        let mut seen = Vec::new();
        for part in 0..4u32 {
            let mut cs = ga.constraints_for(pim, g);
            cs.extend(partition_constraints(layout.mcol_mask(), 4, part));
            let walk: Vec<_> = StepStoneAgen::new(cs, layout.base, layout.end()).collect();
            assert!(!walk.is_empty());
            seen.extend(walk.iter().map(|s| s.pa));
        }
        // The four column partitions exactly tile the unpartitioned walk.
        let full: Vec<u64> = StepStoneAgen::new(ga.constraints_for(pim, g), 0, layout.end())
            .map(|s| s.pa)
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, full);
    }
}
