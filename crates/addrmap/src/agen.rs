//! StepStone address generation (paper §III-D, Fig. 4c).
//!
//! During a PIM kernel, the unit must walk — in ascending address order — the
//! cache blocks that belong to its (PIM, group, partition) under the XOR
//! address mapping. Membership is a conjunction of parity constraints over
//! physical-address bits, so after a plain block increment the address may
//! land on a different PIM and must be *skipped forward*.
//!
//! Two generators produce the identical sequence:
//!
//! * [`NaiveAgen`] — increments block by block, re-checking the IDs each
//!   time. Iterations per step equal the address gap, which grows with the
//!   number of active PIMs and stalls the 4-cycle DRAM burst pipeline.
//! * [`StepStoneAgen`] — increment-correct-and-check: increments only at
//!   ID-affecting bit positions, restoring all mask parities with the
//!   minimal suffix correction. The iteration count is bounded by the number
//!   of ID-affecting bits and is further compressed by the paper's two
//!   rules: *instant correction* of adjacent bits feeding the same ID bit
//!   (rule 1) and *carry forwarding* across contiguous chains of bits
//!   feeding different ID bits (rule 2).
//!
//! Sequence equality between the two generators is enforced by unit and
//! property tests — the same validation the paper performs against
//! pre-generated address traces (§IV).
//!
//! On top of the generators sits the **periodic span program**
//! ([`SpanProgram`]): the satisfying set of a parity system is periodic in
//! every aligned window whose prefix folds to the same residual parity
//! state, so the corrector walk only needs to run *once* per (low-mask
//! system, parity state) — every later window with the same state replays
//! the recorded [`AgenSpan`] skeleton with pure offset arithmetic. See the
//! `SpanProgram` docs for the exactness argument.

use crate::geometry::BLOCK_BYTES;
use crate::gf2::Gf2System;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// `parity(pa & mask) == parity` must hold for a block to be emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParityConstraint {
    pub mask: u64,
    pub parity: bool,
}

impl ParityConstraint {
    pub fn satisfied_by(&self, pa: u64) -> bool {
        ((pa & self.mask).count_ones() & 1 == 1) == self.parity
    }
}

/// Do all constraints hold at `pa`?
pub fn satisfies(pa: u64, cs: &[ParityConstraint]) -> bool {
    cs.iter().all(|c| c.satisfied_by(pa))
}

/// One generated address plus the number of AGEN iterations it cost. The
/// pipeline inserts bubbles whenever `iterations` exceeds the DRAM burst
/// window (paper §V-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgenStep {
    pub pa: u64,
    pub iterations: u32,
}

/// Which of the paper's two iteration-compression rules are active; both on
/// is the full StepStone AGEN, both off is a plain bit-serial corrector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AgenRules {
    /// Rule 1: adjacent bits feeding the same ID bit correct in one step.
    pub instant_correction: bool,
    /// Rule 2: a carry across a chain of contiguous bits feeding different
    /// ID bits is forwarded directly to the next-higher bit.
    pub carry_forwarding: bool,
}

impl Default for AgenRules {
    fn default() -> Self {
        Self { instant_correction: true, carry_forwarding: true }
    }
}

impl AgenRules {
    pub const NONE: AgenRules = AgenRules { instant_correction: false, carry_forwarding: false };
}

/// The baseline generator: scan one block at a time (paper §III-D "a simple
/// iterative approach of incrementing the address until the address is again
/// within this same block and PIM ID").
#[derive(Debug, Clone)]
pub struct NaiveAgen {
    cs: Vec<ParityConstraint>,
    next_candidate: u64,
    end: u64,
}

impl NaiveAgen {
    /// Generate all satisfying blocks in `[start, end)`; `start` must be
    /// block-aligned.
    pub fn new(cs: Vec<ParityConstraint>, start: u64, end: u64) -> Self {
        debug_assert_eq!(start % BLOCK_BYTES, 0);
        Self { cs, next_candidate: start, end }
    }
}

impl Iterator for NaiveAgen {
    type Item = AgenStep;

    fn next(&mut self) -> Option<AgenStep> {
        let mut iterations = 0u32;
        let mut pa = self.next_candidate;
        while pa < self.end {
            iterations += 1;
            if satisfies(pa, &self.cs) {
                self.next_candidate = pa + BLOCK_BYTES;
                return Some(AgenStep { pa, iterations });
            }
            pa += BLOCK_BYTES;
        }
        None
    }
}

/// A run of contiguous satisfying blocks: `len` blocks starting at
/// `start_pa`, where only the first block paid a full corrector step
/// (`iterations`); the rest are plain increments (1 iteration each).
///
/// Runs are *guaranteed* — every address in `[start_pa, start_pa + 64·len)`
/// satisfies the constraints because no constrained bit changes inside the
/// run — but not necessarily maximal: two adjacent spans may abut when the
/// increment across the boundary happens to keep all parities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgenSpan {
    pub start_pa: u64,
    /// Number of blocks in the run (≥ 1).
    pub len: u64,
    /// AGEN iterations charged for the first block of the run.
    pub iterations: u32,
}

/// One candidate bit position of the corrector, pre-echelonized so a
/// successor query only evaluates parities (no per-call `Gf2System`).
///
/// For position `p`, the solvable system is `(cs[i].mask & low_mask)·x =
/// rhs[i]` where only `rhs` depends on the candidate base address. Rows
/// store which original constraints were folded together (`sources`), so
/// the query-time RHS of each echelon row is a parity over the per-call
/// constraint RHS bits.
#[derive(Debug, Clone, Default)]
struct PreparedLevel {
    /// Reduced-echelon rows: (non-zero coefficient mask, source-constraint
    /// bitmask).
    rows: Vec<(u64, u32)>,
    /// Source masks of rows that eliminated to zero coefficients: the
    /// system is consistent iff each has even RHS parity.
    zero_rows: Vec<u32>,
}

impl PreparedLevel {
    fn prepare(cs: &[ParityConstraint], p: u32) -> Self {
        let low_mask = (1u64 << p) - 1;
        let mut lvl = PreparedLevel::default();
        for (i, c) in cs.iter().enumerate() {
            let mut coeff = c.mask & low_mask;
            let mut src = 1u32 << i;
            for &(rc, rs) in &lvl.rows {
                if coeff & (rc & rc.wrapping_neg()) != 0 {
                    coeff ^= rc;
                    src ^= rs;
                }
            }
            if coeff == 0 {
                lvl.zero_rows.push(src);
                continue;
            }
            let lead = coeff & coeff.wrapping_neg();
            for (rc, rs) in &mut lvl.rows {
                if *rc & lead != 0 {
                    *rc ^= coeff;
                    *rs ^= src;
                }
            }
            lvl.rows.push((coeff, src));
        }
        lvl
    }

    /// Minimal solution for the given per-constraint RHS bits, or `None`
    /// if inconsistent. Equivalent to `Gf2System::min_solution` on the
    /// same equations.
    #[inline]
    fn min_solution(&self, rhs_bits: u32) -> Option<u64> {
        for &z in &self.zero_rows {
            if (rhs_bits & z).count_ones() & 1 == 1 {
                return None;
            }
        }
        let mut x = 0u64;
        for &(c, s) in &self.rows {
            if (rhs_bits & s).count_ones() & 1 == 1 {
                x |= c & c.wrapping_neg();
            }
        }
        Some(x)
    }
}

/// The echelonized corrector state of a constraint system: every quantity a
/// successor query needs that depends only on the constraint *masks* (and
/// the compression rules) — parities enter a query only through the RHS
/// bits. Walks with the same mask sequence (every Algorithm-1 cell of one
/// GEMM: same ID masks, same group masks, same partition bits — only the
/// parities differ per PIM/group/partition) share one table set through
/// [`corrector_tables`], so the per-walk construction cost is paid once per
/// shape instead of once per cell.
#[derive(Debug)]
struct CorrectorTables {
    /// Ascending ID-affecting bit positions (the union of constraint masks).
    sbits: Vec<u32>,
    /// `unit_start[u]` = lowest bit position of compressed iteration unit
    /// `u`, per the active rules.
    unit_starts: Vec<u32>,
    /// Precomputed corrector systems indexed by `p - BLOCK_SHIFT`.
    levels: Vec<PreparedLevel>,
    /// Byte span over which no constrained bit changes (`1 << sbits[0]`).
    run_bytes: u64,
}

impl CorrectorTables {
    fn build(cs: &[ParityConstraint], p_max: u32, rules: AgenRules) -> Self {
        let mut union = 0u64;
        for c in cs {
            union |= c.mask;
        }
        let mut sbits = Vec::new();
        let mut u = union;
        while u != 0 {
            sbits.push(u.trailing_zeros());
            u &= u - 1;
        }
        let unit_starts = compress_units(cs, &sbits, rules);
        let levels = (crate::geometry::BLOCK_SHIFT..=p_max)
            .map(|p| PreparedLevel::prepare(cs, p))
            .collect();
        let run_bytes = sbits.first().map_or(u64::MAX, |&b| 1 << b);
        Self { sbits, unit_starts, levels, run_bytes }
    }
}

/// Distinct (mask sequence, level range, rules) corrector-table entries kept
/// process-wide; beyond the cap, tables are built privately per walk.
const CORRECTOR_CACHE_CAP: usize = 1024;

/// Keyed by constraint *masks* only (plus level range and rules): this is
/// complete, not an aliasing hazard. [`CorrectorTables::build`] never reads
/// a constraint's parity — `compress_units` and `PreparedLevel::prepare`
/// depend on masks alone, and the RHS is folded in per walk at solve time
/// (`rhs_bits`). Distinct geometries/presets produce distinct mask
/// sequences, so cross-preset walks cannot collide on a stale entry
/// (pinned by `interleaved_geometries_share_agen_caches_without_aliasing`).
type CorrectorKey = (Vec<u64>, u32, AgenRules);

fn corrector_cache() -> &'static Mutex<HashMap<CorrectorKey, Arc<CorrectorTables>>> {
    static CACHE: OnceLock<Mutex<HashMap<CorrectorKey, Arc<CorrectorTables>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Shared corrector tables for a constraint system (see [`CorrectorTables`]).
fn corrector_tables(cs: &[ParityConstraint], p_max: u32, rules: AgenRules) -> Arc<CorrectorTables> {
    let key: CorrectorKey = (cs.iter().map(|c| c.mask).collect(), p_max, rules);
    let mut cache = corrector_cache().lock().expect("corrector cache poisoned");
    if let Some(t) = cache.get(&key) {
        return Arc::clone(t);
    }
    let t = Arc::new(CorrectorTables::build(cs, p_max, rules));
    if cache.len() < CORRECTOR_CACHE_CAP {
        cache.insert(key, Arc::clone(&t));
    }
    t
}

/// The window-level (gate-row) view of a constraint system at a fixed
/// pivot: everything needed to enumerate the *nonempty* aligned
/// `2^pivot`-byte windows arithmetically, without visiting the empty ones.
///
/// Echelon-reducing the constraints' low masks (`mask ∧ (2^pivot − 1)`)
/// leaves zero rows: sets `S` of constraints whose low parts cancel. For
/// an aligned window `W` the folded requirement of such a row is a pure
/// *window* constraint — `parity(W ∧ ⊕_{i∈S} maskᵢ) = ⊕_{i∈S} parityᵢ`
/// (the XOR of the masks has no bits below the pivot). A window is
/// nonempty **iff every gate row holds**: the non-zero echelon rows are
/// always solvable inside the window, and parity is GF(2)-linear in the
/// mask, so consistency of the in-window system is exactly the
/// conjunction of the gate rows. Pure-high constraints are the simplest
/// gates (singleton `S`); the echelon generalizes them to combinations.
///
/// The next nonempty window after `w` is then the successor query of the
/// gate system *at window granularity* — the same prepared-level scan as
/// the block-level corrector, but starting at the pivot instead of
/// `BLOCK_SHIFT`, so the sub-pivot levels (the bulk of the 28-level live
/// scan at paper scale) are never touched. Everything here is mask-only
/// (parities enter per-walk through [`WindowTables::gate_rhs`]), so one
/// table set is shared by every cell of a shape via [`window_tables`].
#[derive(Debug)]
struct WindowTables {
    /// Per gate row: (window-bit parity mask, source-constraint bitmask).
    gates: Vec<(u64, u32)>,
    /// Gate corrector levels indexed by `p - pivot` for `p` in
    /// `pivot..=top`.
    levels: Vec<PreparedLevel>,
    pivot: u32,
    top: u32,
    /// Bytes over which no gate bit changes: all windows of one aligned
    /// `run_bytes` chunk agree on nonemptiness (`u64::MAX` when the gate
    /// system is empty — every window is nonempty).
    run_bytes: u64,
}

impl WindowTables {
    fn build(cs: &[ParityConstraint], pivot: u32, p_max: u32) -> Self {
        let lvl = PreparedLevel::prepare(cs, pivot);
        let gates: Vec<(u64, u32)> = lvl
            .zero_rows
            .iter()
            .map(|&src| {
                let mut mask = 0u64;
                for (i, c) in cs.iter().enumerate() {
                    if src >> i & 1 == 1 {
                        mask ^= c.mask;
                    }
                }
                debug_assert_eq!(mask & ((1u64 << pivot) - 1), 0, "gate rows are pure-high");
                (mask, src)
            })
            .collect();
        let gate_cs: Vec<ParityConstraint> =
            gates.iter().map(|&(mask, _)| ParityConstraint { mask, parity: false }).collect();
        let top = p_max.max(pivot);
        let levels = (pivot..=top).map(|p| PreparedLevel::prepare(&gate_cs, p)).collect();
        let union: u64 = gates.iter().fold(0, |u, g| u | g.0);
        let run_bytes = if union == 0 { u64::MAX } else { 1 << union.trailing_zeros() };
        Self { gates, levels, pivot, top, run_bytes }
    }

    /// Fold a walk's packed constraint parities into per-gate RHS bits.
    fn gate_rhs(&self, parity_bits: u32) -> u32 {
        let mut rhs = 0u32;
        for (g, &(_, src)) in self.gates.iter().enumerate() {
            rhs |= ((parity_bits & src).count_ones() & 1) << g;
        }
        rhs
    }

    /// Do all gate rows hold at aligned window base `w`?
    fn satisfied(&self, w: u64, gate_rhs: u32) -> bool {
        self.gates
            .iter()
            .enumerate()
            .all(|(g, &(mask, _))| (w & mask).count_ones() & 1 == gate_rhs >> g & 1)
    }

    /// Smallest aligned window base `> w` whose gate system holds, or
    /// `None` when no later window is nonempty. Mirrors
    /// [`StepStoneAgen::successor`] at window granularity.
    fn next_window(&self, w: u64, gate_rhs: u32) -> Option<u64> {
        let wb = 1u64 << self.pivot;
        let cand = w + wb;
        if self.satisfied(cand, gate_rhs) {
            return Some(cand);
        }
        let mut best: Option<u64> = None;
        for p in self.pivot..=self.top {
            let base = ((w >> p) + 1) << p;
            if let Some(b) = best {
                if base >= b {
                    break;
                }
            }
            let mut rhs_bits = 0u32;
            for (g, &(mask, _)) in self.gates.iter().enumerate() {
                let prefix = (base & mask).count_ones() & 1;
                rhs_bits |= ((gate_rhs >> g & 1) ^ prefix) << g;
            }
            let Some(fix) = self.levels[(p - self.pivot) as usize].min_solution(rhs_bits) else {
                continue;
            };
            let cand = base | fix;
            debug_assert!(cand > w);
            debug_assert_eq!(cand & (wb - 1), 0, "gate fixes stay window-aligned");
            if best.is_none_or(|b| cand < b) {
                best = Some(cand);
            }
        }
        best
    }

    /// Exclusive end of the contiguous nonempty-window run containing the
    /// gate-satisfying window `w`.
    fn run_end(&self, w: u64) -> u64 {
        if self.run_bytes == u64::MAX {
            u64::MAX
        } else {
            (w / self.run_bytes + 1) * self.run_bytes
        }
    }
}

/// Distinct (mask sequence, pivot, level range) window-table entries kept
/// process-wide; beyond the cap, tables are built privately per walk.
const WINDOW_CACHE_CAP: usize = 1024;

/// Mask-only key, like [`CorrectorKey`]: [`WindowTables::build`] erases
/// parities up front (gate rows are built over `parity: false` copies) and
/// re-derives the gate RHS from the walk's own parity bits in `gate_rhs`,
/// so entries are shared safely across presets with different parities but
/// identical mask sequences — and never across different geometries.
type WindowKey = (Vec<u64>, u32, u32);

fn window_cache() -> &'static Mutex<HashMap<WindowKey, Arc<WindowTables>>> {
    static CACHE: OnceLock<Mutex<HashMap<WindowKey, Arc<WindowTables>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Shared window tables for a constraint system (see [`WindowTables`]).
fn window_tables(cs: &[ParityConstraint], pivot: u32, p_max: u32) -> Arc<WindowTables> {
    let key: WindowKey = (cs.iter().map(|c| c.mask).collect(), pivot, p_max);
    let mut cache = window_cache().lock().expect("window cache poisoned");
    if let Some(t) = cache.get(&key) {
        return Arc::clone(t);
    }
    let t = Arc::new(WindowTables::build(cs, pivot, p_max));
    if cache.len() < WINDOW_CACHE_CAP {
        cache.insert(key, Arc::clone(&t));
    }
    t
}

/// The StepStone increment-correct-and-check generator.
#[derive(Debug, Clone)]
pub struct StepStoneAgen {
    cs: Vec<ParityConstraint>,
    /// Mask-derived corrector state, shared across walks with equal masks.
    tables: Arc<CorrectorTables>,
    /// Iteration-compression rules the tables were built with.
    rules: AgenRules,
    /// Next block to emit within the current guaranteed run.
    cur: u64,
    /// Exclusive end of the current run.
    span_end: u64,
    /// Iterations owed by the next emitted block (first block of a run).
    pending_iters: u32,
    /// Last emitted address (successor scan base), or `start` before the
    /// first emission.
    last_pa: u64,
    started: bool,
    exhausted: bool,
    end: u64,
    /// Use the seed-era per-call `Gf2System` corrector instead of the
    /// prepared levels (benchmark baseline; identical output).
    uncached_corrector: bool,
}

impl StepStoneAgen {
    pub fn new(cs: Vec<ParityConstraint>, start: u64, end: u64) -> Self {
        Self::with_rules(cs, start, end, AgenRules::default())
    }

    pub fn with_rules(cs: Vec<ParityConstraint>, start: u64, end: u64, rules: AgenRules) -> Self {
        debug_assert_eq!(start % BLOCK_BYTES, 0);
        let mut union = 0u64;
        for c in &cs {
            union |= c.mask;
        }
        // Highest position the successor scan can visit for any x < end
        // (capped at bit 63 — u64 addresses have nothing above it, and an
        // uncapped level would shift-overflow for end ≥ 2^62).
        let top_sbit = if union == 0 { 6 } else { 63 - union.leading_zeros() };
        let hi = 63 - end.max(1).leading_zeros().min(57);
        let p_max = (hi.max(top_sbit) + 2).min(63);
        let tables = corrector_tables(&cs, p_max, rules);
        Self {
            cs,
            tables,
            rules,
            cur: 0,
            span_end: 0,
            pending_iters: 0,
            last_pa: start,
            started: false,
            exhausted: false,
            end,
            uncached_corrector: false,
        }
    }

    /// Switch to the seed-era corrector that rebuilds a [`Gf2System`] per
    /// candidate position. Output is identical; kept as the benchmark
    /// baseline for the prepared-level corrector.
    pub fn use_uncached_corrector(mut self) -> Self {
        self.uncached_corrector = true;
        self
    }

    /// Number of compressed iteration units (hardware loop bound).
    pub fn unit_count(&self) -> usize {
        self.tables.unit_starts.len()
    }

    /// Consume the generator as batched runs of contiguous blocks.
    pub fn spans(self) -> Spans {
        Spans { agen: self }
    }

    /// Consume the generator as batched runs through the periodic
    /// span-program cache (identical span stream; see [`SpanProgram`]).
    pub fn span_program(self) -> SpanProgram {
        SpanProgram::new(self)
    }

    /// Hardware iterations charged for a step that won at bit position `p`:
    /// the initial increment-and-check plus one per unit below `p`.
    fn iterations_for(&self, p: u32) -> u32 {
        1 + self.tables.unit_starts.iter().take_while(|&&s| s < p).count() as u32
    }

    /// Smallest satisfying block address strictly greater than `x`, or
    /// `None` if the constraint system is unsatisfiable (e.g. a row
    /// partition that contains no rows of the requested group).
    fn successor(&self, x: u64) -> Option<(u64, u32)> {
        // Fast path: the plain increment stays on this PIM and group. With
        // the baseline Skylake mapping pairs of blocks are contiguous
        // (lowest ID bit is PA bit 7), so this hits half the time.
        let cand = x + BLOCK_BYTES;
        if satisfies(cand, &self.cs) {
            return Some((cand, 1));
        }
        let mut best: Option<(u64, u32)> = None;
        // Candidate prefixes: increment at each bit position `p`, zero the
        // free bits below, and restore the parities with the minimal
        // assignment of ID-affecting bits below `p`. The true successor is
        // produced at `p` = its highest bit differing from `x`, so scanning
        // all positions (with monotone-base pruning) is exact.
        let top = 63 - x.max(1).leading_zeros().min(57);
        let top = (top.max(self.tables.sbits.last().copied().unwrap_or(6)) + 2).min(63);
        for p in crate::geometry::BLOCK_SHIFT..=top {
            let base = ((x >> p) + 1) << p;
            if let Some((b, _)) = best {
                if base >= b {
                    break;
                }
            }
            let fix = if self.uncached_corrector {
                self.solve_uncached(base, p)
            } else {
                // `base` has no bits below `p`, so each constraint's RHS is
                // its parity corrected by the prefix contribution.
                let mut rhs_bits = 0u32;
                for (i, c) in self.cs.iter().enumerate() {
                    let prefix = (base & c.mask).count_ones() & 1;
                    rhs_bits |= (c.parity as u32 ^ prefix) << i;
                }
                self.tables.levels[(p - crate::geometry::BLOCK_SHIFT) as usize]
                    .min_solution(rhs_bits)
            };
            let Some(fix) = fix else { continue };
            let cand = base | fix;
            debug_assert!(cand > x);
            debug_assert!(satisfies(cand, &self.cs));
            if best.is_none_or(|(b, _)| cand < b) {
                best = Some((cand, self.iterations_for(p)));
            }
        }
        best
    }

    /// Iterations the live [`StepStoneAgen::successor`] charges for the
    /// step from `x` to its (already known) successor `y`, reconstructed
    /// arithmetically — no corrector solve.
    ///
    /// The live scan first tries the plain increment (`y == x + 64` costs 1
    /// iteration), then produces `y` at every level `p` whose carry chain
    /// is intact — `((x >> p) + 1) << p` equals `y`'s prefix, i.e. every
    /// bit of `[p, p*)` (`p*` = highest differing bit) is 1 in `x` and 0 in
    /// `y` — and keeps the *first* (lowest) producing level, whose unit
    /// count it charges. The window-level successor uses this to replay a
    /// window's first span without running the scan; exactness against the
    /// live walk is pinned by the differential suite in
    /// `tests/window_successor.rs`.
    fn boundary_iters(&self, x: u64, y: u64) -> u32 {
        debug_assert!(y > x);
        if y == x + BLOCK_BYTES {
            return 1;
        }
        let p_star = 63 - (x ^ y).leading_zeros();
        let chain_broken = (!x | y) & ((1u64 << p_star) - 1) & !(BLOCK_BYTES - 1);
        let p_min = if chain_broken == 0 {
            crate::geometry::BLOCK_SHIFT
        } else {
            64 - chain_broken.leading_zeros()
        };
        self.iterations_for(p_min)
    }

    /// The seed-era corrector: build and solve a fresh GF(2) system.
    fn solve_uncached(&self, base: u64, p: u32) -> Option<u64> {
        let low_mask = (1u64 << p) - 1;
        let mut sys = Gf2System::new();
        for c in &self.cs {
            let coeff = c.mask & low_mask;
            let rhs = c.parity ^ ((base & c.mask & !low_mask).count_ones() & 1 == 1);
            if !sys.add(coeff, rhs) {
                return None;
            }
        }
        Some(sys.min_solution().expect("consistent system has a solution"))
    }

    /// Locate the next guaranteed run after the current one; `false` when
    /// the walk is exhausted.
    fn advance_span(&mut self) -> bool {
        if self.exhausted {
            return false;
        }
        let found = if !self.started {
            self.started = true;
            if self.last_pa >= self.end {
                None
            } else if satisfies(self.last_pa, &self.cs) {
                Some((self.last_pa, 1))
            } else {
                self.successor(self.last_pa)
            }
        } else {
            self.successor(self.last_pa)
        };
        let Some((pa, iterations)) = found else {
            self.exhausted = true;
            return false;
        };
        if pa >= self.end {
            self.exhausted = true;
            return false;
        }
        // All blocks up to the next constrained-bit boundary share every
        // mask parity with `pa`, so the whole run satisfies.
        let boundary = if self.tables.run_bytes == u64::MAX {
            u64::MAX
        } else {
            ((pa >> self.tables.sbits[0]) + 1) << self.tables.sbits[0]
        };
        let end_aligned = self.end.div_ceil(BLOCK_BYTES) * BLOCK_BYTES;
        self.cur = pa;
        self.span_end = boundary.min(end_aligned);
        self.pending_iters = iterations;
        self.last_pa = self.span_end - BLOCK_BYTES;
        true
    }
}

impl Iterator for StepStoneAgen {
    type Item = AgenStep;

    fn next(&mut self) -> Option<AgenStep> {
        if self.cur >= self.span_end && !self.advance_span() {
            return None;
        }
        let pa = self.cur;
        self.cur += BLOCK_BYTES;
        let iterations = if self.pending_iters != 0 {
            std::mem::take(&mut self.pending_iters)
        } else {
            1
        };
        Some(AgenStep { pa, iterations })
    }
}

/// Batched-run view of a [`StepStoneAgen`] (see [`AgenSpan`]).
#[derive(Debug, Clone)]
pub struct Spans {
    agen: StepStoneAgen,
}

impl Iterator for Spans {
    type Item = AgenSpan;

    fn next(&mut self) -> Option<AgenSpan> {
        let a = &mut self.agen;
        if a.cur >= a.span_end && !a.advance_span() {
            return None;
        }
        let span = AgenSpan {
            start_pa: a.cur,
            len: (a.span_end - a.cur) / BLOCK_BYTES,
            iterations: if a.pending_iters != 0 { a.pending_iters } else { 1 },
        };
        a.cur = a.span_end;
        a.pending_iters = 0;
        Some(span)
    }
}

/// One recorded span of a window skeleton: block offset from the window
/// base, run length in blocks, and the corrector iterations of the run's
/// first block (meaningful for every span but the window's first, whose
/// iteration count depends on the *previous* window and is recomputed live
/// at replay time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SkelSpan {
    off: u32,
    len: u32,
    iters: u32,
}

/// Per-(low-mask system, rules, pivot) skeleton store: one recorded span
/// sequence per residual parity state, shared by every [`SpanProgram`] with
/// the same key — across PIMs, groups, partitions, phases, and repeated
/// layers.
#[derive(Debug, Default)]
struct SharedSkeletons {
    by_state: Mutex<HashMap<u32, Arc<Vec<SkelSpan>>>>,
}

/// Caps for the global span-program cache: distinct (low-mask, pivot,
/// rules) keys, and total recorded spans across all skeletons. Past either
/// cap the walk simply stays live — output is identical either way.
const SPAN_PROGRAM_KEY_CAP: usize = 512;
const SPAN_PROGRAM_SPAN_CAP: usize = 1 << 20;

/// Largest replay window: `2^(BLOCK_SHIFT + 14)` bytes = 16 Ki blocks, so a
/// single skeleton never exceeds 16 Ki spans (the global span cap bounds
/// total resident spans).
const SPAN_WINDOW_BLOCK_BITS: u32 = 14;

/// Windows are sized so the walked range holds at least ~2^6 of them:
/// smaller windows mean more states repeat within one walk (pure-high
/// constraint rows become gates that fold out of the state entirely), which
/// is where within-walk replay comes from.
const SPAN_WINDOWS_PER_RANGE_BITS: u32 = 6;

/// Skeletons are shared by (low-mask sequence, pivot, rules) and, inside
/// [`SharedSkeletons`], by the window's residual parity state — together a
/// complete key: the satisfying offsets within an aligned window are a pure
/// function of the constraints' low-mask rows and the per-window RHS, with
/// all geometry- and parity-dependence folded into `state_of`. Walks under
/// different presets therefore interleave through this cache safely.
type SpanProgramKey = (Vec<u64>, u32, AgenRules);

struct SpanProgramCache {
    programs: Mutex<HashMap<SpanProgramKey, Arc<SharedSkeletons>>>,
    cached_spans: AtomicUsize,
}

fn span_program_cache() -> &'static SpanProgramCache {
    static CACHE: OnceLock<SpanProgramCache> = OnceLock::new();
    CACHE.get_or_init(|| SpanProgramCache {
        programs: Mutex::new(HashMap::new()),
        cached_spans: AtomicUsize::new(0),
    })
}

/// Test/bench hook: spans currently resident in the global skeleton cache.
pub fn span_cache_resident_spans() -> usize {
    span_program_cache().cached_spans.load(Ordering::Relaxed)
}

/// Process-wide [`SpanProgram`] event totals (bench/test hook): how the
/// A-walk's spans were produced and what each window boundary cost. Every
/// program flushes its per-walk counters here on drop, so a whole
/// simulation can be audited after the fact — `bench_sim` records these so
/// the smoke gate can tell a cache regression from host noise.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AgenCounters {
    /// Spans produced by the live generator (cold windows, range edges).
    pub live_spans: u64,
    /// Spans replayed from cached skeletons (incl. window-first spans
    /// synthesized by the window successor).
    pub replayed_spans: u64,
    /// Window boundaries crossed arithmetically via the gate-row window
    /// successor (no corrector scan).
    pub window_jumps: u64,
    /// Window boundaries crossed by a full live successor scan.
    pub boundary_successors: u64,
    /// Skeleton-cache lookups that hit (window replayed).
    pub skeleton_hits: u64,
    /// Skeleton-cache lookups that missed (window walked live/recorded).
    pub skeleton_misses: u64,
}

#[derive(Default)]
struct GlobalAgenCounters {
    live_spans: AtomicU64,
    replayed_spans: AtomicU64,
    window_jumps: AtomicU64,
    boundary_successors: AtomicU64,
    skeleton_hits: AtomicU64,
    skeleton_misses: AtomicU64,
}

fn global_agen_counters() -> &'static GlobalAgenCounters {
    static C: OnceLock<GlobalAgenCounters> = OnceLock::new();
    C.get_or_init(GlobalAgenCounters::default)
}

/// Snapshot the process-wide AGEN counters (see [`AgenCounters`]).
pub fn agen_counters() -> AgenCounters {
    let c = global_agen_counters();
    AgenCounters {
        live_spans: c.live_spans.load(Ordering::Relaxed),
        replayed_spans: c.replayed_spans.load(Ordering::Relaxed),
        window_jumps: c.window_jumps.load(Ordering::Relaxed),
        boundary_successors: c.boundary_successors.load(Ordering::Relaxed),
        skeleton_hits: c.skeleton_hits.load(Ordering::Relaxed),
        skeleton_misses: c.skeleton_misses.load(Ordering::Relaxed),
    }
}

/// Zero the process-wide AGEN counters (bench/test hook).
pub fn reset_agen_counters() {
    let c = global_agen_counters();
    c.live_spans.store(0, Ordering::Relaxed);
    c.replayed_spans.store(0, Ordering::Relaxed);
    c.window_jumps.store(0, Ordering::Relaxed);
    c.boundary_successors.store(0, Ordering::Relaxed);
    c.skeleton_hits.store(0, Ordering::Relaxed);
    c.skeleton_misses.store(0, Ordering::Relaxed);
}

/// A [`StepStoneAgen`] span stream that caches and replays the A-walk
/// periodically — identical output to [`StepStoneAgen::spans`], with the
/// GF(2) corrector running once per *window state* instead of once per
/// span.
///
/// # Why this is exact
///
/// Fix a window size `2^p` (`p` = pivot, above the lowest constrained bit
/// and at most one above the highest). For an aligned window `W`,
/// membership of `W + o` depends only on each constraint's low mask
/// `mᵢ ∧ (2^p − 1)` and the *residual parity* `rᵢ = parityᵢ ⊕
/// parity(W ∧ mᵢ ∧ ¬(2^p − 1))` — the window prefix folds into the RHS.
/// Therefore two windows (of any two walks) with equal low-mask sequences
/// and equal residual states contain the *same* span pattern. The
/// successor scan for an in-window span also only consults levels below
/// `p` (a candidate prefix at or above `p` lands in a later window and can
/// never beat an in-window successor), and its iteration count counts
/// compressed units starting below `p`, which are equally determined by
/// the low masks and rules. The only per-window quantity that depends on
/// *more* than the state is the corrector cost of entering the window —
/// the scan from the previous window's last address — so the replay path
/// recomputes exactly that one successor live per window and replays the
/// rest of the skeleton arithmetically.
///
/// Skeletons are recorded from fully-in-range windows the live walk enters
/// at their first satisfying address, stored in a process-wide cache keyed
/// like [`crate::region::RegionPlan`]'s offset tables (bounded; see
/// `SPAN_PROGRAM_*` caps), and shared across units, phases, and repeated
/// layers. Degenerate systems — no constraints, more than 20 constraints,
/// windows no larger than a single contiguous run, or ranges without one
/// full window — simply keep the live walk.
pub struct SpanProgram {
    agen: StepStoneAgen,
    /// Replay machinery active (range and system are eligible).
    enabled: bool,
    /// `2^pivot`-byte replay window.
    window_bytes: u64,
    /// Per-constraint mask bits at or above the pivot (RHS folding).
    hi_masks: Vec<u64>,
    /// Packed constraint parities (`state = parities ⊕ fold(W)`).
    parity_bits: u32,
    start: u64,
    shared: Arc<SharedSkeletons>,
    /// `shared` lives in the process-wide cache (vs a private store after
    /// key-cap overflow, whose spans die with the walk and must not be
    /// charged to the global span budget).
    shared_in_cache: bool,
    /// Window of the most recently emitted span (`u64::MAX` before any).
    cur_window: u64,
    replay: Option<(Arc<Vec<SkelSpan>>, usize)>,
    recording: Option<(u32, Vec<SkelSpan>)>,
    /// Gate-row window-successor tables plus this walk's folded gate RHS
    /// (`None` when replay is disabled).
    wtables: Option<(Arc<WindowTables>, u32)>,
    /// `cur_window`'s contiguous nonempty-window run extends to here; the
    /// next window before this bound is nonempty without a gate query.
    win_run_end: u64,
    /// The current window's span skeleton is fully consumed, so the next
    /// span starts in a *later* window and the window successor may jump.
    at_boundary: bool,
    /// Spans produced by the live generator (stats/test hook).
    pub live_spans: u64,
    /// Spans replayed from a cached skeleton (stats/test hook).
    pub replayed_spans: u64,
    /// Window boundaries crossed arithmetically (gate-row successor).
    pub window_jumps: u64,
    /// Window boundaries crossed by a full live successor scan.
    pub boundary_successors: u64,
    /// Skeleton-cache hits (windows replayed instead of walked).
    pub skeleton_hits: u64,
    /// Skeleton-cache misses (windows walked live and recorded).
    pub skeleton_misses: u64,
}

impl Drop for SpanProgram {
    fn drop(&mut self) {
        let c = global_agen_counters();
        c.live_spans.fetch_add(self.live_spans, Ordering::Relaxed);
        c.replayed_spans.fetch_add(self.replayed_spans, Ordering::Relaxed);
        c.window_jumps.fetch_add(self.window_jumps, Ordering::Relaxed);
        c.boundary_successors.fetch_add(self.boundary_successors, Ordering::Relaxed);
        c.skeleton_hits.fetch_add(self.skeleton_hits, Ordering::Relaxed);
        c.skeleton_misses.fetch_add(self.skeleton_misses, Ordering::Relaxed);
    }
}

impl SpanProgram {
    fn new(agen: StepStoneAgen) -> Self {
        let start = agen.last_pa;
        let sbits = &agen.tables.sbits;
        let mut enabled = !sbits.is_empty()
            && agen.cs.len() <= 20
            && !agen.uncached_corrector;
        // Window pivot: small enough that the range holds many windows (so
        // states recur and high constraint rows act as gates), large enough
        // that a window spans several contiguous runs; hard-capped so one
        // skeleton stays bounded.
        let pivot = if enabled {
            let lo = (sbits.first().expect("nonempty") + 1)
                .max(crate::geometry::BLOCK_SHIFT + 1);
            let hi = (sbits.last().expect("nonempty") + 1)
                .min(crate::geometry::BLOCK_SHIFT + SPAN_WINDOW_BLOCK_BITS);
            let range = agen.end.saturating_sub(start).max(1);
            let by_range =
                (63 - range.leading_zeros()).saturating_sub(SPAN_WINDOWS_PER_RANGE_BITS);
            if lo > hi {
                enabled = false;
                crate::geometry::BLOCK_SHIFT
            } else {
                by_range.clamp(lo, hi)
            }
        } else {
            crate::geometry::BLOCK_SHIFT
        };
        let window_bytes = 1u64 << pivot;
        // At least one full window must fit in [start, end).
        let w0 = start.div_ceil(window_bytes) * window_bytes;
        enabled = enabled && w0.checked_add(window_bytes).is_some_and(|e| e <= agen.end);
        let low_mask = window_bytes - 1;
        let hi_masks: Vec<u64> = agen.cs.iter().map(|c| c.mask & !low_mask).collect();
        let mut parity_bits = 0u32;
        for (i, c) in agen.cs.iter().enumerate() {
            parity_bits |= (c.parity as u32) << i;
        }
        let (shared, shared_in_cache) = if enabled {
            Self::shared_for(
                agen.cs.iter().map(|c| c.mask & low_mask).collect(),
                pivot,
                agen.rules,
            )
        } else {
            (Arc::new(SharedSkeletons::default()), false)
        };
        let wtables = if enabled {
            // The corrector tables' level range already covers every bit
            // the walk can visit; the gate scan shares that ceiling.
            let p_max =
                crate::geometry::BLOCK_SHIFT + agen.tables.levels.len() as u32 - 1;
            let wt = window_tables(&agen.cs, pivot, p_max);
            let rhs = wt.gate_rhs(parity_bits);
            Some((wt, rhs))
        } else {
            None
        };
        Self {
            agen,
            enabled,
            window_bytes,
            hi_masks,
            parity_bits,
            start,
            shared,
            shared_in_cache,
            cur_window: u64::MAX,
            replay: None,
            recording: None,
            wtables,
            win_run_end: 0,
            // A window-aligned start has no partial prefix window, so the
            // walk may enter its very first window through the window
            // successor (the common case for naturally aligned layouts —
            // at paper scale this removes the last live scan per walk).
            at_boundary: enabled && start.is_multiple_of(window_bytes),
            live_spans: 0,
            replayed_spans: 0,
            window_jumps: 0,
            boundary_successors: 0,
            skeleton_hits: 0,
            skeleton_misses: 0,
        }
    }

    /// The cache-resident skeleton store for a key, or a private one (not
    /// globally counted) once the key cap is reached.
    fn shared_for(
        low_masks: Vec<u64>,
        pivot: u32,
        rules: AgenRules,
    ) -> (Arc<SharedSkeletons>, bool) {
        let cache = span_program_cache();
        let key = (low_masks, pivot, rules);
        let mut programs = cache.programs.lock().expect("span cache poisoned");
        if let Some(s) = programs.get(&key) {
            return (Arc::clone(s), true);
        }
        let s = Arc::new(SharedSkeletons::default());
        if programs.len() < SPAN_PROGRAM_KEY_CAP {
            programs.insert(key, Arc::clone(&s));
            return (s, true);
        }
        (s, false)
    }

    /// Is skeleton replay active for this walk (false for degenerate or
    /// short-range systems, which keep the live walk)?
    pub fn replay_enabled(&self) -> bool {
        self.enabled
    }

    /// Residual parity state of an aligned window: each constraint's RHS
    /// after folding the window prefix.
    #[inline]
    fn state_of(&self, w: u64) -> u32 {
        let mut fold = 0u32;
        for (i, &m) in self.hi_masks.iter().enumerate() {
            fold |= ((w & m).count_ones() & 1) << i;
        }
        self.parity_bits ^ fold
    }

    /// Is `w`'s window entirely inside the walked range (so a skeleton can
    /// be recorded from or replayed into it without clipping)?
    #[inline]
    fn window_in_range(&self, w: u64) -> bool {
        w >= self.start && w + self.window_bytes <= self.agen.end
    }

    /// One span from the live generator — the body of [`Spans::next`].
    fn live_next(&mut self) -> Option<AgenSpan> {
        let a = &mut self.agen;
        if a.cur >= a.span_end && !a.advance_span() {
            return None;
        }
        let span = AgenSpan {
            start_pa: a.cur,
            len: (a.span_end - a.cur) / BLOCK_BYTES,
            iterations: if a.pending_iters != 0 { a.pending_iters } else { 1 },
        };
        a.cur = a.span_end;
        a.pending_iters = 0;
        Some(span)
    }

    /// The walk has moved past the window being recorded (or ended), so the
    /// recorded skeleton is complete: publish it.
    fn flush_recording(&mut self) {
        let Some((state, spans)) = self.recording.take() else { return };
        let mut by_state = self.shared.by_state.lock().expect("skeleton map poisoned");
        if by_state.contains_key(&state) {
            // Another walk recorded the same state concurrently (the
            // skeletons are identical by construction).
            return;
        }
        // Only cache-resident stores count against the global span budget;
        // a private (key-cap-overflow) store dies with the walk.
        if self.shared_in_cache {
            let cache = span_program_cache();
            if cache.cached_spans.fetch_add(spans.len(), Ordering::Relaxed) + spans.len()
                > SPAN_PROGRAM_SPAN_CAP
            {
                cache.cached_spans.fetch_sub(spans.len(), Ordering::Relaxed);
                return;
            }
        }
        by_state.insert(state, Arc::new(spans));
    }

    fn lookup(&self, state: u32) -> Option<Arc<Vec<SkelSpan>>> {
        self.shared.by_state.lock().expect("skeleton map poisoned").get(&state).cloned()
    }

    /// Cross the consumed-window boundary arithmetically: enumerate the
    /// next nonempty aligned window from the gate-row system and replay
    /// its cached skeleton — *including* the window's first span, whose
    /// live-successor iteration charge is reconstructed by
    /// [`StepStoneAgen::boundary_iters`]. Returns `None` (deferring to the
    /// live walk) for the clipped tail, for a cold (unrecorded) window
    /// state, or when no nonempty window remains.
    fn window_jump(&mut self) -> Option<AgenSpan> {
        let (wt, gate_rhs) = match &self.wtables {
            Some((wt, rhs)) => (Arc::clone(wt), *rhs),
            None => return None,
        };
        let next_w = if self.cur_window == u64::MAX {
            // Walk start (window-aligned, so no partial prefix): the first
            // nonempty window at or after `start`.
            if wt.satisfied(self.start, gate_rhs) {
                self.win_run_end = wt.run_end(self.start);
                self.start
            } else {
                let w2 = wt.next_window(self.start, gate_rhs)?;
                self.win_run_end = wt.run_end(w2);
                w2
            }
        } else {
            let cand = self.cur_window + self.window_bytes;
            if cand < self.win_run_end {
                cand
            } else {
                let w2 = wt.next_window(self.cur_window, gate_rhs)?;
                self.win_run_end = wt.run_end(w2);
                w2
            }
        };
        if next_w + self.window_bytes > self.agen.end {
            return None;
        }
        let state = self.state_of(next_w);
        let skel = self.lookup(state)?;
        self.skeleton_hits += 1;
        let s0 = skel[0];
        let pa = next_w + s0.off as u64 * BLOCK_BYTES;
        let len = s0.len as u64;
        // The windows skipped over are empty (their gate rows fail), so
        // `pa` is the true successor of the previous span's last address —
        // or, before the first emission, the walk's first address (which
        // the live generator charges a single check when it is `start`
        // itself).
        let iterations = if !self.agen.started && pa == self.agen.last_pa {
            1
        } else {
            self.agen.boundary_iters(self.agen.last_pa, pa)
        };
        self.agen.started = true;
        self.cur_window = next_w;
        self.agen.last_pa = pa + (len - 1) * BLOCK_BYTES;
        self.agen.cur = 0;
        self.agen.span_end = 0;
        self.window_jumps += 1;
        self.replayed_spans += 1;
        if skel.len() > 1 {
            self.replay = Some((skel, 1));
        } else {
            self.at_boundary = true;
        }
        Some(AgenSpan { start_pa: pa, len, iterations })
    }
}

impl Iterator for SpanProgram {
    type Item = AgenSpan;

    fn next(&mut self) -> Option<AgenSpan> {
        if let Some((skel, ix)) = &mut self.replay {
            if let Some(&s) = skel.get(*ix) {
                *ix += 1;
                let pa = self.cur_window + s.off as u64 * BLOCK_BYTES;
                let len = s.len as u64;
                // Keep the live generator's successor base in sync so the
                // next boundary crossing scans from the true predecessor.
                self.agen.last_pa = pa + (len - 1) * BLOCK_BYTES;
                self.agen.cur = 0;
                self.agen.span_end = 0;
                self.replayed_spans += 1;
                return Some(AgenSpan { start_pa: pa, len, iterations: s.iters });
            }
            self.replay = None;
            // The replayed window is fully consumed: the next span starts
            // in a later window, which the gate system can locate without
            // a live corrector scan.
            self.at_boundary = true;
        }
        if self.at_boundary {
            self.at_boundary = false;
            debug_assert!(self.recording.is_none(), "boundary implies no open recording");
            if let Some(span) = self.window_jump() {
                return Some(span);
            }
        }
        let Some(span) = self.live_next() else {
            // The walk ran off the end of the range: whatever window was
            // being recorded has no further spans, so it is complete.
            self.flush_recording();
            return None;
        };
        self.live_spans += 1;
        if self.enabled {
            let w = span.start_pa & !(self.window_bytes - 1);
            if w != self.cur_window {
                self.boundary_successors += 1;
                self.flush_recording();
                self.cur_window = w;
                if self.window_in_range(w) {
                    let state = self.state_of(w);
                    if let Some(skel) = self.lookup(state) {
                        self.skeleton_hits += 1;
                        debug_assert_eq!(w + skel[0].off as u64 * BLOCK_BYTES, span.start_pa);
                        debug_assert_eq!(skel[0].len as u64, span.len);
                        if skel.len() > 1 {
                            self.replay = Some((skel, 1));
                        } else {
                            self.at_boundary = true;
                        }
                    } else {
                        self.skeleton_misses += 1;
                        // The walk enters a fully-in-range window at its
                        // first satisfying address, so recording from here
                        // captures the whole skeleton.
                        self.recording = Some((
                            state,
                            vec![SkelSpan {
                                off: ((span.start_pa - w) / BLOCK_BYTES) as u32,
                                len: span.len as u32,
                                iters: span.iterations,
                            }],
                        ));
                    }
                }
            } else if let Some((_, spans)) = &mut self.recording {
                spans.push(SkelSpan {
                    off: ((span.start_pa - w) / BLOCK_BYTES) as u32,
                    len: span.len as u32,
                    iters: span.iterations,
                });
            }
        }
        Some(span)
    }
}

/// Per-block view of a [`SpanProgram`]: the [`AgenStep`] stream of the
/// underlying walk, with replayed spans unrolled by a counter. Drop-in for
/// iterating a [`StepStoneAgen`] directly, at the span program's cost.
pub struct ProgramSteps {
    prog: SpanProgram,
    cur: u64,
    remaining: u64,
    first_iters: u32,
}

impl Iterator for ProgramSteps {
    type Item = AgenStep;

    fn next(&mut self) -> Option<AgenStep> {
        if self.remaining == 0 {
            let span = self.prog.next()?;
            self.cur = span.start_pa;
            self.remaining = span.len;
            self.first_iters = span.iterations;
        }
        let pa = self.cur;
        self.cur += BLOCK_BYTES;
        self.remaining -= 1;
        let iterations =
            if self.first_iters != 0 { std::mem::take(&mut self.first_iters) } else { 1 };
        Some(AgenStep { pa, iterations })
    }
}

impl SpanProgram {
    /// Flatten the span stream back to per-block [`AgenStep`]s.
    pub fn steps(self) -> ProgramSteps {
        ProgramSteps { prog: self, cur: 0, remaining: 0, first_iters: 0 }
    }
}

/// Compress ascending ID-affecting bit positions into hardware iteration
/// units per the active rules. Without rules every bit is its own unit;
/// rule 1 merges an adjacent pair feeding the same ID bit; rule 2 merges a
/// contiguous chain of bits feeding pairwise different ID bits; with both
/// rules any contiguous run collapses to one unit.
fn compress_units(cs: &[ParityConstraint], sbits: &[u32], rules: AgenRules) -> Vec<u32> {
    let share_mask = |a: u32, b: u32| {
        cs.iter().any(|c| c.mask >> a & 1 == 1 && c.mask >> b & 1 == 1)
    };
    let mut unit_starts = Vec::new();
    let mut prev: Option<u32> = None;
    for &b in sbits {
        let merged = match prev {
            Some(p) if b == p + 1 => {
                let same = share_mask(p, b);
                (same && rules.instant_correction) || (!same && rules.carry_forwarding)
            }
            _ => false,
        };
        if !merged {
            unit_starts.push(b);
        }
        prev = Some(b);
    }
    unit_starts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groups::GroupAnalysis;
    use crate::layout::MatrixLayout;
    use crate::pimlevel::PimLevel;
    use crate::presets::{mapping_by_id, MappingId};

    fn collect_both(
        cs: &[ParityConstraint],
        start: u64,
        end: u64,
    ) -> (Vec<AgenStep>, Vec<AgenStep>) {
        let naive: Vec<_> = NaiveAgen::new(cs.to_vec(), start, end).collect();
        let fast: Vec<_> = StepStoneAgen::new(cs.to_vec(), start, end).collect();
        (naive, fast)
    }

    #[test]
    fn unconstrained_walks_every_block() {
        let (naive, fast) = collect_both(&[], 0, 1024);
        assert_eq!(naive.len(), 16);
        assert_eq!(fast.len(), 16);
        for (i, (n, f)) in naive.iter().zip(&fast).enumerate() {
            assert_eq!(n.pa, i as u64 * 64);
            assert_eq!(n.pa, f.pa);
            assert_eq!(f.iterations, 1);
        }
    }

    #[test]
    fn single_bit_constraint() {
        let cs = vec![ParityConstraint { mask: 1 << 6, parity: true }];
        let (naive, fast) = collect_both(&cs, 0, 64 * 16);
        let pas: Vec<u64> = naive.iter().map(|s| s.pa).collect();
        assert_eq!(pas, vec![64, 192, 320, 448, 576, 704, 832, 960]);
        assert_eq!(pas, fast.iter().map(|s| s.pa).collect::<Vec<_>>());
    }

    #[test]
    fn xor_constraint_sequences_match() {
        // BG0-style constraint: b7 ⊕ b14 = 0.
        let cs = vec![ParityConstraint { mask: (1 << 7) | (1 << 14), parity: false }];
        let (naive, fast) = collect_both(&cs, 0, 1 << 16);
        assert!(!naive.is_empty());
        assert_eq!(
            naive.iter().map(|s| s.pa).collect::<Vec<_>>(),
            fast.iter().map(|s| s.pa).collect::<Vec<_>>()
        );
        // Exactly half the blocks satisfy a single XOR parity.
        assert_eq!(naive.len(), 1 << 9);
    }

    #[test]
    fn matches_naive_on_real_pim_group_walk() {
        let m = mapping_by_id(MappingId::Skylake);
        let layout = MatrixLayout::new_f32(0, 64, 1024);
        for level in PimLevel::ALL {
            let ga = GroupAnalysis::analyze(&m, level, layout);
            let pim = ga.active_pims()[0];
            for g in 0..ga.n_groups() {
                if !ga.is_admissible(pim, g) {
                    continue;
                }
                let cs = ga.constraints_for(pim, g);
                let (naive, fast) = collect_both(&cs, layout.base, layout.end());
                assert_eq!(
                    naive.iter().map(|s| s.pa).collect::<Vec<_>>(),
                    fast.iter().map(|s| s.pa).collect::<Vec<_>>(),
                    "{level:?} group {g}"
                );
                // The walk covers exactly the (pim, group) blocks.
                let expect = ga.local_cols_per_group() * ga.rows_of_group(g).len() as u64;
                assert_eq!(naive.len() as u64, expect);
            }
        }
    }

    #[test]
    fn stepstone_iterations_bounded_by_units() {
        let m = mapping_by_id(MappingId::Skylake);
        let layout = MatrixLayout::new_f32(0, 256, 4096);
        let ga = GroupAnalysis::analyze(&m, PimLevel::BankGroup, layout);
        let pim = ga.active_pims()[0];
        let g = (0..ga.n_groups()).find(|&g| ga.is_admissible(pim, g)).unwrap();
        let cs = ga.constraints_for(pim, g);
        let agen = StepStoneAgen::new(cs.clone(), layout.base, layout.end());
        let bound = agen.unit_count() as u32 + 1;
        let mut worst_naive = 0;
        for (f, n) in agen.zip(NaiveAgen::new(cs, layout.base, layout.end())) {
            assert!(f.iterations <= bound, "{} > {bound}", f.iterations);
            worst_naive = worst_naive.max(n.iterations);
        }
        // The naive generator needs long scans somewhere in the walk.
        assert!(worst_naive as usize > bound as usize);
    }

    #[test]
    fn rules_reduce_unit_count() {
        let m = mapping_by_id(MappingId::Skylake);
        let layout = MatrixLayout::new_f32(0, 1024, 4096);
        let ga = GroupAnalysis::analyze(&m, PimLevel::BankGroup, layout);
        let pim = ga.active_pims()[0];
        let g = (0..ga.n_groups()).find(|&g| ga.is_admissible(pim, g)).unwrap();
        let cs = ga.constraints_for(pim, g);
        let full = StepStoneAgen::with_rules(cs.clone(), 0, 64, AgenRules::default());
        let none = StepStoneAgen::with_rules(cs.clone(), 0, 64, AgenRules::NONE);
        assert!(full.unit_count() < none.unit_count());
        // Without rules, one unit per ID-affecting bit.
        assert_eq!(none.unit_count(), none.tables.sbits.len());
    }

    #[test]
    fn unsatisfiable_constraints_yield_empty_walks() {
        // Contradictory parities on the same mask: no address matches.
        let cs = vec![
            ParityConstraint { mask: 1 << 8, parity: true },
            ParityConstraint { mask: 1 << 8, parity: false },
        ];
        let fast: Vec<_> = StepStoneAgen::new(cs.clone(), 0, 1 << 20).collect();
        assert!(fast.is_empty());
        let naive: Vec<_> = NaiveAgen::new(cs, 0, 1 << 20).collect();
        assert!(naive.is_empty());
    }

    #[test]
    fn open_ended_walk_near_u64_top_does_not_overflow() {
        // An effectively unbounded walk (end ≥ 2^62) must not shift-
        // overflow while preparing corrector levels; the first addresses
        // still match the naive generator.
        let cs = vec![ParityConstraint { mask: (1 << 7) | (1 << 14), parity: true }];
        let fast: Vec<u64> = StepStoneAgen::new(cs.clone(), 0, u64::MAX >> 1)
            .take(64)
            .map(|s| s.pa)
            .collect();
        let naive: Vec<u64> =
            NaiveAgen::new(cs, 0, u64::MAX >> 1).take(64).map(|s| s.pa).collect();
        assert_eq!(fast, naive);
    }

    #[test]
    fn start_at_valid_address_is_emitted() {
        let cs = vec![ParityConstraint { mask: 1 << 7, parity: false }];
        let fast: Vec<_> = StepStoneAgen::new(cs.clone(), 0, 256).collect();
        assert_eq!(fast[0].pa, 0, "a satisfying start address must be emitted");
        let naive: Vec<_> = NaiveAgen::new(cs, 0, 256).collect();
        assert_eq!(naive[0].pa, 0);
    }

    fn spans_of(cs: &[ParityConstraint], start: u64, end: u64) -> Vec<AgenSpan> {
        StepStoneAgen::new(cs.to_vec(), start, end).spans().collect()
    }

    #[test]
    fn span_program_replays_real_pim_walks_exactly() {
        let m = mapping_by_id(MappingId::Skylake);
        let layout = MatrixLayout::new_f32(0, 256, 2048);
        for level in PimLevel::ALL {
            let ga = GroupAnalysis::analyze(&m, level, layout);
            for &pim in ga.active_pims().iter().take(4) {
                for g in 0..ga.n_groups() {
                    if !ga.is_admissible(pim, g) {
                        continue;
                    }
                    let cs = ga.constraints_for(pim, g);
                    let live = spans_of(&cs, layout.base, layout.end());
                    let prog: Vec<AgenSpan> =
                        StepStoneAgen::new(cs, layout.base, layout.end())
                            .span_program()
                            .collect();
                    assert_eq!(live, prog, "{level:?} pim {pim} group {g}");
                }
            }
        }
    }

    #[test]
    fn span_program_warm_walk_actually_replays() {
        // A small-period system over a multi-window range: the second walk
        // with the same key must replay, and still match the live stream.
        let cs = vec![
            ParityConstraint { mask: (1 << 7) | (1 << 9), parity: true },
            ParityConstraint { mask: (1 << 8) | (1 << 11), parity: false },
        ];
        let end = 1 << 16;
        let cold: Vec<AgenSpan> =
            StepStoneAgen::new(cs.clone(), 0, end).span_program().collect();
        let mut warm = StepStoneAgen::new(cs.clone(), 0, end).span_program();
        assert!(warm.replay_enabled());
        let warm_spans: Vec<AgenSpan> = warm.by_ref().collect();
        assert_eq!(cold, warm_spans);
        assert_eq!(warm_spans, spans_of(&cs, 0, end));
        // Every span beyond a window's first replays from the cache (the
        // first is the live boundary successor).
        assert!(
            warm.replayed_spans >= warm.live_spans && warm.replayed_spans > 0,
            "warm walk must replay window interiors ({} replayed, {} live)",
            warm.replayed_spans,
            warm.live_spans
        );
    }

    #[test]
    fn span_program_unaligned_start_and_truncated_end_stay_exact() {
        let cs = vec![
            ParityConstraint { mask: (1 << 7) | (1 << 10), parity: false },
            ParityConstraint { mask: 1 << 9, parity: true },
        ];
        // Starts not aligned to the 2^11 window, ends mid-window and
        // mid-block-run; every variant must match the live stream.
        for start_blk in [0u64, 1, 7, 31, 33] {
            for end in [1 << 15, (1 << 15) + 192, (1 << 15) + 64 * 13] {
                let start = start_blk * BLOCK_BYTES;
                let live = spans_of(&cs, start, end);
                let prog: Vec<AgenSpan> = StepStoneAgen::new(cs.clone(), start, end)
                    .span_program()
                    .collect();
                assert_eq!(live, prog, "start {start} end {end}");
            }
        }
    }

    #[test]
    fn span_program_degenerate_systems_fall_back_to_live() {
        // Unconstrained: one giant run, nothing to cache.
        let p = StepStoneAgen::new(vec![], 0, 1 << 20).span_program();
        assert!(!p.replay_enabled());
        assert_eq!(p.count(), 1);
        // Range shorter than one window (2^(lowest sbit + 1) = 256 B here):
        // live walk.
        let cs = vec![ParityConstraint { mask: (1 << 7) | (1 << 12), parity: true }];
        let p = StepStoneAgen::new(cs.clone(), 0, 192).span_program();
        assert!(!p.replay_enabled());
        assert_eq!(p.map(|s| s.start_pa).collect::<Vec<_>>(), spans_of(&cs, 0, 192)
            .iter()
            .map(|s| s.start_pa)
            .collect::<Vec<_>>());
        // Unsatisfiable: empty either way.
        let cs = vec![
            ParityConstraint { mask: 1 << 8, parity: true },
            ParityConstraint { mask: 1 << 8, parity: false },
        ];
        assert_eq!(StepStoneAgen::new(cs, 0, 1 << 20).span_program().count(), 0);
    }

    #[test]
    fn span_program_shares_skeletons_across_parities() {
        // Two PIM parities with the same masks explore disjoint residual
        // states but share one skeleton store; both must stay exact.
        let masks = [(1u64 << 7) | (1 << 13), (1u64 << 8) | (1 << 12)];
        for parity_bits in 0..4u32 {
            let cs: Vec<ParityConstraint> = masks
                .iter()
                .enumerate()
                .map(|(i, &mask)| ParityConstraint { mask, parity: parity_bits >> i & 1 == 1 })
                .collect();
            let live = spans_of(&cs, 0, 1 << 17);
            let prog: Vec<AgenSpan> =
                StepStoneAgen::new(cs, 0, 1 << 17).span_program().collect();
            assert_eq!(live, prog, "parities {parity_bits:#b}");
        }
    }

    #[test]
    fn partitioned_walk_skips_other_partitions() {
        use crate::groups::partition_constraints;
        let m = mapping_by_id(MappingId::Skylake);
        let layout = MatrixLayout::new_f32(0, 64, 1024);
        let ga = GroupAnalysis::analyze(&m, PimLevel::Device, layout);
        let pim = ga.active_pims()[0];
        let g = (0..ga.n_groups()).find(|&g| ga.is_admissible(pim, g)).unwrap();
        let mut seen = Vec::new();
        for part in 0..4u32 {
            let mut cs = ga.constraints_for(pim, g);
            cs.extend(partition_constraints(layout.mcol_mask(), 4, part));
            let walk: Vec<_> = StepStoneAgen::new(cs, layout.base, layout.end()).collect();
            assert!(!walk.is_empty());
            seen.extend(walk.iter().map(|s| s.pa));
        }
        // The four column partitions exactly tile the unpartitioned walk.
        let full: Vec<u64> = StepStoneAgen::new(ga.constraints_for(pim, g), 0, layout.end())
            .map(|s| s.pa)
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, full);
    }
}
