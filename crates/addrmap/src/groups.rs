//! Block-group analysis: the paper's key enabler for locality-preserving PIM
//! GEMM under XOR address mappings (§III-B, Fig. 4).
//!
//! Every PIM-ID bit *i* is the parity of a PA mask `m_i`. Within a power-of-
//! two matrix, split each mask into its MCOL part (bits selecting the
//! position within a row) and MROW part (bits selecting the row). The *group*
//! of a matrix row is the vector of MROW-part parities; within one group,
//! every row has exactly the same set of PIM-local column blocks, which is
//! what lets a PIM reuse `B` down a column of blocks and `C` along a row.
//!
//! This module derives, for a (mapping, PIM level, matrix) triple:
//! * the number of groups (`2^rank(MROW parts)`),
//! * local columns per group (`Kblks / 2^rank(MCOL parts)`),
//! * the input **sharing/replication** factor for `B` localization,
//! * the output **reduction** factor for partial-`C` merging,
//! * membership predicates and AGEN parity constraints.

use crate::agen::ParityConstraint;
use crate::geometry::BLOCK_BYTES;
use crate::gf2::VecSpace;
use crate::layout::MatrixLayout;
use crate::mapping::XorMapping;
use crate::pimlevel::PimLevel;

/// Result of analyzing one matrix under one mapping and PIM level.
#[derive(Debug, Clone)]
pub struct GroupAnalysis {
    pub level: PimLevel,
    pub layout: MatrixLayout,
    /// Absolute PA parity masks for each PIM-ID bit.
    pub id_masks: Vec<u64>,
    /// `id_masks[i] ∩ MCOL` — column-dependent parts.
    pub mcol_parts: Vec<u64>,
    /// `id_masks[i] ∩ MROW` — row-dependent parts.
    pub mrow_parts: Vec<u64>,
    /// Parity contribution of the (aligned) base address per ID bit.
    pub fixed: u32,
    /// Span of column-part parity vectors (dimension = `rank_col`).
    col_space: VecSpace,
    /// Span of row-part parity vectors (dimension = `rank_row`).
    row_space: VecSpace,
    /// Span of both (dimension = `rank_total`).
    total_space: VecSpace,
}

impl GroupAnalysis {
    pub fn analyze(mapping: &XorMapping, level: PimLevel, layout: MatrixLayout) -> Self {
        Self::analyze_with_masks(level, level.id_masks(mapping), layout)
    }

    /// Analyze with only a *subset* of the PIM units active by dropping the
    /// given number of high bank-group ID bits (paper §III-E / Fig. 10: "we
    /// only activate half of the BG-level PIMs"). The coloring allocator
    /// pins the dropped bits for the whole allocation, so each remaining
    /// unit serves twice the blocks.
    pub fn analyze_subset(
        mapping: &XorMapping,
        level: PimLevel,
        layout: MatrixLayout,
        drop_id_bits: u32,
    ) -> Self {
        let mut masks = level.id_masks(mapping);
        assert!(
            (drop_id_bits as usize) < masks.len(),
            "cannot drop all PIM-ID bits"
        );
        masks.truncate(masks.len() - drop_id_bits as usize);
        Self::analyze_with_masks(level, masks, layout)
    }

    /// Core analysis over an explicit PIM-ID mask list.
    pub fn analyze_with_masks(level: PimLevel, id_masks: Vec<u64>, layout: MatrixLayout) -> Self {
        layout.validate();
        let mcol = layout.mcol_mask();
        let mrow = layout.mrow_mask();
        let mcol_parts: Vec<u64> = id_masks.iter().map(|m| m & mcol).collect();
        let mrow_parts: Vec<u64> = id_masks.iter().map(|m| m & mrow).collect();
        let mut fixed = 0u32;
        for (i, m) in id_masks.iter().enumerate() {
            fixed |= (((layout.base & m).count_ones()) & 1) << i;
        }
        // Per-PA-bit ID vectors: bit b contributes `v_b[i] = m_i[b]`.
        let bit_vecs = |span: u64, parts: &[u64]| -> Vec<u64> {
            let mut vecs = Vec::new();
            let mut s = span;
            while s != 0 {
                let b = s.trailing_zeros();
                s &= s - 1;
                let mut v = 0u64;
                for (i, &p) in parts.iter().enumerate() {
                    v |= ((p >> b) & 1) << i;
                }
                vecs.push(v);
            }
            vecs
        };
        let col_vecs = bit_vecs(mcol, &mcol_parts);
        let row_vecs = bit_vecs(mrow, &mrow_parts);
        let col_space = VecSpace::from_span(&col_vecs);
        let row_space = VecSpace::from_span(&row_vecs);
        let total_space =
            VecSpace::from_span(&col_vecs.iter().chain(&row_vecs).copied().collect::<Vec<_>>());
        Self {
            level,
            layout,
            id_masks,
            mcol_parts,
            mrow_parts,
            fixed,
            col_space,
            row_space,
            total_space,
        }
    }

    pub fn rank_col(&self) -> u32 {
        self.col_space.dim() as u32
    }

    pub fn rank_row(&self) -> u32 {
        self.row_space.dim() as u32
    }

    pub fn rank_total(&self) -> u32 {
        self.total_space.dim() as u32
    }

    /// Number of block groups (paper §III-B: "determined by the number of
    /// PIM ID bits that are impacted by addresses within the matrix",
    /// excluding MCOL bits since groups span whole rows).
    pub fn n_groups(&self) -> usize {
        1 << self.rank_row()
    }

    /// PIM units that hold any block of this matrix.
    pub fn active_pim_count(&self) -> usize {
        1 << self.rank_total()
    }

    /// Matrix rows per group.
    pub fn rows_per_group(&self) -> usize {
        self.layout.rows >> self.rank_row()
    }

    /// PIM-local column blocks per (PIM, group) pair.
    pub fn local_cols_per_group(&self) -> u64 {
        self.layout.blocks_per_row() >> self.rank_col()
    }

    /// Groups in which a given active PIM participates.
    pub fn groups_per_pim(&self) -> usize {
        1 << (self.rank_row() + self.rank_col() - self.rank_total())
    }

    /// Input **sharing** factor: how many PIM units need a copy of each `B`
    /// row (the localization replication factor, Fig. 11's quantity).
    pub fn sharing(&self) -> usize {
        1 << self.rank_row()
    }

    /// Output **reduction** factor: how many partial copies of each `C` row
    /// exist across PIM units and must be merged.
    pub fn reduction(&self) -> usize {
        1 << self.rank_col()
    }

    /// `A` blocks held by each active PIM.
    pub fn blocks_per_pim(&self) -> u64 {
        self.layout.total_blocks() >> self.rank_total()
    }

    /// Distinct `B` column blocks localized to each active PIM.
    pub fn distinct_cols_per_pim(&self) -> u64 {
        self.groups_per_pim() as u64 * self.local_cols_per_group()
    }

    /// `C` rows for which a given active PIM produces partials.
    pub fn c_rows_per_pim(&self) -> usize {
        self.groups_per_pim() * self.rows_per_group()
    }

    /// Raw ID-parity vector of the MROW parts for matrix row `r`.
    pub fn row_parity_vec(&self, r: usize) -> u32 {
        let off = self.layout.base + r as u64 * self.layout.row_bytes();
        let mut v = 0u32;
        for (i, &p) in self.mrow_parts.iter().enumerate() {
            v |= (((off & p).count_ones()) & 1) << i;
        }
        v
    }

    /// Raw ID-parity vector of the MCOL parts for block column `kblk`.
    pub fn col_parity_vec(&self, kblk: u64) -> u32 {
        let off = kblk * BLOCK_BYTES;
        let mut v = 0u32;
        for (i, &p) in self.mcol_parts.iter().enumerate() {
            v |= (((off & p).count_ones()) & 1) << i;
        }
        v
    }

    /// Dense group index (0..n_groups) of matrix row `r`.
    pub fn group_of_row(&self, r: usize) -> usize {
        self.row_space
            .coords(self.row_parity_vec(r) as u64)
            .expect("row parity vector lies in the row space by construction") as usize
    }

    /// Raw row-parity vector of a dense group index.
    pub fn group_vec(&self, group: usize) -> u32 {
        let mut v = 0u64;
        for (i, &b) in self.row_space_basis().iter().enumerate() {
            if group >> i & 1 == 1 {
                v ^= b;
            }
        }
        v as u32
    }

    fn row_space_basis(&self) -> Vec<u64> {
        // Reconstruct via enumerate(): VecSpace keeps a stable basis. To keep
        // the coupling explicit we re-derive basis vectors from coords: basis
        // vector i is the member whose coords are exactly bit i.
        let all = self.row_space.enumerate();
        let mut basis = vec![0u64; self.row_space.dim()];
        for v in all {
            if let Some(c) = self.row_space.coords(v) {
                if c.count_ones() == 1 {
                    basis[c.trailing_zeros() as usize] = v;
                }
            }
        }
        basis
    }

    /// The PIM ID owning block `(row r, block column kblk)`.
    pub fn pim_of_block(&self, r: usize, kblk: u64) -> u32 {
        self.fixed ^ self.row_parity_vec(r) ^ self.col_parity_vec(kblk)
    }

    /// Is `(pim, group)` an admissible pair (does the PIM hold any blocks of
    /// this group)?
    pub fn is_admissible(&self, pim: u32, group: usize) -> bool {
        let need = (pim ^ self.fixed ^ self.group_vec(group)) as u64;
        self.col_space.contains(need)
    }

    /// PIM IDs that hold at least one block of the matrix.
    pub fn active_pims(&self) -> Vec<u32> {
        self.total_space
            .enumerate()
            .into_iter()
            .map(|v| (v as u32) ^ self.fixed)
            .collect()
    }

    /// Is the block `(row, kblk)` local to `pim` and in `group`?
    pub fn is_local(&self, pim: u32, group: usize, r: usize, kblk: u64) -> bool {
        self.group_of_row(r) == group && self.pim_of_block(r, kblk) == pim
    }

    /// Enumerate the local block columns of a (PIM, group) pair.
    pub fn local_cols(&self, pim: u32, group: usize) -> Vec<u64> {
        let need = pim ^ self.fixed ^ self.group_vec(group);
        (0..self.layout.blocks_per_row())
            .filter(|&k| self.col_parity_vec(k) == need)
            .collect()
    }

    /// Enumerate the matrix rows of a group, in ascending order.
    pub fn rows_of_group(&self, group: usize) -> Vec<usize> {
        (0..self.layout.rows).filter(|&r| self.group_of_row(r) == group).collect()
    }

    /// AGEN parity constraints selecting all blocks local to `pim` anywhere
    /// under this analysis's (possibly subset) ID masks — used to carve
    /// per-PIM buffer regions. The region-carving counterpart of
    /// [`GroupAnalysis::constraints_for`].
    pub fn pim_constraints(&self, pim: u32) -> Vec<ParityConstraint> {
        self.id_masks
            .iter()
            .enumerate()
            .map(|(i, &m)| ParityConstraint { mask: m, parity: pim >> i & 1 == 1 })
            .collect()
    }

    /// AGEN parity constraints selecting exactly the blocks of `(pim, group)`
    /// within the matrix (callers append row/column partition constraints).
    pub fn constraints_for(&self, pim: u32, group: usize) -> Vec<ParityConstraint> {
        let gvec = self.group_vec(group);
        let mut cs = Vec::with_capacity(self.id_masks.len() * 2);
        for (i, &m) in self.id_masks.iter().enumerate() {
            cs.push(ParityConstraint { mask: m, parity: pim >> i & 1 == 1 });
        }
        for (i, &p) in self.mrow_parts.iter().enumerate() {
            if p != 0 {
                cs.push(ParityConstraint { mask: p, parity: gvec >> i & 1 == 1 });
            }
        }
        cs
    }
}

/// AGEN parity constraints selecting all blocks local to `pim` anywhere (used
/// to walk per-PIM localized-buffer regions, which the coloring allocator
/// pins to a single PIM).
pub fn pim_region_constraints(
    mapping: &XorMapping,
    level: PimLevel,
    pim: u32,
) -> Vec<ParityConstraint> {
    level
        .id_masks(mapping)
        .iter()
        .enumerate()
        .map(|(i, &m)| ParityConstraint { mask: m, parity: pim >> i & 1 == 1 })
        .collect()
}

/// Single-bit constraints that pin `count_bits` of `mask`'s top bits to the
/// value `part` — used for row/column partitioning (paper §III-C: "address
/// generation must skip over those columns belonging to different
/// partitions").
pub fn partition_constraints(span_mask: u64, parts: u32, part: u32) -> Vec<ParityConstraint> {
    assert!(
        parts.is_power_of_two(),
        "partition count must be a power of two (got {parts})"
    );
    let bits = parts.trailing_zeros();
    if bits == 0 {
        return Vec::new();
    }
    assert!(
        span_mask.count_ones() >= bits,
        "cannot split a {}-bit span into {parts} partitions",
        span_mask.count_ones()
    );
    let top = 63 - span_mask.leading_zeros();
    (0..bits)
        .map(|i| {
            let bit = top - i;
            debug_assert!(span_mask >> bit & 1 == 1, "partition bits must lie in the span");
            ParityConstraint {
                mask: 1u64 << bit,
                parity: (part >> (bits - 1 - i)) & 1 == 1,
            }
        })
        .collect()
}

/// Log helper: did this (mapping, level, layout) triple leave part of the
/// matrix with zero PIM coverage? Never true by construction, but used as a
/// sanity assertion in tests and the flow.
pub fn coverage_is_exact(ga: &GroupAnalysis) -> bool {
    let total: u64 = ga.blocks_per_pim() * ga.active_pim_count() as u64;
    total == ga.layout.total_blocks()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{mapping_by_id, MappingId};

    fn skylake_bg(rows: usize, cols: usize) -> GroupAnalysis {
        let m = mapping_by_id(MappingId::Skylake);
        GroupAnalysis::analyze(&m, PimLevel::BankGroup, MatrixLayout::new_f32(0, rows, cols))
    }

    #[test]
    fn paper_fig4_example_has_four_groups() {
        // 16×512 f32 at PA 0: bits 7,14 affect BG0 and 8,9,12,13 affect CH.
        // MCOL = bits 6..10, MROW = bits 11..14 ⇒ row-dependent ID bits are
        // {14}→BG0 and {12,13}→CH ⇒ rank_row = 2 ⇒ 4 groups (Fig. 4b shows
        // GP0 and GP1).
        let ga = skylake_bg(16, 512);
        assert_eq!(ga.n_groups(), 4);
        assert_eq!(ga.rows_per_group(), 4);
        // MCOL ID bits: {7}→BG0, {8,9}→CH ⇒ rank_col = 2 ⇒ 8 of 32 blocks
        // per row are local to each PIM in a given group.
        assert_eq!(ga.rank_col(), 2);
        assert_eq!(ga.local_cols_per_group(), 8);
    }

    #[test]
    fn default_1024x4096_structure() {
        let ga = skylake_bg(1024, 4096);
        // MCOL bits 6..13: BG0 {7}, CH {8,9,12,13} ⇒ rank_col 2.
        assert_eq!(ga.rank_col(), 2);
        // MROW bits 14..23: BG0 {14}, BG1 {15,19}, RK {18,22} ⇒ rank_row 3.
        assert_eq!(ga.rank_row(), 3);
        assert_eq!(ga.n_groups(), 8);
        assert_eq!(ga.sharing(), 8);
        assert_eq!(ga.reduction(), 4);
        // 5 independent in-matrix ID dimensions but only 4 ID bits: every
        // PIM is active.
        assert_eq!(ga.rank_total(), 4);
        assert_eq!(ga.active_pim_count(), 16);
        assert!(coverage_is_exact(&ga));
    }

    #[test]
    fn every_block_has_exactly_one_pim_and_group() {
        let ga = skylake_bg(64, 512);
        let active = ga.active_pims();
        for r in 0..ga.layout.rows {
            let g = ga.group_of_row(r);
            assert!(g < ga.n_groups());
            for k in 0..ga.layout.blocks_per_row() {
                let p = ga.pim_of_block(r, k);
                assert!(active.contains(&p));
                assert!(ga.is_local(p, g, r, k));
                // No other (pim, group) claims it.
                for &q in &active {
                    if q != p {
                        assert!(!ga.is_local(q, g, r, k));
                    }
                }
            }
        }
    }

    #[test]
    fn pim_of_block_matches_mapping_decode() {
        let m = mapping_by_id(MappingId::Skylake);
        for level in PimLevel::ALL {
            let layout = MatrixLayout::new_f32(1 << 26, 128, 1024);
            let ga = GroupAnalysis::analyze(&m, level, layout);
            for r in (0..layout.rows).step_by(7) {
                for k in 0..layout.blocks_per_row() {
                    let pa = layout.block_pa(r, k);
                    assert_eq!(ga.pim_of_block(r, k), level.pim_id_of(&m, pa));
                }
            }
        }
    }

    #[test]
    fn local_cols_consistent_with_counts() {
        let ga = skylake_bg(256, 2048);
        for &p in &ga.active_pims() {
            let mut total = 0u64;
            for g in 0..ga.n_groups() {
                let cols = ga.local_cols(p, g);
                if ga.is_admissible(p, g) {
                    assert_eq!(cols.len() as u64, ga.local_cols_per_group());
                } else {
                    assert!(cols.is_empty());
                }
                total += cols.len() as u64 * ga.rows_of_group(g).len() as u64;
            }
            assert_eq!(total, ga.blocks_per_pim());
        }
    }

    #[test]
    fn sharing_varies_across_mappings_for_short_fat_matrix() {
        // Fig. 11's 128×8192 case: the mappings were designed to yield
        // different input-sharing factors at BG level.
        let layout = MatrixLayout::new_f32(0, 128, 8192);
        let sharing: Vec<usize> = MappingId::ALL
            .iter()
            .map(|&id| {
                let m = mapping_by_id(id);
                GroupAnalysis::analyze(&m, PimLevel::BankGroup, layout).sharing()
            })
            .collect();
        // Exynos lowest; Haswell/Ivy highest (paper: "the number of PIMs
        // that share the same input matrix blocks in address mappings 1 and
        // 2 are 2× greater than those with address mappings 3 and 4 and 4×
        // greater than those with address mapping 0").
        assert_eq!(sharing, vec![2, 8, 8, 4, 4]);
    }

    #[test]
    fn partition_constraints_pin_top_bits() {
        let layout = MatrixLayout::new_f32(0, 1024, 4096);
        let cs = partition_constraints(layout.mrow_mask(), 4, 0b10);
        assert_eq!(cs.len(), 2);
        // Top MROW bit is 23, next is 22; part 0b10 sets bit 23, clears 22.
        assert_eq!(cs[0].mask, 1 << 23);
        assert!(cs[0].parity);
        assert_eq!(cs[1].mask, 1 << 22);
        assert!(!cs[1].parity);
    }

    #[test]
    fn constraints_select_exactly_local_blocks() {
        let ga = skylake_bg(32, 1024);
        let pim = ga.active_pims()[0];
        for g in 0..ga.n_groups() {
            if !ga.is_admissible(pim, g) {
                continue;
            }
            let cs = ga.constraints_for(pim, g);
            let satisfied = |pa: u64| {
                cs.iter().all(|c| ((pa & c.mask).count_ones() & 1 == 1) == c.parity)
            };
            for r in 0..ga.layout.rows {
                for k in 0..ga.layout.blocks_per_row() {
                    let pa = ga.layout.block_pa(r, k);
                    assert_eq!(satisfied(pa), ga.is_local(pim, g, r, k));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot drop all PIM-ID bits")]
    fn dropping_every_id_bit_is_rejected() {
        let m = mapping_by_id(MappingId::Skylake);
        let n = PimLevel::BankGroup.id_masks(&m).len() as u32;
        GroupAnalysis::analyze_subset(
            &m,
            PimLevel::BankGroup,
            MatrixLayout::new_f32(0, 1024, 4096),
            n,
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_partition_count_is_rejected() {
        partition_constraints(0xff << 6, 3, 0);
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn undersized_partition_span_is_rejected() {
        partition_constraints(1 << 6, 4, 0);
    }
}
