//! Layout of the weight matrix `A` in physical memory.
//!
//! StepStone keeps `A` contiguous in virtual and physical space in row-major
//! order (paper §III-B); all block-group math is driven by which address bits
//! select the position *within* a matrix row (MCOL) and which select the row
//! (MROW). Following the paper's footnote 2, dimensions are powers of two
//! (non-power-of-two GEMMs are decomposed upstream).

use crate::geometry::{BLOCK_BYTES, BLOCK_SHIFT};
use serde::{Deserialize, Serialize};

/// A row-major `rows × cols` matrix of `elem_bytes`-sized elements at
/// physical base address `base`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatrixLayout {
    pub base: u64,
    pub rows: usize,
    pub cols: usize,
    pub elem_bytes: usize,
}

impl MatrixLayout {
    /// Standard f32 matrix. Panics unless dimensions are powers of two, each
    /// row spans at least one cache block, and `base` is naturally aligned to
    /// the full matrix size (which the paper's coloring allocator provides).
    pub fn new_f32(base: u64, rows: usize, cols: usize) -> Self {
        let l = Self { base, rows, cols, elem_bytes: 4 };
        l.validate();
        l
    }

    pub fn validate(&self) {
        assert!(self.rows.is_power_of_two(), "rows must be a power of two");
        assert!(self.cols.is_power_of_two(), "cols must be a power of two");
        assert!(
            self.elem_bytes.is_power_of_two(),
            "element size must be a power of two (got {})",
            self.elem_bytes
        );
        assert!(
            self.row_bytes() >= BLOCK_BYTES,
            "a matrix row must span at least one cache block"
        );
        assert_eq!(
            self.base & (self.total_bytes() - 1),
            0,
            "base must be naturally aligned to the matrix size"
        );
    }

    pub fn row_bytes(&self) -> u64 {
        (self.cols * self.elem_bytes) as u64
    }

    pub fn total_bytes(&self) -> u64 {
        self.row_bytes() * self.rows as u64
    }

    /// Cache blocks per matrix row.
    pub fn blocks_per_row(&self) -> u64 {
        self.row_bytes() / BLOCK_BYTES
    }

    /// Total cache blocks in the matrix.
    pub fn total_blocks(&self) -> u64 {
        self.total_bytes() / BLOCK_BYTES
    }

    /// Elements per cache block (16 for f32).
    pub fn elems_per_block(&self) -> usize {
        BLOCK_BYTES as usize / self.elem_bytes
    }

    /// Mask of PA bits that select the position within a matrix row (MCOL),
    /// restricted to block-address bits.
    pub fn mcol_mask(&self) -> u64 {
        (self.row_bytes() - 1) & !(BLOCK_BYTES - 1)
    }

    /// Mask of PA bits that select the matrix row (MROW).
    pub fn mrow_mask(&self) -> u64 {
        (self.total_bytes() - 1) & !(self.row_bytes() - 1)
    }

    /// Physical address of the block holding `(row, block-column kblk)`.
    pub fn block_pa(&self, row: usize, kblk: u64) -> u64 {
        debug_assert!(row < self.rows && kblk < self.blocks_per_row());
        self.base + row as u64 * self.row_bytes() + kblk * BLOCK_BYTES
    }

    /// Inverse of [`Self::block_pa`]: `(row, kblk)` of an in-matrix address.
    pub fn locate(&self, pa: u64) -> (usize, u64) {
        debug_assert!(self.contains(pa));
        let off = pa - self.base;
        ((off / self.row_bytes()) as usize, (off % self.row_bytes()) >> BLOCK_SHIFT)
    }

    pub fn contains(&self, pa: u64) -> bool {
        pa >= self.base && pa < self.base + self.total_bytes()
    }

    /// End address (exclusive).
    pub fn end(&self) -> u64 {
        self.base + self.total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_partition_the_span() {
        let l = MatrixLayout::new_f32(0, 1024, 4096);
        assert_eq!(l.row_bytes(), 16384);
        assert_eq!(l.blocks_per_row(), 256);
        assert_eq!(l.mcol_mask(), 0x3FC0); // bits 6..13
        assert_eq!(l.mrow_mask(), 0xFFC000); // bits 14..23
        assert_eq!(l.mcol_mask() & l.mrow_mask(), 0);
        assert_eq!(
            l.mcol_mask() | l.mrow_mask() | (BLOCK_BYTES - 1),
            l.total_bytes() - 1
        );
    }

    #[test]
    fn block_pa_roundtrip() {
        let base = 1u64 << 30;
        let l = MatrixLayout::new_f32(base, 64, 512);
        for row in [0usize, 1, 63] {
            for kblk in [0u64, 1, 31] {
                let pa = l.block_pa(row, kblk);
                assert!(l.contains(pa));
                assert_eq!(l.locate(pa), (row, kblk));
            }
        }
        assert!(!l.contains(base + l.total_bytes()));
    }

    #[test]
    fn paper_example_16x512() {
        // Fig. 4 example: 16×512 4-byte words starting at PA 0 span the lower
        // 15 address bits; a row is 2 KiB.
        let l = MatrixLayout::new_f32(0, 16, 512);
        assert_eq!(l.total_bytes(), 1 << 15);
        assert_eq!(l.row_bytes(), 2048);
        assert_eq!(l.mcol_mask(), 0x7C0); // bits 6..10
        assert_eq!(l.mrow_mask(), 0x7800); // bits 11..14
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn misaligned_base_rejected() {
        MatrixLayout::new_f32(4096, 1024, 4096);
    }

    #[test]
    #[should_panic(expected = "rows must be a power of two")]
    fn non_pow2_rows_are_rejected() {
        MatrixLayout::new_f32(0, 3, 64);
    }

    #[test]
    #[should_panic(expected = "element size must be a power of two")]
    fn non_pow2_element_size_is_rejected() {
        let l = MatrixLayout { base: 0, rows: 4, cols: 64, elem_bytes: 3 };
        l.validate();
    }

    #[test]
    #[should_panic(expected = "at least one cache block")]
    fn sub_block_rows_are_rejected() {
        MatrixLayout::new_f32(0, 4, 4);
    }

}
