//! DRAM system organization (channels, ranks, bank groups, banks, rows,
//! columns) at cache-block granularity.

use serde::{Deserialize, Serialize};

/// Size of one cache block / DRAM burst transfer (64 B = BL8 on a 64-bit bus).
pub const BLOCK_BYTES: u64 = 64;
/// log2 of [`BLOCK_BYTES`].
pub const BLOCK_SHIFT: u32 = 6;

/// Physical DRAM organization. All counts are powers of two.
///
/// The default matches the paper's evaluated system (§IV, Fig. 4a): the
/// Skylake mapping has one channel bit and one rank bit, and DDR4 devices
/// have 4 bank groups of 4 banks, giving 2 CH-level, 4 DV-level, and 16
/// BG-level PIM units ("for StepStone-BG there are 16 active PIMs", §V-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Geometry {
    pub channels: u32,
    pub ranks_per_channel: u32,
    pub bankgroups_per_rank: u32,
    pub banks_per_bankgroup: u32,
    pub rows_per_bank: u32,
    /// Cache blocks per DRAM row (per rank). 8 KiB rows → 128 blocks.
    pub blocks_per_row: u32,
}

impl Default for Geometry {
    fn default() -> Self {
        Self {
            channels: 2,
            ranks_per_channel: 2,
            bankgroups_per_rank: 4,
            banks_per_bankgroup: 4,
            rows_per_bank: 32768,
            blocks_per_row: 128,
        }
    }
}

impl Geometry {
    /// Bits needed for each coordinate field.
    pub fn channel_bits(&self) -> u32 {
        self.channels.trailing_zeros()
    }
    pub fn rank_bits(&self) -> u32 {
        self.ranks_per_channel.trailing_zeros()
    }
    pub fn bankgroup_bits(&self) -> u32 {
        self.bankgroups_per_rank.trailing_zeros()
    }
    pub fn bank_bits(&self) -> u32 {
        self.banks_per_bankgroup.trailing_zeros()
    }
    pub fn row_bits(&self) -> u32 {
        self.rows_per_bank.trailing_zeros()
    }
    pub fn column_bits(&self) -> u32 {
        self.blocks_per_row.trailing_zeros()
    }

    /// Total physical-address bits above the block offset.
    pub fn block_addr_bits(&self) -> u32 {
        self.channel_bits()
            + self.rank_bits()
            + self.bankgroup_bits()
            + self.bank_bits()
            + self.row_bits()
            + self.column_bits()
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        (self.channels as u64)
            * (self.ranks_per_channel as u64)
            * (self.bankgroups_per_rank as u64)
            * (self.banks_per_bankgroup as u64)
            * (self.rows_per_bank as u64)
            * (self.blocks_per_row as u64)
            * BLOCK_BYTES
    }

    /// Total banks across the whole system.
    pub fn total_banks(&self) -> u32 {
        self.channels
            * self.ranks_per_channel
            * self.bankgroups_per_rank
            * self.banks_per_bankgroup
    }

    fn assert_pow2(v: u32, what: &str) {
        assert!(v.is_power_of_two(), "{what} must be a power of two, got {v}");
    }

    /// Panic unless every field is a power of two.
    pub fn validate(&self) {
        Self::assert_pow2(self.channels, "channels");
        Self::assert_pow2(self.ranks_per_channel, "ranks_per_channel");
        Self::assert_pow2(self.bankgroups_per_rank, "bankgroups_per_rank");
        Self::assert_pow2(self.banks_per_bankgroup, "banks_per_bankgroup");
        Self::assert_pow2(self.rows_per_bank, "rows_per_bank");
        Self::assert_pow2(self.blocks_per_row, "blocks_per_row");
    }
}

/// A fully decoded DRAM coordinate for one cache block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DramCoord {
    pub channel: u32,
    pub rank: u32,
    pub bankgroup: u32,
    pub bank: u32,
    pub row: u32,
    /// Column index in cache-block units within the row.
    pub col: u32,
}

impl DramCoord {
    /// Flat index of this coordinate's bank within the whole system.
    pub fn bank_index(&self, g: &Geometry) -> usize {
        (((self.channel * g.ranks_per_channel + self.rank) * g.bankgroups_per_rank
            + self.bankgroup)
            * g.banks_per_bankgroup
            + self.bank) as usize
    }

    /// Flat index of this coordinate's bank group within the whole system.
    pub fn bankgroup_index(&self, g: &Geometry) -> usize {
        ((self.channel * g.ranks_per_channel + self.rank) * g.bankgroups_per_rank
            + self.bankgroup) as usize
    }

    /// Flat index of this coordinate's rank within the whole system.
    pub fn rank_index(&self, g: &Geometry) -> usize {
        (self.channel * g.ranks_per_channel + self.rank) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_matches_paper() {
        let g = Geometry::default();
        g.validate();
        assert_eq!(g.channels * g.ranks_per_channel * g.bankgroups_per_rank, 16);
        assert_eq!(g.block_addr_bits(), 1 + 1 + 2 + 2 + 15 + 7);
        // 2 ch × 2 rk × 16 banks × 32768 rows × 8 KiB = 16 GiB
        assert_eq!(g.capacity_bytes(), 16 << 30);
        assert_eq!(g.total_banks(), 64);
    }

    #[test]
    fn bank_indexing_is_dense_and_unique() {
        let g = Geometry::default();
        let mut seen = std::collections::HashSet::new();
        for channel in 0..g.channels {
            for rank in 0..g.ranks_per_channel {
                for bankgroup in 0..g.bankgroups_per_rank {
                    for bank in 0..g.banks_per_bankgroup {
                        let c = DramCoord { channel, rank, bankgroup, bank, row: 0, col: 0 };
                        assert!(seen.insert(c.bank_index(&g)));
                        assert!(c.bank_index(&g) < g.total_banks() as usize);
                    }
                }
            }
        }
        assert_eq!(seen.len(), g.total_banks() as usize);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn validate_rejects_non_pow2() {
        let g = Geometry { channels: 3, ..Geometry::default() };
        g.validate();
    }
}
