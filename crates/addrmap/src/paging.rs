//! VA→PA paging: page-size-parameterized address translation for the
//! physically-contiguous-arena assumption the paper (and the rest of this
//! reproduction) bakes in.
//!
//! The simulator's walks, region plans, and span programs all operate on
//! *virtual* addresses — the OS-facing view in which the weight matrix and
//! the per-PIM buffer arenas are contiguous. Real deployments translate
//! through 4KB–1GB pages, and a non-identity allocation fragments the GF(2)
//! region algebra: two blocks that share a (bank, row) window key in the
//! virtual view keep sharing one *iff they sit in the same page*, because
//! the mapping's decode is XOR-linear (`decode(frame | off) =
//! decode(frame) ^ decode(off)`) and frames only differ above the page
//! offset. That single fact is what lets the whole region algebra compose
//! per page: every run promise is clipped at the next page boundary
//! ([`RegionPlan::rank_below`] for region fills, plain arithmetic for the
//! contiguous A-walk spans), and each step's address is translated through
//! the [`PageMap`] — no table or plan is rebuilt.
//!
//! Three allocation policies bracket the realism range:
//!
//! * [`PagePolicy::Identity`] — frame == page; translation is the
//!   identity. With any page size this is bit-identical to the contiguous
//!   baseline (CI-gated), which is also the provable behavior of *any*
//!   policy once the page size reaches the arena size.
//! * [`PagePolicy::Permuted`] — frames are an affine odd-multiplier
//!   permutation of the page number within a scramble window: pages land
//!   strided, adjacency is lost, but the pattern is regular (a buddy-style
//!   allocator under light fragmentation).
//! * [`PagePolicy::Fragmented`] — frames are a xorshift-multiply
//!   bijection of the page number within the window: a long-running
//!   allocator's free-list order, destroying cross-page locality entirely.
//!
//! Both non-identity policies permute page numbers *within an aligned
//! window of `1 << window_log2` pages* (high VPN bits pass through), so the
//! map is a global bijection by construction — distinct arenas can never
//! collide — and every frame stays inside the same
//! `page_bytes << window_log2`-aligned super-region as its page.
//!
//! # Page coloring
//!
//! StepStone's execution model requires each PIM to own its localized
//! data: the region algebra pins the PIM-ID parities (channel, rank, bank
//! group) of every block, and the engine shards phases per channel. A
//! translation that moved a page onto frames with different ID parities
//! would migrate blocks out of their PIM's bank partition — which no real
//! deployment would tolerate either; accelerator stacks demand ID-colored
//! page allocation (the NUMA/cache-coloring discipline). [`PageMap`]
//! therefore permutes frames only within the GF(2) *nullspace* of the
//! preserved parity masks over the window bits ([`PageMap::for_mapping`]
//! preserves every channel/rank/bank-group mask): rows, banks, and columns
//! scatter freely across pages — fragmenting run locality, which is the
//! effect under study — while every page stays inside its PIM partition.
//! The permutation splits the window coordinates into parity-syndrome and
//! nullspace components and scrambles only the latter, so it stays a
//! bijection.
//!
//! The PTW model is the simple identity-mapped walk of hwgc-soft's TLB
//! journey: page-table entries live in identity-mapped memory and cost a
//! flat `ptw_cycles` AGEN iterations on each page *transition* of a step
//! stream (no TLB is modeled; a stream re-walks when it leaves its current
//! page). `ptw_cycles = 0` (the default) keeps identity-policy timing
//! bit-identical.

use crate::geometry::BLOCK_BYTES;
use crate::mapping::XorMapping;
use crate::region::RegionPlan;
use serde::{Deserialize, Serialize};

/// Frame-allocation policy of a [`PageMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PagePolicy {
    /// Frame number == page number (translation is the identity).
    Identity,
    /// Affine odd-multiplier permutation of the page number within the
    /// scramble window: regular striding, no adjacency.
    Permuted,
    /// Xorshift-multiply bijection of the page number within the scramble
    /// window: free-list-order allocation, no cross-page locality.
    Fragmented,
}

/// Parameters of the VA→PA layer, threaded through
/// `SystemConfig::paging`. Hash/Eq so session keys can include it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PagingConfig {
    /// Page size in bytes (power of two, at least one cache block).
    pub page_bytes: u64,
    pub policy: PagePolicy,
    /// Non-identity policies permute page numbers within aligned windows
    /// of `1 << window_log2` pages (high VPN bits pass through).
    pub window_log2: u32,
    /// AGEN iterations charged on each page transition of a step stream
    /// (the identity-mapped PTW; 0 = translation only).
    pub ptw_cycles: u32,
    /// Permutation seed for the non-identity policies.
    pub seed: u64,
}

impl PagingConfig {
    pub const DEFAULT_WINDOW_LOG2: u32 = 8;

    pub fn identity(page_bytes: u64) -> Self {
        Self {
            page_bytes,
            policy: PagePolicy::Identity,
            window_log2: Self::DEFAULT_WINDOW_LOG2,
            ptw_cycles: 0,
            seed: 0,
        }
    }

    pub fn permuted(page_bytes: u64, seed: u64) -> Self {
        Self { policy: PagePolicy::Permuted, seed, ..Self::identity(page_bytes) }
    }

    pub fn fragmented(page_bytes: u64, seed: u64) -> Self {
        Self { policy: PagePolicy::Fragmented, seed, ..Self::identity(page_bytes) }
    }

    pub fn with_ptw(mut self, cycles: u32) -> Self {
        self.ptw_cycles = cycles;
        self
    }
}

/// The VA→PA translation map: a pure function of its [`PagingConfig`]
/// plus the preserved parity masks (no page table is materialized —
/// frames are computed arithmetically), cheap to clone into every step
/// stream.
#[derive(Debug, Clone)]
pub struct PageMap {
    cfg: PagingConfig,
    page_shift: u32,
    page_mask: u64,
    /// Mask over the low VPN bits the policy may permute.
    win_mask: u64,
    /// Nullspace basis of the preserved parity constraints over the
    /// window bits: basis vector `j` has bit `free_bits[j]` set and no
    /// other free bit, so the nullspace coordinates of any window value
    /// are simply its free bits. The permutation scrambles only these
    /// coordinates — every preserved parity is untouched.
    null_basis: Vec<u64>,
    free_bits: Vec<u32>,
    /// Odd multipliers derived from the seed (affine / scramble rounds).
    mul_a: u64,
    mul_b: u64,
    /// Additive constant of the affine (`Permuted`) policy.
    add_c: u64,
}

impl PageMap {
    /// Validating constructor with explicit parity preservation: each mask
    /// in `preserved` is a PA-bit parity the translation must leave
    /// unchanged for every address (page coloring; see the module docs).
    /// Errors on degenerate configurations (non-power-of-two or sub-block
    /// page size, oversized window) instead of producing a map that
    /// silently aliases frames.
    pub fn try_new_preserving(cfg: PagingConfig, preserved: &[u64]) -> Result<Self, String> {
        if !cfg.page_bytes.is_power_of_two() {
            return Err(format!("page_bytes {:#x} is not a power of two", cfg.page_bytes));
        }
        if cfg.page_bytes < BLOCK_BYTES {
            return Err(format!(
                "page_bytes {} is smaller than one cache block ({BLOCK_BYTES})",
                cfg.page_bytes
            ));
        }
        if cfg.window_log2 > 24 {
            return Err(format!("window_log2 {} > 24 (window would not tabulate)", cfg.window_log2));
        }
        let page_shift = cfg.page_bytes.trailing_zeros();
        if page_shift + cfg.window_log2 >= 63 {
            return Err(format!(
                "page_bytes {:#x} with window_log2 {} overflows the address space",
                cfg.page_bytes, cfg.window_log2
            ));
        }
        let w = cfg.window_log2;
        let win_mask = (1u64 << w) - 1;

        // Restrict the preserved masks to the window bits (bits below the
        // page offset and above the window never change, so only their
        // window slice constrains the permutation), then Gauss-eliminate
        // to find the pivot columns and the standard nullspace basis: one
        // vector per free column, with a 1 in that free column and its
        // pivot-column corrections. Unit pivot-column vectors complete the
        // basis, so the free bits of any window value *are* its nullspace
        // coordinates.
        let mut rows: Vec<u64> =
            preserved.iter().map(|&m| (m >> page_shift) & win_mask).filter(|&r| r != 0).collect();
        let mut pivot_of_row: Vec<u32> = Vec::new();
        let mut r_ix = 0usize;
        for col in (0..w).rev() {
            let Some(p) = (r_ix..rows.len()).find(|&i| rows[i] >> col & 1 == 1) else { continue };
            rows.swap(r_ix, p);
            let head = rows[r_ix];
            for (i, r) in rows.iter_mut().enumerate() {
                if i != r_ix && *r >> col & 1 == 1 {
                    *r ^= head;
                }
            }
            pivot_of_row.push(col);
            r_ix += 1;
        }
        rows.truncate(r_ix);
        let is_pivot = |c: u32| pivot_of_row.contains(&c);
        let mut null_basis = Vec::new();
        let mut free_bits = Vec::new();
        for c in 0..w {
            if is_pivot(c) {
                continue;
            }
            let mut v = 1u64 << c;
            for (r, &pc) in rows.iter().zip(&pivot_of_row) {
                if r >> c & 1 == 1 {
                    v |= 1u64 << pc;
                }
            }
            null_basis.push(v);
            free_bits.push(c);
        }

        // SplitMix64-style seed expansion; multipliers forced odd so both
        // rounds are bijections mod 2^d.
        let mix = |x: u64| {
            let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Ok(Self {
            cfg,
            page_shift,
            page_mask: cfg.page_bytes - 1,
            win_mask,
            null_basis,
            free_bits,
            mul_a: mix(cfg.seed) | 1,
            mul_b: mix(cfg.seed ^ 0x5851_F42D_4C95_7F2D) | 1,
            add_c: mix(cfg.seed.wrapping_add(1)),
        })
    }

    /// Unconstrained map (no parities preserved — the full window
    /// scrambles). Suitable for standalone locality studies; simulations
    /// driving the engine need [`PageMap::for_mapping`]'s coloring.
    pub fn try_new(cfg: PagingConfig) -> Result<Self, String> {
        Self::try_new_preserving(cfg, &[])
    }

    /// The production constructor: preserve the PIM-ID parities (every
    /// channel, rank, and bank-group mask) of `mapping`, so translation
    /// never moves a block out of its PIM's bank partition. Rows, banks,
    /// and columns still scatter across pages.
    pub fn try_for_mapping(cfg: PagingConfig, mapping: &XorMapping) -> Result<Self, String> {
        use crate::mapping::Field;
        let mut preserved = Vec::new();
        for f in [Field::Channel, Field::Rank, Field::BankGroup] {
            preserved.extend_from_slice(mapping.field_masks(f));
        }
        Self::try_new_preserving(cfg, &preserved)
    }

    /// Panicking form of [`PageMap::try_for_mapping`] for static
    /// configurations.
    ///
    /// # Panics
    /// On the same degenerate inputs [`PageMap::try_new_preserving`]
    /// rejects, with the rejection reason in the message.
    pub fn for_mapping(cfg: PagingConfig, mapping: &XorMapping) -> Self {
        Self::try_for_mapping(cfg, mapping)
            .unwrap_or_else(|e| panic!("invalid PagingConfig: {e}"))
    }

    /// Panicking form of [`PageMap::try_new`] (unconstrained).
    ///
    /// # Panics
    /// On the same degenerate inputs [`PageMap::try_new`] rejects, with the
    /// rejection reason in the message.
    pub fn new(cfg: PagingConfig) -> Self {
        Self::try_new(cfg).unwrap_or_else(|e| panic!("invalid PagingConfig: {e}"))
    }

    #[inline]
    pub fn config(&self) -> &PagingConfig {
        &self.cfg
    }

    #[inline]
    pub fn page_bytes(&self) -> u64 {
        self.cfg.page_bytes
    }

    /// Low-address bits that survive translation unchanged.
    #[inline]
    pub fn page_mask(&self) -> u64 {
        self.page_mask
    }

    /// AGEN iterations charged per page transition.
    #[inline]
    pub fn ptw_cycles(&self) -> u32 {
        self.cfg.ptw_cycles
    }

    /// Whether translation is the identity function (fast-path guard; note
    /// a PTW cost may still apply).
    #[inline]
    pub fn is_identity(&self) -> bool {
        self.cfg.policy == PagePolicy::Identity
    }

    /// Whether this map changes a step stream's behavior at all: either
    /// translation moves addresses, or page transitions carry a PTW cost.
    /// When false, streams skip page clipping and translation entirely —
    /// the bit-identical contiguous path.
    #[inline]
    pub fn affects_stream(&self) -> bool {
        !self.is_identity() || self.cfg.ptw_cycles > 0
    }

    /// Virtual page number of `va` (page-transition detection).
    #[inline]
    pub fn vpn(&self, va: u64) -> u64 {
        va >> self.page_shift
    }

    /// Translate a virtual address: frame base of its page, plus the
    /// unchanged page offset.
    #[inline]
    pub fn translate(&self, va: u64) -> u64 {
        if self.cfg.policy == PagePolicy::Identity {
            return va;
        }
        (self.frame(va >> self.page_shift) << self.page_shift) | (va & self.page_mask)
    }

    /// Physical frame number of virtual page `vpn`: high bits pass
    /// through; within the window only the *nullspace coordinates* of the
    /// preserved parities (the free bits) are permuted per policy.
    ///
    /// With the free coordinates of `lo` gathered into `a` (one bit per
    /// nullspace basis vector) and `p = perm(a)` the policy's `d`-bit
    /// permutation, the new window value is `lo ⊕ N·(a ⊕ p)` where `N·c`
    /// XORs the basis vectors selected by `c`. Each basis vector carries
    /// exactly its own free bit, so the result's free coordinates are `p`
    /// (bijective), and `N·c` is in the nullspace of every preserved mask,
    /// so all preserved parities are untouched. With no preserved masks
    /// this degenerates to permuting the whole window.
    #[inline]
    pub fn frame(&self, vpn: u64) -> u64 {
        if self.cfg.policy == PagePolicy::Identity {
            return vpn;
        }
        let d = self.free_bits.len() as u32;
        if d == 0 {
            // The preserved parities pin every window bit: nothing may move.
            return vpn;
        }
        let d_mask = (1u64 << d) - 1;
        let lo = vpn & self.win_mask;
        let mut a = 0u64;
        for (j, &fb) in self.free_bits.iter().enumerate() {
            a |= (lo >> fb & 1) << j;
        }
        let p = match self.cfg.policy {
            PagePolicy::Identity => a,
            PagePolicy::Permuted => a.wrapping_mul(self.mul_a).wrapping_add(self.add_c) & d_mask,
            PagePolicy::Fragmented => scramble(a, d, self.mul_a, self.mul_b),
        };
        let mut delta = 0u64;
        let mut c = a ^ p;
        while c != 0 {
            delta ^= self.null_basis[c.trailing_zeros() as usize];
            c &= c - 1;
        }
        vpn ^ delta
    }
}

/// Xorshift-multiply bijection on the low `w` bits: each `x ^= x >> k`
/// (k ≥ 1) and each odd multiply mod 2^w is invertible, so the
/// composition is too.
#[inline]
fn scramble(mut x: u64, w: u32, mul_a: u64, mul_b: u64) -> u64 {
    let mask = (1u64 << w) - 1;
    let k = (w / 2).max(1);
    x ^= x >> k;
    x = x.wrapping_mul(mul_a) & mask;
    x ^= x >> k;
    x = x.wrapping_mul(mul_b) & mask;
    x ^= x >> k;
    x
}

/// Same-(bank, row) key-run statistics of a region walk after VA→PA
/// translation — the page-locality metric behind the `paging` section of
/// `BENCH_sim.json` and `docs/perf.md`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PagedRunStats {
    /// Blocks sampled.
    pub blocks: u64,
    /// Same-key runs observed over the sample.
    pub runs: u64,
    /// Run boundaries the paging layer *introduced*: the translated keys
    /// differ while the untranslated ones still matched (only possible at
    /// a page crossing).
    pub page_splits: u64,
}

impl PagedRunStats {
    pub fn mean_run_len(&self) -> f64 {
        self.blocks as f64 / self.runs.max(1) as f64
    }
}

/// Walk the first `sample` blocks of `plan` in ascending order, translate
/// each through `map`, and tabulate the same-(bank, row) runs of the
/// *translated* stream under `mapping`. With an identity map this
/// reproduces the plan's native key-run structure (cf.
/// [`RegionPlan::key_runs`]); non-identity maps can only break runs at
/// page crossings (within one page, key equality is translation-invariant
/// because decode is XOR-linear), so the ratio of the two mean run lengths
/// is exactly how much block-grouping locality the page size preserves.
pub fn paged_run_stats(
    map: &PageMap,
    plan: &RegionPlan,
    mapping: &XorMapping,
    sample: u64,
) -> PagedRunStats {
    let g = mapping.geometry();
    let mut stats = PagedRunStats::default();
    let mut prev_key = None;
    let mut prev_native = None;
    for va in plan.iter().take(sample as usize) {
        let pa = map.translate(va);
        let c = mapping.decode(pa);
        let key = (c.bank_index(g), c.row);
        let nc = mapping.decode(va);
        let native = (nc.bank_index(g), nc.row);
        if prev_key != Some(key) {
            stats.runs += 1;
            if prev_native == Some(native) {
                stats.page_splits += 1;
            }
        }
        prev_key = Some(key);
        prev_native = Some(native);
        stats.blocks += 1;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groups::GroupAnalysis;
    use crate::layout::MatrixLayout;
    use crate::pimlevel::PimLevel;
    use crate::presets::{mapping_by_id, MappingId};

    #[test]
    fn identity_translation_is_the_identity() {
        let map = PageMap::new(PagingConfig::identity(4096));
        for va in [0u64, 64, 4096, 1 << 33, (1 << 33) + 4032] {
            assert_eq!(map.translate(va), va);
        }
        assert!(map.is_identity());
    }

    #[test]
    fn non_identity_policies_are_window_bijections() {
        for policy in [
            PagingConfig::permuted(4096, 7),
            PagingConfig::fragmented(4096, 7),
            PagingConfig::fragmented(1 << 16, 12345),
        ] {
            let map = PageMap::new(policy);
            let n = 1u64 << policy.window_log2;
            let mut seen = vec![false; n as usize];
            // Window 3: the permutation must hit every frame in-window once.
            for p in 0..n {
                let vpn = 3 * n + p;
                let f = map.frame(vpn);
                assert_eq!(f & !(n - 1), 3 * n, "frame leaves its window");
                let slot = (f & (n - 1)) as usize;
                assert!(!seen[slot], "frame collision at vpn {vpn}");
                seen[slot] = true;
            }
        }
    }

    #[test]
    fn colored_maps_preserve_pim_id_parities_yet_still_move_frames() {
        let mapping = mapping_by_id(MappingId::Skylake);
        for cfg in [PagingConfig::fragmented(4096, 7), PagingConfig::permuted(4096, 3)] {
            let map = PageMap::for_mapping(cfg, &mapping);
            let mut moved = 0u64;
            for i in 0..2048u64 {
                let va = (1u64 << 33) + i * 4096 + (i % 64) * 64;
                let pa = map.translate(va);
                let a = mapping.decode(va);
                let b = mapping.decode(pa);
                assert_eq!(a.channel, b.channel, "channel moved at va {va:#x}");
                assert_eq!(a.rank, b.rank, "rank moved at va {va:#x}");
                assert_eq!(a.bankgroup, b.bankgroup, "bank group moved at va {va:#x}");
                if pa != va {
                    moved += 1;
                }
            }
            assert!(moved > 1000, "coloring must still permute frames (moved {moved})");
        }
    }

    #[test]
    fn colored_maps_are_still_window_bijections() {
        let mapping = mapping_by_id(MappingId::Skylake);
        let cfg = PagingConfig::fragmented(4096, 99);
        let map = PageMap::for_mapping(cfg, &mapping);
        let n = 1u64 << cfg.window_log2;
        let mut seen = vec![false; n as usize];
        for p in 0..n {
            let f = map.frame(5 * n + p);
            assert_eq!(f & !(n - 1), 5 * n, "frame leaves its window");
            let slot = (f & (n - 1)) as usize;
            assert!(!seen[slot], "frame collision at page {p}");
            seen[slot] = true;
        }
    }

    #[test]
    fn translation_preserves_page_offsets() {
        let map = PageMap::new(PagingConfig::fragmented(4096, 99));
        for va in [64u64, 4095, 4096 + 640, (1 << 33) + 1337 * 64] {
            let pa = map.translate(va);
            assert_eq!(pa & 4095, va & 4095);
        }
    }

    #[test]
    fn degenerate_configs_are_rejected_with_context() {
        let bad = |cfg: PagingConfig| PageMap::try_new(cfg).unwrap_err();
        assert!(bad(PagingConfig::identity(3000)).contains("power of two"));
        assert!(bad(PagingConfig::identity(32)).contains("cache block"));
        let mut huge = PagingConfig::identity(4096);
        huge.window_log2 = 25;
        assert!(bad(huge).contains("window_log2"));
    }

    #[test]
    #[should_panic(expected = "invalid PagingConfig")]
    fn panicking_constructor_names_the_reason() {
        PageMap::new(PagingConfig::identity(3000));
    }

    fn demo_plan() -> (RegionPlan, XorMapping) {
        let mapping = mapping_by_id(MappingId::Skylake);
        let layout = MatrixLayout::new_f32(1 << 30, 512, 512);
        let ga = GroupAnalysis::analyze(&mapping, PimLevel::BankGroup, layout);
        let pim = ga.active_pims()[0];
        (RegionPlan::carve(ga.pim_constraints(pim), 1 << 33, 4096), mapping)
    }

    #[test]
    fn identity_map_reproduces_native_key_runs() {
        let (plan, mapping) = demo_plan();
        let map = PageMap::new(PagingConfig::identity(4096));
        let stats = paged_run_stats(&map, &plan, &mapping, 4096);
        let native = plan.key_runs(&mapping).expect("tabulable demo plan");
        let ratio = stats.mean_run_len() / native.mean_run_len();
        // The sample covers whole periods, so the means agree closely.
        assert!((0.9..=1.1).contains(&ratio), "ratio {ratio}");
        assert_eq!(stats.page_splits, 0, "identity map cannot split runs");
    }

    #[test]
    fn larger_pages_preserve_more_locality() {
        let (plan, mapping) = demo_plan();
        let mean = |page: u64| {
            let map = PageMap::new(PagingConfig::fragmented(page, 42));
            paged_run_stats(&map, &plan, &mapping, 4096).mean_run_len()
        };
        let m4k = mean(4096);
        let m2m = mean(2 << 20);
        let m1g = mean(1 << 30);
        assert!(m4k <= m2m + 1e-9, "4K {m4k} vs 2M {m2m}");
        assert!(m2m <= m1g + 1e-9, "2M {m2m} vs 1G {m1g}");
        // At 1GB the whole sampled arena sits inside one page: native runs.
        let native = plan.key_runs(&mapping).expect("tabulable").mean_run_len();
        assert!((m1g / native - 1.0).abs() < 0.15, "1G {m1g} vs native {native}");
    }
}
