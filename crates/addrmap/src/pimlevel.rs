//! PIM placement levels (channel / device / bank group) and PIM-ID extraction.
//!
//! A PIM unit owns all cache blocks whose DRAM coordinate matches its
//! position at the chosen level (paper §III-A, Fig. 3a). The *PIM ID* of a
//! block is therefore a parity vector over physical-address bits, obtained
//! directly from the mapping's coordinate-bit masks.

use crate::geometry::Geometry;
use crate::mapping::{Field, XorMapping};
use serde::{Deserialize, Serialize};

/// Where PIM units are integrated (paper Fig. 3a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PimLevel {
    /// StepStone-CH: one PIM per memory channel.
    Channel,
    /// StepStone-DV: one PIM per rank (buffer-chip level).
    Device,
    /// StepStone-BG: one PIM per bank group in every rank.
    BankGroup,
}

impl PimLevel {
    pub const ALL: [PimLevel; 3] = [PimLevel::Channel, PimLevel::Device, PimLevel::BankGroup];

    /// Short display name used in figures ("CH" / "DV" / "BG").
    pub fn tag(&self) -> &'static str {
        match self {
            PimLevel::Channel => "CH",
            PimLevel::Device => "DV",
            PimLevel::BankGroup => "BG",
        }
    }

    /// Number of PIM units this level instantiates in `geom`.
    pub fn pim_count(&self, geom: &Geometry) -> u32 {
        match self {
            PimLevel::Channel => geom.channels,
            PimLevel::Device => geom.channels * geom.ranks_per_channel,
            PimLevel::BankGroup => {
                geom.channels * geom.ranks_per_channel * geom.bankgroups_per_rank
            }
        }
    }

    /// Number of PIM-ID bits at this level.
    pub fn id_bits(&self, geom: &Geometry) -> u32 {
        self.pim_count(geom).trailing_zeros()
    }

    /// PA-bit parity masks for each PIM-ID bit, lowest ID bit first.
    ///
    /// ID bit order is channel bits, then rank bits, then bank-group bits, so
    /// the PIM ID equals `ch | rank << cb | bg << (cb+rb)`.
    pub fn id_masks(&self, mapping: &XorMapping) -> Vec<u64> {
        let mut masks = mapping.field_masks(Field::Channel).to_vec();
        if matches!(self, PimLevel::Device | PimLevel::BankGroup) {
            masks.extend_from_slice(mapping.field_masks(Field::Rank));
        }
        if matches!(self, PimLevel::BankGroup) {
            masks.extend_from_slice(mapping.field_masks(Field::BankGroup));
        }
        masks
    }

    /// The PIM ID owning the cache block at physical address `pa`.
    pub fn pim_id_of(&self, mapping: &XorMapping, pa: u64) -> u32 {
        let mut id = 0u32;
        for (i, m) in self.id_masks(mapping).iter().enumerate() {
            id |= (((pa & m).count_ones()) & 1) << i;
        }
        id
    }

    /// Decompose a PIM ID into (channel, rank, bankgroup) indices; fields not
    /// covered by this level are zero.
    pub fn id_to_position(&self, geom: &Geometry, id: u32) -> (u32, u32, u32) {
        let cb = geom.channel_bits();
        let rb = geom.rank_bits();
        let ch = id & ((1 << cb) - 1);
        let (rk, bg) = match self {
            PimLevel::Channel => (0, 0),
            PimLevel::Device => ((id >> cb) & ((1 << rb) - 1), 0),
            PimLevel::BankGroup => ((id >> cb) & ((1 << rb) - 1), id >> (cb + rb)),
        };
        (ch, rk, bg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{mapping_by_id, MappingId};

    #[test]
    fn pim_counts_match_paper() {
        let geom = Geometry::default();
        assert_eq!(PimLevel::Channel.pim_count(&geom), 2);
        assert_eq!(PimLevel::Device.pim_count(&geom), 4);
        assert_eq!(PimLevel::BankGroup.pim_count(&geom), 16);
        assert_eq!(PimLevel::BankGroup.id_bits(&geom), 4);
    }

    #[test]
    fn pim_id_consistent_with_decode() {
        let m = mapping_by_id(MappingId::Skylake);
        let geom = *m.geometry();
        for pa in (0..10_000u64).map(|i| i * 64) {
            let c = m.decode(pa);
            for level in PimLevel::ALL {
                let id = level.pim_id_of(&m, pa);
                let (ch, rk, bg) = level.id_to_position(&geom, id);
                assert_eq!(ch, c.channel);
                match level {
                    PimLevel::Channel => {}
                    PimLevel::Device => assert_eq!(rk, c.rank),
                    PimLevel::BankGroup => {
                        assert_eq!(rk, c.rank);
                        assert_eq!(bg, c.bankgroup);
                    }
                }
            }
        }
    }

    #[test]
    fn every_pim_owns_an_equal_share() {
        let m = mapping_by_id(MappingId::Skylake);
        let geom = *m.geometry();
        let level = PimLevel::BankGroup;
        let n = level.pim_count(&geom) as usize;
        let blocks = 1 << 14;
        let mut counts = vec![0usize; n];
        for b in 0..blocks as u64 {
            counts[level.pim_id_of(&m, b * 64) as usize] += 1;
        }
        for &c in &counts {
            assert_eq!(c, blocks / n, "XOR interleaving must be balanced");
        }
    }
}
