//! The five XOR address mappings evaluated in the paper (Table II).
//!
//! Mapping 4 is the Skylake baseline reverse-engineered by DRAMA and used
//! throughout the paper; it reproduces the bits documented in Fig. 4a
//! (`BG0 = b7⊕b14`, `CH = b8⊕b9⊕b12⊕b13` within a 32 KiB matrix). Mappings
//! 0–3 are analogues of the Exynos / Haswell / Ivy Bridge / Sandy Bridge
//! mappings modified per the PAE randomization method (Liu et al.), built to
//! span the qualitative diversity the paper leans on in Fig. 11: different
//! input-sharing factors and fine vs coarse bank-group interleaving.

use crate::geometry::Geometry;
use crate::mapping::{BitSpec, Field, XorMapping};
use serde::{Deserialize, Serialize};

/// Address-mapping identifiers, matching Table II's "ID" column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MappingId {
    /// ID 0: Exynos-like (modified).
    Exynos,
    /// ID 1: Haswell-like (modified).
    Haswell,
    /// ID 2: Ivy Bridge-like (modified).
    IvyBridge,
    /// ID 3: Sandy Bridge-like (modified).
    SandyBridge,
    /// ID 4: Skylake (baseline).
    Skylake,
}

impl MappingId {
    pub const ALL: [MappingId; 5] = [
        MappingId::Exynos,
        MappingId::Haswell,
        MappingId::IvyBridge,
        MappingId::SandyBridge,
        MappingId::Skylake,
    ];

    pub fn index(&self) -> usize {
        match self {
            MappingId::Exynos => 0,
            MappingId::Haswell => 1,
            MappingId::IvyBridge => 2,
            MappingId::SandyBridge => 3,
            MappingId::Skylake => 4,
        }
    }

    pub fn from_index(i: usize) -> Self {
        Self::ALL[i]
    }
}

/// Construct a preset mapping on the default geometry.
pub fn mapping_by_id(id: MappingId) -> XorMapping {
    mapping_on(id, Geometry::default())
}

/// Construct a preset mapping on a caller-provided geometry. Geometries
/// with the default field widths (1 channel bit, 1 rank bit, 2+2 bank
/// bits, 7 column bits) get the Table II bit layouts verbatim (the row
/// width may vary); anything else — the DDR5/LPDDR5/HBM `DramConfig`
/// preset geometries — falls back to `generic_mapping_on`, which builds
/// a mapping in the same XOR style sized to the actual field widths.
pub fn mapping_on(id: MappingId, geom: Geometry) -> XorMapping {
    if geom.channel_bits() != 1
        || geom.rank_bits() != 1
        || geom.bankgroup_bits() != 2
        || geom.bank_bits() != 2
        || geom.column_bits() != 7
    {
        return generic_mapping_on(id, geom);
    }
    use Field::*;
    let mut specs: Vec<BitSpec> = match id {
        // Low column bits first, wide ID bits in the middle of the page,
        // coarse 16 KiB channel stripes. Lowest input-sharing of the set
        // (its row-dependent ID structure is a single rank bit).
        MappingId::Exynos => vec![
            BitSpec::plain(Column, 0),             // b6
            BitSpec::plain(Column, 1),             // b7
            BitSpec::plain(Column, 2),             // b8
            BitSpec::plain(Column, 3),             // b9
            BitSpec::tapped(BankGroup, 0, &[28]),  // b10
            BitSpec::tapped(BankGroup, 1, &[22]),  // b11
            BitSpec::tapped(Channel, 0, &[23, 24]), // b12
            BitSpec::tapped(Bank, 0, &[25]),       // b13
            BitSpec::tapped(Bank, 1, &[26]),       // b14
            BitSpec::plain(Column, 4),             // b15
            BitSpec::plain(Column, 5),             // b16
            BitSpec::plain(Column, 6),             // b17
            BitSpec::tapped(Rank, 0, &[27]),       // b18
        ],
        // Haswell hashes the channel over many low bits; bank/bank-group
        // owner bits sit high (but BG0 taps a low column bit, keeping the
        // bank-group interleave fine). Highest input-sharing.
        MappingId::Haswell => vec![
            BitSpec::plain(Column, 0),                          // b6
            BitSpec::tapped(Channel, 0, &[8, 9, 12, 13, 26, 27]), // b7
            BitSpec::plain(Column, 1),                          // b8
            BitSpec::plain(Column, 2),                          // b9
            BitSpec::plain(Column, 3),                          // b10
            BitSpec::plain(Column, 4),                          // b11
            BitSpec::plain(Column, 5),                          // b12
            BitSpec::plain(Column, 6),                          // b13
            BitSpec::tapped(Bank, 0, &[22]),                    // b14
            BitSpec::tapped(Bank, 1, &[23]),                    // b15
            BitSpec::tapped(BankGroup, 0, &[6, 24]),            // b16
            BitSpec::tapped(BankGroup, 1, &[25]),               // b17
            BitSpec::tapped(Rank, 0, &[28]),                    // b18
        ],
        // Ivy Bridge-like: channel hashed over mid column bits, bank groups
        // interleaved at 32 KiB granularity (coarse — the Fig. 11 tCCDL
        // penalty case at channel level).
        MappingId::IvyBridge => vec![
            BitSpec::plain(Column, 0),                    // b6
            BitSpec::plain(Column, 1),                    // b7
            BitSpec::tapped(Channel, 0, &[9, 10, 12, 13]), // b8
            BitSpec::plain(Column, 2),                    // b9
            BitSpec::plain(Column, 3),                    // b10
            BitSpec::plain(Column, 4),                    // b11
            BitSpec::plain(Column, 5),                    // b12
            BitSpec::plain(Column, 6),                    // b13
            BitSpec::tapped(Bank, 0, &[20]),              // b14
            BitSpec::tapped(BankGroup, 0, &[21]),         // b15
            BitSpec::tapped(BankGroup, 1, &[22]),         // b16
            BitSpec::tapped(Bank, 1, &[23]),              // b17
            BitSpec::tapped(Rank, 0, &[24]),              // b18
        ],
        // Sandy Bridge-like: contiguous 8 KiB column run, then channel and
        // bank bits (coarse bank-group interleave).
        MappingId::SandyBridge => vec![
            BitSpec::plain(Column, 0),             // b6
            BitSpec::plain(Column, 1),             // b7
            BitSpec::plain(Column, 2),             // b8
            BitSpec::plain(Column, 3),             // b9
            BitSpec::plain(Column, 4),             // b10
            BitSpec::plain(Column, 5),             // b11
            BitSpec::plain(Column, 6),             // b12
            BitSpec::tapped(Channel, 0, &[14, 26]), // b13
            BitSpec::tapped(BankGroup, 0, &[27]),  // b14
            BitSpec::tapped(BankGroup, 1, &[22]),  // b15
            BitSpec::tapped(Bank, 0, &[23]),       // b16
            BitSpec::tapped(Bank, 1, &[24]),       // b17
            BitSpec::tapped(Rank, 0, &[25]),       // b18
        ],
        // Skylake (DRAMA): BG0 = b7⊕b14, CH = b8⊕b9⊕b12⊕b13 — exactly the
        // bits the paper names in Fig. 4a — with the remaining ID bits on
        // b15..b18 tapping row bits.
        MappingId::Skylake => vec![
            BitSpec::plain(Column, 0),                // b6
            BitSpec::tapped(BankGroup, 0, &[14]),     // b7
            BitSpec::tapped(Channel, 0, &[9, 12, 13]), // b8
            BitSpec::plain(Column, 1),                // b9
            BitSpec::plain(Column, 2),                // b10
            BitSpec::plain(Column, 3),                // b11
            BitSpec::plain(Column, 4),                // b12
            BitSpec::plain(Column, 5),                // b13
            BitSpec::plain(Column, 6),                // b14
            BitSpec::tapped(BankGroup, 1, &[19]),     // b15
            BitSpec::tapped(Bank, 0, &[20]),          // b16
            BitSpec::tapped(Bank, 1, &[21]),          // b17
            BitSpec::tapped(Rank, 0, &[22]),          // b18
        ],
    };
    for i in 0..geom.row_bits() {
        specs.push(BitSpec::plain(Field::Row, i)); // b19 and up
    }
    let name = match id {
        MappingId::Exynos => "exynos-mod",
        MappingId::Haswell => "haswell-mod",
        MappingId::IvyBridge => "ivybridge-mod",
        MappingId::SandyBridge => "sandybridge-mod",
        MappingId::Skylake => "skylake",
    };
    XorMapping::from_bit_specs(name, geom, &specs)
}

/// XOR mapping for an arbitrary geometry, in the style of the Table II
/// presets: one low column bit, then channel / bank-group / bank / rank ID
/// bits (finely interleaving consecutive blocks), then the remaining
/// column bits, then the row. Each ID bit additionally XOR-taps a distinct
/// *plain-owned* row PA bit — tap assignment rotates with the mapping ID
/// so the five presets stay distinct on any geometry — which keeps the
/// per-bit ownership matrix unit upper-triangular and hence always
/// invertible (the `linear_mapping` construction, plus taps).
fn generic_mapping_on(id: MappingId, geom: Geometry) -> XorMapping {
    use crate::geometry::BLOCK_SHIFT;
    use Field::*;
    let id_fields = [
        (Channel, geom.channel_bits()),
        (BankGroup, geom.bankgroup_bits()),
        (Bank, geom.bank_bits()),
        (Rank, geom.rank_bits()),
    ];
    let id_total: u32 = id_fields.iter().map(|(_, n)| n).sum();
    let (colb, rowb) = (geom.column_bits(), geom.row_bits());
    assert!(colb >= 1, "need at least one column bit");
    assert!(rowb >= id_total, "generic mapping taps one row bit per ID bit");
    // First PA bit plainly owned by the row (taps must land on plain bits).
    let row_base = BLOCK_SHIFT + colb + id_total;
    let mut specs: Vec<BitSpec> = vec![BitSpec::plain(Column, 0)];
    let mut next_tap = 0u32;
    for (field, n) in id_fields {
        for i in 0..n {
            let tap = row_base + (next_tap + id.index() as u32) % rowb;
            specs.push(BitSpec::tapped(field, i, &[tap]));
            next_tap += 1;
        }
    }
    for i in 1..colb {
        specs.push(BitSpec::plain(Column, i));
    }
    for i in 0..rowb {
        specs.push(BitSpec::plain(Row, i));
    }
    let name = match id {
        MappingId::Exynos => "exynos-mod",
        MappingId::Haswell => "haswell-mod",
        MappingId::IvyBridge => "ivybridge-mod",
        MappingId::SandyBridge => "sandybridge-mod",
        MappingId::Skylake => "skylake",
    };
    XorMapping::from_bit_specs(name, geom, &specs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::BLOCK_SHIFT;

    #[test]
    fn all_presets_build_and_roundtrip() {
        for id in MappingId::ALL {
            let m = mapping_by_id(id);
            for pa in (0..4096u64)
                .map(|i| i * 64)
                .chain([1 << 28, (1 << 25) | (77 << BLOCK_SHIFT)])
            {
                let c = m.decode(pa);
                assert_eq!(m.encode(c), pa & !63, "{id:?} pa={pa:#x}");
            }
        }
    }

    #[test]
    fn skylake_matches_paper_documented_bits() {
        let m = mapping_by_id(MappingId::Skylake);
        // BG0 = b7 ⊕ b14
        assert_eq!(m.decode(1 << 7).bankgroup & 1, 1);
        assert_eq!(m.decode(1 << 14).bankgroup & 1, 1);
        assert_eq!(m.decode((1 << 7) | (1 << 14)).bankgroup & 1, 0);
        // CH = b8 ⊕ b9 ⊕ b12 ⊕ b13
        for b in [8, 9, 12, 13] {
            assert_eq!(m.decode(1u64 << b).channel, 1, "bit {b}");
        }
        assert_eq!(m.decode((1 << 8) | (1 << 9)).channel, 0);
        // Within the Fig. 4 example's 32 KiB matrix, RK/BG1/BA stay fixed.
        for pa in (0..512u64).map(|b| b * 64) {
            let c = m.decode(pa);
            assert_eq!(c.rank, 0);
            assert_eq!(c.bankgroup & 2, 0);
            assert_eq!(c.bank, 0);
        }
    }

    #[test]
    fn generic_mapping_round_trips_on_preset_geometries() {
        // The DDR5 / LPDDR5 / HBM `DramConfig` preset geometries.
        let geoms = [
            Geometry {
                channels: 4,
                ranks_per_channel: 1,
                bankgroups_per_rank: 8,
                banks_per_bankgroup: 4,
                rows_per_bank: 32768,
                blocks_per_row: 64,
            },
            Geometry {
                channels: 2,
                ranks_per_channel: 1,
                bankgroups_per_rank: 4,
                banks_per_bankgroup: 4,
                rows_per_bank: 65536,
                blocks_per_row: 128,
            },
            Geometry {
                channels: 4,
                ranks_per_channel: 1,
                bankgroups_per_rank: 4,
                banks_per_bankgroup: 4,
                rows_per_bank: 65536,
                blocks_per_row: 64,
            },
        ];
        for geom in geoms {
            for id in MappingId::ALL {
                let m = mapping_on(id, geom);
                for pa in (0..4096u64)
                    .map(|i| i * 64)
                    .chain([1 << 30, 1 << 33, (1 << 33) | (1 << 31)])
                {
                    let c = m.decode(pa);
                    assert_eq!(m.encode(c), pa & !63, "{id:?} {geom:?} pa={pa:#x}");
                }
                // Consecutive blocks must still interleave finely across
                // channels (generic layout puts channel bits low).
                let coords: Vec<_> = (0..16u64).map(|b| m.decode(b * 64)).collect();
                assert!(coords.windows(2).any(|w| w[0].channel != w[1].channel));
                assert!(coords.windows(2).any(|w| w[0].bankgroup != w[1].bankgroup));
            }
        }
    }

    #[test]
    fn presets_are_distinct() {
        let maps: Vec<_> = MappingId::ALL.iter().map(|&i| mapping_by_id(i)).collect();
        for i in 0..maps.len() {
            for j in i + 1..maps.len() {
                let differ = (0..(1u64 << 16))
                    .any(|b| maps[i].decode(b * 64) != maps[j].decode(b * 64));
                assert!(differ, "mappings {i} and {j} are identical");
            }
        }
    }

    #[test]
    fn consecutive_blocks_spread_under_skylake() {
        // The XOR mapping must interleave consecutive cache blocks across
        // channels and bank groups at fine granularity (that is its job).
        let m = mapping_by_id(MappingId::Skylake);
        let coords: Vec<_> = (0..16u64).map(|b| m.decode(b * 64)).collect();
        assert!(coords.windows(2).any(|w| w[0].bankgroup != w[1].bankgroup));
        assert!(coords.windows(2).any(|w| w[0].channel != w[1].channel));
    }

    #[test]
    #[should_panic(expected = "need at least one column bit")]
    fn degenerate_geometry_without_columns_is_rejected() {
        let geom = Geometry { blocks_per_row: 1, ..Geometry::default() };
        mapping_on(MappingId::Skylake, geom);
    }

    #[test]
    #[should_panic(expected = "one row bit per ID bit")]
    fn degenerate_geometry_with_too_few_rows_is_rejected() {
        // 8 bank groups routes to the generic builder; two rows per bank
        // cannot absorb one tap per ID bit.
        let geom =
            Geometry { bankgroups_per_rank: 8, rows_per_bank: 2, ..Geometry::default() };
        mapping_on(MappingId::Skylake, geom);
    }
}
