//! Lazy per-PIM region plans (the streaming replacement for materialized
//! region address lists).
//!
//! A PIM's localized `B`/partial-`C` region is "the first *N* cache blocks
//! at or above the arena base whose PIM-ID parities match the unit" — an
//! ascending walk of the solution set of a small GF(2) parity system, the
//! same set [`StepStoneAgen`] enumerates. The seed materialized that walk
//! into a `Vec<u64>` per PIM (O(matrix footprint) resident addresses, just
//! moved from steps to addresses). [`RegionPlan`] stores the *pattern*
//! instead of the addresses:
//!
//! * The satisfying set is periodic with period `2^(h+1)` (h = highest
//!   constrained PA bit): adding the period flips no constrained bit.
//! * Within a period it is a GF(2) coset, so per bit position we can count
//!   satisfying blocks in an aligned sub-window for each residual parity
//!   state (≤ `2^constraints` states). That table supports O(address bits)
//!   rank/select — exact indexed lookup of the i-th region block — in
//!   O(address bits × 2^constraints) resident words, independent of the
//!   region's block count.
//!
//! Sequential consumers ([`RegionPlan::iter`]) additionally exploit the
//! span structure surfaced by [`StepStoneAgen::spans`]: inside a
//! contiguous run (no constrained bit changes) the next address is a plain
//! block increment, so select() runs once per span, not once per block.

use crate::agen::{satisfies, ParityConstraint, StepStoneAgen};
use crate::geometry::{BLOCK_BYTES, BLOCK_SHIFT};
use crate::mapping::XorMapping;
use std::sync::OnceLock;

/// Largest pattern for which [`RegionPlan`] builds the per-period offset
/// table (16 Ki offsets = 128 KiB). Above this, cursors fall back to the
/// per-run rank/select descent.
const PERIOD_CACHE_CAP: u64 = 1 << 14;

/// Succinct rank/select representation of one carved region: the first
/// `len` satisfying block addresses at or above an arena base, in
/// ascending order, without materializing them.
///
/// Only *constrained* bit positions get a counting level; runs of free
/// bits between them are handled with plain chunk arithmetic, so resident
/// storage is O(constrained bits × 2^constraints).
#[derive(Debug, Clone)]
pub struct RegionPlan {
    /// Cleaned constraints (block-offset bits masked away; trivial rows
    /// dropped) — kept for debug assertions and span detection.
    cs: Vec<ParityConstraint>,
    /// Ascending constrained PA bit positions (union of the masks).
    pbits: Vec<u32>,
    /// `deltas[i]`: constraint-state flip when bit `pbits[i]` is set
    /// (bit j set iff constraint j's mask covers that PA bit).
    deltas: Vec<u32>,
    /// `counts[i][s]`: satisfying blocks in an aligned `2^pbits[i]`-byte
    /// window whose residual parity requirement over the constrained bits
    /// below `pbits[i]` is the state bitset `s`.
    counts: Vec<Vec<u64>>,
    /// Required parity state at the top of the descent.
    target: u32,
    /// Pattern period in bytes (`2^(h+1)`; one block when unconstrained).
    period: u64,
    /// Satisfying blocks per period.
    per_period: u64,
    /// Satisfying blocks below the arena base (global select offset).
    base_rank: u64,
    /// Arena base the region was carved from.
    arena: u64,
    /// Contiguous-run span in bytes (`1 << lowest constrained bit`);
    /// `u64::MAX` when unconstrained (one unbounded run).
    run_bytes: u64,
    len: u64,
    /// Lazily built offset table for the hot path: the satisfying set is
    /// periodic, so `select(m) = (m / per_period) · period +
    /// offsets[m % per_period]` — one descent per *residue*, ever, instead
    /// of one per run. Built on first use when `per_period ≤
    /// PERIOD_CACHE_CAP` and shared by every cursor of the plan.
    period_offsets: OnceLock<Vec<u64>>,
}

impl RegionPlan {
    /// Plan the first `count` satisfying blocks at or above `arena`
    /// (block-aligned). Exactly equivalent to
    /// `StepStoneAgen::new(cs, arena, ∞).take(count)` addresses.
    pub fn carve(cs: Vec<ParityConstraint>, arena: u64, count: u64) -> Self {
        debug_assert_eq!(arena % BLOCK_BYTES, 0, "arena must be block-aligned");
        let mut clean = Vec::with_capacity(cs.len());
        let mut unsat = false;
        for c in cs {
            let mask = c.mask & !(BLOCK_BYTES - 1);
            if mask == 0 {
                // Block addresses never set offset bits: the constraint is
                // a constant — vacuous if even parity, unsatisfiable if odd.
                unsat |= c.parity;
            } else {
                clean.push(ParityConstraint { mask, parity: c.parity });
            }
        }
        let n = clean.len();
        assert!(n <= 16, "region constraint systems are small (got {n})");
        let union: u64 = clean.iter().fold(0, |u, c| u | c.mask);
        let mut pbits = Vec::new();
        let mut u = union;
        while u != 0 {
            pbits.push(u.trailing_zeros());
            u &= u - 1;
        }
        let states = 1usize << n;
        let deltas: Vec<u32> = pbits
            .iter()
            .map(|&p| {
                let mut d = 0u32;
                for (j, c) in clean.iter().enumerate() {
                    d |= ((c.mask >> p & 1) as u32) << j;
                }
                d
            })
            .collect();
        // counts[0]: a window below the lowest constrained bit is entirely
        // free — all `2^(p_0 - BLOCK_SHIFT)` blocks satisfy iff no parity
        // is still owed.
        let mut counts = Vec::with_capacity(pbits.len());
        if let Some(&p0) = pbits.first() {
            let mut row = vec![0u64; states];
            row[0] = 1u64 << (p0 - BLOCK_SHIFT);
            counts.push(row);
            for i in 0..pbits.len() - 1 {
                let free = pbits[i + 1] - pbits[i] - 1;
                let prev = &counts[i];
                let next: Vec<u64> = (0..states)
                    .map(|s| (prev[s] + prev[s ^ deltas[i] as usize]) << free)
                    .collect();
                counts.push(next);
            }
        }
        let mut target = 0u32;
        for (j, c) in clean.iter().enumerate() {
            target |= (c.parity as u32) << j;
        }
        let (period, per_period) = match pbits.last() {
            Some(&h) => {
                let t = pbits.len() - 1;
                let top = &counts[t];
                (
                    BLOCK_BYTES << (h + 1 - BLOCK_SHIFT),
                    top[target as usize] + top[(target ^ deltas[t]) as usize],
                )
            }
            None => (BLOCK_BYTES, 1),
        };
        let per_period = if unsat { 0 } else { per_period };
        assert!(
            count == 0 || per_period > 0,
            "cannot carve {count} blocks from an unsatisfiable region"
        );
        let mut plan = Self {
            run_bytes: if union == 0 { u64::MAX } else { 1 << union.trailing_zeros() },
            cs: clean,
            pbits,
            deltas,
            counts,
            target,
            period,
            per_period,
            base_rank: 0,
            arena,
            len: count,
            period_offsets: OnceLock::new(),
        };
        plan.base_rank = plan.rank(arena);
        plan
    }

    /// Number of blocks in the region.
    pub fn len(&self) -> u64 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Resident `u64`-equivalent words this plan holds (the benchmark's
    /// "resident region addresses" figure; a materialized region holds
    /// `len()` words).
    pub fn resident_words(&self) -> u64 {
        self.counts.iter().map(|row| row.len() as u64).sum::<u64>()
            + self.pbits.len() as u64
            + self.deltas.len() as u64
            + self.cs.len() as u64
            + self.period_offsets.get().map_or(0, |v| v.len() as u64)
    }

    /// The per-residue offset table (see `period_offsets`), or `None` when
    /// the pattern is too large to cache — or larger than the region it
    /// would serve: a sub-paper-scale region of `len` blocks only ever
    /// touches ~`len` residues, so building a full-period table would cost
    /// more select() descents than it saves (cursors then amortize one
    /// descent per contiguous run instead).
    fn offsets(&self) -> Option<&[u64]> {
        if self.per_period == 0 || self.per_period > PERIOD_CACHE_CAP || self.per_period > self.len
        {
            return None;
        }
        Some(
            self.period_offsets
                .get_or_init(|| (0..self.per_period).map(|r| self.select(r)).collect()),
        )
    }

    /// Satisfying blocks with address strictly below `x`.
    fn rank(&self, x: u64) -> u64 {
        let mut acc = (x / self.period) * self.per_period;
        let r = x % self.period;
        let mut s = self.target;
        let mut window_top = self.period.trailing_zeros();
        for i in (0..self.pbits.len()).rev() {
            let p = self.pbits[i];
            // Free bits strictly between p and the window top: each value
            // below ours contributes one full 2^(p+1) chunk of blocks.
            let free_val = (r >> (p + 1)) & ((1u64 << (window_top - p - 1)) - 1);
            let pair =
                self.counts[i][s as usize] + self.counts[i][(s ^ self.deltas[i]) as usize];
            acc += free_val * pair;
            if r >> p & 1 == 1 {
                acc += self.counts[i][s as usize];
                s ^= self.deltas[i];
            }
            window_top = p;
        }
        // The fully-free tail below the lowest constrained bit.
        if s == self.tail_state() {
            acc += (r & ((1u64 << window_top) - 1)) >> BLOCK_SHIFT;
        }
        acc
    }

    /// Address of the `m`-th satisfying block (global, 0-indexed from
    /// address 0).
    fn select(&self, m: u64) -> u64 {
        let q = m / self.per_period;
        let mut r = m % self.per_period;
        let mut addr = q * self.period;
        let mut s = self.target;
        let mut window_top = self.period.trailing_zeros();
        for i in (0..self.pbits.len()).rev() {
            let p = self.pbits[i];
            let pair =
                self.counts[i][s as usize] + self.counts[i][(s ^ self.deltas[i]) as usize];
            let chunk = r / pair;
            r %= pair;
            debug_assert!(chunk < (1u64 << (window_top - p - 1)));
            addr |= chunk << (p + 1);
            let left = self.counts[i][s as usize];
            if r >= left {
                r -= left;
                addr |= 1u64 << p;
                s ^= self.deltas[i];
            }
            window_top = p;
        }
        debug_assert!(s == self.tail_state(), "descent must discharge every parity");
        addr |= r << BLOCK_SHIFT;
        debug_assert!(satisfies(addr, &self.cs));
        addr
    }

    /// The only satisfiable residual state once all constrained bits are
    /// fixed: every parity discharged.
    #[inline]
    fn tail_state(&self) -> u32 {
        0
    }

    /// Number of satisfying blocks — counted globally from address 0, the
    /// index space of [`RegionIter::pos_rank`] — with address strictly
    /// below `x`. This is the page-clipping primitive: the number of
    /// upcoming region blocks a cursor can touch before crossing a page
    /// boundary at `x` is `rank_below(x) - pos_rank()`.
    pub fn rank_below(&self, x: u64) -> u64 {
        self.rank(x)
    }

    /// Address of the `ix`-th region block — O(address bits), no lookup
    /// table proportional to the region.
    pub fn get(&self, ix: u64) -> u64 {
        assert!(ix < self.len, "region index {ix} out of bounds ({})", self.len);
        self.select(self.base_rank + ix)
    }

    /// Lazy ascending iteration over all region blocks.
    pub fn iter(&self) -> RegionIter<'_> {
        self.iter_range(0, self.len)
    }

    /// Lazy ascending iteration over region indices `[lo, hi)`.
    pub fn iter_range(&self, lo: u64, hi: u64) -> RegionIter<'_> {
        assert!(lo <= hi && hi <= self.len, "bad region range {lo}..{hi} of {}", self.len);
        RegionIter { plan: self, ix: lo, end: hi, next_addr: None }
    }

    /// Materialize the whole region via the plan's own cursors (tests).
    pub fn to_vec(&self) -> Vec<u64> {
        self.iter().collect()
    }

    /// Precompute the region's same-window-key run boundaries: maximal
    /// stretches of *consecutive region blocks* whose DRAM coordinates
    /// agree on everything but the column (same bank index and row — one
    /// FR-FCFS window key). Returns `None` when the pattern is too large
    /// to tabulate (`per_period > PERIOD_CACHE_CAP`).
    ///
    /// Correctness rests on two linearity facts. `select(m) = q·period +
    /// off[m mod per_period]` with `period` a power of two and `off <
    /// period`, so two blocks of the *same* period instance differ by
    /// `off_i ^ off_j`. And the mapping's decode is XOR-linear
    /// (`decode(a ^ b) = decode(a) ^ decode(b)` fieldwise), so their
    /// non-column coordinates agree iff the non-column coordinates of
    /// `decode(off_i)` and `decode(off_j)` agree — a per-residue property,
    /// identical in every period instance. Period-instance boundaries
    /// (where the `q·period` prefix changes) conservatively start a new
    /// run. Multi-bit XOR differences routinely *cancel* in the
    /// non-column fields, so runs here are much longer than any
    /// single-bit column-purity test would predict.
    pub fn key_runs(&self, mapping: &XorMapping) -> Option<KeyRuns> {
        if self.per_period == 0 || self.per_period > PERIOD_CACHE_CAP {
            return None;
        }
        let g = mapping.geometry();
        let pp = self.per_period;
        let mut starts = vec![0u64; pp.div_ceil(64) as usize];
        let mut prev = (usize::MAX, u32::MAX);
        for r in 0..pp {
            let c = mapping.decode(self.select(r));
            let k = (c.bank_index(g), c.row);
            if k != prev {
                starts[(r / 64) as usize] |= 1 << (r % 64);
                prev = k;
            }
        }
        // Residue 0 is always a start (new period instance).
        starts[0] |= 1;
        Some(KeyRuns { per_period: pp, starts })
    }

    /// Whether `other` provably shares this plan's [`RegionPlan::key_runs`]
    /// table, so one tabulation can serve both. True when the cleaned
    /// constraint *masks* coincide (parity targets may differ): the two
    /// satisfying sets are then cosets of one GF(2) subspace, and the
    /// ascending enumeration of a coset is the subspace's ascending
    /// enumeration XOR-translated by the coset leader (echelon reduction
    /// by the subspace basis is linear, and clearing the highest
    /// reducible bit of each element greedily is exactly the numeric
    /// minimum of its coset). A constant XOR shifts every decoded
    /// coordinate fieldwise by one constant, so consecutive-block key
    /// equality — hence every run boundary — is identical.
    pub fn same_key_runs(&self, other: &RegionPlan) -> bool {
        self.cs.len() == other.cs.len()
            && self.cs.iter().zip(&other.cs).all(|(a, b)| a.mask == b.mask)
    }

    /// Materialize the region with the *seed-era* `StepStoneAgen` walk —
    /// identical addresses, but the seed's generation cost. The frozen
    /// seed-replay baseline must pay the seed's price for region carving,
    /// not whatever this plan's rank/select machinery costs today.
    pub fn materialize_seed(&self) -> Vec<u64> {
        StepStoneAgen::new(self.cs.clone(), self.arena, self.arena + (1 << 40))
            .take(self.len as usize)
            .map(|s| s.pa)
            .collect()
    }
}

/// Same-window-key run boundaries of a [`RegionPlan`], tabulated once per
/// period residue (see [`RegionPlan::key_runs`]). Supports O(run/64)
/// queries of "how many upcoming region blocks share the current block's
/// (bank, row) window key" — the engine's run-hint oracle for region
/// fills.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyRuns {
    per_period: u64,
    /// Bitset over period residues: bit `r` set ⇔ a new same-key run
    /// starts at residue `r`.
    starts: Vec<u64>,
}

impl KeyRuns {
    /// Mean same-key run length over one period, in blocks — the analytic
    /// memory tier's row-switch-rate estimate for region fills.
    pub fn mean_run_len(&self) -> f64 {
        let runs: u64 = self.starts.iter().map(|w| w.count_ones() as u64).sum();
        self.per_period as f64 / runs.max(1) as f64
    }

    /// Number of consecutive region blocks sharing one window key,
    /// starting at global satisfying-block index `m` (inclusive): the
    /// distance from `m` to the next run boundary, clipped to the end of
    /// `m`'s period instance.
    pub fn run_len_from(&self, m: u64) -> u64 {
        let r = m % self.per_period;
        let mut w = (r / 64) as usize;
        // The next start strictly after r: mask off bit r and below.
        let mut bits = self.starts[w] & (!0u64).checked_shl((r % 64) as u32 + 1).unwrap_or(0);
        loop {
            if bits != 0 {
                let s = (w as u64) * 64 + bits.trailing_zeros() as u64;
                return s.min(self.per_period) - r;
            }
            w += 1;
            if w >= self.starts.len() {
                return self.per_period - r;
            }
            bits = self.starts[w];
        }
    }
}

/// Lazy cursor over a [`RegionPlan`]: one select() per contiguous run,
/// plain block increments inside a run.
#[derive(Debug, Clone)]
pub struct RegionIter<'a> {
    plan: &'a RegionPlan,
    ix: u64,
    end: u64,
    /// Precomputed next address when it is a same-run increment.
    next_addr: Option<u64>,
}

impl<'a> RegionIter<'a> {
    /// Global satisfying-block index of the *next* block this cursor will
    /// yield — the index [`KeyRuns::run_len_from`] keys on.
    #[inline]
    pub fn pos_rank(&self) -> u64 {
        self.plan.base_rank + self.ix
    }

    /// Skip the next `n` blocks in O(1) — no addresses are computed. The
    /// next `next()` re-seeds from the plan's rank/select machinery.
    #[inline]
    pub fn skip_blocks(&mut self, n: u64) {
        self.ix = (self.ix + n).min(self.end);
        self.next_addr = None;
    }

    /// The plan this cursor walks (for key-run lookups by the consumer).
    #[inline]
    pub fn plan(&self) -> &'a RegionPlan {
        self.plan
    }

    /// Address of the next block this cursor will yield, without
    /// advancing — what page-clipped run hints key their boundary on.
    #[inline]
    pub fn peek_addr(&self) -> Option<u64> {
        if self.ix >= self.end {
            return None;
        }
        Some(match self.next_addr {
            Some(a) => a,
            None => self.plan.select(self.plan.base_rank + self.ix),
        })
    }
}

impl Iterator for RegionIter<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.ix >= self.end {
            return None;
        }
        let addr = match self.next_addr.take() {
            Some(a) => a,
            None => {
                let m = self.plan.base_rank + self.ix;
                match self.plan.offsets() {
                    Some(offs) => {
                        (m / self.plan.per_period) * self.plan.period
                            + offs[(m % self.plan.per_period) as usize]
                    }
                    None => self.plan.select(m),
                }
            }
        };
        self.ix += 1;
        if self.ix < self.end {
            let cand = addr + BLOCK_BYTES;
            let contiguous = match self.plan.run_bytes {
                u64::MAX => true,
                rb => !cand.is_multiple_of(rb),
            };
            if contiguous {
                self.next_addr = Some(cand);
            }
        }
        Some(addr)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.end - self.ix) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for RegionIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agen::NaiveAgen;
    use crate::pimlevel::PimLevel;
    use crate::presets::{mapping_by_id, MappingId};

    fn naive_region(cs: &[ParityConstraint], arena: u64, count: u64) -> Vec<u64> {
        NaiveAgen::new(cs.to_vec(), arena, u64::MAX >> 1)
            .take(count as usize)
            .map(|s| s.pa)
            .collect()
    }

    fn id_constraints(level: PimLevel, mapping_id: MappingId, pim: u32) -> Vec<ParityConstraint> {
        let m = mapping_by_id(mapping_id);
        level
            .id_masks(&m)
            .iter()
            .enumerate()
            .map(|(i, &mask)| ParityConstraint { mask, parity: pim >> i & 1 == 1 })
            .collect()
    }

    #[test]
    fn matches_naive_walk_for_all_levels_and_pims() {
        for mapping_id in [MappingId::Skylake, MappingId::Haswell, MappingId::Exynos] {
            for level in PimLevel::ALL {
                let geom = *mapping_by_id(mapping_id).geometry();
                for pim in 0..level.pim_count(&geom) {
                    let cs = id_constraints(level, mapping_id, pim);
                    let arena = 1u64 << 33;
                    let count = 300;
                    let plan = RegionPlan::carve(cs.clone(), arena, count);
                    let naive = naive_region(&cs, arena, count);
                    assert_eq!(plan.len(), count);
                    let via_get: Vec<u64> = (0..count).map(|i| plan.get(i)).collect();
                    let via_iter: Vec<u64> = plan.iter().collect();
                    assert_eq!(via_get, naive, "{mapping_id:?} {level:?} pim {pim} (get)");
                    assert_eq!(via_iter, naive, "{mapping_id:?} {level:?} pim {pim} (iter)");
                }
            }
        }
    }

    #[test]
    fn spans_multiple_periods_and_unaligned_arenas() {
        // Small masks → small period, so a few hundred blocks wrap the
        // pattern many times; the arena is deliberately not period-aligned.
        let cs = vec![
            ParityConstraint { mask: (1 << 7) | (1 << 9), parity: true },
            ParityConstraint { mask: 1 << 8, parity: false },
        ];
        let plan = RegionPlan::carve(cs.clone(), 0, 4);
        assert_eq!(plan.period, 1 << 10, "period = 2^(highest constrained bit + 1)");
        for arena_blk in [0u64, 1, 3, 17, 100] {
            let arena = arena_blk * BLOCK_BYTES;
            let count = 500;
            let plan = RegionPlan::carve(cs.clone(), arena, count);
            assert_eq!(plan.to_vec(), naive_region(&cs, arena, count), "arena {arena}");
        }
    }

    #[test]
    fn unconstrained_region_is_contiguous() {
        let plan = RegionPlan::carve(vec![], 1 << 20, 64);
        let expect: Vec<u64> = (0..64u64).map(|i| (1 << 20) + i * BLOCK_BYTES).collect();
        assert_eq!(plan.to_vec(), expect);
        assert_eq!(plan.get(63), (1 << 20) + 63 * BLOCK_BYTES);
    }

    #[test]
    fn iter_range_matches_indexed_access() {
        let cs = id_constraints(PimLevel::BankGroup, MappingId::Skylake, 11);
        let plan = RegionPlan::carve(cs, 1 << 33, 1000);
        let lo = 123;
        let hi = 777;
        let ranged: Vec<u64> = plan.iter_range(lo, hi).collect();
        let indexed: Vec<u64> = (lo..hi).map(|i| plan.get(i)).collect();
        assert_eq!(ranged, indexed);
        assert_eq!(plan.iter_range(5, 5).count(), 0);
    }

    #[test]
    fn seed_materialization_matches_plan_cursors() {
        let cs = id_constraints(PimLevel::BankGroup, MappingId::Skylake, 9);
        let plan = RegionPlan::carve(cs, 1 << 33, 700);
        assert_eq!(plan.materialize_seed(), plan.to_vec());
    }

    #[test]
    fn resident_storage_is_independent_of_region_size() {
        let cs = id_constraints(PimLevel::BankGroup, MappingId::Skylake, 5);
        let small = RegionPlan::carve(cs.clone(), 1 << 33, 100);
        let large = RegionPlan::carve(cs, 1 << 33, 1_000_000);
        assert_eq!(small.resident_words(), large.resident_words());
        assert!(large.resident_words() * 100 < large.len(), "≥100× below materialized");
    }

    #[test]
    fn offset_table_builds_only_when_period_fits_region() {
        // A single bit-9 constraint: period 1 KiB = 16 blocks, 8 satisfying
        // per period. The offset table exists iff per_period <= len — the
        // boundary the doc comment promises (a region smaller than its
        // pattern would pay more select() descents building the table than
        // it saves).
        let cs = vec![ParityConstraint { mask: 1 << 9, parity: false }];
        for (len, expect_table) in [(7u64, false), (8, true), (9, true)] {
            let plan = RegionPlan::carve(cs.clone(), 0, len);
            assert_eq!(plan.per_period, 8, "8 of 16 blocks satisfy a single parity");
            let base = plan.resident_words();
            let via_iter: Vec<u64> = plan.iter().collect();
            let via_get: Vec<u64> = (0..len).map(|i| plan.get(i)).collect();
            assert_eq!(via_iter, via_get, "len {len}");
            let grew = plan.resident_words() > base;
            assert_eq!(
                grew, expect_table,
                "len {len}: offset table built iff per_period <= len"
            );
        }
    }

    #[test]
    fn offset_table_cap_boundary_at_16ki_residues() {
        // Single constraint at bit h: per_period = 2^(h-6). h = 20 sits
        // exactly at the 16 Ki cap (table built); h = 21 overflows it
        // (cursors keep the per-run descent). Both must agree with
        // indexed select() everywhere we sample.
        for (h, expect_table) in [(20u32, true), (21, false)] {
            let cs = vec![ParityConstraint { mask: 1 << h, parity: true }];
            let plan = RegionPlan::carve(cs.clone(), 0, PERIOD_CACHE_CAP * 4);
            assert_eq!(plan.per_period, 1 << (h - 6));
            let base = plan.resident_words();
            // Sample the iterator across several periods (full iteration at
            // this size is slow in debug builds); compare against select().
            let mut it = plan.iter();
            for ix in 0..plan.len() {
                let a = it.next().expect("cursor in range");
                if ix % 997 == 0 || ix < 4 {
                    assert_eq!(a, plan.get(ix), "h {h} ix {ix}");
                }
            }
            assert!(it.next().is_none());
            assert_eq!(
                plan.resident_words() > base,
                expect_table,
                "h {h}: cap is {PERIOD_CACHE_CAP} residues"
            );
            if expect_table {
                assert_eq!(
                    plan.resident_words() - base,
                    plan.per_period,
                    "table holds one offset per residue"
                );
            }
        }
    }

    #[test]
    fn key_runs_match_brute_force_key_scan() {
        // The tabulated per-residue run boundaries must agree with a
        // brute-force (bank, row) scan of the actual absolute addresses,
        // across multiple period instances and for unaligned arenas (the
        // base_rank offset shifts every residue).
        let mut tabulable = 0u32;
        for mapping_id in [MappingId::Skylake, MappingId::Haswell] {
            let m = mapping_by_id(mapping_id);
            let g = *m.geometry();
            for level in [PimLevel::BankGroup, PimLevel::Device] {
                for pim in [0u32, 3] {
                    if pim >= level.pim_count(&g) {
                        continue;
                    }
                    let cs = id_constraints(level, mapping_id, pim);
                    let plan = RegionPlan::carve(cs, (1 << 33) + 4096, 6000);
                    let Some(kr) = plan.key_runs(&m) else {
                        assert!(
                            plan.per_period > PERIOD_CACHE_CAP,
                            "{mapping_id:?} {level:?}: None only above the tabulation cap"
                        );
                        continue;
                    };
                    tabulable += 1;
                    let addrs = plan.to_vec();
                    let key = |pa: u64| {
                        let c = m.decode(pa);
                        (c.bank_index(&g), c.row)
                    };
                    let mut ix = 0u64;
                    while ix < plan.len() {
                        let promised = kr.run_len_from(plan.base_rank + ix);
                        assert!(promised >= 1);
                        // Every promised follower shares the anchor's key.
                        let run_end = (ix + promised).min(plan.len());
                        for j in ix..run_end {
                            assert_eq!(
                                key(addrs[j as usize]),
                                key(addrs[ix as usize]),
                                "{mapping_id:?} {level:?} pim {pim}: block {j} breaks the \
                                 promised run starting at {ix}"
                            );
                        }
                        ix = run_end;
                    }
                    // The promises are also *maximal* within a period
                    // instance: a run only ends at a real key change or an
                    // instance boundary.
                    let pp = plan.per_period;
                    for ix in 1..plan.len().min(3000) {
                        let m_ix = plan.base_rank + ix;
                        if !m_ix.is_multiple_of(pp)
                            && key(addrs[ix as usize]) == key(addrs[ix as usize - 1])
                        {
                            assert!(
                                kr.run_len_from(m_ix - 1) >= 2,
                                "{mapping_id:?} {level:?} pim {pim}: run split at {ix} \
                                 without a key change"
                            );
                        }
                    }
                }
            }
        }
        assert!(tabulable > 0, "no config exercised key_runs");
    }

    #[test]
    fn key_runs_invariant_under_parity_targets() {
        // Plans whose constraint masks coincide must produce identical
        // run tables whatever the parity targets (the coset-leader
        // translation argument behind `RegionPlan::same_key_runs`) —
        // this is what lets GemmContext tabulate once per matrix instead
        // of once per PIM.
        let mut checked = 0u32;
        for mapping_id in [MappingId::Skylake, MappingId::Haswell] {
            let m = mapping_by_id(mapping_id);
            let g = *m.geometry();
            for level in [PimLevel::BankGroup, PimLevel::Device] {
                let base = id_constraints(level, mapping_id, 0);
                let Some(kr0) =
                    RegionPlan::carve(base.clone(), 1 << 33, 4000).key_runs(&m)
                else {
                    continue;
                };
                for pim in 1..level.pim_count(&g).min(8) {
                    let cs = id_constraints(level, mapping_id, pim);
                    assert_eq!(cs.len(), base.len());
                    let plan = RegionPlan::carve(cs, 1 << 33, 4000);
                    assert!(plan.same_key_runs(&RegionPlan::carve(base.clone(), 1 << 33, 4000)));
                    assert_eq!(
                        plan.key_runs(&m),
                        Some(kr0.clone()),
                        "{mapping_id:?} {level:?} pim {pim}: parity targets changed the table"
                    );
                    checked += 1;
                }
            }
        }
        assert!(checked > 0, "no config exercised the invariance");
    }

    #[test]
    fn skip_blocks_is_equivalent_to_pulling() {
        let cs = id_constraints(PimLevel::BankGroup, MappingId::Skylake, 7);
        let plan = RegionPlan::carve(cs, 1 << 33, 1000);
        for (skip_at, n) in [(0u64, 5u64), (3, 1), (10, 64), (100, 900), (500, 10_000)] {
            let mut a = plan.iter();
            let mut b = plan.iter();
            for _ in 0..skip_at {
                a.next();
                b.next();
            }
            for _ in 0..n {
                a.next();
            }
            b.skip_blocks(n);
            assert_eq!(a.pos_rank(), b.pos_rank(), "skip_at {skip_at} n {n}");
            assert_eq!(a.len(), b.len());
            let ra: Vec<u64> = a.collect();
            let rb: Vec<u64> = b.collect();
            assert_eq!(ra, rb, "skip_at {skip_at} n {n}");
        }
    }

    #[test]
    #[should_panic(expected = "unsatisfiable")]
    fn unsatisfiable_carve_panics() {
        let cs = vec![
            ParityConstraint { mask: 1 << 8, parity: true },
            ParityConstraint { mask: 1 << 8, parity: false },
        ];
        let _ = RegionPlan::carve(cs, 0, 10);
    }

    #[test]
    fn vacuous_and_zero_mask_constraints_are_cleaned() {
        // A mask entirely inside the block offset can never be odd for a
        // block address: parity=false is vacuous.
        let cs = vec![ParityConstraint { mask: 0x3f, parity: false }];
        let plan = RegionPlan::carve(cs, 0, 8);
        assert_eq!(plan.to_vec(), (0..8u64).map(|i| i * BLOCK_BYTES).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "region constraint systems are small")]
    fn oversized_constraint_systems_are_rejected() {
        let cs: Vec<ParityConstraint> = (6..23)
            .map(|b| ParityConstraint { mask: 1 << b, parity: false })
            .collect();
        RegionPlan::carve(cs, 0, 1);
    }

    #[test]
    #[should_panic(expected = "unsatisfiable region")]
    fn carving_from_an_unsatisfiable_region_is_rejected() {
        // An odd-parity constraint on sub-block bits can never be met by a
        // block address.
        let cs = vec![ParityConstraint { mask: 1, parity: true }];
        RegionPlan::carve(cs, 0, 4);
    }
}
