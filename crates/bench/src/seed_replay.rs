//! Frozen copy of the *seed* simulation path — materialize-then-replay with
//! the seed's execution engine — used as the benchmark baseline for
//! `bench_sim` / `BENCH_sim.json`.
//!
//! The production engine in `stepstone-core` streams step programs and
//! keeps getting optimized; comparing against a live engine would hide
//! those wins (or credit them to the baseline). This module pins the seed
//! behavior instead: the `UnitCursor` below is the seed's engine verbatim
//! (modulo borrowing the shared `Step`/`SubsetRemap` types from core), the
//! step programs are fully materialized `Vec<Step>`s, and the AGEN runs the
//! seed's per-candidate GF(2) corrector (`ExecMode::MaterializedSeedAgen`).
//! `bench_sim` cross-checks cycle-exactness between this replayer and the
//! streaming engine on every run.
//!
//! Cost-basis note (PR 2): `GemmContext` now carves regions as lazy
//! `RegionPlan`s, so the seed's original materialize-everything carve no
//! longer happens inside `GemmContext::build`. The replay re-pays the
//! seed's carve price here — `transfer_programs` materializes every region
//! through the seed-era `StepStoneAgen` walk
//! ([`stepstone_addr::RegionPlan::materialize_seed`]) — but the kernel
//! programs' fill/drain addresses are generated through the production
//! region cursors (address-identical; single-digit-% of baseline wall
//! time). PR-2-and-later speedup numbers therefore sit on a slightly
//! different baseline measurement than PR 1's 2.24×; compare within a
//! basis, not across.

use std::collections::VecDeque;
use stepstone_addr::{DramCoord, XorMapping};
use stepstone_core::engine::{Step, SubsetRemap};
use stepstone_core::flow::{build_kernel_program_seed, GemmContext};
use stepstone_core::{GemmSpec, LatencyReport, Phase, SimOptions, SystemConfig};
use stepstone_dram::{CasKind, CommandBus, MemoryBackend, Port, TimingState};

/// Remap helper mirroring the seed engine's `SubsetRemap::remap` (private
/// in core).
fn subset_remap(su: &SubsetRemap, mut c: DramCoord, pa: u64) -> DramCoord {
    for (i, &mask) in su.dropped_masks.iter().enumerate() {
        let parity = (pa & mask).count_ones() & 1;
        let bg_bit = su.bg_bits - 1 - i as u32;
        c.bankgroup &= !(1 << bg_bit);
        c.row ^= parity << (su.row_bits + i as u32);
    }
    c
}

#[derive(Debug, Clone, Copy)]
struct WinEntry {
    coord: DramCoord,
    write: bool,
    cat: Phase,
    compute: bool,
    gen_ready: u64,
}

/// The seed's execution engine: a cursor over a pre-built `Vec<Step>`.
pub struct SeedUnitCursor {
    pub channel: u32,
    pub port: Port,
    steps: std::vec::IntoIter<Step>,
    peeked: Option<Step>,
    window: VecDeque<WinEntry>,
    window_cap: usize,
    gen_clock: u64,
    pub not_before: u64,
    simd_free: u64,
    inflight: VecDeque<u64>,
    launch_avail: u64,
    launch_req: u64,
    pending_kernel_start: bool,
    clock: u64,
    pub cat_cycles: [u64; 8],
    pub end_time: u64,
    compute_cycles_per_block: u64,
    simd_ops_per_block: u64,
    pipeline_depth: usize,
    launch_slots: u64,
    launch_latency: u64,
    pub pipelined_launch: bool,
    burst_window: u64,
    host_gap: u64,
    subset: Option<SubsetRemap>,
    pub launches: u64,
    pub simd_ops: u64,
    pub scratch_accesses: u64,
    pub agen_iter_sum: u64,
    pub agen_iter_max: u32,
    pub agen_bubbles: u64,
}

impl SeedUnitCursor {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        channel: u32,
        port: Port,
        steps: Vec<Step>,
        start: u64,
        compute_cycles_per_block: u64,
        simd_ops_per_block: u64,
        pipeline_depth: usize,
        launch_slots: u64,
        launch_latency: u64,
        burst_window: u64,
        subset: Option<SubsetRemap>,
    ) -> Self {
        Self {
            channel,
            port,
            steps: steps.into_iter(),
            peeked: None,
            window: VecDeque::with_capacity(8),
            window_cap: (pipeline_depth / 2).clamp(1, 8),
            gen_clock: start,
            not_before: start,
            simd_free: start,
            inflight: VecDeque::with_capacity(pipeline_depth),
            launch_avail: start,
            launch_req: start,
            pending_kernel_start: false,
            clock: start,
            cat_cycles: [0; 8],
            end_time: start,
            compute_cycles_per_block,
            simd_ops_per_block,
            pipeline_depth,
            launch_slots,
            launch_latency,
            pipelined_launch: false,
            burst_window,
            host_gap: 0,
            subset,
            launches: 0,
            simd_ops: 0,
            scratch_accesses: 0,
            agen_iter_sum: 0,
            agen_iter_max: 0,
            agen_bubbles: 0,
        }
    }

    pub fn transfer(channel: u32, port: Port, steps: Vec<Step>, start: u64, gap: u64) -> Self {
        let mut c = Self::new(channel, port, steps, start, 0, 0, 4, 0, 0, 4, None);
        c.host_gap = gap;
        c
    }

    fn peek(&mut self) -> Option<Step> {
        if self.peeked.is_none() {
            self.peeked = self.steps.next();
        }
        self.peeked
    }

    fn fill_window(&mut self, mapping: &XorMapping) {
        while self.window.len() < self.window_cap {
            match self.peek() {
                Some(Step::Access { pa, write, cat, agen_iters, compute }) => {
                    self.peeked = None;
                    self.gen_clock = self.gen_clock.max(self.not_before) + agen_iters as u64;
                    self.agen_iter_sum += agen_iters as u64;
                    self.agen_iter_max = self.agen_iter_max.max(agen_iters);
                    if agen_iters as u64 > self.burst_window {
                        self.agen_bubbles += 1;
                    }
                    let mut coord = mapping.decode(pa);
                    if let Some(su) = &self.subset {
                        coord = subset_remap(su, coord, pa);
                    }
                    self.window.push_back(WinEntry {
                        coord,
                        write,
                        cat,
                        compute,
                        gen_ready: self.gen_clock,
                    });
                }
                _ => break,
            }
        }
    }

    fn desired(&mut self, mapping: &XorMapping) -> Option<u64> {
        self.fill_window(mapping);
        if let Some(e) = self.window.front() {
            return Some(self.not_before.max(e.gen_ready));
        }
        self.peek()?;
        Some(self.not_before)
    }

    fn advance<B: MemoryBackend>(&mut self, ts: &mut B, bus: &mut CommandBus, mapping: &XorMapping) {
        self.fill_window(mapping);
        if self.window.is_empty() {
            let Some(step) = self.peeked.take().or_else(|| self.steps.next()) else {
                return;
            };
            match step {
                Step::Launch => {
                    self.launches += 1;
                    if self.launch_slots > 0 {
                        let grant =
                            bus.acquire(self.channel as usize, self.launch_req, self.launch_slots);
                        self.launch_avail = grant + self.launch_latency;
                        if self.pipelined_launch {
                            self.launch_req = grant;
                        }
                    } else {
                        self.launch_avail = self.not_before;
                    }
                    self.pending_kernel_start = !self.pipelined_launch;
                }
                Step::Access { .. } => unreachable!("fill_window consumes Access steps"),
            }
            return;
        }
        let base_nb = self.not_before.max(self.launch_avail);
        let mut best_ix = 0;
        let mut best_t = u64::MAX;
        for (i, e) in self.window.iter().enumerate() {
            let nb = base_nb.max(e.gen_ready);
            let kind = if e.write { CasKind::Write } else { CasKind::Read };
            let t = ts.probe(e.coord, kind, self.port, nb);
            if t < best_t {
                best_t = t;
                best_ix = i;
                if t <= base_nb {
                    break;
                }
            }
        }
        let e = self.window.remove(best_ix).expect("window entry");
        let mut nb = base_nb.max(e.gen_ready);
        if self.inflight.len() >= self.pipeline_depth {
            if let Some(t) = self.inflight.pop_front() {
                nb = nb.max(t);
            }
        }
        let kind = if e.write { CasKind::Write } else { CasKind::Read };
        let bt = ts.access(e.coord, kind, self.port, nb);
        if self.pending_kernel_start {
            self.pending_kernel_start = false;
            self.launch_req = bt.cas_at;
        }
        self.not_before = if self.host_gap > 0 {
            bt.cas_at + self.burst_window + self.host_gap
        } else {
            bt.cas_at
        };
        let mark = if e.compute {
            let done = self.simd_free.max(bt.data_end) + self.compute_cycles_per_block;
            self.simd_free = done;
            self.inflight.push_back(done);
            self.simd_ops += self.simd_ops_per_block;
            self.scratch_accesses += 2;
            bt.cas_at.max(self.clock)
        } else {
            self.scratch_accesses += 1;
            bt.data_end
        };
        let mark = mark.max(self.clock);
        self.cat_cycles[e.cat.index()] += mark - self.clock;
        self.clock = mark;
        self.end_time = self.end_time.max(bt.data_end).max(self.simd_free);
    }

    fn finish(&mut self) {
        if self.simd_free > self.clock {
            self.cat_cycles[Phase::Gemm.index()] += self.simd_free - self.clock;
            self.clock = self.simd_free;
        }
        self.end_time = self.end_time.max(self.clock);
    }
}

/// The seed's `run_phase`: linear scan over all units per step. Generic
/// over [`MemoryBackend`] so the replayer can drive any timing tier, though
/// the committed baseline always replays against the exact model.
pub fn run_phase_seed<B: MemoryBackend>(
    ts: &mut B,
    bus: &mut CommandBus,
    mapping: &XorMapping,
    units: &mut [SeedUnitCursor],
) -> u64 {
    loop {
        let mut best: Option<(usize, u64)> = None;
        for (i, u) in units.iter_mut().enumerate() {
            if let Some(t) = u.desired(mapping) {
                if best.is_none_or(|(_, bt)| t < bt) {
                    best = Some((i, t));
                }
            }
        }
        let Some((i, _)) = best else { break };
        units[i].advance(ts, bus, mapping);
    }
    let mut end = 0;
    for u in units.iter_mut() {
        u.finish();
        end = end.max(u.end_time);
    }
    end
}

/// Materialized per-channel DMA transfer programs (the seed built these
/// eagerly; one interleaved `Vec<Step>` per channel). The production path
/// streams region plans; the seed baseline faithfully materializes them.
fn transfer_programs(
    ctx: &GemmContext,
    regions: &[stepstone_addr::RegionPlan],
    write: bool,
    cat: Phase,
) -> Vec<(u32, Vec<Step>)> {
    let channels = ctx.mapping.geometry().channels;
    (0..channels)
        .map(|ch| {
            let mine: Vec<Vec<u64>> = ctx
                .active_pims
                .iter()
                .enumerate()
                .filter(|(_, &pim)| ctx.pim_channel(pim) == ch)
                .map(|(pix, _)| regions[pix].materialize_seed())
                .collect();
            let longest = mine.iter().map(|r| r.len()).max().unwrap_or(0);
            let mut steps = Vec::new();
            for j in 0..longest {
                for r in &mine {
                    if let Some(&pa) = r.get(j) {
                        steps.push(Step::Access { pa, write, cat, agen_iters: 1, compute: false });
                    }
                }
            }
            (ch, steps)
        })
        .collect()
}

/// End-to-end seed-path simulation of one power-of-two GEMM: materialize
/// every program (seed AGEN corrector included), then replay on the seed
/// engine. Returns the same `LatencyReport` shape as the production path.
pub fn simulate_pow2_gemm_seed(
    sys: &SystemConfig,
    spec: &GemmSpec,
    opts: &SimOptions,
) -> LatencyReport {
    let ctx = GemmContext::build(sys, spec, opts);
    let mut ts = TimingState::new(sys.dram);
    let mut bus = CommandBus::new(sys.dram.geom.channels as usize);
    let loc_mode = opts.localization.unwrap_or(sys.localization);
    let mut report = LatencyReport { clock_hz: sys.dram.clock_hz, ..Default::default() };

    let gap = loc_mode.inter_block_gap();
    let mut loc: Vec<SeedUnitCursor> =
        transfer_programs(&ctx, &ctx.b_regions, true, Phase::Localization)
            .into_iter()
            .map(|(ch, steps)| SeedUnitCursor::transfer(ch, Port::Channel, steps, 0, gap))
            .collect();
    let loc_end = run_phase_seed(&mut ts, &mut bus, &ctx.mapping, &mut loc);
    report.add_phase(Phase::Localization, loc_end);

    let mut units: Vec<SeedUnitCursor> = (0..ctx.active_pims.len())
        .map(|pix| {
            let steps: Vec<Step> = build_kernel_program_seed(&ctx, sys, opts, pix);
            SeedUnitCursor::new(
                ctx.pim_channel(ctx.active_pims[pix]),
                opts.level_cfg.port(),
                steps,
                loc_end,
                opts.level_cfg.compute_cycles_per_block(ctx.n),
                opts.level_cfg.simd_ops_per_block(ctx.n),
                opts.level_cfg.pipeline_depth as usize,
                sys.launch.slots_for(opts.granularity),
                sys.launch.launch_latency,
                sys.dram.timing.t_bl,
                None,
            )
        })
        .collect();
    run_phase_seed(&mut ts, &mut bus, &ctx.mapping, &mut units);
    for u in &units {
        for p in [Phase::Gemm, Phase::FillB, Phase::FillC, Phase::DrainC, Phase::Launch] {
            let i = p.index();
            report.phase_cycles[i] = report.phase_cycles[i].max(u.cat_cycles[i]);
        }
        report.activity.simd_ops += u.simd_ops;
        report.activity.scratchpad_accesses += u.scratch_accesses;
        report.activity.launches += u.launches;
        report.activity.agen_iterations += u.agen_iter_sum;
        report.activity.agen_max_step = report.activity.agen_max_step.max(u.agen_iter_max);
        report.activity.agen_bubbles += u.agen_bubbles;
    }

    let kernel_end = units.iter().map(|u| u.end_time).max().unwrap_or(loc_end);
    let mut red: Vec<SeedUnitCursor> =
        transfer_programs(&ctx, &ctx.c_regions, false, Phase::Reduction)
            .into_iter()
            .map(|(ch, steps)| SeedUnitCursor::transfer(ch, Port::Channel, steps, kernel_end, gap))
            .collect();
    let red_end = run_phase_seed(&mut ts, &mut bus, &ctx.mapping, &mut red);
    report.add_phase(Phase::Reduction, red_end - kernel_end);

    report.total = red_end;
    report.dram = ts.stats;
    report
}
