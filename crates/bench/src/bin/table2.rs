fn main() {
    let scale = stepstone_bench::Scale::from_env();
    stepstone_bench::figures::table2::run(scale).emit();
}
