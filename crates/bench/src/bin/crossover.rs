fn main() {
    let scale = stepstone_bench::Scale::from_env();
    stepstone_bench::figures::crossover::run(scale).emit();
}
