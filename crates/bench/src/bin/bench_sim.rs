//! End-to-end simulator hot-path benchmark: the streaming engine (with and
//! without per-channel parallel sharding) vs the seed's
//! materialize-then-replay path, on a paper-scale GEMM.
//!
//! Emits `BENCH_sim.json` (in the working directory) so the perf
//! trajectory of the simulation hot path is tracked from PR to PR:
//!
//! ```json
//! {
//!   "bench": "sim_hot_path",
//!   "config": {"m":…, "k":…, "n":…, "level":"BG", "pims":…, "threads":…},
//!   "runs": [{"mode":…, "wall_ns":…, "blocks":…, "ns_per_block":…,
//!             "sim_cycles":…, "peak_resident_steps":…}, …],
//!   "region_addrs": {"materialized":…, "resident":…, "drop":…},
//!   "speedup_streaming_vs_seed": …,
//!   "speedup_parallel_vs_serial": …,
//!   "subpaper": {"m":…, "k":…, "n":…, "cold_ns_per_block":…,
//!                "warm_ns_per_block":…, "seed_ns_per_block":…,
//!                "speedup_warm_vs_seed":…, "agen_ns_per_span":…,
//!                "span_cache_hits":…, "span_cache_misses":…,
//!                "boundary_successors":…, "window_jumps":…,
//!                "cycle_exact": true},
//!   "agen_counters": {"live_spans":…, "replayed_spans":…,
//!                     "window_jumps":…, "boundary_successors":…,
//!                     "skeleton_hits":…, "skeleton_misses":…},
//!   "run_counters": {"runs":…, "run_blocks":…, "mean_run_len":…,
//!                    "hist": […], "fallback": {"refresh":…, "row":…,
//!                    "trace":…, "traffic":…, "other":…}},
//!   "backends": {"exact": {"wall_ns":…, "sim_cycles":…},
//!                "analytic": {"wall_ns":…, "sim_cycles":…,
//!                             "cycles_ratio_vs_exact":…, "speedup_vs_exact":…},
//!                "speedup_floor": 20.0,
//!                "presets": [{"name":…, "sim_cycles":…, "clock_hz":…,
//!                             "seconds":…}, …]},
//!   "serving": {"requests": 1000, "mix": {…}, "queue_cap":…,
//!               "max_batch_requests":…, "cost_table_entries":…,
//!               "sweep": [{"mean_gap_cycles":…, "p50":…, "p95":…, "p99":…,
//!                          "served":…, "rejected":…, "batches":…,
//!                          "pim_batches":…, "mean_queue_depth":…,
//!                          "channel_utilization":…}, …],
//!               "knee_index":…, "knee_factor": 3.0,
//!               "serial_equals_parallel": true,
//!               "warm_vs_cold": {"requests":…, "warm_wall_ns":…,
//!                                "cold_wall_ns":…, "speedup":…,
//!                                "speedup_floor": 1.2, "cycle_exact": true,
//!                                "session_contexts":…, "session_hits":…,
//!                                "session_misses":…}},
//!   "fabric": {"nodes":…, "link_bytes_per_cycle":…, "link_latency":…,
//!              "host_dma": {"total_cycles":…, "reduce_cycles":…},
//!              "topologies": [{"topology": "ring", "total_cycles":…,
//!                              "reduce_cycles":…, "fabric_cycles":…,
//!                              "bytes_injected":…, "peak_link_gbps":…,
//!                              "links": [{"src":…, "dst":…, "bytes":…,
//!                                         "busy_cycles":…, "messages":…,
//!                                         "peak_demand_bytes":…,
//!                                         "gbps":…}, …]}, …],
//!              "dram_identical": true},
//!   "cycle_exact": true
//! }
//! ```
//!
//! The `subpaper` section tracks the Table-I serving shapes (batch-scale
//! GEMMs) where AGEN, not DRAM timing, dominates: `cold` is the first
//! simulation of the shape (span-program cache empty), `warm` the second —
//! the steady state of repeated layers — and `agen_ns_per_span` times the
//! production span generator alone across every Algorithm-1 cell
//! (best-of-N to damp host noise; regression-gated by `make bench-smoke`).
//! Span-program *counters* (deterministic, unlike wall time) are recorded
//! twice: `agen_counters` for the paper-scale streaming-serial run and the
//! `subpaper` hit/miss/boundary fields for the warm span-generation pass —
//! `make bench-smoke` gates the paper-scale `boundary_successors` count so
//! a window-successor or skeleton-cache regression cannot hide in host
//! noise. Run-granularity counters (PR 6) are recorded the same way:
//! `run_counters` holds the paper-scale streaming-serial admission stats
//! (runs, blocks-per-run histogram, per-block fallback splits by cause),
//! the `subpaper` section its warm-run equivalent — both deterministic,
//! both checked for serial/parallel agreement here and exact-match gated
//! by `make bench-smoke`.
//!
//! Usage: `bench_sim [--quick] [M K N]`. `--quick` (or
//! `STEPSTONE_SCALE=quick`) runs a reduced shape for smoke tests.

use std::fmt::Write as _;
use std::time::Instant;
use stepstone_addr::groups::partition_constraints;
use stepstone_addr::{PimLevel, StepStoneAgen};
use stepstone_bench::seed_replay::simulate_pow2_gemm_seed;
use stepstone_core::engine::{reset_run_counters, run_counters, RunCounters, FB_LABELS};
use stepstone_core::flow::build_kernel_program_for;
use stepstone_core::{
    simulate_pow2_gemm_exec, ExecMode, FabricConfig, FabricStats, GemmContext, GemmSpec,
    LatencyReport, Phase, ReduceVia, SimOptions, SystemConfig, TopologyKind,
};
use stepstone_dram::{BackendKind, DramConfig};
use stepstone_serving::{
    build_cost_table, find_knee, run_serving, sweep_loads, ColdCoster, ServingConfig,
    ServingReport, SessionCoster,
};
use stepstone_workloads::{OpenLoopArrivals, RequestMix};

struct Run {
    mode: &'static str,
    wall_ns: u128,
    sim_cycles: u64,
    blocks: u64,
    peak_resident_steps: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick")
        || std::env::var("STEPSTONE_SCALE").as_deref() == Ok("quick");
    let dims: Vec<usize> = args.iter().filter_map(|a| a.parse().ok()).collect();
    let (m, k, n) = match dims.as_slice() {
        [m, k, n, ..] => (*m, *k, *n),
        _ if quick => (512, 2048, 8),
        _ => (4096, 4096, 256),
    };
    let level = PimLevel::BankGroup;
    let sys = SystemConfig::default();
    let serial_sys = SystemConfig { parallel: false, ..sys.clone() };
    let spec = GemmSpec::new(m, k, n);
    assert!(spec.is_pow2(), "bench uses a single power-of-two GEMM");
    let opts = SimOptions::stepstone(level);
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);

    // Resident accounting, outside the timed region. Streaming holds at
    // most the reorder window per unit; the materialized path holds the
    // whole kernel program per unit. Region addresses: the span-backed
    // plans hold O(address bits × 2^ID bits) words, the seed held every
    // address.
    let ctx = GemmContext::build(&sys, &spec, &opts);
    let units = ctx.active_pims.len() as u64;
    let window_cap = (opts.level_cfg.pipeline_depth as u64 / 2).clamp(1, 8);
    // Region residency is measured on the freshly carved plans: what a plan
    // must hold to *represent* the region. (Iterating a plan additionally
    // builds a bounded per-period offset cache — execution working memory,
    // reclaimed with the plan, not part of the representation.)
    let region_addrs_materialized: u64 = ctx
        .b_regions
        .iter()
        .chain(ctx.c_regions.iter())
        .map(|r| r.len())
        .sum();
    let region_addrs_resident: u64 = ctx
        .b_regions
        .iter()
        .chain(ctx.c_regions.iter())
        .map(|r| r.resident_words())
        .sum();
    let region_drop = region_addrs_materialized as f64 / region_addrs_resident.max(1) as f64;
    let materialized_steps: u64 = (0..ctx.active_pims.len())
        .map(|pix| build_kernel_program_for(&ctx, &sys, &opts, pix).len() as u64)
        .sum();
    drop(ctx);

    println!(
        "bench_sim: {m}x{k} N={n} STP-{} ({} PIMs, {threads} threads)",
        level.tag(),
        units
    );
    println!(
        "  region addresses: {region_addrs_materialized} materialized -> \
         {region_addrs_resident} resident words ({region_drop:.0}x drop)"
    );
    let mut runs = Vec::new();
    type SimFn = Box<dyn Fn() -> LatencyReport>;
    let cases: Vec<(&'static str, u64, SimFn)> = vec![
        (
            "streaming",
            units * (window_cap + 1),
            Box::new({
                let (sys, spec, opts) = (sys.clone(), spec, opts.clone());
                move || simulate_pow2_gemm_exec(&sys, &spec, &opts, None, ExecMode::Streaming)
            }),
        ),
        (
            "streaming-serial",
            units * (window_cap + 1),
            Box::new({
                let (sys, spec, opts) = (serial_sys.clone(), spec, opts.clone());
                move || simulate_pow2_gemm_exec(&sys, &spec, &opts, None, ExecMode::Streaming)
            }),
        ),
        (
            "seed-replay",
            materialized_steps,
            Box::new({
                let (sys, spec, opts) = (serial_sys.clone(), spec, opts.clone());
                move || simulate_pow2_gemm_seed(&sys, &spec, &opts)
            }),
        ),
    ];
    // Per-run AGEN span-program counters; the streaming-serial run's are
    // recorded in the JSON (deterministic: serial engine, warm cache).
    let mut agen_paper = stepstone_addr::agen::AgenCounters::default();
    // Run-granularity counters per mode: streaming and streaming-serial
    // must agree exactly (admission is engine-order independent); the
    // serial run's stats go into the JSON.
    let mut rc_paper = RunCounters::default();
    let mut rc_parallel = RunCounters::default();
    // The streaming run's full report doubles as the host-DMA reference for
    // the fabric comparison (same shape, same engine, default reduce path).
    let mut host_report: Option<LatencyReport> = None;
    for (label, resident, sim) in cases {
        stepstone_addr::agen::reset_agen_counters();
        reset_run_counters();
        let t0 = Instant::now();
        let report = sim();
        let wall_ns = t0.elapsed().as_nanos();
        let counters = stepstone_addr::agen::agen_counters();
        let rc = run_counters();
        if label == "streaming-serial" {
            agen_paper = counters;
            rc_paper = rc;
        } else if label == "streaming" {
            rc_parallel = rc;
            host_report = Some(report.clone());
        }
        let blocks = report.dram.accesses();
        println!(
            "  {label:<18} {:>8.1} ms  {:>7.1} ns/block  ({blocks} blocks, {} sim cycles, \
             {resident} resident steps)",
            wall_ns as f64 / 1e6,
            wall_ns as f64 / blocks as f64,
            report.total,
        );
        if label != "seed-replay" {
            println!(
                "  {:<18} spans {} live / {} replayed; boundaries {} live / {} jumped; \
                 skeletons {} hit / {} missed",
                "", counters.live_spans, counters.replayed_spans,
                counters.boundary_successors, counters.window_jumps,
                counters.skeleton_hits, counters.skeleton_misses,
            );
            println!(
                "  {:<18} runs {} admitted covering {} blocks (mean {:.1}); fallback {}",
                "",
                rc.runs,
                rc.run_blocks,
                rc.mean_run_len(),
                fallback_summary(&rc),
            );
        }
        runs.push(Run {
            mode: label,
            wall_ns,
            sim_cycles: report.total,
            blocks,
            peak_resident_steps: resident,
        });
    }

    assert_eq!(
        rc_paper, rc_parallel,
        "run-granularity counters disagree between serial and parallel engines"
    );

    // ---- sub-paper-scale serving shape (Table-I batch GEMMs) ----
    let sp = subpaper_section(&sys, &serial_sys);

    // ---- backend tiers (PR 7): analytic fast model + device presets ----
    let bk = backends_section(&sys, &spec, &opts, runs[0].wall_ns, runs[0].sim_cycles);

    // ---- continuous serving (PR 8): load sweep + warm-vs-cold sessions ----
    let sv = serving_section(&sys);

    // ---- inter-device fabric (PR 9): PIM-to-PIM reduce, line vs ring ----
    let fb = fabric_section(&sys, &spec, &opts, host_report.as_ref().expect("streaming run"));

    // ---- VA->PA paging (PR 10): locality preserved per page size ----
    let pg = paging_section(&sys, &serial_sys, &spec, &opts, runs[0].sim_cycles, &rc_paper);

    let cycle_exact = runs.windows(2).all(|w| {
        w[0].sim_cycles == w[1].sim_cycles && w[0].blocks == w[1].blocks
    });
    assert!(cycle_exact, "execution modes disagree on simulated cycles/blocks");
    let speedup = runs[2].wall_ns as f64 / runs[0].wall_ns as f64;
    let par_speedup = runs[1].wall_ns as f64 / runs[0].wall_ns as f64;
    println!("  speedup streaming vs seed path: {speedup:.2}x (cycle-exact: {cycle_exact})");
    println!("  speedup parallel vs serial engine: {par_speedup:.2}x ({threads} threads)");

    let mut json = String::from("{\n  \"bench\": \"sim_hot_path\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"m\": {m}, \"k\": {k}, \"n\": {n}, \"level\": \"{}\", \
         \"pims\": {units}, \"threads\": {threads}}},",
        level.tag()
    );
    json.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"mode\": \"{}\", \"wall_ns\": {}, \"sim_cycles\": {}, \"blocks\": {}, \
             \"ns_per_block\": {:.2}, \"peak_resident_steps\": {}}}",
            r.mode,
            r.wall_ns,
            r.sim_cycles,
            r.blocks,
            r.wall_ns as f64 / r.blocks as f64,
            r.peak_resident_steps,
        );
        json.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"region_addrs\": {{\"materialized\": {region_addrs_materialized}, \
         \"resident\": {region_addrs_resident}, \"drop\": {region_drop:.1}}},"
    );
    let _ = writeln!(json, "  \"speedup_streaming_vs_seed\": {speedup:.3},");
    let _ = writeln!(json, "  \"speedup_parallel_vs_serial\": {par_speedup:.3},");
    let _ = writeln!(
        json,
        "  \"subpaper\": {{\"m\": {}, \"k\": {}, \"n\": {}, \"level\": \"BG\", \
         \"cold_ns_per_block\": {:.2}, \"warm_ns_per_block\": {:.2}, \
         \"seed_ns_per_block\": {:.2}, \"speedup_warm_vs_seed\": {:.3}, \
         \"agen_ns_per_span\": {:.2}, \"cache_resident_spans\": {}, \
         \"span_cache_hits\": {}, \"span_cache_misses\": {}, \
         \"boundary_successors\": {}, \"window_jumps\": {}, \
         \"run_counters\": {}, \"cycle_exact\": {}}},",
        sp.m,
        sp.k,
        sp.n,
        sp.cold_ns_per_block,
        sp.warm_ns_per_block,
        sp.seed_ns_per_block,
        sp.seed_ns_per_block / sp.warm_ns_per_block,
        sp.agen_ns_per_span,
        sp.cache_resident_spans,
        sp.agen.skeleton_hits,
        sp.agen.skeleton_misses,
        sp.agen.boundary_successors,
        sp.agen.window_jumps,
        run_counters_json(&sp.run_counters),
        sp.cycle_exact,
    );
    let _ = writeln!(
        json,
        "  \"agen_counters\": {{\"live_spans\": {}, \"replayed_spans\": {}, \
         \"window_jumps\": {}, \"boundary_successors\": {}, \
         \"skeleton_hits\": {}, \"skeleton_misses\": {}}},",
        agen_paper.live_spans,
        agen_paper.replayed_spans,
        agen_paper.window_jumps,
        agen_paper.boundary_successors,
        agen_paper.skeleton_hits,
        agen_paper.skeleton_misses,
    );
    let _ = writeln!(json, "  \"run_counters\": {},", run_counters_json(&rc_paper));
    json.push_str("  \"backends\": {\n");
    let _ = writeln!(
        json,
        "    \"exact\": {{\"wall_ns\": {}, \"sim_cycles\": {}}},",
        runs[0].wall_ns, runs[0].sim_cycles,
    );
    let _ = writeln!(
        json,
        "    \"analytic\": {{\"wall_ns\": {}, \"sim_cycles\": {}, \
         \"cycles_ratio_vs_exact\": {:.4}, \"speedup_vs_exact\": {:.1}}},",
        bk.analytic_wall_ns, bk.analytic_cycles, bk.cycles_ratio, bk.speedup,
    );
    let _ = writeln!(json, "    \"speedup_floor\": {:.1},", ANALYTIC_SPEEDUP_FLOOR);
    json.push_str("    \"presets\": [\n");
    for (i, p) in bk.presets.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"name\": \"{}\", \"sim_cycles\": {}, \"clock_hz\": {}, \
             \"seconds\": {:.6}}}",
            p.name, p.sim_cycles, p.clock_hz, p.seconds,
        );
        json.push_str(if i + 1 < bk.presets.len() { ",\n" } else { "\n" });
    }
    json.push_str("    ]\n  },\n");
    json.push_str("  \"serving\": {\n");
    let _ = writeln!(
        json,
        "    \"requests\": {}, \"mix\": {{\"dlrm\": {:.2}, \"bert\": {:.2}, \"gpt2\": {:.2}}},",
        sv.requests, sv.mix.dlrm, sv.mix.bert, sv.mix.gpt2,
    );
    let _ = writeln!(
        json,
        "    \"queue_cap\": {}, \"max_batch_requests\": {}, \"cost_table_entries\": {},",
        sv.cfg.queue_cap, sv.cfg.max_batch_requests, sv.table_entries,
    );
    json.push_str("    \"sweep\": [\n");
    for (i, (r, gap)) in sv.sweep.iter().zip(sv.gaps).enumerate() {
        let _ = write!(
            json,
            "      {{\"mean_gap_cycles\": {gap:.0}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \
             \"served\": {}, \"rejected\": {}, \"batches\": {}, \"pim_batches\": {}, \
             \"mean_queue_depth\": {:.3}, \"channel_utilization\": {:.4}}}",
            r.p50,
            r.p95,
            r.p99,
            r.served,
            r.rejected,
            r.batches,
            r.pim_batches,
            r.mean_queue_depth,
            r.channel_utilization,
        );
        json.push_str(if i + 1 < sv.sweep.len() { ",\n" } else { "\n" });
    }
    json.push_str("    ],\n");
    let _ = writeln!(
        json,
        "    \"knee_index\": {}, \"knee_factor\": 3.0, \"serial_equals_parallel\": {},",
        sv.knee, sv.serial_equals_parallel,
    );
    let _ = writeln!(
        json,
        "    \"warm_vs_cold\": {{\"requests\": {}, \"warm_wall_ns\": {}, \"cold_wall_ns\": {}, \
         \"speedup\": {:.2}, \"speedup_floor\": {SERVING_WARM_SPEEDUP_FLOOR:.1}, \
         \"cycle_exact\": true, \"session_contexts\": {}, \"session_hits\": {}, \
         \"session_misses\": {}}}",
        sv.diff_requests,
        sv.warm_wall_ns,
        sv.cold_wall_ns,
        sv.warm_speedup,
        sv.session_contexts,
        sv.session_hits,
        sv.session_misses,
    );
    json.push_str("  },\n");
    json.push_str("  \"fabric\": {\n");
    let _ = writeln!(
        json,
        "    \"nodes\": {}, \"link_bytes_per_cycle\": {}, \"link_latency\": {},",
        fb.nodes, fb.link_bytes_per_cycle, fb.link_latency,
    );
    let _ = writeln!(
        json,
        "    \"host_dma\": {{\"total_cycles\": {}, \"reduce_cycles\": {}}},",
        fb.host_total, fb.host_reduce,
    );
    json.push_str("    \"topologies\": [\n");
    for (i, t) in fb.topos.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"topology\": \"{}\", \"total_cycles\": {}, \"reduce_cycles\": {}, \
             \"fabric_cycles\": {}, \"bytes_injected\": {}, \"peak_link_gbps\": {:.3},",
            t.stats.topology,
            t.total_cycles,
            t.reduce_cycles,
            t.stats.reduce_fabric_cycles,
            t.stats.bytes_injected,
            t.peak_link_gbps,
        );
        json.push_str("       \"links\": [\n");
        for (j, l) in t.stats.links.iter().enumerate() {
            let _ = write!(
                json,
                "        {{\"src\": {}, \"dst\": {}, \"bytes\": {}, \"busy_cycles\": {}, \
                 \"messages\": {}, \"peak_demand_bytes\": {}, \"gbps\": {:.3}}}",
                l.src,
                l.dst,
                l.bytes,
                l.busy_cycles,
                l.messages,
                l.peak_demand_bytes,
                l.gbps_active(fb.clock_hz),
            );
            json.push_str(if j + 1 < t.stats.links.len() { ",\n" } else { "\n" });
        }
        json.push_str("       ]}");
        json.push_str(if i + 1 < fb.topos.len() { ",\n" } else { "\n" });
    }
    json.push_str("    ],\n");
    json.push_str("    \"dram_identical\": true\n");
    json.push_str("  },\n");
    json.push_str("  \"paging\": {\n");
    let _ = writeln!(
        json,
        "    \"baseline_sim_cycles\": {}, \"identity\": {{\"page_bytes\": 4096, \
         \"sim_cycles\": {}, \"bit_identical\": {}}},",
        runs[0].sim_cycles, pg.identity_sim_cycles, pg.identity_bit_identical,
    );
    json.push_str("    \"arms\": [\n");
    for (i, a) in pg.arms.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"page_bytes\": {}, \"wall_ns\": {}, \"sim_cycles\": {}, \
             \"ns_per_block\": {:.2}, \"cycles_vs_baseline\": {:.4}, \
             \"run_counters\": {},",
            a.page_bytes,
            a.wall_ns,
            a.sim_cycles,
            a.wall_ns as f64 / a.blocks as f64,
            a.sim_cycles as f64 / runs[0].sim_cycles as f64,
            run_counters_json(&a.run_counters),
        );
        let _ = write!(
            json,
            "       \"sampled\": {{\"blocks\": {}, \"runs\": {}, \"mean_run_len\": {:.2}, \
             \"page_splits\": {}, \"locality_vs_native\": {:.4}}}}}",
            a.sampled.blocks,
            a.sampled.runs,
            a.sampled.mean_run_len(),
            a.sampled.page_splits,
            a.sampled.mean_run_len() / pg.native_mean_run_len,
        );
        json.push_str(if i + 1 < pg.arms.len() { ",\n" } else { "\n" });
    }
    json.push_str("    ],\n");
    let _ = writeln!(
        json,
        "    \"native_sampled_mean_run_len\": {:.2}\n  }},",
        pg.native_mean_run_len
    );
    let _ = writeln!(json, "  \"cycle_exact\": {cycle_exact}");
    json.push_str("}\n");
    std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
    println!("  [saved BENCH_sim.json]");
}

/// The committed analytic-tier speedup floor: the closed-form executor
/// must stay at least this much faster than the exact streaming engine on
/// the paper-scale shape (`make bench-smoke` gates it).
const ANALYTIC_SPEEDUP_FLOOR: f64 = 20.0;

/// Warm-session wall-clock floor: a serving run priced by the persistent
/// session executor must beat the same run priced by per-batch cold-start
/// executors by at least this factor (`make bench-smoke` gates it; the
/// measured ratio is far higher, the floor only guards the architecture).
const SERVING_WARM_SPEEDUP_FLOOR: f64 = 1.2;

struct ServingSection {
    requests: u64,
    mix: RequestMix,
    cfg: ServingConfig,
    table_entries: usize,
    gaps: &'static [f64],
    sweep: Vec<ServingReport>,
    knee: usize,
    serial_equals_parallel: bool,
    diff_requests: u64,
    warm_wall_ns: u128,
    cold_wall_ns: u128,
    warm_speedup: f64,
    session_contexts: usize,
    session_hits: u64,
    session_misses: u64,
}

/// The continuous-serving benchmark (PR 8), on the analytic backend so the
/// 1000-request sweep fits the smoke budget. Two halves:
///
/// * A five-point offered-load sweep over the recommendation-heavy
///   DLRM/BERT/GPT2 mix, spanning unloaded to past-saturation. Everything
///   but wall-clock is deterministic (seeded arrivals, table-priced
///   batches), so the smoke gate exact-matches the percentiles, and the
///   serial and `rayon::scope`-parallel sweeps must agree bit-for-bit.
/// * The warm-vs-cold architecture differential: the same small trace
///   priced by one persistent session executor vs a fresh executor per
///   batch (the pre-refactor cold-start pipeline). Cycle-identical by
///   construction — asserted — so the wall-clock ratio isolates the cost
///   of rebuilding contexts/span programs/KeyRuns per request.
fn serving_section(sys: &SystemConfig) -> ServingSection {
    let asys = sys.clone().with_backend(BackendKind::Analytic);
    let cfg = ServingConfig::for_system(&asys);
    let mix = RequestMix::recommendation_heavy();
    let t0 = Instant::now();
    let table = build_cost_table(&asys);
    let table_ms = t0.elapsed().as_nanos() as f64 / 1e6;
    const GAPS: &[f64] =
        &[400_000_000.0, 100_000_000.0, 25_000_000.0, 6_250_000.0, 1_562_500.0];
    let requests = 1000u64;
    let serial = sweep_loads(&table, &cfg, 5, mix, requests, GAPS, false);
    let sweep = sweep_loads(&table, &cfg, 5, mix, requests, GAPS, true);
    let serial_equals_parallel = serial == sweep;
    assert!(serial_equals_parallel, "parallel sweep diverged from serial");
    let knee = find_knee(&sweep, 3.0);
    println!(
        "  serving: {} pass costs in {table_ms:.0} ms; {requests}-request sweep, \
         knee at gap {:.0}",
        table.len(),
        GAPS[knee],
    );
    for (r, gap) in sweep.iter().zip(GAPS) {
        println!(
            "    gap {gap:>12.0}: p50 {:>11} p99 {:>11} served {:>4} rejected {:>4} \
             util {:.3}",
            r.p50, r.p99, r.served, r.rejected, r.channel_utilization,
        );
    }

    let diff_requests = 40u64;
    let dmix = RequestMix { dlrm: 0.8, bert: 0.2, gpt2: 0.0 };
    let trace = OpenLoopArrivals::trace(23, dmix, 400_000.0, diff_requests);
    let mut warm_coster = SessionCoster::new(asys.clone());
    let t0 = Instant::now();
    let warm = run_serving(&cfg, &trace, &mut warm_coster);
    let warm_wall_ns = t0.elapsed().as_nanos();
    let t0 = Instant::now();
    let cold = run_serving(&cfg, &trace, &mut ColdCoster::new(asys));
    let cold_wall_ns = t0.elapsed().as_nanos();
    assert_eq!(warm, cold, "session layer changed serving cycles");
    let session = warm_coster.executor().session();
    let warm_speedup = cold_wall_ns as f64 / warm_wall_ns.max(1) as f64;
    println!(
        "  serving warm vs cold: {:.1} ms vs {:.1} ms ({warm_speedup:.1}x, floor \
         {SERVING_WARM_SPEEDUP_FLOOR:.1}x; {} contexts, {} hits / {} misses)",
        warm_wall_ns as f64 / 1e6,
        cold_wall_ns as f64 / 1e6,
        session.len(),
        session.hits(),
        session.misses(),
    );
    ServingSection {
        requests,
        mix,
        cfg,
        table_entries: table.len(),
        gaps: GAPS,
        sweep,
        knee,
        serial_equals_parallel,
        diff_requests,
        warm_wall_ns,
        cold_wall_ns,
        warm_speedup,
        session_contexts: session.len(),
        session_hits: session.hits(),
        session_misses: session.misses(),
    }
}

struct FabricTopoRun {
    total_cycles: u64,
    reduce_cycles: u64,
    peak_link_gbps: f64,
    stats: FabricStats,
}

struct FabricSection {
    nodes: usize,
    link_bytes_per_cycle: u64,
    link_latency: u64,
    clock_hz: u64,
    host_total: u64,
    host_reduce: u64,
    topos: Vec<FabricTopoRun>,
}

/// The inter-device fabric comparison (PR 9): the paper-scale GEMM on the
/// exact tier with `ReduceVia::Fabric` over a ring and a line of the four
/// DIMM-granular nodes, against the already-measured host-DMA streaming
/// run. The fabric path reuses the identical Phase-3 drain through the
/// memory backend and only *adds* PIM-to-PIM transit, so the DRAM command
/// stream, activity counts, and every non-Reduction phase must match the
/// host run bit for bit — asserted here, so `BENCH_sim.json` can never
/// record a fabric section that silently perturbed the default path.
/// Everything emitted (cycle counts, per-link byte/peak-demand stats, the
/// active-span GB/s figure) is deterministic and exact-match gated by
/// `make bench-smoke`.
fn fabric_section(
    sys: &SystemConfig,
    spec: &GemmSpec,
    opts: &SimOptions,
    host: &LatencyReport,
) -> FabricSection {
    let cfg = FabricConfig::default();
    let host_reduce = host.phase(Phase::Reduction);
    let mut topos = Vec::new();
    for kind in [TopologyKind::Ring, TopologyKind::Line] {
        let fsys =
            sys.clone().with_reduce_via(ReduceVia::Fabric).with_fabric(cfg.with_topology(kind));
        let t0 = Instant::now();
        let r = simulate_pow2_gemm_exec(&fsys, spec, opts, None, ExecMode::Streaming);
        let wall_ms = t0.elapsed().as_nanos() as f64 / 1e6;
        assert_eq!(r.dram, host.dram, "fabric reduce changed the DRAM command stream");
        assert_eq!(r.activity, host.activity, "fabric reduce changed activity counts");
        for p in Phase::ALL {
            if p != Phase::Reduction {
                assert_eq!(r.phase(p), host.phase(p), "fabric reduce perturbed {p:?}");
            }
        }
        let stats = r.fabric.clone().expect("fabric stats under ReduceVia::Fabric");
        assert_eq!(stats.bytes_injected, stats.bytes_delivered, "fabric lost bytes in flight");
        assert!(stats.nodes >= 4, "paper-scale fabric must span >= 4 devices");
        let peak =
            stats.links.iter().map(|l| l.gbps_active(r.clock_hz)).fold(0.0f64, f64::max);
        println!(
            "  fabric {:<4} reduce {:>9} cycles (host-DMA {host_reduce}, +{} transit), \
             {} nodes, peak link {peak:.1} GB/s, {wall_ms:.0} ms",
            stats.topology,
            r.phase(Phase::Reduction),
            stats.reduce_fabric_cycles,
            stats.nodes,
        );
        topos.push(FabricTopoRun {
            total_cycles: r.total,
            reduce_cycles: r.phase(Phase::Reduction),
            peak_link_gbps: peak,
            stats,
        });
    }
    FabricSection {
        nodes: topos[0].stats.nodes,
        link_bytes_per_cycle: cfg.link_bytes_per_cycle,
        link_latency: cfg.link_latency,
        clock_hz: host.clock_hz,
        host_total: host.total,
        host_reduce,
        topos,
    }
}

struct PagingArm {
    page_bytes: u64,
    wall_ns: u128,
    sim_cycles: u64,
    blocks: u64,
    run_counters: RunCounters,
    /// Locality sampled on a representative fill plan: same-key run length
    /// under this page map vs the native (unpaged) key stream.
    sampled: stepstone_addr::PagedRunStats,
}

struct PagingSection {
    identity_sim_cycles: u64,
    identity_bit_identical: bool,
    native_mean_run_len: f64,
    arms: Vec<PagingArm>,
}

/// The VA->PA paging sweep (PR 10): how much block-grouping locality each
/// page size preserves on the paper shape. The identity arm must stay
/// bit-identical to the contiguous baseline (asserted here *and* gated in
/// `make bench-smoke`); the fragmented arms measure the real cost of a
/// permuted frame allocation — per-run cycle counts, run-granularity
/// counters (page-clipped hints shorten admitted runs), and a sampled
/// same-key run-length ratio against the native stream. All cycle counts
/// and counters are deterministic (serial engine) and exact-match gated.
fn paging_section(
    sys: &SystemConfig,
    serial_sys: &SystemConfig,
    spec: &GemmSpec,
    opts: &SimOptions,
    baseline_cycles: u64,
    baseline_rc: &RunCounters,
) -> PagingSection {
    use stepstone_addr::{paged_run_stats, PageMap, PagingConfig};
    let isys = serial_sys.clone().with_paging(PagingConfig::identity(4096));
    let ir = simulate_pow2_gemm_exec(&isys, spec, opts, None, ExecMode::Streaming);
    let identical = ir.total == baseline_cycles;
    assert!(identical, "identity paging diverged: {} vs {baseline_cycles}", ir.total);
    println!(
        "  paging identity-4KB: {} sim cycles (bit-identical to contiguous)",
        ir.total
    );

    // Representative fill plan for the sampled locality ratio: the first
    // localized-B region of the paper-shape context.
    let ctx = GemmContext::build(sys, spec, opts);
    let plan = &ctx.b_regions[0];
    let mapping = sys.mapping();
    let sample = plan.len().min(1 << 16);
    let native = {
        let map = PageMap::for_mapping(PagingConfig::identity(4096), &mapping);
        paged_run_stats(&map, plan, &mapping, sample)
    };
    let native_mean = native.mean_run_len();

    let mut arms = Vec::new();
    for page_bytes in [4096u64, 64 << 10, 2 << 20, 1 << 30] {
        let cfg = PagingConfig::fragmented(page_bytes, 42);
        let psys = serial_sys.clone().with_paging(cfg);
        reset_run_counters();
        let t0 = Instant::now();
        let r = simulate_pow2_gemm_exec(&psys, spec, opts, None, ExecMode::Streaming);
        let wall_ns = t0.elapsed().as_nanos();
        let rc = run_counters();
        let map = PageMap::for_mapping(cfg, &mapping);
        let sampled = paged_run_stats(&map, plan, &mapping, sample);
        let blocks = r.dram.accesses();
        println!(
            "  paging {:>6} KiB: {:>7.1} ns/block, {} sim cycles ({:+.2}% vs contiguous), \
             runs {} (mean {:.1}, baseline {:.1}), sampled locality {:.2} ({} page splits)",
            page_bytes >> 10,
            wall_ns as f64 / blocks as f64,
            r.total,
            (r.total as f64 / baseline_cycles as f64 - 1.0) * 100.0,
            rc.runs,
            rc.mean_run_len(),
            baseline_rc.mean_run_len(),
            sampled.mean_run_len() / native_mean,
            sampled.page_splits,
        );
        arms.push(PagingArm {
            page_bytes,
            wall_ns,
            sim_cycles: r.total,
            blocks,
            run_counters: rc,
            sampled,
        });
    }
    PagingSection {
        identity_sim_cycles: ir.total,
        identity_bit_identical: identical,
        native_mean_run_len: native_mean,
        arms,
    }
}

struct PresetSmoke {
    name: &'static str,
    sim_cycles: u64,
    clock_hz: u64,
    seconds: f64,
}

struct BackendsSection {
    analytic_wall_ns: u128,
    analytic_cycles: u64,
    cycles_ratio: f64,
    speedup: f64,
    presets: Vec<PresetSmoke>,
}

/// Time the analytic tier on the paper-scale shape against the already
/// measured exact streaming run, then smoke every DRAM preset on the exact
/// tier at a small shape (different geometry → generic mapping fallback;
/// the point is "completes and yields sane wall-clock seconds", the cycle
/// values are recorded for drift tracking, not gated across presets).
fn backends_section(
    sys: &SystemConfig,
    spec: &GemmSpec,
    opts: &SimOptions,
    exact_wall_ns: u128,
    exact_cycles: u64,
) -> BackendsSection {
    let asys = sys.clone().with_backend(BackendKind::Analytic);
    let mut analytic_wall_ns = u128::MAX;
    let mut analytic_cycles = 0u64;
    // Best-of-3: the closed-form executor is fast enough for host noise to
    // dominate a single measurement.
    for _ in 0..3 {
        let t0 = Instant::now();
        let r = simulate_pow2_gemm_exec(&asys, spec, opts, None, ExecMode::Streaming);
        analytic_wall_ns = analytic_wall_ns.min(t0.elapsed().as_nanos());
        analytic_cycles = r.total;
    }
    let speedup = exact_wall_ns as f64 / analytic_wall_ns.max(1) as f64;
    let cycles_ratio = analytic_cycles as f64 / exact_cycles as f64;
    println!(
        "  analytic tier: {:>8.2} ms  ({analytic_cycles} sim cycles, {:.2}x of exact, \
         {speedup:.0}x faster; floor {ANALYTIC_SPEEDUP_FLOOR:.0}x)",
        analytic_wall_ns as f64 / 1e6,
        cycles_ratio,
    );

    let smoke = GemmSpec::new(512, 2048, 8);
    let presets = DramConfig::PRESET_NAMES
        .iter()
        .map(|&name| {
            let psys = sys.clone().with_dram(DramConfig::by_name(name).expect("preset"));
            let r = simulate_pow2_gemm_exec(&psys, &smoke, opts, None, ExecMode::Streaming);
            println!(
                "  preset {name:<7} {:>10} sim cycles @ {:>4} MHz = {:.3} ms simulated",
                r.total,
                psys.dram.clock_hz / 1_000_000,
                r.seconds() * 1e3,
            );
            PresetSmoke {
                name,
                sim_cycles: r.total,
                clock_hz: psys.dram.clock_hz,
                seconds: r.seconds(),
            }
        })
        .collect();
    BackendsSection { analytic_wall_ns, analytic_cycles, cycles_ratio, speedup, presets }
}

/// Human-readable fallback split, nonzero causes only.
fn fallback_summary(c: &RunCounters) -> String {
    let mut s = String::new();
    for (i, label) in FB_LABELS.iter().enumerate() {
        if c.fallback[i] > 0 {
            let _ = write!(s, "{}{label}: {}", if s.is_empty() { "" } else { ", " }, c.fallback[i]);
        }
    }
    if s.is_empty() {
        s.push_str("none");
    }
    s
}

/// The run-granularity counters as a JSON object (deterministic; gated
/// exact-match by `make bench-smoke`).
fn run_counters_json(c: &RunCounters) -> String {
    let hist: Vec<String> = c.hist.iter().map(|h| h.to_string()).collect();
    let fallback: Vec<String> = FB_LABELS
        .iter()
        .enumerate()
        .map(|(i, label)| format!("\"{label}\": {}", c.fallback[i]))
        .collect();
    format!(
        "{{\"runs\": {}, \"run_blocks\": {}, \"mean_run_len\": {:.2}, \"hist\": [{}], \
         \"fallback\": {{{}}}}}",
        c.runs,
        c.run_blocks,
        c.mean_run_len(),
        hist.join(", "),
        fallback.join(", "),
    )
}

struct SubPaper {
    m: usize,
    k: usize,
    n: usize,
    cold_ns_per_block: f64,
    warm_ns_per_block: f64,
    seed_ns_per_block: f64,
    agen_ns_per_span: f64,
    /// Skeleton spans resident in the global span-program cache after the
    /// runs (bounded by its caps; the replay working set).
    cache_resident_spans: usize,
    /// Span-program counters of the final (fully warm) span-generation
    /// pass: cache hits/misses and how window boundaries were crossed.
    /// Deterministic (serial loop), so the smoke gate can tell a cache or
    /// window-successor regression from host noise.
    agen: stepstone_addr::agen::AgenCounters,
    /// Run-granularity counters of the warm streaming run (deterministic,
    /// exact-match gated like the agen counters).
    run_counters: RunCounters,
    cycle_exact: bool,
}

/// Measure the sub-paper serving shape: cold and warm streaming runs (the
/// span-program cache persists across simulations, so "warm" is the
/// steady state of repeated Table-I layers), the frozen seed replay for a
/// cycle cross-check, and the production span generator alone.
fn subpaper_section(sys: &SystemConfig, serial_sys: &SystemConfig) -> SubPaper {
    let (m, k, n) = (512, 512, 32);
    let spec = GemmSpec::new(m, k, n);
    let opts = SimOptions::stepstone(PimLevel::BankGroup);
    let timed = |sys: &SystemConfig| {
        let t0 = Instant::now();
        let rep = simulate_pow2_gemm_exec(sys, &spec, &opts, None, ExecMode::Streaming);
        (t0.elapsed().as_nanos() as f64, rep)
    };
    let (cold_ns, cold) = timed(sys);
    reset_run_counters();
    let (warm_ns, warm) = timed(sys);
    let rc = run_counters();
    let t0 = Instant::now();
    let seed = simulate_pow2_gemm_seed(serial_sys, &spec, &opts);
    let seed_ns = t0.elapsed().as_nanos() as f64;
    let blocks = cold.dram.accesses() as f64;
    let cycle_exact = cold.total == warm.total
        && cold.total == seed.total
        && cold.dram.accesses() == seed.dram.accesses();
    assert!(cycle_exact, "sub-paper modes disagree on simulated cycles/blocks");

    // Span generation alone, over every Algorithm-1 cell, best-of-5. The
    // last pass's counters (fully warm: every window replayed, boundaries
    // crossed by the window successor) go into the JSON.
    let ctx = GemmContext::build(sys, &spec, &opts);
    let mut best_ns_per_span = f64::MAX;
    let mut spans = 0u64;
    let mut agen = stepstone_addr::agen::AgenCounters::default();
    for _ in 0..5 {
        let t0 = Instant::now();
        spans = 0;
        stepstone_addr::agen::reset_agen_counters();
        for &pim in &ctx.active_pims {
            for grp in 0..ctx.ga.n_groups() {
                if !ctx.ga.is_admissible(pim, grp) {
                    continue;
                }
                for rpart in 0..ctx.plan.rparts {
                    for cpart in 0..ctx.plan.cparts {
                        let mut cs = ctx.ga.constraints_for(pim, grp);
                        cs.extend(partition_constraints(
                            ctx.layout.mrow_mask(),
                            ctx.plan.rparts,
                            rpart,
                        ));
                        cs.extend(partition_constraints(
                            ctx.layout.mcol_mask(),
                            ctx.plan.cparts,
                            cpart,
                        ));
                        spans += StepStoneAgen::new(cs, ctx.layout.base, ctx.layout.end())
                            .span_program()
                            .count() as u64;
                    }
                }
            }
        }
        let ns = t0.elapsed().as_nanos() as f64 / spans.max(1) as f64;
        best_ns_per_span = best_ns_per_span.min(ns);
        agen = stepstone_addr::agen::agen_counters();
    }
    let cache_resident_spans = stepstone_addr::agen::span_cache_resident_spans();
    println!(
        "  sub-paper {m}x{k} N={n}: cold {:.1} / warm {:.1} / seed {:.1} ns/block, \
         agen {best_ns_per_span:.1} ns/span ({spans} spans, {:.2}x warm vs seed, \
         {cache_resident_spans} cached spans)",
        cold_ns / blocks,
        warm_ns / blocks,
        seed_ns / blocks,
        seed_ns / warm_ns,
    );
    println!(
        "  sub-paper agen (warm): {} hit / {} missed skeletons, boundaries {} live / {} jumped",
        agen.skeleton_hits, agen.skeleton_misses, agen.boundary_successors, agen.window_jumps,
    );
    println!(
        "  sub-paper runs (warm): {} admitted covering {} blocks (mean {:.1}); fallback {}",
        rc.runs,
        rc.run_blocks,
        rc.mean_run_len(),
        fallback_summary(&rc),
    );
    SubPaper {
        m,
        k,
        n,
        cold_ns_per_block: cold_ns / blocks,
        warm_ns_per_block: warm_ns / blocks,
        seed_ns_per_block: seed_ns / blocks,
        agen_ns_per_span: best_ns_per_span,
        cache_resident_spans,
        agen,
        run_counters: rc,
        cycle_exact,
    }
}
