//! Regenerate every table and figure in one run (set STEPSTONE_SCALE=quick
//! for a fast pass).

use stepstone_bench::figures;
use stepstone_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let t0 = std::time::Instant::now();
    figures::table1::run(scale).emit();
    figures::table2::run(scale).emit();
    figures::fig1::run(scale).emit();
    figures::fig6::run(scale).emit();
    figures::fig7::run(scale).emit();
    figures::fig8::run(scale).emit();
    figures::fig9::run(scale).emit();
    figures::fig10::run(scale).emit();
    figures::fig11::run(scale).emit();
    figures::fig12::run(scale).emit();
    figures::fig13::run(scale).emit();
    figures::fig14::run(scale).emit();
    figures::crossover::run(scale).emit();
    figures::ablations::run(scale).emit();
    println!("all figures regenerated in {:.1}s", t0.elapsed().as_secs_f64());
}
