//! Benchmark harnesses that regenerate every table and figure of the
//! StepStone paper's evaluation (§V), plus design-choice ablations.
//!
//! Each figure is a library function (`figures::figN::run(scale)`) so the
//! binaries, the Criterion benches, and the integration tests share one
//! implementation. `Scale::Quick` (or `STEPSTONE_SCALE=quick`) runs reduced
//! sweeps.

pub mod figures;
pub mod output;
pub mod seed_replay;

pub use output::{FigureResult, Scale, Table};
