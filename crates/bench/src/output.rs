//! Tabular output shared by all figure harnesses: aligned text tables for
//! the terminal plus JSON dumps under `results/` for plotting.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::PathBuf;

/// A simple column-aligned table.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Table {
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells);
    }

    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                let pad = widths[i] - c.len();
                let _ = write!(out, "{}{}", c, " ".repeat(pad));
                if i + 1 < ncols {
                    let _ = write!(out, "  ");
                }
            }
            let _ = writeln!(out);
        };
        fmt_row(&self.headers, &widths, &mut out);
        let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }
}

/// One regenerated figure/table.
#[derive(Debug, Clone, Serialize)]
pub struct FigureResult {
    /// e.g. "fig6".
    pub id: String,
    pub title: String,
    /// Free-form notes (paper-reported values, calibration remarks).
    pub notes: Vec<String>,
    pub tables: Vec<(String, Table)>,
}

impl FigureResult {
    pub fn new(id: &str, title: &str) -> Self {
        Self { id: id.into(), title: title.into(), notes: Vec::new(), tables: Vec::new() }
    }

    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    pub fn table(&mut self, caption: &str, t: Table) {
        self.tables.push((caption.into(), t));
    }

    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {}: {} ==", self.id, self.title);
        for n in &self.notes {
            let _ = writeln!(out, "   {n}");
        }
        for (cap, t) in &self.tables {
            let _ = writeln!(out, "\n-- {cap} --");
            let _ = write!(out, "{}", t.render());
        }
        out
    }

    /// Persist as JSON under `results/<id>.json` (best-effort).
    pub fn save_json(&self) -> Option<PathBuf> {
        let dir = PathBuf::from("results");
        std::fs::create_dir_all(&dir).ok()?;
        let path = dir.join(format!("{}.json", self.id));
        std::fs::write(&path, self.to_json()).ok()?;
        Some(path)
    }

    /// JSON encoding (hand-rolled; the workspace vendors serde's derives as
    /// no-ops, see `crates/compat/`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = write!(out, "  \"id\": {},\n  \"title\": {},\n", json_str(&self.id), json_str(&self.title));
        let _ = writeln!(
            out,
            "  \"notes\": [{}],",
            self.notes.iter().map(|n| json_str(n)).collect::<Vec<_>>().join(", ")
        );
        out.push_str("  \"tables\": [");
        for (i, (caption, t)) in self.tables.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"caption\": {}, \"headers\": [{}], \"rows\": [",
                json_str(caption),
                t.headers.iter().map(|h| json_str(h)).collect::<Vec<_>>().join(", ")
            );
            for (j, row) in t.rows.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "\n      [{}]",
                    row.iter().map(|c| json_str(c)).collect::<Vec<_>>().join(", ")
                );
            }
            out.push_str("\n    ]}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Print, save, and return.
    pub fn emit(self) -> Self {
        println!("{}", self.render());
        if let Some(p) = self.save_json() {
            println!("   [saved {}]", p.display());
        }
        self
    }
}

/// Minimal JSON string escaping for table cells and captions.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Sweep size selector: `Full` reproduces the paper's ranges; `Quick` is a
/// reduced version for tests and Criterion benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Full,
    Quick,
}

impl Scale {
    pub fn from_env() -> Self {
        match std::env::var("STEPSTONE_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            _ => Scale::Full,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["1", "2"]);
        t.row(vec!["333", "4"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a    "));
        assert!(lines[2].starts_with("1    "));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn figure_renders_notes_and_tables() {
        let mut f = FigureResult::new("figX", "test");
        f.note("calibration note");
        let mut t = Table::new(vec!["col"]);
        t.row(vec!["val"]);
        f.table("caption", t);
        let s = f.render();
        assert!(s.contains("figX"));
        assert!(s.contains("calibration note"));
        assert!(s.contains("caption"));
        assert!(s.contains("val"));
    }
}
