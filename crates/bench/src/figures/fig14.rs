//! Fig. 14: power per DRAM device and energy per operation for
//! StepStone-BG vs -DV at N = 1, 4, 16.

use crate::figures::baseline_system;
use crate::output::{FigureResult, Scale, Table};
use rayon::prelude::*;
use stepstone_addr::PimLevel;
use stepstone_core::{simulate_gemm, GemmSpec};
use stepstone_energy::{analyze, device_count, EnergyParams};

pub fn run(scale: Scale) -> FigureResult {
    let batches: &[usize] = match scale {
        Scale::Full => &[1, 4, 16],
        Scale::Quick => &[1, 16],
    };
    let mut fig = FigureResult::new("fig14", "Power per device and pJ/op (1024x4096)");
    let mut t = Table::new(vec![
        "level", "N", "SIMD mJ", "scratch mJ", "DRAM mJ", "loc/red mJ", "W/device", "pJ/op",
    ]);
    let jobs: Vec<(PimLevel, usize)> = [PimLevel::BankGroup, PimLevel::Device]
        .iter()
        .flat_map(|&l| batches.iter().map(move |&n| (l, n)))
        .collect();
    let rows: Vec<_> = jobs
        .into_par_iter()
        .map(|(level, n)| {
            let sys = baseline_system();
            let spec = GemmSpec::new(1024, 4096, n);
            let r = simulate_gemm(&sys, &spec, level);
            let e = analyze(&EnergyParams::default(), &r, level);
            let w = e.power_per_device_w(r.total, device_count(&sys.dram), sys.dram.clock_hz);
            (level, n, e, w, e.pj_per_op(&spec))
        })
        .collect();
    for (level, n, e, w, pj) in rows {
        t.row(vec![
            level.tag().to_string(),
            n.to_string(),
            format!("{:.3}", e.simd_j * 1e3),
            format!("{:.3}", e.scratchpad_j * 1e3),
            format!("{:.3}", e.dram_j * 1e3),
            format!("{:.3}", e.locred_j * 1e3),
            format!("{:.3}", w),
            format!("{:.1}", pj),
        ]);
    }
    fig.table("energy breakdown", t);
    fig.note(
        "expect: DRAM access dominates SIMD; BG more efficient at small N (in-device I/O); \
         BG's localization/reduction share grows with N (paper: DV overtakes as N grows)",
    );
    fig
}
