//! Fig. 6: GEMM latency of the three StepStone levels vs the CPU on the
//! default 1024×4096 weight matrix, with the full phase breakdown and the
//! relaxed-area (`*`) variants.

use crate::figures::baseline_system;
use crate::output::{FigureResult, Scale, Table};
use rayon::prelude::*;
use stepstone_addr::PimLevel;
use stepstone_core::{simulate_gemm_opt, CpuModel, GemmSpec, LatencyReport, Phase, SimOptions};
use stepstone_pim::PimLevelConfig;

pub const PHASES: [Phase; 6] = [
    Phase::Gemm,
    Phase::FillB,
    Phase::FillC,
    Phase::DrainC,
    Phase::Localization,
    Phase::Reduction,
];

pub fn breakdown_row(label: String, r: &LatencyReport) -> Vec<String> {
    let mut row = vec![label];
    for p in PHASES {
        row.push(r.phase(p).to_string());
    }
    row.push(r.total.to_string());
    row
}

pub fn run(scale: Scale) -> FigureResult {
    let sys = baseline_system();
    let (m, k) = (1024, 4096);
    let batches: &[usize] = match scale {
        Scale::Full => &[1, 4, 16, 32],
        Scale::Quick => &[1, 8],
    };
    let mut fig =
        FigureResult::new("fig6", "GEMM latency: StepStone levels vs CPU (1024x4096)");
    let mut t = Table::new(vec![
        "config", "GEMM", "fill(B)", "fill(C)", "drain(C)", "Localize", "Reduce", "total",
    ]);

    // (label, level, batch, relaxed) jobs.
    let mut jobs: Vec<(String, PimLevel, usize, bool)> = Vec::new();
    for level in [PimLevel::BankGroup, PimLevel::Device, PimLevel::Channel] {
        for &n in batches {
            jobs.push((format!("{}-{}", level.tag(), n), level, n, false));
        }
        if scale == Scale::Full && level != PimLevel::Channel {
            jobs.push((format!("{}-32*", level.tag()), level, 32, true));
        }
    }
    let results: Vec<(String, LatencyReport)> = jobs
        .into_par_iter()
        .map(|(label, level, n, relaxed)| {
            let mut opts = SimOptions::stepstone(level);
            if relaxed {
                opts = opts.with_level_cfg(PimLevelConfig::relaxed(level));
            }
            let r = simulate_gemm_opt(&sys, &GemmSpec::new(m, k, n), &opts, None);
            (label, r)
        })
        .collect();
    for (label, r) in &results {
        t.row(breakdown_row(label.clone(), r));
    }
    let cpu = CpuModel::default();
    for &n in batches {
        let c = cpu.cycles(&GemmSpec::new(m, k, n));
        t.row(vec![
            format!("CPU-{n}"),
            "0".into(), "0".into(), "0".into(), "0".into(), "0".into(), "0".into(),
            c.to_string(),
        ]);
    }
    fig.table("DRAM cycles by phase", t);

    // Headline ratios.
    let find = |tag: &str| results.iter().find(|(l, _)| l == tag).map(|(_, r)| r.total);
    if let (Some(bg1), Some(dv1)) = (find("BG-1"), find("DV-1")) {
        let cpu1 = cpu.cycles(&GemmSpec::new(m, k, 1));
        fig.note(format!(
            "batch-1 min latency: BG {:.1}x vs CPU (paper: 12x), BG {:.1}x vs DV (paper: 2.8x)",
            cpu1 as f64 / bg1 as f64,
            dv1 as f64 / bg1 as f64,
        ));
    }
    if let Some(dv32) = find("DV-32") {
        let cpu1 = cpu.cycles(&GemmSpec::new(m, k, 1)) as f64;
        let cpu32 = cpu.cycles(&GemmSpec::new(m, k, 32)) as f64;
        fig.note(format!(
            "throughput at CPU batch-1 latency: DV-32 {:.0}x CPU (paper: 77x); \
             at CPU batch-32 latency: {:.1}x (paper: ~3x)",
            32.0 * cpu1 / dv32 as f64,
            cpu32 / dv32 as f64,
        ));
    }
    if let (Some(n32), Some(star)) = (find("DV-32"), find("DV-32*")) {
        fig.note(format!(
            "relaxed-area DV-32*: {:.2}x over nominal (paper: 96/77 = 1.25x)",
            n32 as f64 / star as f64
        ));
    }
    fig
}
