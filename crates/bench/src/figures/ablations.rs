//! Ablation benches for the design choices DESIGN.md calls out:
//! (a) the two AGEN correction rules individually,
//! (b) DMA-accelerated vs host-mediated localization/reduction,
//! (c) kernel-launch packet size sensitivity for eCHO under colocation,
//! (d) the PIM-subset optimization across batch sizes.

use crate::figures::baseline_system;
use crate::output::{FigureResult, Scale, Table};
use rayon::prelude::*;
use stepstone_addr::agen::AgenRules;
use stepstone_addr::PimLevel;
use stepstone_core::{simulate_gemm, simulate_gemm_opt, AgenMode, GemmSpec, SimOptions, SystemConfig};
use stepstone_pim::{LaunchModel, LocalizationMode};
use stepstone_workloads::SyntheticTraffic;

pub fn run(scale: Scale) -> FigureResult {
    let (m, k) = match scale {
        Scale::Full => (1024, 4096),
        Scale::Quick => (256, 1024),
    };
    let mut fig = FigureResult::new("ablations", "Design-choice ablations");

    // (a) AGEN rule toggles. Note: once iterations fit inside the burst
    // window the 20-deep pipeline hides them, so the rules' effect shows in
    // the iteration statistics before it shows in cycles.
    let mut t = Table::new(vec![
        "AGEN variant", "total cycles", "vs full", "agen iters", "max/step", "bubbles",
    ]);
    let variants: Vec<(&str, AgenMode)> = vec![
        ("naive", AgenMode::Naive),
        ("no rules", AgenMode::StepStone(AgenRules::NONE)),
        (
            "rule 1 only",
            AgenMode::StepStone(AgenRules { instant_correction: true, carry_forwarding: false }),
        ),
        (
            "rule 2 only",
            AgenMode::StepStone(AgenRules { instant_correction: false, carry_forwarding: true }),
        ),
        ("both rules", AgenMode::StepStone(AgenRules::default())),
    ];
    let results: Vec<(&str, stepstone_core::LatencyReport)> = variants
        .into_par_iter()
        .map(|(name, agen)| {
            let sys = SystemConfig { agen, ..baseline_system() };
            (name, simulate_gemm(&sys, &GemmSpec::new(m, k, 4), PimLevel::BankGroup))
        })
        .collect();
    let full = results.last().expect("both-rules entry").1.total as f64;
    for (name, r) in &results {
        t.row(vec![
            name.to_string(),
            r.total.to_string(),
            format!("{:.2}x", r.total as f64 / full),
            r.activity.agen_iterations.to_string(),
            r.activity.agen_max_step.to_string(),
            r.activity.agen_bubbles.to_string(),
        ]);
    }
    fig.table("(a) AGEN correction rules (BG, N=4)", t);

    // (b) Localization/reduction acceleration.
    let mut t = Table::new(vec!["copies by", "total cycles"]);
    let loc_rows: Vec<(&str, u64)> = [
        ("PIM-controller DMA", LocalizationMode::AcceleratedDma),
        ("host (CPU loads/stores)", LocalizationMode::HostMediated { gap_cycles: 4 }),
    ]
    .into_par_iter()
    .map(|(name, mode)| {
        let sys = baseline_system().with_localization(mode);
        (name, simulate_gemm(&sys, &GemmSpec::new(m, k, 16), PimLevel::BankGroup).total)
    })
    .collect();
    for (name, total) in loc_rows {
        t.row(vec![name.to_string(), total.to_string()]);
    }
    fig.table("(b) accelerated vs host-mediated localization (BG, N=16)", t);
    fig.note("paper: accelerating localization/reduction buys up to an additional 40%");

    // (c) eCHO launch packet size under colocation.
    let mut t = Table::new(vec!["slots/launch", "eCHO kernel cycles"]);
    let slot_rows: Vec<(u64, u64)> = [4u64, 16, 32]
        .into_par_iter()
        .map(|slots| {
            let mut sys = baseline_system();
            sys.launch = LaunchModel { slots_per_launch: slots, ..LaunchModel::default() };
            let mut traffic = SyntheticTraffic::spec_mix(23, u64::MAX / 2);
            let r = simulate_gemm_opt(
                &sys,
                &GemmSpec::new(m, k, 4),
                &SimOptions::echo(PimLevel::BankGroup),
                Some(&mut traffic),
            );
            (slots, r.total)
        })
        .collect();
    for (slots, total) in slot_rows {
        t.row(vec![slots.to_string(), total.to_string()]);
    }
    fig.table("(c) launch packet size sensitivity (eCHO under traffic)", t);

    // (d) subset benefit vs batch — each (N, subset) point independent.
    let mut t = Table::new(vec!["N", "all PIMs", "half PIMs", "half/all"]);
    let subset_rows: Vec<(usize, u64, u64)> = [4usize, 16, 32]
        .into_par_iter()
        .map(|n| {
            let sys = baseline_system();
            let spec = GemmSpec::new(512, 2048, n);
            let (full, half) = rayon::join(
                || simulate_gemm(&sys, &spec, PimLevel::BankGroup).total,
                || {
                    simulate_gemm_opt(
                        &sys,
                        &spec,
                        &SimOptions::stepstone(PimLevel::BankGroup).with_subset(1),
                        None,
                    )
                    .total
                },
            );
            (n, full, half)
        })
        .collect();
    for (n, full, half) in subset_rows {
        t.row(vec![
            n.to_string(),
            full.to_string(),
            half.to_string(),
            format!("{:.2}", half as f64 / full as f64),
        ]);
    }
    fig.table("(d) PIM-subset benefit on a small matrix (512x2048)", t);

    // (e) fused vs serialized non-power-of-two execution (§III-E); the two
    // strategies simulate concurrently, and each one's phases shard over
    // channels inside `run_phase_auto`.
    let mut t = Table::new(vec!["non-pow2 strategy", "total cycles"]);
    let spec = GemmSpec::new(1600, 6400, 4);
    let opts = SimOptions::stepstone(PimLevel::BankGroup);
    let (serial, fused) = rayon::join(
        || simulate_gemm_opt(&baseline_system(), &spec, &opts, None).total,
        || {
            stepstone_core::serving::simulate_gemm_fused(&baseline_system(), &spec, &opts, None)
                .total
        },
    );
    t.row(vec!["serialized sub-GEMMs".to_string(), serial.to_string()]);
    t.row(vec!["fused (loc. pipelined)".to_string(), fused.to_string()]);
    fig.table("(e) fused kernels for GPT2's 1600x6400 MLP", t);
    fig.note(format!(
        "fusion hides {:.0}% of the sub-GEMM localization behind earlier kernels",
        (1.0 - fused as f64 / serial as f64) * 100.0
    ));

    // (f) refresh interference (the paper reports refresh-free numbers; the
    // simulator supports DDR4 all-bank refresh for sensitivity checks).
    let mut t = Table::new(vec!["refresh", "total cycles"]);
    let refresh_rows: Vec<(bool, u64)> = [false, true]
        .into_par_iter()
        .map(|on| {
            let mut sys = baseline_system();
            sys.dram.refresh = on;
            (on, simulate_gemm(&sys, &GemmSpec::new(m, k, 4), PimLevel::BankGroup).total)
        })
        .collect();
    for (on, total) in refresh_rows {
        t.row(vec![if on { "on (tREFI/tRFC)" } else { "off" }.to_string(), total.to_string()]);
    }
    fig.table("(f) DDR4 refresh sensitivity (BG, N=4)", t);
    fig
}
