//! Fig. 13: speedup of StepStone over eCHO when a memory-intensive CPU
//! workload runs concurrently — the value of long-running kernels. Only the
//! GEMM-execution portion is compared (paper: "reporting results
//! corresponding only to GEMM execution").

use crate::figures::baseline_system;
use crate::output::{FigureResult, Scale, Table};
use rayon::prelude::*;
use stepstone_addr::PimLevel;
use stepstone_core::{simulate_gemm_opt, GemmSpec, Phase, SimOptions};
use stepstone_workloads::SyntheticTraffic;

fn kernel_cycles(r: &stepstone_core::LatencyReport) -> u64 {
    r.total - r.phase(Phase::Localization) - r.phase(Phase::Reduction)
}

pub fn run(scale: Scale) -> FigureResult {
    // Fixed-size matrix (16M weights), aspect ratio swept (paper x-axis).
    let matrices: &[(usize, usize)] = match scale {
        Scale::Full => &[(2048, 8192), (4096, 4096), (8192, 2048), (16384, 1024)],
        Scale::Quick => &[(512, 2048), (2048, 512)],
    };
    let n = 8usize;
    let mut fig = FigureResult::new(
        "fig13",
        "STP speedup over eCHO under concurrent CPU memory traffic",
    );
    let mut t = Table::new(vec![
        "level", "matrix", "STP kernel cyc", "eCHO kernel cyc", "speedup", "eCHO launches",
    ]);
    let jobs: Vec<(PimLevel, (usize, usize))> = [PimLevel::Device, PimLevel::BankGroup]
        .iter()
        .flat_map(|&l| matrices.iter().map(move |&mk| (l, mk)))
        .collect();
    let rows: Vec<_> = jobs
        .into_par_iter()
        .map(|(level, (m, k))| {
            let sys = baseline_system();
            let spec = GemmSpec::new(m, k, n);
            let mut stp_traffic = SyntheticTraffic::spec_mix(17, u64::MAX / 2);
            let stp = simulate_gemm_opt(
                &sys,
                &spec,
                &SimOptions::stepstone(level),
                Some(&mut stp_traffic),
            );
            let mut echo_traffic = SyntheticTraffic::spec_mix(17, u64::MAX / 2);
            let echo =
                simulate_gemm_opt(&sys, &spec, &SimOptions::echo(level), Some(&mut echo_traffic));
            (level, (m, k), stp, echo)
        })
        .collect();
    let mut max_speedup = 0.0f64;
    for (level, (m, k), stp, echo) in rows {
        let s = kernel_cycles(&echo) as f64 / kernel_cycles(&stp) as f64;
        max_speedup = max_speedup.max(s);
        t.row(vec![
            level.tag().to_string(),
            format!("{m}x{k}"),
            kernel_cycles(&stp).to_string(),
            kernel_cycles(&echo).to_string(),
            format!("{s:.2}x"),
            echo.activity.launches.to_string(),
        ]);
    }
    fig.table("GEMM-execution cycles under colocation", t);
    fig.note(format!(
        "max speedup {max_speedup:.1}x (paper: up to ~6x at BG for tall-thin matrices; \
         rises with rows because eCHO launches one dot-product kernel per C row)"
    ));
    fig
}
