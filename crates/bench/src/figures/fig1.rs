//! Fig. 1: roofline points showing that small-batch inference GEMMs are
//! bandwidth-bound on both CPU and GPU, and that host-memory-resident
//! weights push the GPU below the CPU.

use crate::output::{FigureResult, Scale, Table};
use stepstone_roofline::{cpu_roofline, gpu_device_roofline, gpu_host_roofline, sweep_cpu, sweep_gpu};

/// The three device sweeps are independent; run them concurrently.
fn sweeps(
    m: usize,
    k: usize,
    batches: &[usize],
) -> (
    Vec<stepstone_roofline::SweepPoint>,
    Vec<stepstone_roofline::SweepPoint>,
    Vec<stepstone_roofline::SweepPoint>,
) {
    let (cpu, (gdev, ghost)) = rayon::join(
        || sweep_cpu(m, k, batches),
        || rayon::join(|| sweep_gpu(m, k, batches, false), || sweep_gpu(m, k, batches, true)),
    );
    (cpu, gdev, ghost)
}

pub fn run(scale: Scale) -> FigureResult {
    let batches: Vec<usize> = match scale {
        Scale::Full => (0..=10).map(|i| 1usize << i).collect(),
        Scale::Quick => vec![1, 32, 1024],
    };
    let mut fig = FigureResult::new("fig1", "CPU/GPU roofline, 1024x4096 weights, N=1..1024");
    fig.note(format!(
        "ridge points (flops/byte): CPU {:.1}, GPU(dev) {:.1}, GPU(host) {:.1}",
        cpu_roofline().ridge(),
        gpu_device_roofline().ridge(),
        gpu_host_roofline().ridge()
    ));
    let mut t = Table::new(vec!["N", "OI (F/B)", "CPU GF/s", "GPU(dev) GF/s", "GPU(host) GF/s"]);
    let (cpu, gdev, ghost) = sweeps(1024, 4096, &batches);
    for i in 0..batches.len() {
        t.row(vec![
            batches[i].to_string(),
            format!("{:.2}", cpu[i].oi),
            format!("{:.1}", cpu[i].gflops),
            format!("{:.1}", gdev[i].gflops),
            format!("{:.1}", ghost[i].gflops),
        ]);
    }
    fig.table("achieved Gflop/s (model)", t);
    fig
}
