//! Fig. 9: GEMM latency with the naive address generator vs the StepStone
//! AGEN, per PIM level, for (a) 1024x4096 and (b) 2048x8192.

use crate::figures::baseline_system;
use crate::output::{FigureResult, Scale, Table};
use rayon::prelude::*;
use stepstone_addr::PimLevel;
use stepstone_core::{simulate_gemm, AgenMode, GemmSpec, SystemConfig};

pub fn run(scale: Scale) -> FigureResult {
    let matrices: &[(usize, usize)] = match scale {
        Scale::Full => &[(1024, 4096), (2048, 8192)],
        Scale::Quick => &[(256, 1024)],
    };
    let n = 4usize;
    let mut fig = FigureResult::new("fig9", "Naive vs StepStone AGEN");
    let mut t = Table::new(vec!["matrix", "level", "naive cycles", "AGEN cycles", "speedup"]);
    let jobs: Vec<((usize, usize), PimLevel)> = matrices
        .iter()
        .flat_map(|&mk| PimLevel::ALL.map(|l| (mk, l)))
        .collect();
    let rows: Vec<_> = jobs
        .into_par_iter()
        .map(|((m, k), level)| {
            let spec = GemmSpec::new(m, k, n);
            let sys = baseline_system();
            let naive = simulate_gemm(
                &SystemConfig { agen: AgenMode::Naive, ..sys.clone() },
                &spec,
                level,
            );
            let fast = simulate_gemm(&sys, &spec, level);
            (
                format!("{m}x{k}"),
                level.tag().to_string(),
                naive.total,
                fast.total,
                naive.total as f64 / fast.total as f64,
            )
        })
        .collect();
    let mut max_speedup: f64 = 0.0;
    for (mk, lvl, naive, fast, sp) in rows {
        max_speedup = max_speedup.max(sp);
        t.row(vec![mk, lvl, naive.to_string(), fast.to_string(), format!("{sp:.2}x")]);
    }
    fig.table("GEMM latency (batch 4)", t);
    fig.note(format!(
        "max AGEN speedup: {max_speedup:.1}x (paper: up to 4x overall, largest at BG \
         where 16 PIMs make naive scans longest)"
    ));
    fig
}
