//! One module per regenerated paper table/figure. Each exposes
//! `run(scale) -> FigureResult`; the `src/bin/` wrappers print and save.

pub mod ablations;
pub mod crossover;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;
pub mod table2;

use stepstone_core::SystemConfig;
use stepstone_dram::{BackendKind, DramConfig};

/// The baseline evaluated system (Skylake mapping, DDR4-2400R, DMA
/// localization), optionally retargeted by environment:
///
/// * `STEPSTONE_BACKEND` — `exact` (default) or `analytic`; selects the
///   timing tier every figure driver simulates on.
/// * `STEPSTONE_PRESET` — `ddr4` (default), `ddr5`, `lpddr5`, or `hbm2`;
///   selects the DRAM device preset (timing, clock, channel width).
///
/// Unset variables leave the paper's evaluated system untouched, so the
/// committed figure outputs are reproduced bit-identically by default.
pub fn baseline_system() -> SystemConfig {
    let mut sys = SystemConfig::default();
    if let Ok(name) = std::env::var("STEPSTONE_BACKEND") {
        if !name.is_empty() {
            sys.backend = BackendKind::by_name(&name)
                .unwrap_or_else(|| panic!("unknown STEPSTONE_BACKEND '{name}'"));
        }
    }
    if let Ok(name) = std::env::var("STEPSTONE_PRESET") {
        if !name.is_empty() {
            sys = sys.with_dram(
                DramConfig::by_name(&name)
                    .unwrap_or_else(|| panic!("unknown STEPSTONE_PRESET '{name}'")),
            );
        }
    }
    sys
}

/// Format cycles compactly.
pub fn fmt_cycles(c: u64) -> String {
    format!("{c}")
}

/// Format a ratio with two decimals.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}")
}
