//! One module per regenerated paper table/figure. Each exposes
//! `run(scale) -> FigureResult`; the `src/bin/` wrappers print and save.

pub mod ablations;
pub mod crossover;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;
pub mod table2;

use stepstone_core::SystemConfig;

/// The baseline evaluated system (Skylake mapping, DDR4-2400R, DMA
/// localization).
pub fn baseline_system() -> SystemConfig {
    SystemConfig::default()
}

/// Format cycles compactly.
pub fn fmt_cycles(c: u64) -> String {
    format!("{c}")
}

/// Format a ratio with two decimals.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}")
}
