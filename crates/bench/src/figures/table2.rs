//! Table II: evaluation parameters actually instantiated by this
//! reproduction (PIM configs, address mappings, DDR4 timing, energy).

use crate::output::{FigureResult, Scale, Table};
use rayon::prelude::*;
use stepstone_addr::{mapping_by_id, MappingId, PimLevel};
use stepstone_dram::TimingParams;
use stepstone_energy::EnergyParams;
use stepstone_pim::PimLevelConfig;

pub fn run(_scale: Scale) -> FigureResult {
    let mut fig = FigureResult::new("table2", "Evaluation parameters");
    let mut t = Table::new(vec!["PIM level", "logical SIMD", "scratchpad", "port"]);
    for level in PimLevel::ALL {
        let c = PimLevelConfig::nominal(level);
        t.row(vec![
            format!("StepStone-{}", level.tag()),
            format!("{}", c.simd_width),
            format!("{} KiB", c.scratchpad_bytes >> 10),
            format!("{:?}", c.port()),
        ]);
    }
    fig.table("PIM configurations (logical aggregation, DESIGN.md 3.3)", t);

    let mut t = Table::new(vec!["ID", "Mapping", "name"]);
    // Mapping construction now builds decode LUTs + GF(2) inverses; do the
    // five presets concurrently.
    let mapping_rows: Vec<Vec<String>> = MappingId::ALL
        .into_par_iter()
        .map(|id| {
            vec![
                format!("{}", id.index()),
                format!("{id:?}"),
                mapping_by_id(id).name().to_string(),
            ]
        })
        .collect();
    for row in mapping_rows {
        t.row(row);
    }
    fig.table("Address mappings", t);

    let tp = TimingParams::default();
    let mut t = Table::new(vec!["param", "cycles"]);
    for (k, v) in [
        ("tBL", tp.t_bl), ("tCCDS", tp.t_ccds), ("tCCDL", tp.t_ccdl), ("tRTRS", tp.t_rtrs),
        ("tCL", tp.t_cl), ("tCWL", tp.t_cwl), ("tRCD", tp.t_rcd), ("tRP", tp.t_rp),
        ("tRAS", tp.t_ras), ("tRC", tp.t_rc), ("tRTP", tp.t_rtp), ("tWTRS", tp.t_wtrs),
        ("tWTRL", tp.t_wtrl), ("tWR", tp.t_wr), ("tRRDS", tp.t_rrds), ("tRRDL", tp.t_rrdl),
        ("tFAW", tp.t_faw),
    ] {
        t.row(vec![k.to_string(), v.to_string()]);
    }
    fig.table("DRAM timing (DDR4-2400R)", t);

    let e = EnergyParams::default();
    let mut t = Table::new(vec!["component", "value"]);
    t.row(vec!["in-device RD/WR".into(), format!("{} pJ/b", e.in_device_pj_per_bit)]);
    t.row(vec!["off-chip RD/WR".into(), format!("{} pJ/b", e.off_chip_pj_per_bit)]);
    t.row(vec!["SIMD MAC".into(), format!("{} pJ/op", e.simd_pj_per_op)]);
    t.row(vec![
        "scratchpad (CH/DV/BG)".into(),
        format!("{:?} nJ/access", e.scratch_nj_per_access),
    ]);
    fig.table("Energy components", t);
    fig
}
