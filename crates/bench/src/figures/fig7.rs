//! Fig. 7: rooflines including the simulated StepStone-BG/DV points (the
//! gap to the roofline is localization/reduction overhead).

use crate::figures::baseline_system;
use crate::output::{FigureResult, Scale, Table};
use stepstone_addr::PimLevel;
use stepstone_roofline::{stepstone_roofline, sweep_cpu, sweep_gpu, sweep_stepstone, SweepPoint};

pub fn run(scale: Scale) -> FigureResult {
    let sys = baseline_system();
    let batches: Vec<usize> = match scale {
        Scale::Full => (0..=10).map(|i| 1usize << i).collect(),
        Scale::Quick => vec![1, 16],
    };
    let mut fig = FigureResult::new("fig7", "Rooflines incl. simulated StepStone points");
    let (bg, dv): (Vec<SweepPoint>, Vec<SweepPoint>) = rayon::join(
        || sweep_stepstone(&sys, 1024, 4096, &batches, PimLevel::BankGroup),
        || sweep_stepstone(&sys, 1024, 4096, &batches, PimLevel::Device),
    );
    let cpu = sweep_cpu(1024, 4096, &batches);
    let ghost = sweep_gpu(1024, 4096, &batches, true);
    let gdev = sweep_gpu(1024, 4096, &batches, false);
    let mut t = Table::new(vec![
        "N", "OI", "STP-BG GF/s", "STP-DV GF/s", "CPU GF/s", "GPU(host)", "GPU(dev)",
        "BG roofline", "DV roofline",
    ]);
    for i in 0..batches.len() {
        t.row(vec![
            batches[i].to_string(),
            format!("{:.2}", bg[i].oi),
            format!("{:.1}", bg[i].gflops),
            format!("{:.1}", dv[i].gflops),
            format!("{:.1}", cpu[i].gflops),
            format!("{:.1}", ghost[i].gflops),
            format!("{:.1}", gdev[i].gflops),
            format!("{:.1}", stepstone_roofline(PimLevel::BankGroup).attainable(bg[i].oi)),
            format!("{:.1}", stepstone_roofline(PimLevel::Device).attainable(dv[i].oi)),
        ]);
    }
    fig.table("achieved Gflop/s", t);
    // Crossover checks from the paper's text.
    let stp_best: Vec<f64> =
        (0..batches.len()).map(|i| bg[i].gflops.max(dv[i].gflops)).collect();
    let cross_cpu =
        batches.iter().zip(&stp_best).zip(&cpu).find(|((_, s), c)| c.gflops > **s);
    fig.note(format!(
        "CPU overtakes StepStone at N = {:?} (paper: CPU/GPU advantage only at N >= 256)",
        cross_cpu.map(|((n, _), _)| *n)
    ));
    let cross_gdev =
        batches.iter().zip(&stp_best).zip(&gdev).find(|((_, s), g)| g.gflops > **s);
    fig.note(format!(
        "device-resident GPU overtakes at N = {:?} (paper: beyond 16)",
        cross_gdev.map(|((n, _), _)| *n)
    ));
    fig
}
