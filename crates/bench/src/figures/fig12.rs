//! Fig. 12: impact of the (logical) BG scratchpad capacity on GEMM latency.

use crate::figures::{baseline_system, fig6};
use crate::output::{FigureResult, Scale, Table};
use rayon::prelude::*;
use stepstone_addr::PimLevel;
use stepstone_core::{simulate_gemm_opt, GemmSpec, SimOptions};
use stepstone_pim::PimLevelConfig;

pub fn run(scale: Scale) -> FigureResult {
    let matrices: &[(usize, usize)] = match scale {
        Scale::Full => &[(1024, 4096), (4096, 1024), (2048, 8192), (8192, 2048)],
        Scale::Quick => &[(1024, 4096)],
    };
    let batches: &[usize] = match scale {
        Scale::Full => &[4, 8, 16],
        Scale::Quick => &[8],
    };
    let capacities: &[u64] = &[16 << 10, 32 << 10, 64 << 10];
    let mut fig = FigureResult::new("fig12", "BG scratchpad capacity sweep");
    let mut t = Table::new(vec![
        "matrix", "N", "scratch", "GEMM", "fill(B)", "fill(C)", "drain(C)", "Localize",
        "Reduce", "total",
    ]);
    let jobs: Vec<((usize, usize), usize, u64)> = matrices
        .iter()
        .flat_map(|&mk| {
            batches.iter().flat_map(move |&n| capacities.iter().map(move |&c| (mk, n, c)))
        })
        .collect();
    let rows: Vec<_> = jobs
        .into_par_iter()
        .map(|((m, k), n, cap)| {
            let sys = baseline_system();
            let cfg = PimLevelConfig::nominal(PimLevel::BankGroup).with_scratchpad(cap);
            let opts = SimOptions::stepstone(PimLevel::BankGroup).with_level_cfg(cfg);
            let r = simulate_gemm_opt(&sys, &GemmSpec::new(m, k, n), &opts, None);
            ((m, k), n, cap, r)
        })
        .collect();
    for ((m, k), n, cap, r) in rows {
        let mut row = vec![format!("{m}x{k}"), n.to_string(), format!("{}K", cap >> 10)];
        row.extend(fig6::breakdown_row(String::new(), &r).into_iter().skip(1));
        t.row(row);
    }
    fig.table("DRAM cycles by phase (StepStone-BG)", t);
    fig.note(
        "expect: larger matrices amortize fills; overhead grows with batch; larger \
         scratchpads cut buffer-fill traffic (paper: 2048x8192 has half the block groups, \
         so half the per-PIM B working set)",
    );
    fig
}
