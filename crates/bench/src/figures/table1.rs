//! Table I: common DL-inference GEMM dimensions.

use crate::output::{FigureResult, Scale, Table};
use rayon::prelude::*;
use stepstone_workloads::table1;

pub fn run(_scale: Scale) -> FigureResult {
    let mut fig = FigureResult::new("table1", "Common DL-inference GEMM dimensions");
    let mut t = Table::new(vec!["Model", "Layer", "Weights (MxK)", "Batch sizes"]);
    let rows: Vec<Vec<String>> = table1()
        .into_par_iter()
        .map(|e| {
            vec![
                e.model.to_string(),
                e.layer.to_string(),
                format!("{}x{}", e.m, e.k),
                format!("{}-{}", e.batch_range.0, e.batch_range.1),
            ]
        })
        .collect();
    for row in rows {
        t.row(row);
    }
    fig.table("Table I", t);
    fig
}
