//! Fig. 10: activating all vs half of the BG-level PIMs — trading
//! arithmetic parallelism against localization/reduction overhead.

use crate::figures::{baseline_system, fig6};
use crate::output::{FigureResult, Scale, Table};
use rayon::prelude::*;
use stepstone_addr::PimLevel;
use stepstone_core::{simulate_gemm_opt, GemmSpec, SimOptions};

pub fn run(scale: Scale) -> FigureResult {
    let matrices: &[(usize, usize)] = match scale {
        Scale::Full => &[(512, 2048), (2048, 512), (1024, 4096), (4096, 1024)],
        Scale::Quick => &[(512, 2048)],
    };
    let batches: &[usize] = &[16, 32];
    let mut fig = FigureResult::new("fig10", "All vs half of the BG-level PIMs");
    let mut t = Table::new(vec![
        "matrix", "N", "PIMs", "GEMM", "fill(B)", "fill(C)", "drain(C)", "Localize", "Reduce",
        "total",
    ]);
    let jobs: Vec<((usize, usize), usize, u32)> = matrices
        .iter()
        .flat_map(|&mk| batches.iter().flat_map(move |&n| [(mk, n, 0u32), (mk, n, 1u32)]))
        .collect();
    let rows: Vec<_> = jobs
        .into_par_iter()
        .map(|((m, k), n, drop)| {
            let sys = baseline_system();
            let opts = SimOptions::stepstone(PimLevel::BankGroup).with_subset(drop);
            let r = simulate_gemm_opt(&sys, &GemmSpec::new(m, k, n), &opts, None);
            ((m, k), n, drop, r)
        })
        .collect();
    let mut small_benefit = 0.0f64;
    let mut totals = std::collections::HashMap::new();
    for ((m, k), n, drop, r) in &rows {
        let mut row = vec![
            format!("{m}x{k}"),
            n.to_string(),
            if *drop == 0 { "all".into() } else { "1/2".to_string() },
        ];
        row.extend(fig6::breakdown_row(String::new(), r).into_iter().skip(1));
        t.row(row);
        totals.insert((*m, *k, *n, *drop), r.total);
    }
    for ((m, k), n, _, _) in rows.iter().filter(|x| x.2 == 0) {
        let full = totals[&(*m, *k, *n, 0u32)] as f64;
        let half = totals[&(*m, *k, *n, 1u32)] as f64;
        if *m <= 2048 && *k <= 2048 {
            small_benefit = small_benefit.max(full / half - 1.0);
        }
    }
    fig.table("DRAM cycles by phase", t);
    fig.note(format!(
        "best half-PIM improvement on small matrices: {:.0}% (paper: ~25%)",
        small_benefit * 100.0
    ));
    fig
}
