//! Fig. 11: sensitivity to the XOR address mapping (IDs 0-4) and the weight
//! matrix aspect ratio, at batch 4.

use crate::figures::baseline_system;
use crate::output::{FigureResult, Scale, Table};
use rayon::prelude::*;
use stepstone_addr::{MappingId, PimLevel};
use stepstone_core::{simulate_gemm, GemmSpec, Phase};

pub fn run(scale: Scale) -> FigureResult {
    let matrices: &[(usize, usize)] = match scale {
        Scale::Full => &[(512, 2048), (128, 8192), (8192, 128)],
        Scale::Quick => &[(128, 2048)],
    };
    let levels = [PimLevel::BankGroup, PimLevel::Device, PimLevel::Channel];
    let mut fig = FigureResult::new("fig11", "Address-mapping and aspect-ratio sensitivity (N=4)");
    let mut t = Table::new(vec![
        "level", "mapping", "matrix", "GEMM", "Localize", "Reduce", "total",
    ]);
    let jobs: Vec<(PimLevel, MappingId, (usize, usize))> = levels
        .iter()
        .flat_map(|&l| {
            MappingId::ALL
                .iter()
                .flat_map(move |&id| matrices.iter().map(move |&mk| (l, id, mk)))
        })
        .collect();
    let rows: Vec<_> = jobs
        .into_par_iter()
        .map(|(level, id, (m, k))| {
            let sys = baseline_system().with_mapping(id);
            let r = simulate_gemm(&sys, &GemmSpec::new(m, k, 4), level);
            (
                level.tag().to_string(),
                id.index().to_string(),
                format!("{m}x{k}"),
                // Fold buffer traffic into the GEMM bar as the paper does
                // for this figure's three-way split.
                r.phase(Phase::Gemm)
                    + r.phase(Phase::FillB)
                    + r.phase(Phase::FillC)
                    + r.phase(Phase::DrainC),
                r.phase(Phase::Localization),
                r.phase(Phase::Reduction),
                r.total,
            )
        })
        .collect();
    for (lvl, id, mk, gemm, loc, red, total) in rows {
        t.row(vec![
            lvl,
            id,
            mk,
            gemm.to_string(),
            loc.to_string(),
            red.to_string(),
            total.to_string(),
        ]);
    }
    fig.table("DRAM cycles", t);
    fig.note(
        "expect: BG localization varies most across mappings for 128x8192 (input sharing \
         2/8/8/4/4); 8192x128 pays high reduction everywhere; coarse-BG mappings slow \
         StepStone-CH via tCCDL",
    );
    fig
}
