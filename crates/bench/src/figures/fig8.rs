//! Fig. 8: end-to-end inference latency for DLRM, GPT2, XLM, and BERT
//! under the seven execution schemes, with the PIM_DV / PIM_BG / CPU_GEMM /
//! CPU_Other stack.

use crate::figures::baseline_system;
use crate::output::{FigureResult, Scale, Table};
use rayon::prelude::*;
use stepstone_models::{bert, dlrm, gpt2, xlm, Bucket, ModelExecutor, ModelGraph, Scheme};

pub fn models_for(scale: Scale) -> Vec<ModelGraph> {
    match scale {
        Scale::Full => vec![dlrm(4), gpt2(4), xlm(4), bert(4)],
        Scale::Quick => vec![dlrm(4)],
    }
}

pub fn run(scale: Scale) -> FigureResult {
    let mut fig = FigureResult::new("fig8", "End-to-end model latency, 7 schemes");
    let mut t = Table::new(vec![
        "model", "scheme", "PIM_DV", "PIM_BG", "CPU_GEMM", "CPU_Other", "total", "norm(iCPU)",
    ]);
    // One (model, scheme) simulation per job; each gets its own executor so
    // the layer cache still hits within a job. Result order matches the
    // serial loops, so the table is byte-identical.
    let models = models_for(scale);
    let jobs: Vec<(usize, Scheme)> = (0..models.len())
        .flat_map(|mix| Scheme::ALL.map(|s| (mix, s)))
        .collect();
    let reports: Vec<_> = jobs
        .into_par_iter()
        .map(|(mix, scheme)| {
            let mut ex = ModelExecutor::new(baseline_system());
            (mix, scheme, ex.run(&models[mix], scheme))
        })
        .collect();
    for (mix, model) in models.iter().enumerate() {
        let per_model: Vec<_> = reports.iter().filter(|(i, _, _)| *i == mix).collect();
        let total_of = |want: Scheme| {
            per_model
                .iter()
                .find(|(_, s, _)| *s == want)
                .map(|(_, _, r)| r.total_cycles)
                .expect("every scheme simulated")
        };
        let icpu_total = total_of(Scheme::ICpu) as f64;
        for (_, scheme, r) in &per_model {
            t.row(vec![
                model.name.to_string(),
                scheme.label().to_string(),
                r.bucket(Bucket::PimDv).to_string(),
                r.bucket(Bucket::PimBg).to_string(),
                r.bucket(Bucket::CpuGemm).to_string(),
                r.bucket(Bucket::CpuOther).to_string(),
                r.total_cycles.to_string(),
                format!("{:.3}", r.total_cycles as f64 / icpu_total),
            ]);
        }
        fig.note(format!(
            "{}: CPU/STP = {:.1}x (paper headline: up to 16x; BERT 12x)",
            model.name,
            total_of(Scheme::Cpu) as f64 / total_of(Scheme::Stp) as f64
        ));
    }
    fig.table("cycles by Fig. 8 stack category", t);
    fig
}
