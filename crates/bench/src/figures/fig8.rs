//! Fig. 8: end-to-end inference latency for DLRM, GPT2, XLM, and BERT
//! under the seven execution schemes, with the PIM_DV / PIM_BG / CPU_GEMM /
//! CPU_Other stack.

use crate::figures::baseline_system;
use crate::output::{FigureResult, Scale, Table};
use stepstone_models::{bert, dlrm, gpt2, xlm, Bucket, ModelExecutor, ModelGraph, Scheme};

pub fn models_for(scale: Scale) -> Vec<ModelGraph> {
    match scale {
        Scale::Full => vec![dlrm(4), gpt2(4), xlm(4), bert(4)],
        Scale::Quick => vec![dlrm(4)],
    }
}

pub fn run(scale: Scale) -> FigureResult {
    let mut fig = FigureResult::new("fig8", "End-to-end model latency, 7 schemes");
    let mut ex = ModelExecutor::new(baseline_system());
    let mut t = Table::new(vec![
        "model", "scheme", "PIM_DV", "PIM_BG", "CPU_GEMM", "CPU_Other", "total", "norm(iCPU)",
    ]);
    for model in models_for(scale) {
        let icpu_total = ex.run(&model, Scheme::ICpu).total_cycles as f64;
        let mut cpu_over_stp = 0.0;
        let mut stp_total = 0;
        for scheme in Scheme::ALL {
            let r = ex.run(&model, scheme);
            t.row(vec![
                model.name.to_string(),
                scheme.label().to_string(),
                r.bucket(Bucket::PimDv).to_string(),
                r.bucket(Bucket::PimBg).to_string(),
                r.bucket(Bucket::CpuGemm).to_string(),
                r.bucket(Bucket::CpuOther).to_string(),
                r.total_cycles.to_string(),
                format!("{:.3}", r.total_cycles as f64 / icpu_total),
            ]);
            match scheme {
                Scheme::Stp => stp_total = r.total_cycles,
                Scheme::Cpu => cpu_over_stp = r.total_cycles as f64,
                _ => {}
            }
        }
        fig.note(format!(
            "{}: CPU/STP = {:.1}x (paper headline: up to 16x; BERT 12x)",
            model.name,
            cpu_over_stp / stp_total as f64
        ));
    }
    fig.table("cycles by Fig. 8 stack category", t);
    fig
}
