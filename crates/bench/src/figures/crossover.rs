//! §V-B serving-time crossover: the batch size at which a CPU overtakes
//! split-batch PIM execution ("Even with somewhat larger batches (e.g., up
//! to N = 384 for BERT), StepStone PIM outperforms the CPU by splitting a
//! batch into several batch-32 GEMM operations"). Sweeps BERT-class layer
//! shapes per PIM level; a dash marks "no crossover within the 16 Ki-sample
//! search cap" — distinguishable, post-bugfix, from a crossover *at* the
//! cap.

use crate::figures::baseline_system;
use crate::output::{FigureResult, Scale, Table};
use rayon::prelude::*;
use stepstone_addr::PimLevel;
use stepstone_core::{cpu_crossover_batch, split_batch_cycles, PIM_CHUNK_BATCH};

pub fn run(scale: Scale) -> FigureResult {
    let matrices: &[(usize, usize)] = match scale {
        Scale::Full => &[(1024, 4096), (4096, 1024), (1024, 1024), (512, 2048)],
        Scale::Quick => &[(512, 2048)],
    };
    let levels = [PimLevel::BankGroup, PimLevel::Device, PimLevel::Channel];
    let mut fig = FigureResult::new(
        "crossover",
        "CPU-overtakes-PIM batch size under batch-32 splitting (paper: N=384 for BERT)",
    );
    let mut t = Table::new(vec![
        "level", "matrix", "crossover N", "PIM cyc @ N-8 (split)", "chunks @ N-8",
    ]);
    let jobs: Vec<(PimLevel, (usize, usize))> = levels
        .iter()
        .flat_map(|&l| matrices.iter().map(move |&mk| (l, mk)))
        .collect();
    let rows: Vec<_> = jobs
        .into_par_iter()
        .map(|(level, (m, k))| {
            let sys = baseline_system();
            let crossover = cpu_crossover_batch(&sys, m, k, level);
            // Cost the batch just below the crossover with a partial tail
            // chunk, exercising the real split-batch cost model.
            let probe_n = crossover.unwrap_or(PIM_CHUNK_BATCH * 4).saturating_sub(8).max(8);
            let pim = split_batch_cycles(&sys, m, k, probe_n, level);
            (level, (m, k), crossover, probe_n, pim)
        })
        .collect();
    for (level, (m, k), crossover, probe_n, pim) in rows {
        t.row(vec![
            level.tag().to_string(),
            format!("{m}x{k}"),
            crossover.map_or("- (none <= 16Ki)".to_string(), |n| n.to_string()),
            format!("{pim} @ N={probe_n}"),
            format!("{} full + {} tail", probe_n / PIM_CHUNK_BATCH, probe_n % PIM_CHUNK_BATCH),
        ]);
    }
    fig.table("split-batch crossover", t);
    fig.note(
        "structure check: crossover ~ per-chunk-speedup x 32 (paper derives 384 = 12 x 32); \
         partial tails are costed at their real size, not rounded up to full chunks",
    );
    fig
}
