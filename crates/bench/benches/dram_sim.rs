//! Simulator engine throughput: cycles simulated per wall-clock second for
//! the streaming access path and a full StepStone GEMM.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use stepstone_addr::{mapping_by_id, MappingId, PimLevel};
use stepstone_core::{simulate_gemm, GemmSpec, SystemConfig};
use stepstone_dram::{CasKind, DramConfig, Port, TimingState};

fn bench_sim(c: &mut Criterion) {
    let mapping = mapping_by_id(MappingId::Skylake);
    c.bench_function("timing_access_stream_8k", |b| {
        b.iter(|| {
            let mut ts = TimingState::new(DramConfig::default());
            let mut end = 0;
            for blk in 0..8192u64 {
                let coord = mapping.decode(blk * 64);
                end = ts.access(coord, CasKind::Read, Port::Channel, 0).data_end;
            }
            black_box(end)
        })
    });
    let sys = SystemConfig::default();
    c.bench_function("stepstone_gemm_256x1024_bg", |b| {
        b.iter(|| {
            black_box(simulate_gemm(&sys, &GemmSpec::new(256, 1024, 4), PimLevel::BankGroup).total)
        })
    });
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
