//! Host-side throughput of the address generators: the StepStone AGEN must
//! produce addresses orders of magnitude faster than naive scanning, and
//! the simulator leans on it for every region walk.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use stepstone_addr::{
    mapping_by_id, GroupAnalysis, MappingId, MatrixLayout, NaiveAgen, PimLevel, StepStoneAgen,
};

fn bench_agen(c: &mut Criterion) {
    let mapping = mapping_by_id(MappingId::Skylake);
    let layout = MatrixLayout::new_f32(0, 256, 4096);
    let ga = GroupAnalysis::analyze(&mapping, PimLevel::BankGroup, layout);
    let pim = ga.active_pims()[0];
    let grp = (0..ga.n_groups()).find(|&g| ga.is_admissible(pim, g)).expect("admissible");
    let cs = ga.constraints_for(pim, grp);

    let mut group = c.benchmark_group("agen_walk_4k_blocks");
    group.bench_function("stepstone", |b| {
        b.iter(|| {
            let walk = StepStoneAgen::new(cs.clone(), layout.base, layout.end());
            black_box(walk.count())
        })
    });
    group.bench_function("span_program", |b| {
        // Warm path: the periodic skeleton cache is shared process-wide,
        // so after the first iteration this measures pure replay.
        b.iter(|| {
            let walk = StepStoneAgen::new(cs.clone(), layout.base, layout.end()).span_program();
            black_box(walk.count())
        })
    });
    group.bench_function("naive", |b| {
        b.iter(|| {
            let walk = NaiveAgen::new(cs.clone(), layout.base, layout.end());
            black_box(walk.count())
        })
    });
    group.finish();

    // The sub-paper serving shape (Table-I batch GEMMs): span generation
    // for one (pim, group) cell of a 512x512 matrix — the walk the
    // span-program tentpole targets.
    let sp_layout = MatrixLayout::new_f32(0, 512, 512);
    let sp_ga = GroupAnalysis::analyze(&mapping, PimLevel::BankGroup, sp_layout);
    let sp_pim = sp_ga.active_pims()[0];
    let sp_grp =
        (0..sp_ga.n_groups()).find(|&g| sp_ga.is_admissible(sp_pim, g)).expect("admissible");
    let sp_cs = sp_ga.constraints_for(sp_pim, sp_grp);
    let mut group = c.benchmark_group("agen_subpaper_512");
    group.bench_function("spans_live", |b| {
        b.iter(|| {
            let walk = StepStoneAgen::new(sp_cs.clone(), sp_layout.base, sp_layout.end());
            black_box(walk.spans().count())
        })
    });
    group.bench_function("span_program", |b| {
        b.iter(|| {
            let walk = StepStoneAgen::new(sp_cs.clone(), sp_layout.base, sp_layout.end())
                .span_program();
            black_box(walk.count())
        })
    });
    group.finish();

    c.bench_function("mapping_decode", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for blk in 0..4096u64 {
                acc ^= black_box(mapping.decode(blk * 64)).bankgroup;
            }
            acc
        })
    });
}

criterion_group!(benches, bench_agen);
criterion_main!(benches);
