//! Host-side throughput of the address generators: the StepStone AGEN must
//! produce addresses orders of magnitude faster than naive scanning, and
//! the simulator leans on it for every region walk.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use stepstone_addr::{
    mapping_by_id, GroupAnalysis, MappingId, MatrixLayout, NaiveAgen, PimLevel, StepStoneAgen,
};

fn bench_agen(c: &mut Criterion) {
    let mapping = mapping_by_id(MappingId::Skylake);
    let layout = MatrixLayout::new_f32(0, 256, 4096);
    let ga = GroupAnalysis::analyze(&mapping, PimLevel::BankGroup, layout);
    let pim = ga.active_pims()[0];
    let grp = (0..ga.n_groups()).find(|&g| ga.is_admissible(pim, g)).expect("admissible");
    let cs = ga.constraints_for(pim, grp);

    let mut group = c.benchmark_group("agen_walk_4k_blocks");
    group.bench_function("stepstone", |b| {
        b.iter(|| {
            let walk = StepStoneAgen::new(cs.clone(), layout.base, layout.end());
            black_box(walk.count())
        })
    });
    group.bench_function("naive", |b| {
        b.iter(|| {
            let walk = NaiveAgen::new(cs.clone(), layout.base, layout.end());
            black_box(walk.count())
        })
    });
    group.finish();

    c.bench_function("mapping_decode", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for blk in 0..4096u64 {
                acc ^= black_box(mapping.decode(blk * 64)).bankgroup;
            }
            acc
        })
    });
}

criterion_group!(benches, bench_agen);
criterion_main!(benches);
