//! End-to-end large-GEMM simulation throughput: the streaming engine vs
//! the frozen seed replay path, at a size big enough for memory effects
//! (materialized step programs miss cache) to show. `bench_sim` is the
//! tracked paper-scale run; this bench gives the quick Criterion-style
//! number during development.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use stepstone_addr::PimLevel;
use stepstone_bench::seed_replay::simulate_pow2_gemm_seed;
use stepstone_core::{simulate_pow2_gemm_exec, ExecMode, GemmSpec, SimOptions, SystemConfig};

fn bench_large_gemm(c: &mut Criterion) {
    let sys = SystemConfig::default();
    let spec = GemmSpec::new(1024, 4096, 32);
    let opts = SimOptions::stepstone(PimLevel::BankGroup);
    let mut g = c.benchmark_group("gemm_1024x4096_n32_bg");
    g.sample_size(10);
    g.bench_function("streaming", |b| {
        b.iter(|| {
            black_box(
                simulate_pow2_gemm_exec(&sys, &spec, &opts, None, ExecMode::Streaming).total,
            )
        })
    });
    g.bench_function("seed_replay", |b| {
        b.iter(|| black_box(simulate_pow2_gemm_seed(&sys, &spec, &opts).total))
    });
    g.finish();
}

criterion_group!(benches, bench_large_gemm);
criterion_main!(benches);
