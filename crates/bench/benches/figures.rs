//! Wall-clock cost of regenerating key paper figures at quick scale (a
//! proxy for whole-harness health; the full sweeps run via the binaries).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use stepstone_bench::figures;
use stepstone_bench::Scale;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures_quick");
    g.sample_size(10);
    g.bench_function("fig6", |b| b.iter(|| black_box(figures::fig6::run(Scale::Quick))));
    g.bench_function("fig9", |b| b.iter(|| black_box(figures::fig9::run(Scale::Quick))));
    g.bench_function("fig11", |b| b.iter(|| black_box(figures::fig11::run(Scale::Quick))));
    g.bench_function("fig14", |b| b.iter(|| black_box(figures::fig14::run(Scale::Quick))));
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
