//! Engine equivalence matrix (PR 5, extended in PR 6): the frozen-seed
//! suite under {parallel on/off} × {command trace on/off} × {span fast
//! path on/off} × {run-granular admission on/off}.
//!
//! Each knob gates an all-or-nothing engine path that used to get only
//! incidental coverage:
//!
//! * `parallel` — per-channel sharding with `TimingState`/`CommandBus`
//!   adoption vs the serial min-heap scheduler;
//! * `trace` — command tracing forces the serial engine *and* the exact
//!   per-block FR-FCFS probe scan (trace order is part of the contract);
//! * span fast path — the all-or-nothing whole-run streaming of
//!   `UnitCursor::advance_batch`, forced off through the test-only
//!   `engine::set_span_fast_path` knob so the exact probe path runs even
//!   for exclusive-unit phases;
//! * run-granular — hinted runs admitted as single scheduling objects
//!   (`StepSource::take_run` + synthesized followers + the closed-form
//!   jump), forced off through `engine::set_run_granular` so every block
//!   goes through a real source pull.
//!
//! Every combination must produce a `LatencyReport` identical to the
//! frozen seed engine. The whole matrix runs inside one `#[test]` because
//! the fast-path knob is process-global.

use stepstone_addr::{PagingConfig, PimLevel};
use stepstone_bench::seed_replay::simulate_pow2_gemm_seed;
use stepstone_core::engine::{
    reset_run_counters, run_counters, set_run_granular, set_span_fast_path,
};
use stepstone_core::{
    simulate_pow2_gemm_exec, ExecMode, FabricConfig, GemmSpec, LatencyReport, Phase, ReduceVia,
    SimOptions, SystemConfig, TopologyKind,
};
use stepstone_dram::BackendKind;

fn assert_reports_equal(a: &LatencyReport, b: &LatencyReport, what: &str) {
    assert_eq!(a.total, b.total, "{what}: total cycles");
    assert_eq!(a.phase_cycles, b.phase_cycles, "{what}: phase attribution");
    assert_eq!(a.dram, b.dram, "{what}: DRAM event counts");
    assert_eq!(a.activity, b.activity, "{what}: activity counts");
}

/// The fast-path knob is process-global, so the two matrix tests must not
/// interleave: each holds this lock for its whole run.
fn knob_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Restore the global fast-path knob even when an assertion panics, so a
/// failure here cannot poison the other matrix test.
struct FastPathGuard(bool);

impl Drop for FastPathGuard {
    fn drop(&mut self) {
        set_span_fast_path(self.0);
    }
}

/// Same, for the run-granular admission knob.
struct RunGranularGuard(bool);

impl Drop for RunGranularGuard {
    fn drop(&mut self) {
        set_run_granular(self.0);
    }
}

#[test]
fn matrix_parallel_trace_fastpath_match_frozen_seed() {
    let _serial = knob_lock();
    let _guard = FastPathGuard(set_span_fast_path(true));
    let _guard_rg = RunGranularGuard(set_run_granular(true));
    let mut admitted = 0u64;
    let cases: &[(usize, usize, usize, &[PimLevel])] = &[
        (128, 512, 2, &[PimLevel::BankGroup]),
        (256, 1024, 4, &PimLevel::ALL),
    ];
    for &(m, k, n, levels) in cases {
        let spec = GemmSpec::new(m, k, n);
        for &level in levels {
            let opts = SimOptions::stepstone(level);
            let seed = simulate_pow2_gemm_seed(
                &SystemConfig { parallel: false, ..SystemConfig::default() },
                &spec,
                &opts,
            );
            for parallel in [false, true] {
                for trace in [false, true] {
                    for fast in [false, true] {
                        for rg in [false, true] {
                            set_span_fast_path(fast);
                            set_run_granular(rg);
                            reset_run_counters();
                            let sys =
                                SystemConfig { parallel, trace, ..SystemConfig::default() };
                            let got = simulate_pow2_gemm_exec(
                                &sys,
                                &spec,
                                &opts,
                                None,
                                ExecMode::Streaming,
                            );
                            let c = run_counters();
                            set_span_fast_path(true);
                            set_run_granular(true);
                            let what = format!(
                                "{m}x{k} N={n} {level:?} parallel={parallel} trace={trace} \
                                 fast={fast} rg={rg}"
                            );
                            assert_reports_equal(&got, &seed, &what);
                            if !(rg && fast) {
                                assert_eq!(c.runs, 0, "{what}: admission needs both knobs");
                            }
                            admitted += c.runs;
                        }
                    }
                }
            }
        }
    }
    assert!(admitted > 0, "some matrix config admits hinted runs");
}

/// PR 7 backend axis: {exact, analytic} × {parallel on/off} × {run-granular
/// on/off}. The exact tier must stay bit-identical to the frozen seed under
/// every knob combination; the analytic tier must land within its
/// documented error band (0.5×–2× of exact, see `core::analytic`) and must
/// preserve the *relative latency ordering* of the workload shapes, which
/// is what the fast tier is for (design-space pruning, not cycle returns).
#[test]
fn matrix_backend_tiers_exact_and_analytic() {
    let _serial = knob_lock();
    let _guard = FastPathGuard(set_span_fast_path(true));
    let _guard_rg = RunGranularGuard(set_run_granular(true));
    // Table-I-flavored shapes (scaled to test budget), distinct enough to
    // have a meaningful latency order.
    let shapes: &[(usize, usize, usize)] = &[(256, 1024, 2), (512, 2048, 4), (1024, 4096, 4)];
    let mut exact_totals = Vec::new();
    let mut analytic_totals = Vec::new();
    for &(m, k, n) in shapes {
        let spec = GemmSpec::new(m, k, n);
        let opts = SimOptions::stepstone(PimLevel::BankGroup);
        let seed = simulate_pow2_gemm_seed(
            &SystemConfig { parallel: false, ..SystemConfig::default() },
            &spec,
            &opts,
        );
        let mut analytic_seen: Option<u64> = None;
        for parallel in [false, true] {
            for rg in [false, true] {
                set_run_granular(rg);
                let sys = SystemConfig { parallel, ..SystemConfig::default() };
                assert_eq!(sys.backend, BackendKind::Exact, "exact is the default tier");
                let exact = simulate_pow2_gemm_exec(&sys, &spec, &opts, None, ExecMode::Streaming);
                let what = format!("{m}x{k} N={n} exact parallel={parallel} rg={rg}");
                assert_reports_equal(&exact, &seed, &what);

                let asys = sys.clone().with_backend(BackendKind::Analytic);
                let analytic =
                    simulate_pow2_gemm_exec(&asys, &spec, &opts, None, ExecMode::Streaming);
                set_run_granular(true);
                // The closed-form tier is knob-independent: same answer
                // whatever the engine scheduling configuration.
                let prev = *analytic_seen.get_or_insert(analytic.total);
                assert_eq!(analytic.total, prev, "{what}: analytic must ignore engine knobs");
                let ratio = analytic.total as f64 / exact.total as f64;
                assert!(
                    (0.5..2.0).contains(&ratio),
                    "{what}: analytic/exact ratio {ratio:.3} outside documented band"
                );
            }
        }
        exact_totals.push(seed.total);
        analytic_totals.push(analytic_seen.unwrap());
    }
    let order = |v: &[u64]| {
        let mut ix: Vec<usize> = (0..v.len()).collect();
        ix.sort_by_key(|&i| v[i]);
        ix
    };
    assert_eq!(
        order(&exact_totals),
        order(&analytic_totals),
        "analytic must preserve the exact tier's latency ordering \
         (exact {exact_totals:?}, analytic {analytic_totals:?})"
    );
}

/// PR 9 reduce axis: {host-dma, fabric(ring), fabric(line)} × {parallel
/// on/off} × {run-granular on/off}. The host-DMA arm is the default and
/// must stay bit-identical to the frozen seed under every knob. The fabric
/// arms run the *same* per-channel Phase-3 drain through the memory
/// backend — identical `DramStats` and identical non-Reduction phases —
/// and then extend the reduction with the PIM→PIM transit, so Reduction is
/// never shorter than host DMA's local drain and the report carries
/// per-link fabric statistics. Each fabric arm must also be engine-knob
/// invariant (the fabric schedule is deterministic).
#[test]
fn matrix_reduce_via_host_dma_and_fabric() {
    let _serial = knob_lock();
    let _guard = FastPathGuard(set_span_fast_path(true));
    let _guard_rg = RunGranularGuard(set_run_granular(true));
    let shapes: &[(usize, usize, usize)] = &[(256, 1024, 2), (512, 2048, 4)];
    for &(m, k, n) in shapes {
        let spec = GemmSpec::new(m, k, n);
        let opts = SimOptions::stepstone(PimLevel::BankGroup);
        let seed = simulate_pow2_gemm_seed(
            &SystemConfig { parallel: false, ..SystemConfig::default() },
            &spec,
            &opts,
        );
        let mut fabric_seen: [Option<LatencyReport>; 2] = [None, None];
        for parallel in [false, true] {
            for rg in [false, true] {
                set_run_granular(rg);
                let sys = SystemConfig { parallel, ..SystemConfig::default() };
                assert_eq!(sys.reduce_via, ReduceVia::HostDma, "host DMA is the default");
                let host = simulate_pow2_gemm_exec(&sys, &spec, &opts, None, ExecMode::Streaming);
                let what = format!("{m}x{k} N={n} host-dma parallel={parallel} rg={rg}");
                assert_reports_equal(&host, &seed, &what);
                assert!(host.fabric.is_none(), "{what}: no fabric stats on the default path");

                for (tix, topo) in [TopologyKind::Ring, TopologyKind::Line].iter().enumerate() {
                    let fsys = sys
                        .clone()
                        .with_reduce_via(ReduceVia::Fabric)
                        .with_fabric(FabricConfig::default().with_topology(*topo));
                    let fab =
                        simulate_pow2_gemm_exec(&fsys, &spec, &opts, None, ExecMode::Streaming);
                    let what = format!(
                        "{m}x{k} N={n} fabric({}) parallel={parallel} rg={rg}",
                        topo.tag()
                    );
                    // Composes with the memory backend: same DRAM command
                    // stream, so the event counters match host DMA exactly.
                    assert_eq!(fab.dram, host.dram, "{what}: DRAM counters");
                    assert_eq!(fab.activity, host.activity, "{what}: activity");
                    for p in [Phase::Gemm, Phase::FillB, Phase::FillC, Phase::DrainC,
                              Phase::Localization, Phase::Launch] {
                        assert_eq!(fab.phase(p), host.phase(p), "{what}: {p:?} cycles");
                    }
                    assert!(
                        fab.phase(Phase::Reduction) >= host.phase(Phase::Reduction),
                        "{what}: fabric reduce cannot beat its own local drain"
                    );
                    let stats = fab.fabric.as_ref().unwrap_or_else(|| {
                        panic!("{what}: fabric stats missing")
                    });
                    assert_eq!(stats.topology, topo.tag(), "{what}");
                    assert_eq!(stats.nodes, 4, "{what}: one node per DRAM channel");
                    assert_eq!(stats.bytes_injected, stats.bytes_delivered, "{what}");
                    assert!(stats.bytes_injected > 0, "{what}: partial sums moved");
                    assert!(
                        stats.links.iter().any(|l| l.messages > 0 && l.peak_demand_bytes > 0),
                        "{what}: per-link peak-demand stats populated"
                    );
                    // Knob invariance: the fabric arm's whole report is a
                    // pure function of the config, not the engine knobs.
                    match &fabric_seen[tix] {
                        Some(prev) => {
                            assert_reports_equal(&fab, prev, &what);
                            assert_eq!(&fab.fabric, &prev.fabric, "{what}: link stats");
                        }
                        None => fabric_seen[tix] = Some(fab),
                    }
                }
                set_run_granular(true);
            }
        }
    }
}

/// PR 10 paging axis. Two families of arms:
///
/// * **Provable reductions** — identity-policy paging at any page size
///   (no stream is ever wrapped), and a page covering the whole simulated
///   address range under a *non-identity* policy (one constant,
///   ID-parity-free frame offset relabels banks/rows uniformly). Both
///   must be bit-identical to the frozen contiguous seed.
/// * **Fragmented/permuted arms** — small-page translation (with and
///   without a PTW cost) through the full production machinery
///   (page-clipped run hints, span fast path, run-granular admission)
///   must be cycle-exact against the per-page live-walk oracle: both
///   knobs forced off, so every block is a real source pull translated
///   one at a time.
#[test]
fn matrix_paging_identity_reduction_and_fragmented_oracle() {
    let _serial = knob_lock();
    let _guard = FastPathGuard(set_span_fast_path(true));
    let _guard_rg = RunGranularGuard(set_run_granular(true));
    let mut admitted = 0u64;
    // BankGroup partitions this shape into spans too short to admit runs
    // (every hint ends at length 1 even unpaged); Device-level spans are
    // long enough that page-clipped hints must still admit whole runs.
    let shapes: &[(usize, usize, usize, PimLevel)] = &[
        (256, 1024, 2, PimLevel::BankGroup),
        (512, 2048, 4, PimLevel::Device),
    ];
    for &(m, k, n, level) in shapes {
        let spec = GemmSpec::new(m, k, n);
        let opts = SimOptions::stepstone(level);
        let seed = simulate_pow2_gemm_seed(
            &SystemConfig { parallel: false, ..SystemConfig::default() },
            &spec,
            &opts,
        );
        for paging in [
            PagingConfig::identity(4096),
            PagingConfig::identity(1 << 30),
            PagingConfig::permuted(1 << 36, 11),
            PagingConfig::fragmented(1 << 36, 11),
        ] {
            for parallel in [false, true] {
                let sys =
                    SystemConfig { parallel, ..SystemConfig::default() }.with_paging(paging);
                let got = simulate_pow2_gemm_exec(&sys, &spec, &opts, None, ExecMode::Streaming);
                let what = format!("{m}x{k} N={n} {level:?} {paging:?} parallel={parallel}");
                assert_reports_equal(&got, &seed, &what);
            }
        }
        for paging in [
            PagingConfig::fragmented(4096, 42),
            PagingConfig::fragmented(1 << 16, 42).with_ptw(40),
            PagingConfig::permuted(2 << 20, 7).with_ptw(20),
        ] {
            set_span_fast_path(false);
            set_run_granular(false);
            let osys =
                SystemConfig { parallel: false, ..SystemConfig::default() }.with_paging(paging);
            let oracle = simulate_pow2_gemm_exec(&osys, &spec, &opts, None, ExecMode::Streaming);
            set_span_fast_path(true);
            set_run_granular(true);
            for parallel in [false, true] {
                reset_run_counters();
                let sys =
                    SystemConfig { parallel, ..SystemConfig::default() }.with_paging(paging);
                let got = simulate_pow2_gemm_exec(&sys, &spec, &opts, None, ExecMode::Streaming);
                let what = format!("{m}x{k} N={n} {level:?} {paging:?} parallel={parallel}");
                assert_reports_equal(&got, &oracle, &what);
                admitted += run_counters().runs;
            }
            // Translation must actually move traffic in these arms, or the
            // oracle proves nothing: same counters, different addresses.
            let pm = osys.page_map().expect("paging configured");
            assert!(!pm.is_identity(), "arm must translate");
        }
    }
    assert!(admitted > 0, "page-clipped hints must still admit whole runs");
}

#[test]
fn matrix_covers_subset_and_echo_program_shapes() {
    // The subset remap (hints disabled, dropped ID bits) and eCHO
    // (per-row launches) program shapes under the same four knobs,
    // pinned against their own all-exact baseline.
    let _serial = knob_lock();
    let _guard = FastPathGuard(set_span_fast_path(true));
    let _guard_rg = RunGranularGuard(set_run_granular(true));
    let spec = GemmSpec::new(512, 2048, 4);
    for opts in [
        SimOptions::stepstone(PimLevel::BankGroup).with_subset(1),
        SimOptions::echo(PimLevel::BankGroup),
    ] {
        set_span_fast_path(false);
        let baseline = simulate_pow2_gemm_exec(
            &SystemConfig { parallel: false, trace: true, ..SystemConfig::default() },
            &spec,
            &opts,
            None,
            ExecMode::Streaming,
        );
        for parallel in [false, true] {
            for trace in [false, true] {
                for fast in [false, true] {
                    for rg in [false, true] {
                        set_span_fast_path(fast);
                        set_run_granular(rg);
                        let sys = SystemConfig { parallel, trace, ..SystemConfig::default() };
                        let got =
                            simulate_pow2_gemm_exec(&sys, &spec, &opts, None, ExecMode::Streaming);
                        set_span_fast_path(true);
                        set_run_granular(true);
                        let what = format!(
                            "{:?} parallel={parallel} trace={trace} fast={fast} rg={rg}",
                            opts.granularity
                        );
                        assert_reports_equal(&got, &baseline, &what);
                    }
                }
            }
        }
    }
}
