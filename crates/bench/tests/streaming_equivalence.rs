//! Cycle-exactness of the streaming engine against the seed path, at
//! `LatencyReport` granularity, across a matrix of small GEMMs and all
//! three PIM levels (the ISSUE-1 acceptance test).
//!
//! Three-way comparison per configuration:
//! * streaming (production) vs in-core materialized replay, and
//! * streaming vs the frozen seed engine in [`stepstone_bench::seed_replay`]
//!   (materialized programs + seed AGEN corrector + seed scheduler).

use stepstone_addr::PimLevel;
use stepstone_bench::seed_replay::simulate_pow2_gemm_seed;
use stepstone_core::{
    simulate_pow2_gemm_exec, ExecMode, GemmSpec, LatencyReport, SimOptions, SystemConfig,
};

fn assert_reports_equal(a: &LatencyReport, b: &LatencyReport, what: &str) {
    assert_eq!(a.total, b.total, "{what}: total cycles");
    assert_eq!(a.phase_cycles, b.phase_cycles, "{what}: phase attribution");
    assert_eq!(a.dram, b.dram, "{what}: DRAM event counts");
    assert_eq!(a.activity, b.activity, "{what}: activity counts");
}

#[test]
fn streaming_matches_seed_engine_across_levels_and_shapes() {
    let sys = SystemConfig::default();
    let shapes = [(128, 512, 1), (256, 1024, 4), (512, 2048, 8), (1024, 1024, 2)];
    for (m, k, n) in shapes {
        let spec = GemmSpec::new(m, k, n);
        for level in PimLevel::ALL {
            let opts = SimOptions::stepstone(level);
            let streaming =
                simulate_pow2_gemm_exec(&sys, &spec, &opts, None, ExecMode::Streaming);
            let materialized =
                simulate_pow2_gemm_exec(&sys, &spec, &opts, None, ExecMode::Materialized);
            let seed = simulate_pow2_gemm_seed(&sys, &spec, &opts);
            let what = format!("{m}x{k} N={n} {level:?}");
            assert_reports_equal(&streaming, &materialized, &format!("{what} (materialized)"));
            assert_reports_equal(&streaming, &seed, &format!("{what} (seed replay)"));
            assert!(streaming.total > 0);
        }
    }
}

#[test]
fn parallel_channel_execution_matches_serial_and_seed() {
    // The per-channel parallel engine must be cycle-exact with the serial
    // scheduler (and therefore with the frozen seed replay): units on
    // different channels share no DRAM timing state, so sharding is pure
    // re-ordering of independent commits.
    let par_sys = SystemConfig::default();
    assert!(par_sys.parallel, "parallel channels are the default");
    let serial_sys = SystemConfig { parallel: false, ..SystemConfig::default() };
    let shapes = [(256, 1024, 4), (512, 2048, 8), (1024, 1024, 2)];
    for (m, k, n) in shapes {
        let spec = GemmSpec::new(m, k, n);
        for level in PimLevel::ALL {
            let opts = SimOptions::stepstone(level);
            let parallel =
                simulate_pow2_gemm_exec(&par_sys, &spec, &opts, None, ExecMode::Streaming);
            let serial =
                simulate_pow2_gemm_exec(&serial_sys, &spec, &opts, None, ExecMode::Streaming);
            let seed = simulate_pow2_gemm_seed(&serial_sys, &spec, &opts);
            let what = format!("{m}x{k} N={n} {level:?}");
            assert_reports_equal(&parallel, &serial, &format!("{what} (parallel vs serial)"));
            assert_reports_equal(&parallel, &seed, &format!("{what} (parallel vs seed)"));
        }
    }
    // The subset remap and eCHO program shapes shard identically.
    let spec = GemmSpec::new(512, 2048, 4);
    for opts in [
        SimOptions::stepstone(PimLevel::BankGroup).with_subset(1),
        SimOptions::echo(PimLevel::BankGroup),
    ] {
        let parallel = simulate_pow2_gemm_exec(&par_sys, &spec, &opts, None, ExecMode::Streaming);
        let serial = simulate_pow2_gemm_exec(&serial_sys, &spec, &opts, None, ExecMode::Streaming);
        assert_reports_equal(&parallel, &serial, &format!("{:?} (parallel)", opts.granularity));
    }
}

#[test]
fn streaming_matches_seed_engine_with_subset_and_echo() {
    // The subset remap and eCHO granularity exercise the remaining program
    // shapes (per-row launches, dropped ID bits).
    let sys = SystemConfig::default();
    let spec = GemmSpec::new(512, 2048, 4);
    for opts in [
        SimOptions::stepstone(PimLevel::BankGroup).with_subset(1),
        SimOptions::echo(PimLevel::BankGroup),
        SimOptions::echo(PimLevel::Device),
    ] {
        let streaming = simulate_pow2_gemm_exec(&sys, &spec, &opts, None, ExecMode::Streaming);
        let materialized =
            simulate_pow2_gemm_exec(&sys, &spec, &opts, None, ExecMode::Materialized);
        assert_reports_equal(&streaming, &materialized, &format!("{:?}", opts.granularity));
    }
}
