//! Energy and power accounting for StepStone PIM executions
//! (paper §V-H, Fig. 14), using the Table II energy components.
//!
//! Two Table II entries are normalized for physical consistency (see
//! DESIGN.md §4): SIMD energy is taken as 11.3 **pJ**/op (nJ would make the
//! SIMD dominate, contradicting §V-H's "the power of DRAM access …
//! dominates the power of the SIMD units"), and the per-access scratchpad
//! energies are ordered smallest-structure-cheapest (BG = 0.03 nJ,
//! DV = 0.1 nJ, CH = 0.3 nJ).

use serde::{Deserialize, Serialize};
use stepstone_addr::PimLevel;
use stepstone_core::{GemmSpec, LatencyReport};
use stepstone_dram::{DramConfig, Port};

/// Table II energy components.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// In-device (near-bank) read/write energy, pJ per bit.
    pub in_device_pj_per_bit: f64,
    /// Off-chip (device I/O or channel) read/write energy, pJ per bit.
    pub off_chip_pj_per_bit: f64,
    /// SIMD MAC energy, pJ per lane-operation.
    pub simd_pj_per_op: f64,
    /// Scratchpad access energy per 64 B block, nJ, per level [CH, DV, BG].
    pub scratch_nj_per_access: [f64; 3],
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self {
            in_device_pj_per_bit: 11.3,
            off_chip_pj_per_bit: 25.7,
            simd_pj_per_op: 11.3,
            scratch_nj_per_access: [0.3, 0.1, 0.03],
        }
    }
}

impl EnergyParams {
    pub fn scratch_nj(&self, level: PimLevel) -> f64 {
        match level {
            PimLevel::Channel => self.scratch_nj_per_access[0],
            PimLevel::Device => self.scratch_nj_per_access[1],
            PimLevel::BankGroup => self.scratch_nj_per_access[2],
        }
    }
}

/// Fig. 14's stack categories, in joules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    pub simd_j: f64,
    pub scratchpad_j: f64,
    /// PIM-side weight/buffer DRAM traffic.
    pub dram_j: f64,
    /// Channel traffic for localization and reduction.
    pub locred_j: f64,
}

impl EnergyReport {
    pub fn total_j(&self) -> f64 {
        self.simd_j + self.scratchpad_j + self.dram_j + self.locred_j
    }

    /// Average power per DRAM device in watts over `cycles` of a command
    /// clock running at `clock_hz` (take it from the simulated
    /// `DramConfig` — presets differ from DDR4-2400's 1.2 GHz).
    pub fn power_per_device_w(&self, cycles: u64, devices: u32, clock_hz: u64) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        self.total_j() * clock_hz as f64 / cycles as f64 / devices as f64
    }

    /// Energy per multiply–accumulate in picojoules.
    pub fn pj_per_op(&self, spec: &GemmSpec) -> f64 {
        self.total_j() * 1e12 / spec.macs() as f64
    }
}

/// Derive the energy breakdown of one simulated GEMM.
pub fn analyze(params: &EnergyParams, report: &LatencyReport, level: PimLevel) -> EnergyReport {
    let bits_of = |blocks: u64| blocks as f64 * 512.0;
    let d = &report.dram;
    let bg = Port::BgInternal.index();
    let rk = Port::RankInternal.index();
    let ch = Port::Channel.index();
    // Near-bank traffic stays in the device; rank-internal traffic crosses
    // the device I/O to the buffer chip; channel traffic is fully off-chip.
    let in_device_bits = bits_of(d.reads_by_port[bg] + d.writes_by_port[bg]);
    let rank_bits = bits_of(d.reads_by_port[rk] + d.writes_by_port[rk]);
    let chan_bits = bits_of(d.reads_by_port[ch] + d.writes_by_port[ch]);
    EnergyReport {
        simd_j: report.activity.simd_ops as f64 * params.simd_pj_per_op * 1e-12,
        scratchpad_j: report.activity.scratchpad_accesses as f64
            * params.scratch_nj(level)
            * 1e-9,
        dram_j: (in_device_bits * params.in_device_pj_per_bit
            + rank_bits * params.off_chip_pj_per_bit)
            * 1e-12,
        locred_j: chan_bits * params.off_chip_pj_per_bit * 1e-12,
    }
}

/// Devices participating in a run (x8 devices across the whole system).
pub fn device_count(cfg: &DramConfig) -> u32 {
    cfg.geom.channels * cfg.geom.ranks_per_channel * 8
}

#[cfg(test)]
mod tests {
    use super::*;
    use stepstone_addr::PimLevel;
    use stepstone_core::{simulate_gemm, SystemConfig};

    fn run(n: usize, level: PimLevel) -> (LatencyReport, EnergyReport) {
        let sys = SystemConfig::default();
        let spec = GemmSpec::new(1024, 4096, n);
        let r = simulate_gemm(&sys, &spec, level);
        let e = analyze(&EnergyParams::default(), &r, level);
        (r, e)
    }

    #[test]
    fn dram_energy_dominates_simd() {
        // §V-H: "overall, the power of DRAM access (either within the PIMs
        // or for localization and reduction) dominates the power of the
        // SIMD units".
        for level in [PimLevel::BankGroup, PimLevel::Device] {
            let (_, e) = run(4, level);
            assert!(e.dram_j + e.locred_j > 5.0 * e.simd_j, "{level:?}: {e:?}");
        }
    }

    #[test]
    fn bg_is_more_efficient_at_small_batch() {
        // §V-H: "StepStone-BG is more energy-efficient than StepStone-DV
        // when N is small. The main source … is that IO energy is much
        // smaller within a device."
        let spec = GemmSpec::new(1024, 4096, 1);
        let (_, ebg) = run(1, PimLevel::BankGroup);
        let (_, edv) = run(1, PimLevel::Device);
        assert!(ebg.pj_per_op(&spec) < edv.pj_per_op(&spec), "{ebg:?} vs {edv:?}");
    }

    #[test]
    fn locred_share_grows_with_batch_for_bg() {
        // §V-H: "as N increases, the energy for localization and reduction
        // dominates" (BG replicates 8×).
        let (_, e1) = run(1, PimLevel::BankGroup);
        let (_, e16) = run(16, PimLevel::BankGroup);
        let share = |e: &EnergyReport| e.locred_j / e.total_j();
        assert!(share(&e16) > share(&e1), "{} vs {}", share(&e16), share(&e1));
    }

    #[test]
    fn bg_energy_advantage_erodes_with_batch() {
        // §V-H: as N increases, localization/reduction energy grows for BG
        // (8× input replication) and erodes its in-device efficiency
        // advantage over DV. In our calibration the ratio falls from ≈2.2×
        // at N=1 toward parity (the paper's crossover) as N grows.
        let sys = SystemConfig::default();
        let ratio = |n: usize| {
            let spec = GemmSpec::new(1024, 4096, n);
            let rbg = simulate_gemm(&sys, &spec, PimLevel::BankGroup);
            let rdv = simulate_gemm(&sys, &spec, PimLevel::Device);
            let ebg = analyze(&EnergyParams::default(), &rbg, PimLevel::BankGroup);
            let edv = analyze(&EnergyParams::default(), &rdv, PimLevel::Device);
            edv.pj_per_op(&spec) / ebg.pj_per_op(&spec)
        };
        let (r1, r16, r32) = (ratio(1), ratio(16), ratio(32));
        assert!(r1 > 1.8, "BG clearly wins at N=1: {r1}");
        assert!(r16 < r1 && r32 < r16, "monotone erosion: {r1} {r16} {r32}");
        assert!(r32 < 1.35, "near parity at N=32: {r32}");
    }

    #[test]
    fn per_op_energy_drops_with_batch() {
        // More reuse per weight bit ⇒ lower pJ/op (Fig. 14 right).
        let (_, e1) = run(1, PimLevel::BankGroup);
        let (_, e16) = run(16, PimLevel::BankGroup);
        assert!(
            e16.pj_per_op(&GemmSpec::new(1024, 4096, 16))
                < e1.pj_per_op(&GemmSpec::new(1024, 4096, 1))
        );
    }

    #[test]
    fn power_per_device_is_plausible() {
        // Fig. 14 left: fractions of a watt up to ≈1.5 W per device.
        let cfg = DramConfig::default();
        let (r, e) = run(16, PimLevel::BankGroup);
        let w = e.power_per_device_w(r.total, device_count(&cfg), cfg.clock_hz);
        assert!(w > 0.01 && w < 5.0, "{w} W");
    }
}

/// Power-capped latency (§V-H: "if power exceeds the delivery/cooling
/// budget for a chip or module, performance can be throttled"): scale the
/// execution time so average per-device power meets `cap_w`.
pub fn throttled_cycles(
    e: &EnergyReport,
    cycles: u64,
    devices: u32,
    clock_hz: u64,
    cap_w: f64,
) -> u64 {
    let p = e.power_per_device_w(cycles, devices, clock_hz);
    if p <= cap_w {
        cycles
    } else {
        (cycles as f64 * p / cap_w).ceil() as u64
    }
}

#[cfg(test)]
mod throttle_tests {
    use super::*;
    use stepstone_addr::PimLevel;
    use stepstone_core::{simulate_gemm, GemmSpec, SystemConfig};

    #[test]
    fn throttling_only_kicks_in_below_the_measured_power() {
        let sys = SystemConfig::default();
        let spec = GemmSpec::new(1024, 4096, 16);
        let r = simulate_gemm(&sys, &spec, PimLevel::BankGroup);
        let e = analyze(&EnergyParams::default(), &r, PimLevel::BankGroup);
        let devs = device_count(&sys.dram);
        let hz = sys.dram.clock_hz;
        let p = e.power_per_device_w(r.total, devs, hz);
        assert_eq!(throttled_cycles(&e, r.total, devs, hz, p * 2.0), r.total);
        let capped = throttled_cycles(&e, r.total, devs, hz, p / 2.0);
        assert!((capped as f64 / r.total as f64 - 2.0).abs() < 0.01);
    }
}
