//! Serving-layer acceptance tests: seeded determinism, serial==parallel
//! sweeps, batching-queue invariants over real cost tables, and the
//! warm-vs-cold session-cache differential.
//!
//! Sweep-shaped tests run on the analytic memory backend so the suite
//! stays fast in debug builds, and they share one precomputed cost table
//! (the only expensive step); cycle-exactness of the warm session layer
//! itself is pinned on the exact backend with a small shape.

use std::sync::OnceLock;
use stepstone_core::{ReduceVia, SystemConfig};
use stepstone_serving::{
    build_cost_table, find_knee, run_serving, sweep_loads, sweep_loads_with_threads, BatchCoster,
    ColdCoster, CostTable, SessionCoster, ServingConfig, TableCoster,
};
use stepstone_dram::BackendKind;
use stepstone_workloads::{OpenLoopArrivals, RequestKind, RequestMix};

fn fast_sys() -> SystemConfig {
    SystemConfig::default().with_backend(BackendKind::Analytic)
}

/// The full (kind, class) analytic cost table, built once for the whole
/// suite. Deterministic, so sharing it cannot couple tests.
fn table() -> &'static CostTable {
    static TABLE: OnceLock<CostTable> = OnceLock::new();
    TABLE.get_or_init(|| build_cost_table(&fast_sys()))
}

#[test]
fn sweep_is_deterministic_and_parallel_matches_serial() {
    let cfg = ServingConfig::for_system(&fast_sys());
    let mix = RequestMix::recommendation_heavy();
    let gaps = [400_000_000.0, 25_000_000.0, 1_562_500.0];
    let serial = sweep_loads(table(), &cfg, 17, mix, 300, &gaps, false);
    let serial2 = sweep_loads(table(), &cfg, 17, mix, 300, &gaps, false);
    let parallel = sweep_loads(table(), &cfg, 17, mix, 300, &gaps, true);
    assert_eq!(serial, serial2, "same seed must reproduce bit-identically");
    assert_eq!(serial, parallel, "parallel sweep must equal serial");
    // Percentiles are real (nonzero) and load ordering is sane: heavier
    // offered load cannot lower p99.
    assert!(serial[0].p99 > 0);
    assert!(serial.last().unwrap().p99 >= serial[0].p99);
}

#[test]
fn different_seeds_give_different_timelines() {
    let cfg = ServingConfig::for_system(&fast_sys());
    let mix = RequestMix::recommendation_heavy();
    let a = sweep_loads(table(), &cfg, 1, mix, 300, &[25_000_000.0], false);
    let b = sweep_loads(table(), &cfg, 2, mix, 300, &[25_000_000.0], false);
    assert_ne!(a[0].records, b[0].records);
}

#[test]
fn queue_invariants_hold_under_real_costs() {
    let cfg = ServingConfig { queue_cap: 10_000, ..ServingConfig::for_system(&fast_sys()) };
    let trace = OpenLoopArrivals::trace(9, RequestMix::uniform(), 150_000.0, 600);
    let r = run_serving(&cfg, &trace, &mut TableCoster::new(table()));
    // No starvation: every admitted request completes.
    assert_eq!(r.served + r.rejected, 600);
    assert_eq!(r.rejected, 0, "cap is far above the offered load");
    // FIFO within each shape class: starts follow arrival order per kind.
    for kind in RequestKind::ALL {
        let mut prev = None;
        for rec in r.records.iter().filter(|x| x.kind == kind) {
            if let Some(p) = prev {
                assert!(rec.start >= p, "{kind:?} start order violated");
            }
            prev = Some(rec.start);
        }
    }
    // Every request's stamps are ordered.
    for rec in &r.records {
        assert!(rec.start >= rec.arrival && rec.done > rec.start, "{rec:?}");
    }
}

#[test]
fn warm_and_cold_costers_are_cycle_exact_equal() {
    // The architectural refactor must not change a single cycle: a serving
    // run priced by the persistent session executor equals one priced by
    // per-batch cold-started executors, record for record. GPT2 is left
    // out of this mix only to keep the cold baseline's debug wall-clock
    // down; per-GEMM session==one-shot equality is pinned in core::flow.
    let sys = fast_sys();
    let cfg = ServingConfig::for_system(&sys);
    let mix = RequestMix { dlrm: 0.8, bert: 0.2, gpt2: 0.0 };
    let trace = OpenLoopArrivals::trace(23, mix, 400_000.0, 40);
    let warm = run_serving(&cfg, &trace, &mut SessionCoster::new(sys.clone()));
    let cold = run_serving(&cfg, &trace, &mut ColdCoster::new(sys));
    assert_eq!(warm, cold);
}

#[test]
fn warm_session_is_exact_on_the_exact_backend_too() {
    // One DLRM class on the cycle-exact tier: the session path and a cold
    // executor agree, and the warm coster's second call is a pure memo hit
    // (no new context builds).
    let sys = SystemConfig::default();
    let mut warm = SessionCoster::new(sys.clone());
    let mut cold = ColdCoster::new(sys);
    let w = warm.cost(RequestKind::Dlrm, 4);
    let c = cold.cost(RequestKind::Dlrm, 4);
    assert_eq!(w, c);
    let builds = warm.executor().session().misses();
    assert_eq!(warm.cost(RequestKind::Dlrm, 4), w);
    assert_eq!(warm.executor().session().misses(), builds);
}

#[test]
fn thousand_request_sweep_finds_the_knee() {
    // The acceptance-scale sweep shape (analytic backend keeps it quick in
    // debug): 1000 mixed requests per load point, load rising past
    // saturation; the knee sits strictly inside the sweep. Gaps are scaled
    // to the measured service times (a GPT2 batch alone is ~3e8 cycles),
    // so the lightest point is genuinely unsaturated.
    let cfg = ServingConfig::for_system(&fast_sys());
    let mix = RequestMix::recommendation_heavy();
    let gaps = [400_000_000.0, 100_000_000.0, 25_000_000.0, 6_250_000.0, 1_562_500.0];
    let sweep = sweep_loads(table(), &cfg, 5, mix, 1000, &gaps, false);
    for (r, gap) in sweep.iter().zip(gaps) {
        assert_eq!(r.served + r.rejected, 1000, "gap {gap}");
        assert!(r.batches > 0);
    }
    // The lightest load is below saturation: nothing rejected, shallow queue.
    assert_eq!(sweep[0].rejected, 0);
    // Load past the knee saturates the servers: rejections appear and p99
    // blows out well past the unloaded baseline.
    let knee = find_knee(&sweep, 3.0);
    assert!(knee < sweep.len() - 1, "sweep never saturated: knee={knee}");
    assert!(sweep.last().unwrap().rejected > 0, "heaviest load never overflowed the queue");
    assert!(sweep.last().unwrap().p99 > sweep[0].p99 * 3);
}

#[test]
fn sweep_is_invariant_to_worker_thread_count() {
    // The per-point re-seeding fix: every load point derives its trace
    // seed purely from (base seed, point index), so which worker runs
    // which point cannot matter. Two same-seed sweeps must produce
    // identical `ServingReport`s at thread counts 1, 2, and 3 — including
    // counts that don't divide the point count, where work-stealing order
    // genuinely differs run to run.
    let cfg = ServingConfig::for_system(&fast_sys());
    let mix = RequestMix::recommendation_heavy();
    let gaps = [400_000_000.0, 25_000_000.0, 6_250_000.0, 1_562_500.0];
    let base = sweep_loads_with_threads(table(), &cfg, 41, mix, 300, &gaps, 1);
    for threads in [2usize, 3, 4] {
        let got = sweep_loads_with_threads(table(), &cfg, 41, mix, 300, &gaps, threads);
        assert_eq!(base, got, "threads={threads} must be bit-identical to serial");
    }
    // Different base seeds still diverge (the point seeds are a pure
    // function of the base seed, not a fixed stream).
    let other = sweep_loads_with_threads(table(), &cfg, 42, mix, 300, &gaps, 1);
    assert_ne!(base, other);
}

#[test]
fn fabric_reduce_serving_is_shift_invariant_and_knee_deterministic() {
    // `ReduceVia::Fabric` at serving scale. Warm-session shift-invariance:
    // the persistent session executor (whose passes start at arbitrary
    // virtual times over long-lived state) prices a fabric-reduce batch
    // identically to a cold start — the fabric schedule has no absolute-
    // time anchors. And the saturation knee of a fabric sweep is
    // deterministic: same seed, same knee, serial == parallel.
    let fsys = SystemConfig::default()
        .with_backend(BackendKind::Analytic)
        .with_reduce_via(ReduceVia::Fabric);
    let ftable = build_cost_table(&fsys);
    let cfg = ServingConfig::for_system(&fsys);
    let mix = RequestMix::recommendation_heavy();
    let gaps = [400_000_000.0, 100_000_000.0, 25_000_000.0, 6_250_000.0, 1_562_500.0];
    let serial = sweep_loads(&ftable, &cfg, 5, mix, 500, &gaps, false);
    let again = sweep_loads(&ftable, &cfg, 5, mix, 500, &gaps, false);
    let parallel = sweep_loads(&ftable, &cfg, 5, mix, 500, &gaps, true);
    assert_eq!(serial, again, "fabric sweep must reproduce bit-identically");
    assert_eq!(serial, parallel, "fabric sweep parallel == serial");
    assert_eq!(
        find_knee(&serial, 3.0),
        find_knee(&parallel, 3.0),
        "knee index must be deterministic under fabric reduce"
    );
    // Warm == cold under fabric: the session layer's time-shifted passes
    // change nothing.
    let mix2 = RequestMix { dlrm: 0.8, bert: 0.2, gpt2: 0.0 };
    let trace = OpenLoopArrivals::trace(23, mix2, 400_000.0, 40);
    let warm = run_serving(&cfg, &trace, &mut SessionCoster::new(fsys.clone()));
    let cold = run_serving(&cfg, &trace, &mut ColdCoster::new(fsys.clone()));
    assert_eq!(warm, cold, "fabric warm session must stay cycle-exact");
    // Fabric reduce strictly reorders nothing for free: a fabric-priced
    // class can never be cheaper than its host-DMA counterpart (the local
    // drain is identical and the fabric transit is additive).
    let host_table = table();
    for (key, fcost) in &ftable {
        let hcost = host_table.get(key).expect("same class set");
        assert!(
            fcost.pim_cycles >= hcost.pim_cycles,
            "{key:?}: fabric {} < host-dma {}",
            fcost.pim_cycles,
            hcost.pim_cycles
        );
    }
}
