//! The continuous serving simulator: a persistent request-serving
//! architecture over the StepStone PIM simulation stack.
//!
//! Every entry point below this crate simulates one GEMM or one model pass;
//! this crate closes the loop the paper's headline claim is actually about
//! — Table-I recommendation/language-model layers under sustained traffic:
//!
//! * [`server`] — the virtual-time event loop: open-loop arrivals feed an
//!   admission + dynamic-batching queue, batches route through the PIM/CPU
//!   crossover, and every request is completion-stamped.
//! * [`metrics`] — per-request records folded into p50/p95/p99 latency,
//!   queue depth, and channel utilization.
//! * [`sweep`] — offered-load sweeps (serial or `rayon::scope`-parallel)
//!   and the saturation-knee finder; plus the warm-session vs per-request
//!   cold-start costers whose differential `bench_sim` commits.
//! * [`tenant`] — colocated CPU tenants over *persistent* DRAM timing
//!   state, via the resident engine entry point
//!   (`simulate_pow2_gemm_resident`) and `TrafficCursor::drain_until`.
//!
//! Methodology notes live in `docs/serving.md`.

pub mod metrics;
pub mod server;
pub mod sweep;
pub mod tenant;

pub use metrics::{percentile, RequestRecord, ServingReport};
pub use server::{max_batch_samples, run_serving, BatchCoster, ServingConfig};
pub use sweep::{
    build_cost_table, classes, find_knee, sweep_loads, sweep_loads_with_threads, ColdCoster,
    CostTable, SessionCoster, TableCoster,
};
pub use tenant::TenantServer;
