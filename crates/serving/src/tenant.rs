//! Colocated CPU tenants over persistent memory-system state.
//!
//! The sweep costers price batches from isolated per-request simulations
//! (valid because default timing is shift-invariant). This module is the
//! other serving mode the paper's §V-G colocation study needs: one DRAM
//! system carries *both* the PIM request stream and a continuous CPU
//! tenant, so timing state (open rows, bus turnarounds, FR-FCFS queues)
//! genuinely persists across back-to-back requests. Built directly on the
//! resident engine entry point (`simulate_pow2_gemm_resident`) and
//! `TrafficCursor::drain_until`.

use std::sync::Arc;
use stepstone_core::{
    simulate_pow2_gemm_resident, ExecMode, GemmContext, GemmSpec, LatencyReport, SessionCache,
    SimOptions, SystemConfig, TrafficCursor,
};
use stepstone_dram::{CommandBus, TimingState};
use stepstone_workloads::SyntheticTraffic;

/// A long-running PIM serving endpoint sharing its DRAM with a synthetic
/// CPU tenant (the SPEC-like mix of `workloads::traffic`). The GEMM shape
/// is fixed per endpoint (one endpoint per served layer shape); its
/// context comes from the shared session cache.
pub struct TenantServer {
    sys: SystemConfig,
    opts: SimOptions,
    ctx: Arc<GemmContext>,
    ts: TimingState,
    bus: CommandBus,
    traffic: SyntheticTraffic,
    /// Completion time of the last served request (virtual cycles).
    pub ready: u64,
    /// CPU-tenant requests interleaved so far.
    pub tenant_served: u64,
    /// Summed CPU-tenant queueing delay (cycles lost to PIM contention).
    pub tenant_queueing: u64,
}

impl TenantServer {
    /// `spec` must be power-of-two (endpoints serve fixed layer shapes).
    pub fn new(
        sys: SystemConfig,
        spec: GemmSpec,
        opts: SimOptions,
        cache: &SessionCache,
        traffic_seed: u64,
        traffic_requests: u64,
    ) -> Self {
        let ctx = cache.context(&sys, &spec, &opts);
        let ts = TimingState::new(sys.dram);
        let bus = CommandBus::new(sys.dram.geom.channels as usize);
        Self {
            sys,
            opts,
            ctx,
            ts,
            bus,
            traffic: SyntheticTraffic::spec_mix(traffic_seed, traffic_requests),
            ready: 0,
            tenant_served: 0,
            tenant_queueing: 0,
        }
    }

    /// Serve one request arriving at `t`: let the tenant run alone over
    /// the idle gap, then execute the GEMM pass with tenant traffic
    /// interleaved, all over the same persistent timing state. Returns the
    /// per-request report (cycles relative to the pass start).
    pub fn serve_at(&mut self, t: u64) -> LatencyReport {
        let start = t.max(self.ready);
        let mut tc = TrafficCursor::new(&mut self.traffic, self.ready);
        tc.drain_until(&mut self.ts, &mut self.bus, &self.ctx.mapping, start);
        let mut report = simulate_pow2_gemm_resident(
            &mut self.ts,
            &mut self.bus,
            &self.sys,
            &self.opts,
            Some(&mut tc),
            ExecMode::Streaming,
            &self.ctx,
            start,
        );
        report.clock_hz = self.sys.dram.clock_hz;
        self.ready = start + report.total;
        self.tenant_served += tc.served;
        self.tenant_queueing += tc.queueing_cycles;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stepstone_addr::PimLevel;

    #[test]
    fn tenant_server_advances_and_interleaves() {
        let sys = SystemConfig::default();
        let cache = SessionCache::new();
        let mut srv = TenantServer::new(
            sys,
            GemmSpec::new(256, 1024, 2),
            SimOptions::stepstone(PimLevel::BankGroup),
            &cache,
            42,
            50_000,
        );
        let mut last_ready = 0;
        for i in 0..3 {
            let r = srv.serve_at(last_ready + 1000);
            assert!(r.total > 0, "pass {i}");
            assert!(srv.ready > last_ready, "pass {i}");
            last_ready = srv.ready;
        }
        assert!(srv.tenant_served > 0, "tenant never ran");
        // Cache shared the single context across the server's passes.
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn tenant_contention_slows_the_pim_pass() {
        let sys = SystemConfig::default();
        let cache = SessionCache::new();
        let spec = GemmSpec::new(256, 1024, 2);
        let opts = SimOptions::stepstone(PimLevel::BankGroup);
        let alone = stepstone_core::simulate_gemm_session(&sys, &spec, &opts, &cache, None);
        let mut srv = TenantServer::new(sys, spec, opts, &cache, 7, 1_000_000);
        let shared = srv.serve_at(0);
        assert!(
            shared.total >= alone.total,
            "shared={} alone={}",
            shared.total,
            alone.total
        );
    }
}
