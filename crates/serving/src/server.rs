//! The serving event loop: virtual-time admission, dynamic batching, and
//! the PIM/CPU crossover as two servers.
//!
//! The loop is open-loop and deterministic: arrivals come from a seeded
//! trace (`workloads::serving::OpenLoopArrivals`), time advances only to
//! the next event (arrival or server completion), and every decision is a
//! pure function of queue state — so one seed yields one request timeline,
//! bit-for-bit, whichever host thread runs it.
//!
//! Batching: requests queue FIFO per model kind; a dispatch drains the
//! longest-waiting kind's head run of requests whose summed samples fit
//! the kind's batch cap, rounds the batch up to its power-of-two class,
//! and prices the whole pass through a [`BatchCoster`]. The coster applies
//! §III-E's `choose_backend` per GEMM; the pass's dominant side picks
//! which server (PIM or CPU) the batch occupies.

use std::collections::VecDeque;
use stepstone_models::PassCost;
use stepstone_workloads::{Request, RequestKind};

use crate::metrics::{RequestRecord, ServingReport};

/// Prices one batch: a model pass of `class` samples of `kind`. The class
/// is always a power of two, so costers can memoize a tiny table.
pub trait BatchCoster {
    fn cost(&mut self, kind: RequestKind, class: usize) -> PassCost;
}

/// Largest summed sample count one batch of this kind may carry, keeping
/// the batched GEMM N within the Table-I range the simulator is calibrated
/// for (BERT multiplies samples by its 8-token sequence).
pub fn max_batch_samples(kind: RequestKind) -> usize {
    match kind {
        RequestKind::Dlrm => 256,
        RequestKind::Bert => 4,
        RequestKind::Gpt2 => 32,
    }
}

/// Serving-loop knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServingConfig {
    /// Most requests one batch may merge.
    pub max_batch_requests: usize,
    /// Admission bound: arrivals beyond this queue depth are rejected.
    pub queue_cap: usize,
    /// Channel count of the simulated system (utilization denominator).
    pub channels: u64,
}

impl Default for ServingConfig {
    fn default() -> Self {
        Self { max_batch_requests: 8, queue_cap: 64, channels: 4 }
    }
}

impl ServingConfig {
    pub fn for_system(sys: &stepstone_core::SystemConfig) -> Self {
        Self { channels: sys.dram.geom.channels as u64, ..Self::default() }
    }
}

fn kix(kind: RequestKind) -> usize {
    RequestKind::ALL.iter().position(|&k| k == kind).expect("known kind")
}

/// Run the serving loop over an arrival-sorted request trace. Returns the
/// folded report (per-request records included).
pub fn run_serving(
    cfg: &ServingConfig,
    requests: &[Request],
    coster: &mut dyn BatchCoster,
) -> ServingReport {
    let mut queues: [VecDeque<Request>; 3] = Default::default();
    let mut records: Vec<RequestRecord> = Vec::with_capacity(requests.len());
    let mut ai = 0usize;
    let mut t = 0u64;
    let (mut pim_free, mut cpu_free) = (0u64, 0u64);
    let mut rejected = 0u64;
    let (mut depth_time, mut max_depth) = (0u128, 0u64);
    let (mut batches, mut pim_batches) = (0u64, 0u64);
    let mut data_cycles = 0u64;

    loop {
        // Admission: accept every arrival at or before now, or reject when
        // the queue is at capacity (open loop — the generator never slows).
        while ai < requests.len() && requests[ai].arrival <= t {
            let depth: usize = queues.iter().map(|q| q.len()).sum();
            if depth >= cfg.queue_cap {
                rejected += 1;
            } else {
                queues[kix(requests[ai].kind)].push_back(requests[ai]);
            }
            ai += 1;
        }

        // Dispatch: while a server is idle, batch the longest-waiting kind
        // whose routed server is free. Oldest head-of-line first prevents
        // starvation; per-kind FIFO pops preserve arrival order in class.
        loop {
            let mut kinds: Vec<usize> = (0..3).filter(|&k| !queues[k].is_empty()).collect();
            if kinds.is_empty() {
                break;
            }
            kinds.sort_by_key(|&k| queues[k].front().expect("non-empty").arrival);
            let mut dispatched = false;
            for &k in &kinds {
                let kind = RequestKind::ALL[k];
                let cap = max_batch_samples(kind);
                let (mut take, mut samples) = (0usize, 0usize);
                for r in queues[k].iter() {
                    if take >= cfg.max_batch_requests || samples + r.samples > cap {
                        break;
                    }
                    samples += r.samples;
                    take += 1;
                }
                assert!(take > 0, "a lone request always fits its kind cap");
                let class = samples.next_power_of_two().min(cap);
                let cost = coster.cost(kind, class);
                let to_pim = cost.pim_cycles >= cost.cpu_cycles;
                let free = if to_pim { &mut pim_free } else { &mut cpu_free };
                if *free > t {
                    continue; // routed server busy; try the next kind
                }
                let done = t + cost.total();
                *free = done;
                for _ in 0..take {
                    let r = queues[k].pop_front().expect("counted above");
                    records.push(RequestRecord {
                        id: r.id,
                        kind: r.kind,
                        samples: r.samples,
                        arrival: r.arrival,
                        start: t,
                        done,
                        pim: to_pim,
                    });
                }
                batches += 1;
                pim_batches += u64::from(to_pim);
                data_cycles += cost.data_cycles;
                dispatched = true;
                break;
            }
            if !dispatched {
                break;
            }
        }

        // Advance virtual time to the next event: the next arrival, or —
        // if work is still queued — the earliest server completion.
        let queued: u64 = queues.iter().map(|q| q.len() as u64).sum();
        let mut next = u64::MAX;
        if ai < requests.len() {
            next = next.min(requests[ai].arrival);
        }
        if queued > 0 {
            if pim_free > t {
                next = next.min(pim_free);
            }
            if cpu_free > t {
                next = next.min(cpu_free);
            }
        }
        if next == u64::MAX {
            break;
        }
        depth_time += queued as u128 * (next - t) as u128;
        max_depth = max_depth.max(queued);
        t = next;
    }

    ServingReport::fold(
        records,
        rejected,
        depth_time,
        max_depth,
        data_cycles,
        cfg.channels,
        batches,
        pim_batches,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fixed-price coster for loop-mechanics tests.
    struct FlatCoster {
        pim: u64,
        cpu: u64,
    }

    impl BatchCoster for FlatCoster {
        fn cost(&mut self, _kind: RequestKind, class: usize) -> PassCost {
            PassCost {
                pim_cycles: self.pim * class as u64,
                cpu_cycles: self.cpu,
                data_cycles: 10,
                pim_gemms: 1,
                cpu_gemms: 0,
            }
        }
    }

    fn req(id: u64, kind: RequestKind, samples: usize, arrival: u64) -> Request {
        Request { id, kind, samples, arrival }
    }

    #[test]
    fn idle_system_serves_at_arrival() {
        let reqs =
            vec![req(0, RequestKind::Dlrm, 2, 100), req(1, RequestKind::Dlrm, 2, 100_000)];
        let r = run_serving(
            &ServingConfig::default(),
            &reqs,
            &mut FlatCoster { pim: 50, cpu: 1 },
        );
        assert_eq!(r.served, 2);
        assert_eq!(r.rejected, 0);
        // No queueing: each request starts the moment it arrives.
        for rec in &r.records {
            assert_eq!(rec.start, rec.arrival);
        }
    }

    #[test]
    fn back_to_back_requests_batch_together() {
        // Four same-kind requests arrive while the server is busy with the
        // first; the remaining three coalesce into one batch.
        let reqs: Vec<Request> =
            (0..4).map(|i| req(i, RequestKind::Dlrm, 2, 10 + i)).collect();
        let r = run_serving(
            &ServingConfig::default(),
            &reqs,
            &mut FlatCoster { pim: 1000, cpu: 1 },
        );
        assert_eq!(r.served, 4);
        assert_eq!(r.batches, 2, "{r:?}");
        let b2: Vec<_> = r.records.iter().filter(|x| x.id > 0).collect();
        assert!(b2.iter().all(|x| x.start == b2[0].start && x.done == b2[0].done));
    }

    #[test]
    fn queue_cap_rejects_excess_arrivals() {
        // Everything arrives at once into a tiny queue behind a slow server.
        let reqs: Vec<Request> =
            (0..50).map(|i| req(i, RequestKind::Dlrm, 1, 5)).collect();
        let cfg = ServingConfig { queue_cap: 4, max_batch_requests: 1, ..Default::default() };
        let r = run_serving(&cfg, &reqs, &mut FlatCoster { pim: 10_000, cpu: 1 });
        assert_eq!(r.served + r.rejected, 50);
        assert!(r.rejected >= 45, "{}", r.rejected);
        assert!(r.max_queue_depth <= 4);
    }

    #[test]
    fn fifo_within_kind_and_no_starvation_across_kinds() {
        // A steady DLRM flood plus rare BERT requests: BERT must still be
        // served, and each kind's starts must follow its arrival order.
        let mut reqs = Vec::new();
        for i in 0..60u64 {
            reqs.push(req(i, RequestKind::Dlrm, 1, i * 10));
        }
        reqs.push(req(60, RequestKind::Bert, 1, 95));
        reqs.push(req(61, RequestKind::Bert, 1, 305));
        reqs.sort_by_key(|r| r.arrival);
        let reqs: Vec<Request> = reqs
            .into_iter()
            .enumerate()
            .map(|(i, mut r)| {
                r.id = i as u64;
                r
            })
            .collect();
        let cfg = ServingConfig { queue_cap: 1024, ..Default::default() };
        let r = run_serving(&cfg, &reqs, &mut FlatCoster { pim: 500, cpu: 1 });
        assert_eq!(r.served, 62, "all requests served: {}", r.served);
        for kind in RequestKind::ALL {
            let starts: Vec<(u64, u64)> = r
                .records
                .iter()
                .filter(|x| x.kind == kind)
                .map(|x| (x.id, x.start))
                .collect();
            for w in starts.windows(2) {
                assert!(w[1].1 >= w[0].1, "{kind:?}: {w:?}");
            }
        }
    }

    #[test]
    fn cpu_routed_batches_occupy_the_cpu_server() {
        // cpu dominates cost ⇒ batches route CPU-side and the PIM server
        // stays free for overlap.
        let reqs: Vec<Request> =
            (0..4).map(|i| req(i, RequestKind::Gpt2, 1, i)).collect();
        let r = run_serving(
            &ServingConfig::default(),
            &reqs,
            &mut FlatCoster { pim: 0, cpu: 100 },
        );
        assert_eq!(r.pim_batches, 0);
        assert_eq!(r.cpu_batches, r.batches);
    }
}
