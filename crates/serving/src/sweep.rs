//! Offered-load sweeps and batch costers.
//!
//! The serving loop prices batches by (kind, power-of-two class), so the
//! whole pricing surface is a small finite table (9 DLRM + 3 BERT + 6 GPT2
//! classes). Three costers cover the architecture comparison `bench_sim`
//! commits:
//!
//! * [`SessionCoster`] — a persistent `ModelExecutor` over one shared
//!   `SessionCache`: the warm serving architecture (contexts, span
//!   programs, KeyRuns built once per shape, then reused).
//! * [`ColdCoster`] — a fresh executor per batch: the pre-refactor
//!   cold-start pipeline, kept as the measured baseline.
//! * [`TableCoster`] — an immutable precomputed table, `Sync`, for
//!   load sweeps that fan out across threads.
//!
//! Both live costers produce identical `PassCost`s (the session layer is
//! cycle-exact); they differ only in wall-clock — the differential
//! `bench-smoke` gates.

use rustc_hash::FxHashMap;
use std::sync::Mutex;
use stepstone_core::SystemConfig;
use stepstone_models::{ModelExecutor, PassCost};
use stepstone_workloads::{OpenLoopArrivals, RequestKind, RequestMix};

use crate::metrics::ServingReport;
use crate::server::{max_batch_samples, run_serving, BatchCoster, ServingConfig};

/// The model graph a (kind, class) batch executes.
fn graph_for(kind: RequestKind, class: usize) -> stepstone_models::ModelGraph {
    match kind {
        RequestKind::Dlrm => stepstone_models::dlrm(class),
        RequestKind::Bert => stepstone_models::bert(class),
        RequestKind::Gpt2 => stepstone_models::gpt2(class),
    }
}

/// Power-of-two batch classes of a kind, up to its batch cap.
pub fn classes(kind: RequestKind) -> Vec<usize> {
    let mut c = Vec::new();
    let mut s = 1usize;
    while s <= max_batch_samples(kind) {
        c.push(s);
        s *= 2;
    }
    c
}

/// Warm-architecture coster: one long-lived executor, every distinct shape
/// simulated once, every later batch priced from memo tables.
pub struct SessionCoster {
    ex: ModelExecutor,
    memo: FxHashMap<(RequestKind, usize), PassCost>,
}

impl SessionCoster {
    pub fn new(sys: SystemConfig) -> Self {
        Self { ex: ModelExecutor::new(sys), memo: FxHashMap::default() }
    }

    pub fn executor(&self) -> &ModelExecutor {
        &self.ex
    }
}

impl BatchCoster for SessionCoster {
    fn cost(&mut self, kind: RequestKind, class: usize) -> PassCost {
        if let Some(&hit) = self.memo.get(&(kind, class)) {
            return hit;
        }
        let cost = self.ex.pass_cost(&graph_for(kind, class));
        self.memo.insert((kind, class), cost);
        cost
    }
}

/// Cold-start baseline: every batch rebuilds the executor (and with it
/// every context, span program, and KeyRuns table) from scratch — the
/// pre-refactor per-request pipeline.
pub struct ColdCoster {
    sys: SystemConfig,
}

impl ColdCoster {
    pub fn new(sys: SystemConfig) -> Self {
        Self { sys }
    }
}

impl BatchCoster for ColdCoster {
    fn cost(&mut self, kind: RequestKind, class: usize) -> PassCost {
        ModelExecutor::new(self.sys.clone()).pass_cost(&graph_for(kind, class))
    }
}

/// The full (kind, class) → cost table.
pub type CostTable = FxHashMap<(RequestKind, usize), PassCost>;

/// Precompute every batch class's pass cost (warm executor). This is the
/// expensive step of a sweep; the event loops themselves are arithmetic.
pub fn build_cost_table(sys: &SystemConfig) -> CostTable {
    let mut coster = SessionCoster::new(sys.clone());
    let mut table = CostTable::default();
    for kind in RequestKind::ALL {
        for class in classes(kind) {
            table.insert((kind, class), coster.cost(kind, class));
        }
    }
    table
}

/// Immutable table-backed coster (`&` shared across sweep threads).
pub struct TableCoster<'a> {
    table: &'a CostTable,
}

impl<'a> TableCoster<'a> {
    pub fn new(table: &'a CostTable) -> Self {
        Self { table }
    }
}

impl BatchCoster for TableCoster<'_> {
    fn cost(&mut self, kind: RequestKind, class: usize) -> PassCost {
        *self.table.get(&(kind, class)).unwrap_or_else(|| panic!("{kind:?} class {class} not in table"))
    }
}

/// Derive load point `i`'s trace seed from the sweep's base seed — a
/// SplitMix64 finalizer over (seed, index). The old `seed + i` scheme let
/// adjacent base seeds alias trace streams (seed 5's point 1 was seed 6's
/// point 0); the mix makes every (seed, i) pair an independent stream while
/// staying a pure function of the base seed, so same-seed sweeps are
/// reproducible point by point.
fn point_seed(seed: u64, i: usize) -> u64 {
    let mut z = seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Sweep offered loads (mean inter-arrival gaps, in cycles): one serving
/// run per gap, each over its own deterministic seeded trace
/// (`point_seed` re-seeds each point from the base seed). With
/// `parallel`, points fan out via the vendored `rayon::scope`; results are
/// bit-identical to the serial order because each point is independent and
/// slotted by index.
pub fn sweep_loads(
    table: &CostTable,
    cfg: &ServingConfig,
    seed: u64,
    mix: RequestMix,
    requests: u64,
    mean_gaps: &[f64],
    parallel: bool,
) -> Vec<ServingReport> {
    let threads = if parallel { mean_gaps.len() } else { 1 };
    sweep_loads_with_threads(table, cfg, seed, mix, requests, mean_gaps, threads)
}

/// [`sweep_loads`] with an explicit worker count. Load points are claimed
/// from a shared index counter by `threads` workers, so any worker may run
/// any point — the per-point re-seeding is what guarantees two same-seed
/// sweeps produce identical `ServingReport`s whatever the thread count.
#[allow(clippy::too_many_arguments)]
pub fn sweep_loads_with_threads(
    table: &CostTable,
    cfg: &ServingConfig,
    seed: u64,
    mix: RequestMix,
    requests: u64,
    mean_gaps: &[f64],
    threads: usize,
) -> Vec<ServingReport> {
    let run_point = |i: usize| {
        let trace = OpenLoopArrivals::trace(point_seed(seed, i), mix, mean_gaps[i], requests);
        run_serving(cfg, &trace, &mut TableCoster::new(table))
    };
    let threads = threads.clamp(1, mean_gaps.len().max(1));
    if threads == 1 {
        return (0..mean_gaps.len()).map(run_point).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<ServingReport>>> =
        (0..mean_gaps.len()).map(|_| Mutex::new(None)).collect();
    rayon::scope(|s| {
        for _ in 0..threads {
            let (next, slots, run_point) = (&next, &slots, &run_point);
            s.spawn(move |_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                if i >= slots.len() {
                    break;
                }
                *slots[i].lock().unwrap() = Some(run_point(i));
            });
        }
    });
    slots.into_iter().map(|m| m.into_inner().unwrap().expect("point ran")).collect()
}

/// Find the saturation knee in a sweep ordered by *increasing* offered
/// load: the last point (prefix-wise) whose p99 stays within `factor` of
/// the lightest load's p99. Returns its index.
pub fn find_knee(reports: &[ServingReport], factor: f64) -> usize {
    assert!(!reports.is_empty());
    let base = reports[0].p99.max(1) as f64;
    let mut knee = 0;
    for (i, r) in reports.iter().enumerate() {
        if r.p99 as f64 <= base * factor && r.rejected == 0 {
            knee = i;
        } else {
            break;
        }
    }
    knee
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_pow2_up_to_cap() {
        assert_eq!(classes(RequestKind::Bert), vec![1, 2, 4]);
        assert_eq!(classes(RequestKind::Gpt2), vec![1, 2, 4, 8, 16, 32]);
        assert_eq!(classes(RequestKind::Dlrm).len(), 9);
    }

    #[test]
    fn knee_is_last_point_within_factor() {
        let mk = |p99: u64, rejected: u64| ServingReport {
            p99,
            rejected,
            ..Default::default()
        };
        let sweep = vec![mk(100, 0), mk(120, 0), mk(180, 0), mk(900, 0), mk(5000, 40)];
        assert_eq!(find_knee(&sweep, 2.0), 2);
        assert_eq!(find_knee(&sweep, 10.0), 3);
        assert_eq!(find_knee(&sweep, 1.0), 0);
    }
}
