//! Per-request completion records and the latency/queue/utilization
//! metrics folded from them.

use serde::{Deserialize, Serialize};
use stepstone_workloads::RequestKind;

/// One served request's lifecycle stamps (all in virtual DRAM cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestRecord {
    pub id: u64,
    pub kind: RequestKind,
    pub samples: usize,
    pub arrival: u64,
    /// Batch dispatch time (admission + queueing ends here).
    pub start: u64,
    /// Batch completion time; `done - arrival` is the request's latency.
    pub done: u64,
    /// Whether the batch routed to the PIM side of the crossover.
    pub pim: bool,
}

impl RequestRecord {
    pub fn latency(&self) -> u64 {
        self.done - self.arrival
    }

    pub fn queueing(&self) -> u64 {
        self.start - self.arrival
    }
}

/// Nearest-rank percentile over an ascending-sorted slice (`p` in 0..=100).
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The folded outcome of one serving run at one offered load.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServingReport {
    /// Requests offered per million cycles (arrival-process rate).
    pub offered_per_mcycle: f64,
    pub served: u64,
    /// Requests dropped at admission (queue full).
    pub rejected: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
    pub mean_latency: f64,
    pub max_latency: u64,
    /// Time-weighted mean of the admission-queue depth.
    pub mean_queue_depth: f64,
    pub max_queue_depth: u64,
    /// Data-bus busy fraction across all channels over the makespan.
    pub channel_utilization: f64,
    /// First arrival to last completion, in cycles.
    pub makespan: u64,
    pub batches: u64,
    pub mean_batch_requests: f64,
    pub pim_batches: u64,
    pub cpu_batches: u64,
    pub records: Vec<RequestRecord>,
}

impl ServingReport {
    /// Fold completion records (any order) into the summary metrics.
    /// `depth_time` is the time integral of queue depth over the run.
    #[allow(clippy::too_many_arguments)]
    pub fn fold(
        mut records: Vec<RequestRecord>,
        rejected: u64,
        depth_time: u128,
        max_queue_depth: u64,
        data_cycles: u64,
        channels: u64,
        batches: u64,
        pim_batches: u64,
    ) -> Self {
        records.sort_by_key(|r| r.id);
        let mut lat: Vec<u64> = records.iter().map(|r| r.latency()).collect();
        lat.sort_unstable();
        let served = records.len() as u64;
        let first = records.iter().map(|r| r.arrival).min().unwrap_or(0);
        let last = records.iter().map(|r| r.done).max().unwrap_or(0);
        let makespan = last.saturating_sub(first);
        let offered_span = records.iter().map(|r| r.arrival).max().unwrap_or(0);
        Self {
            offered_per_mcycle: if offered_span == 0 {
                0.0
            } else {
                (served + rejected) as f64 * 1e6 / offered_span as f64
            },
            served,
            rejected,
            p50: percentile(&lat, 50.0),
            p95: percentile(&lat, 95.0),
            p99: percentile(&lat, 99.0),
            mean_latency: if lat.is_empty() {
                0.0
            } else {
                lat.iter().sum::<u64>() as f64 / lat.len() as f64
            },
            max_latency: lat.last().copied().unwrap_or(0),
            mean_queue_depth: if makespan == 0 {
                0.0
            } else {
                depth_time as f64 / makespan as f64
            },
            max_queue_depth,
            channel_utilization: if makespan == 0 {
                0.0
            } else {
                data_cycles as f64 / (makespan * channels.max(1)) as f64
            },
            makespan,
            batches,
            mean_batch_requests: if batches == 0 { 0.0 } else { served as f64 / batches as f64 },
            pim_batches,
            cpu_batches: batches - pim_batches,
            records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 95.0), 95);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 100.0), 100);
        assert_eq!(percentile(&[7], 99.0), 7);
        assert_eq!(percentile(&[], 50.0), 0);
    }

    #[test]
    fn fold_computes_latency_stats() {
        let rec = |id, arrival, start, done| RequestRecord {
            id,
            kind: RequestKind::Dlrm,
            samples: 1,
            arrival,
            start,
            done,
            pim: true,
        };
        let r = ServingReport::fold(
            vec![rec(0, 0, 0, 10), rec(1, 5, 10, 30), rec(2, 20, 30, 40)],
            1,
            40,
            2,
            80,
            4,
            3,
            2,
        );
        assert_eq!(r.served, 3);
        assert_eq!(r.rejected, 1);
        assert_eq!(r.max_latency, 25);
        assert_eq!(r.p99, 25);
        assert_eq!(r.makespan, 40);
        assert!((r.mean_queue_depth - 1.0).abs() < 1e-9);
        assert!((r.channel_utilization - 0.5).abs() < 1e-9);
        assert_eq!(r.cpu_batches, 1);
    }
}
