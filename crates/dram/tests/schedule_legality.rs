//! Property test: arbitrary interleavings of reads/writes on arbitrary ports
//! must never produce a command schedule that violates a Table II timing
//! constraint. The auditor re-derives legality independently of the
//! simulator's constraint registers.

use proptest::prelude::*;
use stepstone_dram::{CasKind, DramConfig, Port, TimingState};
use stepstone_addr::{mapping_by_id, MappingId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_streams_produce_legal_schedules(
        blocks in proptest::collection::vec((0u64..(1 << 14), any::<bool>(), 0usize..3), 1..200),
        mapping_ix in 0usize..5,
    ) {
        let mapping = mapping_by_id(MappingId::from_index(mapping_ix));
        let mut ts = TimingState::new(DramConfig::default());
        ts.enable_trace();
        let mut now = 0u64;
        for (blk, write, port_ix) in blocks {
            let coord = mapping.decode(blk << 6);
            let kind = if write { CasKind::Write } else { CasKind::Read };
            let port = Port::ALL[port_ix];
            let bt = ts.access(coord, kind, port, now);
            prop_assert!(bt.cas_at >= now);
            prop_assert!(bt.data_end > bt.data_start);
            // Keep issue order roughly time-sorted, as the engine does.
            now = bt.cas_at.saturating_sub(8);
        }
        let cfg = *ts.config();
        let trace = ts.take_trace().expect("tracing enabled");
        let violations = trace.validate(&cfg.geom, &cfg.timing);
        prop_assert!(violations.is_empty(), "violations: {:?}", &violations[..violations.len().min(5)]);
    }

    #[test]
    fn sequential_stream_is_legal_and_fast(start in 0u64..(1 << 10)) {
        // A sequential stream through the Skylake mapping must sustain close
        // to peak bandwidth (one block per tCCDS on the channel, two
        // channels interleaved) once warmed up.
        let mapping = mapping_by_id(MappingId::Skylake);
        let mut ts = TimingState::new(DramConfig::default());
        ts.enable_trace();
        let n = 512u64;
        let mut last_end = 0;
        for b in 0..n {
            let coord = mapping.decode((start + b) << 6);
            let bt = ts.access(coord, CasKind::Read, Port::Channel, 0);
            last_end = last_end.max(bt.data_end);
        }
        let cfg = *ts.config();
        let trace = ts.take_trace().unwrap();
        prop_assert!(trace.validate(&cfg.geom, &cfg.timing).is_empty());
        // Two channels × 1 block / tBL ⇒ ≥ n/2 × tBL cycles, ≤ 2× that after
        // warmup.
        let ideal = n / 2 * cfg.timing.t_bl;
        prop_assert!(last_end >= ideal);
        prop_assert!(last_end <= 2 * ideal + 200, "{last_end} vs ideal {ideal}");
    }
}
