//! The span fast path must be invisible: `access_run(len)` (and the
//! callback-driven `access_run_with`) must produce exactly the
//! `BlockTiming` sequence, `DramStats`, and command trace of `len`
//! independent `access` calls over the same coordinates — including runs
//! that straddle row ends and refresh deadlines, every port, both CAS
//! directions, and arbitrary not-before pressure.

use proptest::prelude::*;
use stepstone_addr::DramCoord;
use stepstone_dram::{CasKind, DramConfig, Port, TimingState};

fn coord(rank: u32, bg: u32, bank: u32, row: u32, col: u32) -> DramCoord {
    DramCoord { channel: 0, rank, bankgroup: bg, bank, row, col }
}

/// The per-block reference: `len` single `access` calls over the same
/// col-incrementing (row-wrapping) coordinate sequence `access_run` uses.
fn reference_run(
    ts: &mut TimingState,
    mut c: DramCoord,
    kind: CasKind,
    port: Port,
    not_before: u64,
    len: u64,
) -> Vec<stepstone_dram::BlockTiming> {
    let g = ts.config().geom;
    let mut out = Vec::with_capacity(len as usize);
    for _ in 0..len {
        out.push(ts.access(c, kind, port, not_before));
        c.col += 1;
        if c.col >= g.blocks_per_row {
            c.col = 0;
            c.row = (c.row + 1) % g.rows_per_bank;
        }
    }
    out
}

#[derive(Debug, Clone, Copy)]
struct RunSpec {
    rank: u32,
    bg: u32,
    bank: u32,
    row: u32,
    col: u32,
    write: bool,
    port: u8,
    not_before: u64,
    len: u64,
}

fn run_spec() -> impl Strategy<Value = RunSpec> {
    (
        (0u32..2, 0u32..4, 0u32..4, 0u32..64),
        0u32..128,
        any::<bool>(),
        0u8..3,
        0u64..4000,
        1u64..200,
    )
        .prop_map(|((rank, bg, bank, row), col, write, port, not_before, len)| RunSpec {
            rank,
            bg,
            bank,
            row,
            col,
            write,
            port,
            not_before,
            len,
        })
}

fn port_of(ix: u8) -> Port {
    Port::ALL[ix as usize % 3]
}

fn apply_runs(cfg: DramConfig, specs: &[RunSpec], trace: bool, fast: bool) -> TimingState {
    let mut ts = TimingState::new(cfg);
    if trace {
        ts.enable_trace();
    }
    for s in specs {
        let c = coord(s.rank, s.bg, s.bank, s.row, s.col);
        let kind = if s.write { CasKind::Write } else { CasKind::Read };
        let port = port_of(s.port);
        if fast {
            let timings = ts.access_run(c, kind, port, s.not_before, s.len);
            assert_eq!(timings.len(), s.len as usize);
        } else {
            reference_run(&mut ts, c, kind, port, s.not_before, s.len);
        }
    }
    ts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // One run at a time from a cold state: identical timings and stats,
    // with and without refresh, across random coords/kinds/ports/lengths
    // (lengths up to 200 blocks straddle the 128-block rows).
    #[test]
    fn single_run_matches_per_block(spec in run_spec(), refresh in any::<bool>()) {
        let cfg = DramConfig { refresh, ..DramConfig::default() };
        let c = coord(spec.rank, spec.bg, spec.bank, spec.row, spec.col);
        let kind = if spec.write { CasKind::Write } else { CasKind::Read };
        let port = port_of(spec.port);

        let mut fast = TimingState::new(cfg);
        let got = fast.access_run(c, kind, port, spec.not_before, spec.len);
        let mut slow = TimingState::new(cfg);
        let want = reference_run(&mut slow, c, kind, port, spec.not_before, spec.len);

        prop_assert_eq!(&got, &want);
        prop_assert_eq!(fast.stats, slow.stats);
    }

    // Sequences of runs over a shared state — mixed directions, ports,
    // banks — so the batch commit of one run feeds the constraints of the
    // next. Stats and (traced) command streams must match exactly.
    #[test]
    fn run_sequences_match_per_block(specs in proptest::collection::vec(run_spec(), 1..12),
                                     refresh in any::<bool>()) {
        let cfg = DramConfig { refresh, ..DramConfig::default() };
        let fast = apply_runs(cfg, &specs, false, true);
        let slow = apply_runs(cfg, &specs, false, false);
        prop_assert_eq!(fast.stats, slow.stats);
    }

    // With command tracing on, the fast path must still record every
    // PRE/ACT/REF/CAS at the same time, place, and order.
    #[test]
    fn traced_runs_match_per_block(specs in proptest::collection::vec(run_spec(), 1..8)) {
        let cfg = DramConfig { refresh: true, ..DramConfig::default() };
        let mut fast = apply_runs(cfg, &specs, true, true);
        let mut slow = apply_runs(cfg, &specs, true, false);
        let ft = fast.take_trace().expect("trace").records;
        let st = slow.take_trace().expect("trace").records;
        prop_assert_eq!(ft, st);
    }

    // An engine-style greedy run (each block's not-before is the previous
    // CAS) driven across a refresh deadline: the fast path must fall back
    // for the refresh block mid-run and stay bit-identical.
    #[test]
    fn runs_straddle_refresh_deadlines(len in 2u64..2500, headroom in 0u64..2000) {
        let cfg = DramConfig { refresh: true, ..DramConfig::default() };
        let g = cfg.geom;
        let start = cfg.timing.t_refi.saturating_sub(headroom);
        let first = coord(0, 0, 0, 7, 0);
        let next_coord = |mut c: DramCoord| {
            c.col += 1;
            if c.col >= g.blocks_per_row {
                c.col = 0;
                c.row = (c.row + 1) % g.rows_per_bank;
            }
            c
        };

        let mut fast = TimingState::new(cfg);
        let mut got = Vec::new();
        {
            let mut c = first;
            let mut left = len - 1;
            fast.access_run_with(first, CasKind::Read, Port::Channel, start, &mut |bt| {
                got.push(bt);
                if left == 0 {
                    return None;
                }
                left -= 1;
                c = next_coord(c);
                Some((c, bt.cas_at))
            });
        }

        let mut slow = TimingState::new(cfg);
        let mut want = Vec::new();
        {
            let mut c = first;
            let mut nb = start;
            for _ in 0..len {
                let bt = slow.access(c, CasKind::Read, Port::Channel, nb);
                nb = bt.cas_at;
                want.push(bt);
                c = next_coord(c);
            }
        }

        prop_assert_eq!(&got, &want);
        prop_assert_eq!(fast.stats, slow.stats);
        // Long runs starting near the deadline must actually cross it.
        if len > 400 {
            prop_assert!(fast.stats.refreshes >= 1, "run crossed no deadline");
        }
    }
}
