//! Cycle-level DDR4 timing simulator with PIM access ports.
//!
//! This crate rebuilds the substrate the paper evaluates on (a modified
//! Ramulator, §IV): the full Table II DDR4-2400R timing model, bank/rank
//! state machines, per-port datapaths (external channel, rank-internal for
//! StepStone-DV, bank-group-internal for StepStone-BG), a functional backing
//! store for end-to-end result checking, a command-bus contention model for
//! kernel-launch packets, and a command-trace auditor used by property tests
//! to prove the simulator never emits an illegal schedule.
//!
//! The design is deliberately event-driven rather than cycle-stepped: each
//! access computes its legal issue time from explicit constraint registers
//! (the Ramulator approach), so simulating a multi-million-cycle GEMM costs
//! microseconds per thousand blocks.

pub mod analytic;
pub mod audit;
pub mod backend;
pub mod cmdbus;
pub mod config;
pub mod memory;
pub mod timing;
pub mod traffic;

pub use analytic::AnalyticState;
pub use audit::{CmdKind, CmdRecord, CommandTrace};
pub use backend::{BackendKind, MemoryBackend};
pub use cmdbus::CommandBus;
pub use config::{DramConfig, TimingParams};
pub use memory::SparseMem;
pub use timing::{BlockTiming, CasKind, DramStats, Port, RunReply, TimingState};
pub use traffic::{TrafficReq, TrafficSource};

