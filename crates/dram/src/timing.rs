//! DDR4 bank/rank/path timing state machines.
//!
//! The model tracks, per bank, the open row and the earliest legal times for
//! ACT/CAS/PRE; per rank, the tRRD/tFAW activation constraints (shared by
//! *all* access ports — the paper notes StepStone-BG "accounts for
//! device-level timing parameters such as tRCD and tFAW using control logic
//! at the I/O port of each device"); and per *data path*, CAS-to-CAS and
//! turnaround constraints plus data-bus occupancy.
//!
//! Three path kinds model where PIM units tap the datapath (Fig. 3a):
//! * [`Port::Channel`] — the external bus: host, DMA engine, StepStone-CH.
//!   Cross-rank transfers pay tRTRS; all Table II CAS constraints apply.
//! * [`Port::RankInternal`] — StepStone-DV buffer-chip access: full rank
//!   bandwidth, no rank-to-rank switching (single rank by construction).
//! * [`Port::BgInternal`] — StepStone-BG near-bank access: each bank group
//!   has a private datapath, so only tCCDL within the group throttles it;
//!   this is precisely the "underutilized bandwidth within a DRAM device"
//!   the paper exploits (§III-E).

use crate::audit::{CmdKind, CmdRecord, CommandTrace};
use crate::config::DramConfig;
use serde::{Deserialize, Serialize};
use stepstone_addr::{DramCoord, Geometry};

/// Which datapath an access uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Port {
    Channel,
    RankInternal,
    BgInternal,
}

impl Port {
    pub const ALL: [Port; 3] = [Port::Channel, Port::RankInternal, Port::BgInternal];

    pub fn index(&self) -> usize {
        match self {
            Port::Channel => 0,
            Port::RankInternal => 1,
            Port::BgInternal => 2,
        }
    }
}

/// Column command direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CasKind {
    Read,
    Write,
}

/// Timing of one completed block access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockTiming {
    /// When the column command issued.
    pub cas_at: u64,
    /// First cycle of data transfer.
    pub data_start: u64,
    /// One past the last data cycle.
    pub data_end: u64,
    /// Whether the access hit an open row.
    pub row_hit: bool,
    /// Activations this access needed (0 or 1).
    pub acts: u32,
}

/// Caller's reply in [`TimingState::access_run_stream`]: the next block of
/// the run, a closed-form jump over blocks whose CAS times are promised to
/// advance by a fixed delta, or the end of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunReply {
    /// Issue one block at `(coord, not_before)` — identical semantics to
    /// the `Some((coord, nb))` reply of [`TimingState::access_run_with`].
    Block(DramCoord, u64),
    /// Issue `count` further blocks of the current steady run, each
    /// repeating the previous coordinate with its CAS exactly `d` cycles
    /// after its predecessor's (`d ≥ max(tCCDL, tCCDS, tBL)`).
    Jump {
        /// Blocks to issue.
        count: u64,
        /// Exact CAS-to-CAS distance of every jumped block.
        d: u64,
    },
    /// End the run.
    End,
}

#[derive(Debug, Clone, Copy, Default)]
struct BankState {
    open_row: Option<u32>,
    next_act: u64,
    next_cas: u64,
    next_pre: u64,
}

/// Event times are stored as `t + 1`, with 0 meaning "never happened", so a
/// legitimate event at cycle 0 is distinguishable from no event.
type Stamp = u64;

#[inline]
fn stamp(t: u64) -> Stamp {
    t + 1
}

#[inline]
fn after(s: Stamp, gap: u64) -> u64 {
    if s == 0 {
        0
    } else {
        (s - 1) + gap
    }
}

#[derive(Debug, Clone, Default)]
struct RankState {
    /// Times of up to the last four ACTs (tFAW window).
    act_window: Vec<u64>,
    /// Last ACT stamp per bank group (tRRDL) and rank-wide (tRRDS).
    last_act_by_bg: Vec<Stamp>,
    last_act: Stamp,
    /// Next refresh deadline (when refresh is enabled).
    next_ref: u64,
}

/// Per-path CAS bookkeeping.
#[derive(Debug, Clone, Default)]
struct PathState {
    /// Last CAS stamp per bank group in this path's scope (tCCDL).
    last_cas_by_bg: Vec<Stamp>,
    /// Last write stamp per bank group (long write-to-read turnaround).
    last_wr_by_bg: Vec<Stamp>,
    last_cas: Stamp,
    /// Last read/write command stamp per rank in scope (turnarounds).
    last_rd_by_rank: Vec<Stamp>,
    last_wr_by_rank: Vec<Stamp>,
    /// Data-bus occupancy: end of the last burst and which rank drove it.
    bus_free: u64,
    bus_last_rank: u32,
    bus_used: bool,
}

/// Aggregate DRAM event counters, split by port for the energy model
/// (in-device vs off-chip transfers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    pub reads: u64,
    pub writes: u64,
    pub acts: u64,
    pub row_hits: u64,
    pub row_misses: u64,
    pub reads_by_port: [u64; 3],
    pub writes_by_port: [u64; 3],
    /// Sum of burst cycles transferred (utilization numerator).
    pub data_cycles: u64,
    pub refreshes: u64,
}

impl DramStats {
    pub fn merge(&mut self, o: &DramStats) {
        self.reads += o.reads;
        self.writes += o.writes;
        self.acts += o.acts;
        self.row_hits += o.row_hits;
        self.row_misses += o.row_misses;
        for i in 0..3 {
            self.reads_by_port[i] += o.reads_by_port[i];
            self.writes_by_port[i] += o.writes_by_port[i];
        }
        self.data_cycles += o.data_cycles;
        self.refreshes += o.refreshes;
    }

    /// Total blocks moved.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Counters accumulated since an earlier snapshot `base` of the same
    /// state — what one request contributed to a persistent serving-mode
    /// timing state. Saturating so a foreign snapshot cannot panic.
    pub fn delta(&self, base: &DramStats) -> DramStats {
        let mut d = DramStats {
            reads: self.reads.saturating_sub(base.reads),
            writes: self.writes.saturating_sub(base.writes),
            acts: self.acts.saturating_sub(base.acts),
            row_hits: self.row_hits.saturating_sub(base.row_hits),
            row_misses: self.row_misses.saturating_sub(base.row_misses),
            data_cycles: self.data_cycles.saturating_sub(base.data_cycles),
            refreshes: self.refreshes.saturating_sub(base.refreshes),
            ..DramStats::default()
        };
        for i in 0..3 {
            d.reads_by_port[i] = self.reads_by_port[i].saturating_sub(base.reads_by_port[i]);
            d.writes_by_port[i] = self.writes_by_port[i].saturating_sub(base.writes_by_port[i]);
        }
        d
    }
}

/// The shared timing state of the whole DRAM system.
#[derive(Debug, Clone)]
pub struct TimingState {
    cfg: DramConfig,
    banks: Vec<BankState>,
    ranks: Vec<RankState>,
    /// Path states: `[channels]` channel paths, then `[channels×ranks]`
    /// rank-internal paths, then `[channels×ranks×bgs]` BG-internal paths.
    paths: Vec<PathState>,
    pub stats: DramStats,
    /// Optional command recorder for the auditor (tests/debugging).
    trace: Option<CommandTrace>,
}

impl TimingState {
    pub fn new(cfg: DramConfig) -> Self {
        let g = cfg.geom;
        let n_banks = g.total_banks() as usize;
        let n_ranks = (g.channels * g.ranks_per_channel) as usize;
        let n_paths = g.channels as usize
            + n_ranks
            + (g.channels * g.ranks_per_channel * g.bankgroups_per_rank) as usize;
        let mut ranks = vec![RankState::default(); n_ranks];
        for r in &mut ranks {
            r.last_act_by_bg = vec![0; g.bankgroups_per_rank as usize];
            r.next_ref = cfg.timing.t_refi;
        }
        let mut paths = vec![PathState::default(); n_paths];
        let bg_total = (g.ranks_per_channel * g.bankgroups_per_rank) as usize;
        for (i, p) in paths.iter_mut().enumerate() {
            let (bgs, rks) = if i < g.channels as usize {
                (bg_total, g.ranks_per_channel as usize)
            } else if i < g.channels as usize + n_ranks {
                (g.bankgroups_per_rank as usize, 1)
            } else {
                (1, 1)
            };
            p.last_cas_by_bg = vec![0; bgs];
            p.last_wr_by_bg = vec![0; bgs];
            p.last_rd_by_rank = vec![0; rks];
            p.last_wr_by_rank = vec![0; rks];
        }
        Self {
            cfg,
            banks: vec![BankState::default(); n_banks],
            ranks,
            paths,
            stats: DramStats::default(),
            trace: None,
        }
    }

    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Start recording all issued commands for auditing.
    pub fn enable_trace(&mut self) {
        self.trace = Some(CommandTrace::default());
    }

    /// Take the recorded trace (if tracing was enabled).
    pub fn take_trace(&mut self) -> Option<CommandTrace> {
        self.trace.take()
    }

    /// Whether command tracing is active (parallel phase execution must
    /// fall back to the serial engine to keep the trace time-ordered).
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// The CAS-to-CAS cadence floor of a steady same-row run (see
    /// [`TimingState::access_run_with`]): the minimum distance between
    /// consecutive CAS commands on one bank, and the lower bound on the
    /// `d` of a [`RunReply::Jump`].
    pub fn cas_step(&self) -> u64 {
        let tp = self.cfg.timing;
        tp.t_ccdl.max(tp.t_ccds).max(tp.t_bl)
    }

    /// Adopt channel `ch`'s bank, rank, and path state from `other` (a
    /// clone of `self` advanced independently). Channels share no timing
    /// state — banks, ranks, and all three path kinds are channel-major —
    /// so per-channel simulation followed by adoption is exact. Statistics
    /// are *not* adopted; merge [`TimingState::stats`] separately.
    pub fn adopt_channel(&mut self, other: &TimingState, ch: u32) {
        let g = self.cfg.geom;
        assert_eq!(g, other.cfg.geom, "adopt_channel requires identical geometry");
        let ch = ch as usize;
        let banks_per_ch =
            (g.ranks_per_channel * g.bankgroups_per_rank * g.banks_per_bankgroup) as usize;
        let b0 = ch * banks_per_ch;
        self.banks[b0..b0 + banks_per_ch].copy_from_slice(&other.banks[b0..b0 + banks_per_ch]);
        let ranks_per_ch = g.ranks_per_channel as usize;
        let r0 = ch * ranks_per_ch;
        self.ranks[r0..r0 + ranks_per_ch].clone_from_slice(&other.ranks[r0..r0 + ranks_per_ch]);
        // Path layout: [channels] channel paths, [channels×ranks]
        // rank-internal paths, [channels×ranks×bgs] BG-internal paths.
        self.paths[ch] = other.paths[ch].clone();
        let nch = g.channels as usize;
        let nrk = (g.channels * g.ranks_per_channel) as usize;
        self.paths[nch + r0..nch + r0 + ranks_per_ch]
            .clone_from_slice(&other.paths[nch + r0..nch + r0 + ranks_per_ch]);
        let bgs_per_ch = (g.ranks_per_channel * g.bankgroups_per_rank) as usize;
        let bg0 = ch * bgs_per_ch;
        self.paths[nch + nrk + bg0..nch + nrk + bg0 + bgs_per_ch]
            .clone_from_slice(&other.paths[nch + nrk + bg0..nch + nrk + bg0 + bgs_per_ch]);
    }

    fn record(&mut self, time: u64, kind: CmdKind, coord: DramCoord, port: Port) {
        if let Some(t) = &mut self.trace {
            t.push(CmdRecord { time, kind, coord, port });
        }
    }

    fn geom(&self) -> &Geometry {
        &self.cfg.geom
    }

    fn path_index(&self, port: Port, c: &DramCoord) -> usize {
        let g = self.geom();
        match port {
            Port::Channel => c.channel as usize,
            Port::RankInternal => g.channels as usize + c.rank_index(g),
            Port::BgInternal => {
                g.channels as usize
                    + (g.channels * g.ranks_per_channel) as usize
                    + c.bankgroup_index(g)
            }
        }
    }

    /// Index of `c`'s bank group within the path's `last_cas_by_bg` table
    /// and of its rank within the turnaround tables.
    fn path_scope(&self, port: Port, c: &DramCoord) -> (usize, usize) {
        let g = self.geom();
        match port {
            Port::Channel => (
                (c.rank * g.bankgroups_per_rank + c.bankgroup) as usize,
                c.rank as usize,
            ),
            Port::RankInternal => (c.bankgroup as usize, 0),
            Port::BgInternal => (0, 0),
        }
    }

    /// Earliest legal ACT time for `c` at or after `t`.
    fn earliest_act(&self, c: &DramCoord, t: u64) -> u64 {
        let tp = &self.cfg.timing;
        let bank = &self.banks[c.bank_index(self.geom())];
        let rank = &self.ranks[c.rank_index(self.geom())];
        let mut at = t.max(bank.next_act);
        at = at.max(after(rank.last_act_by_bg[c.bankgroup as usize], tp.t_rrdl));
        at = at.max(after(rank.last_act, tp.t_rrds));
        if rank.act_window.len() >= 4 {
            at = at.max(rank.act_window[rank.act_window.len() - 4] + tp.t_faw);
        }
        at
    }

    fn commit_act(&mut self, c: &DramCoord, t: u64) {
        let tp = self.cfg.timing;
        let g = *self.geom();
        let bank = &mut self.banks[c.bank_index(&g)];
        bank.open_row = Some(c.row);
        bank.next_cas = t + tp.t_rcd;
        bank.next_pre = bank.next_pre.max(t + tp.t_ras);
        bank.next_act = t + tp.t_rc;
        let rank = &mut self.ranks[c.rank_index(&g)];
        rank.last_act_by_bg[c.bankgroup as usize] = stamp(t);
        rank.last_act = stamp(t);
        rank.act_window.push(t);
        if rank.act_window.len() > 8 {
            rank.act_window.drain(..4);
        }
        self.stats.acts += 1;
    }

    /// Earliest legal PRE time for `c` at or after `t`.
    fn earliest_pre(&self, c: &DramCoord, t: u64) -> u64 {
        t.max(self.banks[c.bank_index(self.geom())].next_pre)
    }

    fn commit_pre(&mut self, c: &DramCoord, t: u64) {
        let tp = self.cfg.timing;
        let g = *self.geom();
        let bank = &mut self.banks[c.bank_index(&g)];
        bank.open_row = None;
        bank.next_act = bank.next_act.max(t + tp.t_rp);
    }

    /// Earliest legal CAS time on `port` at or after `t` (row already open).
    fn earliest_cas(&self, c: &DramCoord, kind: CasKind, port: Port, t: u64) -> u64 {
        let tp = &self.cfg.timing;
        let bank = &self.banks[c.bank_index(self.geom())];
        let path = &self.paths[self.path_index(port, c)];
        let (bg_ix, rk_ix) = self.path_scope(port, c);
        let mut at = t.max(bank.next_cas);
        at = at.max(after(path.last_cas, tp.t_ccds));
        at = at.max(after(path.last_cas_by_bg[bg_ix], tp.t_ccdl));
        // Same-rank turnaround constraints.
        match kind {
            CasKind::Read => {
                // Short turnaround after any same-rank write, long after a
                // write in the same bank group.
                at = at.max(after(path.last_wr_by_rank[rk_ix], tp.wtr(false)));
                at = at.max(after(path.last_wr_by_bg[bg_ix], tp.wtr(true)));
            }
            CasKind::Write => {
                at = at.max(after(path.last_rd_by_rank[rk_ix], tp.rtw()));
            }
        }
        // Data-bus occupancy (+ rank switch penalty on the shared channel).
        let latency = match kind {
            CasKind::Read => tp.t_cl,
            CasKind::Write => tp.t_cwl,
        };
        if path.bus_used {
            let mut bus_ready = path.bus_free;
            if port == Port::Channel && path.bus_last_rank != c.rank {
                bus_ready += tp.t_rtrs;
            }
            at = at.max(bus_ready.saturating_sub(latency));
        }
        at
    }

    fn commit_cas(&mut self, c: &DramCoord, kind: CasKind, port: Port, t: u64) -> (u64, u64) {
        let tp = self.cfg.timing;
        let g = *self.geom();
        let (bg_ix, rk_ix) = self.path_scope(port, c);
        let path_ix = self.path_index(port, c);
        let latency = match kind {
            CasKind::Read => tp.t_cl,
            CasKind::Write => tp.t_cwl,
        };
        let data_start = t + latency;
        let data_end = data_start + tp.t_bl;
        let bank = &mut self.banks[c.bank_index(&g)];
        match kind {
            CasKind::Read => bank.next_pre = bank.next_pre.max(t + tp.t_rtp),
            CasKind::Write => bank.next_pre = bank.next_pre.max(t + tp.t_cwl + tp.t_bl + tp.t_wr),
        }
        let path = &mut self.paths[path_ix];
        path.last_cas = stamp(t);
        path.last_cas_by_bg[bg_ix] = stamp(t);
        match kind {
            CasKind::Read => path.last_rd_by_rank[rk_ix] = stamp(t),
            CasKind::Write => {
                path.last_wr_by_rank[rk_ix] = stamp(t);
                path.last_wr_by_bg[bg_ix] = stamp(t);
            }
        }
        path.bus_free = data_end;
        path.bus_last_rank = c.rank;
        path.bus_used = true;
        match kind {
            CasKind::Read => {
                self.stats.reads += 1;
                self.stats.reads_by_port[port.index()] += 1;
            }
            CasKind::Write => {
                self.stats.writes += 1;
                self.stats.writes_by_port[port.index()] += 1;
            }
        }
        self.stats.data_cycles += tp.t_bl;
        (data_start, data_end)
    }

    /// Non-committing refresh query: if rank `rk` has refresh deadlines at
    /// or before `t`, return when the owed all-bank REFs complete (issued
    /// back-to-back starting no earlier than `t` and every bank's `next_pre`)
    /// and how many are owed. `None` when no refresh is due.
    fn refresh_due(&self, rk: usize, t: u64) -> Option<(u64, u64)> {
        if !self.cfg.refresh || t < self.ranks[rk].next_ref {
            return None;
        }
        let g = self.geom();
        let tp = &self.cfg.timing;
        // Every interval whose deadline passed is owed exactly once.
        let owed = (t - self.ranks[rk].next_ref) / tp.t_refi + 1;
        let bank_base = rk * (g.bankgroups_per_rank * g.banks_per_bankgroup) as usize;
        let nb = (g.bankgroups_per_rank * g.banks_per_bankgroup) as usize;
        let mut start = t;
        for b in 0..nb {
            start = start.max(self.banks[bank_base + b].next_pre);
        }
        Some((start + tp.t_rp + owed * tp.t_rfc, owed))
    }

    /// Refresh handling: if the rank's deadline passed, simulate the owed
    /// all-bank REFs starting no earlier than `t` and return when the rank
    /// is usable. A rank that idled through many intervals pays its whole
    /// refresh debt here, once — `next_ref` advances past `t`, so the *next*
    /// access does not eat another catch-up REF.
    fn maybe_refresh(&mut self, c: &DramCoord, t: u64) -> u64 {
        let g = *self.geom();
        let rk = c.rank_index(&g);
        let Some((done, owed)) = self.refresh_due(rk, t) else {
            return t;
        };
        let bank_base = rk * (g.bankgroups_per_rank * g.banks_per_bankgroup) as usize;
        let nb = (g.bankgroups_per_rank * g.banks_per_bankgroup) as usize;
        for b in 0..nb {
            let bank = &mut self.banks[bank_base + b];
            bank.open_row = None;
            bank.next_act = bank.next_act.max(done);
        }
        self.ranks[rk].next_ref += owed * self.cfg.timing.t_refi;
        self.stats.refreshes += owed;
        done
    }

    /// Perform one block access on `port`, issuing PRE/ACT as needed, no
    /// earlier than `not_before`. Greedy in-order semantics per caller; the
    /// engine keeps callers approximately time-sorted.
    pub fn access(
        &mut self,
        coord: DramCoord,
        kind: CasKind,
        port: Port,
        not_before: u64,
    ) -> BlockTiming {
        let t0 = self.maybe_refresh(&coord, not_before);
        let g = *self.geom();
        let bank_ix = coord.bank_index(&g);
        let (row_hit, acts, cas_from) = match self.banks[bank_ix].open_row {
            Some(r) if r == coord.row => (true, 0, t0),
            Some(_) => {
                let pre_at = self.earliest_pre(&coord, t0);
                self.commit_pre(&coord, pre_at);
                self.record(pre_at, CmdKind::Pre, coord, port);
                let act_at = self.earliest_act(&coord, pre_at + self.cfg.timing.t_rp);
                self.commit_act(&coord, act_at);
                self.record(act_at, CmdKind::Act, coord, port);
                (false, 1, act_at)
            }
            None => {
                let act_at = self.earliest_act(&coord, t0);
                self.commit_act(&coord, act_at);
                self.record(act_at, CmdKind::Act, coord, port);
                (false, 1, act_at)
            }
        };
        if row_hit {
            self.stats.row_hits += 1;
        } else {
            self.stats.row_misses += 1;
        }
        let cas_at = self.earliest_cas(&coord, kind, port, cas_from);
        let (data_start, data_end) = self.commit_cas(&coord, kind, port, cas_at);
        self.record(
            cas_at,
            if kind == CasKind::Read { CmdKind::Read } else { CmdKind::Write },
            coord,
            port,
        );
        BlockTiming { cas_at, data_start, data_end, row_hit, acts }
    }

    /// Whether `c`'s bank currently holds `c.row` open — the next access to
    /// it is a guaranteed row hit that reads no rank-shared state.
    pub fn row_open(&self, c: &DramCoord) -> bool {
        self.banks[c.bank_index(self.geom())].open_row == Some(c.row)
    }

    /// Non-committing estimate of when the *data* of an access would start.
    ///
    /// Mirrors [`TimingState::access`] including a pending refresh: a rank
    /// whose deadline has passed gets its rows closed and stalls until the
    /// owed REFs complete before the estimate's ACT — otherwise the estimate
    /// is wrong by up to tRFC right after a refresh deadline and the
    /// engine's FR-FCFS selection orders accesses on fiction.
    pub fn probe(&self, coord: DramCoord, kind: CasKind, port: Port, not_before: u64) -> u64 {
        let g = *self.geom();
        let bank = &self.banks[coord.bank_index(&g)];
        let tp = &self.cfg.timing;
        let refreshed = self.refresh_due(coord.rank_index(&g), not_before);
        let cas_from = match (refreshed, bank.open_row) {
            // A pending refresh closes every row in the rank; the ACT waits
            // for the REF chain (and any standing tRC floor on the bank).
            (Some((done, _)), _) => self.earliest_act(&coord, done.max(bank.next_act)) + tp.t_rcd,
            (None, Some(r)) if r == coord.row => not_before,
            (None, Some(_)) => self.earliest_pre(&coord, not_before) + tp.t_rp + tp.t_rcd,
            (None, None) => self.earliest_act(&coord, not_before) + tp.t_rcd,
        };
        let cas_at = self.earliest_cas(&coord, kind, port, cas_from);
        cas_at
            + match kind {
                CasKind::Read => tp.t_cl,
                CasKind::Write => tp.t_cwl,
            }
    }

    /// Issue a *run* of same-direction block accesses with a closed-form
    /// fast path. The first block goes through the full [`TimingState::access`]
    /// machinery (refresh, PRE/ACT, every Table II constraint). Each
    /// subsequent block is supplied by `next`, which receives the timing of
    /// the block just issued and returns the next `(coord, not_before)` (or
    /// `None` to end the run).
    ///
    /// While a follower stays in the *steady state* — same bank and row as
    /// the previous block, no refresh deadline crossed — its CAS time is
    /// exact in closed form: every constraint that does not advance within
    /// a same-row run (tRCD from the opening ACT, write→read / read→write
    /// turnarounds against pre-run commands) was already folded into the
    /// previous CAS, so the only live constraints are the CAS-to-CAS cadence
    /// and data-bus occupancy, `cas = max(nb, prev_cas + max(tCCDL, tCCDS,
    /// tBL))`. Bank/path stamps, bus occupancy, and [`DramStats`] are
    /// batch-committed when the steady state breaks or the run ends.
    /// Followers that leave the steady state (row or bank change, pending
    /// refresh) — and every block when command tracing is on — fall back to
    /// the full per-block path, so the sequence of [`BlockTiming`]s, the
    /// stats, and the trace are bit-identical to `n` single `access` calls.
    ///
    /// Returns the number of blocks issued (≥ 1).
    pub fn access_run_with<F: FnMut(BlockTiming) -> Option<(DramCoord, u64)>>(
        &mut self,
        first: DramCoord,
        kind: CasKind,
        port: Port,
        not_before: u64,
        next: &mut F,
    ) -> u64 {
        self.access_run_stream(first, kind, port, not_before, &mut |bt| match next(bt) {
            Some((c, nb)) => RunReply::Block(c, nb),
            None => RunReply::End,
        })
    }

    /// [`TimingState::access_run_with`] with a richer reply protocol: the
    /// caller may answer [`RunReply::Jump`] to issue `count` further
    /// blocks of the current steady run in one step, promising that each
    /// would repeat the previous coordinate with a CAS time exactly `d`
    /// cycles after its predecessor (`d ≥` the CAS-to-CAS cadence floor,
    /// so the cadence constraint holds and per-block `not_before` values
    /// never bind). The promise is the caller's: it is only sound when
    /// the caller's own issue state advances by exactly `d` per block —
    /// see the shift-invariance detection in the engine's batch loop —
    /// and when no refresh deadline or trace can interleave (the jump is
    /// rejected by debug assertion otherwise). The next callback
    /// invocation receives the timing of the *last* jumped block, which
    /// the caller must treat as already accounted.
    pub fn access_run_stream<F: FnMut(BlockTiming) -> RunReply>(
        &mut self,
        first: DramCoord,
        kind: CasKind,
        port: Port,
        not_before: u64,
        next: &mut F,
    ) -> u64 {
        let g = *self.geom();
        let tp = self.cfg.timing;
        let step = tp.t_ccdl.max(tp.t_ccds).max(tp.t_bl);
        let latency = match kind {
            CasKind::Read => tp.t_cl,
            CasKind::Write => tp.t_cwl,
        };
        let mut bt = self.access(first, kind, port, not_before);
        let mut n = 1u64;
        let mut run = first;
        let mut bank_ix = run.bank_index(&g);
        let mut rank_ix = run.rank_index(&g);
        // Followers issued in closed form but not yet committed.
        let mut pending = 0u64;
        let mut last_cas = bt.cas_at;
        // Once a follower passes the full steady test, its invariant parts
        // (no trace, the run's row open in the run's bank) cannot change
        // until the next full `access` — steady iterations touch no bank or
        // trace state. A follower repeating the previous coordinate
        // verbatim therefore only needs the refresh-deadline recheck, the
        // one condition that advances with `nb`.
        let mut verified = false;
        let mut next_ref = u64::MAX;
        loop {
            let (c, nb) = match next(bt) {
                RunReply::End => break,
                RunReply::Jump { count, d } => {
                    debug_assert!(
                        count > 0 && d >= step && self.trace.is_none() && !self.cfg.refresh,
                        "RunReply::Jump requires a steady, trace- and refresh-free run"
                    );
                    last_cas += count * d;
                    bt = BlockTiming {
                        cas_at: last_cas,
                        data_start: last_cas + latency,
                        data_end: last_cas + latency + tp.t_bl,
                        row_hit: true,
                        acts: 0,
                    };
                    pending += count;
                    n += count;
                    continue;
                }
                RunReply::Block(c, nb) => (c, nb),
            };
            let steady = (verified && c == run && (!self.cfg.refresh || nb < next_ref)) || {
                let full = self.trace.is_none()
                    && c.row == run.row
                    && c.bank_index(&g) == bank_ix
                    && (!self.cfg.refresh || nb < self.ranks[rank_ix].next_ref)
                    && self.banks[bank_ix].open_row == Some(run.row);
                if full {
                    run = c;
                    verified = true;
                    next_ref = self.ranks[rank_ix].next_ref;
                }
                full
            };
            if steady {
                let cas_at = nb.max(last_cas + step);
                bt = BlockTiming {
                    cas_at,
                    data_start: cas_at + latency,
                    data_end: cas_at + latency + tp.t_bl,
                    row_hit: true,
                    acts: 0,
                };
                last_cas = cas_at;
                pending += 1;
            } else {
                self.commit_run(&run, kind, port, pending, last_cas);
                pending = 0;
                bt = self.access(c, kind, port, nb);
                run = c;
                bank_ix = run.bank_index(&g);
                rank_ix = run.rank_index(&g);
                last_cas = bt.cas_at;
                // The full access may have refreshed or re-opened rows;
                // re-establish the invariants before trusting them again.
                verified = false;
            }
            n += 1;
        }
        self.commit_run(&run, kind, port, pending, last_cas);
        n
    }

    /// Batch-commit `count` closed-form followers of a steady run ending at
    /// `last_cas`: all per-block updates are monotone in the CAS time, so
    /// only the final values need storing.
    fn commit_run(&mut self, c: &DramCoord, kind: CasKind, port: Port, count: u64, last_cas: u64) {
        if count == 0 {
            return;
        }
        let tp = self.cfg.timing;
        let g = *self.geom();
        let (bg_ix, rk_ix) = self.path_scope(port, c);
        let path_ix = self.path_index(port, c);
        let latency = match kind {
            CasKind::Read => tp.t_cl,
            CasKind::Write => tp.t_cwl,
        };
        let bank = &mut self.banks[c.bank_index(&g)];
        match kind {
            CasKind::Read => bank.next_pre = bank.next_pre.max(last_cas + tp.t_rtp),
            CasKind::Write => {
                bank.next_pre = bank.next_pre.max(last_cas + tp.t_cwl + tp.t_bl + tp.t_wr)
            }
        }
        let path = &mut self.paths[path_ix];
        path.last_cas = stamp(last_cas);
        path.last_cas_by_bg[bg_ix] = stamp(last_cas);
        match kind {
            CasKind::Read => path.last_rd_by_rank[rk_ix] = stamp(last_cas),
            CasKind::Write => {
                path.last_wr_by_rank[rk_ix] = stamp(last_cas);
                path.last_wr_by_bg[bg_ix] = stamp(last_cas);
            }
        }
        path.bus_free = last_cas + latency + tp.t_bl;
        path.bus_last_rank = c.rank;
        path.bus_used = true;
        match kind {
            CasKind::Read => {
                self.stats.reads += count;
                self.stats.reads_by_port[port.index()] += count;
            }
            CasKind::Write => {
                self.stats.writes += count;
                self.stats.writes_by_port[port.index()] += count;
            }
        }
        self.stats.row_hits += count;
        self.stats.data_cycles += count * tp.t_bl;
    }

    /// Span-level access: `len` physically contiguous blocks starting at
    /// `coord` (columns incrementing, wrapping into the next row), each with
    /// the same `not_before`. Equivalent to — and bit-identical with — `len`
    /// single [`TimingState::access`] calls over the same coordinates, but
    /// same-row followers are issued in closed form (see
    /// [`TimingState::access_run_with`]).
    pub fn access_run(
        &mut self,
        coord: DramCoord,
        kind: CasKind,
        port: Port,
        not_before: u64,
        len: u64,
    ) -> Vec<BlockTiming> {
        assert!(len >= 1, "a run has at least one block");
        let g = *self.geom();
        let mut out = Vec::with_capacity(len as usize);
        let mut cur = coord;
        let mut left = len - 1;
        self.access_run_with(coord, kind, port, not_before, &mut |bt| {
            out.push(bt);
            if left == 0 {
                return None;
            }
            left -= 1;
            cur.col += 1;
            if cur.col >= g.blocks_per_row {
                cur.col = 0;
                cur.row = (cur.row + 1) % g.rows_per_bank;
            }
            Some((cur, not_before))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stepstone_addr::{mapping_by_id, MappingId};

    fn coord(ch: u32, rk: u32, bg: u32, bank: u32, row: u32, col: u32) -> DramCoord {
        DramCoord { channel: ch, rank: rk, bankgroup: bg, bank, row, col }
    }

    #[test]
    fn row_hit_stream_paces_at_ccdl_same_bg() {
        let mut ts = TimingState::new(DramConfig::default());
        let tp = ts.cfg.timing;
        let c0 = coord(0, 0, 0, 0, 0, 0);
        let first = ts.access(c0, CasKind::Read, Port::BgInternal, 0);
        assert!(!first.row_hit);
        let mut prev = first.cas_at;
        for col in 1..10 {
            let bt = ts.access(coord(0, 0, 0, 0, 0, col), CasKind::Read, Port::BgInternal, 0);
            assert!(bt.row_hit);
            assert_eq!(bt.cas_at - prev, tp.t_ccdl, "same-BG CAS gap");
            prev = bt.cas_at;
        }
    }

    #[test]
    fn rank_port_reaches_ccds_across_bankgroups() {
        let mut ts = TimingState::new(DramConfig::default());
        let tp = ts.cfg.timing;
        // Open a row in each bank group first.
        for bg in 0..4 {
            ts.access(coord(0, 0, bg, 0, 0, 0), CasKind::Read, Port::RankInternal, 0);
        }
        // Now interleave: consecutive CAS to different bank groups pace at
        // tCCDS = tBL (full rank bandwidth).
        let mut last = 0;
        for i in 0..8 {
            let bt =
                ts.access(coord(0, 0, i % 4, 0, 0, 1 + i / 4), CasKind::Read, Port::RankInternal, 0);
            if i > 0 {
                assert_eq!(bt.cas_at - last, tp.t_ccds);
            }
            last = bt.cas_at;
        }
    }

    #[test]
    fn bg_internal_paths_are_independent() {
        let mut ts = TimingState::new(DramConfig::default());
        // Two BG PIMs in the same rank stream concurrently without CAS
        // interference (separate internal datapaths).
        let a0 = ts.access(coord(0, 0, 0, 0, 0, 0), CasKind::Read, Port::BgInternal, 0);
        let b0 = ts.access(coord(0, 0, 1, 0, 0, 0), CasKind::Read, Port::BgInternal, 0);
        // Second ACT pays tRRDS (shared rank activation budget) but the CAS
        // gap is not tCCD-linked across the two paths.
        assert_eq!(b0.cas_at - a0.cas_at, ts.cfg.timing.t_rrds);
        let a1 = ts.access(coord(0, 0, 0, 0, 0, 1), CasKind::Read, Port::BgInternal, 0);
        let b1 = ts.access(coord(0, 0, 1, 0, 0, 1), CasKind::Read, Port::BgInternal, 0);
        assert_eq!(a1.cas_at - a0.cas_at, ts.cfg.timing.t_ccdl);
        assert_eq!(b1.cas_at - b0.cas_at, ts.cfg.timing.t_ccdl);
    }

    #[test]
    fn row_conflict_pays_precharge_and_activate() {
        let mut ts = TimingState::new(DramConfig::default());
        let tp = ts.cfg.timing;
        let first = ts.access(coord(0, 0, 0, 0, 0, 0), CasKind::Read, Port::Channel, 0);
        let conflict = ts.access(coord(0, 0, 0, 0, 7, 0), CasKind::Read, Port::Channel, 0);
        assert!(!conflict.row_hit);
        // PRE cannot issue before tRTP after the read; ACT follows tRP; CAS
        // follows tRCD.
        let min_cas = first.cas_at + tp.t_rtp + tp.t_rp + tp.t_rcd;
        assert!(conflict.cas_at >= min_cas);
    }

    #[test]
    fn faw_throttles_activation_bursts() {
        let mut ts = TimingState::new(DramConfig::default());
        let tp = ts.cfg.timing;
        let mut act_cas = Vec::new();
        // 5 activations to distinct banks in one rank.
        for b in 0..5 {
            let bt = ts.access(coord(0, 0, b % 4, b / 4, 0, 0), CasKind::Read, Port::Channel, 0);
            act_cas.push(bt.cas_at - tp.t_rcd);
        }
        assert!(act_cas[4] - act_cas[0] >= tp.t_faw, "5th ACT respects tFAW");
    }

    #[test]
    fn write_to_read_turnaround_enforced() {
        let mut ts = TimingState::new(DramConfig::default());
        let tp = ts.cfg.timing;
        let w = ts.access(coord(0, 0, 0, 0, 0, 0), CasKind::Write, Port::Channel, 0);
        let r = ts.access(coord(0, 0, 0, 0, 0, 1), CasKind::Read, Port::Channel, 0);
        assert!(r.cas_at >= w.cas_at + tp.wtr(true));
    }

    #[test]
    fn rank_switch_pays_rtrs_on_channel() {
        let mut ts = TimingState::new(DramConfig::default());
        let tp = ts.cfg.timing;
        // Warm both ranks (open rows).
        ts.access(coord(0, 0, 0, 0, 0, 0), CasKind::Read, Port::Channel, 0);
        ts.access(coord(0, 1, 0, 0, 0, 0), CasKind::Read, Port::Channel, 0);
        let a = ts.access(coord(0, 0, 1, 0, 0, 0), CasKind::Read, Port::Channel, 1000);
        let b = ts.access(coord(0, 1, 1, 0, 0, 0), CasKind::Read, Port::Channel, 1000);
        // Bursts must be separated by at least tBL + tRTRS on the shared bus.
        assert!(b.data_start >= a.data_end + tp.t_rtrs);
    }

    #[test]
    fn channels_are_fully_independent() {
        let mut ts = TimingState::new(DramConfig::default());
        let a = ts.access(coord(0, 0, 0, 0, 0, 0), CasKind::Read, Port::Channel, 0);
        let b = ts.access(coord(1, 0, 0, 0, 0, 0), CasKind::Read, Port::Channel, 0);
        assert_eq!(a.cas_at, b.cas_at, "different channels do not interact");
    }

    #[test]
    fn refresh_blocks_the_rank_when_enabled() {
        let cfg = DramConfig { refresh: true, ..DramConfig::default() };
        let mut ts = TimingState::new(cfg);
        let c = coord(0, 0, 0, 0, 0, 0);
        ts.access(c, CasKind::Read, Port::Channel, 0);
        let after = ts.access(coord(0, 0, 0, 0, 0, 1), CasKind::Read, Port::Channel, 10_000);
        assert_eq!(ts.stats.refreshes, 1);
        assert!(after.cas_at >= 10_000 + cfg.timing.t_rfc, "post-refresh access is delayed");
    }

    #[test]
    fn long_idle_rank_pays_its_refresh_debt_once() {
        let cfg = DramConfig { refresh: true, ..DramConfig::default() };
        let tp = cfg.timing;
        let mut ts = TimingState::new(cfg);
        let c = coord(0, 0, 0, 0, 0, 0);
        ts.access(c, CasKind::Read, Port::Channel, 0);
        assert_eq!(ts.stats.refreshes, 0);
        // Idle through 10 whole refresh intervals, then touch the rank.
        let t = tp.t_refi * 10 + tp.t_refi / 2;
        let first = ts.access(coord(0, 0, 0, 0, 0, 1), CasKind::Read, Port::Channel, t);
        assert_eq!(ts.stats.refreshes, 10, "every missed interval is owed exactly once");
        assert!(first.cas_at >= t + 10 * tp.t_rfc, "the debt is charged to this access");
        // The *next* access must not eat another catch-up REF: next_ref has
        // advanced past `t`, so only the regular cadence remains.
        let second = ts.access(coord(0, 0, 0, 0, 0, 2), CasKind::Read, Port::Channel, first.cas_at);
        assert_eq!(ts.stats.refreshes, 10, "no further catch-up REF");
        assert!(second.cas_at < first.cas_at + tp.t_rfc, "second access is cadence-paced");
    }

    #[test]
    fn probe_accounts_for_pending_refresh() {
        let cfg = DramConfig { refresh: true, ..DramConfig::default() };
        let mut ts = TimingState::new(cfg);
        let c = coord(0, 0, 0, 0, 3, 0);
        ts.access(c, CasKind::Read, Port::Channel, 0);
        // Just past the deadline: the non-committing estimate must match
        // what the committing access actually achieves (and not be
        // optimistic by up to tRFC).
        let t = cfg.timing.t_refi + 5;
        let next = coord(0, 0, 1, 0, 3, 0);
        let est = ts.probe(next, CasKind::Read, Port::Channel, t);
        assert_eq!(ts.stats.refreshes, 0, "probe commits nothing");
        let bt = ts.access(next, CasKind::Read, Port::Channel, t);
        assert_eq!(est, bt.data_start, "estimate equals the committed data start");
        assert_eq!(ts.stats.refreshes, 1);
        assert!(est >= t + cfg.timing.t_rfc, "estimate includes the REF stall");
    }

    #[test]
    fn probe_refresh_estimate_is_consistent_on_the_open_rank() {
        // Same-rank probe with a pending refresh: rows will be closed by
        // the REF, so even a would-be row hit must estimate a full ACT.
        let cfg = DramConfig { refresh: true, ..DramConfig::default() };
        let mut ts = TimingState::new(cfg);
        let c = coord(0, 0, 0, 0, 3, 0);
        ts.access(c, CasKind::Read, Port::Channel, 0);
        let t = cfg.timing.t_refi + 1;
        let est = ts.probe(coord(0, 0, 0, 0, 3, 1), CasKind::Read, Port::Channel, t);
        let bt = ts.access(coord(0, 0, 0, 0, 3, 1), CasKind::Read, Port::Channel, t);
        assert_eq!(est, bt.data_start);
        assert!(!bt.row_hit, "refresh closed the row");
    }

    #[test]
    fn stream_through_mapping_counts_every_block(){
        let m = mapping_by_id(MappingId::Skylake);
        let mut ts = TimingState::new(DramConfig::default());
        let n = 512u64;
        for b in 0..n {
            let c = m.decode(b * 64);
            ts.access(c, CasKind::Read, Port::Channel, 0);
        }
        assert_eq!(ts.stats.reads, n);
        assert_eq!(ts.stats.reads_by_port[Port::Channel.index()], n);
        assert_eq!(ts.stats.row_hits + ts.stats.row_misses, n);
    }

    #[test]
    fn delta_saturates_when_a_counter_resets_across_sessions() {
        // The serving session layer snapshots cumulative stats and reports
        // per-request deltas. If the underlying counters ever restart
        // mid-timeline (fresh `TimingState` reused against an old
        // snapshot), every field must clamp to zero rather than wrap to
        // ~u64::MAX and poison downstream per-request accounting.
        let before = DramStats {
            reads: 100,
            writes: 50,
            acts: 10,
            row_hits: 9,
            row_misses: 1,
            reads_by_port: [5, 6, 7],
            writes_by_port: [1, 2, 3],
            data_cycles: 400,
            refreshes: 2,
        };
        let after = DramStats { reads: 1, ..DramStats::default() };
        assert_eq!(after.delta(&before), DramStats::default());
        // And the normal direction still subtracts exactly.
        assert_eq!(before.delta(&after).reads, 99);
    }
}
