//! DRAM timing and system configuration (paper Table II).

use serde::{Deserialize, Serialize};
use stepstone_addr::Geometry;

/// DDR4 timing parameters in DRAM clock cycles.
///
/// Defaults are the paper's Table II values for DDR4-2400R (4 GB, x8
/// devices) at a 1.2 GHz DRAM clock. `t_cwl` is 12 per the table; `t_refi`
/// and `t_rfc` follow the DDR4-2400 datasheet (refresh is off by default in
/// experiments, matching the paper's reporting, but can be enabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingParams {
    /// Burst length on the data bus (BL8 at DDR = 4 clock cycles).
    pub t_bl: u64,
    /// CAS-to-CAS, different bank group.
    pub t_ccds: u64,
    /// CAS-to-CAS, same bank group.
    pub t_ccdl: u64,
    /// Rank-to-rank data-bus switch penalty.
    pub t_rtrs: u64,
    /// Read CAS latency.
    pub t_cl: u64,
    /// Write CAS latency.
    pub t_cwl: u64,
    /// ACT to CAS.
    pub t_rcd: u64,
    /// PRE to ACT.
    pub t_rp: u64,
    /// ACT to PRE (minimum row-open time).
    pub t_ras: u64,
    /// ACT to ACT, same bank.
    pub t_rc: u64,
    /// Read to PRE.
    pub t_rtp: u64,
    /// Write-to-read turnaround, different bank group.
    pub t_wtrs: u64,
    /// Write-to-read turnaround, same bank group.
    pub t_wtrl: u64,
    /// Write recovery (end of write data to PRE).
    pub t_wr: u64,
    /// ACT-to-ACT, different bank group.
    pub t_rrds: u64,
    /// ACT-to-ACT, same bank group.
    pub t_rrdl: u64,
    /// Four-activate window.
    pub t_faw: u64,
    /// Average refresh interval (all-bank REF per rank).
    pub t_refi: u64,
    /// Refresh cycle time.
    pub t_rfc: u64,
}

impl Default for TimingParams {
    fn default() -> Self {
        Self {
            t_bl: 4,
            t_ccds: 4,
            t_ccdl: 6,
            t_rtrs: 2,
            t_cl: 16,
            t_cwl: 12,
            t_rcd: 16,
            t_rp: 16,
            t_ras: 39,
            t_rc: 55,
            t_rtp: 9,
            t_wtrs: 3,
            t_wtrl: 9,
            t_wr: 18,
            t_rrds: 4,
            t_rrdl: 6,
            t_faw: 26,
            t_refi: 9360,
            t_rfc: 313,
        }
    }
}

impl TimingParams {
    /// Read-to-write command gap on a shared data path.
    pub fn rtw(&self) -> u64 {
        self.t_cl + self.t_bl + 2 - self.t_cwl
    }

    /// Write-to-read command gap (same rank), by bank-group sameness.
    pub fn wtr(&self, same_bankgroup: bool) -> u64 {
        self.t_cwl + self.t_bl + if same_bankgroup { self.t_wtrl } else { self.t_wtrs }
    }

    /// CAS-to-CAS command gap by bank-group sameness.
    pub fn ccd(&self, same_bankgroup: bool) -> u64 {
        if same_bankgroup {
            self.t_ccdl
        } else {
            self.t_ccds
        }
    }

    /// ACT-to-ACT (different banks) by bank-group sameness.
    pub fn rrd(&self, same_bankgroup: bool) -> u64 {
        if same_bankgroup {
            self.t_rrdl
        } else {
            self.t_rrds
        }
    }
}

/// Full DRAM system configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[derive(Default)]
pub struct DramConfig {
    pub geom: Geometry,
    pub timing: TimingParams,
    /// Issue all-bank refreshes every `t_refi` (off by default).
    pub refresh: bool,
}


impl DramConfig {
    /// DRAM clock frequency (Hz) — DDR4-2400 I/O clock, also the PIM clock
    /// (Table II: PIMs run at 1.2 GHz).
    pub const CLOCK_HZ: f64 = 1.2e9;

    /// Peak data bandwidth of one channel in bytes/cycle (64-bit bus, DDR).
    pub const CHANNEL_BYTES_PER_CYCLE: f64 = 16.0;

    /// Convert DRAM cycles to seconds.
    pub fn cycles_to_seconds(cycles: u64) -> f64 {
        cycles as f64 / Self::CLOCK_HZ
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_ii() {
        let t = TimingParams::default();
        assert_eq!(t.t_bl, 4);
        assert_eq!(t.t_ccds, 4);
        assert_eq!(t.t_ccdl, 6);
        assert_eq!(t.t_rtrs, 2);
        assert_eq!(t.t_cl, 16);
        assert_eq!(t.t_rcd, 16);
        assert_eq!(t.t_rp, 16);
        assert_eq!(t.t_ras, 39);
        assert_eq!(t.t_rc, 55);
        assert_eq!(t.t_rtp, 9);
        assert_eq!(t.t_wtrs, 3);
        assert_eq!(t.t_wtrl, 9);
        assert_eq!(t.t_wr, 18);
        assert_eq!(t.t_rrds, 4);
        assert_eq!(t.t_rrdl, 6);
        assert_eq!(t.t_faw, 26);
    }

    #[test]
    fn derived_gaps_are_sane() {
        let t = TimingParams::default();
        assert_eq!(t.rtw(), 16 + 4 + 2 - 12);
        assert_eq!(t.wtr(true), 12 + 4 + 9);
        assert_eq!(t.wtr(false), 12 + 4 + 3);
        assert!(t.ccd(true) > t.ccd(false));
        assert!(t.rrd(true) > t.rrd(false));
    }

    #[test]
    fn channel_bandwidth_is_ddr4_2400() {
        // 16 B/cycle at 1.2 GHz = 19.2 GB/s per channel.
        let gbps = DramConfig::CHANNEL_BYTES_PER_CYCLE * DramConfig::CLOCK_HZ / 1e9;
        assert!((gbps - 19.2).abs() < 1e-9);
    }
}
