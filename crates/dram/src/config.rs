//! DRAM timing and system configuration (paper Table II).

use serde::{Deserialize, Serialize};
use stepstone_addr::Geometry;

/// DDR4 timing parameters in DRAM clock cycles.
///
/// Defaults are the paper's Table II values for DDR4-2400R (4 GB, x8
/// devices) at a 1.2 GHz DRAM clock. `t_cwl` is 12 per the table; `t_refi`
/// and `t_rfc` follow the DDR4-2400 datasheet (refresh is off by default in
/// experiments, matching the paper's reporting, but can be enabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingParams {
    /// Burst length on the data bus (BL8 at DDR = 4 clock cycles).
    pub t_bl: u64,
    /// CAS-to-CAS, different bank group.
    pub t_ccds: u64,
    /// CAS-to-CAS, same bank group.
    pub t_ccdl: u64,
    /// Rank-to-rank data-bus switch penalty.
    pub t_rtrs: u64,
    /// Read CAS latency.
    pub t_cl: u64,
    /// Write CAS latency.
    pub t_cwl: u64,
    /// ACT to CAS.
    pub t_rcd: u64,
    /// PRE to ACT.
    pub t_rp: u64,
    /// ACT to PRE (minimum row-open time).
    pub t_ras: u64,
    /// ACT to ACT, same bank.
    pub t_rc: u64,
    /// Read to PRE.
    pub t_rtp: u64,
    /// Write-to-read turnaround, different bank group.
    pub t_wtrs: u64,
    /// Write-to-read turnaround, same bank group.
    pub t_wtrl: u64,
    /// Write recovery (end of write data to PRE).
    pub t_wr: u64,
    /// ACT-to-ACT, different bank group.
    pub t_rrds: u64,
    /// ACT-to-ACT, same bank group.
    pub t_rrdl: u64,
    /// Four-activate window.
    pub t_faw: u64,
    /// Average refresh interval (all-bank REF per rank).
    pub t_refi: u64,
    /// Refresh cycle time.
    pub t_rfc: u64,
}

impl Default for TimingParams {
    fn default() -> Self {
        Self {
            t_bl: 4,
            t_ccds: 4,
            t_ccdl: 6,
            t_rtrs: 2,
            t_cl: 16,
            t_cwl: 12,
            t_rcd: 16,
            t_rp: 16,
            t_ras: 39,
            t_rc: 55,
            t_rtp: 9,
            t_wtrs: 3,
            t_wtrl: 9,
            t_wr: 18,
            t_rrds: 4,
            t_rrdl: 6,
            t_faw: 26,
            t_refi: 9360,
            t_rfc: 313,
        }
    }
}

impl TimingParams {
    /// Read-to-write command gap on a shared data path.
    pub fn rtw(&self) -> u64 {
        self.t_cl + self.t_bl + 2 - self.t_cwl
    }

    /// Write-to-read command gap (same rank), by bank-group sameness.
    pub fn wtr(&self, same_bankgroup: bool) -> u64 {
        self.t_cwl + self.t_bl + if same_bankgroup { self.t_wtrl } else { self.t_wtrs }
    }

    /// CAS-to-CAS command gap by bank-group sameness.
    pub fn ccd(&self, same_bankgroup: bool) -> u64 {
        if same_bankgroup {
            self.t_ccdl
        } else {
            self.t_ccds
        }
    }

    /// ACT-to-ACT (different banks) by bank-group sameness.
    pub fn rrd(&self, same_bankgroup: bool) -> u64 {
        if same_bankgroup {
            self.t_rrdl
        } else {
            self.t_rrds
        }
    }
}

/// Full DRAM system configuration.
///
/// The clock and per-channel bus width used to be associated consts
/// (DDR4-2400 only); they are per-config fields now so DDR5/LPDDR/HBM-style
/// presets can flow through every seconds/bandwidth conversion. Integer Hz
/// keeps the config `Eq`/hashable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramConfig {
    pub geom: Geometry,
    pub timing: TimingParams,
    /// Issue all-bank refreshes every `t_refi` (off by default).
    pub refresh: bool,
    /// DRAM command clock in Hz — also the PIM clock (Table II: 1.2 GHz).
    pub clock_hz: u64,
    /// Peak data bandwidth of one channel in bytes per clock cycle.
    pub channel_bytes_per_cycle: u64,
}

impl Default for DramConfig {
    /// The paper's evaluated part: DDR4-2400R, Table II timing, Fig. 4a
    /// geometry, 64-bit bus (16 B/cycle at 1.2 GHz = 19.2 GB/s).
    fn default() -> Self {
        Self {
            geom: Geometry::default(),
            timing: TimingParams::default(),
            refresh: false,
            clock_hz: 1_200_000_000,
            channel_bytes_per_cycle: 16,
        }
    }
}

impl DramConfig {
    /// Convert DRAM cycles to seconds at this config's clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz as f64
    }

    /// Peak data bandwidth of one channel in GB/s.
    pub fn channel_bandwidth_gbps(&self) -> f64 {
        self.channel_bytes_per_cycle as f64 * self.clock_hz as f64 / 1e9
    }

    /// The paper's DDR4-2400 part (the default; spelled out for symmetry
    /// with the other presets).
    pub fn ddr4_2400() -> Self {
        Self::default()
    }

    /// DDR5-4800-style part: two independent 32-bit sub-channels per DIMM
    /// (modeled as 4 narrower channels at 8 B/cycle), 8 bank groups, BL16,
    /// tighter same-bank-group tCCD_L relative to the burst, and the DDR5
    /// REFab cadence (tREFI1 = 3.9 µs, tRFC1 ≈ 295 ns) at a 2.4 GHz
    /// command clock. Timing values are JEDEC-flavored approximations in
    /// 2.4 GHz cycles, pinned by `ddr5_preset_is_pinned`.
    pub fn ddr5_4800() -> Self {
        Self {
            geom: Geometry {
                channels: 4,
                ranks_per_channel: 1,
                bankgroups_per_rank: 8,
                banks_per_bankgroup: 4,
                rows_per_bank: 32768,
                blocks_per_row: 64,
            },
            timing: TimingParams {
                t_bl: 8, // BL16 on a 32-bit sub-channel = one 64 B block
                t_ccds: 8,
                t_ccdl: 12,
                t_rtrs: 2,
                t_cl: 40,
                t_cwl: 38,
                t_rcd: 39,
                t_rp: 39,
                t_ras: 77,
                t_rc: 116,
                t_rtp: 18,
                t_wtrs: 6,
                t_wtrl: 24,
                t_wr: 72,
                t_rrds: 8,
                t_rrdl: 12,
                t_faw: 32,
                t_refi: 9360,
                t_rfc: 708,
            },
            refresh: false,
            clock_hz: 2_400_000_000,
            channel_bytes_per_cycle: 8,
        }
    }

    /// LPDDR5-6400-style part: x16 channels at 6.4 Gb/s/pin (12.8 GB/s =
    /// 8 B/cycle at an effective 1.6 GHz command clock), BL16, relaxed
    /// core timing, tFAW = 20 ns. Pinned by `lpddr5_preset_is_pinned`.
    pub fn lpddr5_6400() -> Self {
        Self {
            geom: Geometry {
                channels: 2,
                ranks_per_channel: 1,
                bankgroups_per_rank: 4,
                banks_per_bankgroup: 4,
                rows_per_bank: 65536,
                blocks_per_row: 128,
            },
            timing: TimingParams {
                t_bl: 8,
                t_ccds: 8,
                t_ccdl: 10,
                t_rtrs: 4,
                t_cl: 29,
                t_cwl: 14,
                t_rcd: 29,
                t_rp: 29,
                t_ras: 67,
                t_rc: 96,
                t_rtp: 12,
                t_wtrs: 10,
                t_wtrl: 16,
                t_wr: 55,
                t_rrds: 8,
                t_rrdl: 10,
                t_faw: 32,
                t_refi: 6240,
                t_rfc: 448,
            },
            refresh: false,
            clock_hz: 1_600_000_000,
            channel_bytes_per_cycle: 8,
        }
    }

    /// HBM2-style part: wide 128-bit channels (32 B/cycle at 1 GHz =
    /// 32 GB/s each), short bursts (one block in 2 cycles), low absolute
    /// latency in cycles. Pinned by `hbm2_preset_is_pinned`.
    pub fn hbm2() -> Self {
        Self {
            geom: Geometry {
                channels: 4,
                ranks_per_channel: 1,
                bankgroups_per_rank: 4,
                banks_per_bankgroup: 4,
                rows_per_bank: 65536,
                blocks_per_row: 64,
            },
            timing: TimingParams {
                t_bl: 2,
                t_ccds: 2,
                t_ccdl: 4,
                t_rtrs: 2,
                t_cl: 14,
                t_cwl: 7,
                t_rcd: 14,
                t_rp: 14,
                t_ras: 34,
                t_rc: 48,
                t_rtp: 5,
                t_wtrs: 4,
                t_wtrl: 8,
                t_wr: 16,
                t_rrds: 4,
                t_rrdl: 6,
                t_faw: 16,
                t_refi: 3900,
                t_rfc: 260,
            },
            refresh: false,
            clock_hz: 1_000_000_000,
            channel_bytes_per_cycle: 32,
        }
    }

    /// Preset names accepted by [`DramConfig::by_name`], in display order.
    pub const PRESET_NAMES: [&'static str; 4] = ["ddr4", "ddr5", "lpddr5", "hbm2"];

    /// Look up a preset by name (see [`DramConfig::PRESET_NAMES`]).
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "ddr4" | "ddr4-2400" => Some(Self::ddr4_2400()),
            "ddr5" | "ddr5-4800" => Some(Self::ddr5_4800()),
            "lpddr5" | "lpddr5-6400" => Some(Self::lpddr5_6400()),
            "hbm2" | "hbm" => Some(Self::hbm2()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_ii() {
        let t = TimingParams::default();
        assert_eq!(t.t_bl, 4);
        assert_eq!(t.t_ccds, 4);
        assert_eq!(t.t_ccdl, 6);
        assert_eq!(t.t_rtrs, 2);
        assert_eq!(t.t_cl, 16);
        assert_eq!(t.t_rcd, 16);
        assert_eq!(t.t_rp, 16);
        assert_eq!(t.t_ras, 39);
        assert_eq!(t.t_rc, 55);
        assert_eq!(t.t_rtp, 9);
        assert_eq!(t.t_wtrs, 3);
        assert_eq!(t.t_wtrl, 9);
        assert_eq!(t.t_wr, 18);
        assert_eq!(t.t_rrds, 4);
        assert_eq!(t.t_rrdl, 6);
        assert_eq!(t.t_faw, 26);
    }

    #[test]
    fn derived_gaps_are_sane() {
        let t = TimingParams::default();
        assert_eq!(t.rtw(), 16 + 4 + 2 - 12);
        assert_eq!(t.wtr(true), 12 + 4 + 9);
        assert_eq!(t.wtr(false), 12 + 4 + 3);
        assert!(t.ccd(true) > t.ccd(false));
        assert!(t.rrd(true) > t.rrd(false));
    }

    #[test]
    fn channel_bandwidth_is_ddr4_2400() {
        // 16 B/cycle at 1.2 GHz = 19.2 GB/s per channel.
        let cfg = DramConfig::default();
        assert_eq!(cfg.clock_hz, 1_200_000_000);
        assert_eq!(cfg.channel_bytes_per_cycle, 16);
        assert!((cfg.channel_bandwidth_gbps() - 19.2).abs() < 1e-9);
        assert!((cfg.cycles_to_seconds(1_200_000_000) - 1.0).abs() < 1e-12);
        assert_eq!(cfg, DramConfig::ddr4_2400());
    }

    /// Every preset must satisfy the structural relations the timing model
    /// relies on (no u64 underflow in `rtw`, same-BG gaps ≥ different-BG).
    fn check_invariants(cfg: &DramConfig) {
        cfg.geom.validate();
        let t = &cfg.timing;
        assert!(t.t_cl + t.t_bl + 2 >= t.t_cwl, "rtw underflows");
        assert!(t.ccd(true) >= t.ccd(false));
        assert!(t.rrd(true) >= t.rrd(false));
        assert!(t.wtr(true) >= t.wtr(false));
        assert!(t.t_rc >= t.t_ras);
        assert!(t.t_faw >= t.rrd(false));
        assert!(cfg.clock_hz > 0 && cfg.channel_bytes_per_cycle > 0);
        // One 64 B block must fit the burst the timing charges for it.
        assert!(t.t_bl * cfg.channel_bytes_per_cycle >= 64);
        // Arena layout (weight 1<<30, buffers 1<<33..1<<33+2<<31) must not
        // alias through the mapping's address range.
        assert!(cfg.geom.capacity_bytes() >= 16 << 30, "arenas would alias");
    }

    #[test]
    fn ddr5_preset_is_pinned() {
        let cfg = DramConfig::ddr5_4800();
        check_invariants(&cfg);
        assert_eq!(cfg.clock_hz, 2_400_000_000);
        assert_eq!(cfg.channel_bytes_per_cycle, 8);
        assert!((cfg.channel_bandwidth_gbps() - 19.2).abs() < 1e-9);
        let g = cfg.geom;
        assert_eq!((g.channels, g.ranks_per_channel), (4, 1));
        assert_eq!((g.bankgroups_per_rank, g.banks_per_bankgroup), (8, 4));
        assert_eq!((g.rows_per_bank, g.blocks_per_row), (32768, 64));
        let t = cfg.timing;
        assert_eq!(
            (t.t_bl, t.t_ccds, t.t_ccdl, t.t_rtrs, t.t_cl, t.t_cwl),
            (8, 8, 12, 2, 40, 38)
        );
        assert_eq!((t.t_rcd, t.t_rp, t.t_ras, t.t_rc, t.t_rtp), (39, 39, 77, 116, 18));
        assert_eq!((t.t_wtrs, t.t_wtrl, t.t_wr), (6, 24, 72));
        assert_eq!((t.t_rrds, t.t_rrdl, t.t_faw), (8, 12, 32));
        assert_eq!((t.t_refi, t.t_rfc), (9360, 708));
    }

    #[test]
    fn lpddr5_preset_is_pinned() {
        let cfg = DramConfig::lpddr5_6400();
        check_invariants(&cfg);
        assert_eq!(cfg.clock_hz, 1_600_000_000);
        assert_eq!(cfg.channel_bytes_per_cycle, 8);
        assert!((cfg.channel_bandwidth_gbps() - 12.8).abs() < 1e-9);
        let g = cfg.geom;
        assert_eq!((g.channels, g.ranks_per_channel), (2, 1));
        assert_eq!((g.bankgroups_per_rank, g.banks_per_bankgroup), (4, 4));
        assert_eq!((g.rows_per_bank, g.blocks_per_row), (65536, 128));
        let t = cfg.timing;
        assert_eq!(
            (t.t_bl, t.t_ccds, t.t_ccdl, t.t_rtrs, t.t_cl, t.t_cwl),
            (8, 8, 10, 4, 29, 14)
        );
        assert_eq!((t.t_rcd, t.t_rp, t.t_ras, t.t_rc, t.t_rtp), (29, 29, 67, 96, 12));
        assert_eq!((t.t_wtrs, t.t_wtrl, t.t_wr), (10, 16, 55));
        assert_eq!((t.t_rrds, t.t_rrdl, t.t_faw), (8, 10, 32));
        assert_eq!((t.t_refi, t.t_rfc), (6240, 448));
    }

    #[test]
    fn hbm2_preset_is_pinned() {
        let cfg = DramConfig::hbm2();
        check_invariants(&cfg);
        assert_eq!(cfg.clock_hz, 1_000_000_000);
        assert_eq!(cfg.channel_bytes_per_cycle, 32);
        assert!((cfg.channel_bandwidth_gbps() - 32.0).abs() < 1e-9);
        let g = cfg.geom;
        assert_eq!((g.channels, g.ranks_per_channel), (4, 1));
        assert_eq!((g.bankgroups_per_rank, g.banks_per_bankgroup), (4, 4));
        assert_eq!((g.rows_per_bank, g.blocks_per_row), (65536, 64));
        let t = cfg.timing;
        assert_eq!(
            (t.t_bl, t.t_ccds, t.t_ccdl, t.t_rtrs, t.t_cl, t.t_cwl),
            (2, 2, 4, 2, 14, 7)
        );
        assert_eq!((t.t_rcd, t.t_rp, t.t_ras, t.t_rc, t.t_rtp), (14, 14, 34, 48, 5));
        assert_eq!((t.t_wtrs, t.t_wtrl, t.t_wr), (4, 8, 16));
        assert_eq!((t.t_rrds, t.t_rrdl, t.t_faw), (4, 6, 16));
        assert_eq!((t.t_refi, t.t_rfc), (3900, 260));
    }

    #[test]
    fn preset_lookup_covers_every_name() {
        for name in DramConfig::PRESET_NAMES {
            assert!(DramConfig::by_name(name).is_some(), "{name}");
        }
        assert_eq!(DramConfig::by_name("ddr4"), Some(DramConfig::default()));
        assert!(DramConfig::by_name("ddr6").is_none());
    }
}
