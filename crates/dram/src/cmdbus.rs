//! The per-channel DDR command bus as a serialized slot resource.
//!
//! The command bus matters in two places in the paper:
//! * **PEI** issues one command packet per cache block, so PIM throughput is
//!   capped by command-slot supply ("performance will be eventually limited
//!   by the command bandwidth", §VI).
//! * **Fine-grained kernels (eCHO)** launch so often that, when a colocated
//!   CPU also streams memory commands, launch packets queue behind CPU
//!   traffic and PIMs starve (§V-G, Fig. 13). StepStone's long-running
//!   kernels need almost no slots, which is the entire point of the AGEN
//!   hardware.
//!
//! Slots are granted first-come-first-served; each DRAM command the host
//! issues takes one slot, and PIM control packets take a configurable number
//! of consecutive slots.

use serde::{Deserialize, Serialize};

/// Per-channel slot counters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CommandBus {
    next_free: Vec<u64>,
    /// Total slots consumed per channel (utilization accounting).
    pub slots_used: Vec<u64>,
}

impl CommandBus {
    pub fn new(channels: usize) -> Self {
        Self { next_free: vec![0; channels], slots_used: vec![0; channels] }
    }

    pub fn channels(&self) -> usize {
        self.next_free.len()
    }

    /// Acquire `n` consecutive command slots on `channel` at or after `t`.
    /// Returns the cycle after the last slot (when the packet has fully
    /// transferred).
    pub fn acquire(&mut self, channel: usize, t: u64, n: u64) -> u64 {
        let start = t.max(self.next_free[channel]);
        let end = start + n;
        self.next_free[channel] = end;
        self.slots_used[channel] += n;
        end
    }

    /// Earliest time `n` slots could start on `channel` (non-committing).
    pub fn probe(&self, channel: usize, t: u64) -> u64 {
        t.max(self.next_free[channel])
    }

    /// Adopt `channel`'s slot state from `other` (a clone of `self`
    /// advanced independently). Slots are per-channel, so per-channel
    /// simulation followed by adoption is exact.
    pub fn adopt_channel(&mut self, other: &CommandBus, channel: usize) {
        self.next_free[channel] = other.next_free[channel];
        self.slots_used[channel] = other.slots_used[channel];
    }

    /// Utilization of a channel's command bus over `[0, horizon)`.
    pub fn utilization(&self, channel: usize, horizon: u64) -> f64 {
        if horizon == 0 {
            return 0.0;
        }
        self.slots_used[channel] as f64 / horizon as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_serialize_fcfs() {
        let mut bus = CommandBus::new(2);
        assert_eq!(bus.acquire(0, 0, 4), 4);
        assert_eq!(bus.acquire(0, 0, 4), 8, "second packet queues");
        assert_eq!(bus.acquire(0, 20, 2), 22, "idle gap is not back-filled");
        assert_eq!(bus.acquire(1, 0, 4), 4, "channels are independent");
        assert_eq!(bus.slots_used[0], 10);
    }

    #[test]
    fn utilization_accounting() {
        let mut bus = CommandBus::new(1);
        bus.acquire(0, 0, 50);
        assert!((bus.utilization(0, 100) - 0.5).abs() < 1e-12);
        assert_eq!(bus.utilization(0, 0), 0.0);
    }
}
