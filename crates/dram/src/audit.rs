//! Command-trace auditor: replays a recorded command stream and re-checks
//! every Table II constraint pairwise, independently of the fast-path logic
//! in [`crate::timing::TimingState`]. Used by tests (including property
//! tests) to guarantee the simulator never emits an illegal schedule.

use crate::config::TimingParams;
use crate::timing::Port;
use stepstone_addr::{DramCoord, Geometry};

/// One issued DRAM command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CmdRecord {
    pub time: u64,
    pub kind: CmdKind,
    pub coord: DramCoord,
    pub port: Port,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmdKind {
    Act,
    Pre,
    Read,
    Write,
}

/// A recorded command trace.
#[derive(Debug, Clone, Default)]
pub struct CommandTrace {
    pub records: Vec<CmdRecord>,
}

impl CommandTrace {
    pub fn push(&mut self, r: CmdRecord) {
        self.records.push(r);
    }

    /// Validate all pairwise constraints; returns the list of violations as
    /// human-readable strings (empty = legal schedule).
    pub fn validate(&self, geom: &Geometry, tp: &TimingParams) -> Vec<String> {
        let mut sorted = self.records.clone();
        sorted.sort_by_key(|r| r.time);
        let mut violations = Vec::new();
        let mut check = |ok: bool, msg: String| {
            if !ok {
                violations.push(msg);
            }
        };
        for (j, b) in sorted.iter().enumerate() {
            // A generous window: no Table II constraint spans more than
            // tRC + tRFC cycles backwards.
            let horizon = b.time.saturating_sub(tp.t_rc + tp.t_rfc + 64);
            let mut acts_in_faw = 0;
            for a in sorted[..j].iter().rev() {
                if a.time < horizon {
                    break;
                }
                let dt = b.time - a.time;
                let same_bank = a.coord.bank_index(geom) == b.coord.bank_index(geom);
                let same_rank = a.coord.rank_index(geom) == b.coord.rank_index(geom);
                let same_bg = a.coord.bankgroup_index(geom) == b.coord.bankgroup_index(geom);
                use CmdKind::*;
                if same_bank {
                    match (a.kind, b.kind) {
                        (Act, Act) => check(dt >= tp.t_rc, format!("tRC {dt}")),
                        (Act, Pre) => check(dt >= tp.t_ras, format!("tRAS {dt}")),
                        (Pre, Act) => check(dt >= tp.t_rp, format!("tRP {dt}")),
                        (Act, Read) | (Act, Write) => {
                            check(dt >= tp.t_rcd, format!("tRCD {dt}"))
                        }
                        (Read, Pre) => check(dt >= tp.t_rtp, format!("tRTP {dt}")),
                        (Write, Pre) => check(
                            dt >= tp.t_cwl + tp.t_bl + tp.t_wr,
                            format!("tWR {dt}"),
                        ),
                        _ => {}
                    }
                }
                if same_rank && a.kind == CmdKind::Act && b.kind == CmdKind::Act && !same_bank {
                    let need = tp.rrd(same_bg);
                    check(dt >= need, format!("tRRD {dt} (same_bg={same_bg})"));
                }
                if same_rank && a.kind == CmdKind::Act && b.kind == CmdKind::Act {
                    acts_in_faw += u64::from(dt < tp.t_faw);
                    check(acts_in_faw < 4, format!("tFAW window at {}", b.time));
                }
                // CAS-to-CAS constraints apply within one datapath.
                let same_path = a.port == b.port
                    && match b.port {
                        Port::Channel => a.coord.channel == b.coord.channel,
                        Port::RankInternal => same_rank,
                        Port::BgInternal => same_bg,
                    };
                let a_cas = matches!(a.kind, Read | Write);
                let b_cas = matches!(b.kind, Read | Write);
                if same_path && a_cas && b_cas {
                    let need = if same_bg { tp.t_ccdl } else { tp.t_ccds };
                    check(dt >= need, format!("tCCD {dt} (same_bg={same_bg})"));
                    if same_rank {
                        match (a.kind, b.kind) {
                            (Write, Read) => {
                                check(dt >= tp.wtr(same_bg), format!("tWTR {dt}"))
                            }
                            (Read, Write) => check(dt >= tp.rtw(), format!("tRTW {dt}")),
                            _ => {}
                        }
                    }
                    // Data-bus overlap (+ tRTRS between ranks on the shared
                    // channel bus).
                    let burst = |r: &CmdRecord| {
                        let lat =
                            if r.kind == Read { tp.t_cl } else { tp.t_cwl };
                        (r.time + lat, r.time + lat + tp.t_bl)
                    };
                    let (as_, ae) = burst(a);
                    let (bs, _be) = burst(b);
                    let gap = if b.port == Port::Channel && !same_rank { tp.t_rtrs } else { 0 };
                    // Bursts are ordered by CAS time within a path.
                    if bs >= as_ {
                        check(bs >= ae + gap, format!("bus overlap gap={}", bs as i64 - ae as i64));
                    }
                }
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramConfig;

    fn rec(time: u64, kind: CmdKind, bank: u32, row: u32, col: u32) -> CmdRecord {
        CmdRecord {
            time,
            kind,
            coord: DramCoord { channel: 0, rank: 0, bankgroup: 0, bank, row, col },
            port: Port::Channel,
        }
    }

    #[test]
    fn legal_sequence_passes() {
        let cfg = DramConfig::default();
        let tp = cfg.timing;
        let mut t = CommandTrace::default();
        t.push(rec(0, CmdKind::Act, 0, 0, 0));
        t.push(rec(tp.t_rcd, CmdKind::Read, 0, 0, 0));
        t.push(rec(tp.t_rcd + tp.t_ccdl, CmdKind::Read, 0, 0, 1));
        assert!(t.validate(&cfg.geom, &tp).is_empty());
    }

    #[test]
    fn rcd_violation_detected() {
        let cfg = DramConfig::default();
        let mut t = CommandTrace::default();
        t.push(rec(0, CmdKind::Act, 0, 0, 0));
        t.push(rec(3, CmdKind::Read, 0, 0, 0));
        let v = t.validate(&cfg.geom, &cfg.timing);
        assert!(v.iter().any(|s| s.contains("tRCD")), "{v:?}");
    }

    #[test]
    fn ccdl_violation_detected() {
        let cfg = DramConfig::default();
        let tp = cfg.timing;
        let mut t = CommandTrace::default();
        t.push(rec(0, CmdKind::Act, 0, 0, 0));
        t.push(rec(tp.t_rcd, CmdKind::Read, 0, 0, 0));
        t.push(rec(tp.t_rcd + tp.t_ccds, CmdKind::Read, 0, 0, 1)); // same BG: needs tCCDL
        let v = t.validate(&cfg.geom, &tp);
        assert!(v.iter().any(|s| s.contains("tCCD")), "{v:?}");
    }

    #[test]
    fn faw_violation_detected() {
        let cfg = DramConfig::default();
        let tp = cfg.timing;
        let mut t = CommandTrace::default();
        for i in 0..5u32 {
            // 5 ACTs to distinct banks spaced at tRRDS only.
            let c = DramCoord {
                channel: 0,
                rank: 0,
                bankgroup: i % 4,
                bank: i / 4,
                row: 0,
                col: 0,
            };
            t.push(CmdRecord {
                time: i as u64 * tp.t_rrds,
                kind: CmdKind::Act,
                coord: c,
                port: Port::Channel,
            });
        }
        let v = t.validate(&cfg.geom, &tp);
        assert!(v.iter().any(|s| s.contains("tFAW")), "{v:?}");
    }
}
