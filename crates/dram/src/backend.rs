//! The engine↔DRAM boundary: a pluggable memory-backend trait.
//!
//! [`MemoryBackend`] is cut at the exact surface the engine consumes from
//! [`TimingState`] today — **execute-and-stall**, never latency-query. The
//! engine asks the model to *perform* each access (or closed-form run) and
//! learns when the data moved; it never asks "how long would this take?"
//! and then advances its own clock. The DRAMsim3-integration postmortems
//! that seeded this design (SNIPPETS.md) found latency-query interfaces
//! over stateful memory models to be wrong by construction: the answer
//! changes as soon as any other access commits. Every method here either
//! commits state (`access`, `access_run_stream`, `adopt_channel`) or is an
//! explicitly non-committing estimate used only for FR-FCFS front
//! selection (`probe`).
//!
//! Implementors:
//! * [`TimingState`] — the exact Table-II model (default; cycle-exact).
//! * [`crate::analytic::AnalyticState`] — closed-form row-hit/row-miss
//!   costing with O(1) state per bank/path, for design-space sweeps.
//!
//! The trait deliberately keeps the generic-closure run-streaming methods
//! (`access_run_stream` is generic over `F`, not `dyn FnMut`): the engine
//! is generic over `B: MemoryBackend`, so everything monomorphizes and the
//! default exact path compiles to the same code as before the trait
//! existed.

use serde::{Deserialize, Serialize};
use stepstone_addr::DramCoord;

use crate::audit::CommandTrace;
use crate::config::DramConfig;
use crate::timing::{BlockTiming, CasKind, DramStats, Port, RunReply, TimingState};

/// Which memory-model tier a simulation runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BackendKind {
    /// The exact cycle-level Table-II model ([`TimingState`]).
    #[default]
    Exact,
    /// The closed-form analytic fast model
    /// ([`crate::analytic::AnalyticState`] plus the analytic GEMM executor
    /// in `stepstone-core`).
    Analytic,
}

impl BackendKind {
    /// Stable lowercase name (CLI flags, report tags, JSON sections).
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::Exact => "exact",
            BackendKind::Analytic => "analytic",
        }
    }

    /// Parse a CLI/env selector.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "exact" | "timing" | "ddr" => Some(BackendKind::Exact),
            "analytic" | "fast" => Some(BackendKind::Analytic),
            _ => None,
        }
    }
}

/// A DRAM timing model the engine can drive.
///
/// Semantics contract (shared with [`TimingState`], which is the reference
/// implementation — the analytic model is differentially validated against
/// it by `crates/bench/tests/engine_matrix.rs`):
///
/// * `access` commits one block and returns its [`BlockTiming`];
///   `probe` is the non-committing estimate of the same access's data
///   start, used by FR-FCFS front selection.
/// * `access_run_stream` commits a whole same-(bank,row,direction) run,
///   calling `next` after each block; the reply may jump the settled tail
///   in closed form ([`RunReply::Jump`] with cadence `d ≥ cas_step()`).
/// * `adopt_channel` copies channel `ch`'s state from an independently
///   advanced clone — channels must share no timing state (this is what
///   makes per-channel parallel phase execution exact). Statistics are
///   *not* adopted; the caller merges them.
pub trait MemoryBackend: Clone + Send + Sync {
    fn config(&self) -> &DramConfig;

    /// Aggregate statistics committed so far.
    fn stats(&self) -> &DramStats;
    fn stats_mut(&mut self) -> &mut DramStats;

    /// Start recording issued commands (auditing); models without a
    /// command stream keep this a no-op and report `trace_enabled(): false`
    /// so the engine never takes trace-dependent paths.
    fn enable_trace(&mut self);
    fn take_trace(&mut self) -> Option<CommandTrace>;
    fn trace_enabled(&self) -> bool;

    /// CAS-to-CAS cadence floor of a steady same-row run; lower bound on
    /// the `d` of a [`RunReply::Jump`].
    fn cas_step(&self) -> u64;

    /// Whether `coord`'s row is open in its bank right now.
    fn row_open(&self, c: &DramCoord) -> bool;

    /// Non-committing estimate of when the data of this access would start.
    fn probe(&self, coord: DramCoord, kind: CasKind, port: Port, not_before: u64) -> u64;

    /// Execute one block access, committing all state it implies.
    fn access(
        &mut self,
        coord: DramCoord,
        kind: CasKind,
        port: Port,
        not_before: u64,
    ) -> BlockTiming;

    /// Execute a same-(bank,row,direction) run: issue `first`, then keep
    /// consuming replies from `next` (fed the just-issued block's timing)
    /// until it returns [`RunReply::End`]. Returns the number of blocks
    /// issued (≥ 1).
    fn access_run_stream<F: FnMut(BlockTiming) -> RunReply>(
        &mut self,
        first: DramCoord,
        kind: CasKind,
        port: Port,
        not_before: u64,
        next: &mut F,
    ) -> u64;

    /// Block-at-a-time run driver (see [`TimingState::access_run_with`]);
    /// provided in terms of `access_run_stream`.
    fn access_run_with<F: FnMut(BlockTiming) -> Option<(DramCoord, u64)>>(
        &mut self,
        first: DramCoord,
        kind: CasKind,
        port: Port,
        not_before: u64,
        next: &mut F,
    ) -> u64 {
        self.access_run_stream(first, kind, port, not_before, &mut |bt| match next(bt) {
            Some((coord, nb)) => RunReply::Block(coord, nb),
            None => RunReply::End,
        })
    }

    /// Adopt channel `ch`'s timing state from `other` (a clone advanced
    /// independently). Statistics are not adopted.
    fn adopt_channel(&mut self, other: &Self, ch: u32);

    /// Whether the closed-form [`RunReply::Jump`] tail (PR 6's run-granular
    /// fast path) is exact for this model. The engine's span/run fast paths
    /// are *proved* against the exact model's FR-FCFS + steady-state
    /// recurrence; a backend whose cost model breaks those proofs must
    /// return `false` to force per-block execution.
    fn supports_closed_form_runs(&self) -> bool {
        true
    }
}

impl MemoryBackend for TimingState {
    fn config(&self) -> &DramConfig {
        TimingState::config(self)
    }

    fn stats(&self) -> &DramStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut DramStats {
        &mut self.stats
    }

    fn enable_trace(&mut self) {
        TimingState::enable_trace(self)
    }

    fn take_trace(&mut self) -> Option<CommandTrace> {
        TimingState::take_trace(self)
    }

    fn trace_enabled(&self) -> bool {
        TimingState::trace_enabled(self)
    }

    fn cas_step(&self) -> u64 {
        TimingState::cas_step(self)
    }

    fn row_open(&self, c: &DramCoord) -> bool {
        TimingState::row_open(self, c)
    }

    fn probe(&self, coord: DramCoord, kind: CasKind, port: Port, not_before: u64) -> u64 {
        TimingState::probe(self, coord, kind, port, not_before)
    }

    fn access(
        &mut self,
        coord: DramCoord,
        kind: CasKind,
        port: Port,
        not_before: u64,
    ) -> BlockTiming {
        TimingState::access(self, coord, kind, port, not_before)
    }

    fn access_run_stream<F: FnMut(BlockTiming) -> RunReply>(
        &mut self,
        first: DramCoord,
        kind: CasKind,
        port: Port,
        not_before: u64,
        next: &mut F,
    ) -> u64 {
        TimingState::access_run_stream(self, first, kind, port, not_before, next)
    }

    fn adopt_channel(&mut self, other: &Self, ch: u32) {
        TimingState::adopt_channel(self, other, ch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The engine is generic over `B: MemoryBackend`; this pins the exact
    /// model's trait surface to the inherent one (same results through
    /// either dispatch path).
    fn drive<B: MemoryBackend>(b: &mut B) -> (u64, u64) {
        let c = DramCoord { channel: 0, rank: 0, bankgroup: 0, bank: 0, row: 7, col: 0 };
        let bt = b.access(c, CasKind::Read, Port::Channel, 0);
        let probed =
            b.probe(DramCoord { col: 1, ..c }, CasKind::Read, Port::Channel, bt.cas_at);
        (bt.data_end, probed)
    }

    #[test]
    fn trait_dispatch_matches_inherent_calls() {
        let cfg = DramConfig::default();
        let mut via_trait = TimingState::new(cfg);
        let (end_t, probe_t) = drive(&mut via_trait);

        let mut direct = TimingState::new(cfg);
        let c = DramCoord { channel: 0, rank: 0, bankgroup: 0, bank: 0, row: 7, col: 0 };
        let bt = TimingState::access(&mut direct, c, CasKind::Read, Port::Channel, 0);
        let probed = TimingState::probe(
            &direct,
            DramCoord { col: 1, ..c },
            CasKind::Read,
            Port::Channel,
            bt.cas_at,
        );
        assert_eq!((end_t, probe_t), (bt.data_end, probed));
        assert_eq!(via_trait.stats().reads, 1);
        assert!(via_trait.supports_closed_form_runs());
        assert!(MemoryBackend::row_open(&via_trait, &c));
    }

    #[test]
    fn backend_kind_names_round_trip() {
        for k in [BackendKind::Exact, BackendKind::Analytic] {
            assert_eq!(BackendKind::by_name(k.name()), Some(k));
        }
        assert_eq!(BackendKind::default(), BackendKind::Exact);
        assert!(BackendKind::by_name("dramsim").is_none());
    }
}
