//! Interface for concurrent host (CPU) memory traffic injected alongside
//! PIM execution — the colocation scenario of paper §V-G / Fig. 13.

/// One host memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficReq {
    /// Physical address of the cache block.
    pub pa: u64,
    pub write: bool,
    /// Cycles after the previous request's issue slot that this one becomes
    /// ready at the memory controller.
    pub gap: u64,
}

/// Reborrow an optional traffic source for a shorter scope (works around
/// trait-object lifetime invariance under `&mut` inside `Option`).
pub fn reborrow<'s>(
    t: &'s mut Option<&mut dyn TrafficSource>,
) -> Option<&'s mut dyn TrafficSource> {
    match t {
        Some(x) => Some(&mut **x),
        None => None,
    }
}

/// A generator of host memory traffic. Implementations live in
/// `stepstone-workloads` (SPEC-2017-like mixes).
pub trait TrafficSource {
    /// Produce the next request, or `None` if the stream is exhausted.
    fn next_req(&mut self) -> Option<TrafficReq>;

    /// Command-bus slots each request consumes (ACT/CAS/PRE share).
    fn slots_per_request(&self) -> u64 {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(Vec<TrafficReq>);
    impl TrafficSource for Fixed {
        fn next_req(&mut self) -> Option<TrafficReq> {
            self.0.pop()
        }
    }

    #[test]
    fn trait_object_usable() {
        let mut src: Box<dyn TrafficSource> =
            Box::new(Fixed(vec![TrafficReq { pa: 64, write: false, gap: 3 }]));
        assert_eq!(src.slots_per_request(), 2);
        assert!(src.next_req().is_some());
        assert!(src.next_req().is_none());
    }
}
