//! The analytic fast memory tier: closed-form row-hit/row-miss costing.
//!
//! [`AnalyticState`] implements [`MemoryBackend`]
//! with O(1) state per bank/rank/path and straight-line arithmetic per
//! access — no FR-FCFS interplay, no turnaround bookkeeping, no refresh
//! machinery. It keeps only what closed-form costing needs:
//!
//! * per **bank**: the open row and a tRC floor on the next activate —
//!   enough to classify hit/miss and charge `tRP + tRCD` per miss;
//! * per **rank**: a four-entry activate ring — the tFAW activate
//!   throughput bound;
//! * per **path** (same channel/rank-internal/BG-internal layout as the
//!   exact model): the last CAS, its bank group, and data-bus occupancy —
//!   the steady-state cadence `max(tCCD, tBL)`.
//!
//! The model is deliberately *consistent* with the exact tier where the
//! engine relies on structure: a steady same-bank-group, same-row run
//! advances at exactly [`cas_step`](crate::MemoryBackend::cas_step) per
//! block (so the run-granular `RunReply::Jump` cadence is well-defined),
//! and `probe` is the non-committing image of `access`. Everything else —
//! cross-rank turnarounds, write-to-read penalties, refresh — is dropped;
//! that is the speed/accuracy trade the tier exists for. The differential
//! harness (`crates/bench/tests/engine_matrix.rs`) pins the resulting
//! error band and checks latency *ordering* against the exact model.
//!
//! The production analytic path for whole GEMMs does not even drive the
//! engine: `stepstone-core` costs phases per region/cell in closed form
//! (see `flow::simulate_pow2_gemm_analytic`). `AnalyticState` exists so
//! the *same generic engine* can execute on the analytic model for
//! cross-validation, and for traffic patterns with no closed form.

use stepstone_addr::DramCoord;

use crate::audit::CommandTrace;
use crate::backend::MemoryBackend;
use crate::config::DramConfig;
use crate::timing::{BlockTiming, CasKind, DramStats, Port, RunReply};

/// Store `t` such that 0 means "never".
fn stamp(t: u64) -> u64 {
    t + 1
}

/// Earliest time ≥ `stamped + gap` (0-safe).
fn after(stamped: u64, gap: u64) -> u64 {
    if stamped == 0 {
        0
    } else {
        stamped - 1 + gap
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct ABank {
    open_row: Option<u32>,
    /// tRC floor: earliest next activate.
    next_act: u64,
    /// tRAS/tRTP/tWR floor: earliest next precharge. Anchors the row-miss
    /// penalty to the bank's last transfer instead of letting the CAS
    /// cadence swallow it.
    next_pre: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct ARank {
    /// Activate times of the last four ACTs (ring buffer) — tFAW window.
    acts: [u64; 4],
    head: u8,
}

#[derive(Debug, Clone, Copy, Default)]
struct APath {
    /// Stamped time of the last CAS on this path (0 = never).
    last_cas: u64,
    /// Bank group of that CAS (same-BG cadence is the longer tCCD_L).
    last_bg: u32,
    /// One past the last data cycle on this path's bus.
    bus_free: u64,
}

/// Closed-form analytic DRAM model (the `BackendKind::Analytic` tier).
#[derive(Debug, Clone)]
pub struct AnalyticState {
    cfg: DramConfig,
    pub stats: DramStats,
    banks: Vec<ABank>,
    ranks: Vec<ARank>,
    /// `[channels]` channel paths, then `[channels×ranks]` rank-internal,
    /// then `[channels×ranks×bgs]` BG-internal (same layout as the exact
    /// model, so `adopt_channel` is a channel-major slice copy).
    paths: Vec<APath>,
}

impl AnalyticState {
    pub fn new(cfg: DramConfig) -> Self {
        let g = cfg.geom;
        let n_ranks = (g.channels * g.ranks_per_channel) as usize;
        let n_paths = g.channels as usize
            + n_ranks
            + (g.channels * g.ranks_per_channel * g.bankgroups_per_rank) as usize;
        Self {
            cfg,
            stats: DramStats::default(),
            banks: vec![ABank::default(); g.total_banks() as usize],
            ranks: vec![ARank::default(); n_ranks],
            paths: vec![APath::default(); n_paths],
        }
    }

    fn path_index(&self, port: Port, c: &DramCoord) -> usize {
        let g = &self.cfg.geom;
        match port {
            Port::Channel => c.channel as usize,
            Port::RankInternal => g.channels as usize + c.rank_index(g),
            Port::BgInternal => {
                g.channels as usize
                    + (g.channels * g.ranks_per_channel) as usize
                    + c.bankgroup_index(g)
            }
        }
    }

    fn latency(&self, kind: CasKind) -> u64 {
        match kind {
            CasKind::Read => self.cfg.timing.t_cl,
            CasKind::Write => self.cfg.timing.t_cwl,
        }
    }

    /// Earliest CAS for `c` at or after `from`, given path cadence and bus
    /// occupancy. Non-committing.
    fn cas_floor(&self, c: &DramCoord, kind: CasKind, port: Port, from: u64) -> u64 {
        let tp = &self.cfg.timing;
        let path = &self.paths[self.path_index(port, c)];
        let mut at = from;
        at = at.max(after(path.last_cas, tp.ccd(path.last_bg == c.bankgroup)));
        at = at.max(path.bus_free.saturating_sub(self.latency(kind)));
        at.max(after(path.last_cas, tp.t_bl))
    }

    /// Earliest CAS assuming the row must be opened first (row miss /
    /// closed bank). Non-committing; ignores tFAW (probe-side only).
    fn miss_cas_floor(&self, c: &DramCoord, t: u64) -> u64 {
        let tp = &self.cfg.timing;
        let bank = &self.banks[c.bank_index(&self.cfg.geom)];
        let act_at = if bank.open_row.is_some() {
            (t.max(bank.next_pre) + tp.t_rp).max(bank.next_act)
        } else {
            t.max(bank.next_act)
        };
        act_at + tp.t_rcd
    }
}

impl MemoryBackend for AnalyticState {
    fn config(&self) -> &DramConfig {
        &self.cfg
    }

    fn stats(&self) -> &DramStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut DramStats {
        &mut self.stats
    }

    /// The analytic tier has no command stream to record.
    fn enable_trace(&mut self) {}

    fn take_trace(&mut self) -> Option<CommandTrace> {
        None
    }

    fn trace_enabled(&self) -> bool {
        false
    }

    fn cas_step(&self) -> u64 {
        let tp = self.cfg.timing;
        tp.t_ccdl.max(tp.t_ccds).max(tp.t_bl)
    }

    fn row_open(&self, c: &DramCoord) -> bool {
        self.banks[c.bank_index(&self.cfg.geom)].open_row == Some(c.row)
    }

    fn probe(&self, coord: DramCoord, kind: CasKind, port: Port, not_before: u64) -> u64 {
        let hit = self.row_open(&coord);
        let from = if hit { not_before } else { self.miss_cas_floor(&coord, not_before) };
        self.cas_floor(&coord, kind, port, from) + self.latency(kind)
    }

    fn access(
        &mut self,
        coord: DramCoord,
        kind: CasKind,
        port: Port,
        not_before: u64,
    ) -> BlockTiming {
        let g = self.cfg.geom;
        let tp = self.cfg.timing;
        let bank_ix = coord.bank_index(&g);
        let row_hit = self.banks[bank_ix].open_row == Some(coord.row);
        let cas_from = if row_hit {
            not_before
        } else {
            // Row cycle: PRE (if a row was open) + ACT + tRCD, throttled by
            // the bank's tRC/tRAS floors and the rank's tFAW window.
            let bank = self.banks[bank_ix];
            let mut act_at = if bank.open_row.is_some() {
                (not_before.max(bank.next_pre) + tp.t_rp).max(bank.next_act)
            } else {
                not_before.max(bank.next_act)
            };
            let rank = &mut self.ranks[coord.rank_index(&g)];
            act_at = act_at.max(rank.acts[rank.head as usize] + tp.t_faw);
            rank.acts[rank.head as usize] = act_at;
            rank.head = (rank.head + 1) % 4;
            let bank = &mut self.banks[bank_ix];
            bank.open_row = Some(coord.row);
            bank.next_act = act_at + tp.t_rc;
            bank.next_pre = bank.next_pre.max(act_at + tp.t_ras);
            self.stats.acts += 1;
            act_at + tp.t_rcd
        };
        let cas_at = self.cas_floor(&coord, kind, port, cas_from);
        let latency = self.latency(kind);
        let data_start = cas_at + latency;
        let data_end = data_start + tp.t_bl;
        let bank = &mut self.banks[bank_ix];
        bank.next_pre = bank.next_pre.max(match kind {
            CasKind::Read => cas_at + tp.t_rtp,
            CasKind::Write => cas_at + tp.t_cwl + tp.t_bl + tp.t_wr,
        });
        let path_ix = self.path_index(port, &coord);
        let path = &mut self.paths[path_ix];
        path.last_cas = stamp(cas_at);
        path.last_bg = coord.bankgroup;
        path.bus_free = data_end;
        match kind {
            CasKind::Read => {
                self.stats.reads += 1;
                self.stats.reads_by_port[port.index()] += 1;
            }
            CasKind::Write => {
                self.stats.writes += 1;
                self.stats.writes_by_port[port.index()] += 1;
            }
        }
        if row_hit {
            self.stats.row_hits += 1;
        } else {
            self.stats.row_misses += 1;
        }
        self.stats.data_cycles += tp.t_bl;
        BlockTiming { cas_at, data_start, data_end, row_hit, acts: u32::from(!row_hit) }
    }

    fn access_run_stream<F: FnMut(BlockTiming) -> RunReply>(
        &mut self,
        first: DramCoord,
        kind: CasKind,
        port: Port,
        not_before: u64,
        next: &mut F,
    ) -> u64 {
        let g = self.cfg.geom;
        let tp = self.cfg.timing;
        let step = self.cas_step();
        let latency = self.latency(kind);
        let mut bt = self.access(first, kind, port, not_before);
        let mut n = 1u64;
        let mut run = first;
        let mut bank_ix = run.bank_index(&g);
        let mut last_cas = bt.cas_at;
        // Steady followers batch their stats/path commit, like the exact
        // model's `commit_run`.
        let mut pending = 0u64;
        loop {
            let (c, nb) = match next(bt) {
                RunReply::End => break,
                RunReply::Jump { count, d } => {
                    debug_assert!(count > 0 && d >= step, "Jump below the cadence floor");
                    last_cas += count * d;
                    bt = BlockTiming {
                        cas_at: last_cas,
                        data_start: last_cas + latency,
                        data_end: last_cas + latency + tp.t_bl,
                        row_hit: true,
                        acts: 0,
                    };
                    pending += count;
                    n += count;
                    continue;
                }
                RunReply::Block(c, nb) => (c, nb),
            };
            let steady =
                c.row == run.row && c.bank_index(&g) == bank_ix && self.row_open(&run);
            if steady {
                let cas_at = nb.max(last_cas + step);
                bt = BlockTiming {
                    cas_at,
                    data_start: cas_at + latency,
                    data_end: cas_at + latency + tp.t_bl,
                    row_hit: true,
                    acts: 0,
                };
                last_cas = cas_at;
                pending += 1;
            } else {
                self.commit_run(&run, kind, port, pending, last_cas);
                pending = 0;
                bt = self.access(c, kind, port, nb);
                run = c;
                bank_ix = run.bank_index(&g);
                last_cas = bt.cas_at;
            }
            n += 1;
        }
        self.commit_run(&run, kind, port, pending, last_cas);
        n
    }

    fn adopt_channel(&mut self, other: &Self, ch: u32) {
        let g = self.cfg.geom;
        assert_eq!(g, other.cfg.geom, "adopt_channel requires identical geometry");
        let ch = ch as usize;
        let banks_per_ch =
            (g.ranks_per_channel * g.bankgroups_per_rank * g.banks_per_bankgroup) as usize;
        let b0 = ch * banks_per_ch;
        self.banks[b0..b0 + banks_per_ch].copy_from_slice(&other.banks[b0..b0 + banks_per_ch]);
        let ranks_per_ch = g.ranks_per_channel as usize;
        let r0 = ch * ranks_per_ch;
        self.ranks[r0..r0 + ranks_per_ch].copy_from_slice(&other.ranks[r0..r0 + ranks_per_ch]);
        let nch = g.channels as usize;
        let nrk = (g.channels * g.ranks_per_channel) as usize;
        self.paths[ch..ch + 1].copy_from_slice(&other.paths[ch..ch + 1]);
        self.paths[nch + r0..nch + r0 + ranks_per_ch]
            .copy_from_slice(&other.paths[nch + r0..nch + r0 + ranks_per_ch]);
        let bgs_per_ch = (g.ranks_per_channel * g.bankgroups_per_rank) as usize;
        let bg0 = ch * bgs_per_ch;
        self.paths[nch + nrk + bg0..nch + nrk + bg0 + bgs_per_ch]
            .copy_from_slice(&other.paths[nch + nrk + bg0..nch + nrk + bg0 + bgs_per_ch]);
    }
}

impl AnalyticState {
    /// Batch-commit `count` steady followers ending at `last_cas`.
    fn commit_run(&mut self, c: &DramCoord, kind: CasKind, port: Port, count: u64, last_cas: u64) {
        if count == 0 {
            return;
        }
        let tp = self.cfg.timing;
        let latency = self.latency(kind);
        let bank = &mut self.banks[c.bank_index(&self.cfg.geom)];
        bank.next_pre = bank.next_pre.max(match kind {
            CasKind::Read => last_cas + tp.t_rtp,
            CasKind::Write => last_cas + tp.t_cwl + tp.t_bl + tp.t_wr,
        });
        let path_ix = self.path_index(port, c);
        let path = &mut self.paths[path_ix];
        path.last_cas = stamp(last_cas);
        path.last_bg = c.bankgroup;
        path.bus_free = last_cas + latency + tp.t_bl;
        match kind {
            CasKind::Read => {
                self.stats.reads += count;
                self.stats.reads_by_port[port.index()] += count;
            }
            CasKind::Write => {
                self.stats.writes += count;
                self.stats.writes_by_port[port.index()] += count;
            }
        }
        self.stats.row_hits += count;
        self.stats.data_cycles += count * tp.t_bl;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::TimingState;

    fn coord(bank: u32, row: u32, col: u32) -> DramCoord {
        DramCoord { channel: 0, rank: 0, bankgroup: 0, bank, row, col }
    }

    #[test]
    fn steady_run_advances_at_cas_step() {
        let mut a = AnalyticState::new(DramConfig::default());
        let step = a.cas_step();
        let b0 = a.access(coord(0, 3, 0), CasKind::Read, Port::BgInternal, 0);
        assert!(!b0.row_hit);
        let mut prev = b0.cas_at;
        for col in 1..8 {
            let bt = a.access(coord(0, 3, col), CasKind::Read, Port::BgInternal, 0);
            assert!(bt.row_hit);
            assert_eq!(bt.cas_at, prev + step, "steady cadence must equal cas_step");
            prev = bt.cas_at;
        }
    }

    #[test]
    fn row_miss_costs_a_row_cycle_more_than_a_hit() {
        let cfg = DramConfig::default();
        let mut a = AnalyticState::new(cfg);
        a.access(coord(0, 1, 0), CasKind::Read, Port::BgInternal, 0);
        let hit = a.probe(coord(0, 1, 1), CasKind::Read, Port::BgInternal, 1000);
        let miss = a.probe(coord(0, 2, 1), CasKind::Read, Port::BgInternal, 1000);
        assert_eq!(miss - hit, cfg.timing.t_rp + cfg.timing.t_rcd);
        // probe is non-committing and matches the access it predicts.
        let bt = a.access(coord(0, 2, 1), CasKind::Read, Port::BgInternal, 1000);
        assert_eq!(bt.data_start, miss);
    }

    #[test]
    fn tfaw_throttles_activate_bursts() {
        let cfg = DramConfig::default();
        let mut a = AnalyticState::new(cfg);
        // 5 back-to-back misses to distinct banks: the 5th ACT must wait
        // for the tFAW window even though banks are independent.
        let mut cas = Vec::new();
        for bank in 0..4 {
            cas.push(a.access(coord(bank, 9, 0), CasKind::Read, Port::Channel, 0).cas_at);
        }
        let fifth = a
            .access(
                DramCoord { bankgroup: 1, ..coord(0, 9, 0) },
                CasKind::Read,
                Port::Channel,
                0,
            )
            .cas_at;
        assert!(fifth >= cfg.timing.t_faw + cfg.timing.t_rcd, "fifth ACT inside tFAW window");
    }

    #[test]
    fn run_stream_matches_per_block_access() {
        let cfg = DramConfig::default();
        let mut via_run = AnalyticState::new(cfg);
        let mut per_block = AnalyticState::new(cfg);
        let mut streamed = Vec::new();
        let mut col = 0u32;
        via_run.access_run_stream(coord(0, 5, 0), CasKind::Read, Port::BgInternal, 0, &mut |bt| {
            streamed.push(bt);
            col += 1;
            if col < 10 {
                RunReply::Block(coord(0, 5, col), 0)
            } else {
                RunReply::End
            }
        });
        let direct: Vec<BlockTiming> = (0..10)
            .map(|c| per_block.access(coord(0, 5, c), CasKind::Read, Port::BgInternal, 0))
            .collect();
        assert_eq!(streamed, direct[..streamed.len()]);
        assert_eq!(via_run.stats.reads, per_block.stats.reads);
        assert_eq!(via_run.stats.row_hits, per_block.stats.row_hits);
    }

    #[test]
    fn jump_advances_cadence_and_stats() {
        let cfg = DramConfig::default();
        let mut a = AnalyticState::new(cfg);
        let step = a.cas_step();
        let mut last = None;
        let mut fed = 0;
        let n = a.access_run_stream(coord(0, 5, 0), CasKind::Read, Port::BgInternal, 0, &mut |bt| {
            last = Some(bt);
            fed += 1;
            if fed == 1 {
                RunReply::Jump { count: 7, d: step }
            } else {
                RunReply::End
            }
        });
        assert_eq!(n, 8);
        assert_eq!(a.stats.reads, 8);
        assert_eq!(a.stats.row_hits, 7);
        let first_cas = last.unwrap().cas_at - 7 * step;
        // Next access on the path continues from the jumped cadence.
        let next = a.access(coord(0, 5, 9), CasKind::Read, Port::BgInternal, 0);
        assert_eq!(next.cas_at, first_cas + 8 * step);
    }

    #[test]
    fn ordering_tracks_the_exact_model_on_mixed_patterns() {
        // The analytic tier's contract: cheaper patterns under the exact
        // model must not become more expensive under the analytic one.
        let cfg = DramConfig::default();
        let run = |rows_stride: u32| -> (u64, u64) {
            let mut exact = TimingState::new(cfg);
            let mut fast = AnalyticState::new(cfg);
            let mut e_end = 0;
            let mut f_end = 0;
            for i in 0..64u32 {
                let c = coord(0, 1 + i / 16 * rows_stride, i % 16);
                e_end = exact.access(c, CasKind::Read, Port::BgInternal, 0).data_end;
                f_end = MemoryBackend::access(&mut fast, c, CasKind::Read, Port::BgInternal, 0)
                    .data_end;
            }
            (e_end, f_end)
        };
        let (e_seq, f_seq) = run(0); // one row, pure hits
        let (e_mix, f_mix) = run(3); // row miss every 16 blocks
        assert!(e_seq < e_mix && f_seq < f_mix, "ordering preserved");
        // Error band: within 25% on these simple patterns.
        for (e, f) in [(e_seq, f_seq), (e_mix, f_mix)] {
            let ratio = f as f64 / e as f64;
            assert!((0.75..1.25).contains(&ratio), "ratio {ratio}");
        }
    }

    #[test]
    fn adopt_channel_transfers_per_channel_state() {
        let cfg = DramConfig::default();
        let mut base = AnalyticState::new(cfg);
        let mut adv = base.clone();
        let c = DramCoord { channel: 1, rank: 0, bankgroup: 2, bank: 1, row: 42, col: 0 };
        adv.access(c, CasKind::Write, Port::BgInternal, 100);
        base.adopt_channel(&adv, 1);
        assert!(base.row_open(&c));
        // Stats are not adopted (caller merges).
        assert_eq!(base.stats.writes, 0);
        // Channel-0 state untouched.
        assert!(!base.row_open(&DramCoord { channel: 0, ..c }));
    }
}
