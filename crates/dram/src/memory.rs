//! Functional backing store: sparse physical memory holding real data.
//!
//! The paper validates its execution flow by making Ramulator "read from and
//! write values to memory and check the final output against pre-calculated
//! results" (§IV). This store gives the simulator the same capability
//! without allocating the full simulated capacity.

use rustc_hash::FxHashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_BYTES: usize = 1 << PAGE_SHIFT;

/// Sparse byte-addressable physical memory (4 KiB pages, zero-fill on read).
///
/// Page lookup runs on every simulated byte access during functional
/// validation, so the index uses FxHash rather than SipHash — page numbers
/// are simulator-internal integers, not attacker-controlled keys.
#[derive(Debug, Default)]
pub struct SparseMem {
    pages: FxHashMap<u64, Box<[u8; PAGE_BYTES]>>,
}

impl SparseMem {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of materialized pages (for footprint assertions).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    pub fn read_bytes(&self, pa: u64, out: &mut [u8]) {
        let mut pa = pa;
        let mut out = out;
        while !out.is_empty() {
            let page = pa >> PAGE_SHIFT;
            let off = (pa & (PAGE_BYTES as u64 - 1)) as usize;
            let n = out.len().min(PAGE_BYTES - off);
            match self.pages.get(&page) {
                Some(p) => out[..n].copy_from_slice(&p[off..off + n]),
                None => out[..n].fill(0),
            }
            pa += n as u64;
            out = &mut out[n..];
        }
    }

    pub fn write_bytes(&mut self, pa: u64, data: &[u8]) {
        let mut pa = pa;
        let mut data = data;
        while !data.is_empty() {
            let page = pa >> PAGE_SHIFT;
            let off = (pa & (PAGE_BYTES as u64 - 1)) as usize;
            let n = data.len().min(PAGE_BYTES - off);
            let p = self.pages.entry(page).or_insert_with(|| Box::new([0u8; PAGE_BYTES]));
            p[off..off + n].copy_from_slice(&data[..n]);
            pa += n as u64;
            data = &data[n..];
        }
    }

    pub fn read_f32(&self, pa: u64) -> f32 {
        let mut b = [0u8; 4];
        self.read_bytes(pa, &mut b);
        f32::from_le_bytes(b)
    }

    pub fn write_f32(&mut self, pa: u64, v: f32) {
        self.write_bytes(pa, &v.to_le_bytes());
    }

    /// Read a whole cache block of f32 values (16 elements).
    pub fn read_block_f32(&self, pa: u64) -> [f32; 16] {
        let mut raw = [0u8; 64];
        self.read_bytes(pa, &mut raw);
        let mut out = [0f32; 16];
        for (i, chunk) in raw.chunks_exact(4).enumerate() {
            out[i] = f32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        out
    }

    pub fn write_block_f32(&mut self, pa: u64, vals: &[f32; 16]) {
        let mut raw = [0u8; 64];
        for (i, v) in vals.iter().enumerate() {
            raw[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
        self.write_bytes(pa, &raw);
    }

    /// Write an f32 slice starting at `pa`.
    pub fn write_f32_slice(&mut self, pa: u64, vals: &[f32]) {
        for (i, v) in vals.iter().enumerate() {
            self.write_f32(pa + 4 * i as u64, *v);
        }
    }

    /// Read `n` f32 values starting at `pa`.
    pub fn read_f32_vec(&self, pa: u64, n: usize) -> Vec<f32> {
        (0..n).map(|i| self.read_f32(pa + 4 * i as u64)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_and_roundtrip() {
        let mut m = SparseMem::new();
        assert_eq!(m.read_f32(0x1000), 0.0);
        m.write_f32(0x1000, 3.5);
        assert_eq!(m.read_f32(0x1000), 3.5);
        assert_eq!(m.resident_pages(), 1);
    }

    #[test]
    fn cross_page_write() {
        let mut m = SparseMem::new();
        let data: Vec<u8> = (0..=255).collect();
        m.write_bytes(4096 - 128, &data);
        let mut back = vec![0u8; 256];
        m.read_bytes(4096 - 128, &mut back);
        assert_eq!(back, data);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn block_f32_roundtrip() {
        let mut m = SparseMem::new();
        let vals: [f32; 16] = std::array::from_fn(|i| i as f32 * 0.25 - 1.0);
        m.write_block_f32(0x40, &vals);
        assert_eq!(m.read_block_f32(0x40), vals);
        // Neighboring blocks untouched.
        assert_eq!(m.read_block_f32(0x0), [0.0; 16]);
    }

    #[test]
    fn sparse_footprint_stays_small() {
        let mut m = SparseMem::new();
        for i in 0..64 {
            m.write_f32(i * (1 << 20), 1.0);
        }
        assert_eq!(m.resident_pages(), 64);
    }
}
