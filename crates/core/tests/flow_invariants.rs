//! Conservation and accounting invariants of the StepStone execution flow.

use proptest::prelude::*;
use stepstone_addr::{PimLevel, BLOCK_BYTES};
use stepstone_core::{simulate_gemm_opt, GemmSpec, Phase, SimOptions, SystemConfig};
use stepstone_dram::Port;

fn a_blocks(spec: &GemmSpec) -> u64 {
    spec.a_bytes().div_ceil(BLOCK_BYTES)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn weight_traffic_is_read_exactly_once(
        rows_log in 5u32..9,
        cols_log in 6u32..10,
        n in 1usize..9,
        level_ix in 0usize..3,
    ) {
        let level = PimLevel::ALL[level_ix];
        let sys = SystemConfig::default();
        let spec = GemmSpec::new(1 << rows_log, 1 << cols_log, n);
        let opts = SimOptions::stepstone(level);
        let r = simulate_gemm_opt(&sys, &spec, &opts, None);
        // GEMM-phase reads on the PIM port = A blocks + buffer traffic; the
        // A stream itself reads each weight block exactly once, so the PIM
        // port reads are at least a_blocks and bounded by a_blocks + fills.
        let port = match level {
            PimLevel::Channel => Port::Channel,
            PimLevel::Device => Port::RankInternal,
            PimLevel::BankGroup => Port::BgInternal,
        };
        let pim_reads = r.dram.reads_by_port[port.index()];
        prop_assert!(pim_reads >= a_blocks(&spec), "{pim_reads} < {}", a_blocks(&spec));
        // Total simulated traffic is finite and accounted.
        prop_assert!(r.dram.accesses() >= pim_reads);
        prop_assert!(r.total > 0);
        // Phase attribution covers the bulk of the run (within 2x slack for
        // asymmetric PIM loads).
        let attributed = r.attributed();
        prop_assert!(attributed * 2 >= r.total, "{attributed} vs {r:?}");
    }

    #[test]
    fn localization_traffic_equals_sharing_algebra(
        rows_log in 5u32..9,
        cols_log in 6u32..10,
        n in 1usize..9,
    ) {
        use stepstone_addr::{mapping_by_id, GroupAnalysis, MatrixLayout};
        let sys = SystemConfig::default();
        let spec = GemmSpec::new(1 << rows_log, 1 << cols_log, n);
        let opts = SimOptions::stepstone(PimLevel::BankGroup);
        let r = simulate_gemm_opt(&sys, &spec, &opts, None);
        let mapping = mapping_by_id(sys.mapping_id);
        let layout = MatrixLayout::new_f32(
            sys.place_weights(spec.a_bytes()),
            spec.m,
            spec.k,
        );
        let ga = GroupAnalysis::analyze(&mapping, PimLevel::BankGroup, layout);
        // Channel writes during the run are exactly the localized B volume.
        let expect = (ga.distinct_cols_per_pim() * n as u64)
            .max(1) * ga.active_pim_count() as u64;
        let chan_writes = r.dram.writes_by_port[Port::Channel.index()];
        prop_assert_eq!(chan_writes, expect);
    }

    #[test]
    fn naive_and_stepstone_agen_do_identical_dram_work(
        rows_log in 5u32..8,
        cols_log in 6u32..9,
    ) {
        use stepstone_core::AgenMode;
        let spec = GemmSpec::new(1 << rows_log, 1 << cols_log, 2);
        let fast = simulate_gemm_opt(
            &SystemConfig::default(),
            &spec,
            &SimOptions::stepstone(PimLevel::BankGroup),
            None,
        );
        let naive = simulate_gemm_opt(
            &SystemConfig { agen: AgenMode::Naive, ..SystemConfig::default() },
            &spec,
            &SimOptions::stepstone(PimLevel::BankGroup),
            None,
        );
        // Same blocks, same order — only the address-generation time differs.
        prop_assert_eq!(fast.dram.reads, naive.dram.reads);
        prop_assert_eq!(fast.dram.writes, naive.dram.writes);
        prop_assert!(naive.total >= fast.total);
    }
}

#[test]
fn phase_breakdown_matches_figure_semantics() {
    // Localization precedes the kernel; reduction follows it; the exposed
    // total is at least the sum of the serialized phases' critical path.
    let sys = SystemConfig::default();
    let spec = GemmSpec::new(512, 2048, 8);
    let r = simulate_gemm_opt(&sys, &spec, &SimOptions::stepstone(PimLevel::BankGroup), None);
    assert!(r.phase(Phase::Localization) > 0);
    assert!(r.phase(Phase::Reduction) > 0);
    assert!(r.phase(Phase::Gemm) > 0);
    assert!(
        r.total >= r.phase(Phase::Localization) + r.phase(Phase::Gemm) + r.phase(Phase::Reduction)
    );
}
