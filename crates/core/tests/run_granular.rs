//! Differential suite for the run-granular engine core (PR 6).
//!
//! A hinted run admitted through [`StepSource::take_run`] is scheduled as
//! one object: synthesized into the reorder window from its anchor, issued
//! through the span fast path's steady CAS cadence, and — once the issue
//! state settles into an arithmetic cadence — jumped closed-form. All of
//! that must be *cycle-exact* with the per-block engine. This suite pins
//! the equivalence three ways:
//!
//! * whole-simulation reports (run-granular on vs off) across the configs
//!   that gate admission: refresh, command tracing, colocated CPU traffic,
//!   per-channel parallelism;
//! * property tests driving a synthetic hinted source — runs straddling
//!   row boundaries, launch barriers, partial skips, and refresh windows —
//!   against the identical program pulled per-block through `PlainSteps`;
//! * the process-wide run counters: deterministic across serial/parallel
//!   engines, zero when the knob is off, and fallback splits attributed to
//!   the config that forced them.
//!
//! The run-granular knob and the counters are process-global, so every
//! test here serializes on one lock and restores the knob on drop.

use proptest::prelude::*;
use stepstone_addr::{mapping_by_id, MappingId, PimLevel, XorMapping};
use stepstone_core::engine::{
    reset_run_counters, run_counters, run_phase, set_run_granular, Step, StepSource, UnitCursor,
    FB_REFRESH, FB_TRACE, FB_TRAFFIC,
};
use stepstone_core::{
    simulate_pow2_gemm_exec, ExecMode, GemmSpec, LatencyReport, Phase, SimOptions, SystemConfig,
};
use stepstone_dram::{
    CommandBus, DramConfig, DramStats, Port, TimingState, TrafficReq, TrafficSource,
};

/// The run-granular knob and run counters are process-global: tests that
/// touch either hold this lock end to end.
fn knob_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Restore the global run-granular knob even when an assertion panics.
struct RunGranularGuard(bool);

impl Drop for RunGranularGuard {
    fn drop(&mut self) {
        set_run_granular(self.0);
    }
}

fn assert_reports_equal(a: &LatencyReport, b: &LatencyReport, what: &str) {
    assert_eq!(a.total, b.total, "{what}: total cycles");
    assert_eq!(a.phase_cycles, b.phase_cycles, "{what}: phase attribution");
    assert_eq!(a.dram, b.dram, "{what}: DRAM event counts");
    assert_eq!(a.activity, b.activity, "{what}: activity counts");
}

// ---------------------------------------------------------------------------
// Whole-simulation differentials.
// ---------------------------------------------------------------------------

/// Run-granular on vs off must be report-identical for every config that
/// can force per-block fallback: plain, refresh, trace, parallel.
#[test]
fn run_granular_matches_per_block_reports() {
    let _serial = knob_lock();
    let _guard = RunGranularGuard(set_run_granular(true));
    let spec = GemmSpec::new(128, 512, 4);
    for level in [PimLevel::BankGroup, PimLevel::Device] {
        let opts = SimOptions::stepstone(level);
        for (refresh, trace, parallel) in [
            (false, false, false),
            (false, false, true),
            (false, true, false),
            (true, false, false),
            (true, false, true),
        ] {
            let sys = SystemConfig {
                dram: DramConfig { refresh, ..DramConfig::default() },
                parallel,
                trace,
                ..SystemConfig::default()
            };
            let run = |rg: bool| {
                set_run_granular(rg);
                let r = simulate_pow2_gemm_exec(&sys, &spec, &opts, None, ExecMode::Streaming);
                set_run_granular(true);
                r
            };
            let on = run(true);
            let off = run(false);
            let what =
                format!("{level:?} refresh={refresh} trace={trace} parallel={parallel}");
            assert_reports_equal(&on, &off, &what);
        }
    }
}

/// A fixed-trace CPU traffic source (colocation forces per-block).
struct FixedTraffic(Vec<TrafficReq>);

impl TrafficSource for FixedTraffic {
    fn next_req(&mut self) -> Option<TrafficReq> {
        self.0.pop()
    }
}

fn colocation_reqs() -> Vec<TrafficReq> {
    // Reads marching through a CPU-private arena, far from PIM data.
    (0..256u64)
        .rev()
        .map(|i| TrafficReq { pa: (1 << 36) | (i * 64), write: i % 3 == 0, gap: 40 })
        .collect()
}

/// Colocated traffic: run-granular on vs off must agree, and the fallback
/// counters must attribute the per-block blocks to the traffic cause.
#[test]
fn run_granular_matches_under_colocated_traffic() {
    let _serial = knob_lock();
    let _guard = RunGranularGuard(set_run_granular(true));
    let sys = SystemConfig { parallel: false, ..SystemConfig::default() };
    let spec = GemmSpec::new(64, 256, 2);
    let opts = SimOptions::stepstone(PimLevel::BankGroup);
    let run = |rg: bool| {
        set_run_granular(rg);
        reset_run_counters();
        let mut src = FixedTraffic(colocation_reqs());
        let r = simulate_pow2_gemm_exec(&sys, &spec, &opts, Some(&mut src), ExecMode::Streaming);
        let c = run_counters();
        set_run_granular(true);
        (r, c)
    };
    let (on, c_on) = run(true);
    let (off, c_off) = run(false);
    assert_reports_equal(&on, &off, "colocated traffic");
    // Traffic blocks admission in every phase it reaches; the kernel
    // phases all fall back with the traffic cause attributed.
    assert_eq!(c_on.runs, 0, "no run admitted under colocated traffic");
    assert!(c_on.fallback[FB_TRAFFIC] > 0, "{c_on:?}");
    assert_eq!(c_on.fallback, c_off.fallback, "cause split is knob-independent here");
}

// ---------------------------------------------------------------------------
// Run counters: determinism and cause attribution.
// ---------------------------------------------------------------------------

/// The counters are commutative sums flushed once per unit, so the serial
/// and per-channel-parallel engines must report identical totals — and a
/// multi-channel kernel phase must actually admit runs.
#[test]
fn run_counters_deterministic_serial_vs_parallel() {
    let _serial = knob_lock();
    let _guard = RunGranularGuard(set_run_granular(true));
    let spec = GemmSpec::new(256, 1024, 4);
    let opts = SimOptions::stepstone(PimLevel::Device);
    let count = |parallel: bool| {
        let sys = SystemConfig { parallel, ..SystemConfig::default() };
        reset_run_counters();
        let r = simulate_pow2_gemm_exec(&sys, &spec, &opts, None, ExecMode::Streaming);
        (run_counters(), r)
    };
    let (serial, r_serial) = count(false);
    let (parallel, r_parallel) = count(true);
    assert_reports_equal(&r_serial, &r_parallel, "serial vs parallel");
    assert_eq!(serial, parallel, "counter totals are engine-order independent");
    assert!(serial.runs > 0, "kernel phases admit hinted runs: {serial:?}");
    assert!(serial.run_blocks >= serial.runs, "{serial:?}");
    assert_eq!(
        serial.hist.iter().sum::<u64>(),
        serial.runs,
        "every admitted run lands in one histogram bucket"
    );
    // With the knob off the same workload admits nothing.
    set_run_granular(false);
    reset_run_counters();
    let sys = SystemConfig { parallel: false, ..SystemConfig::default() };
    simulate_pow2_gemm_exec(&sys, &spec, &opts, None, ExecMode::Streaming);
    let off = run_counters();
    set_run_granular(true);
    assert_eq!(off.runs, 0);
    assert_eq!(off.run_blocks, 0);
    assert!(off.fallback_blocks() > 0, "all blocks fall back: {off:?}");
}

/// Refresh and command tracing each force per-block scheduling; the
/// fallback split must name the cause.
#[test]
fn fallback_causes_attributed() {
    let _serial = knob_lock();
    let _guard = RunGranularGuard(set_run_granular(true));
    let spec = GemmSpec::new(64, 256, 2);
    let opts = SimOptions::stepstone(PimLevel::BankGroup);
    let causes = |refresh: bool, trace: bool| {
        let sys = SystemConfig {
            dram: DramConfig { refresh, ..DramConfig::default() },
            parallel: false,
            trace,
            ..SystemConfig::default()
        };
        reset_run_counters();
        simulate_pow2_gemm_exec(&sys, &spec, &opts, None, ExecMode::Streaming);
        run_counters()
    };
    let refresh = causes(true, false);
    assert_eq!(refresh.runs, 0);
    assert!(refresh.fallback[FB_REFRESH] > 0, "{refresh:?}");
    let trace = causes(false, true);
    assert_eq!(trace.runs, 0);
    assert!(trace.fallback[FB_TRACE] > 0, "{trace:?}");
}

// ---------------------------------------------------------------------------
// Synthetic hinted source: property-based engine differentials.
// ---------------------------------------------------------------------------

/// Channel-0 block addresses grouped by window key (bank, row, direction
/// aside): each inner vec is one same-(bank,row) column set, in address
/// order. Runs built from one group are column-pure by construction.
/// Computed once (Skylake mapping) — proptest re-enters per case.
fn channel0_groups(mapping: &XorMapping) -> &'static [Vec<u64>] {
    static GROUPS: std::sync::OnceLock<Vec<Vec<u64>>> = std::sync::OnceLock::new();
    GROUPS.get_or_init(|| {
        let mut groups: std::collections::HashMap<u64, Vec<u64>> = std::collections::HashMap::new();
        let mut order: Vec<u64> = Vec::new();
        for b in 0..(1u64 << 14) {
            let pa = b * 64;
            let c = mapping.decode(pa);
            if c.channel != 0 {
                continue;
            }
            let key = (c.row as u64) << 32 | c.bank_index(mapping.geometry()) as u64;
            groups
                .entry(key)
                .or_insert_with(|| {
                    order.push(key);
                    Vec::new()
                })
                .push(pa);
        }
        order
            .into_iter()
            .filter_map(|k| {
                let v = groups.remove(&k).expect("keyed");
                (v.len() >= 8).then_some(v)
            })
            .collect()
    })
}

/// A step program with honest run hints computed by lookahead: `run_hint`
/// reports the maximal same-key Access run at the cursor, and `take_run`
/// skips within it — capped at `cap` steps when `cap > 0`, so partial
/// skips (and the engine's per-block fallback for the remainder) are
/// exercised too.
struct HintedVec {
    steps: Vec<Step>,
    /// Window key per step (`None` for launches).
    keys: Vec<Option<u64>>,
    pos: usize,
    cap: u64,
}

impl HintedVec {
    fn new(steps: Vec<Step>, mapping: &XorMapping, cap: u64) -> Self {
        let keys = steps
            .iter()
            .map(|s| match *s {
                Step::Access { pa, write, .. } => {
                    let c = mapping.decode(pa);
                    Some(
                        (c.bank_index(mapping.geometry()) as u64) << 33
                            | (c.row as u64) << 1
                            | write as u64,
                    )
                }
                Step::Launch => None,
            })
            .collect();
        Self { steps, keys, pos: 0, cap }
    }

    /// Length of the maximal run starting at `p`: consecutive Accesses
    /// sharing the window key, category, compute flag, and one AGEN
    /// iteration each (the `take_run` contract).
    fn run_len_at(&self, p: usize) -> u64 {
        let Some(Some(key)) = self.keys.get(p) else { return 1 };
        let (cat0, comp0) = match self.steps[p] {
            Step::Access { cat, compute, agen_iters: 1, .. } => (cat, compute),
            _ => return 1,
        };
        let mut n = 1;
        while let (Some(Some(k)), Some(s)) = (self.keys.get(p + n), self.steps.get(p + n)) {
            match *s {
                Step::Access { cat, compute, agen_iters: 1, .. }
                    if *k == *key && cat == cat0 && compute == comp0 =>
                {
                    n += 1
                }
                _ => break,
            }
        }
        n as u64
    }
}

impl Iterator for HintedVec {
    type Item = Step;

    fn next(&mut self) -> Option<Step> {
        let s = self.steps.get(self.pos).copied();
        self.pos += 1;
        s
    }
}

impl StepSource for HintedVec {
    fn run_hint(&self) -> u64 {
        self.run_len_at(self.pos)
    }

    fn take_run(&mut self, n: u64) -> u64 {
        // The anchor was just pulled (pos is one past it); the remaining
        // same-key steps from pos are exactly what the hint promised.
        let mut take = n;
        if self.cap > 0 {
            take = take.min(self.cap);
        }
        debug_assert!(
            self.pos > 0 && self.run_len_at(self.pos - 1) > take,
            "engine asked beyond the hinted run"
        );
        self.pos += take as usize;
        take
    }
}

/// One generated run: group selector, run length, direction, compute
/// flag, and whether a launch barrier precedes it.
type RunSpec = (usize, usize, bool, bool, bool);

fn build_program(groups: &[Vec<u64>], runs: &[RunSpec]) -> Vec<Step> {
    let mut steps = Vec::new();
    for &(gsel, len, write, compute, launch) in runs {
        if launch {
            steps.push(Step::Launch);
        }
        let g = &groups[gsel % groups.len()];
        for &pa in g.iter().take(len.clamp(1, g.len())) {
            steps.push(Step::Access { pa, write, cat: Phase::Gemm, agen_iters: 1, compute });
        }
    }
    steps
}

/// Everything observable about a finished unit.
type UnitObs = (u64, u64, [u64; 8], u64, u64, u64, u64, u32, u64, DramStats);

/// Drive one unit over `steps` through the serial phase engine and return
/// the full observable state. `hinted` selects the run-capable source;
/// `rg` the global knob; `cap` a partial-skip ceiling (0 = unlimited).
fn drive(
    mapping: &XorMapping,
    steps: Vec<Step>,
    refresh: bool,
    hinted: bool,
    rg: bool,
    cap: u64,
) -> UnitObs {
    let was = set_run_granular(rg);
    let mut ts = TimingState::new(DramConfig { refresh, ..DramConfig::default() });
    let mut bus = CommandBus::new(2);
    let mk = |steps: Box<dyn StepSource + Send>| {
        // Compute-capable kernel shape: SIMD pipeline, launch gating, the
        // 4-cycle AGEN burst window.
        let mut u =
            UnitCursor::from_source("rg", 0, Port::BgInternal, steps, 0, 2, 16, 8, 4, 10, 4, None);
        u.exclusive = true;
        u
    };
    let mut units = vec![if hinted {
        mk(Box::new(HintedVec::new(steps, mapping, cap)))
    } else {
        mk(Box::new(stepstone_core::engine::PlainSteps(steps.into_iter())))
    }];
    let end = run_phase(&mut ts, &mut bus, mapping, &mut units, None);
    set_run_granular(was);
    let u = &units[0];
    (
        end,
        u.end_time,
        u.cat_cycles,
        u.launches,
        u.simd_ops,
        u.scratch_accesses,
        u.agen_iter_sum,
        u.agen_iter_max,
        u.agen_bubbles,
        ts.stats,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Hinted + run-granular, hinted + per-block, and plain per-block
    // engines must agree on every observable — end cycle, per-category
    // cycle attribution, SIMD/scratch/AGEN counters, and the DRAM event
    // statistics — for programs whose runs straddle row boundaries,
    // launch barriers, partial skips, and refresh windows.
    #[test]
    fn hinted_runs_match_per_block_engine(
        runs in proptest::collection::vec(
            (0usize..64, 1usize..40, any::<bool>(), any::<bool>(), any::<bool>()),
            1..12,
        ),
        refresh in any::<bool>(),
        cap in 0u64..4,
    ) {
        let _serial = knob_lock();
        let mapping = mapping_by_id(MappingId::Skylake);
        let groups = channel0_groups(&mapping);
        let steps = build_program(groups, &runs);
        let granular = drive(&mapping, steps.clone(), refresh, true, true, cap);
        let hinted_off = drive(&mapping, steps.clone(), refresh, true, false, cap);
        let plain = drive(&mapping, steps, refresh, false, false, 0);
        prop_assert_eq!(&granular, &hinted_off, "run-granular vs per-block (hinted source)");
        prop_assert_eq!(&granular, &plain, "run-granular vs plain per-block source");
    }
}

/// Long single-key runs hit the closed-form jump (the steady cadence
/// settles after the pipeline fills); the result must still be exact and
/// the counters must see one run per admission.
#[test]
fn long_runs_jump_closed_form_exactly() {
    let _serial = knob_lock();
    let _guard = RunGranularGuard(set_run_granular(true));
    let mapping = mapping_by_id(MappingId::Skylake);
    let groups = channel0_groups(&mapping);
    // The longest group, twice, with a launch barrier between — compute
    // and non-compute variants.
    let longest = (0..groups.len()).max_by_key(|&i| groups[i].len()).unwrap();
    for compute in [false, true] {
        let runs: Vec<RunSpec> = vec![
            (longest, usize::MAX, false, compute, true),
            (longest, usize::MAX, true, compute, false),
        ];
        let steps = build_program(groups, &runs);
        let blocks = steps.iter().filter(|s| matches!(s, Step::Access { .. })).count() as u64;
        reset_run_counters();
        let granular = drive(&mapping, steps.clone(), false, true, true, 0);
        let c = run_counters();
        let plain = drive(&mapping, steps, false, false, false, 0);
        assert_eq!(granular, plain, "compute={compute}");
        assert_eq!(c.runs, 2, "both hinted runs admitted: {c:?}");
        assert_eq!(c.run_blocks, blocks, "anchors + followers: {c:?}");
    }
}
