//! Per-phase latency breakdowns — the stacked-bar schema of Figs. 6, 10, 11
//! and 12 (GEMM / Buffer fill (B) / Buffer fill (C) / Buffer drain (C) /
//! Localization / Reduction / CPU time).

use serde::{Deserialize, Serialize};
use stepstone_dram::DramStats;
use stepstone_fabric::FabricStats;

/// Execution phases attributed in the paper's breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// PIM arithmetic + weight streaming (the kernel proper).
    Gemm,
    /// Scratchpad fill of the localized `B` panel.
    FillB,
    /// Scratchpad fill of the `C` accumulators.
    FillC,
    /// Scratchpad drain of partial `C`.
    DrainC,
    /// `B` replication into per-PIM regions.
    Localization,
    /// Partial-`C` merge.
    Reduction,
    /// Kernel-launch packets (visible only under command-bus contention).
    Launch,
    /// Host-side execution (CPU baselines and `CPU_Other` operators).
    CpuTime,
}

impl Phase {
    pub const ALL: [Phase; 8] = [
        Phase::Gemm,
        Phase::FillB,
        Phase::FillC,
        Phase::DrainC,
        Phase::Localization,
        Phase::Reduction,
        Phase::Launch,
        Phase::CpuTime,
    ];

    pub fn label(&self) -> &'static str {
        match self {
            Phase::Gemm => "GEMM",
            Phase::FillB => "Buffer fill (B)",
            Phase::FillC => "Buffer fill (C)",
            Phase::DrainC => "Buffer drain (C)",
            Phase::Localization => "Localization",
            Phase::Reduction => "Reduction",
            Phase::Launch => "Launch",
            Phase::CpuTime => "CPU time",
        }
    }

    pub fn index(&self) -> usize {
        Phase::ALL.iter().position(|p| p == self).expect("phase in ALL")
    }
}

/// Event counts feeding the energy model (paper §V-H).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ActivityCounts {
    /// Lane-level MAC operations executed by PIM SIMD units.
    pub simd_ops: u64,
    /// Scratchpad block accesses (fills, drains, and operand reads).
    pub scratchpad_accesses: u64,
    /// Kernel launches issued.
    pub launches: u64,
    /// Total AGEN iterations and the per-step maximum (pipeline bubbles).
    pub agen_iterations: u64,
    pub agen_max_step: u32,
    /// Blocks whose AGEN step exceeded the DRAM burst window (bubbles).
    pub agen_bubbles: u64,
}

impl ActivityCounts {
    pub fn merge(&mut self, o: &ActivityCounts) {
        self.simd_ops += o.simd_ops;
        self.scratchpad_accesses += o.scratchpad_accesses;
        self.launches += o.launches;
        self.agen_iterations += o.agen_iterations;
        self.agen_max_step = self.agen_max_step.max(o.agen_max_step);
        self.agen_bubbles += o.agen_bubbles;
    }
}

/// The result of simulating one GEMM (or one model layer) on a backend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyReport {
    /// Cycles attributed to each phase (critical-path PIM per category).
    pub phase_cycles: [u64; 8],
    /// End-to-end cycles of the whole execution.
    pub total: u64,
    /// DRAM event counters accumulated during the run.
    pub dram: DramStats,
    pub activity: ActivityCounts,
    /// Which backend produced this report (display tag, e.g. "STP-BG").
    pub backend: String,
    /// DRAM command clock the cycle counts are denominated in (set from
    /// the simulated `DramConfig`; presets differ from DDR4-2400's 1.2 GHz).
    pub clock_hz: u64,
    /// Inter-device fabric statistics — populated only when the reduce
    /// phase ran over the fabric (`ReduceVia::Fabric`); `None` on the
    /// default host-DMA path, preserving bit-identity with pre-fabric
    /// reports.
    pub fabric: Option<FabricStats>,
}

impl Default for LatencyReport {
    fn default() -> Self {
        Self {
            phase_cycles: [0; 8],
            total: 0,
            dram: DramStats::default(),
            activity: ActivityCounts::default(),
            backend: String::new(),
            clock_hz: 1_200_000_000,
            fabric: None,
        }
    }
}

impl LatencyReport {
    pub fn phase(&self, p: Phase) -> u64 {
        self.phase_cycles[p.index()]
    }

    pub fn add_phase(&mut self, p: Phase, cycles: u64) {
        self.phase_cycles[p.index()] += cycles;
    }

    pub fn total_cycles(&self) -> u64 {
        self.total
    }

    /// Sum of attributed phase cycles (≈ total for symmetric PIM loads).
    pub fn attributed(&self) -> u64 {
        self.phase_cycles.iter().sum()
    }

    /// Merge a sequential sub-execution (e.g. a decomposed sub-GEMM or the
    /// next layer of a model).
    pub fn chain(&mut self, o: &LatencyReport) {
        for i in 0..self.phase_cycles.len() {
            self.phase_cycles[i] += o.phase_cycles[i];
        }
        self.total += o.total;
        self.dram.merge(&o.dram);
        self.activity.merge(&o.activity);
        match (&mut self.fabric, &o.fabric) {
            (Some(f), Some(of)) => f.merge(of),
            (None, Some(of)) => self.fabric = Some(of.clone()),
            _ => {}
        }
    }

    /// Wall-clock seconds at the DRAM/PIM clock this report was simulated
    /// under (`clock_hz`).
    pub fn seconds(&self) -> f64 {
        self.total as f64 / self.clock_hz as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_indexing_is_stable() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        assert_eq!(Phase::Gemm.label(), "GEMM");
    }

    #[test]
    fn chain_accumulates() {
        let mut a = LatencyReport { total: 100, ..Default::default() };
        a.add_phase(Phase::Gemm, 80);
        let mut b = LatencyReport { total: 50, ..Default::default() };
        b.add_phase(Phase::Reduction, 50);
        b.activity.simd_ops = 7;
        a.chain(&b);
        assert_eq!(a.total, 150);
        assert_eq!(a.phase(Phase::Gemm), 80);
        assert_eq!(a.phase(Phase::Reduction), 50);
        assert_eq!(a.activity.simd_ops, 7);
        assert_eq!(a.attributed(), 130);
    }
}
