//! GEMM problem specifications.
//!
//! The paper's convention (§II): `C[M,N] += A[M,K] × B[K,N]` where `A` is the
//! large, memory-resident weight matrix, `B` the small input activations
//! (CPU-cache resident), and `N` the batch-like dimension. Per footnote 2,
//! non-power-of-two dimensions are padded or decomposed into power-of-two
//! sub-GEMMs; [`GemmSpec::decompose_pow2`] implements the decomposition.

use serde::{Deserialize, Serialize};

/// One GEMM: `A` is `m × k`, `B` is `k × n`, `C` is `m × n`, all f32.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GemmSpec {
    pub m: usize,
    pub k: usize,
    pub n: usize,
}

impl GemmSpec {
    pub fn new(m: usize, k: usize, n: usize) -> Self {
        assert!(m > 0 && k > 0 && n > 0);
        Self { m, k, n }
    }

    pub fn is_pow2(&self) -> bool {
        self.m.is_power_of_two() && self.k.is_power_of_two()
    }

    /// Weight-matrix bytes (the main-memory traffic driver).
    pub fn a_bytes(&self) -> u64 {
        (self.m * self.k * 4) as u64
    }

    pub fn b_bytes(&self) -> u64 {
        (self.k * self.n * 4) as u64
    }

    pub fn c_bytes(&self) -> u64 {
        (self.m * self.n * 4) as u64
    }

    /// Multiply–accumulate count.
    pub fn macs(&self) -> u64 {
        self.m as u64 * self.k as u64 * self.n as u64
    }

    /// Floating-point operations (2 per MAC).
    pub fn flops(&self) -> u64 {
        2 * self.macs()
    }

    /// Operational intensity in flops/byte counting only `A` traffic (the
    /// roofline x-axis of Figs. 1 and 7, where `B` and `C` are cached).
    pub fn operational_intensity(&self) -> f64 {
        self.flops() as f64 / self.a_bytes() as f64
    }

    /// Decompose into power-of-two sub-GEMMs by splitting `m` and `k` along
    /// their binary representations (paper footnote 2: "execution is
    /// partitioned/serialized into smaller, power-of-two matrices").
    /// `n` is the batch dimension and needs no decomposition.
    pub fn decompose_pow2(&self) -> Vec<GemmSpec> {
        let split = |mut v: usize| -> Vec<usize> {
            let mut parts = Vec::new();
            while v != 0 {
                // Largest power of two first keeps the dominant sub-GEMM
                // representative of the whole.
                let p = 1usize << (usize::BITS - 1 - v.leading_zeros());
                parts.push(p);
                v -= p;
            }
            parts
        };
        // Very small tail parts would under-fill a cache-block row. Merge
        // all sub-16 binary parts into a *single* padded 16-element part
        // (one block of f32): rounding each up independently (m=7 →
        // [4,2,1] → [16,16,16]) would triple the padded work and
        // double-count blocks in the cross product.
        let clamp = |parts: Vec<usize>| -> Vec<usize> {
            let mut out: Vec<usize> = parts.iter().copied().filter(|&p| p >= 16).collect();
            if out.len() < parts.len() {
                out.push(16);
            }
            out
        };
        let ms = clamp(split(self.m));
        let ks = clamp(split(self.k));
        let mut out = Vec::with_capacity(ms.len() * ks.len());
        for &m in &ms {
            for &k in &ks {
                out.push(GemmSpec { m, k, n: self.n });
            }
        }
        out
    }
}

impl std::fmt::Display for GemmSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{} (N={})", self.m, self.k, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_spec_decomposes_to_itself() {
        let g = GemmSpec::new(1024, 4096, 4);
        assert!(g.is_pow2());
        assert_eq!(g.decompose_pow2(), vec![g]);
    }

    #[test]
    fn non_pow2_decomposition_preserves_work() {
        // GPT2's 1600×6400 MLP (Table I).
        let g = GemmSpec::new(1600, 6400, 4);
        let parts = g.decompose_pow2();
        assert!(parts.iter().all(|p| p.is_pow2()));
        let macs: u64 = parts.iter().map(|p| p.macs()).sum();
        assert_eq!(macs, g.macs());
        // 1600 = 1024 + 512 + 64; 6400 = 4096 + 2048 + 256.
        assert_eq!(parts.len(), 9);
    }

    #[test]
    fn sub_16_tails_merge_into_one_padded_part() {
        // m = 7 → binary parts [4, 2, 1]: one padded 16 part, not three
        // (independent rounding tripled the padded work).
        let g = GemmSpec::new(7, 2048, 4);
        assert_eq!(g.decompose_pow2(), vec![GemmSpec::new(16, 2048, 4)]);
        // m = 23 = 16 + 4 + 2 + 1 → [16, 16]; k = 100 = 64 + 32 + 4 →
        // [64, 32, 16].
        let g = GemmSpec::new(23, 100, 2);
        let parts = g.decompose_pow2();
        assert_eq!(parts.len(), 6);
        let padded: u64 = parts.iter().map(|p| p.macs()).sum();
        assert_eq!(padded, 32 * 112 * 2, "Σm=32, Σk=112");
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(200))]

        #[test]
        fn decomposition_work_is_minimally_padded(m in 1usize..3000, k in 1usize..3000) {
            // Work preservation under padding: the decomposition covers
            // exactly the block-row-padded matrix — each dimension rounds
            // up to the next multiple of 16 *once*, never per tail part.
            let g = GemmSpec::new(m | 1, k | 1, 3); // odd dims stress tails
            let parts = g.decompose_pow2();
            proptest::prop_assert!(parts.iter().all(|p| p.is_pow2() && p.m >= 16 && p.k >= 16));
            let padded_m = (g.m.div_ceil(16) * 16) as u64;
            let padded_k = (g.k.div_ceil(16) * 16) as u64;
            let macs: u64 = parts.iter().map(|p| p.macs()).sum();
            proptest::prop_assert_eq!(macs, padded_m * padded_k * g.n as u64);
        }
    }

    #[test]
    fn dlrm_bottom_mlp_decomposition() {
        // 2560 = 2048 + 512.
        let g = GemmSpec::new(2560, 512, 4);
        let parts = g.decompose_pow2();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0], GemmSpec::new(2048, 512, 4));
        assert_eq!(parts[1], GemmSpec::new(512, 512, 4));
    }

    #[test]
    fn intensity_scales_with_batch() {
        let g1 = GemmSpec::new(1024, 4096, 1);
        let g32 = GemmSpec::new(1024, 4096, 32);
        assert!((g1.operational_intensity() - 0.5).abs() < 1e-12);
        assert!((g32.operational_intensity() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn tiny_tail_dimensions_round_to_a_block() {
        // DLRM top MLP output dimension 1 → padded to 16 (one f32 block).
        let g = GemmSpec::new(128, 1, 4);
        let parts = g.decompose_pow2();
        assert_eq!(parts, vec![GemmSpec::new(128, 16, 4)]);
    }
}
