//! CPU baselines: the measured-Xeon-equivalent model and the idealized CPU.
//!
//! The paper measures a 28-core Intel Xeon Platinum 8280 running oneDNN. We
//! have no Xeon; per the reproduction's substitution policy (DESIGN.md §4),
//! we use a calibrated analytic model that preserves the paper's measured
//! *ratios*, which is all the comparisons consume:
//!
//! * batch-1 1024×4096 GEMM ≈ 12× slower than StepStone-BG (§V-A) — the
//!   model's effective bandwidth of 13 B/cycle (≈15.6 GB/s) reflects
//!   oneDNN's packing pass and the poor prefetch behaviour of tall-skinny
//!   GEMMs on a real Xeon, not the machine's STREAM bandwidth;
//! * batch-32 ≈ 1.2–1.4× the batch-1 latency ("if the CPU is allowed 20%
//!   additional latency for batch-32 execution", §I);
//! * the idealized CPU (`iCPU`, Fig. 8) is StepStone-CH-like: it streams `A`
//!   at the full two-channel bandwidth (§V-B: "We estimate idealized
//!   performance with our StepStone-CH, which maximally utilizes memory
//!   channel bandwidth").

use crate::gemm::GemmSpec;
use crate::report::{LatencyReport, Phase};
use serde::{Deserialize, Serialize};

/// Calibrated analytic model of the measured CPU.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CpuModel {
    /// Effective weight-streaming bandwidth, bytes per DRAM cycle.
    pub eff_bw_bytes_per_cycle: f64,
    /// Effective fp32 throughput, flops per DRAM cycle (≈50% of the Xeon
    /// 8280's 4.8 Tflop/s peak, expressed at 1.2 GHz).
    pub eff_flops_per_cycle: f64,
    /// Per-batch-column latency growth (packing + more activation traffic).
    pub batch_slope: f64,
    /// Fixed per-GEMM software overhead in cycles (dispatch, packing setup).
    pub fixed_overhead: f64,
}

impl Default for CpuModel {
    fn default() -> Self {
        Self {
            eff_bw_bytes_per_cycle: 13.0,
            eff_flops_per_cycle: 2000.0,
            batch_slope: 0.012,
            fixed_overhead: 20_000.0,
        }
    }
}

impl CpuModel {
    /// Latency of one GEMM in DRAM cycles. The per-batch overhead models
    /// oneDNN's packing pass for small batches and saturates at batch 32 —
    /// past that, the GEMM behaves like a well-blocked compute-bound kernel.
    pub fn cycles(&self, spec: &GemmSpec) -> u64 {
        let mem = spec.a_bytes() as f64 / self.eff_bw_bytes_per_cycle;
        let comp = spec.flops() as f64 / self.eff_flops_per_cycle;
        let overhead_batch = spec.n.min(32) as f64;
        let base = (mem * (1.0 + self.batch_slope * overhead_batch)).max(comp);
        (base + self.fixed_overhead) as u64
    }

    pub fn report(&self, spec: &GemmSpec) -> LatencyReport {
        let mut r = LatencyReport { backend: "CPU".into(), ..Default::default() };
        r.total = self.cycles(spec);
        r.add_phase(Phase::CpuTime, r.total);
        r
    }

    /// Achieved Gflop/s for the roofline plots.
    pub fn gflops(&self, spec: &GemmSpec) -> f64 {
        // The host model is calibrated in DDR4-2400 command-clock cycles;
        // its wall-clock conversion is pinned to that clock regardless of
        // which DRAM preset the PIM side simulates.
        spec.flops() as f64
            / (self.cycles(spec) as f64 / stepstone_dram::DramConfig::default().clock_hz as f64)
            / 1e9
    }
}

/// The idealized CPU (iCPU): full two-channel streaming of all operands plus
/// peak-rate arithmetic.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct IdealCpuModel {
    /// Channels × bytes/cycle/channel.
    pub bytes_per_cycle: f64,
    /// Peak CPU flops per DRAM cycle.
    pub flops_per_cycle: f64,
}

impl Default for IdealCpuModel {
    fn default() -> Self {
        Self { bytes_per_cycle: 32.0, flops_per_cycle: 4032.0 }
    }
}

impl IdealCpuModel {
    pub fn cycles(&self, spec: &GemmSpec) -> u64 {
        let bytes = (spec.a_bytes() + spec.b_bytes() + spec.c_bytes()) as f64;
        let mem = bytes / self.bytes_per_cycle;
        let comp = spec.flops() as f64 / self.flops_per_cycle;
        mem.max(comp) as u64
    }

    pub fn report(&self, spec: &GemmSpec) -> LatencyReport {
        let mut r = LatencyReport { backend: "iCPU".into(), ..Default::default() };
        r.total = self.cycles(spec);
        r.add_phase(Phase::CpuTime, r.total);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch32_costs_at_most_40_percent_more() {
        // §I: the CPU reaches batch-32 within ~1.2× of its batch-1 latency.
        let cpu = CpuModel::default();
        let b1 = cpu.cycles(&GemmSpec::new(1024, 4096, 1));
        let b32 = cpu.cycles(&GemmSpec::new(1024, 4096, 32));
        let ratio = b32 as f64 / b1 as f64;
        assert!((1.1..1.45).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn icpu_is_faster_than_cpu() {
        let cpu = CpuModel::default();
        let icpu = IdealCpuModel::default();
        for n in [1, 4, 32] {
            let spec = GemmSpec::new(1024, 4096, n);
            assert!(icpu.cycles(&spec) < cpu.cycles(&spec));
        }
    }

    #[test]
    fn small_batch_gemm_is_bandwidth_bound() {
        // The motivating observation (§II): small-N GEMM throughput is far
        // below the compute roofline.
        let cpu = CpuModel::default();
        let spec = GemmSpec::new(1024, 4096, 4);
        let peak_gflops = cpu.eff_flops_per_cycle
            * stepstone_dram::DramConfig::default().clock_hz as f64
            / 1e9;
        assert!(cpu.gflops(&spec) < 0.2 * peak_gflops);
    }

    #[test]
    fn big_batch_becomes_compute_bound() {
        let cpu = CpuModel::default();
        let slow = cpu.cycles(&GemmSpec::new(1024, 4096, 1024));
        let mem_only = (GemmSpec::new(1024, 4096, 1024).a_bytes() as f64 / 13.0) as u64;
        assert!(slow > 2 * mem_only, "compute term must dominate at N=1024");
    }
}
