//! Prior main-memory PIM approaches compared in the paper: PEI (Ahn et al.)
//! and naive Chopim (Cho et al.), §IV "Comparisons".
//!
//! Both run on the *same* PIM hardware (Fig. 3) — only the
//! localization/reduction mechanism and the kernel granularity differ:
//!
//! * **PEI** processes one cache block per host-issued command packet; the
//!   command bus caps PIM throughput, which is why "using more PIMs with
//!   PEI only increases overhead" (§V-B).
//! * **nCHO** executes the GEMM as N independent GEMV kernels over aligned
//!   vectors: the weight matrix streams once *per batch column*, B vectors
//!   replicate to every active PIM, and per-PIM partial results cover all M
//!   rows — the missed-locality baseline motivating StepStone's grouping.
//!
//! The *enhanced* Chopim (eCHO) shares StepStone's flow and lives in
//! [`crate::flow`] (per-dot-product granularity + host-mediated copies).

use crate::config::SystemConfig;
use crate::engine::{run_phase_auto, Step, TrafficCursor, UnitCursor};
use crate::flow::{GemmContext, SimOptions};
use crate::gemm::GemmSpec;
use crate::report::{ActivityCounts, LatencyReport, Phase};
use stepstone_addr::{PimLevel, RegionPlan, StepStoneAgen};
use stepstone_dram::{
    AnalyticState, BackendKind, CommandBus, MemoryBackend, TimingState, TrafficSource,
};
#[cfg(test)]
use stepstone_dram::Port;
use stepstone_pim::{KernelGranularity, LocalizationMode, PimLevelConfig};

const HOST_COPY_GAP: u64 = 4;

/// Simulate PEI execution of one GEMM at the given PIM level.
pub fn simulate_pei(
    sys: &SystemConfig,
    spec: &GemmSpec,
    level: PimLevel,
    mut traffic: Option<&mut dyn TrafficSource>,
) -> LatencyReport {
    let mut report = LatencyReport { backend: format!("PEI-{}", level.tag()), ..Default::default() };
    for sub in spec.decompose_pow2() {
        let r = simulate_pei_pow2(sys, &sub, level, stepstone_dram::traffic::reborrow(&mut traffic));
        report.chain(&r);
    }
    report.backend = format!("PEI-{}", level.tag());
    report
}

fn simulate_pei_pow2(
    sys: &SystemConfig,
    spec: &GemmSpec,
    level: PimLevel,
    traffic: Option<&mut dyn TrafficSource>,
) -> LatencyReport {
    let opts = SimOptions {
        level_cfg: PimLevelConfig::nominal(level),
        granularity: KernelGranularity::PerCacheBlock,
        subset_drop_bits: 0,
        localization: Some(LocalizationMode::HostMediated { gap_cycles: HOST_COPY_GAP }),
    };
    let ctx = GemmContext::build(sys, spec, &opts);
    match sys.backend {
        BackendKind::Exact => {
            let mut ts = TimingState::new(sys.dram);
            if sys.trace {
                ts.enable_trace();
            }
            simulate_pei_engine(&mut ts, sys, &opts, traffic, &ctx)
        }
        BackendKind::Analytic => {
            let mut ts = AnalyticState::new(sys.dram);
            simulate_pei_engine(&mut ts, sys, &opts, traffic, &ctx)
        }
    }
}

fn simulate_pei_engine<B: MemoryBackend>(
    ts: &mut B,
    sys: &SystemConfig,
    opts: &SimOptions,
    traffic: Option<&mut dyn TrafficSource>,
    ctx: &GemmContext,
) -> LatencyReport {
    let mut bus = CommandBus::new(sys.dram.geom.channels as usize);
    let mut report = LatencyReport { clock_hz: sys.dram.clock_hz, ..Default::default() };
    let mut tcur = traffic.map(|t| TrafficCursor::new(t, 0));

    // The CPU writes B operand panels into PIM scratchpads over the channel.
    let mut loc = crate::flow::transfer_cursors(
        ctx,
        &ctx.b_regions,
        true,
        Phase::Localization,
        0,
        HOST_COPY_GAP,
    );
    let loc_end = run_phase_auto(ts, &mut bus, &ctx.mapping, &mut loc, tcur.as_mut(), sys.parallel);
    report.add_phase(Phase::Localization, loc_end);

    // Kernel: one command packet per cache block, in plain address order
    // (the host performs address generation; no PIM-side AGEN). The packet
    // stream is generated lazily straight off the AGEN walk, replayed
    // through the span-program cache.
    let mut units: Vec<UnitCursor> = ctx
        .active_pims
        .iter()
        .map(|&pim| {
            let steps = StepStoneAgen::new(ctx.ga.pim_constraints(pim), ctx.layout.base, ctx.layout.end())
                .span_program()
                .steps()
                .flat_map(|s| {
                    [
                        Step::Launch,
                        Step::Access {
                            pa: s.pa,
                            write: false,
                            cat: Phase::Gemm,
                            agen_iters: 0,
                            compute: true,
                        },
                    ]
                });
            let mut u = UnitCursor::new(
                "pei",
                ctx.pim_channel(pim),
                opts.level_cfg.port(),
                steps,
                loc_end,
                opts.level_cfg.compute_cycles_per_block(ctx.n),
                opts.level_cfg.simd_ops_per_block(ctx.n),
                opts.level_cfg.pipeline_depth as usize,
                sys.launch.slots_per_pei_packet,
                sys.launch.launch_latency,
                sys.dram.timing.t_bl,
                None,
            );
            // PEI instruction packets stream back-to-back from the host.
            u.pipelined_launch = true;
            u
        })
        .collect();
    let kernel_end = run_phase_auto(ts, &mut bus, &ctx.mapping, &mut units, tcur.as_mut(), sys.parallel);
    let mut activity = ActivityCounts::default();
    for u in &units {
        report.phase_cycles[Phase::Gemm.index()] =
            report.phase_cycles[Phase::Gemm.index()].max(u.cat_cycles[Phase::Gemm.index()]);
        activity.simd_ops += u.simd_ops;
        activity.scratchpad_accesses += u.scratch_accesses;
        activity.launches += u.launches;
    }

    // The CPU reads back partial C from scratchpads.
    let mut red = crate::flow::transfer_cursors(
        ctx,
        &ctx.c_regions,
        false,
        Phase::Reduction,
        kernel_end,
        HOST_COPY_GAP,
    );
    let red_end = run_phase_auto(ts, &mut bus, &ctx.mapping, &mut red, tcur.as_mut(), sys.parallel);
    report.add_phase(Phase::Reduction, red_end - kernel_end);
    report.total = red_end;
    report.dram = *ts.stats();
    report.activity = activity;
    report.backend = "PEI".into();
    report
}

/// Simulate naive Chopim (nCHO): the GEMM as N GEMV kernels.
pub fn simulate_ncho(
    sys: &SystemConfig,
    spec: &GemmSpec,
    level: PimLevel,
    mut traffic: Option<&mut dyn TrafficSource>,
) -> LatencyReport {
    let mut report =
        LatencyReport { backend: format!("nCHO-{}", level.tag()), ..Default::default() };
    for sub in spec.decompose_pow2() {
        let r = simulate_ncho_pow2(sys, &sub, level, stepstone_dram::traffic::reborrow(&mut traffic));
        report.chain(&r);
    }
    report.backend = format!("nCHO-{}", level.tag());
    report
}

fn simulate_ncho_pow2(
    sys: &SystemConfig,
    spec: &GemmSpec,
    level: PimLevel,
    traffic: Option<&mut dyn TrafficSource>,
) -> LatencyReport {
    let opts = SimOptions::stepstone(level);
    // Context only provides the mapping/layout/partition algebra; nCHO
    // carves its own vector regions.
    let ctx = GemmContext::build(sys, spec, &opts);
    let cfg = PimLevelConfig::nominal(level);
    match sys.backend {
        BackendKind::Exact => {
            let mut ts = TimingState::new(sys.dram);
            if sys.trace {
                ts.enable_trace();
            }
            simulate_ncho_engine(&mut ts, sys, spec, &cfg, traffic, &ctx)
        }
        BackendKind::Analytic => {
            let mut ts = AnalyticState::new(sys.dram);
            simulate_ncho_engine(&mut ts, sys, spec, &cfg, traffic, &ctx)
        }
    }
}

fn simulate_ncho_engine<B: MemoryBackend>(
    ts: &mut B,
    sys: &SystemConfig,
    spec: &GemmSpec,
    cfg: &PimLevelConfig,
    traffic: Option<&mut dyn TrafficSource>,
    ctx: &GemmContext,
) -> LatencyReport {
    let mut bus = CommandBus::new(sys.dram.geom.channels as usize);
    let mut report = LatencyReport { clock_hz: sys.dram.clock_hz, ..Default::default() };
    let mut tcur = traffic.map(|t| TrafficCursor::new(t, 0));

    // Per-PIM vector regions: b (K f32, fully replicated — "requires copies
    // across PIM units to ensure all data is local", §II) and y (M f32 of
    // partials — no grouping means every PIM touches every output row).
    let b_blocks = (spec.k as u64 * 4).div_ceil(64);
    let y_blocks = (spec.m as u64 * 4).div_ceil(64);
    let carve = |pim: u32, arena: u64, count: u64| -> RegionPlan {
        RegionPlan::carve(ctx.ga.pim_constraints(pim), arena, count)
    };
    let b_regions: Vec<RegionPlan> = ctx
        .active_pims
        .iter()
        .map(|&p| carve(p, sys.buffer_base, b_blocks))
        .collect();
    let y_regions: Vec<RegionPlan> = ctx
        .active_pims
        .iter()
        .map(|&p| carve(p, sys.buffer_base + (1 << 31), y_blocks))
        .collect();

    let mut activity = ActivityCounts::default();
    let mut t = 0u64;
    for _gemv in 0..spec.n {
        // Localize b_j to every PIM (host-mediated).
        let mut loc = crate::flow::transfer_cursors(
            ctx,
            &b_regions,
            true,
            Phase::Localization,
            t,
            HOST_COPY_GAP,
        );
        let loc_end = run_phase_auto(ts, &mut bus, &ctx.mapping, &mut loc, tcur.as_mut(), sys.parallel);
        report.add_phase(Phase::Localization, loc_end - t);

        // GEMV kernel per PIM: fill b, stream all local A blocks, drain y —
        // all three sections chained lazily.
        let mut units: Vec<UnitCursor> = ctx
            .active_pims
            .iter()
            .enumerate()
            .map(|(pix, &pim)| {
                let cs = ctx.ga.pim_constraints(pim);
                let fill_b = b_regions[pix].iter().map(|pa| Step::Access {
                    pa,
                    write: false,
                    cat: Phase::FillB,
                    agen_iters: 1,
                    compute: false,
                });
                // Chopim's aligned-vector walk: sequential within the
                // partition; no per-block AGEN cost. (Replayed spans keep
                // the N-fold re-walk of A cheap on the simulator side.)
                let gemv = StepStoneAgen::new(cs, ctx.layout.base, ctx.layout.end())
                    .span_program()
                    .steps()
                    .map(|s| Step::Access {
                        pa: s.pa,
                        write: false,
                        cat: Phase::Gemm,
                        agen_iters: 1,
                        compute: true,
                    });
                let drain_y = y_regions[pix].iter().map(|pa| Step::Access {
                    pa,
                    write: true,
                    cat: Phase::DrainC,
                    agen_iters: 1,
                    compute: false,
                });
                let steps = std::iter::once(Step::Launch).chain(fill_b).chain(gemv).chain(drain_y);
                UnitCursor::new(
                    "ncho",
                    ctx.pim_channel(pim),
                    cfg.port(),
                    steps,
                    loc_end,
                    cfg.compute_cycles_per_block(1),
                    cfg.simd_ops_per_block(1),
                    cfg.pipeline_depth as usize,
                    sys.launch.slots_per_launch,
                    sys.launch.launch_latency,
                    sys.dram.timing.t_bl,
                    None,
                )
            })
            .collect();
        let kernel_end = run_phase_auto(ts, &mut bus, &ctx.mapping, &mut units, tcur.as_mut(), sys.parallel);
        for u in &units {
            for p in [Phase::Gemm, Phase::FillB, Phase::DrainC] {
                let i = p.index();
                report.phase_cycles[i] += u.cat_cycles[i] / ctx.active_pims.len() as u64;
            }
            activity.simd_ops += u.simd_ops;
            activity.scratchpad_accesses += u.scratch_accesses;
            activity.launches += u.launches;
        }

        // Reduce y across all PIMs (host-mediated).
        let mut red = crate::flow::transfer_cursors(
            ctx,
            &y_regions,
            false,
            Phase::Reduction,
            kernel_end,
            HOST_COPY_GAP,
        );
        let red_end = run_phase_auto(ts, &mut bus, &ctx.mapping, &mut red, tcur.as_mut(), sys.parallel);
        report.add_phase(Phase::Reduction, red_end - kernel_end);
        t = red_end;
    }
    report.total = t;
    report.dram = *ts.stats();
    report.activity = activity;
    report.backend = "nCHO".into();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::simulate_gemm;

    #[test]
    fn ncho_pays_for_missing_batch_locality() {
        // nCHO streams A once per batch column: ≈N× the weight traffic.
        let sys = SystemConfig::default();
        let spec = GemmSpec::new(512, 2048, 4);
        let stp = simulate_gemm(&sys, &spec, PimLevel::BankGroup);
        let ncho = simulate_ncho(&sys, &spec, PimLevel::BankGroup, None);
        assert!(
            ncho.total > 2 * stp.total,
            "ncho={} stp={}",
            ncho.total,
            stp.total
        );
        // A-traffic ratio ≈ N.
        let port = Port::BgInternal.index();
        let ratio =
            ncho.dram.reads_by_port[port] as f64 / stp.dram.reads_by_port[port] as f64;
        assert!(ratio > 2.5, "A re-read ratio = {ratio}");
    }

    #[test]
    fn pei_collapses_at_bank_group_level() {
        // §V-B: PEI cannot feed 16 BG PIMs through the command bus, so
        // "using more PIMs with PEI only increases overhead".
        let sys = SystemConfig::default();
        let spec = GemmSpec::new(512, 2048, 4);
        let stp_bg = simulate_gemm(&sys, &spec, PimLevel::BankGroup);
        let stp_dv = simulate_gemm(&sys, &spec, PimLevel::Device);
        let pei_bg = simulate_pei(&sys, &spec, PimLevel::BankGroup, None);
        let pei_dv = simulate_pei(&sys, &spec, PimLevel::Device, None);
        assert!(
            pei_bg.total as f64 > 1.5 * stp_bg.total as f64,
            "pei={} stp={}",
            pei_bg.total,
            stp_bg.total
        );
        // StepStone gains substantially from 4× the PIM units; PEI gains
        // almost nothing (command-bandwidth-bound).
        let stp_gain = stp_dv.total as f64 / stp_bg.total as f64;
        let pei_gain = pei_dv.total as f64 / pei_bg.total as f64;
        assert!(stp_gain > 1.4, "stp gain {stp_gain}");
        assert!(pei_gain < 1.25, "pei gain {pei_gain}");
    }

    #[test]
    fn baselines_slower_than_stepstone_end_to_end() {
        let sys = SystemConfig::default();
        let spec = GemmSpec::new(1024, 4096, 4);
        let stp = simulate_gemm(&sys, &spec, PimLevel::BankGroup).total;
        let echo = crate::flow::simulate_gemm_opt(
            &sys,
            &spec,
            &SimOptions::echo(PimLevel::BankGroup),
            None,
        )
        .total;
        let ncho = simulate_ncho(&sys, &spec, PimLevel::BankGroup, None).total;
        let pei = simulate_pei(&sys, &spec, PimLevel::BankGroup, None).total;
        assert!(stp < echo && echo < ncho, "stp={stp} echo={echo} ncho={ncho}");
        assert!(stp < pei, "stp={stp} pei={pei}");
    }
}
