//! The closed-form analytic GEMM executor — the production path of the
//! `Analytic` memory-backend tier.
//!
//! Instead of driving the phase engine block by block, this module costs
//! each Algorithm-1 phase directly from the [`GemmContext`] aggregates
//! (per-PIM region sizes, per-cell `B` slice lengths, per-rpart resident
//! `C` blocks) using the steady-state recurrences the exact engine settles
//! into:
//!
//! * a same-(bank, row) run streams at the CAS cadence
//!   `max(tCCDL, tCCDS, tBL)` (or the SIMD's `compute_cycles_per_block`
//!   when the kernel is compute-bound),
//! * a row switch costs nothing while the row's run is long enough to
//!   cover the bank-cycle floor `tRC / banks` (ACT/PRE pipelined across
//!   the bank interleave), and the excess otherwise,
//! * DMA transfer phases stream one block per CAS slot per channel,
//!   round-robin across per-PIM regions.
//!
//! The model is *approximate by design*: command-bus slot contention,
//! FR-FCFS reordering transients, and read↔write turnarounds are not
//! modeled (they are second-order on the shapes the paper sweeps). The
//! four-activate window enters the row-switch floor (`tFAW/4` vs
//! `tRC/banks`), and refresh — when enabled — is costed as a uniform
//! `tREFI/(tREFI − tRFC)` availability stretch rather than discrete REFs.
//! `crates/bench/tests/engine_matrix.rs` pins the error band against the
//! exact tier and checks that relative latency ordering across Table-I
//! shapes is preserved; `bench_sim` commits the speedup floor.

use crate::config::SystemConfig;
use crate::flow::{GemmContext, SimOptions};
use crate::gemm::GemmSpec;
use crate::report::{ActivityCounts, LatencyReport, Phase};
use stepstone_dram::{DramConfig, Port};
use stepstone_fabric::ReduceVia;
use stepstone_pim::KernelGranularity;

/// One streamed stage: `blocks` same-direction accesses with mean
/// same-(bank, row) run length `run`, at per-block cadence `d`.
/// Returns (cycles, row_switches).
fn stream_cycles(cfg: &DramConfig, blocks: u64, run: f64, d: u64) -> (u64, u64) {
    if blocks == 0 {
        return (0, 0);
    }
    let t = &cfg.timing;
    let rows = (blocks as f64 / run.max(1.0)).ceil() as u64;
    // ACT/PRE of the next row pipelines under the current run across the
    // bank interleave; only the shortfall against the bank-cycle floor
    // stalls the stream. The four-activate window caps ACT cadence at one
    // per tFAW/4 regardless of how many banks interleave, so the floor is
    // the max of both constraints.
    let banks = (cfg.geom.banks_per_bankgroup as u64).max(1);
    let floor = t.t_rc.div_ceil(banks).max(t.t_faw.div_ceil(4));
    let per_row = (run.max(1.0) as u64).saturating_mul(d);
    let excess = floor.saturating_sub(per_row);
    // First access of the stage opens its row.
    (t.t_rcd + t.t_cl + blocks * d + rows * excess, rows)
}

/// Cost one DMA transfer phase (localization or reduction): per-channel
/// block counts stream at the cross-bank-group CAS cadence, channels in
/// parallel. Returns (phase cycles, total blocks, per-channel cycles) —
/// the per-channel vector is each channel's own completion offset, which
/// the fabric reduce uses as injection times.
fn transfer_phase(
    sys: &SystemConfig,
    ctx: &GemmContext,
    per_pim_blocks: &[u64],
    gap: u64,
) -> (u64, u64, Vec<u64>) {
    let cfg = &sys.dram;
    let t = &cfg.timing;
    // Round-robin across regions alternates bank groups, so the stream
    // runs at tCCDS, not tCCDL; the DMA's inter-block gap binds when the
    // host mediates the transfer.
    let d = t.t_ccds.max(t.t_bl).max(gap);
    let channels = cfg.geom.channels;
    let mut per_ch = vec![0u64; channels as usize];
    for (pix, &pim) in ctx.active_pims.iter().enumerate() {
        per_ch[ctx.pim_channel(pim) as usize] += per_pim_blocks[pix];
    }
    let total: u64 = per_ch.iter().sum();
    let cycles: Vec<u64> =
        per_ch.iter().map(|&b| stream_cycles(cfg, b, 8.0, d).0).collect();
    let end = cycles.iter().copied().max().unwrap_or(0);
    (end, total, cycles)
}

/// Simulate one power-of-two GEMM in closed form (no per-command state).
pub(crate) fn execute_pow2_gemm(
    sys: &SystemConfig,
    _spec: &GemmSpec,
    opts: &SimOptions,
    ctx: &GemmContext,
) -> LatencyReport {
    let cfg = &sys.dram;
    let t = &cfg.timing;
    let cas = t.t_ccdl.max(t.t_ccds).max(t.t_bl);
    let echo = opts.granularity == KernelGranularity::PerDotProduct;
    let loc_mode = opts.localization.unwrap_or(sys.localization);
    let gap = loc_mode.inter_block_gap();
    let port = opts.level_cfg.port().index();
    let n = ctx.n;

    let mut report = LatencyReport::default();
    let mut stats = stepstone_dram::DramStats::default();
    let mut activity = ActivityCounts::default();

    // Phase 1: localization — replicate B into the per-PIM regions.
    let b_counts: Vec<u64> = ctx.b_slice_lens.iter().map(|l| l.iter().sum()).collect();
    let (loc_end, loc_blocks, _) = transfer_phase(sys, ctx, &b_counts, gap);
    report.add_phase(Phase::Localization, loc_end);
    stats.writes += loc_blocks;
    stats.writes_by_port[Port::Channel.index()] += loc_blocks;

    // Rows of each (group, rpart) cell — matrix rows, each owning
    // `cols_here` A blocks per admissible PIM.
    let rparts = ctx.plan.rparts as usize;
    let rows_per_rpart = ctx.layout.rows / rparts;
    let mut rows_by_rpart_group = vec![vec![0u64; ctx.ga.n_groups()]; rparts];
    for r in 0..ctx.layout.rows {
        rows_by_rpart_group[(r / rows_per_rpart).min(rparts - 1)][ctx.ga.group_of_row(r)] += 1;
    }

    // Phase 2: the kernel, per PIM; PIMs run in parallel on disjoint bank
    // partitions, so the phase ends at the slowest PIM.
    let d_gemm = cas.max(opts.level_cfg.compute_cycles_per_block(n));
    let simd_per_block = opts.level_cfg.simd_ops_per_block(n);
    // VA→PA paging composes analytically: a non-identity map can only
    // break a same-(bank, row) run at page crossings (within one page key
    // equality is translation-invariant), so expected boundaries add —
    // 1/L' = 1/L + 1/page_blocks — and every kernel stream pays the PTW's
    // AGEN cost once per page it touches. Identity maps leave runs alone.
    let paging = ctx.page_map.as_ref();
    let compose_run = |run: f64| match paging {
        Some(pm) if !pm.is_identity() => {
            let page_blocks = (pm.page_bytes() / stepstone_addr::BLOCK_BYTES) as f64;
            1.0 / (1.0 / run.max(1.0) + 1.0 / page_blocks)
        }
        _ => run,
    };
    let ptw_extra = |blocks: u64| match paging {
        Some(pm) if pm.ptw_cycles() > 0 && blocks > 0 => {
            let page_blocks = (pm.page_bytes() / stepstone_addr::BLOCK_BYTES).max(1);
            blocks.div_ceil(page_blocks) * pm.ptw_cycles() as u64
        }
        _ => 0,
    };
    let fill_run = |kr: &Option<stepstone_addr::KeyRuns>| {
        compose_run(kr.as_ref().map_or(cfg.geom.blocks_per_row as f64, |k| k.mean_run_len()))
    };
    let mut kernel_cycles = 0u64;
    let mut phase_max = [0u64; 8];
    for (pix, &pim) in ctx.active_pims.iter().enumerate() {
        let b_run = fill_run(&ctx.b_key_runs[pix]);
        let c_run = fill_run(&ctx.c_key_runs[pix]);
        let mut cells: Vec<(usize, u64)> = Vec::new(); // (group, b_len)
        let mut six = 0usize;
        for grp in 0..ctx.ga.n_groups() {
            if !ctx.ga.is_admissible(pim, grp) {
                continue;
            }
            for _cpart in 0..ctx.plan.cparts {
                cells.push((grp, ctx.b_slice_lens[pix][six]));
                six += 1;
            }
        }
        let mut cy = [0u64; 8]; // per-category cycles, this PIM
        let mut total = 0u64;
        #[allow(clippy::needless_range_loop)] // rp also indexes c_blocks_by_rpart
        for rp in 0..rparts {
            // Launch: one per rpart (coarse kernels) or one per matrix row
            // (eCHO per-dot-product kernels, counted in the cell loop).
            if !echo {
                total += sys.launch.launch_latency;
                cy[Phase::Launch.index()] += sys.launch.launch_latency;
                activity.launches += 1;
            }
            let fc = if ctx.direct_scratchpad { 0 } else { ctx.c_blocks_by_rpart[pix][rp] };
            let (fc_cy, fc_rows) = stream_cycles(cfg, fc, c_run, cas);
            let fc_cy = fc_cy + ptw_extra(fc);
            activity.agen_iterations += ptw_extra(fc);
            total += fc_cy;
            cy[Phase::FillC.index()] += fc_cy;
            stats.reads += fc;
            stats.reads_by_port[port] += fc;
            stats.row_misses += fc_rows;
            activity.scratchpad_accesses += fc;
            for &(grp, b_len) in &cells {
                let fb = if ctx.direct_scratchpad { 0 } else { b_len };
                let (fb_cy, fb_rows) = stream_cycles(cfg, fb, b_run, cas);
                let fb_cy = fb_cy + ptw_extra(fb);
                // A blocks of this cell: the cell's column blocks across
                // its admissible matrix rows in this rpart. Each span is a
                // same-row run of `cols_here` blocks.
                let cols_here = b_len / n.max(1) as u64;
                let g_blocks = cols_here * rows_by_rpart_group[rp][grp];
                let (g_cy, g_rows) =
                    stream_cycles(cfg, g_blocks, compose_run(cols_here.max(1) as f64), d_gemm);
                let g_cy = g_cy + ptw_extra(g_blocks);
                activity.agen_iterations += ptw_extra(fb) + ptw_extra(g_blocks);
                let launch_cy = if echo {
                    activity.launches += rows_by_rpart_group[rp][grp];
                    rows_by_rpart_group[rp][grp] * sys.launch.launch_latency
                } else {
                    0
                };
                total += fb_cy + g_cy + launch_cy;
                cy[Phase::FillB.index()] += fb_cy;
                cy[Phase::Gemm.index()] += g_cy;
                cy[Phase::Launch.index()] += launch_cy;
                stats.reads += fb + g_blocks;
                stats.reads_by_port[port] += fb + g_blocks;
                stats.row_misses += fb_rows + g_rows;
                activity.scratchpad_accesses += fb + 2 * g_blocks;
                activity.simd_ops += g_blocks * simd_per_block;
                activity.agen_iterations += g_blocks + g_rows; // span heads re-correct
            }
            let dc = if ctx.direct_scratchpad { 0 } else { ctx.c_blocks_by_rpart[pix][rp] };
            let (dc_cy, dc_rows) = stream_cycles(cfg, dc, c_run, cas);
            let dc_cy = dc_cy + ptw_extra(dc);
            activity.agen_iterations += ptw_extra(dc);
            total += dc_cy;
            cy[Phase::DrainC.index()] += dc_cy;
            stats.writes += dc;
            stats.writes_by_port[port] += dc;
            stats.row_misses += dc_rows;
            activity.scratchpad_accesses += dc;
        }
        kernel_cycles = kernel_cycles.max(total);
        for i in 0..8 {
            phase_max[i] = phase_max[i].max(cy[i]);
        }
    }
    for p in [Phase::Gemm, Phase::FillB, Phase::FillC, Phase::DrainC, Phase::Launch] {
        report.phase_cycles[p.index()] = phase_max[p.index()];
    }
    let kernel_end = loc_end + kernel_cycles;

    // Phase 3: reduction — drain the per-PIM partial-C regions.
    let c_counts: Vec<u64> =
        ctx.c_blocks_by_rpart.iter().map(|per| per.iter().sum()).collect();
    let (red_cycles, red_blocks, red_per_ch) = transfer_phase(sys, ctx, &c_counts, gap);
    // Same structure as the exact tier: the per-channel local drain is
    // unchanged (and so are the DRAM counters); under `ReduceVia::Fabric`
    // each channel's drain-completion offset becomes its fabric injection
    // time and the reduce extends to the fabric's completion.
    let red_cycles = if sys.reduce_via == ReduceVia::Fabric {
        let ready: Vec<u64> = red_per_ch.iter().map(|&c| kernel_end + c).collect();
        let (fab_end, fstats) = crate::flow::fabric_reduce(sys, ctx, &ready);
        report.fabric = Some(fstats);
        (kernel_end + red_cycles).max(fab_end) - kernel_end
    } else {
        red_cycles
    };
    report.add_phase(Phase::Reduction, red_cycles);
    stats.reads += red_blocks;
    stats.reads_by_port[Port::Channel.index()] += red_blocks;

    stats.acts += stats.row_misses;
    stats.row_hits = stats.accesses().saturating_sub(stats.row_misses);
    stats.data_cycles = stats.accesses() * t.t_bl;
    activity.agen_max_step = 1;

    report.total = kernel_end + red_cycles;

    // Refresh costing: with all-bank REF enabled, each tREFI window loses
    // tRFC cycles of array availability, stretching every phase by
    // tREFI / (tREFI − tRFC). Off by default — the factor is exactly 1.0
    // and the closed form stays bit-identical to the committed counters.
    if cfg.refresh && t.t_refi > t.t_rfc {
        let stretch = t.t_refi as f64 / (t.t_refi - t.t_rfc) as f64;
        let inflate = |c: u64| (c as f64 * stretch).round() as u64;
        for c in report.phase_cycles.iter_mut() {
            *c = inflate(*c);
        }
        report.total = inflate(report.total);
        let ranks = (cfg.geom.channels * cfg.geom.ranks_per_channel) as u64;
        stats.refreshes = report.total / t.t_refi.max(1) * ranks;
    }

    report.dram = stats;
    report.activity = activity;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{simulate_gemm, simulate_pow2_gemm};
    use stepstone_addr::PimLevel;
    use stepstone_dram::BackendKind;

    fn run(sys: &SystemConfig, m: usize, k: usize, n: usize, level: PimLevel) -> LatencyReport {
        simulate_gemm(sys, &GemmSpec::new(m, k, n), level)
    }

    #[test]
    fn analytic_tracks_exact_within_error_band() {
        // The committed cross-validation: the closed-form tier lands
        // within a bounded ratio of the exact model on small shapes.
        let exact = SystemConfig::default();
        let fast = SystemConfig::default().with_backend(BackendKind::Analytic);
        for (m, k, n) in [(1024, 4096, 1), (1024, 4096, 16), (512, 2048, 4)] {
            let e = run(&exact, m, k, n, PimLevel::BankGroup).total as f64;
            let a = run(&fast, m, k, n, PimLevel::BankGroup).total as f64;
            let ratio = a / e;
            assert!(
                (0.5..2.0).contains(&ratio),
                "{m}x{k} n={n}: analytic/exact = {ratio:.3} (a={a} e={e})"
            );
        }
    }

    #[test]
    fn analytic_preserves_level_ordering_at_batch_1() {
        // Fig. 6's qualitative result must survive the fast tier.
        let fast = SystemConfig::default().with_backend(BackendKind::Analytic);
        let spec = GemmSpec::new(1024, 4096, 1);
        let bg = simulate_gemm(&fast, &spec, PimLevel::BankGroup).total;
        let dv = simulate_gemm(&fast, &spec, PimLevel::Device).total;
        let ch = simulate_gemm(&fast, &spec, PimLevel::Channel).total;
        assert!(bg < dv && dv < ch, "bg={bg} dv={dv} ch={ch}");
    }

    #[test]
    fn analytic_reads_every_a_block_once() {
        // Block conservation: the closed-form stats account each A block
        // exactly once on the PIM port, like the exact model.
        let fast = SystemConfig::default().with_backend(BackendKind::Analytic);
        let (m, k, n) = (1024usize, 4096usize, 2usize);
        let r = simulate_pow2_gemm(
            &fast,
            &GemmSpec::new(m, k, n),
            &SimOptions::stepstone(PimLevel::BankGroup),
            None,
        );
        let a_blocks = (m * k * 4 / 64) as u64;
        assert!(
            r.dram.reads_by_port[Port::BgInternal.index()] >= a_blocks,
            "{} < {a_blocks}",
            r.dram.reads_by_port[Port::BgInternal.index()]
        );
        assert_eq!(r.clock_hz, stepstone_dram::DramConfig::default().clock_hz);
    }

    #[test]
    fn tfaw_ceiling_binds_when_faw_exceeds_bank_cycle() {
        // Synthetic part where tFAW/4 dominates tRC/banks: short rows must
        // pay the four-activate shortfall.
        let mut cfg = stepstone_dram::DramConfig::default();
        let base = stream_cycles(&cfg, 1024, 2.0, 6).0;
        cfg.timing.t_faw = 400; // tFAW/4 = 100 ≫ tRC/banks
        let capped = stream_cycles(&cfg, 1024, 2.0, 6).0;
        assert!(capped > base, "capped={capped} base={base}");
        // Long same-row runs cover the window; no penalty either way.
        let long_base = stream_cycles(&cfg, 1024, 64.0, 6).0;
        cfg.timing.t_faw = 26;
        assert_eq!(stream_cycles(&cfg, 1024, 64.0, 6).0, long_base);
    }

    #[test]
    fn preset_tfaw_never_exceeds_bank_cycle_floor() {
        // On every shipped part the bank-interleave floor dominates, so
        // adding the tFAW term leaves committed preset cycles unchanged.
        for name in stepstone_dram::DramConfig::PRESET_NAMES {
            let cfg = stepstone_dram::DramConfig::by_name(name).unwrap();
            let t = &cfg.timing;
            let banks = (cfg.geom.banks_per_bankgroup as u64).max(1);
            assert!(
                t.t_faw.div_ceil(4) <= t.t_rc.div_ceil(banks),
                "{name}: tFAW/4={} > tRC/banks={}",
                t.t_faw.div_ceil(4),
                t.t_rc.div_ceil(banks)
            );
        }
    }

    #[test]
    fn refresh_costing_stretches_analytic_latency() {
        let fast = SystemConfig::default().with_backend(BackendKind::Analytic);
        let mut refreshed = fast.clone();
        refreshed.dram.refresh = true;
        let spec = GemmSpec::new(1024, 4096, 4);
        let off = simulate_gemm(&fast, &spec, PimLevel::BankGroup);
        let on = simulate_gemm(&refreshed, &spec, PimLevel::BankGroup);
        assert!(on.total > off.total, "on={} off={}", on.total, off.total);
        // The stretch is tREFI/(tREFI-tRFC) ≈ 3.5% for DDR4-2400.
        let ratio = on.total as f64 / off.total as f64;
        assert!((1.0..1.10).contains(&ratio), "ratio={ratio}");
        assert!(on.dram.refreshes > 0);
        assert_eq!(off.dram.refreshes, 0);
    }

    #[test]
    fn analytic_runs_on_every_preset() {
        // Preset smoke: each DramConfig preset completes under both tiers
        // at a small shape and produces a nonzero latency.
        for name in stepstone_dram::DramConfig::PRESET_NAMES {
            let dram = stepstone_dram::DramConfig::by_name(name).unwrap();
            for backend in [BackendKind::Exact, BackendKind::Analytic] {
                let sys =
                    SystemConfig::default().with_dram(dram).with_backend(backend);
                let r = run(&sys, 256, 1024, 2, PimLevel::BankGroup);
                assert!(r.total > 0, "{name} {backend:?}");
                assert_eq!(r.clock_hz, dram.clock_hz, "{name} {backend:?}");
            }
        }
    }
}
