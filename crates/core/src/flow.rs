//! The StepStone GEMM execution flow (paper §III-B/C, Algorithm 1) coupled
//! to the DRAM timing simulator.
//!
//! One GEMM proceeds through three serial macro-phases (§V-F finds
//! overlapping buffer traffic with arithmetic unprofitable):
//!
//! 1. **Localization** — the PIM controller's DMA engine (or the host, for
//!    eCHO/nCHO/PEI) replicates the cache-resident `B` panel into per-PIM
//!    regions, reorganized into consumption order (Fig. 5).
//! 2. **Kernel** — every active PIM walks Algorithm 1: per row partition,
//!    fill `C`; per block group and column partition, fill `B` and stream
//!    the PIM-local `A` blocks through the SIMD pipeline with AGEN-generated
//!    addresses; then drain `C`.
//! 3. **Reduction** — partial `C` copies are merged over the channel.

use crate::config::{AgenMode, SystemConfig};
use crate::engine::{
    run_phase_auto, PlainSteps, Step, StepSource, SubsetRemap, TrafficCursor, UnitCursor,
};
use crate::gemm::GemmSpec;
use crate::report::{ActivityCounts, LatencyReport, Phase};
use stepstone_addr::agen::Spans;
use stepstone_addr::groups::partition_constraints;
use stepstone_addr::{
    AgenSpan, GroupAnalysis, KeyRuns, MatrixLayout, NaiveAgen, PageMap, PagingConfig, PimLevel,
    RegionIter, RegionPlan, SpanProgram, StepStoneAgen, XorMapping, BLOCK_BYTES, BLOCK_SHIFT,
};
use stepstone_dram::{
    AnalyticState, BackendKind, CommandBus, MemoryBackend, Port, TimingState, TrafficSource,
};
use stepstone_fabric::{FabricState, FabricStats, ReduceVia};
use stepstone_pim::{
    BufferPlan, KernelGranularity, LocalizationMode, PimLevelConfig, TransferPlan,
};

/// Full options for one GEMM simulation.
#[derive(Debug, Clone)]
pub struct SimOptions {
    pub level_cfg: PimLevelConfig,
    pub granularity: KernelGranularity,
    /// High bank-group ID bits to drop (PIM-subset optimization, Fig. 10).
    pub subset_drop_bits: u32,
    /// Override the system's localization mode (None = use system's).
    pub localization: Option<LocalizationMode>,
}

impl SimOptions {
    pub fn stepstone(level: PimLevel) -> Self {
        Self {
            level_cfg: PimLevelConfig::nominal(level),
            granularity: KernelGranularity::CoarseStepStone,
            subset_drop_bits: 0,
            localization: None,
        }
    }

    /// Enhanced Chopim: StepStone's grouping but per-dot-product kernels and
    /// host-mediated localization/reduction (paper §IV "eCHO").
    pub fn echo(level: PimLevel) -> Self {
        Self {
            level_cfg: PimLevelConfig::nominal(level),
            granularity: KernelGranularity::PerDotProduct,
            subset_drop_bits: 0,
            localization: Some(LocalizationMode::HostMediated { gap_cycles: 4 }),
        }
    }

    pub fn with_level_cfg(mut self, cfg: PimLevelConfig) -> Self {
        self.level_cfg = cfg;
        self
    }

    pub fn with_subset(mut self, drop_bits: u32) -> Self {
        self.subset_drop_bits = drop_bits;
        self
    }
}

/// Simulate one GEMM with StepStone PIM at the given level (nominal config,
/// no colocated traffic). Non-power-of-two shapes are decomposed.
pub fn simulate_gemm(sys: &SystemConfig, spec: &GemmSpec, level: PimLevel) -> LatencyReport {
    simulate_gemm_opt(sys, spec, &SimOptions::stepstone(level), None)
}

/// Simulate one GEMM with explicit options and optional colocated traffic.
pub fn simulate_gemm_opt(
    sys: &SystemConfig,
    spec: &GemmSpec,
    opts: &SimOptions,
    mut traffic: Option<&mut dyn TrafficSource>,
) -> LatencyReport {
    let mut report = LatencyReport {
        backend: format!("STP-{}", opts.level_cfg.level.tag()),
        clock_hz: sys.dram.clock_hz,
        ..Default::default()
    };
    for sub in spec.decompose_pow2() {
        let r = simulate_pow2_gemm(sys, &sub, opts, stepstone_dram::traffic::reborrow(&mut traffic));
        report.chain(&r);
    }
    report.backend = format!(
        "{}-{}",
        match opts.granularity {
            KernelGranularity::CoarseStepStone =>
                if opts.subset_drop_bits > 0 { "STP/subset" } else { "STP" },
            KernelGranularity::PerDotProduct => "eCHO",
            KernelGranularity::PerCacheBlock => "PEI",
        },
        opts.level_cfg.level.tag()
    );
    report
}

/// Everything shape-dependent that a [`GemmContext`] build consumes: the
/// GEMM shape plus the option fields that change the mapping analysis,
/// buffer plan, span programs, or KeyRuns tables. Two requests with equal
/// keys (under one [`SystemConfig`]) can share one context.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct SessionKey {
    pub spec: GemmSpec,
    pub level: PimLevel,
    pub subset_drop_bits: u32,
    /// Scratchpad capacity drives the buffer plan (nominal vs relaxed).
    pub scratchpad_bytes: u64,
    /// [`KernelGranularity`] as a stable tag (it does not derive `Hash`).
    pub granularity: u8,
    /// The system's VA→PA paging layer: the context caches a [`PageMap`],
    /// so two systems differing only in paging must not share contexts.
    pub paging: Option<PagingConfig>,
}

impl SessionKey {
    pub fn new(spec: &GemmSpec, opts: &SimOptions) -> Self {
        Self {
            spec: *spec,
            level: opts.level_cfg.level,
            subset_drop_bits: opts.subset_drop_bits,
            scratchpad_bytes: opts.level_cfg.scratchpad_bytes,
            granularity: match opts.granularity {
                KernelGranularity::CoarseStepStone => 0,
                KernelGranularity::PerDotProduct => 1,
                KernelGranularity::PerCacheBlock => 2,
            },
            paging: None,
        }
    }

    /// [`SessionKey::new`] plus the system fields a [`GemmContext`] build
    /// bakes in (currently the paging layer) — the key the serving session
    /// cache must use.
    pub fn for_system(sys: &SystemConfig, spec: &GemmSpec, opts: &SimOptions) -> Self {
        Self { paging: sys.paging, ..Self::new(spec, opts) }
    }
}

/// The persistent session layer of the serving architecture: shape-keyed
/// reuse of [`GemmContext`]s (mapping analysis, span programs, KeyRuns,
/// region plans) across requests. Build once per distinct shape, execute
/// per request — execution itself stays cycle-exact because timing state
/// is per-pass, not cached.
///
/// Shared by reference (`Arc<SessionCache>`) between executors and serving
/// loops; interior mutability keeps the call sites `&self`.
#[derive(Default)]
pub struct SessionCache {
    ctxs: std::sync::Mutex<rustc_hash::FxHashMap<SessionKey, std::sync::Arc<GemmContext>>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl SessionCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// The cached context for `(spec, opts)` under `sys`, building (and
    /// retaining) it on first use. `spec` must already be power-of-two.
    pub fn context(
        &self,
        sys: &SystemConfig,
        spec: &GemmSpec,
        opts: &SimOptions,
    ) -> std::sync::Arc<GemmContext> {
        use std::sync::atomic::Ordering;
        let key = SessionKey::for_system(sys, spec, opts);
        if let Some(ctx) = self.ctxs.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return ctx.clone();
        }
        // Build outside the lock: context construction is the expensive
        // part and concurrent sweep threads should not serialize on it.
        // A racing duplicate build is benign (last insert wins).
        self.misses.fetch_add(1, Ordering::Relaxed);
        let ctx = std::sync::Arc::new(GemmContext::build(sys, spec, opts));
        self.ctxs.lock().unwrap().insert(key, ctx.clone());
        ctx
    }

    /// Requests served from an already-built context.
    pub fn hits(&self) -> u64 {
        self.hits.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Contexts built (first-use requests).
    pub fn misses(&self) -> u64 {
        self.misses.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Distinct shapes resident.
    pub fn len(&self) -> usize {
        self.ctxs.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// [`simulate_gemm_opt`] through the persistent session layer: identical
/// report (the build/execute split is behavioral refactoring, not a model
/// change), but repeated shapes skip the context build entirely.
pub fn simulate_gemm_session(
    sys: &SystemConfig,
    spec: &GemmSpec,
    opts: &SimOptions,
    cache: &SessionCache,
    mut traffic: Option<&mut dyn TrafficSource>,
) -> LatencyReport {
    let mut report = LatencyReport {
        backend: format!("STP-{}", opts.level_cfg.level.tag()),
        clock_hz: sys.dram.clock_hz,
        ..Default::default()
    };
    for sub in spec.decompose_pow2() {
        let ctx = cache.context(sys, &sub, opts);
        let r = simulate_pow2_gemm_ctx(
            sys,
            &sub,
            opts,
            stepstone_dram::traffic::reborrow(&mut traffic),
            ExecMode::Streaming,
            &ctx,
            0,
        );
        report.chain(&r);
    }
    report.backend = format!(
        "{}-{}",
        match opts.granularity {
            KernelGranularity::CoarseStepStone =>
                if opts.subset_drop_bits > 0 { "STP/subset" } else { "STP" },
            KernelGranularity::PerDotProduct => "eCHO",
            KernelGranularity::PerCacheBlock => "PEI",
        },
        opts.level_cfg.level.tag()
    );
    report
}

/// The static execution context shared by schedule building and validation.
pub struct GemmContext {
    pub mapping: XorMapping,
    pub layout: MatrixLayout,
    pub ga: GroupAnalysis,
    pub plan: BufferPlan,
    pub transfer: TransferPlan,
    pub active_pims: Vec<u32>,
    pub n: usize,
    /// Per-active-PIM localized `B` region (lazy span-backed plan).
    pub b_regions: Vec<RegionPlan>,
    /// Per-active-PIM partial-`C` region (lazy span-backed plan).
    pub c_regions: Vec<RegionPlan>,
    /// Per-PIM, per-row-partition resident `C` blocks.
    pub c_blocks_by_rpart: Vec<Vec<u64>>,
    /// Per-PIM, per (group visit index, cpart): `B` slice length in blocks.
    pub b_slice_lens: Vec<Vec<u64>>,
    /// Direct-scratchpad optimization active (small matrices, §III-E).
    pub direct_scratchpad: bool,
    /// Per-active-PIM tabulated same-(bank, row) run boundaries of the `B`
    /// region (None when the mapping period is untabulable or fills are
    /// bypassed): the kernel stream's fill-stage run hints.
    pub b_key_runs: Vec<Option<KeyRuns>>,
    /// Same for the partial-`C` region (FillC/DrainC hints).
    pub c_key_runs: Vec<Option<KeyRuns>>,
    /// The system's VA→PA translation map (page-colored for this context's
    /// mapping; `None` = the paper's physically contiguous arenas). Step
    /// streams translate through it and clip their run promises at page
    /// boundaries.
    pub page_map: Option<PageMap>,
}

impl GemmContext {
    pub fn build(sys: &SystemConfig, spec: &GemmSpec, opts: &SimOptions) -> Self {
        assert!(spec.is_pow2(), "decompose before building a context");
        let mapping = sys.mapping();
        let total_bytes = (spec.m * spec.k * 4) as u64;
        let base = sys.place_weights(total_bytes);
        let layout = MatrixLayout::new_f32(base, spec.m, spec.k);
        let level = opts.level_cfg.level;
        let ga = if opts.subset_drop_bits > 0 {
            GroupAnalysis::analyze_subset(&mapping, level, layout, opts.subset_drop_bits)
        } else {
            GroupAnalysis::analyze(&mapping, level, layout)
        };
        let plan = BufferPlan::plan(opts.level_cfg.scratchpad_bytes, spec.n, &ga);
        let transfer = TransferPlan::for_gemm(&ga, spec.n);
        let active_pims = ga.active_pims();
        let n = spec.n;

        // Group visit order and per-(group, cpart) B slice lengths.
        let mut b_slice_lens = Vec::with_capacity(active_pims.len());
        for &pim in &active_pims {
            let mut lens = Vec::new();
            for g in 0..ga.n_groups() {
                if !ga.is_admissible(pim, g) {
                    continue;
                }
                let cols = ga.local_cols(pim, g);
                for cpart in 0..plan.cparts as u64 {
                    let cols_here = cols_in_cpart(&cols, ga.layout.blocks_per_row(), plan.cparts, cpart);
                    // One column block of B holds 16 rows × n f32 = n blocks.
                    lens.push(cols_here * n as u64);
                }
            }
            b_slice_lens.push(lens);
        }

        // Per (PIM, rpart) resident C rows → blocks.
        let group_of_row: Vec<u16> =
            (0..layout.rows).map(|r| ga.group_of_row(r) as u16).collect();
        let rows_per_rpart = layout.rows / plan.rparts as usize;
        let mut c_blocks_by_rpart = Vec::with_capacity(active_pims.len());
        for &pim in &active_pims {
            let mut per = Vec::with_capacity(plan.rparts as usize);
            for rp in 0..plan.rparts as usize {
                let rows = (rp * rows_per_rpart..(rp + 1) * rows_per_rpart)
                    .filter(|&r| ga.is_admissible(pim, group_of_row[r] as usize))
                    .count() as u64;
                per.push((rows * n as u64 * 4).div_ceil(64));
            }
            c_blocks_by_rpart.push(per);
        }

        // Carve per-PIM regions out of the buffer arenas: span-backed plans
        // instead of materialized address lists (resident storage is
        // O(constrained bits × 2^ID bits) per plan, not O(region blocks)).
        let region = |pim: u32, arena: u64, count: u64| -> RegionPlan {
            RegionPlan::carve(ga.pim_constraints(pim), arena, count)
        };
        let c_arena = sys.buffer_base + (1u64 << 31);
        let mut b_regions = Vec::with_capacity(active_pims.len());
        let mut c_regions = Vec::with_capacity(active_pims.len());
        for (pix, &pim) in active_pims.iter().enumerate() {
            let b_count: u64 = b_slice_lens[pix].iter().sum();
            let c_count: u64 = c_blocks_by_rpart[pix].iter().sum();
            b_regions.push(region(pim, sys.buffer_base, b_count));
            c_regions.push(region(pim, c_arena, c_count));
        }

        let b_bytes_pp = transfer.b_blocks_per_pim * 64;
        let c_bytes_pp = transfer.c_blocks_per_pim * 64;
        let direct_scratchpad =
            b_bytes_pp + c_bytes_pp <= opts.level_cfg.scratchpad_bytes;

        // Tabulate the regions' same-(bank, row) run boundaries once per
        // context: the kernel streams hint whole fill runs to the engine
        // from these. Pointless when fills are bypassed entirely.
        let (b_key_runs, c_key_runs) = if direct_scratchpad {
            (vec![None; b_regions.len()], vec![None; c_regions.len()])
        } else {
            // The per-PIM plans of one matrix differ only in parity
            // targets, which provably never change the table (see
            // `RegionPlan::same_key_runs`) — tabulate each class once.
            let tabulate = |regions: &[RegionPlan]| -> Vec<Option<KeyRuns>> {
                let mut out: Vec<Option<KeyRuns>> = Vec::with_capacity(regions.len());
                for (i, r) in regions.iter().enumerate() {
                    match regions[..i].iter().position(|p| p.same_key_runs(r)) {
                        Some(j) => out.push(out[j].clone()),
                        None => out.push(r.key_runs(&mapping)),
                    }
                }
                out
            };
            (
                tabulate(&b_regions),
                tabulate(&c_regions),
            )
        };

        Self {
            mapping,
            layout,
            ga,
            plan,
            transfer,
            active_pims,
            n,
            b_regions,
            c_regions,
            c_blocks_by_rpart,
            b_slice_lens,
            direct_scratchpad,
            b_key_runs,
            c_key_runs,
            page_map: sys.page_map(),
        }
    }

    /// The channel a PIM's control traffic rides on (lowest ID bits are the
    /// channel bits by construction).
    pub fn pim_channel(&self, pim: u32) -> u32 {
        pim & (self.mapping.geometry().channels - 1)
    }

    /// The block-walk for one (pim, group, rpart, cpart) cell of
    /// Algorithm 1, honoring the configured AGEN mode (materialized; the
    /// hot path uses [`GemmContext::walk_stream`]).
    pub fn walk(
        &self,
        sys: &SystemConfig,
        pim: u32,
        grp: usize,
        rpart: u32,
        cpart: u32,
    ) -> Vec<(u64, u32)> {
        let mut w = self.walk_stream(sys.agen, pim, grp, rpart, cpart);
        let mut out = Vec::new();
        while let Some(step) = w.next() {
            out.push(step);
        }
        out
    }

    /// Streaming form of [`GemmContext::walk`]: a cursor yielding
    /// `(pa, agen_iterations)` on demand, without materializing the walk.
    pub fn walk_stream(
        &self,
        agen: AgenMode,
        pim: u32,
        grp: usize,
        rpart: u32,
        cpart: u32,
    ) -> WalkCursor {
        self.walk_stream_impl(agen, pim, grp, rpart, cpart, false)
    }

    fn walk_stream_impl(
        &self,
        agen: AgenMode,
        pim: u32,
        grp: usize,
        rpart: u32,
        cpart: u32,
        uncached_corrector: bool,
    ) -> WalkCursor {
        let mut cs = self.ga.constraints_for(pim, grp);
        cs.extend(partition_constraints(
            self.layout.mrow_mask(),
            self.plan.rparts,
            rpart,
        ));
        cs.extend(partition_constraints(
            self.layout.mcol_mask(),
            self.plan.cparts,
            cpart,
        ));
        match agen {
            AgenMode::Naive => WalkCursor::Naive(NaiveAgen::new(cs, self.layout.base, self.layout.end())),
            AgenMode::StepStone(rules) => {
                let a = StepStoneAgen::with_rules(cs, self.layout.base, self.layout.end(), rules);
                let spans = if uncached_corrector {
                    // Seed baseline: live walk with the per-candidate
                    // corrector, no span-program cache.
                    SpanSource::Live(a.use_uncached_corrector().spans())
                } else {
                    SpanSource::Program(Box::new(a.span_program()))
                };
                WalkCursor::Spanned { spans, cur: 0, remaining: 0, first_iters: 0 }
            }
        }
    }
}

/// The span generator behind a [`WalkCursor`]: the cached periodic
/// [`SpanProgram`] on the production path, the plain live generator for the
/// frozen seed baseline.
pub enum SpanSource {
    /// Boxed: the span program carries window-successor state and counters,
    /// and would otherwise dominate the `WalkCursor` enum's size.
    Program(Box<SpanProgram>),
    Live(Spans),
}

impl SpanSource {
    #[inline]
    fn next(&mut self) -> Option<AgenSpan> {
        match self {
            SpanSource::Program(p) => p.next(),
            SpanSource::Live(s) => s.next(),
        }
    }
}

/// A lazy (pa, AGEN iterations) cursor over one Algorithm-1 cell.
///
/// The StepStone variant pulls batched [`stepstone_addr::AgenSpan`] runs —
/// replayed from the periodic span-program cache on the production path —
/// and unrolls them with a span counter, so the GF(2) corrector runs at
/// most once per run instead of once per block.
pub enum WalkCursor {
    Naive(NaiveAgen),
    Spanned { spans: SpanSource, cur: u64, remaining: u64, first_iters: u32 },
}

impl WalkCursor {
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(u64, u32)> {
        match self {
            WalkCursor::Naive(a) => a.next().map(|s| (s.pa, s.iterations)),
            WalkCursor::Spanned { spans, cur, remaining, first_iters } => {
                if *remaining == 0 {
                    let span = spans.next()?;
                    *cur = span.start_pa;
                    *remaining = span.len;
                    *first_iters = span.iterations;
                }
                let pa = *cur;
                *cur += BLOCK_BYTES;
                *remaining -= 1;
                let iters = if *first_iters != 0 { std::mem::take(first_iters) } else { 1 };
                Some((pa, iters))
            }
        }
    }

    /// Whole-run hint for the engine: how many upcoming blocks (including
    /// the next) are contiguous with coordinates differing only in the
    /// column — i.e. the rest of the current span when every varying
    /// address bit is column-pure under the mapping, and otherwise the
    /// span's prefix up to the first boundary where a non-column bit
    /// flips. Long replayed spans (window-granular runs straddling a row
    /// or bank boundary) are thus promised chunk by chunk instead of not
    /// at all. 1 = no promise.
    #[inline]
    pub fn run_hint(&self, col_pure_mask: u64) -> u64 {
        match self {
            WalkCursor::Naive(_) => 1,
            WalkCursor::Spanned { cur, remaining, .. } => {
                if *remaining <= 1 {
                    return 1;
                }
                let last = *cur + (*remaining - 1) * BLOCK_BYTES;
                let top = 63 - (*cur ^ last).leading_zeros();
                let varying = (1u64 << (top + 1)) - (1u64 << BLOCK_SHIFT);
                let impure = varying & !col_pure_mask;
                if impure == 0 {
                    return *remaining;
                }
                // Addresses share every bit at or above the lowest impure
                // varying bit until the next multiple of it, so the run up
                // to that boundary still holds one window key.
                let b = impure.trailing_zeros();
                let boundary = ((*cur >> b) + 1) << b;
                (boundary - *cur) / BLOCK_BYTES
            }
        }
    }

    /// Address of the next block this cursor will yield, without advancing
    /// — valid whenever a span is in flight (which [`WalkCursor::run_hint`]
    /// returning > 1 implies). Page-clipped hints key their boundary on it.
    #[inline]
    pub fn peek_pa(&self) -> Option<u64> {
        match self {
            WalkCursor::Naive(_) => None,
            WalkCursor::Spanned { cur, remaining, .. } => {
                (*remaining > 0).then_some(*cur)
            }
        }
    }

    /// Skip up to `n` blocks of the current span without yielding them
    /// (the [`StepSource::take_run`] contract: only callable for blocks a
    /// hint already promised, each a plain one-iteration continuation).
    /// Returns the number skipped; 0 when the cursor cannot promise
    /// one-iteration continuations (naive AGEN, or a span head whose
    /// corrector cost is still unconsumed).
    #[inline]
    pub fn take_run(&mut self, n: u64) -> u64 {
        match self {
            WalkCursor::Naive(_) => 0,
            WalkCursor::Spanned { cur, remaining, first_iters, .. } => {
                if *first_iters != 0 {
                    return 0;
                }
                let k = n.min(*remaining);
                *cur += k * BLOCK_BYTES;
                *remaining -= k;
                k
            }
        }
    }
}

/// Count of a (sorted) local-column list falling in one column partition.
fn cols_in_cpart(cols: &[u64], blocks_per_row: u64, cparts: u32, cpart: u64) -> u64 {
    let span = blocks_per_row / cparts as u64;
    let lo = cpart * span;
    let hi = lo + span;
    cols.iter().filter(|&&c| c >= lo && c < hi).count() as u64
}

/// How step programs reach the engine.
///
/// `Streaming` (the production path) feeds each [`UnitCursor`] from a lazy
/// [`KernelStream`], keeping resident step storage at O(reorder window ×
/// active PIMs). `Materialized` reproduces the seed behavior — build the
/// whole `Vec<Step>` per PIM, then replay — and is kept for the
/// cycle-exactness equivalence tests and as the benchmark baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    #[default]
    Streaming,
    Materialized,
    /// `Materialized` plus the seed-era per-candidate GF(2) corrector in
    /// the AGEN — the faithful pre-streaming baseline for benchmarks.
    MaterializedSeedAgen,
}

/// Stage of the per-rpart section of Algorithm 1 a [`KernelStream`] is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KernelStage {
    Launch,
    FillC,
    FillB,
    Gemm,
    DrainC,
    Done,
}

/// Lazy generator of the kernel-phase step program for one PIM — the
/// streaming replacement for the seed's materialized `Vec<Step>`. Yields
/// exactly the sequence [`build_kernel_program_for`] builds, but on demand:
/// the only per-block state is the AGEN walk cursor.
pub struct KernelStream<'a> {
    ctx: &'a GemmContext,
    agen: AgenMode,
    pim: u32,
    pix: usize,
    echo: bool,
    /// Per-rpart prefix offsets into the PIM's C region (len = rparts + 1).
    c_offsets: Vec<u64>,
    /// Admissible (group, cpart, b_offset, b_len) cells in visit order.
    cells: Vec<(usize, u32, u64, u64)>,
    rpart: u32,
    stage: KernelStage,
    /// Lazy cursor over the current fill/drain region slice.
    fill: Option<RegionIter<'a>>,
    cell_ix: usize,
    walk: Option<WalkCursor>,
    last_row: usize,
    /// Access queued behind an eCHO per-row Launch.
    queued: Option<Step>,
    /// Use the seed-era uncached GF(2) corrector (benchmark baseline).
    uncached_agen: bool,
    /// PA bits that only move the column coordinate (run-hint guard).
    col_pure: u64,
    /// Set when the system's paging layer affects this stream: run hints
    /// are clipped at page boundaries so promised runs never straddle a
    /// frame (translation can break keys there, and transitions must be
    /// real pulls that carry the PTW's AGEN cost).
    page: Option<PageMap>,
    /// Last emitted access address — debug builds verify every block a
    /// `take_run` skips against its (bank, row) key.
    #[cfg(debug_assertions)]
    last_pa: u64,
}

impl<'a> KernelStream<'a> {
    /// Build the lazy kernel-phase step stream for active PIM `pix`.
    pub fn new(
        ctx: &'a GemmContext,
        sys: &SystemConfig,
        opts: &SimOptions,
        pix: usize,
    ) -> Self {
        let pim = ctx.active_pims[pix];
        let mut c_offsets = Vec::with_capacity(ctx.plan.rparts as usize + 1);
        let mut acc = 0u64;
        c_offsets.push(0);
        for rp in 0..ctx.plan.rparts as usize {
            acc += ctx.c_blocks_by_rpart[pix][rp];
            c_offsets.push(acc);
        }
        let mut cells = Vec::new();
        let mut b_acc = 0u64;
        let mut slice_ix = 0usize;
        for grp in 0..ctx.ga.n_groups() {
            if !ctx.ga.is_admissible(pim, grp) {
                continue;
            }
            for cpart in 0..ctx.plan.cparts {
                let len = ctx.b_slice_lens[pix][slice_ix];
                slice_ix += 1;
                cells.push((grp, cpart, b_acc, len));
                b_acc += len;
            }
        }
        Self {
            ctx,
            agen: sys.agen,
            pim,
            pix,
            echo: opts.granularity == KernelGranularity::PerDotProduct,
            c_offsets,
            cells,
            rpart: 0,
            stage: KernelStage::Launch,
            fill: None,
            cell_ix: 0,
            walk: None,
            last_row: usize::MAX,
            queued: None,
            uncached_agen: false,
            col_pure: ctx.mapping.column_pure_mask(),
            page: ctx.page_map.clone().filter(|m| m.affects_stream()),
            #[cfg(debug_assertions)]
            last_pa: 0,
        }
    }

    /// Seed-faithful variant: same step sequence, but the AGEN rebuilds its
    /// GF(2) system per candidate position as the seed did.
    pub(crate) fn with_seed_agen(mut self) -> Self {
        self.uncached_agen = true;
        self
    }

    /// Lazy cursor over this rpart's slice of the PIM's C region.
    fn c_fill(&self) -> Option<RegionIter<'a>> {
        if self.ctx.direct_scratchpad {
            return None;
        }
        let lo = self.c_offsets[self.rpart as usize];
        let hi = self.c_offsets[self.rpart as usize + 1];
        Some(self.ctx.c_regions[self.pix].iter_range(lo, hi))
    }

    /// Lazy cursor over the current cell's slice of the PIM's B region.
    fn cell_fill(&self) -> Option<RegionIter<'a>> {
        if self.ctx.direct_scratchpad {
            return None;
        }
        let &(_, _, b_off, b_len) = self.cells.get(self.cell_ix)?;
        Some(self.ctx.b_regions[self.pix].iter_range(b_off, b_off + b_len))
    }
}

impl Iterator for KernelStream<'_> {
    type Item = Step;

    fn next(&mut self) -> Option<Step> {
        let step = self.next_step();
        #[cfg(debug_assertions)]
        if let Some(Step::Access { pa, .. }) = step {
            self.last_pa = pa;
        }
        step
    }
}

impl KernelStream<'_> {
    fn next_step(&mut self) -> Option<Step> {
        if let Some(step) = self.queued.take() {
            return Some(step);
        }
        loop {
            match self.stage {
                KernelStage::Launch => {
                    self.stage = KernelStage::FillC;
                    self.fill = self.c_fill();
                    if !self.echo {
                        return Some(Step::Launch);
                    }
                }
                KernelStage::FillC => {
                    if let Some(pa) = self.fill.as_mut().and_then(|it| it.next()) {
                        return Some(Step::Access {
                            pa,
                            write: false,
                            cat: Phase::FillC,
                            agen_iters: 1,
                            compute: false,
                        });
                    }
                    self.stage = KernelStage::FillB;
                    self.cell_ix = 0;
                    self.fill = self.cell_fill();
                }
                KernelStage::FillB => {
                    let Some(&(grp, cpart, _, _)) = self.cells.get(self.cell_ix) else {
                        self.stage = KernelStage::DrainC;
                        self.fill = self.c_fill();
                        continue;
                    };
                    if let Some(pa) = self.fill.as_mut().and_then(|it| it.next()) {
                        return Some(Step::Access {
                            pa,
                            write: false,
                            cat: Phase::FillB,
                            agen_iters: 1,
                            compute: false,
                        });
                    }
                    self.walk = Some(self.ctx.walk_stream_impl(
                        self.agen,
                        self.pim,
                        grp,
                        self.rpart,
                        cpart,
                        self.uncached_agen,
                    ));
                    self.last_row = usize::MAX;
                    self.stage = KernelStage::Gemm;
                }
                KernelStage::Gemm => {
                    let walk = self.walk.as_mut().expect("walk set on Gemm entry");
                    let Some((pa, iters)) = walk.next() else {
                        self.walk = None;
                        self.cell_ix += 1;
                        self.fill = self.cell_fill();
                        self.stage = KernelStage::FillB;
                        continue;
                    };
                    let access = Step::Access {
                        pa,
                        write: false,
                        cat: Phase::Gemm,
                        agen_iters: iters,
                        compute: true,
                    };
                    if self.echo {
                        let (row, _) = self.ctx.layout.locate(pa);
                        if row != self.last_row {
                            self.last_row = row;
                            self.queued = Some(access);
                            return Some(Step::Launch);
                        }
                    }
                    return Some(access);
                }
                KernelStage::DrainC => {
                    if let Some(pa) = self.fill.as_mut().and_then(|it| it.next()) {
                        return Some(Step::Access {
                            pa,
                            write: true,
                            cat: Phase::DrainC,
                            agen_iters: 1,
                            compute: false,
                        });
                    }
                    self.rpart += 1;
                    self.stage = if self.rpart < self.ctx.plan.rparts {
                        KernelStage::Launch
                    } else {
                        KernelStage::Done
                    };
                }
                KernelStage::Done => return None,
            }
        }
    }
}

impl KernelStream<'_> {
    /// The tabulated key-run boundaries governing the current fill stage.
    fn fill_key_runs(&self) -> &Option<KeyRuns> {
        match self.stage {
            KernelStage::FillB => &self.ctx.b_key_runs[self.pix],
            _ => &self.ctx.c_key_runs[self.pix],
        }
    }

    /// Debug check: a block `take_run` is about to skip must share the
    /// last emitted access's (bank, row) — the window key the engine's
    /// synthesized entries will carry.
    #[cfg(debug_assertions)]
    fn check_run_key(&self, pa: u64) {
        let m = &self.ctx.mapping;
        let g = m.geometry();
        let a = m.decode(self.last_pa);
        let c = m.decode(pa);
        assert_eq!(
            (c.bank_index(g), c.row),
            (a.bank_index(g), a.row),
            "take_run would skip across a key boundary (pa {pa:#x} after {:#x})",
            self.last_pa
        );
    }
}

impl StepSource for KernelStream<'_> {
    /// Promise upcoming same-key runs to the engine:
    ///
    /// * **Gemm** (non-eCHO) — the rest of the current AGEN span up to the
    ///   first non-column-pure boundary; the span program's replayed runs
    ///   surface here as whole-run window fills.
    /// * **FillC/FillB/DrainC** — the region cursor's tabulated
    ///   same-(bank, row) run from its current rank, clamped to the
    ///   remaining slice (fill runs are *not* contiguous in the address
    ///   space — the XOR mapping interleaves their columns — but the
    ///   non-column decode fields cancel; see
    ///   [`stepstone_addr::RegionPlan::key_runs`]).
    ///
    /// Under an active paging layer every promise is additionally clipped
    /// at the next page boundary: within one page key equality is
    /// translation-invariant (decode is XOR-linear and the frame is
    /// common), so a clipped promise that held on virtual addresses holds
    /// on the translated stream, while page transitions stay real pulls
    /// that carry the PTW cost.
    fn run_hint(&self) -> u64 {
        if self.queued.is_some() {
            return 1;
        }
        match self.stage {
            KernelStage::Gemm if !self.echo => {
                let Some(w) = self.walk.as_ref() else { return 1 };
                let h = w.run_hint(self.col_pure);
                match (&self.page, w.peek_pa()) {
                    (Some(pm), Some(va)) if h > 1 => {
                        // The A-walk's spans are address-contiguous.
                        let page_end = (va | pm.page_mask()) + 1;
                        h.min((page_end - va) / BLOCK_BYTES)
                    }
                    _ => h,
                }
            }
            KernelStage::FillC | KernelStage::FillB | KernelStage::DrainC => {
                let Some(it) = self.fill.as_ref() else { return 1 };
                let rem = it.len() as u64;
                if rem <= 1 {
                    return 1;
                }
                let h = self
                    .fill_key_runs()
                    .as_ref()
                    .map_or(1, |kr| kr.run_len_from(it.pos_rank()).min(rem));
                match (&self.page, it.peek_addr()) {
                    (Some(pm), Some(va)) if h > 1 => {
                        // Fill runs are not contiguous; count the region
                        // blocks below the boundary via the plan's rank.
                        let page_end = (va | pm.page_mask()) + 1;
                        h.min(it.plan().rank_below(page_end) - it.pos_rank())
                    }
                    _ => h,
                }
            }
            _ => 1,
        }
    }

    fn take_run(&mut self, n: u64) -> u64 {
        if self.queued.is_some() {
            return 0;
        }
        match self.stage {
            KernelStage::Gemm if !self.echo => {
                #[cfg(debug_assertions)]
                if let Some(WalkCursor::Spanned { cur, remaining, first_iters, .. }) = &self.walk {
                    if *first_iters == 0 {
                        for i in 0..n.min(*remaining) {
                            self.check_run_key(*cur + i * BLOCK_BYTES);
                        }
                    }
                }
                self.walk.as_mut().map_or(0, |w| w.take_run(n))
            }
            KernelStage::FillC | KernelStage::FillB | KernelStage::DrainC => {
                let Some(it) = self.fill.as_ref() else { return 0 };
                let k = n.min(it.len() as u64);
                #[cfg(debug_assertions)]
                {
                    let mut probe = it.clone();
                    for _ in 0..k {
                        let pa = probe.next().expect("skip stays within the slice");
                        self.check_run_key(pa);
                    }
                }
                if let Some(it) = self.fill.as_mut() {
                    it.skip_blocks(k);
                }
                k
            }
            _ => 0,
        }
    }
}

/// Materialize the kernel-phase step program for one PIM — the seed
/// execution path, kept for equivalence testing and benchmarking against
/// the streaming [`KernelStream`].
pub fn build_kernel_program_for(
    ctx: &GemmContext,
    sys: &SystemConfig,
    opts: &SimOptions,
    pix: usize,
) -> Vec<Step> {
    KernelStream::new(ctx, sys, opts, pix).collect()
}

/// [`build_kernel_program_for`] with the seed-era uncached GF(2) corrector
/// in the AGEN — the faithful seed program builder, used by the benchmark
/// baseline (`stepstone-bench::seed_replay`).
pub fn build_kernel_program_seed(
    ctx: &GemmContext,
    sys: &SystemConfig,
    opts: &SimOptions,
    pix: usize,
) -> Vec<Step> {
    KernelStream::new(ctx, sys, opts, pix).with_seed_agen().collect()
}

/// Lazily interleave per-PIM region cursors in the Fig. 5 DMA engine's
/// round-robin order: depth-first across regions, one block per region per
/// round, so consecutive writes hit different bank groups and stream at
/// tCCDS instead of tCCDL. Regions are pulled lazily from their
/// [`RegionPlan`]s — no address list is ever materialized.
struct RegionInterleave<'a> {
    regions: Vec<RegionIter<'a>>,
    rix: usize,
    yielded_this_round: bool,
    write: bool,
    cat: Phase,
}

impl<'a> RegionInterleave<'a> {
    fn new(regions: Vec<RegionIter<'a>>, write: bool, cat: Phase) -> Self {
        Self { regions, rix: 0, yielded_this_round: false, write, cat }
    }
}

impl Iterator for RegionInterleave<'_> {
    type Item = Step;

    fn next(&mut self) -> Option<Step> {
        loop {
            if self.rix >= self.regions.len() {
                if !self.yielded_this_round {
                    return None;
                }
                self.rix = 0;
                self.yielded_this_round = false;
            }
            let it = &mut self.regions[self.rix];
            self.rix += 1;
            if let Some(pa) = it.next() {
                self.yielded_this_round = true;
                return Some(Step::Access {
                    pa,
                    write: self.write,
                    cat: self.cat,
                    agen_iters: 1,
                    compute: false,
                });
            }
        }
    }
}

/// VA→PA translating adapter over a step stream: every [`Step::Access`]
/// address goes through the [`PageMap`], and — when `charge_ptw` is set —
/// each page *transition* of the stream charges the PTW's extra AGEN
/// iterations (kernel streams walk their own page table; DMA transfers
/// are host-programmed with pre-translated descriptors, so they translate
/// without walking). Run hints and skips forward unchanged: the inner
/// sources clip their promises at page boundaries, and within one page
/// key equality is translation-invariant, so a promise that held on
/// virtual addresses holds on the translated stream.
pub struct PagedSteps<S> {
    inner: S,
    map: PageMap,
    charge_ptw: bool,
    cur_vpn: Option<u64>,
}

impl<S> PagedSteps<S> {
    pub fn new(inner: S, map: PageMap, charge_ptw: bool) -> Self {
        Self { inner, map, charge_ptw, cur_vpn: None }
    }
}

impl<S: Iterator<Item = Step>> Iterator for PagedSteps<S> {
    type Item = Step;

    fn next(&mut self) -> Option<Step> {
        let step = self.inner.next()?;
        Some(match step {
            Step::Access { pa, write, cat, agen_iters, compute } => {
                let vpn = self.map.vpn(pa);
                let mut agen_iters = agen_iters;
                if self.charge_ptw && self.cur_vpn != Some(vpn) {
                    // The stream left its page (or is cold): re-walk.
                    agen_iters += self.map.ptw_cycles();
                }
                self.cur_vpn = Some(vpn);
                Step::Access { pa: self.map.translate(pa), write, cat, agen_iters, compute }
            }
            s => s,
        })
    }
}

impl<S: StepSource> StepSource for PagedSteps<S> {
    fn run_hint(&self) -> u64 {
        self.inner.run_hint()
    }

    // Skipped blocks were promised by a page-clipped hint, so they share
    // the anchor's page: `cur_vpn` is already theirs.
    fn take_run(&mut self, n: u64) -> u64 {
        self.inner.take_run(n)
    }
}

/// Build DMA transfer cursors (one per channel) over the given per-PIM
/// region plans. Under a non-identity paging layer the streams translate
/// their addresses (no PTW: the host pre-translates DMA descriptors).
pub fn transfer_cursors<'a>(
    ctx: &'a GemmContext,
    regions: &'a [RegionPlan],
    write: bool,
    cat: Phase,
    start: u64,
    gap: u64,
) -> Vec<UnitCursor<'a>> {
    let channels = ctx.mapping.geometry().channels;
    (0..channels)
        .map(|ch| {
            let mine: Vec<RegionIter<'a>> = ctx
                .active_pims
                .iter()
                .enumerate()
                .filter(|(_, &pim)| ctx.pim_channel(pim) == ch)
                .map(|(pix, _)| regions[pix].iter())
                .collect();
            let steps = RegionInterleave::new(mine, write, cat);
            let steps: Box<dyn Iterator<Item = Step> + Send + 'a> = match &ctx.page_map {
                Some(pm) if !pm.is_identity() => {
                    Box::new(PagedSteps::new(steps, pm.clone(), false))
                }
                _ => Box::new(steps),
            };
            UnitCursor::transfer("dma", ch, Port::Channel, steps, start, gap)
        })
        .collect()
}

fn subset_remap(ctx: &GemmContext, sys: &SystemConfig, opts: &SimOptions) -> Option<SubsetRemap> {
    if opts.subset_drop_bits == 0 {
        return None;
    }
    let full_masks = opts.level_cfg.level.id_masks(&ctx.mapping);
    let kept = ctx.ga.id_masks.len();
    Some(SubsetRemap {
        dropped_masks: full_masks[kept..].to_vec(),
        bg_bits: sys.dram.geom.bankgroup_bits(),
        row_bits: sys.dram.geom.row_bits(),
    })
}

/// Simulate a single power-of-two GEMM (streaming step programs).
pub fn simulate_pow2_gemm(
    sys: &SystemConfig,
    spec: &GemmSpec,
    opts: &SimOptions,
    traffic: Option<&mut dyn TrafficSource>,
) -> LatencyReport {
    simulate_pow2_gemm_exec(sys, spec, opts, traffic, ExecMode::Streaming)
}

/// Simulate a single power-of-two GEMM with an explicit execution mode
/// (see [`ExecMode`]; `Materialized` is the seed path kept for equivalence
/// tests and benchmarks). Dispatches on the system's memory-backend tier:
/// `Exact` drives the phase engine over the cycle-exact [`TimingState`]
/// (the default path — bit-identical to the pre-trait code); `Analytic`
/// uses the closed-form executor (`crate::analytic`), falling back to the
/// engine over [`AnalyticState`] when colocated traffic or tracing needs
/// per-block scheduling.
pub fn simulate_pow2_gemm_exec(
    sys: &SystemConfig,
    spec: &GemmSpec,
    opts: &SimOptions,
    traffic: Option<&mut dyn TrafficSource>,
    mode: ExecMode,
) -> LatencyReport {
    let ctx = GemmContext::build(sys, spec, opts);
    simulate_pow2_gemm_ctx(sys, spec, opts, traffic, mode, &ctx, 0)
}

/// [`simulate_pow2_gemm_exec`] over a pre-built (possibly session-cached)
/// context, starting at virtual time `t0`. The report's cycle counts are
/// *relative* to `t0` (latency, not absolute completion time), so a request
/// simulated at any offset yields the same report as one at time zero when
/// timing is shift-invariant (refresh disabled — the default).
pub fn simulate_pow2_gemm_ctx(
    sys: &SystemConfig,
    spec: &GemmSpec,
    opts: &SimOptions,
    traffic: Option<&mut dyn TrafficSource>,
    mode: ExecMode,
    ctx: &GemmContext,
    t0: u64,
) -> LatencyReport {
    let mut report = match sys.backend {
        BackendKind::Exact => {
            let mut ts = TimingState::new(sys.dram);
            if sys.trace {
                ts.enable_trace();
            }
            simulate_pow2_gemm_engine(&mut ts, sys, opts, traffic, mode, ctx, t0)
        }
        BackendKind::Analytic => {
            if traffic.is_some() {
                // The closed-form executor has no notion of interleaved
                // foreign requests; drive the engine over the analytic
                // per-bank state instead (still no Table-II bus model).
                let mut ts = AnalyticState::new(sys.dram);
                simulate_pow2_gemm_engine(&mut ts, sys, opts, traffic, mode, ctx, t0)
            } else {
                crate::analytic::execute_pow2_gemm(sys, spec, opts, ctx)
            }
        }
    };
    report.clock_hz = sys.dram.clock_hz;
    if sys.validate {
        let ok = crate::validate::validate_gemm(sys, spec, opts, ctx);
        assert!(ok, "functional validation failed for {spec}");
    }
    report
}

/// The engine-driven GEMM simulation over any [`MemoryBackend`] — the body
/// of [`simulate_pow2_gemm_exec`], generic so the exact path monomorphizes
/// to the pre-trait code. Creates a fresh command bus and traffic cursor;
/// the serving layer's persistent-state variant is
/// [`simulate_pow2_gemm_resident`].
fn simulate_pow2_gemm_engine<B: MemoryBackend>(
    ts: &mut B,
    sys: &SystemConfig,
    opts: &SimOptions,
    traffic: Option<&mut dyn TrafficSource>,
    mode: ExecMode,
    ctx: &GemmContext,
    t0: u64,
) -> LatencyReport {
    let mut bus = CommandBus::new(sys.dram.geom.channels as usize);
    let mut tcur = traffic.map(|t| TrafficCursor::new(t, t0));
    simulate_pow2_gemm_resident(ts, &mut bus, sys, opts, tcur.as_mut(), mode, ctx, t0)
}

/// One GEMM pass over *persistent* memory-system state: the caller owns the
/// timing state, command bus, and (optionally) a colocated-traffic cursor
/// that all survive across back-to-back requests — the substrate of the
/// continuous serving simulator. The pass starts at virtual time `t0`
/// (which must be at or after every prior pass's completion on `ts`), and
/// the returned report counts cycles relative to `t0`.
#[allow(clippy::too_many_arguments)]
pub fn simulate_pow2_gemm_resident<B: MemoryBackend>(
    ts: &mut B,
    bus: &mut CommandBus,
    sys: &SystemConfig,
    opts: &SimOptions,
    mut tcur: Option<&mut TrafficCursor>,
    mode: ExecMode,
    ctx: &GemmContext,
    t0: u64,
) -> LatencyReport {
    let loc_mode = opts.localization.unwrap_or(sys.localization);
    let mut report = LatencyReport::default();
    let stats0 = *ts.stats();

    // Phase 1: localization (B replication; source is CPU-cached, §IV).
    let mut loc =
        transfer_cursors(ctx, &ctx.b_regions, true, Phase::Localization, t0, loc_mode.inter_block_gap());
    let loc_end =
        run_phase_auto(ts, bus, &ctx.mapping, &mut loc, tcur.as_deref_mut(), sys.parallel);
    report.add_phase(Phase::Localization, loc_end - t0);

    // Phase 2: the PIM kernels.
    let remap = subset_remap(ctx, sys, opts);
    let mut units: Vec<UnitCursor> = (0..ctx.active_pims.len())
        .map(|pix| {
            let steps: Box<dyn StepSource + Send> = match mode {
                ExecMode::Streaming => Box::new(KernelStream::new(ctx, sys, opts, pix)),
                ExecMode::Materialized => {
                    Box::new(PlainSteps(build_kernel_program_for(ctx, sys, opts, pix).into_iter()))
                }
                ExecMode::MaterializedSeedAgen => Box::new(PlainSteps(
                    KernelStream::new(ctx, sys, opts, pix)
                        .with_seed_agen()
                        .collect::<Vec<_>>()
                        .into_iter(),
                )),
            };
            // Kernel streams translate through the paging layer and pay
            // the PTW on page transitions (applied after collection for
            // the materialized modes, so all three stay step-identical).
            let steps: Box<dyn StepSource + Send> = match &ctx.page_map {
                Some(pm) if pm.affects_stream() => {
                    Box::new(PagedSteps::new(steps, pm.clone(), true))
                }
                _ => steps,
            };
            let mut u = UnitCursor::from_source(
                "pim",
                ctx.pim_channel(ctx.active_pims[pix]),
                opts.level_cfg.port(),
                steps,
                loc_end,
                opts.level_cfg.compute_cycles_per_block(ctx.n),
                opts.level_cfg.simd_ops_per_block(ctx.n),
                opts.level_cfg.pipeline_depth as usize,
                sys.launch.slots_for(opts.granularity),
                sys.launch.launch_latency,
                sys.dram.timing.t_bl,
                remap.clone(),
            );
            // Each PIM owns its bank partition and internal datapath (the
            // ID parities pin channel/rank/BG bits), so steady CAS runs may
            // stream past other units' scheduler turns.
            u.exclusive = true;
            u
        })
        .collect();
    let kernel_end =
        run_phase_auto(ts, bus, &ctx.mapping, &mut units, tcur.as_deref_mut(), sys.parallel);

    // Attribute kernel categories: the critical-path (max) PIM per category.
    let mut activity = ActivityCounts::default();
    for u in &units {
        for p in [Phase::Gemm, Phase::FillB, Phase::FillC, Phase::DrainC, Phase::Launch] {
            let i = p.index();
            report.phase_cycles[i] = report.phase_cycles[i].max(u.cat_cycles[i]);
        }
        activity.simd_ops += u.simd_ops;
        activity.scratchpad_accesses += u.scratch_accesses;
        activity.launches += u.launches;
        activity.agen_iterations += u.agen_iter_sum;
        activity.agen_max_step = activity.agen_max_step.max(u.agen_iter_max);
        activity.agen_bubbles += u.agen_bubbles;
    }
    let _ = kernel_end;

    // Phase 3: reduction of partial C.
    let kernel_end = units.iter().map(|u| u.end_time).max().unwrap_or(loc_end);
    let mut red = transfer_cursors(
        ctx,
        &ctx.c_regions,
        false,
        Phase::Reduction,
        kernel_end,
        loc_mode.inter_block_gap(),
    );
    let red_end =
        run_phase_auto(ts, bus, &ctx.mapping, &mut red, tcur, sys.parallel);

    // Under `ReduceVia::Fabric` the per-channel drain above is unchanged —
    // the identical DRAM command stream runs through the memory backend, so
    // `DramStats` match the host-DMA path exactly — but the merged partial
    // sums then move PIM→PIM over the inter-device fabric instead of
    // through the host. Each channel's drain-completion time is its fabric
    // injection time.
    let red_end = if sys.reduce_via == ReduceVia::Fabric {
        let ready: Vec<u64> = red.iter().map(|u| u.end_time.max(kernel_end)).collect();
        let (fab_end, stats) = fabric_reduce(sys, ctx, &ready);
        report.fabric = Some(stats);
        red_end.max(fab_end)
    } else {
        red_end
    };
    report.add_phase(Phase::Reduction, red_end - kernel_end);

    report.total = red_end - t0;
    report.dram = ts.stats().delta(&stats0);
    report.activity = activity;
    report
}

/// The fabric leg of a `ReduceVia::Fabric` Phase 3: route every device's
/// locally drained partial-`C` payload to the root device over
/// `sys.fabric` and fold it in. Fabric nodes are DIMM-granular — one per
/// (channel, rank) pair, `node = channel × ranks + rank` — which is the
/// inter-DIMM boundary the fabric physically bridges (4 nodes on the
/// default 2-channel × 2-rank geometry). `ready` holds each *channel*'s
/// local drain completion time; both of a channel's DIMMs inject when
/// their shared channel drain ends. Returns the reduce completion cycle
/// and the fabric statistics for the report.
pub(crate) fn fabric_reduce(
    sys: &SystemConfig,
    ctx: &GemmContext,
    ready: &[u64],
) -> (u64, FabricStats) {
    let geom = ctx.mapping.geometry();
    let channels = geom.channels as usize;
    let ranks = (geom.ranks_per_channel as usize).max(1);
    let nodes = channels * ranks;
    debug_assert_eq!(ready.len(), channels);
    let drain_end = ready.iter().copied().max().unwrap_or(0);
    if nodes < 2 {
        // A single device has nothing to exchange; the reduce is local.
        return (drain_end, FabricStats::default());
    }
    let mut payloads: Vec<(u64, u64)> = (0..nodes)
        .map(|node| (ready[node / ranks], 0u64))
        .collect();
    for (pix, &pim) in ctx.active_pims.iter().enumerate() {
        let (ch, rk, _) = ctx.ga.level.id_to_position(geom, pim);
        let blocks: u64 = ctx.c_blocks_by_rpart[pix].iter().sum();
        payloads[ch as usize * ranks + rk as usize].1 += blocks * BLOCK_BYTES;
    }
    let mut fab = FabricState::new(sys.fabric, nodes);
    let end = fab.reduce_to_root(&payloads, 0);
    let injected: u64 =
        payloads.iter().enumerate().filter(|&(n, _)| n != 0).map(|(_, p)| p.1).sum();
    let stats = fab.stats(injected, end.saturating_sub(drain_end));
    (end, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stepstone_addr::PimLevel;

    fn sys() -> SystemConfig {
        SystemConfig::default()
    }

    #[test]
    fn bg_batch1_is_fast_and_balanced() {
        let r = simulate_gemm(&sys(), &GemmSpec::new(1024, 4096, 1), PimLevel::BankGroup);
        // 16 Ki blocks per PIM at one per tCCDL=6 ⇒ ≈ 98k cycles + overheads.
        let gemm = r.phase(Phase::Gemm);
        assert!(gemm > 90_000, "gemm={gemm}");
        assert!(gemm < 200_000, "gemm={gemm}");
        // All A blocks are read exactly once.
        assert!(
            r.dram.reads_by_port[Port::BgInternal.index()] >= 1024 * 4096 * 4 / 64
        );
        assert!(r.total > gemm);
    }

    #[test]
    fn bg_beats_dv_beats_ch_at_batch_1() {
        // Fig. 6: minimum-latency ordering at batch 1.
        let s = sys();
        let spec = GemmSpec::new(1024, 4096, 1);
        let bg = simulate_gemm(&s, &spec, PimLevel::BankGroup).total;
        let dv = simulate_gemm(&s, &spec, PimLevel::Device).total;
        let ch = simulate_gemm(&s, &spec, PimLevel::Channel).total;
        assert!(bg < dv, "bg={bg} dv={dv}");
        assert!(dv < ch, "dv={dv} ch={ch}");
        // BG ≈ 2.8× better than DV in the paper; accept 2–4×.
        let ratio = dv as f64 / bg as f64;
        assert!((1.8..4.5).contains(&ratio), "dv/bg = {ratio}");
    }

    #[test]
    fn bg_advantage_vanishes_with_batch_and_dv_takes_over() {
        // §III-E: BG's localization/replication overhead grows with N and
        // the number of block groups; its batch-1 advantage (≈2.6×) erodes
        // to parity around N = 32 and inverts beyond.
        let s = sys();
        let ratio = |n: usize| {
            let spec = GemmSpec::new(1024, 4096, n);
            let bg = simulate_gemm(&s, &spec, PimLevel::BankGroup).total as f64;
            let dv = simulate_gemm(&s, &spec, PimLevel::Device).total as f64;
            dv / bg
        };
        let r1 = ratio(1);
        let r16 = ratio(16);
        let r32 = ratio(32);
        let r64 = ratio(64);
        assert!(r1 > 2.0, "batch-1 BG advantage: {r1}");
        assert!(r16 < r1 && r32 < r16, "monotone convergence: {r1} {r16} {r32}");
        assert!(r32 < 1.3, "near parity at batch 32: {r32}");
        assert!(r64 < 1.0, "DV wins beyond the paper's sweep: {r64}");
    }

    #[test]
    fn echo_is_slower_than_stp_without_contention_but_close() {
        let s = sys();
        let spec = GemmSpec::new(1024, 4096, 4);
        let stp = simulate_gemm(&s, &spec, PimLevel::BankGroup).total;
        let echo =
            simulate_gemm_opt(&s, &spec, &SimOptions::echo(PimLevel::BankGroup), None).total;
        assert!(echo > stp, "echo={echo} stp={stp}");
        // Paper: StepStone flow improves 35–55% over Chopim-style execution;
        // accept a broad 1.05–3× band without contention.
        assert!((echo as f64) < stp as f64 * 3.0, "echo={echo} stp={stp}");
    }

    #[test]
    fn subset_helps_small_matrices() {
        // Fig. 10 left: with small matrices, half the BG PIMs win.
        let s = sys();
        let spec = GemmSpec::new(512, 2048, 32);
        let full = simulate_gemm(&s, &spec, PimLevel::BankGroup).total;
        let half = simulate_gemm_opt(
            &s,
            &spec,
            &SimOptions::stepstone(PimLevel::BankGroup).with_subset(1),
            None,
        )
        .total;
        assert!(half < full, "half={half} full={full}");
    }

    #[test]
    fn naive_agen_is_slower() {
        let s = sys();
        let spec = GemmSpec::new(1024, 4096, 4);
        let fast = simulate_gemm(&s, &spec, PimLevel::BankGroup).total;
        let naive = simulate_gemm(
            &SystemConfig { agen: AgenMode::Naive, ..s },
            &spec,
            PimLevel::BankGroup,
        )
        .total;
        assert!(naive > fast * 2, "naive={naive} fast={fast}");
    }

    #[test]
    fn streaming_and_materialized_kernel_programs_are_identical() {
        // The streaming generator must yield exactly the sequence the seed
        // materialized — including the seed-AGEN variant (same steps, only
        // generation cost differs).
        let s = sys();
        for (m, k, n) in [(256, 1024, 2), (128, 512, 4)] {
            for level in PimLevel::ALL {
                let opts = SimOptions::stepstone(level);
                let spec = GemmSpec::new(m, k, n);
                let ctx = GemmContext::build(&s, &spec, &opts);
                for pix in 0..ctx.active_pims.len() {
                    let streamed: Vec<Step> = KernelStream::new(&ctx, &s, &opts, pix).collect();
                    let seeded: Vec<Step> =
                        KernelStream::new(&ctx, &s, &opts, pix).with_seed_agen().collect();
                    assert_eq!(streamed, seeded, "{level:?} pim {pix}");
                }
            }
        }
    }

    #[test]
    fn streaming_engine_emits_the_exact_seed_command_trace() {
        // Cycle-exactness at command granularity: run the kernel phase with
        // streaming and with materialized programs against traced timing
        // states; every issued DRAM command must match in time and place.
        use crate::engine::{run_phase, Step};
        use stepstone_dram::{CommandBus, TimingState};
        let s = sys();
        let spec = GemmSpec::new(256, 1024, 2);
        for level in PimLevel::ALL {
            let opts = SimOptions::stepstone(level);
            let ctx = GemmContext::build(&s, &spec, &opts);
            let run = |materialize: bool| {
                let mut ts = TimingState::new(s.dram);
                ts.enable_trace();
                let mut bus = CommandBus::new(s.dram.geom.channels as usize);
                let mut units: Vec<UnitCursor> = (0..ctx.active_pims.len())
                    .map(|pix| {
                        let steps: Box<dyn Iterator<Item = Step> + Send> = if materialize {
                            Box::new(build_kernel_program_for(&ctx, &s, &opts, pix).into_iter())
                        } else {
                            Box::new(KernelStream::new(&ctx, &s, &opts, pix))
                        };
                        UnitCursor::new(
                            "t",
                            ctx.pim_channel(ctx.active_pims[pix]),
                            opts.level_cfg.port(),
                            steps,
                            0,
                            opts.level_cfg.compute_cycles_per_block(ctx.n),
                            opts.level_cfg.simd_ops_per_block(ctx.n),
                            opts.level_cfg.pipeline_depth as usize,
                            s.launch.slots_for(opts.granularity),
                            s.launch.launch_latency,
                            s.dram.timing.t_bl,
                            None,
                        )
                    })
                    .collect();
                let end = run_phase(&mut ts, &mut bus, &ctx.mapping, &mut units, None);
                (end, ts.take_trace().expect("trace enabled").records)
            };
            let (end_stream, trace_stream) = run(false);
            let (end_mat, trace_mat) = run(true);
            assert_eq!(end_stream, end_mat, "{level:?} phase end");
            assert_eq!(trace_stream, trace_mat, "{level:?} command trace");
            assert!(!trace_stream.is_empty());
        }
    }

    #[test]
    fn relaxed_area_improves_batch_32() {
        let s = sys();
        let spec = GemmSpec::new(1024, 4096, 32);
        let nominal = simulate_gemm(&s, &spec, PimLevel::Device).total;
        let relaxed = simulate_gemm_opt(
            &s,
            &spec,
            &SimOptions::stepstone(PimLevel::Device)
                .with_level_cfg(PimLevelConfig::relaxed(PimLevel::Device)),
            None,
        )
        .total;
        assert!(relaxed < nominal, "relaxed={relaxed} nominal={nominal}");
    }

    /// The session layer must be a pure build/execute split: routing
    /// repeated requests through the shared [`SessionCache`] yields
    /// bit-identical reports to the cold-start path, while only the first
    /// request of each shape pays the context build.
    #[test]
    fn session_cache_reports_are_cycle_exact_and_warm() {
        let s = sys();
        let cache = SessionCache::new();
        // A non-pow2 batch exercises decomposition inside the session path.
        let specs =
            [GemmSpec::new(512, 512, 3), GemmSpec::new(256, 1024, 4), GemmSpec::new(512, 512, 3)];
        for (i, spec) in specs.iter().enumerate() {
            let opts = SimOptions::stepstone(PimLevel::BankGroup);
            let cold = simulate_gemm_opt(&s, spec, &opts, None);
            let warm = simulate_gemm_session(&s, spec, &opts, &cache, None);
            assert_eq!(cold.total, warm.total, "request {i}: totals diverge");
            assert_eq!(cold.phase_cycles, warm.phase_cycles, "request {i}");
            assert_eq!(cold.dram, warm.dram, "request {i}: dram stats diverge");
        }
        // Decomposition splits m/k only (N rides along), so the mix has
        // two distinct pow2 shapes; the repeat of spec[0] is the lone hit.
        assert_eq!(cache.len() as u64, cache.misses());
        assert_eq!(cache.len(), 2, "len={}", cache.len());
        assert_eq!(cache.hits(), 1, "hits={}", cache.hits());
    }

    /// Distinct option sets that change the build must get distinct
    /// contexts — level, subset bits, scratchpad, granularity all key.
    #[test]
    fn session_key_separates_build_relevant_options() {
        let spec = GemmSpec::new(512, 512, 4);
        let base = SimOptions::stepstone(PimLevel::BankGroup);
        let keys = [
            SessionKey::new(&spec, &base),
            SessionKey::new(&spec, &SimOptions::stepstone(PimLevel::Device)),
            SessionKey::new(&spec, &base.clone().with_subset(1)),
            SessionKey::new(
                &spec,
                &base.clone().with_level_cfg(PimLevelConfig::relaxed(PimLevel::BankGroup)),
            ),
            SessionKey::new(&spec, &SimOptions::echo(PimLevel::BankGroup)),
        ];
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j], "keys {i} and {j} collide");
            }
        }
    }

    /// Identity-policy paging with zero PTW cost must be bit-identical to
    /// the contiguous baseline at any page size: translation is the
    /// identity and no stream is wrapped at all (`affects_stream` gates
    /// it). This is the flow-level arm of the CI bit-identity gate.
    #[test]
    fn identity_paging_is_bit_identical_to_contiguous() {
        use stepstone_addr::PagingConfig;
        let s = sys();
        let spec = GemmSpec::new(512, 512, 4);
        let base = simulate_gemm(&s, &spec, PimLevel::BankGroup);
        for page in [4096u64, 2 << 20] {
            let paged = s.clone().with_paging(PagingConfig::identity(page));
            let r = simulate_gemm(&paged, &spec, PimLevel::BankGroup);
            assert_eq!(r.total, base.total, "page {page}");
            assert_eq!(r.phase_cycles, base.phase_cycles, "page {page}");
            assert_eq!(r.dram, base.dram, "page {page}");
        }
    }

    /// A page size covering the whole simulated address range provably
    /// reduces to the contiguous path: every arena shares one page, so
    /// translation is a single constant frame offset above all decoded
    /// ID bits — a uniform (bank, row) relabeling that cannot change any
    /// timing decision. Bit-identical, even for a non-identity policy.
    #[test]
    fn whole_arena_page_reduces_to_contiguous() {
        use stepstone_addr::PagingConfig;
        let s = sys();
        let spec = GemmSpec::new(512, 512, 4);
        let base = simulate_gemm(&s, &spec, PimLevel::BankGroup);
        let paged = s.clone().with_paging(PagingConfig::permuted(1 << 36, 7));
        // The permuted policy actually moves the page (nonzero affine
        // constant); the reduction must hold anyway.
        let pm = paged.page_map().unwrap();
        assert_ne!(pm.translate(1 << 30), 1 << 30, "test must exercise a moved frame");
        let r = simulate_gemm(&paged, &spec, PimLevel::BankGroup);
        assert_eq!(r.total, base.total);
        assert_eq!(r.phase_cycles, base.phase_cycles);
        assert_eq!(r.dram, base.dram);
    }

    /// Fragmented small pages run end to end under the debug-build
    /// contract checks (hinted-run key verification, per-channel scope
    /// asserts), move exactly the same blocks, and — with a PTW cost —
    /// take strictly longer than the contiguous baseline.
    #[test]
    fn fragmented_paging_preserves_traffic_and_charges_the_ptw() {
        use stepstone_addr::PagingConfig;
        let s = sys();
        let spec = GemmSpec::new(512, 512, 4);
        let base = simulate_gemm(&s, &spec, PimLevel::BankGroup);
        let frag = s.clone().with_paging(PagingConfig::fragmented(4096, 42));
        let r = simulate_gemm(&frag, &spec, PimLevel::BankGroup);
        assert_eq!(r.dram.reads, base.dram.reads);
        assert_eq!(r.dram.writes, base.dram.writes);
        // A 20-cycle walk per 64-block page hides entirely under the
        // memory-bound stream; an uncached 500-cycle walk must not.
        let walked =
            s.clone().with_paging(PagingConfig::fragmented(4096, 42).with_ptw(500));
        let rw = simulate_gemm(&walked, &spec, PimLevel::BankGroup);
        assert_eq!(rw.dram.reads, base.dram.reads);
        assert!(rw.total > r.total, "ptw={} frag={}", rw.total, r.total);
        assert!(
            rw.activity.agen_iterations > r.activity.agen_iterations,
            "PTW must surface as AGEN iterations"
        );
    }

    /// Timing is shift-invariant with refresh disabled (the default): a
    /// pass started at a large virtual offset reports the same per-request
    /// latency as one at time zero. This is what makes session-layer
    /// service times reusable at any point in a serving timeline — on every
    /// memory preset, on the analytic tier, and under a paged arena.
    #[test]
    fn resident_pass_is_shift_invariant() {
        use stepstone_dram::DramConfig;
        let arms: [(&str, SystemConfig); 5] = [
            ("ddr4", sys()),
            ("ddr5", sys().with_dram(DramConfig::ddr5_4800())),
            ("hbm2", sys().with_dram(DramConfig::hbm2())),
            ("analytic", sys().with_backend(BackendKind::Analytic)),
            ("paged", sys().with_paging(PagingConfig::fragmented(4096, 9).with_ptw(20))),
        ];
        for (name, s) in arms {
            let spec = GemmSpec::new(512, 512, 4);
            let opts = SimOptions::stepstone(PimLevel::BankGroup);
            let ctx = GemmContext::build(&s, &spec, &opts);
            let r0 =
                simulate_pow2_gemm_ctx(&s, &spec, &opts, None, ExecMode::Streaming, &ctx, 0);
            let r1 = simulate_pow2_gemm_ctx(
                &s,
                &spec,
                &opts,
                None,
                ExecMode::Streaming,
                &ctx,
                1 << 30,
            );
            assert_eq!(r0.total, r1.total, "{name}");
            assert_eq!(r0.phase_cycles, r1.phase_cycles, "{name}");
            assert_eq!(r0.dram, r1.dram, "{name}");
        }
    }

    /// Back-to-back passes over one persistent timing state + bus report
    /// per-request (not cumulative) cycles and DRAM counters. The first
    /// pass on pristine state matches the one-shot path exactly; later
    /// passes move the same blocks but inherit residual bank state (open
    /// rows, ACT history) from the previous request, so their latency may
    /// drift by a few row cycles — bounded here to 2%.
    #[test]
    fn resident_passes_report_per_request_deltas() {
        use stepstone_dram::{CommandBus, TimingState};
        let s = sys();
        let spec = GemmSpec::new(512, 512, 4);
        let opts = SimOptions::stepstone(PimLevel::BankGroup);
        let ctx = GemmContext::build(&s, &spec, &opts);
        let oneshot = simulate_pow2_gemm_ctx(&s, &spec, &opts, None, ExecMode::Streaming, &ctx, 0);
        let mut ts = TimingState::new(s.dram);
        let mut bus = CommandBus::new(s.dram.geom.channels as usize);
        let mut t = 0u64;
        for pass in 0..3 {
            let r = simulate_pow2_gemm_resident(
                &mut ts,
                &mut bus,
                &s,
                &opts,
                None,
                ExecMode::Streaming,
                &ctx,
                t,
            );
            if pass == 0 {
                assert_eq!(r.total, oneshot.total, "pristine pass");
                assert_eq!(r.dram, oneshot.dram, "pristine pass");
            } else {
                assert_eq!(r.dram.reads, oneshot.dram.reads, "pass {pass}");
                assert_eq!(r.dram.writes, oneshot.dram.writes, "pass {pass}");
                let drift = r.total.abs_diff(oneshot.total) as f64 / oneshot.total as f64;
                assert!(drift < 0.02, "pass {pass}: total={} drift={drift}", r.total);
            }
            t += r.total;
        }
    }
}
