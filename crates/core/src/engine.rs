//! Multi-agent, event-driven execution engine.
//!
//! Each PIM unit (or DMA channel, or the colocated CPU) is a *cursor* over a
//! lazily streamed step program (a [`StepSource`]: AGEN span programs,
//! region cursors — materialized `Vec<Step>`s survive only as the frozen
//! equivalence baseline). The engine repeatedly advances the cursor with
//! the earliest desired issue time, so commits into the shared memory
//! backend stay approximately time-ordered while PIM units with disjoint
//! bank partitions proceed concurrently.
//!
//! The engine core is generic over [`MemoryBackend`] — the exact
//! [`TimingState`](stepstone_dram::TimingState) Table-II model by default,
//! or the analytic fast tier — and everything monomorphizes, so the
//! default path compiles to the same code as when `TimingState` was
//! hardwired.
//!
//! The per-unit model implements the paper's pipeline semantics (§III-A,
//! §V-C): a 20-deep execution pipeline hides DRAM and AGEN latency; the
//! per-block issue rate is bounded by DRAM timing, by SIMD throughput
//! (back-pressure once `pipeline_depth` blocks are in flight), and by AGEN —
//! a step whose address generation exceeds the DRAM burst window inserts
//! bubbles.

use crate::report::Phase;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use stepstone_addr::{DramCoord, XorMapping};
use stepstone_dram::{
    CasKind, CommandBus, DramStats, MemoryBackend, Port, RunReply, TrafficSource,
};

/// Process-wide override forcing the all-or-nothing span fast path off
/// (see [`UnitCursor::advance_batch`]). Test-only: the equivalence matrix
/// uses it to pin the exact per-block probe path under configurations that
/// would otherwise always take the fast path — output must be identical
/// either way.
static SPAN_FAST_PATH_DISABLED: AtomicBool = AtomicBool::new(false);

/// Test-only knob: enable/disable the span fast path globally. Returns the
/// previous setting so tests can restore it.
pub fn set_span_fast_path(enabled: bool) -> bool {
    !SPAN_FAST_PATH_DISABLED.swap(!enabled, Ordering::Relaxed)
}

/// Is the span fast path currently allowed?
pub fn span_fast_path_enabled() -> bool {
    !SPAN_FAST_PATH_DISABLED.load(Ordering::Relaxed)
}

/// Process-wide override forcing run-granular admission off: hinted runs
/// then go through the exact per-block pull path even under the span fast
/// path. Test-only, like [`set_span_fast_path`] — the differential suite
/// pins it both ways and requires identical commands and cycles.
static RUN_GRANULAR_DISABLED: AtomicBool = AtomicBool::new(false);

/// Test-only knob: enable/disable run-granular admission globally. Returns
/// the previous setting so tests can restore it.
pub fn set_run_granular(enabled: bool) -> bool {
    !RUN_GRANULAR_DISABLED.swap(!enabled, Ordering::Relaxed)
}

/// Is run-granular admission currently allowed?
pub fn run_granular_enabled() -> bool {
    !RUN_GRANULAR_DISABLED.load(Ordering::Relaxed)
}

/// Fallback-cause indices for [`RunStats::fallback`] /
/// [`RunCounters::fallback`]: why a block went through the per-block pull
/// path instead of riding an admitted run.
pub const FB_REFRESH: usize = 0;
pub const FB_ROW: usize = 1;
pub const FB_TRACE: usize = 2;
pub const FB_TRAFFIC: usize = 3;
pub const FB_OTHER: usize = 4;

/// Labels matching the `FB_*` indices (reporting convenience).
pub const FB_LABELS: [&str; 5] = ["refresh", "row", "trace", "traffic", "other"];

/// Per-unit run-granularity statistics, flushed into the process-wide
/// [`run_counters`] once per phase (order-independent sums, so serial and
/// per-channel-parallel engines report identical totals).
#[derive(Debug, Default, Clone, Copy)]
pub struct RunStats {
    /// Hinted runs admitted as single scheduling objects.
    pub runs: u64,
    /// Blocks covered by admitted runs (anchors included).
    pub run_blocks: u64,
    /// log2-bucketed run-length histogram: bucket `i` counts admitted runs
    /// of length `2^i ..= 2^(i+1) - 1`, saturating in the last bucket.
    pub hist: [u64; 16],
    /// Per-block fallback splits by cause (`FB_*` indices): blocks that
    /// went through the per-block path, and why.
    pub fallback: [u64; 5],
}

impl RunStats {
    #[inline]
    fn record_run(&mut self, len: u64) {
        self.runs += 1;
        self.run_blocks += len;
        self.hist[(63 - len.leading_zeros() as usize).min(15)] += 1;
    }
}

static G_RUNS: AtomicU64 = AtomicU64::new(0);
static G_RUN_BLOCKS: AtomicU64 = AtomicU64::new(0);
static G_HIST: [AtomicU64; 16] = [const { AtomicU64::new(0) }; 16];
static G_FALLBACK: [AtomicU64; 5] = [const { AtomicU64::new(0) }; 5];

/// Process-wide snapshot of the run-granularity counters (see
/// [`RunStats`] for field semantics). Deterministic for a fixed workload
/// and engine configuration: admission decisions depend only on per-unit
/// state, and the totals are commutative sums.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RunCounters {
    pub runs: u64,
    pub run_blocks: u64,
    pub hist: [u64; 16],
    pub fallback: [u64; 5],
}

impl RunCounters {
    /// Mean admitted-run length in blocks (0 when nothing was admitted).
    pub fn mean_run_len(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.run_blocks as f64 / self.runs as f64
        }
    }

    /// Total per-block fallbacks across all causes.
    pub fn fallback_blocks(&self) -> u64 {
        self.fallback.iter().sum()
    }
}

/// Zero the process-wide run counters (benchmark harnesses snapshot
/// per-run deltas by resetting before each simulation).
pub fn reset_run_counters() {
    G_RUNS.store(0, Ordering::Relaxed);
    G_RUN_BLOCKS.store(0, Ordering::Relaxed);
    for h in &G_HIST {
        h.store(0, Ordering::Relaxed);
    }
    for f in &G_FALLBACK {
        f.store(0, Ordering::Relaxed);
    }
}

/// Read the process-wide run counters accumulated since the last reset.
pub fn run_counters() -> RunCounters {
    let mut c = RunCounters {
        runs: G_RUNS.load(Ordering::Relaxed),
        run_blocks: G_RUN_BLOCKS.load(Ordering::Relaxed),
        ..RunCounters::default()
    };
    for (i, h) in G_HIST.iter().enumerate() {
        c.hist[i] = h.load(Ordering::Relaxed);
    }
    for (i, f) in G_FALLBACK.iter().enumerate() {
        c.fallback[i] = f.load(Ordering::Relaxed);
    }
    c
}

/// One operation in a unit's program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// A kernel-launch packet must cross the command bus before subsequent
    /// accesses may issue.
    Launch,
    /// One cache-block DRAM access.
    Access {
        pa: u64,
        write: bool,
        cat: Phase,
        /// AGEN iterations spent producing this address.
        agen_iters: u32,
        /// Whether the block feeds the SIMD pipeline (GEMM blocks) or is a
        /// pure buffer transfer.
        compute: bool,
    },
}

/// Remapping used for the PIM-subset optimization (§III-E): dropped
/// bank-group ID bits are pinned by the coloring allocator, folding the
/// dropped address parity into extra row bits of the same bank group.
#[derive(Debug, Clone)]
pub struct SubsetRemap {
    /// PA parity masks of the dropped ID bits.
    pub dropped_masks: Vec<u64>,
    /// Number of bank-group coordinate bits to clear (highest first).
    pub bg_bits: u32,
    /// Row-field width of the geometry (folded bits go just above it).
    pub row_bits: u32,
}

impl SubsetRemap {
    fn remap(&self, mut c: DramCoord, pa: u64) -> DramCoord {
        for (i, &mask) in self.dropped_masks.iter().enumerate() {
            let parity = (pa & mask).count_ones() & 1;
            let bg_bit = self.bg_bits - 1 - i as u32;
            c.bankgroup &= !(1 << bg_bit);
            c.row ^= parity << (self.row_bits + i as u32);
        }
        c
    }
}

/// A step-program source: an iterator plus an optional *run hint*.
///
/// `run_hint` describes the steps about to be pulled: a return of `R > 1`
/// promises that the next `R` items are `Step::Access`es whose DRAM
/// coordinates differ only in the column — i.e. they share one
/// `(bank, row, direction)` window key. The addresses need *not* be
/// contiguous: XOR mappings interleave a run's columns across the mapping
/// period, but the non-column decode fields still cancel (region cursors
/// tabulate these boundaries with [`stepstone_addr::KeyRuns`]; the span
/// program's replayed runs are column-pure by construction). The reorder
/// window reuses the run's key without per-entry comparisons; debug builds
/// verify the promised key on every hinted pull.
///
/// `take_run` is the run-granular escalation of the same promise: skip the
/// next `n` steps wholesale, *without* yielding them through `next`. It
/// may only skip steps the current hint covers — `Step::Access`es sharing
/// the just-pulled anchor's window key, category, compute flag, and
/// direction, each costing exactly one AGEN iteration — and returns how
/// many it skipped (possibly fewer than `n`; `0` means unsupported and the
/// engine falls back to per-block pulls). The engine synthesizes the
/// skipped entries from the anchor, so a source honoring the contract is
/// cycle-exact with the per-block path by construction.
pub trait StepSource: Iterator<Item = Step> {
    fn run_hint(&self) -> u64 {
        1
    }

    fn take_run(&mut self, _n: u64) -> u64 {
        0
    }
}

impl<S: StepSource + ?Sized> StepSource for Box<S> {
    fn run_hint(&self) -> u64 {
        (**self).run_hint()
    }

    fn take_run(&mut self, n: u64) -> u64 {
        (**self).take_run(n)
    }
}

/// Adapter giving any step iterator the trivial (hint-free) source shape.
pub struct PlainSteps<I>(pub I);

impl<I: Iterator<Item = Step>> Iterator for PlainSteps<I> {
    type Item = Step;

    fn next(&mut self) -> Option<Step> {
        self.0.next()
    }
}

impl<I: Iterator<Item = Step>> StepSource for PlainSteps<I> {}

#[derive(Debug, Clone, Copy)]
struct WinEntry {
    /// Decoded (and subset-remapped) coordinate, cached at window fill.
    coord: DramCoord,
    write: bool,
    cat: Phase,
    compute: bool,
    gen_ready: u64,
    /// Same-run identity: (bank index, row, direction). When every window
    /// entry shares one key, the FR-FCFS selection is trivially the front
    /// entry (probe times are nondecreasing along the window) and the span
    /// fast path applies.
    key: u64,
}

/// Execution state of one unit.
///
/// The step program is *streamed*: the cursor pulls from a lazy iterator
/// (AGEN walks, region interleaves) instead of a pre-materialized `Vec`,
/// so resident step storage is O(reorder window) per unit regardless of
/// matrix size.
pub struct UnitCursor<'a> {
    pub label: &'static str,
    /// Channel this unit's control packets ride on.
    pub channel: u32,
    pub port: Port,
    steps: Box<dyn StepSource + Send + 'a>,
    peeked: Option<Step>,
    /// Remaining pulls covered by the source's current run hint (entries
    /// that share `hint_key` without needing a comparison).
    hint_left: u64,
    /// Window key of the hinted run's first entry.
    hint_key: u64,
    /// Blocks of an admitted run still to be synthesized into the window
    /// (the source already skipped them via [`StepSource::take_run`]).
    run_left: u64,
    /// The admitted run's first window entry: synthesized followers clone
    /// it (fresh `gen_ready`; the stale column is never read — timing,
    /// probes, and stats are column-blind, and admission requires the
    /// trace to be off).
    run_anchor: Option<WinEntry>,
    /// How many window entries (always a suffix, while `run_left > 0`) are
    /// synthesized followers of the current admitted run. When the whole
    /// window is followers, the steady batch loop issues the remaining
    /// virtual followers without touching the window at all.
    win_synth: usize,
    /// Scheduler's per-phase grant: this unit may admit hinted runs
    /// (span-fast-path conditions hold and the run-granular knob is on).
    run_admit: bool,
    /// Why this unit's blocks go per-block when `run_admit` is false
    /// (`FB_*` index chosen by the scheduler: traffic > refresh > trace >
    /// other).
    fallback_cause: u8,
    /// Run-granularity statistics, flushed to [`run_counters`] at phase
    /// end.
    pub run_stats: RunStats,
    /// All current window entries share (channel, rank, bank group,
    /// direction) — maintained incrementally on push/pop; always equal to
    /// [`UnitCursor::window_scope_uniform`] over the live window.
    win_uniform: bool,
    /// In-order AGEN output awaiting issue; the PIM's memory sequencer may
    /// issue any of these out of order (a small FR-FCFS-like window that a
    /// 20-deep pipeline implies; Ramulator's controller reorders the same
    /// way). Entries carry the time AGEN finished generating them.
    window: VecDeque<WinEntry>,
    window_cap: usize,
    gen_clock: u64,
    /// Earliest desired issue time of the next command.
    pub not_before: u64,
    simd_free: u64,
    inflight: VecDeque<u64>,
    launch_avail: u64,
    launch_req: u64,
    pending_kernel_start: bool,
    clock: u64,
    pub cat_cycles: [u64; 8],
    pub end_time: u64,
    // Static parameters.
    compute_cycles_per_block: u64,
    simd_ops_per_block: u64,
    pipeline_depth: usize,
    launch_slots: u64,
    launch_latency: u64,
    /// Per-cache-block packet schemes (PEI) stream packets back-to-back;
    /// kernel launches request when the previous kernel starts.
    pub pipelined_launch: bool,
    burst_window: u64,
    /// Extra spacing between blocks for host-mediated transfer streams.
    host_gap: u64,
    subset: Option<SubsetRemap>,
    /// The unit's accesses are confined to a bank partition and datapath no
    /// other unit in the phase touches (kernel PIMs: each owns its bank
    /// group / rank / channel by construction). Steady-state CAS runs of
    /// such units commit only unit-private timing state, so the scheduler
    /// may let them stream past other units' turns (see
    /// [`UnitCursor::advance_batch`]). Transfer cursors and anything that
    /// roams across bank partitions must leave this false.
    pub exclusive: bool,
    // Statistics.
    pub launches: u64,
    pub simd_ops: u64,
    pub scratch_accesses: u64,
    pub agen_iter_sum: u64,
    pub agen_iter_max: u32,
    pub agen_bubbles: u64,
}

impl<'a> UnitCursor<'a> {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        label: &'static str,
        channel: u32,
        port: Port,
        steps: impl Iterator<Item = Step> + Send + 'a,
        start: u64,
        compute_cycles_per_block: u64,
        simd_ops_per_block: u64,
        pipeline_depth: usize,
        launch_slots: u64,
        launch_latency: u64,
        burst_window: u64,
        subset: Option<SubsetRemap>,
    ) -> Self {
        Self::from_source(
            label,
            channel,
            port,
            PlainSteps(steps),
            start,
            compute_cycles_per_block,
            simd_ops_per_block,
            pipeline_depth,
            launch_slots,
            launch_latency,
            burst_window,
            subset,
        )
    }

    /// [`UnitCursor::new`] over a hint-capable [`StepSource`] (the
    /// streaming kernel path, whose span program promises whole runs).
    #[allow(clippy::too_many_arguments)]
    pub fn from_source(
        label: &'static str,
        channel: u32,
        port: Port,
        steps: impl StepSource + Send + 'a,
        start: u64,
        compute_cycles_per_block: u64,
        simd_ops_per_block: u64,
        pipeline_depth: usize,
        launch_slots: u64,
        launch_latency: u64,
        burst_window: u64,
        subset: Option<SubsetRemap>,
    ) -> Self {
        Self {
            label,
            channel,
            port,
            steps: Box::new(steps),
            peeked: None,
            hint_left: 0,
            hint_key: 0,
            run_left: 0,
            run_anchor: None,
            win_synth: 0,
            run_admit: false,
            fallback_cause: FB_OTHER as u8,
            run_stats: RunStats::default(),
            win_uniform: true,
            window: VecDeque::with_capacity(8),
            window_cap: (pipeline_depth / 2).clamp(1, 8),
            gen_clock: start,
            not_before: start,
            simd_free: start,
            inflight: VecDeque::with_capacity(pipeline_depth),
            launch_avail: start,
            launch_req: start,
            pending_kernel_start: false,
            clock: start,
            cat_cycles: [0; 8],
            end_time: start,
            compute_cycles_per_block,
            simd_ops_per_block,
            pipeline_depth,
            launch_slots,
            launch_latency,
            pipelined_launch: false,
            burst_window,
            host_gap: 0,
            subset,
            exclusive: false,
            launches: 0,
            simd_ops: 0,
            scratch_accesses: 0,
            agen_iter_sum: 0,
            agen_iter_max: 0,
            agen_bubbles: 0,
        }
    }

    /// A plain transfer stream (DMA, reductions): no compute, no launches.
    pub fn transfer(
        label: &'static str,
        channel: u32,
        port: Port,
        steps: impl Iterator<Item = Step> + Send + 'a,
        start: u64,
        inter_block_gap: u64,
    ) -> Self {
        let mut c = Self::new(label, channel, port, steps, start, 0, 0, 4, 0, 0, 4, None);
        // Host-mediated transfers insert idle gaps between blocks.
        c.host_gap = inter_block_gap;
        c
    }

    fn peek(&mut self) -> Option<Step> {
        if self.peeked.is_none() {
            self.peeked = self.steps.next();
        }
        self.peeked
    }

    /// Move consecutive Access steps into the reorder window, charging the
    /// (serial) AGEN for each generated address. A Launch is a barrier.
    fn fill_window(&mut self, mapping: &XorMapping) {
        let scope = scope_mask(mapping);
        while self.window.len() < self.window_cap {
            // An admitted run synthesizes its followers from the anchor:
            // the source already skipped these steps (take_run), promising
            // Accesses that share the anchor's key, category, and
            // direction at one AGEN iteration each — so the bookkeeping
            // below is the per-pull arithmetic verbatim, applied to the
            // promised values.
            if self.run_left > 0 {
                self.synth_follower(scope);
                continue;
            }
            // Ask the source for a run hint before pulling a fresh step;
            // the run's first entry computes and anchors the window key,
            // followers reuse it. The subset remap mixes address parities
            // into the coordinate, so hints are only honored without one.
            let mut run_first = false;
            if self.hint_left == 0 && self.peeked.is_none() && self.subset.is_none() {
                self.hint_left = self.steps.run_hint().max(1);
                run_first = true;
            }
            match self.peek() {
                Some(Step::Access { pa, write, cat, agen_iters, compute }) => {
                    self.peeked = None;
                    self.gen_clock = self.gen_clock.max(self.not_before) + agen_iters as u64;
                    self.agen_iter_sum += agen_iters as u64;
                    self.agen_iter_max = self.agen_iter_max.max(agen_iters);
                    if agen_iters as u64 > self.burst_window {
                        self.agen_bubbles += 1;
                    }
                    let mut coord = mapping.decode(pa);
                    if let Some(su) = &self.subset {
                        coord = su.remap(coord, pa);
                    }
                    // Per-channel phase sharding (run_phase_auto) relies on
                    // every access landing on the unit's declared channel;
                    // a violation would silently vanish at state merge.
                    debug_assert_eq!(
                        coord.channel, self.channel,
                        "unit '{}' issued a cross-channel access (pa {pa:#x})",
                        self.label
                    );
                    let computed_key = || {
                        (coord.bank_index(mapping.geometry()) as u64) << 33
                            | (coord.row as u64) << 1
                            | write as u64
                    };
                    let hinted = !run_first && self.hint_left > 0;
                    let key = if hinted {
                        debug_assert_eq!(
                            self.hint_key,
                            computed_key(),
                            "unit '{}': run hint promised a shared window key (pa {pa:#x})",
                            self.label
                        );
                        self.hint_key
                    } else {
                        computed_key()
                    };
                    if self.hint_left > 0 {
                        self.hint_left -= 1;
                        self.hint_key = key;
                    }
                    // Incremental scope-uniformity: a push into a uniform
                    // window stays uniform iff the new entry matches any
                    // resident entry's scope bits (transitivity). The back
                    // entry need not be the hinted run's predecessor (it
                    // may have been removed), so hinted entries compare
                    // like any other.
                    match self.window.back() {
                        None => self.win_uniform = true,
                        Some(b) => {
                            self.win_uniform = self.win_uniform && (key ^ b.key) & scope == 0;
                        }
                    }
                    let entry =
                        WinEntry { coord, write, cat, compute, gen_ready: self.gen_clock, key };
                    self.window.push_back(entry);
                    // Run-granular admission: a fresh hint promising more
                    // same-key blocks lets the source skip them wholesale;
                    // this entry anchors the synthesized followers.
                    let mut admitted = false;
                    if run_first && self.run_admit && self.hint_left > 0 {
                        let skipped = self.steps.take_run(self.hint_left);
                        if skipped > 0 {
                            debug_assert!(skipped <= self.hint_left, "over-skip");
                            self.hint_left -= skipped;
                            self.run_left = skipped;
                            self.run_anchor = Some(entry);
                            // The anchor itself is a real pull; only the
                            // synthesized followers pushed after it count
                            // toward the all-followers window test.
                            self.win_synth = 0;
                            self.run_stats.record_run(skipped + 1);
                            admitted = true;
                        }
                    }
                    if !admitted {
                        let cause = if !self.run_admit {
                            self.fallback_cause as usize
                        } else if run_first && self.hint_left == 0 {
                            // The hint ended here: the next step changes
                            // (bank, row, direction) or crosses a stage
                            // boundary.
                            FB_ROW
                        } else {
                            // Hinted follower of a run the source could
                            // not (or only partially) skip.
                            FB_OTHER
                        };
                        self.run_stats.fallback[cause] += 1;
                    }
                }
                _ => {
                    self.hint_left = 0;
                    break;
                }
            }
        }
    }

    /// Synthesize one admitted-run follower into the window: the exact
    /// per-pull arithmetic of [`UnitCursor::fill_window`] applied to the
    /// values [`StepSource::take_run`] promised (one AGEN iteration, the
    /// anchor's key and coordinate — the stale column is never read).
    #[inline]
    fn synth_follower(&mut self, scope: u64) {
        let anchor = self.run_anchor.expect("admitted run has an anchor");
        self.run_left -= 1;
        self.gen_clock = self.gen_clock.max(self.not_before) + 1;
        self.agen_iter_sum += 1;
        self.agen_iter_max = self.agen_iter_max.max(1);
        if 1 > self.burst_window {
            self.agen_bubbles += 1;
        }
        match self.window.back() {
            None => self.win_uniform = true,
            Some(b) => {
                self.win_uniform = self.win_uniform && (anchor.key ^ b.key) & scope == 0;
            }
        }
        self.window.push_back(WinEntry { gen_ready: self.gen_clock, ..anchor });
        self.win_synth += 1;
    }

    /// Decide whether the rest of the admitted run can be issued as one
    /// [`RunReply::Jump`], and at what per-block CAS distance `d`.
    ///
    /// Called with the unit just past `finish_block` of a frozen follower
    /// (`bt`), about to issue the next one. The per-block transition from
    /// here — AGEN tick, `issue_nb`, the steady CAS rule `cas' = max(cas +
    /// step, nb)`, and `finish_block` — is a max/plus circuit over the
    /// state vector (CAS, unit clock, AGEN clock, SIMD horizon, in-flight
    /// deque) whose only other inputs are per-run constants and the launch
    /// gate. Such a circuit commutes with shifting the whole state by `d`,
    /// so if one transition advances every live state component by exactly
    /// `d` — which this function verifies arithmetically — every later
    /// transition does too (the launch gate, once below the CAS, can never
    /// bind again), and all `run_left` remaining followers can be issued
    /// closed-form. Any failed condition just means "stream one more block
    /// and try again": the transient at a run's head (pipeline refilling,
    /// launch gate clearing, pre-run in-flight entries draining) settles
    /// within a few blocks.
    fn jump_len(
        &self,
        cur: &WinEntry,
        bt: stepstone_dram::BlockTiming,
        step: u64,
    ) -> Option<(u64, u64)> {
        let cas = bt.cas_at;
        // `gen_clock ≤ cas` makes the AGEN term exactly `cas + 1 ≤ cas +
        // step` on this and (by the shift) every later block — masked.
        if self.host_gap != 0
            || self.pending_kernel_start
            || self.launch_avail > cas
            || self.gen_clock > cas
        {
            return None;
        }
        // Predict the next transition exactly as issue_nb + the steady CAS
        // rule would compute it (the AGEN term is `max(gen_clock, cas) + 1
        // ≤ cas + step`, so it never decides the max).
        let full = self.inflight.len() >= self.pipeline_depth;
        let mut nb = cas + step;
        if full {
            nb = nb.max(*self.inflight.front().expect("pipeline_depth > 0"));
        }
        let d = nb - cas;
        if cur.compute {
            // The deque must already be one arithmetic cadence: then each
            // jumped block pops its front and pushes back + d, a pure
            // shift of the whole deque by d.
            if !full
                || self.simd_free != *self.inflight.back().unwrap()
                || self
                    .inflight
                    .iter()
                    .zip(self.inflight.iter().skip(1))
                    .any(|(a, b)| b.wrapping_sub(*a) != d)
            {
                return None;
            }
            // The next completion must continue that cadence…
            let done = self.simd_free.max(bt.data_end + d) + self.compute_cycles_per_block;
            if done != self.simd_free + d {
                return None;
            }
            // …and the unit clock must be tracking the CAS.
            if self.clock != cas {
                return None;
            }
        } else {
            // No pushes: any pops would drain pre-run completions that are
            // not part of the shift-invariant state.
            if full || self.clock != bt.data_end {
                return None;
            }
        }
        Some((self.run_left, d))
    }

    /// Account `k` jumped followers (see [`UnitCursor::jump_len`]): the
    /// exact per-block arithmetic of the virtual-issue path and
    /// [`UnitCursor::finish_block`], folded over `k` blocks that each
    /// advance the whole issue state by `d`.
    fn jump_followers(&mut self, cur: &WinEntry, bt: stepstone_dram::BlockTiming, k: u64, d: u64) {
        let kd = k * d;
        let last_cas = bt.cas_at + kd;
        let last_data_end = bt.data_end + kd;
        self.run_left -= k;
        // After issuing the last follower: one AGEN tick past the
        // previous block's CAS.
        self.gen_clock = last_cas - d + 1;
        self.agen_iter_sum += k;
        self.agen_iter_max = self.agen_iter_max.max(1);
        if 1 > self.burst_window {
            self.agen_bubbles += k;
        }
        self.not_before = last_cas;
        if cur.compute {
            for t in self.inflight.iter_mut() {
                *t += kd;
            }
            self.simd_free += kd;
            self.simd_ops += k * self.simd_ops_per_block;
            self.scratch_accesses += 2 * k;
        } else {
            self.scratch_accesses += k;
        }
        self.cat_cycles[cur.cat.index()] += kd;
        self.clock += kd;
        self.end_time = self.end_time.max(last_data_end).max(self.simd_free);
    }

    /// Remove window entry `ix`, restoring the uniformity flag when the
    /// departure of a mismatched entry makes the remainder uniform again.
    #[inline]
    fn take_entry(&mut self, ix: usize, scope: u64) -> WinEntry {
        // While a run is active its followers are exactly the entries
        // pushed since admission — a window suffix (only followers are
        // pushed while `run_left > 0`). After the run drains the count may
        // go stale; the next admission resets it before it is read again.
        if self.win_synth > 0 && ix >= self.window.len() - self.win_synth {
            self.win_synth -= 1;
        }
        let e = if ix == 0 {
            self.window.pop_front().expect("window entry")
        } else {
            self.window.remove(ix).expect("window entry")
        };
        if !self.win_uniform {
            self.win_uniform = self.window_scope_uniform(scope) || self.window.is_empty();
        }
        e
    }

    pub fn is_done(&mut self) -> bool {
        self.run_left == 0 && self.window.is_empty() && self.peek().is_none()
    }

    /// Desired time of the next command (scheduling key).
    pub fn desired(&mut self, mapping: &XorMapping) -> Option<u64> {
        self.fill_window(mapping);
        if let Some(e) = self.window.front() {
            return Some(self.not_before.max(e.gen_ready));
        }
        self.peek()?;
        Some(self.not_before)
    }

    /// Execute the next step.
    pub fn advance<B: MemoryBackend>(
        &mut self,
        ts: &mut B,
        bus: &mut CommandBus,
        mapping: &XorMapping,
    ) {
        self.advance_impl(ts, bus, mapping, false)
    }

    /// `allow_front` (set by the scheduler when no colocated traffic,
    /// refresh, or trace is active) permits skipping the FR-FCFS probe scan
    /// when the front entry provably wins (see
    /// [`UnitCursor::window_scope_uniform`]; additionally requires the
    /// front to be a row *hit* — a row-conflict front can legitimately lose
    /// to a later entry whose bank precharges earlier).
    fn advance_impl<B: MemoryBackend>(
        &mut self,
        ts: &mut B,
        bus: &mut CommandBus,
        mapping: &XorMapping,
        allow_front: bool,
    ) {
        self.fill_window(mapping);
        if self.window.is_empty() {
            let Some(step) = self.peeked.take().or_else(|| self.steps.next()) else {
                return;
            };
            match step {
                Step::Launch => {
                    self.launches += 1;
                    if self.launch_slots > 0 {
                        let grant =
                            bus.acquire(self.channel as usize, self.launch_req, self.launch_slots);
                        self.launch_avail = grant + self.launch_latency;
                        if self.pipelined_launch {
                            // Back-to-back packets: the next request queues
                            // right behind this one on the bus.
                            self.launch_req = grant;
                        }
                    } else {
                        self.launch_avail = self.not_before;
                    }
                    self.pending_kernel_start = !self.pipelined_launch;
                }
                Step::Access { .. } => unreachable!("fill_window consumes Access steps"),
            }
            return;
        }
        // Pick the window entry whose data would start earliest (the PIM
        // sequencer's FR-FCFS-like choice). `TimingState::probe` ignores the
        // column, so entries sharing (bank, row, direction) and an effective
        // not-before resolve to the same time — probe each distinct
        // combination once (sequential walks collapse to a single probe).
        // A window confined to one bank group and direction whose front is
        // a row hit needs no probes at all: the front entry provably wins
        // (see [`UnitCursor::window_scope_uniform`]).
        let base_nb = self.not_before.max(self.launch_avail);
        let mut best_ix = 0;
        debug_assert_eq!(
            self.win_uniform,
            self.window_scope_uniform(scope_mask(mapping)),
            "incremental uniformity flag out of sync"
        );
        let front_wins = allow_front
            && self.win_uniform
            && self.window.front().is_some_and(|e| ts.row_open(&e.coord));
        if !front_wins {
            let mut best_t = u64::MAX;
            let mut cache: [(u64, u64, u64); 8] = [(0, 0, 0); 8];
            let mut cache_len = 0usize;
            for (i, e) in self.window.iter().enumerate() {
                let nb = base_nb.max(e.gen_ready);
                // `WinEntry::key` already encodes (bank, row, direction) —
                // exactly the identity `TimingState::probe` depends on
                // beyond the not-before time.
                let cached = cache[..cache_len].iter().find(|&&(k, n, _)| k == e.key && n == nb);
                let t = match cached {
                    Some(&(_, _, t)) => t,
                    None => {
                        let kind = if e.write { CasKind::Write } else { CasKind::Read };
                        let t = ts.probe(e.coord, kind, self.port, nb);
                        if cache_len < cache.len() {
                            cache[cache_len] = (e.key, nb, t);
                            cache_len += 1;
                        }
                        t
                    }
                };
                if t < best_t {
                    best_t = t;
                    best_ix = i;
                    if t <= base_nb {
                        break; // cannot beat an immediate issue
                    }
                }
            }
        }
        let e = self.take_entry(best_ix, scope_mask(mapping));
        let nb = self.issue_nb(e.gen_ready);
        let kind = if e.write { CasKind::Write } else { CasKind::Read };
        let bt = ts.access(e.coord, kind, self.port, nb);
        self.finish_block(&e, bt);
    }

    /// Whether every window entry shares the front's bank group, rank, and
    /// direction (`scope_mask` selects those key bits). In that scope the
    /// FR-FCFS selection is provably the front entry: a same-path row hit
    /// can start no earlier than the shared tCCDL cadence the front already
    /// achieves, a row miss pays at least tRCD on top of it, and later
    /// entries' AGEN-ready times are nondecreasing — so the front's probe
    /// time is minimal and index order breaks the tie. (Entries in a
    /// *different* bank group could genuinely win — tCCDS < tCCDL is the
    /// reorder window's raison d'être — so they end the fast path.)
    #[inline]
    fn window_scope_uniform(&self, scope_mask: u64) -> bool {
        let mut it = self.window.iter();
        match it.next() {
            Some(first) => it.all(|e| (e.key ^ first.key) & scope_mask == 0),
            None => false,
        }
    }

    /// Per-block bookkeeping after a DRAM access issued for window entry
    /// `e`: clock/category attribution, SIMD pipeline, launch gating, and
    /// the next block's earliest desire.
    fn finish_block(&mut self, e: &WinEntry, bt: stepstone_dram::BlockTiming) {
        if self.pending_kernel_start {
            self.pending_kernel_start = false;
            self.launch_req = bt.cas_at;
        }
        // Host-mediated streams (CPU loads/stores) leave the bus idle
        // between transfers; the DMA engine does not.
        self.not_before = if self.host_gap > 0 {
            bt.cas_at + self.burst_window + self.host_gap
        } else {
            bt.cas_at
        };
        let mark = if e.compute {
            let done = self.simd_free.max(bt.data_end) + self.compute_cycles_per_block;
            self.simd_free = done;
            self.inflight.push_back(done);
            self.simd_ops += self.simd_ops_per_block;
            self.scratch_accesses += 2; // B panel read + C accumulate
            bt.cas_at.max(self.clock)
        } else {
            self.scratch_accesses += 1;
            bt.data_end
        };
        let mark = mark.max(self.clock);
        self.cat_cycles[e.cat.index()] += mark - self.clock;
        self.clock = mark;
        self.end_time = self.end_time.max(bt.data_end).max(self.simd_free);
    }

    /// Earliest issue time for the entry about to leave the window, with
    /// pipeline back-pressure applied. The batch path must compute this
    /// *identically* to [`UnitCursor::advance`] — one shared definition.
    #[inline]
    fn issue_nb(&mut self, gen_ready: u64) -> u64 {
        let mut nb = self.not_before.max(self.launch_avail).max(gen_ready);
        if self.inflight.len() >= self.pipeline_depth {
            if let Some(t) = self.inflight.pop_front() {
                nb = nb.max(t);
            }
        }
        nb
    }

    /// Execute the next step, then — when `fast` is set — keep issuing on
    /// the span fast path for as long as the reorder window holds a
    /// scope-uniform run with a row-hit front.
    ///
    /// `fast` is the scheduler's promise that every unit in the phase owns
    /// an [`UnitCursor::exclusive`] bank partition and no colocated
    /// traffic, refresh, or global-time trace is active. Under it, a
    /// steady row-hit run may stream arbitrarily far ahead of other units'
    /// scheduler turns: the FR-FCFS selection is provably the front entry
    /// (see `UnitCursor::window_scope_uniform`), the closed-form CAS
    /// cadence of [`MemoryBackend::access_run_with`] is exact, and same-row
    /// CAS commands read and write only the unit's own bank and datapath
    /// stamps — so commits from other (lagging) units cannot change them,
    /// and batch-issuing the whole run commutes with the per-block
    /// interleave. Everything that touches shared state — PRE/ACT (rank
    /// tRRD/tFAW windows), refresh, kernel launches on the command bus,
    /// FR-FCFS probes of a mixed window — still waits for its exact
    /// scheduler turn, so results stay bit-identical to repeated
    /// [`UnitCursor::advance`] calls.
    pub fn advance_batch<B: MemoryBackend>(
        &mut self,
        ts: &mut B,
        bus: &mut CommandBus,
        mapping: &XorMapping,
        fast: bool,
    ) {
        self.advance_impl(ts, bus, mapping, fast);
        if !fast {
            return;
        }
        let scope = scope_mask(mapping);
        loop {
            self.fill_window(mapping);
            let Some(front) = self.window.front() else { return };
            // A run may only start on a guaranteed row hit in a
            // scope-uniform window — the conditions under which the
            // FR-FCFS selection is provably the front entry. A row-miss
            // front goes back through the exact probe scan (another bank's
            // earlier precharge could win), and its PRE/ACT must order
            // against other units' rank state at its scheduler turn.
            debug_assert_eq!(self.win_uniform, self.window_scope_uniform(scope));
            if !self.win_uniform || !ts.row_open(&front.coord) {
                return;
            }
            let e0 = self.take_entry(0, scope);
            let kind = if e0.write { CasKind::Write } else { CasKind::Read };
            let nb = self.issue_nb(e0.gen_ready);
            let mut cur = e0;
            let step = ts.cas_step();
            let mut jumped = false;
            ts.access_run_stream(e0.coord, kind, self.port, nb, &mut |bt| {
                if jumped {
                    // The jump already accounted every block through this
                    // one (`bt` is the last jumped block's timing).
                    jumped = false;
                } else {
                    self.finish_block(&cur, bt);
                }
                // Frozen-window streaming: once the whole window consists
                // of the admitted run's synthesized followers, the entries
                // are interchangeable — identical but for `gen_ready`
                // stamps, which the CAS cadence provably masks (a
                // follower's stamp is at most one cycle past the previous
                // CAS, and the cadence step is at least the burst length).
                // So issue the remaining followers virtually, leaving the
                // window untouched: the arithmetic below is the synthesis
                // arithmetic verbatim, and `run_left` crosses zero at the
                // same issued-block position as in the push/pop interleave,
                // so post-run pulls resume at identical positions.
                if self.run_left > 0 && self.win_synth == self.window.len() {
                    let anchor = self.run_anchor.as_ref().expect("admitted run has an anchor");
                    if cur.key == anchor.key {
                        if let Some((k, d)) = self.jump_len(&cur, bt, step) {
                            self.jump_followers(&cur, bt, k, d);
                            jumped = true;
                            return RunReply::Jump { count: k, d };
                        }
                        self.run_left -= 1;
                        self.gen_clock = self.gen_clock.max(self.not_before) + 1;
                        self.agen_iter_sum += 1;
                        if 1 > self.burst_window {
                            self.agen_bubbles += 1;
                        }
                        // `cur` already carries the follower's coord, key,
                        // category, and compute flag; its `gen_ready` stamp
                        // is dead past `issue_nb`, so no rebuild is needed.
                        let nb = self.issue_nb(self.gen_clock);
                        return RunReply::Block(cur.coord, nb);
                    }
                }
                // Steady-state refill: one synthesized follower replaces
                // the entry just issued (the common case for admitted
                // runs), falling back to the general fill at run edges —
                // behaviorally identical to `fill_window`, minus its loop.
                if self.run_left > 0 && self.window.len() + 1 == self.window_cap {
                    self.synth_follower(scope);
                } else {
                    self.fill_window(mapping);
                }
                let Some(front) = self.window.front() else { return RunReply::End };
                // The run continues only within the same bank, row, and
                // direction (the row is necessarily still open, so every
                // follower is a closed-form hit); any boundary returns to
                // the outer loop, and a row/bank change from there to the
                // exact per-block path.
                if front.key != cur.key || !self.win_uniform {
                    return RunReply::End;
                }
                cur = self.take_entry(0, scope);
                let nb = self.issue_nb(cur.gen_ready);
                RunReply::Block(cur.coord, nb)
            });
        }
    }

    /// Close out attribution after the program is exhausted: the SIMD
    /// pipeline drains into the GEMM category.
    pub fn finish(&mut self) {
        if self.simd_free > self.clock {
            self.cat_cycles[Phase::Gemm.index()] += self.simd_free - self.clock;
            self.clock = self.simd_free;
        }
        self.end_time = self.end_time.max(self.clock);
    }

    /// Drain this unit's run statistics into the process-wide counters
    /// (called once per unit at phase end; the local copy is cleared so a
    /// unit driven through multiple phases never double-counts).
    fn flush_run_stats(&mut self) {
        let s = std::mem::take(&mut self.run_stats);
        if s.runs > 0 {
            G_RUNS.fetch_add(s.runs, Ordering::Relaxed);
            G_RUN_BLOCKS.fetch_add(s.run_blocks, Ordering::Relaxed);
            for (i, h) in s.hist.iter().enumerate() {
                if *h > 0 {
                    G_HIST[i].fetch_add(*h, Ordering::Relaxed);
                }
            }
        }
        for (i, f) in s.fallback.iter().enumerate() {
            if *f > 0 {
                G_FALLBACK[i].fetch_add(*f, Ordering::Relaxed);
            }
        }
    }
}

/// Key bits identifying (channel, rank, bank group, direction): everything
/// in `WinEntry::key` except the bank-within-group and row fields.
#[inline]
fn scope_mask(mapping: &XorMapping) -> u64 {
    (!0u64 << (33 + mapping.geometry().bank_bits())) | 1
}

/// Colocated CPU traffic as an engine participant.
pub struct TrafficCursor<'a> {
    src: &'a mut dyn TrafficSource,
    pending: Option<stepstone_dram::TrafficReq>,
    /// Arrival time of the pending request (open-loop process).
    arrival: u64,
    pub served: u64,
    pub last_issue: u64,
    /// Sum of request queueing delays (issue − arrival): the CPU-side cost
    /// of sharing the memory system with the PIMs.
    pub queueing_cycles: u64,
}

impl<'a> TrafficCursor<'a> {
    pub fn new(src: &'a mut dyn TrafficSource, start: u64) -> Self {
        Self { src, pending: None, arrival: start, served: 0, last_issue: start, queueing_cycles: 0 }
    }

    /// Mean request queueing delay in cycles.
    pub fn mean_latency(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.queueing_cycles as f64 / self.served as f64
        }
    }

    fn peek_time(&mut self) -> Option<u64> {
        self.peek_arrival()?;
        Some(self.arrival.max(self.last_issue))
    }

    /// Arrival time of the next pending request (pulls one if needed).
    fn peek_arrival(&mut self) -> Option<u64> {
        if self.pending.is_none() {
            let req = self.src.next_req()?;
            self.arrival += req.gap;
            self.pending = Some(req);
        }
        Some(self.arrival)
    }

    fn advance<B: MemoryBackend>(
        &mut self,
        ts: &mut B,
        bus: &mut CommandBus,
        mapping: &XorMapping,
    ) {
        let Some(req) = self.pending.take() else { return };
        let coord = mapping.decode(req.pa);
        let t = self.arrival.max(self.last_issue);
        let grant = bus.acquire(coord.channel as usize, t, self.src.slots_per_request());
        let kind = if req.write { CasKind::Write } else { CasKind::Read };
        let bt = ts.access(coord, kind, Port::Channel, grant);
        self.last_issue = bt.cas_at;
        self.queueing_cycles += bt.cas_at.saturating_sub(self.arrival);
        self.served += 1;
    }

    /// Serve every tenant request arriving at or before `t` — the serving
    /// loop's idle-gap catch-up between back-to-back PIM passes, when no
    /// phase engine is running to interleave the cursor.
    pub fn drain_until<B: MemoryBackend>(
        &mut self,
        ts: &mut B,
        bus: &mut CommandBus,
        mapping: &XorMapping,
        t: u64,
    ) {
        while self.peek_arrival().is_some_and(|a| a <= t) {
            self.advance(ts, bus, mapping);
        }
    }
}

/// Run all unit cursors (and optional colocated traffic) to completion.
/// Returns the phase end time (max unit end).
///
/// A unit's desired time depends only on its own state, so the ready queue
/// is a min-heap updated only for the unit that just advanced — identical
/// scheduling to the seed's linear scan (lowest index wins ties), at
/// O(log units) per step.
pub fn run_phase<B: MemoryBackend>(
    ts: &mut B,
    bus: &mut CommandBus,
    mapping: &XorMapping,
    units: &mut [UnitCursor],
    traffic: Option<&mut TrafficCursor>,
) -> u64 {
    let mut refs: Vec<&mut UnitCursor> = units.iter_mut().collect();
    run_units(ts, bus, mapping, &mut refs, traffic)
}

/// The serial phase engine over a pre-selected set of units.
fn run_units<B: MemoryBackend>(
    ts: &mut B,
    bus: &mut CommandBus,
    mapping: &XorMapping,
    units: &mut [&mut UnitCursor],
    mut traffic: Option<&mut TrafficCursor>,
) -> u64 {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    // The span fast path needs every actor's bank/path state to move only
    // at its own turn: no colocated traffic, no refresh, no global-time
    // trace, and every unit on a private bank partition. Exclusivity is
    // required even for the within-bound front-wins shortcut — a
    // non-exclusive unit (e.g. a DMA cursor in a fused round) can ACT a
    // row in another unit's bank and stamp its CAS on a *different* path,
    // leaving that bank's next_cas ahead of the other unit's own cadence
    // and breaking the "front row hit starts no later than any window
    // sibling" inference.
    let fast = span_fast_path_enabled()
        && ts.supports_closed_form_runs()
        && traffic.is_none()
        && !ts.config().refresh
        && !ts.trace_enabled()
        && units.iter().all(|u| u.exclusive);
    // Run-granular admission rides the same conditions: an admitted run is
    // only ever issued through the fast path's closed-form CAS cadence, so
    // anything that forces per-block probing also forces per-block pulls.
    // The grant must be set *before* the heap build below — `desired`
    // already fills reorder windows. The fallback cause explains the whole
    // phase (precedence: traffic > refresh > trace > other).
    let admit = fast && run_granular_enabled();
    let cause = if traffic.is_some() {
        FB_TRAFFIC
    } else if ts.config().refresh {
        FB_REFRESH
    } else if ts.trace_enabled() {
        FB_TRACE
    } else {
        FB_OTHER
    } as u8;
    for u in units.iter_mut() {
        u.run_admit = admit;
        u.fallback_cause = cause;
    }
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = units
        .iter_mut()
        .enumerate()
        .filter_map(|(i, u)| u.desired(mapping).map(|t| Reverse((t, i))))
        .collect();
    while let Some(Reverse((t, i))) = heap.pop() {
        // Let CPU traffic that wants the bus earlier go first.
        if let Some(tc) = traffic.as_deref_mut() {
            while tc.peek_time().is_some_and(|tt| tt <= t) {
                tc.advance(ts, bus, mapping);
            }
        }
        units[i].advance_batch(ts, bus, mapping, fast);
        if let Some(nt) = units[i].desired(mapping) {
            heap.push(Reverse((nt, i)));
        }
    }
    let mut end = 0;
    for u in units.iter_mut() {
        u.finish();
        u.flush_run_stats();
        end = end.max(u.end_time);
    }
    // Serve CPU traffic that arrived within the phase but after the last
    // unit event — leaving it pending would bias mean latency low (the
    // unserved tail simply vanished from the statistics). Requests arriving
    // past the phase end stay pending for the next phase.
    if let Some(tc) = traffic {
        while tc.peek_arrival().is_some_and(|a| a <= end) {
            tc.advance(ts, bus, mapping);
        }
    }
    end
}

/// Run a phase with per-channel parallelism when the unit set allows it.
///
/// PIM units and DMA transfer cursors only ever touch addresses on their
/// own channel (regions and walks are carved from the unit's PIM-ID
/// parities, which pin the channel bits), and all DRAM timing state —
/// banks, ranks, datapaths, refresh deadlines, command-bus slots — is
/// per-channel. Units on different channels therefore share *no* mutable
/// state, and simulating each channel group in isolation is cycle-exact
/// with the serial interleaving; only the global statistics need merging.
///
/// Falls back to the serial engine when colocated traffic is present (a
/// `TrafficCursor` may roam across channels), when command tracing is
/// active (the trace must stay time-ordered), or when fewer than two
/// channel groups exist.
pub fn run_phase_auto<B: MemoryBackend>(
    ts: &mut B,
    bus: &mut CommandBus,
    mapping: &XorMapping,
    units: &mut [UnitCursor],
    traffic: Option<&mut TrafficCursor>,
    parallel: bool,
) -> u64 {
    let multi_channel =
        units.first().is_some_and(|f| units.iter().any(|u| u.channel != f.channel));
    if !parallel || traffic.is_some() || ts.trace_enabled() || !multi_channel {
        return run_phase(ts, bus, mapping, units, traffic);
    }
    // Group units by channel, preserving intra-group order (the heap's
    // index tie-break is per-group, matching the serial order within a
    // channel — the only order that matters).
    let mut groups: Vec<(u32, Vec<&mut UnitCursor>)> = Vec::new();
    for u in units.iter_mut() {
        let ch = u.channel;
        match groups.iter_mut().find(|(c, _)| *c == ch) {
            Some((_, g)) => g.push(u),
            None => groups.push((ch, vec![u])),
        }
    }
    use rayon::prelude::*;
    let results: Vec<(u32, B, CommandBus, u64)> = groups
        .into_par_iter()
        .map(|(ch, mut group)| {
            let mut lts = ts.clone();
            *lts.stats_mut() = DramStats::default();
            let mut lbus = bus.clone();
            let end = run_units(&mut lts, &mut lbus, mapping, &mut group, None);
            (ch, lts, lbus, end)
        })
        .collect();
    let mut end = 0;
    for (ch, lts, lbus, group_end) in &results {
        ts.adopt_channel(lts, *ch);
        ts.stats_mut().merge(lts.stats());
        bus.adopt_channel(lbus, *ch as usize);
        end = end.max(*group_end);
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;
    use stepstone_dram::TimingState;
    use stepstone_addr::{mapping_by_id, MappingId};
    use stepstone_dram::{DramConfig, TrafficReq};

    fn read_step(pa: u64) -> Step {
        Step::Access { pa, write: false, cat: Phase::Gemm, agen_iters: 1, compute: false }
    }

    fn run_single(steps: Vec<Step>, launch_slots: u64) -> UnitCursor<'static> {
        let mapping = mapping_by_id(MappingId::Skylake);
        let mut ts = TimingState::new(DramConfig::default());
        let mut bus = CommandBus::new(2);
        let mut units = vec![UnitCursor::new(
            "t", 0, Port::Channel, steps.into_iter(), 0, 0, 0, 8, launch_slots, 10, 4, None,
        )];
        run_phase(&mut ts, &mut bus, &mapping, &mut units, None);
        units.pop().expect("one unit")
    }

    #[test]
    fn launch_gates_first_access() {
        let u = run_single(vec![Step::Launch, read_step(0)], 16);
        // The access cannot start before the 16-slot packet + latency.
        assert!(u.end_time >= 26, "end={}", u.end_time);
        assert_eq!(u.launches, 1);
    }

    #[test]
    fn zero_slot_launch_is_free() {
        let gated = run_single(vec![Step::Launch, read_step(0)], 16);
        let free = run_single(vec![Step::Launch, read_step(0)], 0);
        assert!(free.end_time < gated.end_time);
    }

    #[test]
    fn reorder_window_beats_in_order_on_same_bg_pairs() {
        // Blocks alternating (same-BG, same-BG) pairs: the window interleaves
        // them across bank groups, reaching tCCDS instead of tCCDL pacing.
        let mapping = mapping_by_id(MappingId::Skylake);
        // Find 32 channel-0 blocks in address order.
        let blocks: Vec<u64> = (0..4096u64)
            .map(|b| b * 64)
            .filter(|&pa| mapping.decode(pa).channel == 0)
            .take(64)
            .collect();
        let steps: Vec<Step> = blocks.iter().map(|&pa| read_step(pa)).collect();
        let u = run_single(steps, 0);
        let per_block = (u.end_time as f64) / 64.0;
        assert!(per_block < 6.0, "windowed stream achieves < tCCDL per block: {per_block}");
    }

    #[test]
    fn agen_iterations_accumulate_and_bubble() {
        let steps = vec![
            Step::Access { pa: 0, write: false, cat: Phase::Gemm, agen_iters: 2, compute: false },
            Step::Access { pa: 64, write: false, cat: Phase::Gemm, agen_iters: 9, compute: false },
        ];
        let u = run_single(steps, 0);
        assert_eq!(u.agen_iter_sum, 11);
        assert_eq!(u.agen_iter_max, 9);
        assert_eq!(u.agen_bubbles, 1, "9 iterations exceed the 4-cycle burst window");
    }

    #[test]
    fn subset_remap_folds_dropped_bits_into_rows() {
        let remap = SubsetRemap { dropped_masks: vec![1 << 7], bg_bits: 2, row_bits: 15 };
        let base = DramCoord { channel: 0, rank: 0, bankgroup: 3, bank: 0, row: 5, col: 1 };
        let c0 = remap.remap(base, 0); // parity 0
        assert_eq!(c0.bankgroup, 1, "high BG bit cleared");
        assert_eq!(c0.row, 5);
        let c1 = remap.remap(base, 1 << 7); // parity 1
        assert_eq!(c1.bankgroup, 1);
        assert_eq!(c1.row, 5 | (1 << 15), "parity folded into a high row bit");
    }

    #[test]
    fn window_selection_respects_pending_refresh() {
        // Regression: `TimingState::probe` used to ignore pending refresh,
        // so the FR-FCFS window ordered accesses on estimates wrong by up
        // to tRFC right after a deadline. A unit holding [rank-0 hit
        // (refresh overdue), rank-1 hit (already refreshed)] must issue the
        // rank-1 access first once probe accounts for rank 0's REF stall.
        let mapping = mapping_by_id(MappingId::Skylake);
        let cfg = DramConfig { refresh: true, ..DramConfig::default() };
        let tp = cfg.timing;
        // Find channel-0 blocks on each rank.
        let pa_of = |rank: u32| {
            (0..1u64 << 20)
                .map(|b| b * 64)
                .find(|&pa| {
                    let c = mapping.decode(pa);
                    c.channel == 0 && c.rank == rank
                })
                .expect("block on rank")
        };
        let (pa0, pa1) = (pa_of(0), pa_of(1));
        let mut ts = TimingState::new(cfg);
        // Open both rows, then retire rank 1's refresh just past the
        // deadline; rank 0's stays pending.
        ts.access(mapping.decode(pa0), CasKind::Read, Port::Channel, 0);
        ts.access(mapping.decode(pa1), CasKind::Read, Port::Channel, 0);
        ts.access(mapping.decode(pa1), CasKind::Read, Port::Channel, tp.t_refi + 10);
        assert_eq!(ts.stats.refreshes, 1, "rank 1 refreshed, rank 0 still owes");
        ts.enable_trace();
        let start = tp.t_refi + 400;
        let steps = vec![read_step(pa0), read_step(pa1)];
        let mut units = vec![UnitCursor::new(
            "t", 0, Port::Channel, steps.into_iter(), start, 0, 0, 4, 0, 0, 4, None,
        )];
        let mut bus = CommandBus::new(2);
        run_phase(&mut ts, &mut bus, &mapping, &mut units, None);
        let trace = ts.take_trace().expect("trace").records;
        let first = trace.iter().find(|r| r.time >= start).expect("post-start command");
        assert_eq!(
            first.coord.rank, 1,
            "the refresh-free rank must be selected first (got {first:?})"
        );
        assert_eq!(ts.stats.refreshes, 2, "rank 0's REF then committed");
    }

    #[test]
    fn traffic_arriving_after_last_unit_event_is_drained() {
        // An open-loop source keeps generating requests after the lone
        // unit's single access completes. Requests arriving within the
        // phase must still be served (dropping them biased mean latency
        // low); requests arriving after the phase end stay pending.
        struct Gapped(u32);
        impl TrafficSource for Gapped {
            fn next_req(&mut self) -> Option<TrafficReq> {
                if self.0 == 0 {
                    return None;
                }
                self.0 -= 1;
                Some(TrafficReq { pa: 64 * (self.0 as u64 + 1), write: false, gap: 10 })
            }
        }
        let mapping = mapping_by_id(MappingId::Skylake);
        let mut ts = TimingState::new(DramConfig::default());
        let mut bus = CommandBus::new(2);
        let mut src = Gapped(1000);
        let mut tc = TrafficCursor::new(&mut src, 0);
        let mut units = vec![UnitCursor::new(
            "t", 0, Port::Channel, vec![read_step(0)].into_iter(), 0, 0, 0, 8, 0, 0, 4, None,
        )];
        let end = run_phase(&mut ts, &mut bus, &mapping, &mut units, Some(&mut tc));
        // Arrivals land at 10, 20, 30, …: everything up to the phase end is
        // served, nothing beyond.
        assert_eq!(tc.served, end / 10, "served all phase-window arrivals (end={end})");
        assert!(tc.served >= 2, "the unit's access outlives several arrivals");
        assert!(tc.served < 1000, "the drain is bounded by the phase end");
    }

    #[test]
    fn traffic_cursor_serves_in_arrival_order() {
        struct Two(Vec<TrafficReq>);
        impl TrafficSource for Two {
            fn next_req(&mut self) -> Option<TrafficReq> {
                self.0.pop()
            }
        }
        let mapping = mapping_by_id(MappingId::Skylake);
        let mut ts = TimingState::new(DramConfig::default());
        let mut bus = CommandBus::new(2);
        let mut src = Two(vec![
            TrafficReq { pa: 128, write: true, gap: 5 },
            TrafficReq { pa: 64, write: false, gap: 3 },
        ]);
        let mut tc = TrafficCursor::new(&mut src, 0);
        // Drive it alongside an empty unit set via a dummy unit.
        let mut units = vec![UnitCursor::new(
            "t", 0, Port::Channel, vec![read_step(1 << 20)].into_iter(), 100, 0, 0, 8, 0, 0, 4, None,
        )];
        run_phase(&mut ts, &mut bus, &mapping, &mut units, Some(&mut tc));
        assert_eq!(tc.served, 2);
        assert!(tc.last_issue >= 8, "second request waits for its arrival");
    }
}
