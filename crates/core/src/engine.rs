//! Multi-agent, event-driven execution engine.
//!
//! Each PIM unit (or DMA channel, or the colocated CPU) is a *cursor* over a
//! lazily streamed step program (a [`StepSource`]: AGEN span programs,
//! region cursors — materialized `Vec<Step>`s survive only as the frozen
//! equivalence baseline). The engine repeatedly advances the cursor with
//! the earliest desired issue time, so commits into the shared
//! [`TimingState`] stay approximately time-ordered while PIM units with
//! disjoint bank partitions proceed concurrently.
//!
//! The per-unit model implements the paper's pipeline semantics (§III-A,
//! §V-C): a 20-deep execution pipeline hides DRAM and AGEN latency; the
//! per-block issue rate is bounded by DRAM timing, by SIMD throughput
//! (back-pressure once `pipeline_depth` blocks are in flight), and by AGEN —
//! a step whose address generation exceeds the DRAM burst window inserts
//! bubbles.

use crate::report::Phase;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use stepstone_addr::{DramCoord, XorMapping};
use stepstone_dram::{CasKind, CommandBus, DramStats, Port, TimingState, TrafficSource};

/// Process-wide override forcing the all-or-nothing span fast path off
/// (see [`UnitCursor::advance_batch`]). Test-only: the equivalence matrix
/// uses it to pin the exact per-block probe path under configurations that
/// would otherwise always take the fast path — output must be identical
/// either way.
static SPAN_FAST_PATH_DISABLED: AtomicBool = AtomicBool::new(false);

/// Test-only knob: enable/disable the span fast path globally. Returns the
/// previous setting so tests can restore it.
pub fn set_span_fast_path(enabled: bool) -> bool {
    !SPAN_FAST_PATH_DISABLED.swap(!enabled, Ordering::Relaxed)
}

/// Is the span fast path currently allowed?
pub fn span_fast_path_enabled() -> bool {
    !SPAN_FAST_PATH_DISABLED.load(Ordering::Relaxed)
}

/// One operation in a unit's program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// A kernel-launch packet must cross the command bus before subsequent
    /// accesses may issue.
    Launch,
    /// One cache-block DRAM access.
    Access {
        pa: u64,
        write: bool,
        cat: Phase,
        /// AGEN iterations spent producing this address.
        agen_iters: u32,
        /// Whether the block feeds the SIMD pipeline (GEMM blocks) or is a
        /// pure buffer transfer.
        compute: bool,
    },
}

/// Remapping used for the PIM-subset optimization (§III-E): dropped
/// bank-group ID bits are pinned by the coloring allocator, folding the
/// dropped address parity into extra row bits of the same bank group.
#[derive(Debug, Clone)]
pub struct SubsetRemap {
    /// PA parity masks of the dropped ID bits.
    pub dropped_masks: Vec<u64>,
    /// Number of bank-group coordinate bits to clear (highest first).
    pub bg_bits: u32,
    /// Row-field width of the geometry (folded bits go just above it).
    pub row_bits: u32,
}

impl SubsetRemap {
    fn remap(&self, mut c: DramCoord, pa: u64) -> DramCoord {
        for (i, &mask) in self.dropped_masks.iter().enumerate() {
            let parity = (pa & mask).count_ones() & 1;
            let bg_bit = self.bg_bits - 1 - i as u32;
            c.bankgroup &= !(1 << bg_bit);
            c.row ^= parity << (self.row_bits + i as u32);
        }
        c
    }
}

/// A step-program source: an iterator plus an optional *run hint*.
///
/// `run_hint` describes the steps about to be pulled: a return of `R > 1`
/// promises that the next `R` items are `Step::Access`es over contiguous
/// ascending block addresses whose DRAM coordinates differ only in the
/// column — i.e. they share one `(bank, row, direction)` window key. The
/// span program's replayed runs let [`crate::flow::KernelStream`] promise
/// whole spans at once, so the reorder window can reuse the run's key and
/// keep its uniformity flag without per-entry comparisons. Plain sources
/// return 1 (no promise). The hint is purely an accelerator: entries still
/// decode their own coordinates, and debug builds verify the promised key.
pub trait StepSource: Iterator<Item = Step> {
    fn run_hint(&self) -> u64 {
        1
    }
}

impl<S: StepSource + ?Sized> StepSource for Box<S> {
    fn run_hint(&self) -> u64 {
        (**self).run_hint()
    }
}

/// Adapter giving any step iterator the trivial (hint-free) source shape.
pub struct PlainSteps<I>(pub I);

impl<I: Iterator<Item = Step>> Iterator for PlainSteps<I> {
    type Item = Step;

    fn next(&mut self) -> Option<Step> {
        self.0.next()
    }
}

impl<I: Iterator<Item = Step>> StepSource for PlainSteps<I> {}

#[derive(Debug, Clone, Copy)]
struct WinEntry {
    /// Decoded (and subset-remapped) coordinate, cached at window fill.
    coord: DramCoord,
    write: bool,
    cat: Phase,
    compute: bool,
    gen_ready: u64,
    /// Same-run identity: (bank index, row, direction). When every window
    /// entry shares one key, the FR-FCFS selection is trivially the front
    /// entry (probe times are nondecreasing along the window) and the span
    /// fast path applies.
    key: u64,
}

/// Execution state of one unit.
///
/// The step program is *streamed*: the cursor pulls from a lazy iterator
/// (AGEN walks, region interleaves) instead of a pre-materialized `Vec`,
/// so resident step storage is O(reorder window) per unit regardless of
/// matrix size.
pub struct UnitCursor<'a> {
    pub label: &'static str,
    /// Channel this unit's control packets ride on.
    pub channel: u32,
    pub port: Port,
    steps: Box<dyn StepSource + Send + 'a>,
    peeked: Option<Step>,
    /// Remaining pulls covered by the source's current run hint (entries
    /// that share `hint_key` without needing a comparison).
    hint_left: u64,
    /// Window key of the hinted run's first entry.
    hint_key: u64,
    /// All current window entries share (channel, rank, bank group,
    /// direction) — maintained incrementally on push/pop; always equal to
    /// [`UnitCursor::window_scope_uniform`] over the live window.
    win_uniform: bool,
    /// In-order AGEN output awaiting issue; the PIM's memory sequencer may
    /// issue any of these out of order (a small FR-FCFS-like window that a
    /// 20-deep pipeline implies; Ramulator's controller reorders the same
    /// way). Entries carry the time AGEN finished generating them.
    window: VecDeque<WinEntry>,
    window_cap: usize,
    gen_clock: u64,
    /// Earliest desired issue time of the next command.
    pub not_before: u64,
    simd_free: u64,
    inflight: VecDeque<u64>,
    launch_avail: u64,
    launch_req: u64,
    pending_kernel_start: bool,
    clock: u64,
    pub cat_cycles: [u64; 8],
    pub end_time: u64,
    // Static parameters.
    compute_cycles_per_block: u64,
    simd_ops_per_block: u64,
    pipeline_depth: usize,
    launch_slots: u64,
    launch_latency: u64,
    /// Per-cache-block packet schemes (PEI) stream packets back-to-back;
    /// kernel launches request when the previous kernel starts.
    pub pipelined_launch: bool,
    burst_window: u64,
    /// Extra spacing between blocks for host-mediated transfer streams.
    host_gap: u64,
    subset: Option<SubsetRemap>,
    /// The unit's accesses are confined to a bank partition and datapath no
    /// other unit in the phase touches (kernel PIMs: each owns its bank
    /// group / rank / channel by construction). Steady-state CAS runs of
    /// such units commit only unit-private timing state, so the scheduler
    /// may let them stream past other units' turns (see
    /// [`UnitCursor::advance_batch`]). Transfer cursors and anything that
    /// roams across bank partitions must leave this false.
    pub exclusive: bool,
    // Statistics.
    pub launches: u64,
    pub simd_ops: u64,
    pub scratch_accesses: u64,
    pub agen_iter_sum: u64,
    pub agen_iter_max: u32,
    pub agen_bubbles: u64,
}

impl<'a> UnitCursor<'a> {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        label: &'static str,
        channel: u32,
        port: Port,
        steps: impl Iterator<Item = Step> + Send + 'a,
        start: u64,
        compute_cycles_per_block: u64,
        simd_ops_per_block: u64,
        pipeline_depth: usize,
        launch_slots: u64,
        launch_latency: u64,
        burst_window: u64,
        subset: Option<SubsetRemap>,
    ) -> Self {
        Self::from_source(
            label,
            channel,
            port,
            PlainSteps(steps),
            start,
            compute_cycles_per_block,
            simd_ops_per_block,
            pipeline_depth,
            launch_slots,
            launch_latency,
            burst_window,
            subset,
        )
    }

    /// [`UnitCursor::new`] over a hint-capable [`StepSource`] (the
    /// streaming kernel path, whose span program promises whole runs).
    #[allow(clippy::too_many_arguments)]
    pub fn from_source(
        label: &'static str,
        channel: u32,
        port: Port,
        steps: impl StepSource + Send + 'a,
        start: u64,
        compute_cycles_per_block: u64,
        simd_ops_per_block: u64,
        pipeline_depth: usize,
        launch_slots: u64,
        launch_latency: u64,
        burst_window: u64,
        subset: Option<SubsetRemap>,
    ) -> Self {
        Self {
            label,
            channel,
            port,
            steps: Box::new(steps),
            peeked: None,
            hint_left: 0,
            hint_key: 0,
            win_uniform: true,
            window: VecDeque::with_capacity(8),
            window_cap: (pipeline_depth / 2).clamp(1, 8),
            gen_clock: start,
            not_before: start,
            simd_free: start,
            inflight: VecDeque::with_capacity(pipeline_depth),
            launch_avail: start,
            launch_req: start,
            pending_kernel_start: false,
            clock: start,
            cat_cycles: [0; 8],
            end_time: start,
            compute_cycles_per_block,
            simd_ops_per_block,
            pipeline_depth,
            launch_slots,
            launch_latency,
            pipelined_launch: false,
            burst_window,
            host_gap: 0,
            subset,
            exclusive: false,
            launches: 0,
            simd_ops: 0,
            scratch_accesses: 0,
            agen_iter_sum: 0,
            agen_iter_max: 0,
            agen_bubbles: 0,
        }
    }

    /// A plain transfer stream (DMA, reductions): no compute, no launches.
    pub fn transfer(
        label: &'static str,
        channel: u32,
        port: Port,
        steps: impl Iterator<Item = Step> + Send + 'a,
        start: u64,
        inter_block_gap: u64,
    ) -> Self {
        let mut c = Self::new(label, channel, port, steps, start, 0, 0, 4, 0, 0, 4, None);
        // Host-mediated transfers insert idle gaps between blocks.
        c.host_gap = inter_block_gap;
        c
    }

    fn peek(&mut self) -> Option<Step> {
        if self.peeked.is_none() {
            self.peeked = self.steps.next();
        }
        self.peeked
    }

    /// Move consecutive Access steps into the reorder window, charging the
    /// (serial) AGEN for each generated address. A Launch is a barrier.
    fn fill_window(&mut self, mapping: &XorMapping) {
        let scope = scope_mask(mapping);
        while self.window.len() < self.window_cap {
            // Ask the source for a run hint before pulling a fresh step;
            // the run's first entry computes and anchors the window key,
            // followers reuse it. The subset remap mixes address parities
            // into the coordinate, so hints are only honored without one.
            let mut run_first = false;
            if self.hint_left == 0 && self.peeked.is_none() && self.subset.is_none() {
                self.hint_left = self.steps.run_hint().max(1);
                run_first = true;
            }
            match self.peek() {
                Some(Step::Access { pa, write, cat, agen_iters, compute }) => {
                    self.peeked = None;
                    self.gen_clock = self.gen_clock.max(self.not_before) + agen_iters as u64;
                    self.agen_iter_sum += agen_iters as u64;
                    self.agen_iter_max = self.agen_iter_max.max(agen_iters);
                    if agen_iters as u64 > self.burst_window {
                        self.agen_bubbles += 1;
                    }
                    let mut coord = mapping.decode(pa);
                    if let Some(su) = &self.subset {
                        coord = su.remap(coord, pa);
                    }
                    // Per-channel phase sharding (run_phase_auto) relies on
                    // every access landing on the unit's declared channel;
                    // a violation would silently vanish at state merge.
                    debug_assert_eq!(
                        coord.channel, self.channel,
                        "unit '{}' issued a cross-channel access (pa {pa:#x})",
                        self.label
                    );
                    let computed_key = || {
                        (coord.bank_index(mapping.geometry()) as u64) << 33
                            | (coord.row as u64) << 1
                            | write as u64
                    };
                    let hinted = !run_first && self.hint_left > 0;
                    let key = if hinted {
                        debug_assert_eq!(
                            self.hint_key,
                            computed_key(),
                            "unit '{}': run hint promised a shared window key (pa {pa:#x})",
                            self.label
                        );
                        self.hint_key
                    } else {
                        computed_key()
                    };
                    if self.hint_left > 0 {
                        self.hint_left -= 1;
                        self.hint_key = key;
                    }
                    // Incremental scope-uniformity: a push into a uniform
                    // window stays uniform iff the new entry matches any
                    // resident entry's scope bits (transitivity). The back
                    // entry need not be the hinted run's predecessor (it
                    // may have been removed), so hinted entries compare
                    // like any other.
                    match self.window.back() {
                        None => self.win_uniform = true,
                        Some(b) => {
                            self.win_uniform = self.win_uniform && (key ^ b.key) & scope == 0;
                        }
                    }
                    self.window.push_back(WinEntry {
                        coord,
                        write,
                        cat,
                        compute,
                        gen_ready: self.gen_clock,
                        key,
                    });
                }
                _ => {
                    self.hint_left = 0;
                    break;
                }
            }
        }
    }

    /// Remove window entry `ix`, restoring the uniformity flag when the
    /// departure of a mismatched entry makes the remainder uniform again.
    #[inline]
    fn take_entry(&mut self, ix: usize, scope: u64) -> WinEntry {
        let e = self.window.remove(ix).expect("window entry");
        if !self.win_uniform {
            self.win_uniform = self.window_scope_uniform(scope) || self.window.is_empty();
        }
        e
    }

    pub fn is_done(&mut self) -> bool {
        self.window.is_empty() && self.peek().is_none()
    }

    /// Desired time of the next command (scheduling key).
    pub fn desired(&mut self, mapping: &XorMapping) -> Option<u64> {
        self.fill_window(mapping);
        if let Some(e) = self.window.front() {
            return Some(self.not_before.max(e.gen_ready));
        }
        self.peek()?;
        Some(self.not_before)
    }

    /// Execute the next step.
    pub fn advance(&mut self, ts: &mut TimingState, bus: &mut CommandBus, mapping: &XorMapping) {
        self.advance_impl(ts, bus, mapping, false)
    }

    /// `allow_front` (set by the scheduler when no colocated traffic,
    /// refresh, or trace is active) permits skipping the FR-FCFS probe scan
    /// when the front entry provably wins (see
    /// [`UnitCursor::window_scope_uniform`]; additionally requires the
    /// front to be a row *hit* — a row-conflict front can legitimately lose
    /// to a later entry whose bank precharges earlier).
    fn advance_impl(
        &mut self,
        ts: &mut TimingState,
        bus: &mut CommandBus,
        mapping: &XorMapping,
        allow_front: bool,
    ) {
        self.fill_window(mapping);
        if self.window.is_empty() {
            let Some(step) = self.peeked.take().or_else(|| self.steps.next()) else {
                return;
            };
            match step {
                Step::Launch => {
                    self.launches += 1;
                    if self.launch_slots > 0 {
                        let grant =
                            bus.acquire(self.channel as usize, self.launch_req, self.launch_slots);
                        self.launch_avail = grant + self.launch_latency;
                        if self.pipelined_launch {
                            // Back-to-back packets: the next request queues
                            // right behind this one on the bus.
                            self.launch_req = grant;
                        }
                    } else {
                        self.launch_avail = self.not_before;
                    }
                    self.pending_kernel_start = !self.pipelined_launch;
                }
                Step::Access { .. } => unreachable!("fill_window consumes Access steps"),
            }
            return;
        }
        // Pick the window entry whose data would start earliest (the PIM
        // sequencer's FR-FCFS-like choice). `TimingState::probe` ignores the
        // column, so entries sharing (bank, row, direction) and an effective
        // not-before resolve to the same time — probe each distinct
        // combination once (sequential walks collapse to a single probe).
        // A window confined to one bank group and direction whose front is
        // a row hit needs no probes at all: the front entry provably wins
        // (see [`UnitCursor::window_scope_uniform`]).
        let base_nb = self.not_before.max(self.launch_avail);
        let mut best_ix = 0;
        debug_assert_eq!(
            self.win_uniform,
            self.window_scope_uniform(scope_mask(mapping)),
            "incremental uniformity flag out of sync"
        );
        let front_wins = allow_front
            && self.win_uniform
            && self.window.front().is_some_and(|e| ts.row_open(&e.coord));
        if !front_wins {
            let mut best_t = u64::MAX;
            let mut cache: [(u64, u64, u64); 8] = [(0, 0, 0); 8];
            let mut cache_len = 0usize;
            for (i, e) in self.window.iter().enumerate() {
                let nb = base_nb.max(e.gen_ready);
                // `WinEntry::key` already encodes (bank, row, direction) —
                // exactly the identity `TimingState::probe` depends on
                // beyond the not-before time.
                let cached = cache[..cache_len].iter().find(|&&(k, n, _)| k == e.key && n == nb);
                let t = match cached {
                    Some(&(_, _, t)) => t,
                    None => {
                        let kind = if e.write { CasKind::Write } else { CasKind::Read };
                        let t = ts.probe(e.coord, kind, self.port, nb);
                        if cache_len < cache.len() {
                            cache[cache_len] = (e.key, nb, t);
                            cache_len += 1;
                        }
                        t
                    }
                };
                if t < best_t {
                    best_t = t;
                    best_ix = i;
                    if t <= base_nb {
                        break; // cannot beat an immediate issue
                    }
                }
            }
        }
        let e = self.take_entry(best_ix, scope_mask(mapping));
        let nb = self.issue_nb(e.gen_ready);
        let kind = if e.write { CasKind::Write } else { CasKind::Read };
        let bt = ts.access(e.coord, kind, self.port, nb);
        self.finish_block(&e, bt);
    }

    /// Whether every window entry shares the front's bank group, rank, and
    /// direction (`scope_mask` selects those key bits). In that scope the
    /// FR-FCFS selection is provably the front entry: a same-path row hit
    /// can start no earlier than the shared tCCDL cadence the front already
    /// achieves, a row miss pays at least tRCD on top of it, and later
    /// entries' AGEN-ready times are nondecreasing — so the front's probe
    /// time is minimal and index order breaks the tie. (Entries in a
    /// *different* bank group could genuinely win — tCCDS < tCCDL is the
    /// reorder window's raison d'être — so they end the fast path.)
    #[inline]
    fn window_scope_uniform(&self, scope_mask: u64) -> bool {
        let mut it = self.window.iter();
        match it.next() {
            Some(first) => it.all(|e| (e.key ^ first.key) & scope_mask == 0),
            None => false,
        }
    }

    /// Per-block bookkeeping after a DRAM access issued for window entry
    /// `e`: clock/category attribution, SIMD pipeline, launch gating, and
    /// the next block's earliest desire.
    fn finish_block(&mut self, e: &WinEntry, bt: stepstone_dram::BlockTiming) {
        if self.pending_kernel_start {
            self.pending_kernel_start = false;
            self.launch_req = bt.cas_at;
        }
        // Host-mediated streams (CPU loads/stores) leave the bus idle
        // between transfers; the DMA engine does not.
        self.not_before = if self.host_gap > 0 {
            bt.cas_at + self.burst_window + self.host_gap
        } else {
            bt.cas_at
        };
        let mark = if e.compute {
            let done = self.simd_free.max(bt.data_end) + self.compute_cycles_per_block;
            self.simd_free = done;
            self.inflight.push_back(done);
            self.simd_ops += self.simd_ops_per_block;
            self.scratch_accesses += 2; // B panel read + C accumulate
            bt.cas_at.max(self.clock)
        } else {
            self.scratch_accesses += 1;
            bt.data_end
        };
        let mark = mark.max(self.clock);
        self.cat_cycles[e.cat.index()] += mark - self.clock;
        self.clock = mark;
        self.end_time = self.end_time.max(bt.data_end).max(self.simd_free);
    }

    /// Earliest issue time for the entry about to leave the window, with
    /// pipeline back-pressure applied. The batch path must compute this
    /// *identically* to [`UnitCursor::advance`] — one shared definition.
    #[inline]
    fn issue_nb(&mut self, gen_ready: u64) -> u64 {
        let mut nb = self.not_before.max(self.launch_avail).max(gen_ready);
        if self.inflight.len() >= self.pipeline_depth {
            if let Some(t) = self.inflight.pop_front() {
                nb = nb.max(t);
            }
        }
        nb
    }

    /// Execute the next step, then — when `fast` is set — keep issuing on
    /// the span fast path for as long as the reorder window holds a
    /// scope-uniform run with a row-hit front.
    ///
    /// `fast` is the scheduler's promise that every unit in the phase owns
    /// an [`UnitCursor::exclusive`] bank partition and no colocated
    /// traffic, refresh, or global-time trace is active. Under it, a
    /// steady row-hit run may stream arbitrarily far ahead of other units'
    /// scheduler turns: the FR-FCFS selection is provably the front entry
    /// (see `UnitCursor::window_scope_uniform`), the closed-form CAS
    /// cadence of [`TimingState::access_run_with`] is exact, and same-row
    /// CAS commands read and write only the unit's own bank and datapath
    /// stamps — so commits from other (lagging) units cannot change them,
    /// and batch-issuing the whole run commutes with the per-block
    /// interleave. Everything that touches shared state — PRE/ACT (rank
    /// tRRD/tFAW windows), refresh, kernel launches on the command bus,
    /// FR-FCFS probes of a mixed window — still waits for its exact
    /// scheduler turn, so results stay bit-identical to repeated
    /// [`UnitCursor::advance`] calls.
    pub fn advance_batch(
        &mut self,
        ts: &mut TimingState,
        bus: &mut CommandBus,
        mapping: &XorMapping,
        fast: bool,
    ) {
        self.advance_impl(ts, bus, mapping, fast);
        if !fast {
            return;
        }
        let scope = scope_mask(mapping);
        loop {
            self.fill_window(mapping);
            let Some(front) = self.window.front() else { return };
            // A run may only start on a guaranteed row hit in a
            // scope-uniform window — the conditions under which the
            // FR-FCFS selection is provably the front entry. A row-miss
            // front goes back through the exact probe scan (another bank's
            // earlier precharge could win), and its PRE/ACT must order
            // against other units' rank state at its scheduler turn.
            debug_assert_eq!(self.win_uniform, self.window_scope_uniform(scope));
            if !self.win_uniform || !ts.row_open(&front.coord) {
                return;
            }
            let e0 = self.take_entry(0, scope);
            let kind = if e0.write { CasKind::Write } else { CasKind::Read };
            let nb = self.issue_nb(e0.gen_ready);
            let mut cur = e0;
            ts.access_run_with(e0.coord, kind, self.port, nb, &mut |bt| {
                self.finish_block(&cur, bt);
                self.fill_window(mapping);
                let front = self.window.front()?;
                // The run continues only within the same bank, row, and
                // direction (the row is necessarily still open, so every
                // follower is a closed-form hit); any boundary returns to
                // the outer loop, and a row/bank change from there to the
                // exact per-block path.
                if front.key != cur.key || !self.win_uniform {
                    return None;
                }
                cur = self.take_entry(0, scope);
                let nb = self.issue_nb(cur.gen_ready);
                Some((cur.coord, nb))
            });
        }
    }

    /// Close out attribution after the program is exhausted: the SIMD
    /// pipeline drains into the GEMM category.
    pub fn finish(&mut self) {
        if self.simd_free > self.clock {
            self.cat_cycles[Phase::Gemm.index()] += self.simd_free - self.clock;
            self.clock = self.simd_free;
        }
        self.end_time = self.end_time.max(self.clock);
    }
}

/// Key bits identifying (channel, rank, bank group, direction): everything
/// in `WinEntry::key` except the bank-within-group and row fields.
#[inline]
fn scope_mask(mapping: &XorMapping) -> u64 {
    (!0u64 << (33 + mapping.geometry().bank_bits())) | 1
}

/// Colocated CPU traffic as an engine participant.
pub struct TrafficCursor<'a> {
    src: &'a mut dyn TrafficSource,
    pending: Option<stepstone_dram::TrafficReq>,
    /// Arrival time of the pending request (open-loop process).
    arrival: u64,
    pub served: u64,
    pub last_issue: u64,
    /// Sum of request queueing delays (issue − arrival): the CPU-side cost
    /// of sharing the memory system with the PIMs.
    pub queueing_cycles: u64,
}

impl<'a> TrafficCursor<'a> {
    pub fn new(src: &'a mut dyn TrafficSource, start: u64) -> Self {
        Self { src, pending: None, arrival: start, served: 0, last_issue: start, queueing_cycles: 0 }
    }

    /// Mean request queueing delay in cycles.
    pub fn mean_latency(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.queueing_cycles as f64 / self.served as f64
        }
    }

    fn peek_time(&mut self) -> Option<u64> {
        self.peek_arrival()?;
        Some(self.arrival.max(self.last_issue))
    }

    /// Arrival time of the next pending request (pulls one if needed).
    fn peek_arrival(&mut self) -> Option<u64> {
        if self.pending.is_none() {
            let req = self.src.next_req()?;
            self.arrival += req.gap;
            self.pending = Some(req);
        }
        Some(self.arrival)
    }

    fn advance(&mut self, ts: &mut TimingState, bus: &mut CommandBus, mapping: &XorMapping) {
        let Some(req) = self.pending.take() else { return };
        let coord = mapping.decode(req.pa);
        let t = self.arrival.max(self.last_issue);
        let grant = bus.acquire(coord.channel as usize, t, self.src.slots_per_request());
        let kind = if req.write { CasKind::Write } else { CasKind::Read };
        let bt = ts.access(coord, kind, Port::Channel, grant);
        self.last_issue = bt.cas_at;
        self.queueing_cycles += bt.cas_at.saturating_sub(self.arrival);
        self.served += 1;
    }
}

/// Run all unit cursors (and optional colocated traffic) to completion.
/// Returns the phase end time (max unit end).
///
/// A unit's desired time depends only on its own state, so the ready queue
/// is a min-heap updated only for the unit that just advanced — identical
/// scheduling to the seed's linear scan (lowest index wins ties), at
/// O(log units) per step.
pub fn run_phase(
    ts: &mut TimingState,
    bus: &mut CommandBus,
    mapping: &XorMapping,
    units: &mut [UnitCursor],
    traffic: Option<&mut TrafficCursor>,
) -> u64 {
    let mut refs: Vec<&mut UnitCursor> = units.iter_mut().collect();
    run_units(ts, bus, mapping, &mut refs, traffic)
}

/// The serial phase engine over a pre-selected set of units.
fn run_units(
    ts: &mut TimingState,
    bus: &mut CommandBus,
    mapping: &XorMapping,
    units: &mut [&mut UnitCursor],
    mut traffic: Option<&mut TrafficCursor>,
) -> u64 {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = units
        .iter_mut()
        .enumerate()
        .filter_map(|(i, u)| u.desired(mapping).map(|t| Reverse((t, i))))
        .collect();
    // The span fast path needs every actor's bank/path state to move only
    // at its own turn: no colocated traffic, no refresh, no global-time
    // trace, and every unit on a private bank partition. Exclusivity is
    // required even for the within-bound front-wins shortcut — a
    // non-exclusive unit (e.g. a DMA cursor in a fused round) can ACT a
    // row in another unit's bank and stamp its CAS on a *different* path,
    // leaving that bank's next_cas ahead of the other unit's own cadence
    // and breaking the "front row hit starts no later than any window
    // sibling" inference.
    let fast = span_fast_path_enabled()
        && traffic.is_none()
        && !ts.config().refresh
        && !ts.trace_enabled()
        && units.iter().all(|u| u.exclusive);
    while let Some(Reverse((t, i))) = heap.pop() {
        // Let CPU traffic that wants the bus earlier go first.
        if let Some(tc) = traffic.as_deref_mut() {
            while tc.peek_time().is_some_and(|tt| tt <= t) {
                tc.advance(ts, bus, mapping);
            }
        }
        units[i].advance_batch(ts, bus, mapping, fast);
        if let Some(nt) = units[i].desired(mapping) {
            heap.push(Reverse((nt, i)));
        }
    }
    let mut end = 0;
    for u in units.iter_mut() {
        u.finish();
        end = end.max(u.end_time);
    }
    // Serve CPU traffic that arrived within the phase but after the last
    // unit event — leaving it pending would bias mean latency low (the
    // unserved tail simply vanished from the statistics). Requests arriving
    // past the phase end stay pending for the next phase.
    if let Some(tc) = traffic {
        while tc.peek_arrival().is_some_and(|a| a <= end) {
            tc.advance(ts, bus, mapping);
        }
    }
    end
}

/// Run a phase with per-channel parallelism when the unit set allows it.
///
/// PIM units and DMA transfer cursors only ever touch addresses on their
/// own channel (regions and walks are carved from the unit's PIM-ID
/// parities, which pin the channel bits), and all DRAM timing state —
/// banks, ranks, datapaths, refresh deadlines, command-bus slots — is
/// per-channel. Units on different channels therefore share *no* mutable
/// state, and simulating each channel group in isolation is cycle-exact
/// with the serial interleaving; only the global statistics need merging.
///
/// Falls back to the serial engine when colocated traffic is present (a
/// `TrafficCursor` may roam across channels), when command tracing is
/// active (the trace must stay time-ordered), or when fewer than two
/// channel groups exist.
pub fn run_phase_auto(
    ts: &mut TimingState,
    bus: &mut CommandBus,
    mapping: &XorMapping,
    units: &mut [UnitCursor],
    traffic: Option<&mut TrafficCursor>,
    parallel: bool,
) -> u64 {
    let multi_channel =
        units.first().is_some_and(|f| units.iter().any(|u| u.channel != f.channel));
    if !parallel || traffic.is_some() || ts.trace_enabled() || !multi_channel {
        return run_phase(ts, bus, mapping, units, traffic);
    }
    // Group units by channel, preserving intra-group order (the heap's
    // index tie-break is per-group, matching the serial order within a
    // channel — the only order that matters).
    let mut groups: Vec<(u32, Vec<&mut UnitCursor>)> = Vec::new();
    for u in units.iter_mut() {
        let ch = u.channel;
        match groups.iter_mut().find(|(c, _)| *c == ch) {
            Some((_, g)) => g.push(u),
            None => groups.push((ch, vec![u])),
        }
    }
    use rayon::prelude::*;
    let results: Vec<(u32, TimingState, CommandBus, u64)> = groups
        .into_par_iter()
        .map(|(ch, mut group)| {
            let mut lts = ts.clone();
            lts.stats = DramStats::default();
            let mut lbus = bus.clone();
            let end = run_units(&mut lts, &mut lbus, mapping, &mut group, None);
            (ch, lts, lbus, end)
        })
        .collect();
    let mut end = 0;
    for (ch, lts, lbus, group_end) in &results {
        ts.adopt_channel(lts, *ch);
        ts.stats.merge(&lts.stats);
        bus.adopt_channel(lbus, *ch as usize);
        end = end.max(*group_end);
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;
    use stepstone_addr::{mapping_by_id, MappingId};
    use stepstone_dram::{DramConfig, TrafficReq};

    fn read_step(pa: u64) -> Step {
        Step::Access { pa, write: false, cat: Phase::Gemm, agen_iters: 1, compute: false }
    }

    fn run_single(steps: Vec<Step>, launch_slots: u64) -> UnitCursor<'static> {
        let mapping = mapping_by_id(MappingId::Skylake);
        let mut ts = TimingState::new(DramConfig::default());
        let mut bus = CommandBus::new(2);
        let mut units = vec![UnitCursor::new(
            "t", 0, Port::Channel, steps.into_iter(), 0, 0, 0, 8, launch_slots, 10, 4, None,
        )];
        run_phase(&mut ts, &mut bus, &mapping, &mut units, None);
        units.pop().expect("one unit")
    }

    #[test]
    fn launch_gates_first_access() {
        let u = run_single(vec![Step::Launch, read_step(0)], 16);
        // The access cannot start before the 16-slot packet + latency.
        assert!(u.end_time >= 26, "end={}", u.end_time);
        assert_eq!(u.launches, 1);
    }

    #[test]
    fn zero_slot_launch_is_free() {
        let gated = run_single(vec![Step::Launch, read_step(0)], 16);
        let free = run_single(vec![Step::Launch, read_step(0)], 0);
        assert!(free.end_time < gated.end_time);
    }

    #[test]
    fn reorder_window_beats_in_order_on_same_bg_pairs() {
        // Blocks alternating (same-BG, same-BG) pairs: the window interleaves
        // them across bank groups, reaching tCCDS instead of tCCDL pacing.
        let mapping = mapping_by_id(MappingId::Skylake);
        // Find 32 channel-0 blocks in address order.
        let blocks: Vec<u64> = (0..4096u64)
            .map(|b| b * 64)
            .filter(|&pa| mapping.decode(pa).channel == 0)
            .take(64)
            .collect();
        let steps: Vec<Step> = blocks.iter().map(|&pa| read_step(pa)).collect();
        let u = run_single(steps, 0);
        let per_block = (u.end_time as f64) / 64.0;
        assert!(per_block < 6.0, "windowed stream achieves < tCCDL per block: {per_block}");
    }

    #[test]
    fn agen_iterations_accumulate_and_bubble() {
        let steps = vec![
            Step::Access { pa: 0, write: false, cat: Phase::Gemm, agen_iters: 2, compute: false },
            Step::Access { pa: 64, write: false, cat: Phase::Gemm, agen_iters: 9, compute: false },
        ];
        let u = run_single(steps, 0);
        assert_eq!(u.agen_iter_sum, 11);
        assert_eq!(u.agen_iter_max, 9);
        assert_eq!(u.agen_bubbles, 1, "9 iterations exceed the 4-cycle burst window");
    }

    #[test]
    fn subset_remap_folds_dropped_bits_into_rows() {
        let remap = SubsetRemap { dropped_masks: vec![1 << 7], bg_bits: 2, row_bits: 15 };
        let base = DramCoord { channel: 0, rank: 0, bankgroup: 3, bank: 0, row: 5, col: 1 };
        let c0 = remap.remap(base, 0); // parity 0
        assert_eq!(c0.bankgroup, 1, "high BG bit cleared");
        assert_eq!(c0.row, 5);
        let c1 = remap.remap(base, 1 << 7); // parity 1
        assert_eq!(c1.bankgroup, 1);
        assert_eq!(c1.row, 5 | (1 << 15), "parity folded into a high row bit");
    }

    #[test]
    fn window_selection_respects_pending_refresh() {
        // Regression: `TimingState::probe` used to ignore pending refresh,
        // so the FR-FCFS window ordered accesses on estimates wrong by up
        // to tRFC right after a deadline. A unit holding [rank-0 hit
        // (refresh overdue), rank-1 hit (already refreshed)] must issue the
        // rank-1 access first once probe accounts for rank 0's REF stall.
        let mapping = mapping_by_id(MappingId::Skylake);
        let cfg = DramConfig { refresh: true, ..DramConfig::default() };
        let tp = cfg.timing;
        // Find channel-0 blocks on each rank.
        let pa_of = |rank: u32| {
            (0..1u64 << 20)
                .map(|b| b * 64)
                .find(|&pa| {
                    let c = mapping.decode(pa);
                    c.channel == 0 && c.rank == rank
                })
                .expect("block on rank")
        };
        let (pa0, pa1) = (pa_of(0), pa_of(1));
        let mut ts = TimingState::new(cfg);
        // Open both rows, then retire rank 1's refresh just past the
        // deadline; rank 0's stays pending.
        ts.access(mapping.decode(pa0), CasKind::Read, Port::Channel, 0);
        ts.access(mapping.decode(pa1), CasKind::Read, Port::Channel, 0);
        ts.access(mapping.decode(pa1), CasKind::Read, Port::Channel, tp.t_refi + 10);
        assert_eq!(ts.stats.refreshes, 1, "rank 1 refreshed, rank 0 still owes");
        ts.enable_trace();
        let start = tp.t_refi + 400;
        let steps = vec![read_step(pa0), read_step(pa1)];
        let mut units = vec![UnitCursor::new(
            "t", 0, Port::Channel, steps.into_iter(), start, 0, 0, 4, 0, 0, 4, None,
        )];
        let mut bus = CommandBus::new(2);
        run_phase(&mut ts, &mut bus, &mapping, &mut units, None);
        let trace = ts.take_trace().expect("trace").records;
        let first = trace.iter().find(|r| r.time >= start).expect("post-start command");
        assert_eq!(
            first.coord.rank, 1,
            "the refresh-free rank must be selected first (got {first:?})"
        );
        assert_eq!(ts.stats.refreshes, 2, "rank 0's REF then committed");
    }

    #[test]
    fn traffic_arriving_after_last_unit_event_is_drained() {
        // An open-loop source keeps generating requests after the lone
        // unit's single access completes. Requests arriving within the
        // phase must still be served (dropping them biased mean latency
        // low); requests arriving after the phase end stay pending.
        struct Gapped(u32);
        impl TrafficSource for Gapped {
            fn next_req(&mut self) -> Option<TrafficReq> {
                if self.0 == 0 {
                    return None;
                }
                self.0 -= 1;
                Some(TrafficReq { pa: 64 * (self.0 as u64 + 1), write: false, gap: 10 })
            }
        }
        let mapping = mapping_by_id(MappingId::Skylake);
        let mut ts = TimingState::new(DramConfig::default());
        let mut bus = CommandBus::new(2);
        let mut src = Gapped(1000);
        let mut tc = TrafficCursor::new(&mut src, 0);
        let mut units = vec![UnitCursor::new(
            "t", 0, Port::Channel, vec![read_step(0)].into_iter(), 0, 0, 0, 8, 0, 0, 4, None,
        )];
        let end = run_phase(&mut ts, &mut bus, &mapping, &mut units, Some(&mut tc));
        // Arrivals land at 10, 20, 30, …: everything up to the phase end is
        // served, nothing beyond.
        assert_eq!(tc.served, end / 10, "served all phase-window arrivals (end={end})");
        assert!(tc.served >= 2, "the unit's access outlives several arrivals");
        assert!(tc.served < 1000, "the drain is bounded by the phase end");
    }

    #[test]
    fn traffic_cursor_serves_in_arrival_order() {
        struct Two(Vec<TrafficReq>);
        impl TrafficSource for Two {
            fn next_req(&mut self) -> Option<TrafficReq> {
                self.0.pop()
            }
        }
        let mapping = mapping_by_id(MappingId::Skylake);
        let mut ts = TimingState::new(DramConfig::default());
        let mut bus = CommandBus::new(2);
        let mut src = Two(vec![
            TrafficReq { pa: 128, write: true, gap: 5 },
            TrafficReq { pa: 64, write: false, gap: 3 },
        ]);
        let mut tc = TrafficCursor::new(&mut src, 0);
        // Drive it alongside an empty unit set via a dummy unit.
        let mut units = vec![UnitCursor::new(
            "t", 0, Port::Channel, vec![read_step(1 << 20)].into_iter(), 100, 0, 0, 8, 0, 0, 4, None,
        )];
        run_phase(&mut ts, &mut bus, &mapping, &mut units, Some(&mut tc));
        assert_eq!(tc.served, 2);
        assert!(tc.last_issue >= 8, "second request waits for its arrival");
    }
}
