//! Whole-system configuration for StepStone simulations.

use serde::{Deserialize, Serialize};
use stepstone_addr::agen::AgenRules;
use stepstone_addr::{mapping_by_id, MappingId, PageMap, PagingConfig, XorMapping};
use stepstone_dram::{BackendKind, DramConfig};
use stepstone_fabric::{FabricConfig, ReduceVia};
use stepstone_pim::{LaunchModel, LocalizationMode};

/// Address-generation variants compared in Fig. 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AgenMode {
    /// The naive block-by-block scan.
    Naive,
    /// StepStone increment-correct-and-check with the given rules.
    StepStone(AgenRules),
}

impl Default for AgenMode {
    fn default() -> Self {
        AgenMode::StepStone(AgenRules::default())
    }
}

/// Everything a simulation needs besides the GEMM itself.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystemConfig {
    pub dram: DramConfig,
    pub mapping_id: MappingId,
    pub launch: LaunchModel,
    pub agen: AgenMode,
    /// How `B` localization and `C` reduction move data.
    pub localization: LocalizationMode,
    /// Base of the weight-matrix arena (each GEMM is placed at the next
    /// naturally aligned address at or above this).
    pub weight_base: u64,
    /// Base of the per-PIM localized-buffer arena.
    pub buffer_base: u64,
    /// Run the functional datapath and verify results (small GEMMs only).
    pub validate: bool,
    /// Simulate independent channels in parallel (cycle-exact; disabled
    /// automatically when colocated traffic or command tracing is active).
    pub parallel: bool,
    /// Record the DRAM command trace during simulations (diagnostics and
    /// the equivalence test matrix). Tracing forces the serial engine and
    /// the exact per-block scheduling path; reports must be unchanged.
    pub trace: bool,
    /// Which memory-model tier simulations run on. `Exact` (default) is
    /// the cycle-exact Table-II model; `Analytic` swaps in the closed-form
    /// fast tier for design-space sweeps (validation is force-disabled on
    /// paths without a functional datapath).
    pub backend: BackendKind,
    /// How the Phase-3 partial-`C` merge moves across PIM devices.
    /// `HostDma` (default) is the paper's path and is bit-identical to the
    /// pre-fabric simulator; `Fabric` routes partial sums PIM→PIM over the
    /// inter-device fabric after the same per-channel DRAM drain.
    pub reduce_via: ReduceVia,
    /// Fabric link/topology parameters (used only under
    /// `ReduceVia::Fabric`; one fabric node per DRAM channel).
    pub fabric: FabricConfig,
    /// VA→PA paging layer (None = the paper's physically contiguous
    /// arenas). When set, every step stream translates its addresses
    /// through the [`PageMap`], run promises are clipped at page
    /// boundaries, and page transitions charge the PTW's AGEN cost; an
    /// identity policy with zero PTW cycles stays bit-identical to the
    /// contiguous baseline (CI-gated).
    pub paging: Option<PagingConfig>,
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self {
            dram: DramConfig::default(),
            mapping_id: MappingId::Skylake,
            launch: LaunchModel::default(),
            agen: AgenMode::default(),
            localization: LocalizationMode::AcceleratedDma,
            weight_base: 1 << 30,
            buffer_base: 1 << 33,
            validate: false,
            parallel: true,
            trace: false,
            backend: BackendKind::Exact,
            reduce_via: ReduceVia::default(),
            fabric: FabricConfig::default(),
            paging: None,
        }
    }
}

impl SystemConfig {
    pub fn mapping(&self) -> XorMapping {
        let mut m = mapping_by_id(self.mapping_id);
        if self.dram.geom != *m.geometry() {
            m = stepstone_addr::presets::mapping_on(self.mapping_id, self.dram.geom);
        }
        m
    }

    /// Place an `total_bytes`-sized matrix at its natural alignment at or
    /// above the weight arena base (the layout validator requires it).
    pub fn place_weights(&self, total_bytes: u64) -> u64 {
        align_up(self.weight_base, total_bytes.max(64))
    }

    pub fn with_mapping(mut self, id: MappingId) -> Self {
        self.mapping_id = id;
        self
    }

    pub fn with_agen(mut self, agen: AgenMode) -> Self {
        self.agen = agen;
        self
    }

    pub fn with_validation(mut self) -> Self {
        self.validate = true;
        self
    }

    pub fn with_localization(mut self, mode: LocalizationMode) -> Self {
        self.localization = mode;
        self
    }

    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    pub fn with_reduce_via(mut self, via: ReduceVia) -> Self {
        self.reduce_via = via;
        self
    }

    pub fn with_fabric(mut self, fabric: FabricConfig) -> Self {
        self.fabric = fabric;
        self
    }

    /// Swap the DRAM timing/geometry config (e.g. a `DramConfig` preset),
    /// keeping the rest of the system unchanged. `mapping()` adapts the
    /// address mapping to the new geometry automatically.
    pub fn with_dram(mut self, dram: DramConfig) -> Self {
        self.dram = dram;
        self
    }

    /// Enable the VA→PA paging layer.
    pub fn with_paging(mut self, paging: PagingConfig) -> Self {
        self.paging = Some(paging);
        self
    }

    /// The validated translation map of `paging`, if set. Built with
    /// [`PageMap::for_mapping`], so frame allocation is page-colored: the
    /// channel/rank/bank-group parities of this system's address mapping
    /// are preserved and translation never moves a block out of its PIM's
    /// bank partition.
    ///
    /// # Panics
    /// On a degenerate [`PagingConfig`] (see [`PageMap::try_new`]).
    pub fn page_map(&self) -> Option<PageMap> {
        self.paging.map(|cfg| PageMap::for_mapping(cfg, &self.mapping()))
    }
}

fn align_up(v: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    (v + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_placement_is_naturally_aligned() {
        let sys = SystemConfig::default();
        let sz = (1024u64 * 4096 * 4).next_power_of_two();
        let base = sys.place_weights(sz);
        assert_eq!(base % sz, 0);
        assert!(base >= sys.weight_base);
    }

    #[test]
    fn buffer_arena_does_not_overlap_weights() {
        let sys = SystemConfig::default();
        // Largest evaluated matrix: 16384×1024×4 = 64 MiB ≪ arena gap.
        let base = sys.place_weights(16384 * 2048 * 4);
        assert!(base + 16384 * 2048 * 4 <= sys.buffer_base);
    }

    #[test]
    fn default_uses_skylake_and_dma() {
        let sys = SystemConfig::default();
        assert_eq!(sys.mapping_id, MappingId::Skylake);
        assert_eq!(sys.localization, LocalizationMode::AcceleratedDma);
        assert_eq!(sys.mapping().name(), "skylake");
    }
}
