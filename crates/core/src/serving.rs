//! Serving-time execution strategies from §III-E and §V-B:
//!
//! * **Batch splitting** — "Even with somewhat larger batches (e.g., up to
//!   N = 384 for BERT), StepStone PIM outperforms the CPU by splitting a
//!   batch into several batch-32 GEMM operations" (§V-B). The splitter
//!   chops a large batch into PIM-sized chunks and serializes them.
//! * **Fused kernels for non-power-of-two matrices** — §III-E lists
//!   "fusing multiple kernel executions for matrices that are not powers of
//!   two" among the optimizations. Instead of running each power-of-two
//!   sub-GEMM as an independent localize→kernel→reduce sequence, the fused
//!   flow localizes all sub-matrices in one DMA pass, runs every sub-kernel
//!   under a single long-running launch per PIM, and reduces once.

use crate::config::SystemConfig;
use crate::cpu::CpuModel;
use crate::engine::{run_phase_auto, TrafficCursor, UnitCursor};
use crate::flow::{fabric_reduce, transfer_cursors, GemmContext, KernelStream, SimOptions};
use crate::gemm::GemmSpec;
use crate::report::{ActivityCounts, LatencyReport, Phase};
use stepstone_addr::PimLevel;
use stepstone_dram::{
    AnalyticState, BackendKind, CommandBus, MemoryBackend, TimingState, TrafficSource,
};

/// The largest per-kernel batch the PIMs run efficiently (§V-B splits to
/// batch-32 chunks).
pub const PIM_CHUNK_BATCH: usize = 32;

/// Simulate a large-batch GEMM by splitting into PIM-sized chunks.
pub fn simulate_split_batch(
    sys: &SystemConfig,
    m: usize,
    k: usize,
    n_total: usize,
    level: PimLevel,
) -> LatencyReport {
    let mut report = LatencyReport {
        backend: format!("STP-{}/split", level.tag()),
        clock_hz: sys.dram.clock_hz,
        ..Default::default()
    };
    let mut remaining = n_total;
    while remaining > 0 {
        let n = remaining.min(PIM_CHUNK_BATCH);
        let r = crate::flow::simulate_gemm(sys, &GemmSpec::new(m, k, n), level);
        report.chain(&r);
        remaining -= n;
    }
    report
}

/// Largest batch the crossover search examines before concluding the PIM
/// stays ahead.
pub const CROSSOVER_SEARCH_CAP: usize = 1 << 14;

/// Predicted split-batch PIM cycles for an arbitrary batch `n`, costed the
/// way [`simulate_split_batch`] executes it: full batch-32 chunks at the
/// full-chunk price plus one *partial* chunk simulated at its real (smaller,
/// cheaper) size — not `ceil(n/32)` full chunks.
pub fn split_batch_cycles(sys: &SystemConfig, m: usize, k: usize, n: usize, level: PimLevel) -> u64 {
    let full = (n / PIM_CHUNK_BATCH) as u64;
    let rem = n % PIM_CHUNK_BATCH;
    let mut cycles = if full > 0 {
        full * crate::flow::simulate_gemm(sys, &GemmSpec::new(m, k, PIM_CHUNK_BATCH), level).total
    } else {
        0
    };
    if rem > 0 {
        cycles += crate::flow::simulate_gemm(sys, &GemmSpec::new(m, k, rem), level).total;
    }
    cycles
}

/// The batch size at which the CPU overtakes split-batch PIM execution for
/// an `m × k` weight matrix (the paper's N = 384 claim for BERT's layers).
/// The search is chunk-granular — batches between multiples of
/// [`PIM_CHUNK_BATCH`] cost *less* than the next multiple (see
/// [`split_batch_cycles`]), so the first losing multiple bounds the true
/// crossover from above by one chunk.
///
/// Returns `None` when no crossover exists within
/// [`CROSSOVER_SEARCH_CAP`] samples — previously this was conflated with
/// "crossover at the cap", making a PIM that never loses indistinguishable
/// from one that loses at 16 Ki samples.
pub fn cpu_crossover_batch(
    sys: &SystemConfig,
    m: usize,
    k: usize,
    level: PimLevel,
) -> Option<usize> {
    let cpu = CpuModel::default();
    // The PIM cost is linear in the number of full chunks; simulate one.
    let chunk = crate::flow::simulate_gemm(sys, &GemmSpec::new(m, k, PIM_CHUNK_BATCH), level).total;
    let mut n = PIM_CHUNK_BATCH;
    while n <= CROSSOVER_SEARCH_CAP {
        let pim = (n / PIM_CHUNK_BATCH) as u64 * chunk;
        if cpu.cycles(&GemmSpec::new(m, k, n)) < pim {
            return Some(n);
        }
        n += PIM_CHUNK_BATCH;
    }
    None
}

/// Fused execution of a non-power-of-two GEMM: the sub-matrices' phases are
/// pipelined — while sub-GEMM *i* streams through the PIM-internal
/// datapaths, the DMA engine already localizes sub-GEMM *i+1* over the
/// (otherwise idle) channel, and reductions are batched at the end.
pub fn simulate_gemm_fused(
    sys: &SystemConfig,
    spec: &GemmSpec,
    opts: &SimOptions,
    traffic: Option<&mut dyn TrafficSource>,
) -> LatencyReport {
    let subs = spec.decompose_pow2();
    // Place each sub-matrix at its own naturally aligned region.
    let mut cursor = sys.weight_base;
    let mut ctxs: Vec<GemmContext> = Vec::with_capacity(subs.len());
    for sub in &subs {
        let size = (sub.m * sub.k * 4) as u64;
        let mut sub_sys = sys.clone();
        sub_sys.weight_base = cursor;
        // Distinct buffer arenas per sub-matrix, too.
        sub_sys.buffer_base = sys.buffer_base + ctxs.len() as u64 * (1 << 28);
        let ctx = GemmContext::build(&sub_sys, sub, opts);
        cursor = ctx.layout.end().max(cursor + size);
        ctxs.push(ctx);
    }
    match sys.backend {
        BackendKind::Exact => {
            let mut ts = TimingState::new(sys.dram);
            if sys.trace {
                ts.enable_trace();
            }
            simulate_fused_engine(&mut ts, sys, spec, opts, traffic, &ctxs)
        }
        BackendKind::Analytic => {
            let mut ts = AnalyticState::new(sys.dram);
            simulate_fused_engine(&mut ts, sys, spec, opts, traffic, &ctxs)
        }
    }
}

fn simulate_fused_engine<B: MemoryBackend>(
    ts: &mut B,
    sys: &SystemConfig,
    spec: &GemmSpec,
    opts: &SimOptions,
    traffic: Option<&mut dyn TrafficSource>,
    ctxs: &[GemmContext],
) -> LatencyReport {
    let mut bus = CommandBus::new(sys.dram.geom.channels as usize);
    let loc_mode = opts.localization.unwrap_or(sys.localization);
    let mut report = LatencyReport {
        backend: format!("STP-{}/fused", opts.level_cfg.level.tag()),
        clock_hz: sys.dram.clock_hz,
        ..Default::default()
    };
    let mut tcur = traffic.map(|t| TrafficCursor::new(t, 0));

    // Pipelined phases: while sub-GEMM i's kernels stream on the internal
    // datapaths, the DMA localizes sub-GEMM i+1 over the channel. Each
    // round co-simulates both in one engine phase so the shared timing
    // state sees them in true time order.
    let mut loc0 = transfer_cursors(
        &ctxs[0],
        &ctxs[0].b_regions,
        true,
        Phase::Localization,
        0,
        loc_mode.inter_block_gap(),
    );
    let mut loc_done = run_phase_auto(
        ts,
        &mut bus,
        &ctxs[0].mapping,
        &mut loc0,
        tcur.as_mut(),
        sys.parallel,
    );
    report.add_phase(Phase::Localization, loc_done);

    let mut activity = ActivityCounts::default();
    let mut kernel_end = 0u64;
    let mut kernel_ready = loc_done;
    for (i, ctx) in ctxs.iter().enumerate() {
        let start = kernel_ready.max(kernel_end);
        let mut cursors: Vec<UnitCursor> = (0..ctx.active_pims.len())
            .map(|pix| {
                let mut u = UnitCursor::new(
                    "pim-fused",
                    ctx.pim_channel(ctx.active_pims[pix]),
                    opts.level_cfg.port(),
                    KernelStream::new(ctx, sys, opts, pix),
                    start,
                    opts.level_cfg.compute_cycles_per_block(spec.n),
                    opts.level_cfg.simd_ops_per_block(spec.n),
                    opts.level_cfg.pipeline_depth as usize,
                    sys.launch.slots_for(opts.granularity),
                    sys.launch.launch_latency,
                    sys.dram.timing.t_bl,
                    None,
                );
                // Kernel PIMs own their bank partitions; the rounds that
                // also carry next-round DMA localization keep the strict
                // per-block interleave (the DMA cursor is not exclusive,
                // which disables scheduler overrun for the whole group).
                u.exclusive = true;
                u
            })
            .collect();
        let n_kernels = cursors.len();
        if let Some(next) = ctxs.get(i + 1) {
            cursors.extend(transfer_cursors(
                next,
                &next.b_regions,
                true,
                Phase::Localization,
                loc_done,
                loc_mode.inter_block_gap(),
            ));
        }
        run_phase_auto(ts, &mut bus, &ctx.mapping, &mut cursors, tcur.as_mut(), sys.parallel);
        kernel_end = cursors[..n_kernels].iter().map(|u| u.end_time).max().unwrap_or(start);
        if n_kernels < cursors.len() {
            loc_done = cursors[n_kernels..].iter().map(|u| u.end_time).max().unwrap_or(loc_done);
        }
        kernel_ready = loc_done;
        // Attribution matches `LatencyReport::chain` semantics: take the
        // critical-path (max) PIM per category *within* this sub-GEMM round,
        // then sum across the sequential rounds.
        let mut round_max = [0u64; 8];
        for u in &cursors[..n_kernels] {
            for p in [Phase::Gemm, Phase::FillB, Phase::FillC, Phase::DrainC, Phase::Launch] {
                let ix = p.index();
                round_max[ix] = round_max[ix].max(u.cat_cycles[ix]);
            }
            activity.simd_ops += u.simd_ops;
            activity.scratchpad_accesses += u.scratch_accesses;
            activity.launches += u.launches;
            activity.agen_iterations += u.agen_iter_sum;
            activity.agen_max_step = activity.agen_max_step.max(u.agen_iter_max);
            activity.agen_bubbles += u.agen_bubbles;
        }
        for (ix, &cycles) in round_max.iter().enumerate() {
            report.phase_cycles[ix] += cycles;
        }
    }

    // Phase 3: one reduction pass over every sub-matrix's partial C. Under
    // `ReduceVia::Fabric` each sub-matrix's local drain is unchanged; the
    // fabric transit of its merged payload extends the round before the
    // next sub-matrix drains (one fabric round per sub-GEMM).
    let mut red_end = kernel_end;
    for ctx in ctxs {
        let round_start = red_end;
        let mut red = transfer_cursors(
            ctx,
            &ctx.c_regions,
            false,
            Phase::Reduction,
            round_start,
            loc_mode.inter_block_gap(),
        );
        red_end =
            run_phase_auto(ts, &mut bus, &ctx.mapping, &mut red, tcur.as_mut(), sys.parallel);
        if sys.reduce_via == stepstone_fabric::ReduceVia::Fabric {
            let ready: Vec<u64> =
                red.iter().map(|u| u.end_time.max(round_start)).collect();
            let (fab_end, stats) = fabric_reduce(sys, ctx, &ready);
            red_end = red_end.max(fab_end);
            match &mut report.fabric {
                Some(f) => f.merge(&stats),
                slot => *slot = Some(stats),
            }
        }
    }
    report.add_phase(Phase::Reduction, red_end - kernel_end);
    report.total = red_end;
    report.dram = *ts.stats();
    report.activity = activity;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{simulate_gemm, simulate_gemm_opt};

    #[test]
    fn split_batch_is_linear_in_chunks() {
        let sys = SystemConfig::default();
        let one = simulate_split_batch(&sys, 1024, 4096, 32, PimLevel::Device).total;
        let four = simulate_split_batch(&sys, 1024, 4096, 128, PimLevel::Device).total;
        assert_eq!(four, 4 * one);
    }

    #[test]
    fn paper_claim_cpu_crossover_structure() {
        // §V-B derives N = 384 from "12 × 32": the crossover batch equals
        // the per-chunk speedup times the chunk size. Our CPU calibration
        // is less pessimistic than the measured Xeon at batch 32, so the
        // value shifts, but the structural relation must hold and the
        // crossover must land at hundreds of samples.
        let sys = SystemConfig::default();
        let crossover =
            cpu_crossover_batch(&sys, 1024, 4096, PimLevel::Device).expect("crossover exists");
        let cpu = CpuModel::default();
        let chunk_speedup = cpu.cycles(&GemmSpec::new(1024, 4096, PIM_CHUNK_BATCH)) as f64
            / crate::flow::simulate_gemm(
                &sys,
                &GemmSpec::new(1024, 4096, PIM_CHUNK_BATCH),
                PimLevel::Device,
            )
            .total as f64;
        let predicted = chunk_speedup * PIM_CHUNK_BATCH as f64;
        assert!(
            (64..=1024).contains(&crossover),
            "CPU crossover batch = {crossover} (paper: 384)"
        );
        let ratio = crossover as f64 / predicted;
        assert!((0.5..2.0).contains(&ratio), "crossover {crossover} vs predicted {predicted}");
    }

    #[test]
    fn partial_final_chunk_is_costed_at_its_real_size() {
        // 40 samples = one full chunk + a batch-8 tail. The old costing
        // charged ceil(40/32) = 2 full chunks; the tail must be cheaper.
        let sys = SystemConfig::default();
        let (m, k) = (1024, 4096);
        let chunk =
            crate::flow::simulate_gemm(&sys, &GemmSpec::new(m, k, PIM_CHUNK_BATCH), PimLevel::Device)
                .total;
        let tail =
            crate::flow::simulate_gemm(&sys, &GemmSpec::new(m, k, 8), PimLevel::Device).total;
        let split = split_batch_cycles(&sys, m, k, 40, PimLevel::Device);
        assert_eq!(split, chunk + tail);
        assert!(split < 2 * chunk, "tail costed as a full chunk");
        // And the search cap is distinguishable from a genuine crossover.
        let crossover = cpu_crossover_batch(&sys, m, k, PimLevel::Device);
        assert!(matches!(crossover, Some(n) if n <= CROSSOVER_SEARCH_CAP));
    }

    #[test]
    fn fused_non_pow2_beats_serialized() {
        // GPT2's 1600×6400 MLP decomposes into 9 sub-GEMMs; fusing their
        // kernels must not be slower than serializing the full flows.
        let sys = SystemConfig::default();
        let spec = GemmSpec::new(1600, 6400, 4);
        let opts = SimOptions::stepstone(PimLevel::BankGroup);
        let serial = simulate_gemm_opt(&sys, &spec, &opts, None).total;
        let fused = simulate_gemm_fused(&sys, &spec, &opts, None).total;
        assert!(fused < serial, "fused={fused} serial={serial}");
        assert!(fused * 3 > serial, "fusion cannot be a 3x miracle");
    }

    #[test]
    fn fused_attribution_matches_chained_on_multi_sub_gemm() {
        // m = 1536 → two sub-GEMMs (1024 + 512 rows). Fused attribution
        // must take the per-round critical path and *sum* across rounds
        // (`LatencyReport::chain` semantics); the old running max across
        // rounds under-reported Gemm cycles by the smaller round's share.
        let sys = SystemConfig::default();
        let spec = GemmSpec::new(1536, 1024, 4);
        let opts = SimOptions::stepstone(PimLevel::BankGroup);
        let chained = simulate_gemm_opt(&sys, &spec, &opts, None);
        let fused = simulate_gemm_fused(&sys, &spec, &opts, None);
        // Identical kernel work ⇒ identical activity tallies, and the
        // fused path must not drop the AGEN max-step statistic.
        assert_eq!(fused.activity.simd_ops, chained.activity.simd_ops);
        assert_eq!(fused.activity.launches, chained.activity.launches);
        assert_eq!(fused.activity.scratchpad_accesses, chained.activity.scratchpad_accesses);
        assert_eq!(fused.activity.agen_max_step, chained.activity.agen_max_step);
        assert!(fused.activity.agen_max_step > 0, "agen_max_step dropped in fused merge");
        // Gemm cycles: the fused rounds run the same kernels, so the
        // summed attribution lands near the chained report — far above the
        // buggy max-across-rounds (≈ 2/3 of chained for a 2:1 round split).
        let f = fused.phase(Phase::Gemm) as f64;
        let c = chained.phase(Phase::Gemm) as f64;
        assert!(f / c > 0.9 && f / c < 1.1, "fused gemm {f} vs chained {c}");
    }

    #[test]
    fn fused_equals_plain_for_pow2() {
        let sys = SystemConfig::default();
        let spec = GemmSpec::new(512, 2048, 4);
        let opts = SimOptions::stepstone(PimLevel::BankGroup);
        let plain = simulate_gemm(&sys, &spec, PimLevel::BankGroup).total;
        let fused = simulate_gemm_fused(&sys, &spec, &opts, None).total;
        let ratio = fused as f64 / plain as f64;
        assert!((0.9..1.1).contains(&ratio), "{fused} vs {plain}");
    }
}
