//! The StepStone PIM core: address-mapping-cognizant GEMM execution on
//! in-memory processing units, with the paper's full set of comparison
//! points.
//!
//! This crate couples the block-group algebra (`stepstone-addr`), the PIM
//! hardware models (`stepstone-pim`), and the DDR4 timing simulator
//! (`stepstone-dram`) into timed executions of:
//!
//! * **StepStone PIM** at channel/device/bank-group level, with the
//!   PIM-subset optimization and relaxed-area variants ([`flow`]),
//! * **eCHO** — Chopim enhanced with StepStone's grouping ([`flow`]),
//! * **nCHO / PEI** — prior main-memory PIM approaches ([`baselines`]),
//! * **CPU / iCPU** — calibrated host baselines ([`cpu`]),
//! * the level-selection heuristic of §III-E ([`select`]),
//! * functional end-to-end validation through the simulated memory
//!   ([`validate`]).

pub mod analytic;
pub mod baselines;
pub mod config;
pub mod cpu;
pub mod engine;
pub mod flow;
pub mod gemm;
pub mod report;
pub mod select;
pub mod serving;
pub mod validate;

pub use baselines::{simulate_ncho, simulate_pei};
pub use config::{AgenMode, SystemConfig};
pub use cpu::{CpuModel, IdealCpuModel};
pub use engine::TrafficCursor;
pub use flow::{
    simulate_gemm, simulate_gemm_opt, simulate_gemm_session, simulate_pow2_gemm_ctx,
    simulate_pow2_gemm_exec, simulate_pow2_gemm_resident, ExecMode, GemmContext, PagedSteps,
    SessionCache, SessionKey, SimOptions,
};
pub use gemm::GemmSpec;
pub use report::{ActivityCounts, LatencyReport, Phase};
pub use stepstone_fabric::{FabricConfig, FabricStats, LinkStats, ReduceVia, TopologyKind};
pub use select::{choose_backend, estimate_pim_cycles, options_for, Backend};
pub use serving::{
    cpu_crossover_batch, simulate_gemm_fused, simulate_split_batch, split_batch_cycles,
    CROSSOVER_SEARCH_CAP, PIM_CHUNK_BATCH,
};
