//! PIM-level and subset selection (paper §III-E).
//!
//! "We do not discuss the algorithm for choosing the PIM level, but note
//! that a simple heuristic that estimates execution times and overheads
//! based on available bandwidth and transferred data volumes works well."
//! This module is that heuristic: a closed-form cycle estimate from the
//! block-group algebra, used by the end-to-end executor (Fig. 8's `STP`
//! mode, and XLM's dynamic BG→DV switching) and by the Fig. 10 subset
//! tradeoff.

use crate::config::SystemConfig;
use crate::cpu::CpuModel;
use crate::flow::SimOptions;
use crate::gemm::GemmSpec;
use serde::{Deserialize, Serialize};
use stepstone_addr::{GroupAnalysis, MatrixLayout, PimLevel};
use stepstone_pim::{BufferPlan, PimLevelConfig, TransferPlan};

/// A candidate execution target for one GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Backend {
    Cpu,
    Pim { level: PimLevel, subset_drop_bits: u32 },
}

impl Backend {
    pub fn tag(&self) -> String {
        match self {
            Backend::Cpu => "CPU".into(),
            Backend::Pim { level, subset_drop_bits: 0 } => format!("PIM_{}", level.tag()),
            Backend::Pim { level, subset_drop_bits } => {
                format!("PIM_{}/{}", level.tag(), 1u32 << subset_drop_bits)
            }
        }
    }
}

/// Closed-form cycle estimate for StepStone execution of one power-of-two
/// GEMM at a level (mirrors the phase structure of `flow`).
pub fn estimate_pim_cycles(
    sys: &SystemConfig,
    spec: &GemmSpec,
    level: PimLevel,
    subset_drop_bits: u32,
) -> u64 {
    let mapping = sys.mapping();
    let mut total = 0u64;
    for sub in spec.decompose_pow2() {
        let layout = MatrixLayout::new_f32(
            sys.place_weights((sub.m * sub.k * 4) as u64),
            sub.m,
            sub.k,
        );
        let ga = if subset_drop_bits > 0 {
            GroupAnalysis::analyze_subset(&mapping, level, layout, subset_drop_bits)
        } else {
            GroupAnalysis::analyze(&mapping, level, layout)
        };
        let cfg = PimLevelConfig::nominal(level);
        let plan = BufferPlan::plan(cfg.scratchpad_bytes, sub.n, &ga);
        let transfer = TransferPlan::for_gemm(&ga, sub.n);
        let tp = &sys.dram.timing;
        // Per-block supply rate on the level's datapath.
        let supply = match level {
            PimLevel::BankGroup => tp.t_ccdl,
            _ => tp.t_ccds,
        };
        let blocks = ga.blocks_per_pim();
        let gemm = blocks * supply.max(cfg.compute_cycles_per_block(sub.n));
        // Buffer traffic at the same supply rate: B refilled per row
        // partition; C filled and drained once.
        let fills = plan.rparts as u64 * transfer.b_blocks_per_pim * supply
            + 2 * transfer.c_blocks_per_pim * supply;
        // Localization/reduction at full channel bandwidth, split across
        // channels.
        let channels = sys.dram.geom.channels as u64;
        let loc = transfer.total_b_blocks() * tp.t_bl / channels;
        let red = transfer.total_c_blocks() * tp.t_bl / channels;
        total += gemm + fills + loc + red;
    }
    total
}

/// Choose the best StepStone backend (BG vs DV, full vs half PIMs) plus the
/// CPU fallback for one GEMM. Returns candidates sorted by estimate.
pub fn choose_backend(sys: &SystemConfig, spec: &GemmSpec, cpu: &CpuModel) -> Backend {
    let mut best = (Backend::Cpu, cpu.cycles(spec));
    for (level, drop) in [
        (PimLevel::BankGroup, 0),
        (PimLevel::BankGroup, 1),
        (PimLevel::Device, 0),
    ] {
        let est = estimate_pim_cycles(sys, spec, level, drop);
        if est < best.1 {
            best = (Backend::Pim { level, subset_drop_bits: drop }, est);
        }
    }
    best.0
}

/// Options corresponding to a chosen backend (panics for CPU — the caller
/// routes CPU work to the CPU model).
pub fn options_for(backend: Backend) -> SimOptions {
    match backend {
        Backend::Cpu => panic!("CPU backend has no PIM options"),
        Backend::Pim { level, subset_drop_bits } => {
            SimOptions::stepstone(level).with_subset(subset_drop_bits)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_batch_prefers_bank_group_level() {
        // §III-E: "StepStone-BG is best when N ≤ 16".
        let sys = SystemConfig::default();
        let cpu = CpuModel::default();
        let b = choose_backend(&sys, &GemmSpec::new(1024, 4096, 2), &cpu);
        assert!(
            matches!(b, Backend::Pim { level: PimLevel::BankGroup, .. }),
            "{b:?}"
        );
    }

    #[test]
    fn large_batch_prefers_device_level() {
        let sys = SystemConfig::default();
        let cpu = CpuModel::default();
        let b = choose_backend(&sys, &GemmSpec::new(1024, 4096, 64), &cpu);
        assert_eq!(b, Backend::Pim { level: PimLevel::Device, subset_drop_bits: 0 }, "{b:?}");
    }

    #[test]
    fn estimates_track_simulation_ordering() {
        // The heuristic only has to rank options like the detailed sim does.
        let sys = SystemConfig::default();
        for (spec, expect_bg_faster) in [
            (GemmSpec::new(1024, 4096, 1), true),
            (GemmSpec::new(1024, 4096, 64), false),
        ] {
            let bg = estimate_pim_cycles(&sys, &spec, PimLevel::BankGroup, 0);
            let dv = estimate_pim_cycles(&sys, &spec, PimLevel::Device, 0);
            assert_eq!(bg < dv, expect_bg_faster, "{spec} bg={bg} dv={dv}");
        }
    }

    #[test]
    fn estimate_is_cheap_and_monotone_in_batch() {
        let sys = SystemConfig::default();
        let e1 = estimate_pim_cycles(&sys, &GemmSpec::new(1024, 4096, 1), PimLevel::Device, 0);
        let e32 = estimate_pim_cycles(&sys, &GemmSpec::new(1024, 4096, 32), PimLevel::Device, 0);
        assert!(e32 > e1);
    }

    #[test]
    fn backend_tags_are_readable() {
        assert_eq!(Backend::Cpu.tag(), "CPU");
        assert_eq!(
            Backend::Pim { level: PimLevel::BankGroup, subset_drop_bits: 0 }.tag(),
            "PIM_BG"
        );
        assert_eq!(
            Backend::Pim { level: PimLevel::BankGroup, subset_drop_bits: 1 }.tag(),
            "PIM_BG/2"
        );
    }
}
