//! Functional end-to-end GEMM validation through the simulated memory
//! system — the paper's own methodology (§IV: "we modify Ramulator to read
//! from and write values to memory and check the final output against
//! pre-calculated results").
//!
//! The value path exercises every mechanism whose addressing could go wrong:
//! `A` is stored at its physical layout and fetched block-by-block with the
//! same AGEN walks the timing engine uses; `B` travels through the
//! reorganized per-PIM localized regions (Fig. 5); partial `C` is drained to
//! per-PIM regions and merged by the reduction pass. The result is compared
//! against a host-side reference GEMM.

use crate::config::SystemConfig;
use crate::flow::{GemmContext, SimOptions};
use crate::gemm::GemmSpec;
use stepstone_dram::SparseMem;

/// Deterministic pseudo-random matrix entries (xorshift over indices) —
/// reproducible without pulling a RNG into the hot path.
fn elem(seed: u64, i: u64) -> f32 {
    let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) ^ i.wrapping_mul(0xBF58476D1CE4E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D049BB133111EB);
    ((x >> 40) as f32 / (1 << 24) as f32) - 0.5
}

/// Run the full functional flow; returns `true` if the simulated result
/// matches the reference within f32 accumulation tolerance.
pub fn validate_gemm(
    _sys: &SystemConfig,
    spec: &GemmSpec,
    _opts: &SimOptions,
    ctx: &GemmContext,
) -> bool {
    let (m, k, n) = (spec.m, spec.k, spec.n);
    let mut mem = SparseMem::new();

    // Host-side A and B.
    let a = |r: usize, c: usize| elem(1, (r * k + c) as u64);
    let b = |r: usize, c: usize| elem(2, (r * n + c) as u64);

    // Store A at its physical layout (row-major, contiguous).
    for r in 0..m {
        let row: Vec<f32> = (0..k).map(|c| a(r, c)).collect();
        mem.write_f32_slice(ctx.layout.base + (r * k * 4) as u64, &row);
    }

    // Localization: write reorganized B panels into each PIM's region in
    // consumption order: per (group, cpart), per local column block, the
    // 16×n panel (row-major).
    for (pix, &pim) in ctx.active_pims.iter().enumerate() {
        let mut cursor = 0usize;
        for grp in 0..ctx.ga.n_groups() {
            if !ctx.ga.is_admissible(pim, grp) {
                continue;
            }
            let cols = ctx.ga.local_cols(pim, grp);
            for cpart in 0..ctx.plan.cparts as u64 {
                let span = ctx.layout.blocks_per_row() / ctx.plan.cparts as u64;
                for &kblk in cols.iter().filter(|&&c| c >= cpart * span && c < (cpart + 1) * span)
                {
                    let mut panel = Vec::with_capacity(16 * n);
                    for e in 0..16 {
                        let brow = kblk as usize * 16 + e;
                        for j in 0..n {
                            panel.push(if brow < k { b(brow, j) } else { 0.0 });
                        }
                    }
                    // 16·n f32 = n cache blocks.
                    for (blk, chunk) in panel.chunks(16).enumerate() {
                        let pa = ctx.b_regions[pix].get((cursor + blk) as u64);
                        let mut vals = [0f32; 16];
                        vals[..chunk.len()].copy_from_slice(chunk);
                        mem.write_block_f32(pa, &vals);
                    }
                    cursor += n;
                }
            }
        }
        assert_eq!(cursor as u64, ctx.b_regions[pix].len(), "region exactly consumed");
    }

    // Kernel: every PIM walks its schedule, reading A from simulated memory
    // and B from its localized region, accumulating partial C.
    let mut final_c = vec![0f64; m * n];
    for (pix, &pim) in ctx.active_pims.iter().enumerate() {
        // B panel lookup: localized region offset per (grp, cpart, kblk).
        let mut b_panels: rustc_hash::FxHashMap<u64, usize> = rustc_hash::FxHashMap::default();
        let mut cursor = 0usize;
        for grp in 0..ctx.ga.n_groups() {
            if !ctx.ga.is_admissible(pim, grp) {
                continue;
            }
            let cols = ctx.ga.local_cols(pim, grp);
            for cpart in 0..ctx.plan.cparts as u64 {
                let span = ctx.layout.blocks_per_row() / ctx.plan.cparts as u64;
                for &kblk in cols.iter().filter(|&&c| c >= cpart * span && c < (cpart + 1) * span)
                {
                    b_panels.insert(grp as u64 * ctx.layout.blocks_per_row() + kblk, cursor);
                    cursor += n;
                }
            }
        }
        // Partial C accumulators for this PIM.
        let mut partial: rustc_hash::FxHashMap<usize, Vec<f32>> =
            rustc_hash::FxHashMap::default();
        for rpart in 0..ctx.plan.rparts {
            for grp in 0..ctx.ga.n_groups() {
                if !ctx.ga.is_admissible(pim, grp) {
                    continue;
                }
                for cpart in 0..ctx.plan.cparts {
                    for (pa, _) in ctx.walk(_sys, pim, grp, rpart, cpart) {
                        let (row, kblk) = ctx.layout.locate(pa);
                        let a_vals = mem.read_block_f32(pa);
                        let panel_ix =
                            b_panels[&(grp as u64 * ctx.layout.blocks_per_row() + kblk)];
                        let acc = partial.entry(row).or_insert_with(|| vec![0f32; n]);
                        for (e, &av) in a_vals.iter().enumerate() {
                            // Read the e-th B row of the panel from the
                            // localized region blocks, one block (16
                            // elements) at a time.
                            let flat = e * n;
                            let mut j = 0;
                            while j < n {
                                let idx = flat + j;
                                let pa_b = ctx.b_regions[pix].get((panel_ix + idx / 16) as u64);
                                let vals = mem.read_block_f32(pa_b);
                                let run = (16 - idx % 16).min(n - j);
                                for t in 0..run {
                                    acc[j + t] += av * vals[idx % 16 + t];
                                }
                                j += run;
                            }
                        }
                    }
                }
            }
        }
        // Drain partial C to the region, then immediately reduce (read back
        // and accumulate into the final result).
        let mut rows: Vec<usize> = partial.keys().copied().collect();
        rows.sort_unstable();
        let mut flat = Vec::with_capacity(rows.len() * n);
        for &r in &rows {
            flat.extend_from_slice(&partial[&r]);
        }
        for (blk, chunk) in flat.chunks(16).enumerate() {
            let mut vals = [0f32; 16];
            vals[..chunk.len()].copy_from_slice(chunk);
            mem.write_block_f32(ctx.c_regions[pix].get(blk as u64), &vals);
        }
        // Reduction pass.
        let mut read_back = Vec::with_capacity(flat.len());
        for blk in 0..flat.len().div_ceil(16) {
            read_back.extend_from_slice(&mem.read_block_f32(ctx.c_regions[pix].get(blk as u64)));
        }
        for (i, &r) in rows.iter().enumerate() {
            for j in 0..n {
                final_c[r * n + j] += read_back[i * n + j] as f64;
            }
        }
    }

    // Reference GEMM.
    let mut ok = true;
    for r in 0..m {
        for j in 0..n {
            let mut acc = 0f64;
            for c in 0..k {
                acc += (a(r, c) as f64) * (b(c, j) as f64);
            }
            let got = final_c[r * n + j];
            if (got - acc).abs() > 1e-2 * acc.abs().max(1.0) {
                ok = false;
            }
        }
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use stepstone_addr::PimLevel;

    #[test]
    fn functional_gemm_matches_reference_bg() {
        let sys = SystemConfig::default();
        let spec = GemmSpec::new(64, 256, 4);
        let opts = SimOptions::stepstone(PimLevel::BankGroup);
        let ctx = GemmContext::build(&sys, &spec, &opts);
        assert!(validate_gemm(&sys, &spec, &opts, &ctx));
    }

    #[test]
    fn functional_gemm_matches_reference_all_levels_and_mappings() {
        use stepstone_addr::MappingId;
        for mapping in [MappingId::Skylake, MappingId::Exynos, MappingId::Haswell] {
            let sys = SystemConfig::default().with_mapping(mapping);
            let spec = GemmSpec::new(32, 512, 2);
            for level in PimLevel::ALL {
                let opts = SimOptions::stepstone(level);
                let ctx = GemmContext::build(&sys, &spec, &opts);
                assert!(
                    validate_gemm(&sys, &spec, &opts, &ctx),
                    "{mapping:?} {level:?}"
                );
            }
        }
    }

    #[test]
    fn functional_gemm_with_partitioning() {
        // Force partitioned execution with a small scratchpad.
        use stepstone_pim::PimLevelConfig;
        let sys = SystemConfig::default();
        let spec = GemmSpec::new(128, 512, 8);
        let opts = SimOptions::stepstone(PimLevel::BankGroup).with_level_cfg(
            PimLevelConfig::nominal(PimLevel::BankGroup).with_scratchpad(4 << 10),
        );
        let ctx = GemmContext::build(&sys, &spec, &opts);
        assert!(ctx.plan.rparts > 1 || ctx.plan.cparts > 1);
        assert!(validate_gemm(&sys, &spec, &opts, &ctx));
    }

    #[test]
    fn functional_gemm_with_subset() {
        let sys = SystemConfig::default();
        let spec = GemmSpec::new(64, 256, 4);
        let opts = SimOptions::stepstone(PimLevel::BankGroup).with_subset(1);
        let ctx = GemmContext::build(&sys, &spec, &opts);
        assert!(validate_gemm(&sys, &spec, &opts, &ctx));
    }
}
