//! Synthetic colocated-CPU memory traffic (paper §IV / §V-G).
//!
//! The paper drives the colocation study with mcf, lbm, omnetpp and
//! gemsFDTD from SPEC CPU 2017 on gem5. We have no gem5 or SPEC inputs; per
//! the substitution policy (DESIGN.md §4), the generator below reproduces
//! what actually matters for Fig. 13 — sustained demand on the DDR command
//! and data buses — using the published memory characteristics of those
//! workloads: high MPKI, mixed read/write, a blend of streaming (lbm,
//! gemsFDTD) and pointer-chasing (mcf, omnetpp) locality.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use stepstone_dram::{TrafficReq, TrafficSource};

/// Intensity/locality profile of one synthetic application.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficProfile {
    pub name: &'static str,
    /// Mean cycles between requests (per generator).
    pub mean_gap: f64,
    /// Fraction of writes.
    pub write_ratio: f64,
    /// Probability the next access stays in the current DRAM row (streaming
    /// vs pointer-chasing).
    pub row_locality: f64,
}

/// SPEC-2017-like profiles (relative intensities follow the memory-bound
/// ranking reported for these benchmarks: lbm > gemsFDTD > mcf > omnetpp).
pub fn spec_like_profiles() -> Vec<TrafficProfile> {
    vec![
        TrafficProfile { name: "mcf", mean_gap: 7.0, write_ratio: 0.25, row_locality: 0.2 },
        TrafficProfile { name: "lbm", mean_gap: 4.0, write_ratio: 0.45, row_locality: 0.8 },
        TrafficProfile { name: "omnetpp", mean_gap: 9.0, write_ratio: 0.3, row_locality: 0.3 },
        TrafficProfile { name: "gemsFDTD", mean_gap: 5.0, write_ratio: 0.35, row_locality: 0.7 },
    ]
}

/// An open-loop traffic generator over a private address range.
#[derive(Debug)]
pub struct SyntheticTraffic {
    profiles: Vec<TrafficProfile>,
    rng: StdRng,
    /// Current stream position per profile.
    cursors: Vec<u64>,
    /// Base and size (bytes) of the region the CPU touches.
    region_base: u64,
    region_blocks: u64,
    remaining: u64,
}

impl SyntheticTraffic {
    /// The paper's colocation mix: all four applications running together.
    pub fn spec_mix(seed: u64, requests: u64) -> Self {
        Self::new(spec_like_profiles(), seed, requests)
    }

    pub fn new(profiles: Vec<TrafficProfile>, seed: u64, requests: u64) -> Self {
        assert!(!profiles.is_empty());
        let n = profiles.len();
        Self {
            profiles,
            rng: StdRng::seed_from_u64(seed),
            cursors: vec![0; n],
            // Keep CPU data away from the PIM weight/buffer arenas.
            region_base: 1 << 36,
            region_blocks: 1 << 20,
            remaining: requests,
        }
    }

    /// Aggregate request rate in requests/cycle (for calibration).
    pub fn aggregate_rate(&self) -> f64 {
        self.profiles.iter().map(|p| 1.0 / p.mean_gap).sum()
    }
}

impl TrafficSource for SyntheticTraffic {
    fn next_req(&mut self) -> Option<TrafficReq> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // Pick the profile proportionally to its intensity.
        let total: f64 = self.aggregate_rate();
        let mut pick = self.rng.gen::<f64>() * total;
        let mut ix = 0;
        for (i, p) in self.profiles.iter().enumerate() {
            pick -= 1.0 / p.mean_gap;
            if pick <= 0.0 {
                ix = i;
                break;
            }
        }
        let p = self.profiles[ix];
        // Advance the stream: sequential-in-row or a jump.
        let cur = &mut self.cursors[ix];
        if self.rng.gen::<f64>() < p.row_locality {
            *cur = (*cur + 1) % self.region_blocks;
        } else {
            *cur = self.rng.gen_range(0..self.region_blocks);
        }
        // The mix's inter-arrival time: exponential-ish around the blended
        // mean (geometric sampling keeps it integral and cheap).
        let mean = 1.0 / total;
        let gap = if mean <= 1.0 {
            1
        } else {
            let u: f64 = self.rng.gen_range(0.0f64..1.0).max(1e-9);
            (-mean * u.ln()).round().max(1.0) as u64
        };
        Some(TrafficReq {
            pa: self.region_base + (*cur ^ (ix as u64) << 17) * 64,
            write: self.rng.gen::<f64>() < p.write_ratio,
            gap,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_per_seed() {
        let collect = |seed| {
            let mut t = SyntheticTraffic::spec_mix(seed, 100);
            std::iter::from_fn(|| t.next_req()).collect::<Vec<_>>()
        };
        assert_eq!(collect(7), collect(7));
        assert_ne!(collect(7), collect(8));
    }

    #[test]
    fn generator_exhausts_after_budget() {
        let mut t = SyntheticTraffic::spec_mix(1, 10);
        let n = std::iter::from_fn(|| t.next_req()).count();
        assert_eq!(n, 10);
        assert!(t.next_req().is_none());
    }

    #[test]
    fn rate_matches_profiles() {
        let t = SyntheticTraffic::spec_mix(1, 1000);
        // 1/7 + 1/4 + 1/9 + 1/5 ≈ 0.70 requests/cycle — memory-intensive
        // (four cores of mcf/lbm/omnetpp/gemsFDTD).
        let r = t.aggregate_rate();
        assert!((0.5..0.9).contains(&r), "{r}");
    }

    #[test]
    fn addresses_stay_in_cpu_region() {
        let mut t = SyntheticTraffic::spec_mix(3, 500);
        while let Some(req) = t.next_req() {
            assert!(req.pa >= 1 << 36);
            assert_eq!(req.pa % 64, 0);
            assert!(req.gap >= 1);
        }
    }

    #[test]
    fn mix_contains_reads_and_writes() {
        let mut t = SyntheticTraffic::spec_mix(5, 2000);
        let mut w = 0;
        let mut n = 0;
        while let Some(req) = t.next_req() {
            w += u64::from(req.write);
            n += 1;
        }
        let ratio = w as f64 / n as f64;
        assert!((0.15..0.55).contains(&ratio), "{ratio}");
    }
}
