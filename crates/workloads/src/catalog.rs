//! The GEMM dimension catalog of Table I: common DL-inference GEMMs from
//! language models (BERT, GPT2) and recommendation models (DLRM/RM3).

use serde::{Deserialize, Serialize};

/// A named weight-matrix shape from Table I.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CatalogEntry {
    pub model: &'static str,
    pub layer: &'static str,
    /// Weight dimensions (M × K).
    pub m: usize,
    pub k: usize,
    /// Representative batch sizes reported in Table I.
    pub batch_range: (usize, usize),
}

/// The full Table I.
pub fn table1() -> Vec<CatalogEntry> {
    vec![
        CatalogEntry { model: "BERT", layer: "MLP", m: 1024, k: 4096, batch_range: (1, 8) },
        CatalogEntry { model: "BERT", layer: "MLP", m: 4096, k: 1024, batch_range: (1, 8) },
        CatalogEntry { model: "BERT", layer: "Projection", m: 1024, k: 1024, batch_range: (1, 8) },
        CatalogEntry { model: "GPT2", layer: "MLP", m: 1600, k: 6400, batch_range: (1, 8) },
        CatalogEntry { model: "GPT2", layer: "MLP", m: 6400, k: 1600, batch_range: (1, 8) },
        CatalogEntry { model: "GPT2", layer: "Projection", m: 1600, k: 1600, batch_range: (1, 8) },
        CatalogEntry { model: "DLRM", layer: "Bottom MLP", m: 2560, k: 512, batch_range: (1, 256) },
        CatalogEntry { model: "DLRM", layer: "Bottom MLP", m: 512, k: 32, batch_range: (1, 256) },
        CatalogEntry { model: "DLRM", layer: "Top MLP", m: 512, k: 128, batch_range: (1, 256) },
        CatalogEntry { model: "DLRM", layer: "Top MLP", m: 128, k: 1, batch_range: (1, 256) },
    ]
}

/// The representative default GEMM used throughout §V ("By default, we use
/// 1024×4096").
pub fn default_weights() -> (usize, usize) {
    (1024, 4096)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let t = table1();
        assert_eq!(t.len(), 10);
        assert_eq!(t.iter().filter(|e| e.model == "DLRM").count(), 4);
        assert!(t.iter().any(|e| e.m == 1024 && e.k == 4096));
        assert!(t.iter().any(|e| e.m == 1600 && e.k == 6400));
        // Language-model batches are small (1–8); DLRM goes to 256.
        for e in &t {
            match e.model {
                "DLRM" => assert_eq!(e.batch_range, (1, 256)),
                _ => assert_eq!(e.batch_range, (1, 8)),
            }
        }
    }
}
