//! Workload substrate: the paper's GEMM dimension catalog (Table I) and the
//! synthetic colocated-CPU traffic generators standing in for the gem5 +
//! SPEC CPU 2017 setup of §IV (see DESIGN.md §4 for the substitution
//! rationale).

pub mod catalog;
pub mod serving;
pub mod traffic;

pub use catalog::{default_weights, table1, CatalogEntry};
pub use serving::{OpenLoopArrivals, Request, RequestKind, RequestMix};
pub use traffic::{spec_like_profiles, SyntheticTraffic, TrafficProfile};
