//! Open-loop request streams for the continuous serving simulator.
//!
//! The paper's headline workloads (Table I) are recommendation and
//! language-model layers served under real traffic; this module turns the
//! catalog's model graphs into a *request process*: seeded Poisson arrivals
//! over virtual DRAM cycles, each request naming a model kind and a batch
//! of user samples. The process is open-loop — arrival times never depend
//! on service completion — so saturation shows up as unbounded queueing
//! rather than a silently throttled generator (the standard serving-bench
//! methodology; see `docs/serving.md`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The model family a request asks for (mirrors `models::catalog`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    Dlrm,
    Bert,
    Gpt2,
}

impl RequestKind {
    pub const ALL: [RequestKind; 3] = [RequestKind::Dlrm, RequestKind::Bert, RequestKind::Gpt2];

    pub fn name(self) -> &'static str {
        match self {
            RequestKind::Dlrm => "dlrm",
            RequestKind::Bert => "bert",
            RequestKind::Gpt2 => "gpt2",
        }
    }

    /// Largest per-request sample count the generator draws for this kind.
    /// BERT requests carry a sequence dimension (8 tokens per sample), so
    /// their sample counts stay small to keep GEMM N within Table-I range.
    pub fn max_samples(self) -> usize {
        match self {
            RequestKind::Dlrm => 64,
            RequestKind::Bert => 4,
            RequestKind::Gpt2 => 8,
        }
    }
}

/// One inference request: a model kind, a number of user samples riding in
/// it, and its (virtual-cycle) arrival time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    pub id: u64,
    pub kind: RequestKind,
    pub samples: usize,
    pub arrival: u64,
}

/// Relative arrival weights of the three model families.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestMix {
    pub dlrm: f64,
    pub bert: f64,
    pub gpt2: f64,
}

impl RequestMix {
    /// The default serving mix: recommendation-heavy, as in production
    /// serving fleets, with both language models present.
    pub fn recommendation_heavy() -> Self {
        Self { dlrm: 0.6, bert: 0.25, gpt2: 0.15 }
    }

    pub fn uniform() -> Self {
        Self { dlrm: 1.0, bert: 1.0, gpt2: 1.0 }
    }

    fn draw(&self, rng: &mut StdRng) -> RequestKind {
        let total = self.dlrm + self.bert + self.gpt2;
        let mut pick = rng.gen::<f64>() * total;
        pick -= self.dlrm;
        if pick <= 0.0 {
            return RequestKind::Dlrm;
        }
        pick -= self.bert;
        if pick <= 0.0 {
            return RequestKind::Bert;
        }
        RequestKind::Gpt2
    }
}

/// A seeded open-loop Poisson arrival process: exponential inter-arrival
/// gaps around `mean_gap_cycles`, model kinds drawn from the mix, sample
/// counts uniform in `1..=kind.max_samples()`. Deterministic per seed.
#[derive(Debug)]
pub struct OpenLoopArrivals {
    rng: StdRng,
    mix: RequestMix,
    mean_gap_cycles: f64,
    now: u64,
    next_id: u64,
    remaining: u64,
}

impl OpenLoopArrivals {
    pub fn new(seed: u64, mix: RequestMix, mean_gap_cycles: f64, requests: u64) -> Self {
        assert!(mean_gap_cycles >= 1.0, "offered load above one request per cycle");
        Self {
            rng: StdRng::seed_from_u64(seed),
            mix,
            mean_gap_cycles,
            now: 0,
            next_id: 0,
            remaining: requests,
        }
    }

    /// Materialize the whole request trace (arrival-sorted by
    /// construction).
    pub fn trace(seed: u64, mix: RequestMix, mean_gap_cycles: f64, requests: u64) -> Vec<Request> {
        Self::new(seed, mix, mean_gap_cycles, requests).collect()
    }
}

impl Iterator for OpenLoopArrivals {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let u: f64 = self.rng.gen_range(0.0f64..1.0).max(1e-9);
        let gap = (-self.mean_gap_cycles * u.ln()).round().max(1.0) as u64;
        self.now += gap;
        let kind = self.mix.draw(&mut self.rng);
        let samples = self.rng.gen_range(0..kind.max_samples()) + 1;
        let id = self.next_id;
        self.next_id += 1;
        Some(Request { id, kind, samples, arrival: self.now })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_deterministic_per_seed() {
        let mix = RequestMix::recommendation_heavy();
        let a = OpenLoopArrivals::trace(11, mix, 50_000.0, 200);
        let b = OpenLoopArrivals::trace(11, mix, 50_000.0, 200);
        let c = OpenLoopArrivals::trace(12, mix, 50_000.0, 200);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn arrivals_are_monotone_with_unique_ids() {
        let trace = OpenLoopArrivals::trace(3, RequestMix::uniform(), 10_000.0, 500);
        assert_eq!(trace.len(), 500);
        for w in trace.windows(2) {
            // Gaps are clamped to ≥ 1 cycle, so arrivals strictly increase.
            assert!(w[1].arrival > w[0].arrival);
            assert_eq!(w[1].id, w[0].id + 1);
        }
    }

    #[test]
    fn mean_gap_tracks_offered_load() {
        let trace = OpenLoopArrivals::trace(7, RequestMix::uniform(), 20_000.0, 2000);
        let span = trace.last().unwrap().arrival as f64;
        let mean = span / trace.len() as f64;
        assert!((10_000.0..40_000.0).contains(&mean), "mean gap {mean}");
    }

    #[test]
    fn mix_weights_shape_the_kind_distribution() {
        let trace =
            OpenLoopArrivals::trace(5, RequestMix::recommendation_heavy(), 1_000.0, 3000);
        let count =
            |k: RequestKind| trace.iter().filter(|r| r.kind == k).count() as f64 / 3000.0;
        assert!(count(RequestKind::Dlrm) > 0.5);
        assert!(count(RequestKind::Bert) > 0.1);
        assert!(count(RequestKind::Gpt2) > 0.05);
    }

    #[test]
    fn samples_respect_per_kind_caps() {
        for r in OpenLoopArrivals::trace(9, RequestMix::uniform(), 5_000.0, 1000) {
            assert!(r.samples >= 1 && r.samples <= r.kind.max_samples(), "{r:?}");
        }
    }
}
