//! Operator graphs of the four end-to-end models (paper Table II, §V-B).
//!
//! GEMMs of fully-connected and projection layers are PIM-eligible; all
//! other operators — embeddings, batched attention GEMMs (tiny at sequence
//! length 8), GELU/softmax/layernorm, concatenation and tensor
//! reorganization — execute on the CPU (`CPU_Other` in Fig. 8).

use serde::{Deserialize, Serialize};
use stepstone_core::GemmSpec;

/// One operator in a model graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// A PIM-eligible weight GEMM.
    Gemm(GemmSpec),
    /// CPU-side work characterized by its memory and compute footprint.
    CpuOp { name: &'static str, bytes: u64, flops: u64 },
}

impl Op {
    fn gelu(elems: usize) -> Op {
        Op::CpuOp { name: "gelu", bytes: (elems * 8) as u64, flops: (elems * 8) as u64 }
    }

    fn layernorm(elems: usize) -> Op {
        Op::CpuOp { name: "layernorm", bytes: (elems * 8) as u64, flops: (elems * 6) as u64 }
    }

    fn softmax(elems: usize) -> Op {
        Op::CpuOp { name: "softmax", bytes: (elems * 8) as u64, flops: (elems * 5) as u64 }
    }

    fn reorg(bytes: u64) -> Op {
        Op::CpuOp { name: "reorg", bytes, flops: 0 }
    }

    fn batched_gemm(batch: usize, m: usize, k: usize, n: usize) -> Op {
        let flops = (2 * batch * m * k * n) as u64;
        let bytes = (batch * (m * k + k * n + m * n) * 4) as u64;
        Op::CpuOp { name: "batched_gemm", bytes, flops }
    }
}

/// A whole inference workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelGraph {
    pub name: &'static str,
    pub ops: Vec<Op>,
}

impl ModelGraph {
    pub fn gemm_count(&self) -> usize {
        self.ops.iter().filter(|o| matches!(o, Op::Gemm(_))).count()
    }

    pub fn total_weight_bytes(&self) -> u64 {
        self.ops
            .iter()
            .map(|o| match o {
                Op::Gemm(g) => g.a_bytes(),
                _ => 0,
            })
            .sum()
    }
}

/// One transformer block: 4 projections + attention (CPU) + 2 MLP GEMMs +
/// norms/GELU.
fn transformer_block(hidden: usize, ff: usize, heads: usize, seq: usize, bsz: usize) -> Vec<Op> {
    let n = seq * bsz;
    let head_dim = hidden / heads;
    vec![
        // Q, K, V projections.
        Op::Gemm(GemmSpec::new(hidden, hidden, n)),
        Op::Gemm(GemmSpec::new(hidden, hidden, n)),
        Op::Gemm(GemmSpec::new(hidden, hidden, n)),
        // Attention scores + context (tiny batched GEMMs → CPU).
        Op::batched_gemm(heads * bsz, seq, head_dim, seq),
        Op::softmax(heads * bsz * seq * seq),
        Op::batched_gemm(heads * bsz, seq, seq, head_dim),
        Op::reorg((3 * hidden * n * 4) as u64),
        // Output projection.
        Op::Gemm(GemmSpec::new(hidden, hidden, n)),
        Op::layernorm(hidden * n),
        // MLP up / GELU / down.
        Op::Gemm(GemmSpec::new(hidden, ff, n)),
        Op::gelu(ff * n),
        Op::Gemm(GemmSpec::new(ff, hidden, n)),
        Op::layernorm(hidden * n),
    ]
}

/// DLRM RM3 (Table II): bottom MLP 2560-512-32, top MLP 512-128-1, bsz 4.
/// §V-B: "The execution time of DLRM is dominated by a single FC layer
/// (92%)" — the 2560×512 bottom GEMM.
pub fn dlrm(bsz: usize) -> ModelGraph {
    let ops = vec![
        // Sparse embedding lookups + dense feature handling (CPU).
        Op::CpuOp { name: "embedding", bytes: (80 * 64 * bsz) as u64, flops: 0 },
        // Bottom MLP.
        Op::Gemm(GemmSpec::new(2560, 512, bsz)),
        Op::Gemm(GemmSpec::new(512, 32, bsz)),
        // Feature interaction (concat + small dot products).
        Op::reorg((512 * bsz * 4) as u64),
        // Top MLP.
        Op::Gemm(GemmSpec::new(512, 128, bsz)),
        Op::Gemm(GemmSpec::new(128, 16, bsz)),
    ];
    ModelGraph { name: "DLRM", ops }
}

/// BERT (Table II): 24 blocks, MLP 1024-4096-1024, 16 heads, seq 8, bsz 4.
/// §V-B: "For BERT, N becomes 32 in all FC layers."
pub fn bert(bsz: usize) -> ModelGraph {
    let mut ops = Vec::new();
    for _ in 0..24 {
        ops.extend(transformer_block(1024, 4096, 16, 8, bsz));
    }
    ModelGraph { name: "BERT", ops }
}

/// GPT2 (Table II): 48 blocks, MLP 1600-6400-1600, seq 8, bsz 4. Text
/// generation decodes one token at a time (KV-cached), so FC layers run at
/// N = bsz for each of the 8 generated tokens.
pub fn gpt2(bsz: usize) -> ModelGraph {
    let hidden = 1600;
    let ff = 6400;
    let mut ops = Vec::new();
    for _token in 0..8 {
        for _block in 0..48 {
            let n = bsz;
            ops.push(Op::Gemm(GemmSpec::new(hidden, hidden, n)));
            ops.push(Op::Gemm(GemmSpec::new(hidden, hidden, n)));
            ops.push(Op::Gemm(GemmSpec::new(hidden, hidden, n)));
            ops.push(Op::batched_gemm(25 * bsz, 1, 64, 8));
            ops.push(Op::softmax(25 * bsz * 8));
            ops.push(Op::batched_gemm(25 * bsz, 1, 8, 64));
            ops.push(Op::Gemm(GemmSpec::new(hidden, hidden, n)));
            ops.push(Op::layernorm(hidden * n));
            ops.push(Op::Gemm(GemmSpec::new(hidden, ff, n)));
            ops.push(Op::gelu(ff * n));
            ops.push(Op::Gemm(GemmSpec::new(ff, hidden, n)));
            ops.push(Op::layernorm(hidden * n));
        }
    }
    ModelGraph { name: "GPT2", ops }
}

/// XLM (Table II): 12 blocks, MLP 2048-8192-2048, seq 1→8, bsz 4. §V-B:
/// "the sequence length starts at 1 and increases by 1 up to the maximum
/// length (8) after each iteration", so N grows 4, 8, …, 32 — the dynamic
/// BG→DV level-switching scenario.
pub fn xlm(bsz: usize) -> ModelGraph {
    let mut ops = Vec::new();
    for seq in 1..=8usize {
        for _block in 0..12 {
            ops.extend(transformer_block(2048, 8192, 16, seq, bsz));
        }
    }
    ModelGraph { name: "XLM", ops }
}

/// All four Fig. 8 models at the paper's batch size.
pub fn all_models() -> Vec<ModelGraph> {
    vec![dlrm(4), gpt2(4), xlm(4), bert(4)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_has_24_blocks_of_6_gemms() {
        let m = bert(4);
        assert_eq!(m.gemm_count(), 24 * 6);
        // All FC layers run at N = 32.
        for op in &m.ops {
            if let Op::Gemm(g) = op {
                assert_eq!(g.n, 32);
            }
        }
    }

    #[test]
    fn gpt2_decodes_at_batch_4() {
        let m = gpt2(4);
        assert_eq!(m.gemm_count(), 8 * 48 * 6);
        for op in &m.ops {
            if let Op::Gemm(g) = op {
                assert_eq!(g.n, 4);
            }
        }
    }

    #[test]
    fn xlm_batch_grows_with_sequence() {
        let m = xlm(4);
        let ns: std::collections::BTreeSet<usize> = m
            .ops
            .iter()
            .filter_map(|o| match o {
                Op::Gemm(g) => Some(g.n),
                _ => None,
            })
            .collect();
        assert_eq!(ns, (1..=8).map(|s| 4 * s).collect());
    }

    #[test]
    fn dlrm_is_dominated_by_the_bottom_fc() {
        let m = dlrm(4);
        let weights: Vec<u64> = m
            .ops
            .iter()
            .filter_map(|o| match o {
                Op::Gemm(g) => Some(g.a_bytes()),
                _ => None,
            })
            .collect();
        let max = *weights.iter().max().unwrap();
        let total: u64 = weights.iter().sum();
        assert!(max as f64 / total as f64 > 0.9, "92% in one FC (§V-B)");
    }

    #[test]
    fn language_model_weights_are_main_memory_scale() {
        // The premise of §II: LM parameters exceed cache capacity (DLRM's
        // MLP weights are small — its main-memory data is the embeddings).
        for m in [bert(4), gpt2(4), xlm(4)] {
            assert!(m.total_weight_bytes() > 100 << 20, "{}", m.name);
        }
        assert!(dlrm(4).total_weight_bytes() < 32 << 20);
    }
}
